// Reusable chaos-soak harness: two-layer aggregation under a fault plan.
//
// Runs N aggregation rounds of the full TwoLayerAggregator stack (SAC
// subgroups + FedAvg layer) over a network with ambient stochastic
// faults (loss / duplication / reordering) while a ChaosEngine injects
// crash-restart churn and an optional partition window. Leadership is
// re-derived each round from liveness (first live member of each
// subgroup), standing in for the Raft backend so the soak isolates the
// aggregation protocol's own retry hardening.
//
// Every peer contributes the constant model (p + 1), so the exact global
// model of any committed round is known in closed form: the mean of
// (p + 1) over the round's contributing peers. The harness checks every
// commit against it — a committed-but-wrong model (double-counted
// duplicate, share from a stale round, missed contributor) is the one
// failure mode a liveness metric cannot see.
//
// Used by `p2pflctl chaos`, the tier-1 chaos tests and the slow soak.
#pragma once

#include <string>
#include <vector>

#include <functional>

#include "common/types.hpp"
#include "net/network.hpp"
#include "obs/critical_path.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

namespace p2pfl::chaos {

struct ChaosSoakConfig {
  std::size_t peers = 12;
  std::size_t groups = 3;
  std::size_t rounds = 10;
  std::size_t dim = 8;
  std::uint64_t seed = 1;
  SimDuration round_interval = 2 * kSecond;
  /// Ambient network behaviour; set `net.faults` for loss/dup/reorder.
  net::NetworkConfig net{.base_latency = 15 * kMillisecond};
  /// Dropouts each subgroup tolerates after its share phase (Alg. 4 k).
  std::size_t dropout_tolerance = 2;
  /// Crash/restart churn across all peers during the bulk of the run
  /// (0 = none). Churn stops three intervals before the end so the
  /// trailing rounds demonstrate recovery.
  SimDuration churn_mttf = 0;
  SimDuration churn_mttr = 1 * kSecond;
  /// Partition window: subgroup 0 vs the rest (0 = none).
  SimTime partition_at = 0;
  SimTime heal_at = 0;
  /// SAC share-phase retransmission budget (generous: ambient loss).
  std::size_t sac_share_retries = 6;
  /// Max |committed − exact| accepted as float-accumulation noise.
  double exact_tol = 5e-3;
  /// Record the full trace stream into ChaosSoakResult::trace_json.
  bool capture_trace = false;
  /// Record causal spans: per-round critical paths for committed rounds,
  /// an abort post-mortem whenever on_round_aborted fires, and the full
  /// span dump. Also tears down a trailing undecided round at the end so
  /// its abort reaches the flight recorder.
  bool capture_spans = false;
  /// Record one obs::RoundSample per round (latency, phase breakdown,
  /// bytes vs the Eq. (4)/(5) closed form, retries/drops/churn deltas)
  /// into ChaosSoakResult::timeseries_jsonl.
  bool capture_timeseries = false;
  /// SLO rules the RoundWatchdog evaluates per sample (implies
  /// capture_timeseries when non-empty). Breaches land in slo_report /
  /// slo_alerts; alert post-mortems need capture_spans for evidence.
  std::vector<obs::SloRule> slo_rules;
  /// Fired live after each round's sample is judged (p2pflctl watch).
  std::function<void(const obs::RoundSample&,
                     const std::vector<obs::SloBreach>&)>
      on_sample;
};

struct RoundOutcome {
  std::uint64_t round = 0;
  bool committed = false;
  std::size_t contributors = 0;
  double max_abs_error = 0.0;
};

struct ChaosSoakResult {
  std::size_t rounds_started = 0;
  std::size_t rounds_committed = 0;
  /// Started rounds that closed without a global model.
  std::size_t rounds_aborted = 0;
  /// Ticks skipped outright because no live leader candidate existed.
  std::size_t rounds_skipped = 0;
  bool all_commits_exact = true;
  double max_abs_error = 0.0;
  /// At least one commit, and one within the last three started rounds
  /// (the plan leaves the tail fault-free, so recovery must show there).
  bool liveness_ok = false;
  std::size_t crashes = 0;
  std::size_t restarts = 0;
  std::vector<RoundOutcome> outcomes;
  net::TrafficStats traffic;
  std::string trace_json;  // only when cfg.capture_trace
  // --- only when cfg.capture_spans --------------------------------------
  /// One JSON object per retained span (obs::spans_jsonl format).
  std::string spans_jsonl;
  /// Critical path of every committed round, in round order.
  std::vector<obs::CriticalPath> critical_paths;
  /// Flight-recorder dumps, one per aborted round, in abort order.
  std::vector<obs::Postmortem> postmortems;
  // --- only when cfg.capture_timeseries / cfg.slo_rules -----------------
  /// One RoundSample JSON object per round (obs::RoundSeries::jsonl).
  std::string timeseries_jsonl;
  /// SLO verdict over the whole run (empty-ruled engines stay healthy).
  obs::SloReport slo_report;
  /// Alert post-mortems, one per breach (bounded), in breach order.
  std::vector<obs::SloAlert> slo_alerts;
};

ChaosSoakResult run_chaos_soak(const ChaosSoakConfig& cfg);

}  // namespace p2pfl::chaos
