// Declarative fault plans for deterministic chaos runs.
//
// A ChaosPlan is a script of faults — crashes, restarts, crash/restart
// churn, partition windows, slow subgroups, network-imperfection
// windows — expressed in simulated time. The ChaosEngine (engine.hpp)
// executes a plan on the simulator's event queue and draws every
// stochastic choice (churn inter-failure times, victim selection) from a
// deterministic RNG fork, so a chaos run is a pure function of
// (seed, plan): replayable, diffable, and bisectable. The Fig. 10-12
// recovery benches and the soak tests inject their faults exclusively
// through plans instead of bespoke bench code.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"
#include "robust/attack.hpp"

namespace p2pfl::chaos {

/// Crash one peer at an absolute simulated time.
struct CrashEvent {
  SimTime at = 0;
  PeerId peer = kNoPeer;
};

/// Restart (restore) one peer at an absolute simulated time. With
/// `amnesia` the peer comes back with its persistent state wiped (the
/// engine dispatches to the restart_amnesia hook) — the paper's
/// worst-case rejoin: a machine replaced rather than rebooted.
struct RestartEvent {
  SimTime at = 0;
  PeerId peer = kNoPeer;
  bool amnesia = false;
};

/// Split the network into groups at `at`; heal at `heal_at` (0 = never).
/// Peers listed in no group form one implicit extra group (see
/// net::Network::partition).
struct PartitionEvent {
  SimTime at = 0;
  SimTime heal_at = 0;
  std::vector<std::vector<PeerId>> groups;
};

/// Add `extra` one-way latency on every link into and out of `peers`
/// during [at, clear_at) — the paper's "slow subgroup" scenario.
struct SlowGroupEvent {
  SimTime at = 0;
  SimTime clear_at = 0;
  std::vector<PeerId> peers;
  SimDuration extra = 0;
  /// Every other peer the slow group talks to (delays are per-link).
  std::vector<PeerId> universe;
};

/// Override the network's default stochastic faults during
/// [at, clear_at); the previous defaults are restored afterwards.
struct FaultWindowEvent {
  SimTime at = 0;
  SimTime clear_at = 0;  // 0 = never restore
  net::LinkFaults faults;
};

/// Continuous crash/restart churn over [start, end): each peer in scope
/// fails after Exp(mttf) uptime and recovers after Exp(mttr) downtime,
/// with all draws from the engine's deterministic RNG.
struct ChurnSpec {
  SimTime start = 0;
  SimTime end = 0;
  SimDuration mttf = 10 * kSecond;
  SimDuration mttr = 2 * kSecond;
  std::vector<PeerId> peers;
  /// Liveness guard: a failure draw that would exceed this many
  /// simultaneously-down peers is postponed by one MTTR.
  std::size_t max_concurrent_down = static_cast<std::size_t>(-1);
  /// Probability that a churn restart is an amnesia restart (persistent
  /// state wiped). The draw happens only when > 0, so plans without
  /// amnesia keep their exact historical RNG sequences.
  double amnesia_prob = 0.0;
};

/// Forcibly reset the connection between two peers at `at`, as if the
/// kernel sent RST. On TCP the transport tears the sockets down and
/// reconnects with (jittered) backoff; the deterministic simulator has
/// no connections, so the engine models the same outage as a
/// bidirectional stall of `sim_outage`.
struct ConnResetEvent {
  SimTime at = 0;
  PeerId a = kNoPeer;
  PeerId b = kNoPeer;
  /// Modeled reconnect outage on the sim path (≈ min backoff + RTT).
  SimDuration sim_outage = 30 * kMillisecond;
};

/// Half-open stall: frames from->to are silently held during
/// [at, until) — the sender perceives an alive peer that never answers.
/// `bidirectional` stalls both directions (a fully wedged link).
struct StallWindowEvent {
  SimTime at = 0;
  SimTime until = 0;
  PeerId from = kNoPeer;
  PeerId to = kNoPeer;
  bool bidirectional = false;
};

/// Clamp one peer's egress to `bytes_per_sec` during [at, until) — the
/// slow-writer scenario (an overloaded or badly-connected peer).
struct ThrottleWindowEvent {
  SimTime at = 0;
  SimTime until = 0;
  PeerId peer = kNoPeer;
  std::uint64_t bytes_per_sec = 0;
};

/// Reconnect storm: every `period` during [at, until), reset the
/// connections between consecutive `pairs` entries (a flapping switch
/// forcing the mesh through its reconnect path over and over).
struct ReconnectStormEvent {
  SimTime at = 0;
  SimTime until = 0;
  SimDuration period = 100 * kMillisecond;
  /// Flattened pair list: {a0,b0, a1,b1, ...}.
  std::vector<PeerId> pairs;
  SimDuration sim_outage = 30 * kMillisecond;
};

/// Turn `peers` adversarial during [start, end): the engine activates
/// the given attack in the run's ByzantineRegistry at `start` and
/// deactivates it at `end` (0 = stay adversarial forever). Which lies
/// the attack tells is robust::AttackKind's business; this is only the
/// *when* and *who*.
struct ByzantineSpec {
  SimTime start = 0;
  SimTime end = 0;
  std::vector<PeerId> peers;
  robust::AttackSpec attack;
};

class ChaosPlan {
 public:
  ChaosPlan& crash_at(SimTime t, PeerId peer) {
    crashes_.push_back({t, peer});
    return *this;
  }
  ChaosPlan& restart_at(SimTime t, PeerId peer, bool amnesia = false) {
    restarts_.push_back({t, peer, amnesia});
    return *this;
  }
  /// Crash at `t` and restart `downtime` later.
  ChaosPlan& crash_for(SimTime t, PeerId peer, SimDuration downtime,
                       bool amnesia = false) {
    crash_at(t, peer);
    return restart_at(t + downtime, peer, amnesia);
  }
  ChaosPlan& partition_window(SimTime at, SimTime heal_at,
                              std::vector<std::vector<PeerId>> groups) {
    partitions_.push_back({at, heal_at, std::move(groups)});
    return *this;
  }
  ChaosPlan& slow_group(SimTime at, SimTime clear_at,
                        std::vector<PeerId> peers, SimDuration extra,
                        std::vector<PeerId> universe) {
    slow_groups_.push_back(
        {at, clear_at, std::move(peers), extra, std::move(universe)});
    return *this;
  }
  ChaosPlan& fault_window(SimTime at, SimTime clear_at,
                          net::LinkFaults faults) {
    fault_windows_.push_back({at, clear_at, faults});
    return *this;
  }
  ChaosPlan& churn(ChurnSpec spec) {
    churns_.push_back(std::move(spec));
    return *this;
  }
  ChaosPlan& byzantine(ByzantineSpec spec) {
    byzantines_.push_back(std::move(spec));
    return *this;
  }
  ChaosPlan& byzantine_window(SimTime start, SimTime end,
                              std::vector<PeerId> peers,
                              robust::AttackSpec attack) {
    byzantines_.push_back({start, end, std::move(peers), attack});
    return *this;
  }
  ChaosPlan& conn_reset_at(SimTime t, PeerId a, PeerId b,
                           SimDuration sim_outage = 30 * kMillisecond) {
    conn_resets_.push_back({t, a, b, sim_outage});
    return *this;
  }
  ChaosPlan& stall_window(SimTime at, SimTime until, PeerId from, PeerId to,
                          bool bidirectional = false) {
    stall_windows_.push_back({at, until, from, to, bidirectional});
    return *this;
  }
  ChaosPlan& throttle_window(SimTime at, SimTime until, PeerId peer,
                             std::uint64_t bytes_per_sec) {
    throttle_windows_.push_back({at, until, peer, bytes_per_sec});
    return *this;
  }
  ChaosPlan& reconnect_storm(ReconnectStormEvent e) {
    reconnect_storms_.push_back(std::move(e));
    return *this;
  }

  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  const std::vector<RestartEvent>& restarts() const { return restarts_; }
  const std::vector<PartitionEvent>& partitions() const {
    return partitions_;
  }
  const std::vector<SlowGroupEvent>& slow_groups() const {
    return slow_groups_;
  }
  const std::vector<FaultWindowEvent>& fault_windows() const {
    return fault_windows_;
  }
  const std::vector<ChurnSpec>& churns() const { return churns_; }
  const std::vector<ByzantineSpec>& byzantines() const { return byzantines_; }
  const std::vector<ConnResetEvent>& conn_resets() const {
    return conn_resets_;
  }
  const std::vector<StallWindowEvent>& stall_windows() const {
    return stall_windows_;
  }
  const std::vector<ThrottleWindowEvent>& throttle_windows() const {
    return throttle_windows_;
  }
  const std::vector<ReconnectStormEvent>& reconnect_storms() const {
    return reconnect_storms_;
  }

  bool empty() const {
    return crashes_.empty() && restarts_.empty() && partitions_.empty() &&
           slow_groups_.empty() && fault_windows_.empty() &&
           churns_.empty() && byzantines_.empty() && conn_resets_.empty() &&
           stall_windows_.empty() && throttle_windows_.empty() &&
           reconnect_storms_.empty();
  }

 private:
  std::vector<CrashEvent> crashes_;
  std::vector<RestartEvent> restarts_;
  std::vector<PartitionEvent> partitions_;
  std::vector<SlowGroupEvent> slow_groups_;
  std::vector<FaultWindowEvent> fault_windows_;
  std::vector<ChurnSpec> churns_;
  std::vector<ByzantineSpec> byzantines_;
  std::vector<ConnResetEvent> conn_resets_;
  std::vector<StallWindowEvent> stall_windows_;
  std::vector<ThrottleWindowEvent> throttle_windows_;
  std::vector<ReconnectStormEvent> reconnect_storms_;
};

}  // namespace p2pfl::chaos
