// Executor for ChaosPlans over the transport seam.
//
// The engine turns a declarative plan into transport timer events: every
// crash, restart, partition, heal and fault window becomes one scheduled
// callback, every injected fault is counted in the metrics registry
// (`chaos.*`) and emitted to the trace stream (category "chaos"), and
// every stochastic draw (churn timings) comes from an RNG forked off the
// transport's root. On the deterministic simulator those timers are
// discrete events on the virtual clock, so two runs with the same
// (seed, plan) produce byte-identical trace streams while different
// seeds diverge; on TCP the same plan fires on the monotonic clock and
// the loop thread, so one plan exercises both backends.
//
// Transport-native faults (connection resets, half-open stall windows,
// slow-writer throttling, reconnect storms) execute through a
// net::FaultInjector the engine owns and installs lazily on the
// transport — plans without transport faults never create it, keeping
// legacy metric registries and goldens untouched.
//
// Crashing a protocol peer usually involves more than silencing its
// links (Raft nodes must stop, timers must be cancelled), so the engine
// delegates the actual crash/restart to caller-supplied hooks; the
// defaults fall back to net.crash()/net.restore().
#pragma once

#include <functional>
#include <memory>
#include <set>

#include "chaos/plan.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"

namespace p2pfl::chaos {

struct ChaosEngineHooks {
  /// Take a peer down / bring it back. Defaults: net.crash/net.restore.
  std::function<void(PeerId)> crash;
  std::function<void(PeerId)> restart;
  /// Bring a peer back with its persistent state wiped (amnesia
  /// restart). Defaults to `restart` when unset, so plans that request
  /// amnesia still work against systems without durable state.
  std::function<void(PeerId)> restart_amnesia;
  /// Fired when a ByzantineSpec window opens/closes for a peer, after
  /// the engine's own registry was updated. Optional — the engine's
  /// registry() is the canonical adversary set; systems that cache
  /// per-peer attack state can mirror it here.
  std::function<void(PeerId, const robust::AttackSpec&)> byzantine_start;
  std::function<void(PeerId)> byzantine_end;
};

class ChaosEngine {
 public:
  /// The engine must outlive the simulation run it drives.
  ChaosEngine(net::Network& net, ChaosPlan plan, ChaosEngineHooks hooks = {});

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  /// Schedule every plan event on the transport. Call once; events in
  /// the past (at <= now) fire on the next transport step.
  void start();

  /// The transport-fault injector, created and installed on the
  /// transport on first use. Tests may open stall/throttle windows on it
  /// directly; plan events go through it automatically.
  net::FaultInjector& injector();

  // --- observation -------------------------------------------------------
  std::size_t faults_injected() const { return faults_injected_; }
  std::size_t crashes() const { return crashes_; }
  std::size_t restarts() const { return restarts_; }
  std::size_t amnesia_restarts() const { return amnesia_restarts_; }
  /// Crash/restart requests that were already satisfied (peer already
  /// down / already up); they no-op instead of re-running hooks.
  std::size_t redundant_faults() const { return redundant_faults_; }
  bool peer_down(PeerId p) const { return down_.count(p) > 0; }
  std::size_t peers_down() const { return down_.size(); }
  std::size_t byzantine_activations() const { return byzantine_activations_; }

  /// The live adversary set, updated as ByzantineSpec windows open and
  /// close. Protocol actors hold a const pointer to this and consult it
  /// at their injection points.
  robust::ByzantineRegistry& registry() { return registry_; }
  const robust::ByzantineRegistry& registry() const { return registry_; }

 private:
  void do_crash(PeerId peer, const char* cause);
  void do_restart(PeerId peer, const char* cause, bool amnesia = false);
  void redundant(const char* op, PeerId peer);
  void schedule_churn_failure(const ChurnSpec& spec, PeerId peer,
                              SimTime at);
  void churn_fail(const ChurnSpec& spec, PeerId peer);
  void trace_fault(const char* name, std::uint32_t tid,
                   obs::TraceArgs args);
  SimDuration exp_draw(SimDuration mean);
  /// schedule_after(at - now), clamped so past events fire immediately.
  void schedule_at(SimTime at, std::function<void()> fn);
  void do_conn_reset(PeerId a, PeerId b, SimDuration sim_outage);
  void storm_tick(const ReconnectStormEvent& e);

  net::Network& net_;
  net::Transport& tr_;
  ChaosPlan plan_;
  ChaosEngineHooks hooks_;
  Rng rng_;
  robust::ByzantineRegistry registry_;
  /// Lazily created so plans without transport faults register no
  /// chaos.transport.* counters (pre-PR metric dumps stay identical).
  std::unique_ptr<net::FaultInjector> injector_;
  std::set<PeerId> down_;
  net::LinkFaults saved_defaults_;
  std::size_t faults_injected_ = 0;
  std::size_t crashes_ = 0;
  std::size_t restarts_ = 0;
  std::size_t amnesia_restarts_ = 0;
  std::size_t redundant_faults_ = 0;
  std::size_t byzantine_activations_ = 0;
  bool started_ = false;
};

}  // namespace p2pfl::chaos
