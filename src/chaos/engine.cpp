#include "chaos/engine.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace p2pfl::chaos {

ChaosEngine::ChaosEngine(net::Network& net, ChaosPlan plan,
                         ChaosEngineHooks hooks)
    : net_(net),
      tr_(net.transport()),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      // net.rng() is the transport root — on the sim path the very same
      // object sim_.rng() used to be, so the fork stream (and every
      // golden trace derived from it) is unchanged.
      rng_(net.rng().fork(0x6368'616f'7321ULL /*"chaos!"*/)) {
  if (!hooks_.crash) hooks_.crash = [this](PeerId p) { net_.crash(p); };
  if (!hooks_.restart) hooks_.restart = [this](PeerId p) { net_.restore(p); };
  if (!hooks_.restart_amnesia) hooks_.restart_amnesia = hooks_.restart;
}

net::FaultInjector& ChaosEngine::injector() {
  if (!injector_) {
    injector_ = std::make_unique<net::FaultInjector>(net_.obs());
    tr_.set_fault_injector(injector_.get());
  }
  return *injector_;
}

void ChaosEngine::schedule_at(SimTime at, std::function<void()> fn) {
  const SimTime now = tr_.now();
  tr_.schedule_after(at > now ? at - now : 0, std::move(fn));
}

SimDuration ChaosEngine::exp_draw(SimDuration mean) {
  P2PFL_CHECK(mean > 0);
  // Inverse-CDF; uniform(0,1) < 1 keeps the log argument positive.
  const double u = rng_.uniform(0.0, 1.0);
  return static_cast<SimDuration>(-static_cast<double>(mean) *
                                  std::log(1.0 - u));
}

void ChaosEngine::trace_fault(const char* name, std::uint32_t tid,
                              obs::TraceArgs args) {
  ++faults_injected_;
  obs::Observability& o = net_.obs();
  o.metrics.counter(std::string("chaos.") + name).add(1);
  if (o.trace.category_enabled("chaos")) {
    o.trace.instant("chaos", std::string("chaos.") + name, tid,
                    std::move(args));
  }
}

void ChaosEngine::redundant(const char* op, PeerId peer) {
  // Double crash / double restart (overlapping plan entries, or a plan
  // restart racing a churn restart): the request is already satisfied.
  // Re-running the hooks would double-fire crash/restart side effects in
  // the system under test, so record the redundancy and do nothing.
  // Deliberately not a fault: faults_injected_ stays untouched.
  ++redundant_faults_;
  obs::Observability& o = net_.obs();
  o.metrics.counter("chaos.redundant").add(1);
  if (o.trace.category_enabled("chaos")) {
    o.trace.instant("chaos", "chaos.redundant", peer, {{"op", op}});
  }
}

void ChaosEngine::do_crash(PeerId peer, const char* cause) {
  if (down_.count(peer) > 0) {
    redundant("crash", peer);
    return;
  }
  down_.insert(peer);
  ++crashes_;
  trace_fault("crash", peer, {{"cause", cause}});
  hooks_.crash(peer);
}

void ChaosEngine::do_restart(PeerId peer, const char* cause, bool amnesia) {
  if (down_.count(peer) == 0) {
    redundant("restart", peer);
    return;
  }
  down_.erase(peer);
  ++restarts_;
  if (amnesia) {
    ++amnesia_restarts_;
    trace_fault("amnesia_restart", peer, {{"cause", cause}});
    hooks_.restart_amnesia(peer);
  } else {
    trace_fault("restart", peer, {{"cause", cause}});
    hooks_.restart(peer);
  }
}

void ChaosEngine::churn_fail(const ChurnSpec& spec, PeerId peer) {
  if (tr_.now() >= spec.end) return;
  if (down_.count(peer) > 0 ||
      down_.size() >= spec.max_concurrent_down) {
    // Postpone: the peer is already down (explicit plan crash) or the
    // concurrency guard is saturated.
    schedule_churn_failure(spec, peer, tr_.now() + exp_draw(spec.mttr));
    return;
  }
  do_crash(peer, "churn");
  const SimTime back_at = tr_.now() + exp_draw(spec.mttr);
  schedule_at(back_at, [this, &spec, peer] {
    // Drawn only when requested so amnesia-free plans keep the exact
    // RNG sequence (and thus trace stream) they had before this knob.
    const bool amnesia =
        spec.amnesia_prob > 0 &&
        rng_.uniform(0.0, 1.0) < spec.amnesia_prob;
    do_restart(peer, "churn", amnesia);
    const SimTime next_fail = tr_.now() + exp_draw(spec.mttf);
    if (next_fail < spec.end) schedule_churn_failure(spec, peer, next_fail);
  });
}

void ChaosEngine::schedule_churn_failure(const ChurnSpec& spec, PeerId peer,
                                         SimTime at) {
  if (at >= spec.end) return;
  schedule_at(at, [this, &spec, peer] { churn_fail(spec, peer); });
}

void ChaosEngine::start() {
  P2PFL_CHECK_MSG(!started_, "ChaosEngine::start called twice");
  started_ = true;

  for (const CrashEvent& e : plan_.crashes()) {
    schedule_at(e.at, [this, e] { do_crash(e.peer, "plan"); });
  }
  for (const RestartEvent& e : plan_.restarts()) {
    schedule_at(e.at,
                     [this, e] { do_restart(e.peer, "plan", e.amnesia); });
  }
  for (const PartitionEvent& e : plan_.partitions()) {
    schedule_at(e.at, [this, &e] {
      net_.partition(e.groups);
      trace_fault("partition", 0,
                  {{"groups", static_cast<std::uint64_t>(e.groups.size())}});
    });
    if (e.heal_at > 0) {
      schedule_at(e.heal_at, [this] {
        net_.heal();
        trace_fault("heal", 0, {});
      });
    }
  }
  for (const SlowGroupEvent& e : plan_.slow_groups()) {
    schedule_at(e.at, [this, &e] {
      for (PeerId s : e.peers) {
        for (PeerId o : e.universe) {
          if (o == s) continue;
          net_.set_link_delay(s, o, e.extra);
          net_.set_link_delay(o, s, e.extra);
        }
      }
      trace_fault("slow_group", e.peers.empty() ? 0 : e.peers.front(),
                  {{"extra_us", e.extra},
                   {"peers", static_cast<std::uint64_t>(e.peers.size())}});
    });
    if (e.clear_at > 0) {
      schedule_at(e.clear_at, [this, &e] {
        for (PeerId s : e.peers) {
          for (PeerId o : e.universe) {
            if (o == s) continue;
            net_.clear_link_delay(s, o);
            net_.clear_link_delay(o, s);
          }
        }
        trace_fault("slow_group_clear",
                    e.peers.empty() ? 0 : e.peers.front(), {});
      });
    }
  }
  for (const FaultWindowEvent& e : plan_.fault_windows()) {
    schedule_at(e.at, [this, &e] {
      saved_defaults_ = net_.config().faults;
      net_.set_default_faults(e.faults);
      trace_fault("fault_window", 0,
                  {{"drop", e.faults.drop_prob},
                   {"dup", e.faults.duplicate_prob},
                   {"reorder", e.faults.reorder_prob}});
    });
    if (e.clear_at > 0) {
      schedule_at(e.clear_at, [this] {
        net_.set_default_faults(saved_defaults_);
        trace_fault("fault_window_clear", 0, {});
      });
    }
  }
  for (const ByzantineSpec& spec : plan_.byzantines()) {
    P2PFL_CHECK_MSG(!spec.peers.empty(), "byzantine spec without peers");
    schedule_at(spec.start, [this, &spec] {
      for (PeerId p : spec.peers) {
        registry_.activate(p, spec.attack);
        ++byzantine_activations_;
        trace_fault("byzantine_start", p,
                    {{"attack", robust::attack_name(spec.attack.kind)},
                     {"magnitude", spec.attack.magnitude}});
        if (hooks_.byzantine_start) hooks_.byzantine_start(p, spec.attack);
      }
    });
    if (spec.end > 0) {
      schedule_at(spec.end, [this, &spec] {
        for (PeerId p : spec.peers) {
          registry_.deactivate(p);
          trace_fault("byzantine_end", p, {});
          if (hooks_.byzantine_end) hooks_.byzantine_end(p);
        }
      });
    }
  }
  for (const ChurnSpec& spec : plan_.churns()) {
    P2PFL_CHECK_MSG(!spec.peers.empty(), "churn spec without peers");
    P2PFL_CHECK(spec.end > spec.start);
    for (PeerId p : spec.peers) {
      schedule_churn_failure(spec, p, spec.start + exp_draw(spec.mttf));
    }
  }

  // Transport-native faults, scheduled after every legacy event type so
  // pre-PR plans keep their exact event insertion order (and goldens).
  // Install the injector up front: its windows must be ready before the
  // first event fires, and creating it inside a TCP loop-thread callback
  // would race the off-thread send_frame path.
  if (!plan_.conn_resets().empty() || !plan_.stall_windows().empty() ||
      !plan_.throttle_windows().empty() ||
      !plan_.reconnect_storms().empty()) {
    injector();
  }
  for (const ConnResetEvent& e : plan_.conn_resets()) {
    schedule_at(e.at,
                [this, e] { do_conn_reset(e.a, e.b, e.sim_outage); });
  }
  for (const StallWindowEvent& e : plan_.stall_windows()) {
    P2PFL_CHECK(e.until > e.at);
    schedule_at(e.at, [this, e] {
      if (e.bidirectional) {
        injector().stall_pair(e.from, e.to, e.until);
      } else {
        injector().stall_link(e.from, e.to, e.until);
      }
      trace_fault("transport.stall", e.from,
                  {{"to", static_cast<std::uint64_t>(e.to)},
                   {"until_us", e.until}});
    });
  }
  for (const ThrottleWindowEvent& e : plan_.throttle_windows()) {
    P2PFL_CHECK(e.until > e.at);
    P2PFL_CHECK(e.bytes_per_sec > 0);
    schedule_at(e.at, [this, e] {
      injector().throttle_peer(e.peer, e.bytes_per_sec, e.until);
      trace_fault("transport.throttle", e.peer,
                  {{"bytes_per_sec", e.bytes_per_sec},
                   {"until_us", e.until}});
    });
  }
  for (const ReconnectStormEvent& e : plan_.reconnect_storms()) {
    P2PFL_CHECK_MSG(e.pairs.size() >= 2 && e.pairs.size() % 2 == 0,
                    "reconnect storm needs a flattened pair list");
    P2PFL_CHECK(e.period > 0);
    P2PFL_CHECK(e.until > e.at);
    schedule_at(e.at, [this, &e] { storm_tick(e); });
  }
}

void ChaosEngine::do_conn_reset(PeerId a, PeerId b, SimDuration sim_outage) {
  if (tr_.deterministic()) {
    // The simulator has no connections to tear down; model the reconnect
    // outage as a bidirectional stall of the modeled duration.
    injector().stall_pair(a, b, tr_.now() + sim_outage);
  } else {
    tr_.inject_connection_reset(a, b);
  }
  trace_fault("transport.conn_reset", a,
              {{"peer_b", static_cast<std::uint64_t>(b)}});
}

void ChaosEngine::storm_tick(const ReconnectStormEvent& e) {
  if (tr_.now() >= e.until) return;
  for (std::size_t i = 0; i + 1 < e.pairs.size(); i += 2) {
    do_conn_reset(e.pairs[i], e.pairs[i + 1], e.sim_outage);
  }
  schedule_at(tr_.now() + e.period, [this, &e] { storm_tick(e); });
}

}  // namespace p2pfl::chaos
