#include "chaos/soak.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>

#include "chaos/engine.hpp"
#include "common/check.hpp"
#include "core/topology.hpp"
#include "core/two_layer_agg.hpp"
#include "core/watchdog.hpp"
#include "obs/export.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::chaos {

ChaosSoakResult run_chaos_soak(const ChaosSoakConfig& cfg) {
  P2PFL_CHECK(cfg.peers > 0 && cfg.groups > 0 && cfg.rounds > 0);
  sim::Simulator sim(cfg.seed);
  if (cfg.capture_trace) sim.obs().trace.set_enabled(true);
  if (cfg.capture_spans) sim.obs().spans.set_enabled(true);
  net::Network net(sim, cfg.net);

  const core::Topology topo = core::Topology::even(cfg.peers, cfg.groups);
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  for (PeerId id : topo.all_peers()) {
    auto host = std::make_unique<net::PeerHost>();
    net.attach(id, host.get());
    hosts.emplace(id, std::move(host));
  }

  core::AggregationConfig acfg;
  acfg.sac_dropout_tolerance = cfg.dropout_tolerance;
  // Every started round must resolve (commit or fail) within its slot so
  // the next round never inherits an undecided predecessor.
  acfg.collect_timeout = cfg.round_interval;
  acfg.sac_share_timeout = 150 * kMillisecond;
  acfg.sac_subtotal_timeout = 150 * kMillisecond;
  acfg.sac_share_retry_limit = cfg.sac_share_retries;
  acfg.upload_retry = 300 * kMillisecond;
  core::TwoLayerAggregator agg(
      topo, acfg, net,
      [&](PeerId id) -> net::PeerHost& { return *hosts.at(id); });

  // Constant per-peer models make the exact global model computable.
  const auto model_of = [&](PeerId id) {
    return secagg::Vector(cfg.dim, static_cast<float>(id + 1));
  };

  // Per-round health sampling + SLO evaluation over the same run.
  const bool watch = cfg.capture_timeseries || !cfg.slo_rules.empty();
  std::unique_ptr<core::RoundWatchdog> watchdog;
  if (watch) {
    core::WatchdogConfig wcfg;
    wcfg.rules = cfg.slo_rules;
    wcfg.model_payload_bytes = 4 * static_cast<std::uint64_t>(cfg.dim);
    wcfg.dropout_tolerance = cfg.dropout_tolerance;
    watchdog = std::make_unique<core::RoundWatchdog>(sim, net, topo, wcfg);
    watchdog->on_sample = cfg.on_sample;
  }

  ChaosSoakResult res;
  std::optional<RoundOutcome> current;
  agg.on_global_model = [&](std::uint64_t round, const secagg::Vector& g,
                            std::size_t groups_used) {
    if (watchdog) {
      watchdog->round_committed(round, agg.last_contributors().size(),
                                groups_used);
    }
    if (!current || current->round != round) return;
    const std::vector<PeerId>& who = agg.last_contributors();
    double expected = 0.0;
    for (PeerId p : who) expected += static_cast<double>(p + 1);
    expected /= static_cast<double>(who.empty() ? 1 : who.size());
    double err = 0.0;
    for (float v : g) {
      err = std::max(err, std::abs(static_cast<double>(v) - expected));
    }
    current->committed = true;
    current->contributors = who.size();
    current->max_abs_error = err;
  };
  if (cfg.capture_spans) {
    // Abort flight recorder: dump the round's retained spans the moment
    // the round is torn down (abort_round fires before the next round's
    // spans open, so the dump is the abort-time snapshot).
    agg.on_round_aborted = [&](std::uint64_t round) {
      res.postmortems.push_back(obs::make_postmortem(sim.obs().spans, round));
    };
  }

  // Fault plan: ambient faults come from cfg.net.faults; the engine adds
  // churn and the partition window. Both end early enough that the tail
  // rounds run on a healed network.
  ChaosPlan plan;
  const SimTime total = static_cast<SimTime>(cfg.rounds) * cfg.round_interval;
  if (cfg.churn_mttf > 0) {
    ChurnSpec churn;
    churn.start = cfg.round_interval / 2;
    churn.end = std::max<SimTime>(churn.start + 1,
                                  total - 3 * cfg.round_interval);
    churn.mttf = cfg.churn_mttf;
    churn.mttr = cfg.churn_mttr;
    churn.peers = topo.all_peers();
    churn.max_concurrent_down = std::max<std::size_t>(1, cfg.peers / 3);
    plan.churn(churn);
  }
  if (cfg.partition_at > 0 && cfg.heal_at > cfg.partition_at) {
    std::vector<PeerId> island = topo.group(0);
    std::vector<PeerId> mainland;
    for (PeerId p : topo.all_peers()) {
      if (std::find(island.begin(), island.end(), p) == island.end()) {
        mainland.push_back(p);
      }
    }
    plan.partition_window(cfg.partition_at, cfg.heal_at,
                          {island, mainland});
  }
  ChaosEngine engine(net, std::move(plan));
  engine.start();

  for (std::uint64_t r = 1; r <= cfg.rounds; ++r) {
    // Leadership from liveness: first live member leads its subgroup,
    // first live subgroup leader chairs the FedAvg layer (the Raft
    // backend's steady-state answer, without running Raft here).
    core::RoundLeadership lead;
    lead.subgroup_leaders.assign(topo.subgroup_count(), kNoPeer);
    for (SubgroupId g = 0; g < topo.subgroup_count(); ++g) {
      for (PeerId p : topo.group(g)) {
        if (!net.crashed(p)) {
          lead.subgroup_leaders[g] = p;
          break;
        }
      }
      if (lead.subgroup_leaders[g] == kNoPeer) {
        lead.subgroup_leaders[g] = topo.group(g).front();  // all dead
      }
      if (lead.fedavg_leader == kNoPeer &&
          !net.crashed(lead.subgroup_leaders[g])) {
        lead.fedavg_leader = lead.subgroup_leaders[g];
      }
    }
    if (lead.fedavg_leader == kNoPeer) {
      // Even a skipped tick (no live leader candidate anywhere) becomes
      // an uncommitted sample: a crash window shows up in the series as
      // censored round latency, not as a silent gap.
      ++res.rounds_skipped;
      if (watchdog) watchdog->round_started(r);
      sim.run_for(cfg.round_interval);
      if (watchdog) watchdog->round_finished(r);
      continue;
    }

    current = RoundOutcome{};
    current->round = r;
    ++res.rounds_started;
    if (watchdog) watchdog->round_started(r);
    agg.begin_round(r, lead, model_of);
    sim.run_for(cfg.round_interval);
    if (watchdog) watchdog->round_finished(r);

    if (current->committed) {
      ++res.rounds_committed;
      res.max_abs_error = std::max(res.max_abs_error,
                                   current->max_abs_error);
      if (current->max_abs_error > cfg.exact_tol) {
        res.all_commits_exact = false;
      }
    } else {
      ++res.rounds_aborted;
    }
    res.outcomes.push_back(*current);
    current.reset();
  }

  if (cfg.capture_spans) {
    // Tear down a trailing undecided round so its abort (and post-mortem)
    // is recorded, then extract every committed round's critical path.
    agg.abort_round();
    obs::SpanRecorder& spans = sim.obs().spans;
    for (const RoundOutcome& oc : res.outcomes) {
      if (oc.committed) {
        res.critical_paths.push_back(extract_critical_path(spans, oc.round));
      }
    }
    res.spans_jsonl = obs::spans_jsonl(spans);
  }

  if (watchdog) {
    res.timeseries_jsonl = watchdog->series().jsonl();
    res.slo_report = watchdog->report();
    res.slo_alerts = watchdog->alerts();
  }

  res.crashes = engine.crashes();
  res.restarts = engine.restarts();
  res.traffic = net.stats();
  bool tail_commit = false;
  const std::size_t tail = std::min<std::size_t>(3, res.outcomes.size());
  for (std::size_t i = res.outcomes.size() - tail; i < res.outcomes.size();
       ++i) {
    if (res.outcomes[i].committed) tail_commit = true;
  }
  res.liveness_ok = res.rounds_committed > 0 && tail_commit;
  if (cfg.capture_trace) {
    res.trace_json =
        cfg.capture_spans
            ? obs::chrome_trace_json(sim.obs().trace, sim.obs().spans)
            : obs::chrome_trace_json(sim.obs().trace);
  }
  return res;
}

}  // namespace p2pfl::chaos
