#include "secagg/ring.hpp"

#include <cmath>

#include "common/check.hpp"

namespace p2pfl::secagg {

RingCodec::RingCodec(double scale) : scale_(scale) {
  P2PFL_CHECK(scale > 0.0);
}

RingVector RingCodec::encode(std::span<const float> v) const {
  RingVector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    // Two's-complement embedding of the signed fixed-point value.
    const double q = std::nearbyint(static_cast<double>(v[i]) * scale_);
    out[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(q));
  }
  return out;
}

Vector RingCodec::decode_mean(const RingVector& sum,
                              std::size_t count) const {
  P2PFL_CHECK(count >= 1);
  Vector out(sum.size());
  for (std::size_t i = 0; i < sum.size(); ++i) {
    const double q = static_cast<double>(static_cast<std::int64_t>(sum[i]));
    out[i] = static_cast<float>(q / scale_ / static_cast<double>(count));
  }
  return out;
}

std::vector<RingVector> ring_divide(const RingVector& secret, std::size_t n,
                                    Rng& rng) {
  P2PFL_CHECK(n >= 1);
  std::vector<RingVector> shares(n, RingVector(secret.size()));
  for (std::size_t e = 0; e < secret.size(); ++e) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const std::uint64_t r = rng.next_u64();
      shares[i][e] = r;
      acc += r;  // wraps mod 2^64, as intended
    }
    shares[n - 1][e] = secret[e] - acc;
  }
  return shares;
}

RingVector ring_sum(std::span<const RingVector> shares) {
  P2PFL_CHECK(!shares.empty());
  RingVector acc(shares.front().size(), 0);
  for (const RingVector& s : shares) {
    P2PFL_CHECK(s.size() == acc.size());
    for (std::size_t e = 0; e < acc.size(); ++e) acc[e] += s[e];
  }
  return acc;
}

Vector ring_sac_average(std::span<const Vector> models, Rng& rng,
                        const RingCodec& codec) {
  P2PFL_CHECK(!models.empty());
  const std::size_t n = models.size();
  const std::size_t dim = models.front().size();
  // subtotal[s] accumulates share s from every peer, exactly as in SAC.
  std::vector<RingVector> subtotal(n, RingVector(dim, 0));
  for (const Vector& model : models) {
    P2PFL_CHECK(model.size() == dim);
    const auto shares = ring_divide(codec.encode(model), n, rng);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t e = 0; e < dim; ++e) {
        subtotal[s][e] += shares[s][e];
      }
    }
  }
  return codec.decode_mean(ring_sum(subtotal), n);
}

}  // namespace p2pfl::secagg
