#include "secagg/pairwise_mask.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace p2pfl::secagg {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::vector<double> prg_vector(std::uint64_t seed, std::size_t dim,
                               double range) {
  Rng rng(seed);
  std::vector<double> out(dim);
  for (double& v : out) v = rng.uniform(-range, range);
  return out;
}

}  // namespace

PairwiseMasker::PairwiseMasker(std::size_t participants,
                               std::uint64_t session, double mask_range)
    : n_(participants), session_(session), range_(mask_range) {
  P2PFL_CHECK(participants >= 2);
  P2PFL_CHECK(mask_range > 0.0);
}

std::uint64_t PairwiseMasker::pair_seed(std::size_t i, std::size_t j) const {
  P2PFL_CHECK(i < n_ && j < n_ && i != j);
  const std::uint64_t lo = std::min(i, j);
  const std::uint64_t hi = std::max(i, j);
  return mix64(session_ ^ mix64(lo * 0x1'0000'0001ULL + hi));
}

std::vector<double> PairwiseMasker::pair_mask(std::size_t i, std::size_t j,
                                              std::size_t dim) const {
  return prg_vector(pair_seed(i, j), dim, range_);
}

std::vector<double> PairwiseMasker::individual_mask(std::size_t u,
                                                    std::size_t dim) const {
  P2PFL_CHECK(u < n_);
  return prg_vector(mix64(session_ ^ mix64(0xb00b'5eedULL + u)), dim,
                    range_);
}

Vector PairwiseMasker::mask(std::size_t u,
                            std::span<const float> model) const {
  P2PFL_CHECK(u < n_);
  std::vector<double> acc(model.begin(), model.end());
  const auto b = individual_mask(u, model.size());
  for (std::size_t e = 0; e < acc.size(); ++e) acc[e] += b[e];
  for (std::size_t v = 0; v < n_; ++v) {
    if (v == u) continue;
    const auto m = pair_mask(u, v, model.size());
    // Lower index adds, higher index subtracts: sums cancel pairwise.
    const double sign = u < v ? 1.0 : -1.0;
    for (std::size_t e = 0; e < acc.size(); ++e) acc[e] += sign * m[e];
  }
  return to_vector(acc);
}

Vector PairwiseMasker::unmask_sum(
    std::span<const Vector> masked,
    std::span<const std::size_t> survivor_ids,
    std::span<const std::size_t> dropout_ids) const {
  P2PFL_CHECK(!masked.empty());
  P2PFL_CHECK(masked.size() == survivor_ids.size());
  const std::size_t dim = masked.front().size();
  std::vector<double> acc(dim, 0.0);
  for (const Vector& y : masked) {
    P2PFL_CHECK(y.size() == dim);
    accumulate(acc, y);
  }
  // Remove the survivors' individual masks (their seeds are revealed via
  // the secret-sharing round; here the server derives them directly).
  for (std::size_t u : survivor_ids) {
    const auto b = individual_mask(u, dim);
    for (std::size_t e = 0; e < dim; ++e) acc[e] -= b[e];
  }
  // Remove the dangling pairwise masks between survivors and dropouts:
  // the dropout never uploaded, so its halves did not cancel.
  for (std::size_t d : dropout_ids) {
    for (std::size_t u : survivor_ids) {
      const auto m = pair_mask(u, d, dim);
      const double sign = u < d ? 1.0 : -1.0;
      for (std::size_t e = 0; e < dim; ++e) acc[e] -= sign * m[e];
    }
  }
  return to_vector(acc);
}

double PairwiseMasker::server_round_cost_units(std::size_t users) {
  return 2.0 * static_cast<double>(users);
}

}  // namespace p2pfl::secagg
