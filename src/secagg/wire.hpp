// Binary wire codec for the SAC protocol messages.
//
// Canonical little-endian encoding for the four SacPeer message types
// (share bundle, subtotal, subtotal request, share retransmission
// request). The network's encode-verify mode checks every charge against
// these encodings; the charged WireSize helpers below also expose the
// |w|-unit payload portion the paper's Eq. (4)/(5) cost analysis counts
// and, when a round models a large CNN on tiny vectors
// (wire_bytes_per_share override), the declared modeled-payload delta.
#pragma once

#include <optional>

#include "net/codec.hpp"
#include "net/network.hpp"
#include "secagg/sac_actor.hpp"

namespace p2pfl::secagg::wire {

Bytes encode(const SacShareMsg& m);
Bytes encode(const SacSubtotalMsg& m);
Bytes encode(const SacSubtotalReq& m);
Bytes encode(const SacShareReq& m);
Bytes encode(const SacCommitEchoMsg& m);

std::optional<SacShareMsg> decode_share(const Bytes& b);
std::optional<SacSubtotalMsg> decode_subtotal(const Bytes& b);
std::optional<SacSubtotalReq> decode_subtotal_req(const Bytes& b);
std::optional<SacShareReq> decode_share_req(const Bytes& b);
std::optional<SacCommitEchoMsg> decode_commit_echo(const Bytes& b);

/// FNV-1a digest of one share's raw float bytes (the per-share
/// commitment entry) / of a whole commitment vector (what holders echo
/// to the leader). Not cryptographic: the threat model is consistency
/// attribution among known members, not forgery by outsiders.
std::uint64_t share_digest(const Vector& share);
std::uint64_t commit_digest(const std::vector<std::uint64_t>& commit);

/// Fixed encoded sizes of the control messages (u64 round + u32 fields).
inline constexpr std::uint64_t kSubtotalReqWire = 16;
inline constexpr std::uint64_t kShareReqWire = 12;
/// Framing of a share bundle: 16-byte header (round + from_pos + part
/// count) plus 8 bytes per part (share index + element count).
inline constexpr std::uint64_t kShareHeader = 16;
inline constexpr std::uint64_t kPerPartHeader = 8;
/// Framing of a subtotal: round + idx + element count.
inline constexpr std::uint64_t kSubtotalHeader = 16;
/// Commit-echo framing: round + from_pos + two vector length prefixes;
/// each reported position adds 9 bytes (u64 digest + bad flag).
inline constexpr std::uint64_t kEchoHeader = 20;
inline constexpr std::uint64_t kEchoPerPos = 9;
/// A non-empty commitment adds its length prefix + 8 bytes per share.
inline constexpr std::uint64_t kCommitPrefix = 4;
inline constexpr std::uint64_t kCommitPerShare = 8;

/// Charged size of a share bundle of `parts` shares, each accounted as
/// `payload_each` model bytes while actually holding `dim` floats.
/// `commit_entries` > 0 adds the detection commitment's framing bytes
/// (commitments are overhead, never Eq. (4)/(5) payload).
net::WireSize share_wire(std::size_t parts, std::uint64_t payload_each,
                         std::size_t dim, std::size_t commit_entries = 0);

/// Charged size of a commit echo covering `positions` group members.
/// Pure framing: payload 0.
net::WireSize echo_wire(std::size_t positions);

/// Charged size of one subtotal accounted as `payload` model bytes while
/// actually holding `dim` floats.
net::WireSize subtotal_wire(std::uint64_t payload, std::size_t dim);

/// Register the SAC codecs for one kind family ("<family>:share" ...),
/// e.g. "sac" for the two-layer subgroups and "ml" for the multilayer
/// tree. Idempotent per family; called by every SacPeer constructor with
/// the first path segment of its channel.
void register_codecs(const std::string& family);

}  // namespace p2pfl::secagg::wire
