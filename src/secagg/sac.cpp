#include "secagg/sac.hpp"

#include "common/check.hpp"

namespace p2pfl::secagg {

std::vector<std::size_t> replica_share_indices(std::size_t j, std::size_t n,
                                               std::size_t k) {
  P2PFL_CHECK(n >= 1 && k >= 1 && k <= n && j < n);
  std::vector<std::size_t> out;
  out.reserve(n - k + 1);
  for (std::size_t d = 0; d <= n - k; ++d) out.push_back((j + d) % n);
  return out;
}

std::vector<std::size_t> subtotal_holders(std::size_t s, std::size_t n,
                                          std::size_t k) {
  P2PFL_CHECK(n >= 1 && k >= 1 && k <= n && s < n);
  std::vector<std::size_t> out;
  out.reserve(n - k + 1);
  // Peers j with s in {j, ..., j+n-k}  <=>  j in {s-(n-k), ..., s} mod n.
  for (std::size_t d = 0; d <= n - k; ++d) out.push_back((s + n - d) % n);
  return out;
}

Vector sac_average(std::span<const Vector> models, Rng& rng,
                   const SplitOptions& opts) {
  P2PFL_CHECK(!models.empty());
  const std::size_t n = models.size();
  const std::size_t dim = models.front().size();

  // Subtotal s accumulates share s of every peer's model; summing the
  // subtotals reproduces the sum of the models (Eq. 1-3).
  std::vector<std::vector<double>> subtotal(n, std::vector<double>(dim, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    P2PFL_CHECK(models[i].size() == dim);
    const auto shares = divide(models[i], n, rng, opts);
    for (std::size_t s = 0; s < n; ++s) accumulate(subtotal[s], shares[s]);
  }
  std::vector<double> total(dim, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    accumulate(total, to_vector(subtotal[s]));
  }
  return to_vector(total, static_cast<double>(n));
}

FtSacResult fault_tolerant_sac_average(
    std::span<const Vector> models, std::size_t k,
    const std::vector<bool>& crashed_after_sharing, Rng& rng,
    const SplitOptions& opts) {
  P2PFL_CHECK(!models.empty());
  const std::size_t n = models.size();
  P2PFL_CHECK(k >= 1 && k <= n);
  P2PFL_CHECK(crashed_after_sharing.size() == n);
  const std::size_t dim = models.front().size();

  FtSacResult result;
  for (std::size_t j = 0; j < n; ++j) {
    if (!crashed_after_sharing[j]) ++result.alive;
  }
  if (result.alive == 0) return result;

  // Share phase completed before any crash: every peer's shares exist.
  std::vector<std::vector<Vector>> shares;  // shares[i][s]
  shares.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    P2PFL_CHECK(models[i].size() == dim);
    shares.push_back(divide(models[i], n, rng, opts));
  }

  // Reconstruction: each subtotal must be obtainable from a live holder.
  std::vector<double> total(dim, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    bool have = false;
    for (std::size_t holder : subtotal_holders(s, n, k)) {
      if (!crashed_after_sharing[holder]) {
        have = true;
        break;
      }
    }
    if (!have) return result;  // ok stays false
    std::vector<double> sub(dim, 0.0);
    for (std::size_t i = 0; i < n; ++i) accumulate(sub, shares[i][s]);
    accumulate(total, to_vector(sub));
  }
  result.ok = true;
  result.average = to_vector(total, static_cast<double>(n));
  return result;
}

}  // namespace p2pfl::secagg
