// Message-driven SAC participant (the protocol form of Algs. 2 and 4).
//
// One SacPeer runs on each subgroup member; they exchange shares and
// subtotals through the simulated network, so the byte counters observed
// by net::Network are exactly the quantities the paper's cost analysis
// (§VII-A/B) counts, and crashes injected mid-protocol exercise the real
// recovery path of Alg. 4 (leader asks surviving replica holders for the
// missing subtotals — the Fig. 3 scenario).
//
// Two collection modes:
//  * broadcast (Alg. 2 baseline): every peer broadcasts its subtotal to
//    every other, all peers finish with the average;
//    cost 2n(n−1)|w| per round.
//  * leader collect (two-layer mode): the k−1 peers whose primary
//    subtotal the leader does not hold send it to the leader only;
//    cost {n(n−1)(n−k+1) + (k−1)}|w|, reducing to (n²−1)|w| at k = n.
//
// Retry hardening (for lossy/duplicating networks, see src/chaos): every
// peer retains its round's shares and, while its held subtotals are
// incomplete, requests retransmission from silent positions on a
// capped-exponential-backoff timer; all handlers are idempotent, so
// duplicated or retransmitted messages never double-count. The leader's
// subtotal recovery cycles through replica holders for several passes
// (a holder that was merely behind answers on a later pass) before
// declaring the round unrecoverable. In a fault-free round no retry
// timer ever fires and the wire cost is unchanged.
//
// Round control (who calls begin_round, restarts after a pre-share-phase
// dropout, pushing the result up to the FedAvg layer) belongs to the
// two-layer system in src/core.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/mux.hpp"
#include "net/network.hpp"
#include "robust/attack.hpp"
#include "secagg/sac.hpp"
#include "net/transport.hpp"

namespace p2pfl::secagg {

using RoundId = std::uint64_t;

struct SacActorOptions {
  /// Reconstruction threshold k (clamped to the group size per round).
  std::size_t k = 0;  // 0 = n (no fault tolerance, plain SAC)
  SplitOptions split;
  /// Alg. 2 mode: subtotals are broadcast and every peer completes.
  bool broadcast_subtotals = false;
  /// Wire size of one share / subtotal. 0 = 4 bytes * model dimension.
  /// Setting it explicitly lets cost experiments model a 1.25M-parameter
  /// CNN while computing on tiny vectors.
  std::uint64_t wire_bytes_per_share = 0;
  /// Base patience for shares / subtotals; retries back off from here.
  SimDuration share_timeout = 500 * kMillisecond;
  SimDuration subtotal_timeout = 500 * kMillisecond;
  /// Retry timers double each firing, capped at backoff_cap × the base
  /// timeout.
  std::size_t backoff_cap = 8;
  /// Leader: retransmission requests sent before on_share_timeout
  /// reports the still-silent positions (non-leaders retry forever; the
  /// round controller supersedes them).
  std::size_t share_retry_limit = 2;
  /// Full cycles through a subtotal's replica holders before the round
  /// is declared unrecoverable.
  std::size_t recovery_passes = 3;
  /// Share-consistency detection: every share bundle carries an FNV-1a
  /// commitment of the sender's whole split, holders echo commitment
  /// digests to the leader, and the leader attributes inconsistent or
  /// equivocating senders via on_byzantine. Off by default — it adds
  /// framing bytes to every share bundle plus one echo per member per
  /// round, so the historical Eq. (4)/(5) byte accounting only changes
  /// when a deployment opts in.
  bool detect_inconsistent_shares = false;
  /// Adversary registry consulted at the Byzantine injection points
  /// (inconsistent share distribution, equivocating resends). nullptr =
  /// everyone honest. The registry outlives the actor (the chaos engine
  /// owns it).
  const robust::ByzantineRegistry* byzantine = nullptr;
};

/// Messages (bodies carried in net::Envelope::body).
struct SacShareMsg {
  RoundId round = 0;
  std::uint32_t from_pos = 0;
  std::vector<std::pair<std::uint32_t, Vector>> parts;  // (share idx, data)
  /// Share-consistency commitment (detection mode only, else empty):
  /// FNV-1a digest of each of the sender's n shares, same vector to
  /// every holder. A holder checks its own parts against it and echoes
  /// the vector's digest to the leader, so a sender that distributed
  /// inconsistent shares is caught either by the direct check (data ≠
  /// commitment) or by the cross-holder echo (commitments differ).
  std::vector<std::uint64_t> commit;
};
/// Per-holder detection report, sent to the leader when the share phase
/// settles: for every position, the digest of the commit vector first
/// seen from it (0 = nothing received) and whether any of its bundles
/// failed the direct data-vs-commitment check or changed commitments
/// between sends.
struct SacCommitEchoMsg {
  RoundId round = 0;
  std::uint32_t from_pos = 0;
  std::vector<std::uint64_t> digests;
  std::vector<std::uint8_t> bad;
};
struct SacSubtotalMsg {
  RoundId round = 0;
  std::uint32_t idx = 0;
  Vector value;
};
struct SacSubtotalReq {
  RoundId round = 0;
  std::uint32_t idx = 0;
  std::uint32_t reply_to_pos = 0;
};
/// "Your shares for my position never arrived — send them again."
struct SacShareReq {
  RoundId round = 0;
  std::uint32_t reply_to_pos = 0;
};

class SacPeer {
 public:
  /// `channel` namespaces this subgroup's SAC traffic (e.g. "sac/sg2").
  SacPeer(PeerId id, std::string channel, SacActorOptions opts,
          net::Network& net, net::PeerHost& host);
  ~SacPeer();

  SacPeer(const SacPeer&) = delete;
  SacPeer& operator=(const SacPeer&) = delete;

  /// Join round `round` contributing `model`. `group` lists the round's
  /// participants (identical on every member; defines share placement);
  /// `leader_pos` is the aggregation leader's position in it. Starting a
  /// newer round abandons any older one. `k_override` replaces the
  /// configured threshold for this round (0 = use SacActorOptions::k) —
  /// the two-layer system uses it to apply one dropout-tolerance budget
  /// to subgroups of different sizes.
  void begin_round(RoundId round, Vector model, std::vector<PeerId> group,
                   std::size_t leader_pos, std::size_t k_override = 0);

  /// Abandon the current round and cancel timers (peer crash / reset).
  void halt();

  PeerId id() const { return id_; }
  std::optional<RoundId> active_round() const;

  /// Fired when the average is known: on the leader in collect mode, on
  /// every live peer in broadcast mode.
  std::function<void(RoundId, const Vector&)> on_complete;
  /// Leader only: the share phase stayed incomplete after the retry
  /// budget; `missing` lists positions that contributed no shares. The
  /// caller decides how to restart.
  std::function<void(RoundId, const std::vector<std::size_t>&)>
      on_share_timeout;
  /// Leader only: a subtotal could not be recovered from any replica
  /// after all recovery passes (more than n−k peers lost) — the round
  /// is unrecoverable.
  std::function<void(RoundId)> on_unrecoverable;
  /// Leader only (detection mode): positions attributed as Byzantine
  /// this round — inconsistent share distribution proven by conflicting
  /// commitment digests, a direct data-vs-commitment mismatch, or a
  /// commitment that changed between sends. Fired as soon as a position
  /// is first attributed; each position is reported at most once per
  /// round.
  std::function<void(RoundId, const std::vector<std::size_t>&)> on_byzantine;

 private:
  struct RoundState {
    RoundId round = 0;
    std::vector<PeerId> group;
    std::size_t n = 0;
    std::size_t k = 0;
    std::size_t my_pos = 0;
    std::size_t leader_pos = 0;
    std::uint64_t share_bytes = 0;
    /// This peer's own split, retained for retransmission requests.
    std::vector<Vector> shares;
    /// Detection mode: commitment over the true split (resends must
    /// repeat it bit-identically or be flagged as equivocation).
    std::vector<std::uint64_t> my_commit;
    /// Detection mode, every peer: first-seen commitment digest per
    /// position (0 = none yet) and whether a position's bundles ever
    /// failed a consistency check locally.
    std::vector<std::uint64_t> seen_digest;
    std::vector<std::uint8_t> peer_bad;
    bool echo_sent = false;
    /// Detection mode, leader: distinct commitment digests reported per
    /// position (across own observations and echoes), merged bad flags,
    /// and positions already attributed (each fires on_byzantine once).
    std::map<std::size_t, std::set<std::uint64_t>> digest_sets;
    std::vector<std::uint8_t> pos_bad;
    std::set<std::size_t> byzantine_suspects;
    /// Byzantine sender: how many equivocating resends were issued (each
    /// one shifts the payload further so no two sends agree).
    std::size_t equivocations_sent = 0;
    /// Accumulating subtotals for share indices this peer holds.
    std::map<std::size_t, std::vector<double>> acc;
    /// Per held index: which positions contributed already.
    std::map<std::size_t, std::vector<bool>> contributed;
    /// Which positions we received any shares from (dropout detection).
    std::vector<bool> got_share_from;
    /// Finished subtotals this peer holds.
    std::map<std::size_t, Vector> subtotal;
    /// Leader: all collected subtotals by index.
    std::map<std::size_t, Vector> collected;
    /// Leader: recovery requests issued per missing index (cycles
    /// through the index's live-holder candidates, several passes).
    std::map<std::size_t, std::size_t> recovery_attempts;
    /// Retry-backoff bookkeeping.
    std::size_t share_retries = 0;
    std::size_t recovery_rounds = 0;
    bool share_phase_done = false;
    bool completed = false;
    /// Causal spans (kNoSpan when span recording is disabled): the share
    /// phase from begin_round to the last needed share, and the subtotal
    /// wait (leader collect window / broadcast completion wait).
    obs::SpanId share_span = obs::kNoSpan;
    obs::SpanId subtotal_span = obs::kNoSpan;
  };

  bool is_leader() const;
  /// One typed route per message kind. The shared gate keeps the old
  /// dispatch semantics: messages for a round this peer has not begun
  /// yet are stashed for begin_round, stale rounds are dropped.
  template <typename T, typename Fn>
  void route_msg(const char* suffix, Fn handler) {
    host_.route(channel_ + suffix,
                [this, handler](const net::Envelope& env) {
                  const T* msg = net::payload<T>(env.body);
                  if (msg == nullptr) return;
                  const RoundId current = round_ ? round_->round : 0;
                  if (!round_ || msg->round > current) {
                    stash_.emplace_back(msg->round, env);
                    return;
                  }
                  if (msg->round < current) return;  // stale
                  handler(*msg);
                });
  }
  void handle_share(const SacShareMsg& msg);
  void handle_subtotal(const SacSubtotalMsg& msg);
  void handle_request(const SacSubtotalReq& msg);
  void handle_share_request(const SacShareReq& msg);
  void handle_commit_echo(const SacCommitEchoMsg& msg);
  /// Build the share bundle for `dest_pos`, applying any active
  /// Byzantine behaviour (and the matching commitment so the lie is
  /// self-consistent — only cross-holder comparison can catch it).
  SacShareMsg make_share_bundle(std::size_t dest_pos, bool resend);
  /// Detection bookkeeping for one received bundle. Updates first-seen
  /// digests / bad flags; on the leader feeds attribution directly.
  /// Returns false when the bundle failed its direct consistency check
  /// (its parts must not be contributed).
  bool check_share_consistency(const SacShareMsg& msg);
  void send_commit_echo();
  /// Leader attribution; each returns true when `pos` became newly
  /// suspect.
  bool note_digest(std::size_t pos, std::uint64_t digest);
  bool note_bad(std::size_t pos);
  void report_suspects(std::vector<std::size_t> newly);
  void contribute(std::size_t from_pos, std::size_t idx,
                  const Vector& share);
  void maybe_finish_share_phase();
  void emit_subtotals();
  void leader_collect(std::size_t idx, const Vector& value);
  void maybe_complete();
  void on_share_timer();
  void on_subtotal_timer();
  void request_missing_subtotals();
  SimDuration backoff(SimDuration base, std::size_t step) const;
  std::uint64_t share_wire_bytes(std::size_t dim) const;

  const PeerId id_;
  const std::string channel_;
  const SacActorOptions opts_;
  net::Network& net_;
  net::PeerHost& host_;
  Rng rng_;
  std::optional<RoundState> round_;
  /// Messages for rounds this peer has not begun yet (begin_round control
  /// and peer shares race over equal-latency links).
  std::vector<std::pair<RoundId, net::Envelope>> stash_;
  net::Timer share_timer_;
  net::Timer subtotal_timer_;
};

}  // namespace p2pfl::secagg
