// Secure Average Computation — algorithmic (message-free) form.
//
// Implements the math of Alg. 2 (n-out-of-n SAC) and Alg. 4
// (fault-tolerant k-out-of-n SAC with replicated additive secret
// sharing) directly on in-memory share matrices. The federated-training
// experiments (Figs. 6-9) call these per round — they produce bit-exactly
// the same averages the message-driven actor (sac_actor.hpp) converges
// to, without paying for simulated message passing in the inner loop.
//
// Share placement (Alg. 4, 0-based): peer j holds, from every peer i,
// the n−k+1 consecutive shares with indices {j, j+1, …, j+n−k} mod n.
// Consequently subtotal s (the sum over peers of share s) is computable
// by the n−k+1 peers {s−(n−k), …, s} mod n, so any n−k crashes after the
// share phase leave at least one live holder of every subtotal.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "secagg/shares.hpp"

namespace p2pfl::secagg {

/// Share indices peer at position j holds (Alg. 4 lines 3-9), ascending
/// mod-n order starting at j. n >= 1, 1 <= k <= n.
std::vector<std::size_t> replica_share_indices(std::size_t j, std::size_t n,
                                               std::size_t k);

/// Positions of the peers that can compute subtotal s.
std::vector<std::size_t> subtotal_holders(std::size_t s, std::size_t n,
                                          std::size_t k);

/// Plain SAC (Alg. 2): every peer splits its model, shares are exchanged
/// and subtotals broadcast; returns the common average. All models must
/// have equal size; models.size() >= 1.
Vector sac_average(std::span<const Vector> models, Rng& rng,
                   const SplitOptions& opts = {});

struct FtSacResult {
  /// True if every subtotal had at least one live holder, i.e. the
  /// average could be reconstructed.
  bool ok = false;
  /// Average of all n contributing models (valid when ok). Crashed peers'
  /// models still contribute: their shares were already distributed.
  Vector average;
  std::size_t alive = 0;
};

/// Fault-tolerant SAC (Alg. 4): all n peers distribute shares, then the
/// peers flagged in `crashed_after_sharing` fail. The leader (first live
/// position) reconstructs the average from live subtotal holders.
/// Guaranteed ok when alive >= k.
FtSacResult fault_tolerant_sac_average(
    std::span<const Vector> models, std::size_t k,
    const std::vector<bool>& crashed_after_sharing, Rng& rng,
    const SplitOptions& opts = {});

}  // namespace p2pfl::secagg
