// Pairwise additive masking (Bonawitz et al., CCS'17 — [8] in the
// paper's related work).
//
// The paper positions its SAC-based design against server-mediated
// secure aggregation: users agree on pairwise secrets (via a
// Diffie-Hellman exchange), mask their model with the sum of pairwise
// masks (which cancel in the aggregate) plus an individual mask whose
// seed is secret-shared for dropout recovery. We implement the
// mask-generation math so the ablation bench can contrast the schemes'
// numerics and communication profiles, and so tests can verify the two
// core identities:
//   * sum of masked inputs == sum of inputs (pairwise masks cancel);
//   * a dropout's pairwise masks are removable by the survivors
//     reconstructing its secret.
//
// The "Diffie-Hellman key agreement" is simulated as a deterministic
// shared-seed derivation: seed(i, j) = H(session, min(i,j), max(i,j)) —
// exactly the property DH provides (both ends derive one secret) without
// modeling the group arithmetic, which the experiments do not exercise.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "secagg/shares.hpp"

namespace p2pfl::secagg {

class PairwiseMasker {
 public:
  /// `session` seeds all pairwise secrets; every participant must agree
  /// on it (in the real protocol it falls out of the DH exchange).
  PairwiseMasker(std::size_t participants, std::uint64_t session,
                 double mask_range = 1.0);

  std::size_t participants() const { return n_; }

  /// The shared pairwise seed for peers i and j (symmetric).
  std::uint64_t pair_seed(std::size_t i, std::size_t j) const;

  /// The pairwise mask vector PRG(seed(i,j)) of length dim, signed: it
  /// is *added* by the lower-indexed peer and *subtracted* by the
  /// higher-indexed one, so masks cancel in the aggregate.
  std::vector<double> pair_mask(std::size_t i, std::size_t j,
                                std::size_t dim) const;

  /// Peer u's individual mask PRG(individual seed) of length dim.
  std::vector<double> individual_mask(std::size_t u, std::size_t dim) const;

  /// y_u = x_u + b_u + sum_{v>u} m(u,v) - sum_{v<u} m(v,u)  (CCS'17 Eq.)
  Vector mask(std::size_t u, std::span<const float> model) const;

  /// Server-side unmasking: given the masked vectors of the survivors,
  /// the individual-mask seeds of survivors (revealed via secret shares)
  /// and the pairwise seeds of dropouts (reconstructed via shares),
  /// recover the exact sum of the survivors' models.
  Vector unmask_sum(std::span<const Vector> masked,
                    std::span<const std::size_t> survivor_ids,
                    std::span<const std::size_t> dropout_ids) const;

  /// Communication cost (in |w| units) of one CCS'17-style aggregation
  /// round with a central server: each of N users uploads one masked
  /// vector and downloads the result: 2N|w| (key/share traffic is
  /// O(N^2) scalars, negligible next to |w|). Provided for the ablation
  /// bench.
  static double server_round_cost_units(std::size_t users);

 private:
  std::size_t n_;
  std::uint64_t session_;
  double range_;
};

}  // namespace p2pfl::secagg
