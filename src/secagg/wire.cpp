#include "secagg/wire.hpp"

#include <set>

namespace p2pfl::secagg::wire {

namespace {

template <typename T, typename Fn>
std::optional<T> guarded(const Bytes& b, Fn fn) {
  ByteReader r(b);
  T out = fn(r);
  if (!r.complete()) return std::nullopt;
  return out;
}

}  // namespace

Bytes encode(const SacShareMsg& m) {
  ByteWriter w;
  w.u64(m.round);
  w.u32(m.from_pos);
  w.u32(static_cast<std::uint32_t>(m.parts.size()));
  for (const auto& [idx, data] : m.parts) {
    w.u32(idx);
    w.vec_f32(data);
  }
  // Detection-mode commitment rides as a trailer so non-detecting
  // rounds keep the exact historical encoding (and byte accounting).
  if (!m.commit.empty()) {
    w.u32(static_cast<std::uint32_t>(m.commit.size()));
    for (std::uint64_t d : m.commit) w.u64(d);
  }
  return w.take();
}

std::optional<SacShareMsg> decode_share(const Bytes& b) {
  return guarded<SacShareMsg>(b, [](ByteReader& r) {
    SacShareMsg m;
    m.round = r.u64();
    m.from_pos = r.u32();
    const std::uint32_t parts = r.u32();
    // Gate on ok(): each successful part consumes >= 8 bytes, so a
    // corrupted count cannot drive an unbounded loop.
    for (std::uint32_t i = 0; i < parts && r.ok(); ++i) {
      const std::uint32_t idx = r.u32();
      m.parts.emplace_back(idx, r.vec_f32());
    }
    if (r.ok() && !r.exhausted()) {
      const std::uint32_t entries = r.u32();
      for (std::uint32_t i = 0; i < entries && r.ok(); ++i) {
        m.commit.push_back(r.u64());
      }
    }
    return m;
  });
}

Bytes encode(const SacSubtotalMsg& m) {
  ByteWriter w;
  w.u64(m.round);
  w.u32(m.idx);
  w.vec_f32(m.value);
  return w.take();
}

std::optional<SacSubtotalMsg> decode_subtotal(const Bytes& b) {
  return guarded<SacSubtotalMsg>(b, [](ByteReader& r) {
    SacSubtotalMsg m;
    m.round = r.u64();
    m.idx = r.u32();
    m.value = r.vec_f32();
    return m;
  });
}

Bytes encode(const SacSubtotalReq& m) {
  ByteWriter w;
  w.u64(m.round);
  w.u32(m.idx);
  w.u32(m.reply_to_pos);
  return w.take();
}

std::optional<SacSubtotalReq> decode_subtotal_req(const Bytes& b) {
  return guarded<SacSubtotalReq>(b, [](ByteReader& r) {
    SacSubtotalReq m;
    m.round = r.u64();
    m.idx = r.u32();
    m.reply_to_pos = r.u32();
    return m;
  });
}

Bytes encode(const SacShareReq& m) {
  ByteWriter w;
  w.u64(m.round);
  w.u32(m.reply_to_pos);
  return w.take();
}

std::optional<SacShareReq> decode_share_req(const Bytes& b) {
  return guarded<SacShareReq>(b, [](ByteReader& r) {
    SacShareReq m;
    m.round = r.u64();
    m.reply_to_pos = r.u32();
    return m;
  });
}

Bytes encode(const SacCommitEchoMsg& m) {
  ByteWriter w;
  w.u64(m.round);
  w.u32(m.from_pos);
  w.u32(static_cast<std::uint32_t>(m.digests.size()));
  for (std::uint64_t d : m.digests) w.u64(d);
  w.u32(static_cast<std::uint32_t>(m.bad.size()));
  for (std::uint8_t f : m.bad) w.u8(f);
  return w.take();
}

std::optional<SacCommitEchoMsg> decode_commit_echo(const Bytes& b) {
  return guarded<SacCommitEchoMsg>(b, [](ByteReader& r) {
    SacCommitEchoMsg m;
    m.round = r.u64();
    m.from_pos = r.u32();
    const std::uint32_t nd = r.u32();
    for (std::uint32_t i = 0; i < nd && r.ok(); ++i) {
      m.digests.push_back(r.u64());
    }
    const std::uint32_t nb = r.u32();
    for (std::uint32_t i = 0; i < nb && r.ok(); ++i) {
      m.bad.push_back(r.u8());
    }
    return m;
  });
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t share_digest(const Vector& share) {
  return fnv1a(share.data(), share.size() * sizeof(float));
}

std::uint64_t commit_digest(const std::vector<std::uint64_t>& commit) {
  return fnv1a(commit.data(), commit.size() * sizeof(std::uint64_t));
}

net::WireSize share_wire(std::size_t parts, std::uint64_t payload_each,
                         std::size_t dim, std::size_t commit_entries) {
  net::WireSize s;
  s.payload = parts * payload_each;
  s.wire = kShareHeader + parts * kPerPartHeader + s.payload;
  if (commit_entries > 0) {
    s.wire += kCommitPrefix + commit_entries * kCommitPerShare;
  }
  // Real encoding carries 4*dim data bytes per part; the charge carries
  // payload_each (they differ only under the modeled-CNN override).
  s.modeled = static_cast<std::int64_t>(parts) *
              (static_cast<std::int64_t>(payload_each) -
               static_cast<std::int64_t>(4 * dim));
  return s;
}

net::WireSize echo_wire(std::size_t positions) {
  net::WireSize s;
  s.payload = 0;
  s.wire = kEchoHeader + positions * kEchoPerPos;
  return s;
}

net::WireSize subtotal_wire(std::uint64_t payload, std::size_t dim) {
  net::WireSize s;
  s.payload = payload;
  s.wire = kSubtotalHeader + payload;
  s.modeled = static_cast<std::int64_t>(payload) -
              static_cast<std::int64_t>(4 * dim);
  return s;
}

namespace {

Vector sample_vector(Rng& rng, std::size_t dim) {
  Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

SacShareMsg sample_share(Rng& rng, const net::WireSample& s) {
  SacShareMsg m;
  m.round = s.round;
  m.from_pos = static_cast<std::uint32_t>(rng.index(s.n));
  const std::size_t parts = s.n >= s.k ? s.n - s.k + 1 : 1;
  for (std::size_t i = 0; i < parts; ++i) {
    m.parts.emplace_back(static_cast<std::uint32_t>(rng.index(s.n)),
                         sample_vector(rng, s.dim));
  }
  // Exercise both framings: with and without the detection trailer.
  if (rng.chance(0.5)) {
    for (std::size_t i = 0; i < s.n; ++i) m.commit.push_back(rng.next_u64());
  }
  return m;
}

SacCommitEchoMsg sample_commit_echo(Rng& rng, const net::WireSample& s) {
  SacCommitEchoMsg m;
  m.round = s.round;
  m.from_pos = static_cast<std::uint32_t>(rng.index(s.n));
  for (std::size_t i = 0; i < s.n; ++i) {
    m.digests.push_back(rng.chance(0.8) ? rng.next_u64() : 0);
    m.bad.push_back(rng.chance(0.1) ? 1 : 0);
  }
  return m;
}

SacSubtotalMsg sample_subtotal(Rng& rng, const net::WireSample& s) {
  SacSubtotalMsg m;
  m.round = s.round;
  m.idx = static_cast<std::uint32_t>(rng.index(s.n));
  m.value = sample_vector(rng, s.dim);
  return m;
}

SacSubtotalReq sample_subtotal_req(Rng& rng, const net::WireSample& s) {
  SacSubtotalReq m;
  m.round = s.round;
  m.idx = static_cast<std::uint32_t>(rng.index(s.n));
  m.reply_to_pos = static_cast<std::uint32_t>(rng.index(s.n));
  return m;
}

SacShareReq sample_share_req(Rng& rng, const net::WireSample& s) {
  SacShareReq m;
  m.round = s.round;
  m.reply_to_pos = static_cast<std::uint32_t>(rng.index(s.n));
  return m;
}

bool eq_share(const SacShareMsg& a, const SacShareMsg& b) {
  return a.round == b.round && a.from_pos == b.from_pos &&
         a.parts == b.parts && a.commit == b.commit;
}

bool eq_commit_echo(const SacCommitEchoMsg& a, const SacCommitEchoMsg& b) {
  return a.round == b.round && a.from_pos == b.from_pos &&
         a.digests == b.digests && a.bad == b.bad;
}

bool eq_subtotal(const SacSubtotalMsg& a, const SacSubtotalMsg& b) {
  return a.round == b.round && a.idx == b.idx && a.value == b.value;
}

bool eq_subtotal_req(const SacSubtotalReq& a, const SacSubtotalReq& b) {
  return a.round == b.round && a.idx == b.idx &&
         a.reply_to_pos == b.reply_to_pos;
}

bool eq_share_req(const SacShareReq& a, const SacShareReq& b) {
  return a.round == b.round && a.reply_to_pos == b.reply_to_pos;
}

template <typename T>
net::Codec make_codec(std::string key,
                      std::optional<T> (*decode_fn)(const Bytes&),
                      T (*sample_fn)(Rng&, const net::WireSample&),
                      bool (*eq_fn)(const T&, const T&)) {
  net::Codec c;
  c.key = std::move(key);
  c.encode = [](const std::any& body) -> std::optional<Bytes> {
    const T* m = net::payload<T>(body);
    if (m == nullptr) return std::nullopt;
    return encode(*m);
  };
  c.decode = [decode_fn](const Bytes& b) -> std::optional<std::any> {
    std::optional<T> m = decode_fn(b);
    if (!m.has_value()) return std::nullopt;
    return std::any(std::move(*m));
  };
  c.sample = [sample_fn](Rng& rng, const net::WireSample& s) -> std::any {
    return sample_fn(rng, s);
  };
  c.equals = [eq_fn](const std::any& a, const std::any& b) {
    const T* x = net::payload<T>(a);
    const T* y = net::payload<T>(b);
    return x != nullptr && y != nullptr && eq_fn(*x, *y);
  };
  return c;
}

}  // namespace

void register_codecs(const std::string& family) {
  static std::set<std::string> done;
  if (!done.insert(family).second) return;
  auto& reg = net::CodecRegistry::global();
  reg.add(make_codec<SacShareMsg>(family + ":share", &decode_share,
                                  &sample_share, &eq_share));
  reg.add(make_codec<SacSubtotalMsg>(family + ":subtotal", &decode_subtotal,
                                     &sample_subtotal, &eq_subtotal));
  reg.add(make_codec<SacSubtotalReq>(family + ":request",
                                     &decode_subtotal_req,
                                     &sample_subtotal_req, &eq_subtotal_req));
  reg.add(make_codec<SacShareReq>(family + ":share_req", &decode_share_req,
                                  &sample_share_req, &eq_share_req));
  reg.add(make_codec<SacCommitEchoMsg>(family + ":echo", &decode_commit_echo,
                                       &sample_commit_echo, &eq_commit_echo));
}

}  // namespace p2pfl::secagg::wire
