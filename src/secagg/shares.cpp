#include "secagg/shares.hpp"

#include "common/check.hpp"

namespace p2pfl::secagg {

namespace {

std::vector<Vector> divide_proportional(std::span<const float> secret,
                                        std::size_t n, Rng& rng) {
  std::vector<Vector> shares(n, Vector(secret.size()));
  std::vector<double> fractions(n);
  for (std::size_t e = 0; e < secret.size(); ++e) {
    // Alg. 1: rn_i random, prn_i = rn_i / sum(rn), share_i = prn_i * w.
    // Draws are kept away from zero so the normalization is stable.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      fractions[i] = rng.uniform(0.05, 1.0);
      total += fractions[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      shares[i][e] = static_cast<float>(fractions[i] / total *
                                        static_cast<double>(secret[e]));
    }
  }
  return shares;
}

std::vector<Vector> divide_uniform_mask(std::span<const float> secret,
                                        std::size_t n, Rng& rng,
                                        double range) {
  std::vector<Vector> shares(n, Vector(secret.size()));
  for (std::size_t e = 0; e < secret.size(); ++e) {
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double mask = rng.uniform(-range, range);
      shares[i][e] = static_cast<float>(mask);
      acc += static_cast<double>(shares[i][e]);
    }
    shares[n - 1][e] = static_cast<float>(static_cast<double>(secret[e]) - acc);
  }
  return shares;
}

}  // namespace

std::vector<Vector> divide(std::span<const float> secret, std::size_t n,
                           Rng& rng, const SplitOptions& opts) {
  P2PFL_CHECK(n >= 1);
  switch (opts.scheme) {
    case SplitScheme::kProportional:
      return divide_proportional(secret, n, rng);
    case SplitScheme::kUniformMask:
      return divide_uniform_mask(secret, n, rng, opts.mask_range);
  }
  P2PFL_CHECK_MSG(false, "unknown split scheme");
  return {};
}

Vector sum_shares(std::span<const Vector> shares) {
  P2PFL_CHECK(!shares.empty());
  std::vector<double> acc(shares.front().size(), 0.0);
  for (const Vector& s : shares) accumulate(acc, s);
  return to_vector(acc);
}

void accumulate(std::vector<double>& acc, std::span<const float> x) {
  P2PFL_CHECK(acc.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc[i] += static_cast<double>(x[i]);
  }
}

Vector to_vector(std::span<const double> acc, double divisor) {
  P2PFL_CHECK(divisor != 0.0);
  Vector out(acc.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out[i] = static_cast<float>(acc[i] / divisor);
  }
  return out;
}

}  // namespace p2pfl::secagg
