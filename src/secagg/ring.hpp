// Fixed-point additive secret sharing over the ring Z_{2^64}.
//
// The paper's Alg. 1 splits floats into random *fractions*, which keeps
// the arithmetic simple but leaks each element's sign and scale (a share
// prn_i * w is a scaled copy of w). Classical additive sharing ([13] in
// the paper, Evans et al.) works in a finite ring: weights are quantized
// to fixed point, n-1 shares are uniformly random ring elements and the
// last is the difference — every share is then statistically independent
// of the secret (information-theoretic privacy). This module provides
// that scheme as a drop-in alternative; the ablation bench contrasts the
// numerics of the three schemes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "secagg/shares.hpp"

namespace p2pfl::secagg {

using RingVector = std::vector<std::uint64_t>;

/// Quantization between float models and ring elements.
class RingCodec {
 public:
  /// `scale` = ring units per 1.0 of weight. 2^24 keeps |w| <= ~500 and
  /// sums of thousands of models inside the safe range.
  explicit RingCodec(double scale = static_cast<double>(1ULL << 24));

  RingVector encode(std::span<const float> v) const;

  /// Decode a ring vector that is the SUM of `count` encoded models,
  /// returning their float mean (count >= 1).
  Vector decode_mean(const RingVector& sum, std::size_t count) const;

  double scale() const { return scale_; }

 private:
  double scale_;
};

/// Split into n shares summing (mod 2^64) to `secret`; the first n-1 are
/// uniform ring elements.
std::vector<RingVector> ring_divide(const RingVector& secret, std::size_t n,
                                    Rng& rng);

/// Element-wise modular sum.
RingVector ring_sum(std::span<const RingVector> shares);

/// Whole-pipeline helper mirroring sac_average(): models -> encode ->
/// share -> subtotals -> decode mean.
Vector ring_sac_average(std::span<const Vector> models, Rng& rng,
                        const RingCodec& codec = RingCodec());

}  // namespace p2pfl::secagg
