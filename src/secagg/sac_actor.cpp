#include "secagg/sac_actor.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "secagg/wire.hpp"

namespace p2pfl::secagg {

namespace {

/// Kind family of a channel ("ml/g3" -> "ml"): the codec-registry key
/// prefix shared by every channel of the same protocol.
std::string family_of(const std::string& channel) {
  const std::size_t slash = channel.find('/');
  return slash == std::string::npos ? channel : channel.substr(0, slash);
}

}  // namespace

SacPeer::SacPeer(PeerId id, std::string channel, SacActorOptions opts,
                 net::Network& net, net::PeerHost& host)
    : id_(id),
      channel_(std::move(channel)),
      opts_(opts),
      net_(net),
      host_(host),
      rng_(net.rng().fork(0x7361'63ULL ^ (id * 2654435761ULL))),
      share_timer_(net.transport(), [this] { on_share_timer(); },
                   channel_ + ".share_timeout"),
      subtotal_timer_(net.transport(), [this] { on_subtotal_timer(); },
                      channel_ + ".subtotal_timeout") {
  wire::register_codecs(family_of(channel_));
  route_msg<SacShareMsg>(
      "/share", [this](const SacShareMsg& m) { handle_share(m); });
  route_msg<SacSubtotalMsg>(
      "/subtotal", [this](const SacSubtotalMsg& m) { handle_subtotal(m); });
  route_msg<SacSubtotalReq>(
      "/request", [this](const SacSubtotalReq& m) { handle_request(m); });
  route_msg<SacShareReq>("/share_req", [this](const SacShareReq& m) {
    handle_share_request(m);
  });
  route_msg<SacCommitEchoMsg>("/echo", [this](const SacCommitEchoMsg& m) {
    handle_commit_echo(m);
  });
}

SacPeer::~SacPeer() {
  for (const char* suffix :
       {"/share", "/subtotal", "/request", "/share_req", "/echo"}) {
    host_.unroute(channel_ + suffix);
  }
}

std::optional<RoundId> SacPeer::active_round() const {
  if (round_ && !round_->completed) return round_->round;
  return std::nullopt;
}

bool SacPeer::is_leader() const {
  return round_ && round_->my_pos == round_->leader_pos;
}

std::uint64_t SacPeer::share_wire_bytes(std::size_t dim) const {
  return opts_.wire_bytes_per_share > 0 ? opts_.wire_bytes_per_share
                                        : 4 * static_cast<std::uint64_t>(dim);
}

SimDuration SacPeer::backoff(SimDuration base, std::size_t step) const {
  std::size_t mult = 1;
  for (std::size_t i = 0; i < step && mult < opts_.backoff_cap; ++i) {
    mult *= 2;
  }
  if (mult > opts_.backoff_cap) mult = opts_.backoff_cap;
  return base * static_cast<SimDuration>(mult);
}

void SacPeer::halt() {
  if (round_) {
    obs::SpanRecorder& sr = net_.obs().spans;
    sr.close_aborted(round_->share_span);
    sr.close_aborted(round_->subtotal_span);
  }
  round_.reset();
  share_timer_.cancel();
  subtotal_timer_.cancel();
}

void SacPeer::begin_round(RoundId round, Vector model,
                          std::vector<PeerId> group,
                          std::size_t leader_pos, std::size_t k_override) {
  P2PFL_CHECK(!group.empty());
  P2PFL_CHECK(leader_pos < group.size());
  if (round_ && round_->round >= round) return;  // stale request
  halt();

  const std::size_t configured = k_override > 0 ? k_override : opts_.k;
  RoundState st;
  st.round = round;
  st.n = group.size();
  st.k = opts_.broadcast_subtotals
             ? st.n  // Alg. 2 has no threshold; every subtotal is primary
             : (configured == 0 ? st.n : std::min(configured, st.n));
  st.group = std::move(group);
  st.leader_pos = leader_pos;
  const auto me =
      std::find(st.group.begin(), st.group.end(), id_) - st.group.begin();
  P2PFL_CHECK_MSG(static_cast<std::size_t>(me) < st.n,
                  "this peer is not in the round's group");
  st.my_pos = static_cast<std::size_t>(me);
  st.share_bytes = share_wire_bytes(model.size());
  st.got_share_from.assign(st.n, false);
  round_ = std::move(st);

  obs::Observability& o = net_.obs();
  o.metrics.counter("sac.rounds_started").add(1);
  if (o.trace.category_enabled("agg")) {
    o.trace.instant("agg", "sac.share_phase", id_,
                    {{"channel", channel_},
                     {"round", round},
                     {"n", round_->n},
                     {"k", round_->k}});
  }
  if (o.spans.enabled()) {
    round_->share_span = o.spans.open(obs::SpanKind::kSacShare,
                                      channel_ + "/share_phase", id_, round);
  }
  // Keep the share span current for the rest of begin_round: outgoing
  // share links and any synchronous completion chain to it.
  obs::SpanStackScope share_scope(o.spans, round_->share_span);

  round_->shares = divide(model, round_->n, rng_, opts_.split);
  const std::vector<Vector>& shares = round_->shares;
  const std::size_t n = round_->n;
  const std::size_t k = round_->k;
  if (opts_.detect_inconsistent_shares) {
    round_->my_commit.reserve(n);
    for (const Vector& s : shares) {
      round_->my_commit.push_back(wire::share_digest(s));
    }
    round_->seen_digest.assign(n, 0);
    round_->peer_bad.assign(n, 0);
    round_->pos_bad.assign(n, 0);
  }

  // Distribute the n−k+1 consecutive shares each peer replicates.
  for (std::size_t j = 0; j < n; ++j) {
    if (j == round_->my_pos) continue;
    SacShareMsg msg = make_share_bundle(j, /*resend=*/false);
    const net::WireSize wire =
        wire::share_wire(msg.parts.size(), round_->share_bytes, model.size(),
                         msg.commit.size());
    net_.send(id_, round_->group[j], channel_ + "/share", std::move(msg),
              wire);
  }
  // Own contribution to the indices this peer holds.
  for (std::size_t s : replica_share_indices(round_->my_pos, n, k)) {
    contribute(round_->my_pos, s, shares[s]);
  }

  // Every peer watches its own share phase: when it stays incomplete the
  // timer requests retransmissions (and, on the leader, eventually
  // reports the still-silent positions upward).
  share_timer_.arm(opts_.share_timeout);
  maybe_finish_share_phase();

  // Replay any messages for this round that arrived before we started
  // it: re-deliver through the host so each lands on its typed route.
  auto stash = std::move(stash_);
  stash_.clear();
  for (auto& [r, env] : stash) {
    if (r == round) {
      host_.deliver(env);
    } else if (r > round) {
      stash_.emplace_back(r, std::move(env));
    }
  }
}

void SacPeer::handle_share(const SacShareMsg& msg) {
  P2PFL_CHECK(round_.has_value());
  if (msg.from_pos >= round_->n) return;
  if (!check_share_consistency(msg)) return;  // flagged: never contribute
  for (const auto& [idx, data] : msg.parts) {
    contribute(msg.from_pos, idx, data);
  }
  maybe_finish_share_phase();
}

void SacPeer::handle_share_request(const SacShareReq& msg) {
  RoundState& st = *round_;
  if (msg.reply_to_pos >= st.n ||
      msg.reply_to_pos == static_cast<std::uint32_t>(st.my_pos)) {
    return;
  }
  if (st.shares.empty()) return;  // never split in this round
  SacShareMsg out = make_share_bundle(msg.reply_to_pos, /*resend=*/true);
  net_.obs().metrics.counter("sac.share_resends").add(1);
  const net::WireSize wire =
      wire::share_wire(out.parts.size(), st.share_bytes,
                       out.parts.front().second.size(), out.commit.size());
  net_.send(id_, st.group[msg.reply_to_pos], channel_ + "/share",
            std::move(out), wire);
}

SacShareMsg SacPeer::make_share_bundle(std::size_t dest_pos, bool resend) {
  RoundState& st = *round_;
  SacShareMsg msg;
  msg.round = st.round;
  msg.from_pos = static_cast<std::uint32_t>(st.my_pos);
  const robust::AttackSpec* atk =
      opts_.byzantine ? opts_.byzantine->spec(id_) : nullptr;
  float offset = 0.0f;
  if (atk != nullptr) {
    if (atk->kind == robust::AttackKind::kInconsistentShares &&
        dest_pos % 2 == 1) {
      // Different-but-plausible shares for every second holder: each
      // bundle still decodes and sums like a real share, but holders now
      // disagree about the sender's split.
      offset = static_cast<float>(atk->magnitude);
    } else if (atk->kind == robust::AttackKind::kEquivocate && resend) {
      // Every retransmission tells a fresh lie.
      ++st.equivocations_sent;
      offset = static_cast<float>(atk->magnitude) *
               static_cast<float>(st.equivocations_sent);
    }
  }
  for (std::size_t s : replica_share_indices(dest_pos, st.n, st.k)) {
    Vector data = st.shares[s];
    if (offset != 0.0f) {
      for (float& v : data) v += offset;
    }
    msg.parts.emplace_back(static_cast<std::uint32_t>(s), std::move(data));
  }
  if (opts_.detect_inconsistent_shares) {
    msg.commit = st.my_commit;
    if (offset != 0.0f) {
      // The adversary keeps each bundle self-consistent — it recommits
      // to the perturbed values, so the receiver's direct check passes
      // and only cross-holder digest comparison can expose it.
      for (const auto& [idx, data] : msg.parts) {
        msg.commit[idx] = wire::share_digest(data);
      }
    }
  }
  if (offset != 0.0f) {
    net_.obs()
        .metrics.counter(resend ? "byzantine.equivocations_sent"
                                : "byzantine.inconsistent_bundles_sent")
        .add(1);
  }
  return msg;
}

bool SacPeer::check_share_consistency(const SacShareMsg& msg) {
  if (!opts_.detect_inconsistent_shares) return true;
  RoundState& st = *round_;
  const std::size_t from = msg.from_pos;
  bool bad = false;
  std::uint64_t digest = 0;
  if (msg.commit.size() == st.n) {
    for (const auto& [idx, data] : msg.parts) {
      if (idx >= st.n || msg.commit[idx] != wire::share_digest(data)) {
        bad = true;  // data disagrees with its own commitment
      }
    }
    digest = wire::commit_digest(msg.commit);
    if (st.seen_digest[from] == 0) {
      st.seen_digest[from] = digest;
    } else if (st.seen_digest[from] != digest) {
      bad = true;  // the commitment changed between sends: equivocation
    }
  } else {
    bad = true;  // detection is on: a full commitment is mandatory
  }
  if (bad && st.peer_bad[from] == 0) {
    st.peer_bad[from] = 1;
    obs::Observability& o = net_.obs();
    o.metrics.counter("byzantine.share_check_failed").add(1);
    if (o.trace.category_enabled("chaos")) {
      o.trace.instant("chaos", "byzantine.share_check_failed", id_,
                      {{"channel", channel_},
                       {"round", st.round},
                       {"pos", from}});
    }
    // Escalate to the leader right away — a flagged sender must not
    // have to wait for the share phase to settle to be attributed.
    if (!is_leader()) send_commit_echo();
  }
  if (is_leader()) {
    std::vector<std::size_t> newly;
    if (digest != 0 && note_digest(from, digest)) newly.push_back(from);
    if (bad && note_bad(from)) newly.push_back(from);
    report_suspects(std::move(newly));
  }
  return !bad;
}

void SacPeer::send_commit_echo() {
  RoundState& st = *round_;
  if (st.my_pos == st.leader_pos) return;
  SacCommitEchoMsg echo;
  echo.round = st.round;
  echo.from_pos = static_cast<std::uint32_t>(st.my_pos);
  echo.digests = st.seen_digest;
  echo.bad = st.peer_bad;
  net_.send(id_, st.group[st.leader_pos], channel_ + "/echo",
            std::move(echo), wire::echo_wire(st.n));
}

void SacPeer::handle_commit_echo(const SacCommitEchoMsg& msg) {
  RoundState& st = *round_;
  if (!opts_.detect_inconsistent_shares || !is_leader()) return;
  if (msg.from_pos >= st.n) return;
  const std::size_t upto =
      std::min(static_cast<std::size_t>(st.n),
               std::min(msg.digests.size(), msg.bad.size()));
  std::vector<std::size_t> newly;
  for (std::size_t pos = 0; pos < upto; ++pos) {
    if (pos == msg.from_pos) continue;  // self-reports carry no weight
    if (msg.digests[pos] != 0 && note_digest(pos, msg.digests[pos])) {
      newly.push_back(pos);
    }
    if (msg.bad[pos] != 0 && note_bad(pos)) newly.push_back(pos);
  }
  report_suspects(std::move(newly));
}

bool SacPeer::note_digest(std::size_t pos, std::uint64_t digest) {
  RoundState& st = *round_;
  auto& seen = st.digest_sets[pos];
  seen.insert(digest);
  // One digest is consistent; two distinct ones prove the sender told
  // different holders different stories.
  if (seen.size() < 2) return false;
  return st.byzantine_suspects.insert(pos).second;
}

bool SacPeer::note_bad(std::size_t pos) {
  RoundState& st = *round_;
  st.pos_bad[pos] = 1;
  return st.byzantine_suspects.insert(pos).second;
}

void SacPeer::report_suspects(std::vector<std::size_t> newly) {
  if (newly.empty()) return;
  RoundState& st = *round_;
  obs::Observability& o = net_.obs();
  o.metrics.counter("byzantine.suspected")
      .add(static_cast<std::uint64_t>(newly.size()));
  if (o.trace.category_enabled("chaos")) {
    for (std::size_t pos : newly) {
      o.trace.instant("chaos", "byzantine.suspect", id_,
                      {{"channel", channel_},
                       {"round", st.round},
                       {"pos", pos},
                       {"peer", st.group[pos]}});
    }
  }
  if (on_byzantine) on_byzantine(st.round, newly);
}

void SacPeer::contribute(std::size_t from_pos, std::size_t idx,
                         const Vector& share) {
  RoundState& st = *round_;
  if (idx >= st.n) return;
  // A share whose dimension disagrees with what this index already
  // accumulated is damaged (or from a mismatched config): ignore it
  // rather than corrupt the running subtotal.
  auto prev = st.acc.find(idx);
  if (prev != st.acc.end() && prev->second.size() != share.size()) return;
  st.got_share_from[from_pos] = true;
  auto [cit, inserted] =
      st.contributed.try_emplace(idx, std::vector<bool>(st.n, false));
  if (cit->second[from_pos]) return;  // duplicate
  cit->second[from_pos] = true;
  auto [ait, _] = st.acc.try_emplace(idx, std::vector<double>(share.size()));
  accumulate(ait->second, share);
  const bool complete = std::all_of(cit->second.begin(), cit->second.end(),
                                    [](bool b) { return b; });
  if (complete) {
    st.subtotal[idx] = to_vector(ait->second);
  }
}

void SacPeer::maybe_finish_share_phase() {
  RoundState& st = *round_;
  if (st.share_phase_done) return;
  const auto held =
      replica_share_indices(st.my_pos, st.n, st.k);
  for (std::size_t s : held) {
    if (st.subtotal.count(s) == 0) return;
  }
  st.share_phase_done = true;
  share_timer_.cancel();
  if (opts_.detect_inconsistent_shares && st.my_pos != st.leader_pos &&
      !st.echo_sent) {
    // The settled share phase is the holder's full testimony: one echo
    // per member per round in the fault-free case.
    st.echo_sent = true;
    send_commit_echo();
  }
  obs::Observability& o = net_.obs();
  if (o.trace.category_enabled("agg")) {
    o.trace.instant("agg", "sac.subtotal_phase", id_,
                    {{"channel", channel_}, {"round", st.round}});
  }
  if (st.share_span != obs::kNoSpan) {
    // The closer is the link span that delivered the final share (unless
    // we finished synchronously inside begin_round, where current() is
    // the share span itself).
    obs::SpanId closer = o.spans.current();
    if (closer == st.share_span) closer = obs::kNoSpan;
    o.spans.close(st.share_span, closer);
  }
  emit_subtotals();
}

void SacPeer::emit_subtotals() {
  RoundState& st = *round_;
  const std::size_t n = st.n;
  obs::SpanRecorder& sr = net_.obs().spans;
  if (opts_.broadcast_subtotals) {
    // Alg. 2 line 7: broadcast the primary subtotal to every other peer.
    // Every peer waits for all n subtotals; the wait span is closed by
    // the link that delivers the last one (maybe_complete).
    if (sr.enabled()) {
      st.subtotal_span = sr.open(obs::SpanKind::kSacSubtotal,
                                 channel_ + "/subtotal_wait", id_, st.round);
    }
    obs::SpanStackScope wait_scope(sr, st.subtotal_span);
    const Vector& mine = st.subtotal.at(st.my_pos);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == st.my_pos) continue;
      SacSubtotalMsg msg{st.round, static_cast<std::uint32_t>(st.my_pos),
                         mine};
      net_.send(id_, st.group[j], channel_ + "/subtotal", std::move(msg),
                wire::subtotal_wire(st.share_bytes, mine.size()));
    }
    leader_collect(st.my_pos, mine);
    return;
  }
  if (is_leader()) {
    if (sr.enabled()) {
      st.subtotal_span = sr.open(obs::SpanKind::kSacSubtotal,
                                 channel_ + "/subtotal_wait", id_, st.round);
    }
    obs::SpanStackScope wait_scope(sr, st.subtotal_span);
    for (const auto& [idx, value] : st.subtotal) leader_collect(idx, value);
    subtotal_timer_.arm(opts_.subtotal_timeout);
    return;
  }
  // Alg. 4 lines 14-16: only peers whose primary subtotal falls outside
  // the leader's held range upload it.
  const std::size_t dist = (st.my_pos + n - st.leader_pos) % n;
  if (dist > n - st.k) {
    SacSubtotalMsg msg{st.round, static_cast<std::uint32_t>(st.my_pos),
                       st.subtotal.at(st.my_pos)};
    const std::size_t dim = msg.value.size();
    net_.send(id_, st.group[st.leader_pos], channel_ + "/subtotal",
              std::move(msg), wire::subtotal_wire(st.share_bytes, dim));
  }
}

void SacPeer::handle_subtotal(const SacSubtotalMsg& msg) {
  RoundState& st = *round_;
  if (msg.idx >= st.n) return;
  if (!opts_.broadcast_subtotals && !is_leader()) return;
  leader_collect(msg.idx, msg.value);
}

void SacPeer::handle_request(const SacSubtotalReq& msg) {
  RoundState& st = *round_;
  if (msg.idx >= st.n || msg.reply_to_pos >= st.n) return;
  auto it = st.subtotal.find(msg.idx);
  if (it == st.subtotal.end()) return;  // not (yet) available here
  SacSubtotalMsg reply{st.round, msg.idx, it->second};
  const std::size_t dim = reply.value.size();
  net_.send(id_, st.group[msg.reply_to_pos], channel_ + "/subtotal",
            std::move(reply), wire::subtotal_wire(st.share_bytes, dim));
}

void SacPeer::leader_collect(std::size_t idx, const Vector& value) {
  RoundState& st = *round_;
  // Reject a subtotal whose dimension disagrees with the ones already
  // collected (damaged or mismatched-config message).
  if (!st.collected.empty() &&
      st.collected.begin()->second.size() != value.size()) {
    return;
  }
  st.collected.emplace(idx, value);
  maybe_complete();
}

void SacPeer::maybe_complete() {
  RoundState& st = *round_;
  if (st.completed || st.collected.size() < st.n) return;
  st.completed = true;
  share_timer_.cancel();
  subtotal_timer_.cancel();
  obs::Observability& o = net_.obs();
  if (st.subtotal_span != obs::kNoSpan) {
    // Closed by the link that delivered the final subtotal (or nothing,
    // when the wait resolved synchronously at open).
    obs::SpanId closer = o.spans.current();
    if (closer == st.subtotal_span) closer = obs::kNoSpan;
    o.spans.close(st.subtotal_span, closer);
  }
  o.metrics.counter("sac.rounds_completed").add(1);
  if (o.trace.category_enabled("agg")) {
    o.trace.instant("agg", "sac.reveal", id_,
                    {{"channel", channel_}, {"round", st.round}});
  }
  std::vector<double> total(st.collected.begin()->second.size(), 0.0);
  for (const auto& [idx, value] : st.collected) accumulate(total, value);
  const Vector avg = to_vector(total, static_cast<double>(st.n));
  if (on_complete) on_complete(st.round, avg);
}

void SacPeer::on_share_timer() {
  if (!round_ || round_->share_phase_done || round_->completed) return;
  RoundState& st = *round_;
  obs::Observability& o = net_.obs();
  ++st.share_retries;
  if (st.share_retries > opts_.share_retry_limit) {
    // Retry budget exhausted. The leader reports the positions that never
    // contributed anything so the round controller can restart without
    // them; followers go quiet and wait to be superseded.
    if (is_leader()) {
      std::vector<std::size_t> missing;
      for (std::size_t p = 0; p < st.n; ++p) {
        if (!st.got_share_from[p]) missing.push_back(p);
      }
      P2PFL_DEBUG() << channel_ << " leader " << id_ << ": share phase timed"
                    << " out, " << missing.size() << " silent peers";
      o.metrics.counter("sac.share_timeouts").add(1);
      if (on_share_timeout) on_share_timeout(st.round, missing);
    } else {
      o.metrics.counter("sac.share_retry_exhausted").add(1);
      if (opts_.detect_inconsistent_shares && !st.echo_sent) {
        // A share phase that never settles still owes the leader its
        // testimony — this is exactly the case where a Byzantine sender
        // stalled us by shipping bundles that failed their commitment.
        st.echo_sent = true;
        send_commit_echo();
      }
    }
    return;
  }
  // Ask every position whose shares for our held indices are still
  // missing to retransmit; receivers re-send the same retained shares,
  // and contribute() drops duplicates, so this is loss-safe.
  std::vector<bool> want(st.n, false);
  for (std::size_t s : replica_share_indices(st.my_pos, st.n, st.k)) {
    if (st.subtotal.count(s) > 0) continue;
    auto it = st.contributed.find(s);
    for (std::size_t p = 0; p < st.n; ++p) {
      if (p == st.my_pos) continue;
      if (it == st.contributed.end() || !it->second[p]) want[p] = true;
    }
  }
  std::size_t requested = 0;
  {
    // Timer context has an empty span stack; parent the burst explicitly
    // onto the share phase it is trying to finish.
    obs::ScopedSpan retry_span(o.spans, obs::SpanKind::kRetry,
                               channel_ + "/share_retry", id_, st.round,
                               st.share_span);
    for (std::size_t p = 0; p < st.n; ++p) {
      if (!want[p]) continue;
      SacShareReq req{st.round, static_cast<std::uint32_t>(st.my_pos)};
      net_.send(id_, st.group[p], channel_ + "/share_req", req,
                wire::kShareReqWire);
      ++requested;
    }
  }
  if (requested > 0) {
    o.metrics.counter("sac.share_retries").add(requested);
    if (o.trace.category_enabled("agg")) {
      o.trace.instant("agg", "sac.share_retry", id_,
                      {{"channel", channel_},
                       {"round", st.round},
                       {"requests", requested},
                       {"attempt", st.share_retries}});
    }
  }
  share_timer_.arm(backoff(opts_.share_timeout, st.share_retries));
}

void SacPeer::on_subtotal_timer() {
  if (!round_ || round_->completed) return;
  request_missing_subtotals();
}

void SacPeer::request_missing_subtotals() {
  RoundState& st = *round_;
  // Alg. 4 recovery burst, fired from a timer (empty span stack): parent
  // explicitly onto the subtotal wait it is trying to resolve.
  obs::ScopedSpan recovery_span(net_.obs().spans,
                                obs::SpanKind::kRecovery,
                                channel_ + "/recovery", id_, st.round,
                                st.subtotal_span);
  bool any_pending = false;
  for (std::size_t idx = 0; idx < st.n; ++idx) {
    if (st.collected.count(idx) > 0) continue;
    auto holders = subtotal_holders(idx, st.n, st.k);
    // We never need to ask ourselves: anything we held is collected.
    holders.erase(std::remove(holders.begin(), holders.end(), st.my_pos),
                  holders.end());
    std::size_t& attempt = st.recovery_attempts[idx];
    if (holders.empty() ||
        attempt >= holders.size() * opts_.recovery_passes) {
      P2PFL_WARN() << channel_ << " round " << st.round << ": subtotal "
                   << idx << " unrecoverable";
      net_.obs().metrics.counter("sac.unrecoverable").add(1);
      if (on_unrecoverable) on_unrecoverable(st.round);
      return;
    }
    // Cycle through the replica holders, several passes: a holder that
    // was merely behind (or whose reply was lost) answers on a later one.
    const std::size_t target = holders[attempt % holders.size()];
    obs::Observability& o = net_.obs();
    o.metrics.counter("sac.recovery_requests").add(1);
    if (o.trace.category_enabled("agg")) {
      o.trace.instant("agg", "sac.recovery_request", id_,
                      {{"channel", channel_},
                       {"round", st.round},
                       {"subtotal", idx}});
    }
    SacSubtotalReq req{st.round, static_cast<std::uint32_t>(idx),
                       static_cast<std::uint32_t>(st.my_pos)};
    net_.send(id_, st.group[target], channel_ + "/request", req,
              wire::kSubtotalReqWire);
    ++attempt;
    any_pending = true;
  }
  if (any_pending) {
    ++st.recovery_rounds;
    subtotal_timer_.arm(backoff(opts_.subtotal_timeout, st.recovery_rounds));
  }
}

}  // namespace p2pfl::secagg
