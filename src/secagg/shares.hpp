// Additive secret sharing (Alg. 1 of the paper).
//
// A model (flattened weight vector) is split into N shares that sum back
// to the original. Two schemes are provided:
//
//  * kProportional — the literal Alg. 1: draw N random numbers, normalize
//    them to fractions, scale the secret. We apply it per element (each
//    weight gets its own random fractions), which is what the underlying
//    SAC baseline (Wink & Nochta) requires for the shares to look random;
//    applying one scalar fraction to the whole tensor would hand every
//    peer a scaled copy of the model.
//  * kUniformMask — classical additive masking: N−1 shares are uniform
//    noise in [−R, R], the last is the secret minus their sum. Included
//    because it is the textbook additive scheme ([13] in the paper) and
//    has better numerical behaviour for large N.
//
// Shares are the unit of the k-out-of-n replication in Alg. 4: share
// *placement* (which consecutive shares go to which peer) lives in
// sac.hpp; this header only creates and sums shares.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace p2pfl::secagg {

/// A flattened model / share. float matches the 4-byte parameters the
/// paper's cost analysis assumes (1.25M params = 40 Mb).
using Vector = std::vector<float>;

enum class SplitScheme {
  kProportional,  // per-element normalized random fractions (Alg. 1)
  kUniformMask,   // additive masking with uniform noise
};

struct SplitOptions {
  SplitScheme scheme = SplitScheme::kProportional;
  /// Mask amplitude for kUniformMask.
  double mask_range = 1.0;
};

/// Split `secret` into n shares that sum (exactly up to FP rounding) to
/// it. n >= 1. Shares all have secret.size() elements.
std::vector<Vector> divide(std::span<const float> secret, std::size_t n,
                           Rng& rng, const SplitOptions& opts = {});

/// Element-wise sum of shares (double accumulation). All inputs must
/// share one size.
Vector sum_shares(std::span<const Vector> shares);

/// Element-wise in-place accumulate: acc += x.
void accumulate(std::vector<double>& acc, std::span<const float> x);

/// acc (double) -> Vector, optionally scaled by 1/divisor.
Vector to_vector(std::span<const double> acc, double divisor = 1.0);

}  // namespace p2pfl::secagg
