// Sequential model container + the paper's architectures.
//
// paper_cnn() reproduces Fig. 5: two blocks of (conv3x3, conv3x3,
// maxpool, dropout) with ReLU activations, then dense+ReLU+dropout and a
// dense output (softmax applied inside the loss). With CIFAR-10 input
// (3x32x32) and the default dense width the model lands at ~1.25M
// parameters, the size the paper's cost analysis assumes. mlp() is the
// scaled-down substitute used by the default (CI-speed) accuracy runs.
#pragma once

#include <memory>
#include <vector>

#include "fl/layers.hpp"

namespace p2pfl::fl {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  void add(std::unique_ptr<Layer> layer);

  /// Randomly initialize every layer's parameters.
  void init(Rng& rng);

  Tensor forward(const Tensor& x, bool train, Rng& rng);

  /// Backpropagate loss gradient through all layers (after a forward).
  void backward(const Tensor& grad);

  std::size_t param_count() const;
  std::vector<float> get_params() const;
  void set_params(std::span<const float> flat);
  std::vector<float> get_grads() const;
  void zero_grads();

  std::size_t layer_count() const { return layers_.size(); }

  /// Fig. 5 CNN. `channels`/`hw` describe the square input image.
  static Model paper_cnn(std::size_t channels, std::size_t hw,
                         std::size_t dense_width = 287,
                         std::size_t classes = 10);

  /// Small MLP on flattened input (fast substitute for default runs).
  static Model mlp(std::size_t inputs, const std::vector<std::size_t>& hidden,
                   std::size_t classes = 10, float dropout = 0.0f);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace p2pfl::fl
