#include "fl/model.hpp"

#include "common/check.hpp"

namespace p2pfl::fl {

void Model::add(std::unique_ptr<Layer> layer) {
  P2PFL_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

void Model::init(Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

Tensor Model::forward(const Tensor& x, bool train, Rng& rng) {
  Tensor t = x;
  for (auto& l : layers_) t = l->forward(t, train, rng);
  return t;
}

void Model::backward(const Tensor& grad) {
  Tensor g = grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::size_t Model::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->params().size();
  return n;
}

std::vector<float> Model::get_params() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& l : layers_) {
    const auto p = l->params();
    flat.insert(flat.end(), p.begin(), p.end());
  }
  return flat;
}

void Model::set_params(std::span<const float> flat) {
  P2PFL_CHECK(flat.size() == param_count());
  std::size_t off = 0;
  for (auto& l : layers_) {
    auto p = l->params();
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + p.size()),
              p.begin());
    off += p.size();
  }
}

std::vector<float> Model::get_grads() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& l : layers_) {
    const auto g = l->grads();
    flat.insert(flat.end(), g.begin(), g.end());
  }
  return flat;
}

void Model::zero_grads() {
  for (auto& l : layers_) l->zero_grads();
}

Model Model::paper_cnn(std::size_t channels, std::size_t hw,
                       std::size_t dense_width, std::size_t classes) {
  P2PFL_CHECK(hw % 4 == 0);  // two 2x2 pools
  Model m;
  m.add(std::make_unique<Conv2d>(channels, 32));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Conv2d>(32, 32));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>());
  m.add(std::make_unique<Dropout>(0.25f));
  m.add(std::make_unique<Conv2d>(32, 64));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Conv2d>(64, 64));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>());
  m.add(std::make_unique<Dropout>(0.25f));
  m.add(std::make_unique<Flatten>());
  const std::size_t flat = 64 * (hw / 4) * (hw / 4);
  m.add(std::make_unique<Dense>(flat, dense_width));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dropout>(0.5f));
  m.add(std::make_unique<Dense>(dense_width, classes));
  return m;
}

Model Model::mlp(std::size_t inputs, const std::vector<std::size_t>& hidden,
                 std::size_t classes, float dropout) {
  Model m;
  m.add(std::make_unique<Flatten>());
  std::size_t prev = inputs;
  for (std::size_t width : hidden) {
    m.add(std::make_unique<Dense>(prev, width));
    m.add(std::make_unique<ReLU>());
    if (dropout > 0.0f) m.add(std::make_unique<Dropout>(dropout));
    prev = width;
  }
  m.add(std::make_unique<Dense>(prev, classes));
  return m;
}

}  // namespace p2pfl::fl
