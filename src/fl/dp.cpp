#include "fl/dp.hpp"

#include <cmath>

#include "common/check.hpp"

namespace p2pfl::fl {

double gaussian_sigma(const DpConfig& cfg) {
  P2PFL_CHECK(cfg.epsilon > 0.0 && cfg.delta > 0.0 && cfg.delta < 1.0);
  P2PFL_CHECK(cfg.clip_norm > 0.0);
  return cfg.clip_norm * std::sqrt(2.0 * std::log(1.25 / cfg.delta)) /
         cfg.epsilon;
}

double l2_norm(std::span<const float> v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

void clip_to_norm(std::span<float> v, double bound) {
  P2PFL_CHECK(bound > 0.0);
  const double norm = l2_norm(v);
  if (norm <= bound || norm == 0.0) return;
  const double scale = bound / norm;
  for (float& x : v) x = static_cast<float>(x * scale);
}

void apply_gaussian_mechanism(std::span<float> update, const DpConfig& cfg,
                              Rng& rng) {
  clip_to_norm(update, cfg.clip_norm);
  const double sigma = gaussian_sigma(cfg);
  for (float& x : update) {
    x = static_cast<float>(x + rng.normal(0.0, sigma));
  }
}

}  // namespace p2pfl::fl
