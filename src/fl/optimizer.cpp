#include "fl/optimizer.hpp"

#include <cmath>

#include "common/check.hpp"

namespace p2pfl::fl {

void Sgd::step(std::span<float> params, std::span<const float> grads) {
  P2PFL_CHECK(params.size() == grads.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] -= lr_ * grads[i];
  }
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

void Adam::step(std::span<float> params, std::span<const float> grads) {
  P2PFL_CHECK(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double b1 = beta1_, b2 = beta2_;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = grads[i];
    m_[i] = b1 * m_[i] + (1.0 - b1) * g;
    v_[i] = b2 * v_[i] + (1.0 - b2) * g * g;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= static_cast<float>(lr_ * mhat /
                                    (std::sqrt(vhat) + eps_));
  }
}

}  // namespace p2pfl::fl
