#include "fl/checkpoint.hpp"

#include <cstdio>
#include <cstring>

namespace p2pfl::fl {

namespace {

constexpr std::uint32_t kMagic = 0x50'32'46'4C;  // "P2FL"
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Bytes encode_checkpoint(std::span<const float> weights) {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(weights.size());
  Bytes payload(weights.size() * sizeof(float));
  if (!weights.empty()) {
    std::memcpy(payload.data(), weights.data(), payload.size());
  }
  w.u64(fnv1a(payload));
  Bytes out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<std::vector<float>> decode_checkpoint(const Bytes& data) {
  ByteReader r(data);
  if (r.u32() != kMagic || r.u32() != kVersion) return std::nullopt;
  const std::uint64_t count = r.u64();
  const std::uint64_t checksum = r.u64();
  if (!r.ok()) return std::nullopt;
  constexpr std::size_t kHeader = 4 + 4 + 8 + 8;
  if (count > data.size() / sizeof(float)) return std::nullopt;
  if (data.size() != kHeader + count * sizeof(float)) return std::nullopt;
  const std::span<const std::uint8_t> payload(data.data() + kHeader,
                                              count * sizeof(float));
  if (fnv1a(payload) != checksum) return std::nullopt;
  std::vector<float> weights(count);
  if (count > 0) {
    std::memcpy(weights.data(), payload.data(), payload.size());
  }
  return weights;
}

bool save_checkpoint(const std::string& path,
                     std::span<const float> weights) {
  const Bytes data = encode_checkpoint(weights);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

std::optional<std::vector<float>> load_checkpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  Bytes data;
  std::uint8_t buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(f);
  return decode_checkpoint(data);
}

}  // namespace p2pfl::fl
