#include "fl/layers.hpp"

#include <cmath>
#include <limits>

#include "common/parallel.hpp"

namespace p2pfl::fl {

// --- Dense -------------------------------------------------------------------

Dense::Dense(std::size_t in, std::size_t out)
    : in_(in), out_(out), params_(out * in + out), grads_(params_.size()) {
  P2PFL_CHECK(in > 0 && out > 0);
}

void Dense::init(Rng& rng) {
  // He-uniform: suited to the ReLU activations used throughout Fig. 5.
  const float bound = std::sqrt(6.0f / static_cast<float>(in_));
  for (std::size_t i = 0; i < out_ * in_; ++i) {
    params_[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  for (std::size_t i = out_ * in_; i < params_.size(); ++i) params_[i] = 0.0f;
}

Tensor Dense::forward(const Tensor& x, bool /*train*/, Rng& /*rng*/) {
  P2PFL_CHECK(x.rank() == 2 && x.dim(1) == in_);
  cached_input_ = x;
  const std::size_t batch = x.dim(0);
  Tensor y({batch, out_});
  const float* w = params_.data();
  const float* b = params_.data() + out_ * in_;
  parallel_for_chunked(0, batch, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      const float* xin = x.data() + s * in_;
      float* yout = y.data() + s * out_;
      for (std::size_t o = 0; o < out_; ++o) {
        const float* wrow = w + o * in_;
        double acc = b[o];
        for (std::size_t i = 0; i < in_; ++i) acc += wrow[i] * xin[i];
        yout[o] = static_cast<float>(acc);
      }
    }
  });
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  P2PFL_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_);
  P2PFL_CHECK(grad_out.dim(0) == x.dim(0));
  const std::size_t batch = x.dim(0);
  const float* w = params_.data();
  float* gw = grads_.data();
  float* gb = grads_.data() + out_ * in_;

  // Parameter gradients (serial over batch: accumulation race otherwise).
  for (std::size_t s = 0; s < batch; ++s) {
    const float* xin = x.data() + s * in_;
    const float* gy = grad_out.data() + s * out_;
    for (std::size_t o = 0; o < out_; ++o) {
      float* gwrow = gw + o * in_;
      const float g = gy[o];
      for (std::size_t i = 0; i < in_; ++i) gwrow[i] += g * xin[i];
      gb[o] += g;
    }
  }

  Tensor gx({batch, in_});
  parallel_for_chunked(0, batch, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      const float* gy = grad_out.data() + s * out_;
      float* gxi = gx.data() + s * in_;
      for (std::size_t o = 0; o < out_; ++o) {
        const float* wrow = w + o * in_;
        const float g = gy[o];
        for (std::size_t i = 0; i < in_; ++i) gxi[i] += g * wrow[i];
      }
    }
  });
  return gx;
}

// --- ReLU --------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& x, bool /*train*/, Rng& /*rng*/) {
  cached_input_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = v > 0.0f ? v : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  P2PFL_CHECK(grad_out.size() == cached_input_.size());
  Tensor gx = grad_out;
  const float* x = cached_input_.data();
  float* g = gx.data();
  for (std::size_t i = 0; i < gx.size(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return gx;
}

// --- Dropout -----------------------------------------------------------------

Dropout::Dropout(float rate) : rate_(rate) {
  P2PFL_CHECK(rate >= 0.0f && rate < 1.0f);
}

Tensor Dropout::forward(const Tensor& x, bool train, Rng& rng) {
  if (!train || rate_ == 0.0f) {
    mask_.clear();
    return x;
  }
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  mask_.resize(x.size());
  Tensor y = x;
  float* v = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    mask_[i] = rng.chance(keep) ? scale : 0.0f;
    v[i] *= mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  P2PFL_CHECK(grad_out.size() == mask_.size());
  Tensor gx = grad_out;
  float* g = gx.data();
  for (std::size_t i = 0; i < gx.size(); ++i) g[i] *= mask_[i];
  return gx;
}

// --- Conv2d ------------------------------------------------------------------

Conv2d::Conv2d(std::size_t in_channels, std::size_t filters,
               std::size_t kernel)
    : in_c_(in_channels),
      filters_(filters),
      k_(kernel),
      params_(filters * in_channels * kernel * kernel + filters),
      grads_(params_.size()) {
  P2PFL_CHECK(in_channels > 0 && filters > 0);
  P2PFL_CHECK(kernel % 2 == 1);  // same padding needs an odd kernel
}

void Conv2d::init(Rng& rng) {
  const std::size_t fan_in = in_c_ * k_ * k_;
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  const std::size_t nw = filters_ * in_c_ * k_ * k_;
  for (std::size_t i = 0; i < nw; ++i) {
    params_[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  for (std::size_t i = nw; i < params_.size(); ++i) params_[i] = 0.0f;
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/, Rng& /*rng*/) {
  P2PFL_CHECK(x.rank() == 4 && x.dim(1) == in_c_);
  cached_input_ = x;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  Tensor y({batch, filters_, h, w});
  const float* wt = params_.data();
  const float* bias = params_.data() + filters_ * in_c_ * k_ * k_;

  parallel_for_chunked(0, batch, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      const float* xin = x.data() + s * in_c_ * h * w;
      float* yout = y.data() + s * filters_ * h * w;
      for (std::size_t f = 0; f < filters_; ++f) {
        const float* wf = wt + f * in_c_ * k_ * k_;
        for (std::size_t oy = 0; oy < h; ++oy) {
          for (std::size_t ox = 0; ox < w; ++ox) {
            double acc = bias[f];
            for (std::size_t c = 0; c < in_c_; ++c) {
              const float* xc = xin + c * h * w;
              const float* wc = wf + c * k_ * k_;
              for (std::size_t ky = 0; ky < k_; ++ky) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(oy + ky) - pad;
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
                for (std::size_t kx = 0; kx < k_; ++kx) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(ox + kx) - pad;
                  if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) {
                    continue;
                  }
                  acc += wc[ky * k_ + kx] * xc[iy * w + ix];
                }
              }
            }
            yout[f * h * w + oy * w + ox] = static_cast<float>(acc);
          }
        }
      }
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  P2PFL_CHECK(grad_out.rank() == 4 && grad_out.dim(1) == filters_);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  const float* wt = params_.data();
  float* gw = grads_.data();
  float* gb = grads_.data() + filters_ * in_c_ * k_ * k_;
  Tensor gx({batch, in_c_, h, w});

  // Serial over batch: parameter-gradient accumulation is shared.
  for (std::size_t s = 0; s < batch; ++s) {
    const float* xin = x.data() + s * in_c_ * h * w;
    const float* gy = grad_out.data() + s * filters_ * h * w;
    float* gxi = gx.data() + s * in_c_ * h * w;
    for (std::size_t f = 0; f < filters_; ++f) {
      const float* wf = wt + f * in_c_ * k_ * k_;
      float* gwf = gw + f * in_c_ * k_ * k_;
      const float* gyf = gy + f * h * w;
      for (std::size_t oy = 0; oy < h; ++oy) {
        for (std::size_t ox = 0; ox < w; ++ox) {
          const float g = gyf[oy * w + ox];
          if (g == 0.0f) continue;
          gb[f] += g;
          for (std::size_t c = 0; c < in_c_; ++c) {
            const float* xc = xin + c * h * w;
            float* gxc = gxi + c * h * w;
            const float* wc = wf + c * k_ * k_;
            float* gwc = gwf + c * k_ * k_;
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy + ky) - pad;
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox + kx) - pad;
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                gwc[ky * k_ + kx] += g * xc[iy * w + ix];
                gxc[iy * w + ix] += g * wc[ky * k_ + kx];
              }
            }
          }
        }
      }
    }
  }
  return gx;
}

// --- MaxPool2d ---------------------------------------------------------------

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/, Rng& /*rng*/) {
  P2PFL_CHECK(x.rank() == 4);
  const std::size_t batch = x.dim(0), c = x.dim(1), h = x.dim(2),
                    w = x.dim(3);
  P2PFL_CHECK_MSG(h % 2 == 0 && w % 2 == 0,
                  "MaxPool2d expects even spatial dims");
  in_shape_ = x.shape();
  const std::size_t oh = h / 2, ow = w / 2;
  Tensor y({batch, c, oh, ow});
  argmax_.assign(y.size(), 0);
  for (std::size_t s = 0; s < batch * c; ++s) {
    const float* xc = x.data() + s * h * w;
    float* yc = y.data() + s * oh * ow;
    std::size_t* am = argmax_.data() + s * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const std::size_t idx = (oy * 2 + dy) * w + (ox * 2 + dx);
            if (xc[idx] > best) {
              best = xc[idx];
              best_idx = idx;
            }
          }
        }
        yc[oy * ow + ox] = best;
        am[oy * ow + ox] = best_idx;
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  P2PFL_CHECK(grad_out.size() == argmax_.size());
  Tensor gx(in_shape_);
  const std::size_t h = in_shape_[2], w = in_shape_[3];
  const std::size_t oh = h / 2, ow = w / 2;
  const std::size_t planes = in_shape_[0] * in_shape_[1];
  for (std::size_t s = 0; s < planes; ++s) {
    const float* gy = grad_out.data() + s * oh * ow;
    const std::size_t* am = argmax_.data() + s * oh * ow;
    float* gxc = gx.data() + s * h * w;
    for (std::size_t i = 0; i < oh * ow; ++i) gxc[am[i]] += gy[i];
  }
  return gx;
}

// --- Flatten -----------------------------------------------------------------

Tensor Flatten::forward(const Tensor& x, bool /*train*/, Rng& /*rng*/) {
  P2PFL_CHECK(x.rank() >= 2);
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

}  // namespace p2pfl::fl
