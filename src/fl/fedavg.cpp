#include "fl/fedavg.hpp"

#include "common/check.hpp"

namespace p2pfl::fl {

std::vector<float> federated_average(
    std::span<const std::vector<float>> models,
    std::span<const double> weights) {
  P2PFL_CHECK(!models.empty());
  P2PFL_CHECK(models.size() == weights.size());
  const std::size_t dim = models.front().size();
  double total_weight = 0.0;
  for (double w : weights) {
    P2PFL_CHECK(w > 0.0);
    total_weight += w;
  }
  std::vector<double> acc(dim, 0.0);
  for (std::size_t i = 0; i < models.size(); ++i) {
    P2PFL_CHECK(models[i].size() == dim);
    const double w = weights[i] / total_weight;
    for (std::size_t j = 0; j < dim; ++j) {
      acc[j] += w * static_cast<double>(models[i][j]);
    }
  }
  std::vector<float> out(dim);
  for (std::size_t j = 0; j < dim; ++j) out[j] = static_cast<float>(acc[j]);
  return out;
}

std::vector<float> federated_average(
    std::span<const std::vector<float>> models) {
  std::vector<double> weights(models.size(), 1.0);
  return federated_average(models, weights);
}

}  // namespace p2pfl::fl
