#include "fl/loss.hpp"

#include <cmath>

#include "common/check.hpp"

namespace p2pfl::fl {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  P2PFL_CHECK(logits.rank() == 2);
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  P2PFL_CHECK(labels.size() == batch);

  LossResult out;
  out.grad = Tensor({batch, classes});
  double total = 0.0;
  for (std::size_t s = 0; s < batch; ++s) {
    const float* z = logits.data() + s * classes;
    float* g = out.grad.data() + s * classes;
    const int label = labels[s];
    P2PFL_CHECK(label >= 0 && static_cast<std::size_t>(label) < classes);

    // Max-shifted softmax for numerical stability.
    float zmax = z[0];
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (z[c] > zmax) {
        zmax = z[c];
        argmax = c;
      }
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(z[c] - zmax));
    }
    const double logp_label =
        static_cast<double>(z[label] - zmax) - std::log(denom);
    total -= logp_label;
    if (argmax == static_cast<std::size_t>(label)) ++out.correct;

    const double inv_batch = 1.0 / static_cast<double>(batch);
    for (std::size_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(z[c] - zmax)) / denom;
      const double target = c == static_cast<std::size_t>(label) ? 1.0 : 0.0;
      g[c] = static_cast<float>((p - target) * inv_batch);
    }
  }
  out.loss = total / static_cast<double>(batch);
  return out;
}

}  // namespace p2pfl::fl
