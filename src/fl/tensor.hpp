// Dense row-major float tensor for the hand-rolled FL substrate.
//
// The paper trains with PyTorch; reproducing the experiments only needs
// forward/backward for the handful of layer types in the Fig. 5 CNN, so
// this is deliberately a minimal container — layers implement their own
// kernels against raw spans. First dimension is always the batch.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <numeric>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace p2pfl::fl {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::size_t> shape)
      : shape_(std::move(shape)), data_(count_of(shape_), 0.0f) {}

  Tensor(std::vector<std::size_t> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    P2PFL_CHECK(data_.size() == count_of(shape_));
  }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const {
    P2PFL_CHECK(i < shape_.size());
    return shape_[i];
  }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Reinterpret with a new shape of identical element count.
  Tensor reshaped(std::vector<std::size_t> shape) const {
    P2PFL_CHECK(count_of(shape) == size());
    return Tensor(std::move(shape), data_);
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  static std::size_t count_of(const std::vector<std::size_t>& shape) {
    return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                           std::multiplies<>());
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace p2pfl::fl
