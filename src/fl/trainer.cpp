#include "fl/trainer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace p2pfl::fl {

PeerTrainer::PeerTrainer(Model model, std::unique_ptr<Optimizer> optimizer,
                         const Dataset& data,
                         std::vector<std::size_t> indices, Rng rng)
    : model_(std::move(model)),
      optimizer_(std::move(optimizer)),
      data_(data),
      indices_(std::move(indices)),
      rng_(rng) {
  P2PFL_CHECK(optimizer_ != nullptr);
  P2PFL_CHECK(!indices_.empty());
}

double PeerTrainer::train_round(const TrainOptions& opts) {
  P2PFL_CHECK(opts.epochs >= 1 && opts.batch_size >= 1);
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    rng_.shuffle(indices_);
    for (std::size_t off = 0; off < indices_.size();
         off += opts.batch_size) {
      const std::size_t count =
          std::min(opts.batch_size, indices_.size() - off);
      const std::span<const std::size_t> idx(indices_.data() + off, count);
      const Tensor x = data_.batch(idx);
      std::vector<int> labels(count);
      for (std::size_t i = 0; i < count; ++i) {
        labels[i] = data_.labels[idx[i]];
      }
      model_.zero_grads();
      const Tensor logits = model_.forward(x, /*train=*/true, rng_);
      LossResult lr = softmax_cross_entropy(logits, labels);
      model_.backward(lr.grad);
      auto params = model_.get_params();
      const auto grads = model_.get_grads();
      optimizer_->step(params, grads);
      model_.set_params(params);
      total_loss += lr.loss;
      ++batches;
    }
  }
  return batches > 0 ? total_loss / static_cast<double>(batches) : 0.0;
}

EvalResult PeerTrainer::evaluate(const Dataset& test,
                                 std::size_t max_samples) {
  return evaluate_model(model_, test, rng_, max_samples);
}

EvalResult evaluate_model(Model& model, const Dataset& test, Rng& rng,
                          std::size_t max_samples, std::size_t batch_size) {
  P2PFL_CHECK(test.size() > 0);
  const std::size_t total =
      max_samples > 0 ? std::min(max_samples, test.size()) : test.size();
  double loss = 0.0;
  std::size_t correct = 0;
  for (std::size_t off = 0; off < total; off += batch_size) {
    const std::size_t count = std::min(batch_size, total - off);
    std::vector<std::size_t> idx(count);
    for (std::size_t i = 0; i < count; ++i) idx[i] = off + i;
    const Tensor x = test.batch(idx);
    std::vector<int> labels(count);
    for (std::size_t i = 0; i < count; ++i) labels[i] = test.labels[off + i];
    const Tensor logits = model.forward(x, /*train=*/false, rng);
    const LossResult lr = softmax_cross_entropy(logits, labels);
    loss += lr.loss * static_cast<double>(count);
    correct += lr.correct;
  }
  EvalResult out;
  out.loss = loss / static_cast<double>(total);
  out.accuracy = static_cast<double>(correct) / static_cast<double>(total);
  return out;
}

}  // namespace p2pfl::fl
