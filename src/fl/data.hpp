// Datasets and federated partitioning.
//
// The paper evaluates on MNIST and CIFAR-10 downloads; this repo has no
// network access, so mnist_like()/cifar10_like() generate synthetic
// image-classification sets of identical shape (28x28x1 / 32x32x3, 10
// classes): each class is a Gaussian prototype image, samples are
// prototype + noise, and `noise_scale` controls how hard the task is.
// What the experiments actually sweep — IID vs Non-IID partitioning
// across peers (§VI-A1) — is reproduced exactly: Non-IID(x%) gives each
// peer two randomly chosen main classes providing (100−x)% of its
// samples, the remaining x% drawn from the other eight classes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "fl/tensor.hpp"

namespace p2pfl::fl {

struct Dataset {
  std::size_t channels = 1;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t classes = 10;
  std::vector<float> images;  // sample-major, C*H*W floats each
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
  std::size_t sample_floats() const { return channels * height * width; }

  /// Gather samples at `indices` into a (B, C, H, W) batch tensor.
  Tensor batch(std::span<const std::size_t> indices) const;
  std::span<const float> image(std::size_t i) const;
};

struct SyntheticSpec {
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t classes = 10;
  std::size_t train_samples = 6000;
  std::size_t test_samples = 1000;
  /// Per-pixel noise stddev relative to unit prototype energy; larger is
  /// harder (cifar10_like uses more noise than mnist_like, mirroring the
  /// accuracy gap between the two datasets in the paper).
  double noise_scale = 1.0;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Deterministic synthetic dataset from `rng`.
TrainTest make_synthetic(const SyntheticSpec& spec, Rng& rng);

/// Shape- and difficulty-presets standing in for the paper's datasets.
SyntheticSpec mnist_like();
SyntheticSpec cifar10_like();

/// Split sample indices across peers.
using PeerIndices = std::vector<std::vector<std::size_t>>;

/// IID: shuffle and deal evenly.
PeerIndices partition_iid(const Dataset& data, std::size_t peers, Rng& rng);

/// Non-IID(off_fraction): each peer draws (1-off_fraction) of its quota
/// from `main_classes` randomly chosen classes and the rest uniformly
/// from the remaining classes. off_fraction = 0.05 reproduces the
/// paper's Non-IID(5%), 0.0 its Non-IID(0%).
PeerIndices partition_non_iid(const Dataset& data, std::size_t peers,
                              double off_fraction, Rng& rng,
                              std::size_t main_classes = 2);

/// Dirichlet(alpha) label-skew partitioning — the continuous
/// heterogeneity knob common in the FL literature (beyond the paper's
/// two discrete Non-IID settings). Each peer's class mixture is drawn
/// from Dir(alpha): alpha -> infinity approaches IID, alpha -> 0
/// approaches one-class-per-peer. Every peer receives quota =
/// data.size() / peers samples (drawn from per-class pools, cyclically
/// when exhausted).
PeerIndices partition_dirichlet(const Dataset& data, std::size_t peers,
                                double alpha, Rng& rng);

}  // namespace p2pfl::fl
