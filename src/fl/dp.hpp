// Differential privacy for model updates (§IV-D: "Other techniques such
// as Differential Privacy could be used to add noise to the weight of
// each peer").
//
// Implements the Gaussian mechanism on weight vectors: clip the update
// to an L2 bound, then add N(0, sigma^2) noise with sigma derived from
// the (epsilon, delta) budget via the analytic bound
// sigma >= clip * sqrt(2 ln(1.25/delta)) / epsilon.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace p2pfl::fl {

struct DpConfig {
  double epsilon = 1.0;
  double delta = 1e-5;
  /// L2 clipping bound applied to the (update) vector before noising.
  double clip_norm = 1.0;
};

/// Noise stddev of the Gaussian mechanism for the given budget.
double gaussian_sigma(const DpConfig& cfg);

/// L2 norm of a vector.
double l2_norm(std::span<const float> v);

/// Scale `v` in place so its L2 norm is at most `bound`.
void clip_to_norm(std::span<float> v, double bound);

/// Clip-and-noise a weight *update* (delta from the global model) in
/// place: the paper-suggested per-peer DP step before SAC aggregation.
void apply_gaussian_mechanism(std::span<float> update, const DpConfig& cfg,
                              Rng& rng);

}  // namespace p2pfl::fl
