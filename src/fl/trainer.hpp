// Per-peer local training (the "local update" step of each FL round).
//
// Matches the paper's §VI-A1 setup: Adam (lr 1e-4), categorical
// cross-entropy, 1 epoch per round, batch size 50. A PeerTrainer owns a
// peer's model instance, optimizer state (persisting across rounds, as a
// long-lived client process would) and its slice of the training data.
#pragma once

#include <memory>
#include <vector>

#include "fl/data.hpp"
#include "fl/loss.hpp"
#include "fl/model.hpp"
#include "fl/optimizer.hpp"

namespace p2pfl::fl {

struct TrainOptions {
  std::size_t epochs = 1;
  std::size_t batch_size = 50;
};

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;  // in [0, 1]
};

class PeerTrainer {
 public:
  /// `indices` selects this peer's local samples within `data` (which
  /// must outlive the trainer).
  PeerTrainer(Model model, std::unique_ptr<Optimizer> optimizer,
              const Dataset& data, std::vector<std::size_t> indices,
              Rng rng);

  std::size_t sample_count() const { return indices_.size(); }

  std::vector<float> weights() const { return model_.get_params(); }
  void set_weights(std::span<const float> w) { model_.set_params(w); }

  /// One federated round of local training; returns mean training loss.
  double train_round(const TrainOptions& opts);

  /// Test-set metrics. max_samples > 0 evaluates only a prefix (speed).
  EvalResult evaluate(const Dataset& test, std::size_t max_samples = 0);

  Model& model() { return model_; }

 private:
  Model model_;
  std::unique_ptr<Optimizer> optimizer_;
  const Dataset& data_;
  std::vector<std::size_t> indices_;
  Rng rng_;
};

/// Stateless evaluation helper shared by experiment harnesses.
EvalResult evaluate_model(Model& model, const Dataset& test, Rng& rng,
                          std::size_t max_samples = 0,
                          std::size_t batch_size = 100);

}  // namespace p2pfl::fl
