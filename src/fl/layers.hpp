// Neural-network layers for the Fig. 5 CNN and the MLP substitute.
//
// Each layer owns its parameters and gradient buffers and implements
// forward (caching what backward needs) and backward (returning the
// input gradient and accumulating parameter gradients). Layers are
// stateful per model instance — one model per peer, as in the paper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fl/tensor.hpp"

namespace p2pfl::fl {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// `train` enables stochastic behaviour (dropout).
  virtual Tensor forward(const Tensor& x, bool train, Rng& rng) = 0;

  /// Gradient w.r.t. this layer's input; accumulates parameter grads.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Flat views of parameters / their gradients (empty if stateless).
  virtual std::span<float> params() { return {}; }
  virtual std::span<float> grads() { return {}; }

  virtual void init(Rng& rng) { (void)rng; }
  void zero_grads() {
    auto g = grads();
    std::fill(g.begin(), g.end(), 0.0f);
  }
};

/// Fully connected: (B, in) -> (B, out). He-uniform initialization.
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out);
  std::string name() const override { return "dense"; }
  Tensor forward(const Tensor& x, bool train, Rng& rng) override;
  Tensor backward(const Tensor& grad_out) override;
  std::span<float> params() override { return params_; }
  std::span<float> grads() override { return grads_; }
  void init(Rng& rng) override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  std::vector<float> params_;  // weights (out*in) then bias (out)
  std::vector<float> grads_;
  Tensor cached_input_;
};

/// Element-wise rectifier.
class ReLU : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& x, bool train, Rng& rng) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

/// Inverted dropout: activations are scaled by 1/(1-rate) at train time
/// so inference needs no rescaling.
class Dropout : public Layer {
 public:
  explicit Dropout(float rate);
  std::string name() const override { return "dropout"; }
  Tensor forward(const Tensor& x, bool train, Rng& rng) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  float rate_;
  std::vector<float> mask_;
};

/// 3x3 (configurable) same-padding convolution: (B, C, H, W) ->
/// (B, F, H, W). Naive direct kernels parallelized over the batch.
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t filters,
         std::size_t kernel = 3);
  std::string name() const override { return "conv2d"; }
  Tensor forward(const Tensor& x, bool train, Rng& rng) override;
  Tensor backward(const Tensor& grad_out) override;
  std::span<float> params() override { return params_; }
  std::span<float> grads() override { return grads_; }
  void init(Rng& rng) override;

 private:
  std::size_t in_c_, filters_, k_;
  std::vector<float> params_;  // weights (F*C*k*k) then bias (F)
  std::vector<float> grads_;
  Tensor cached_input_;
};

/// 2x2 stride-2 max pooling: (B, C, H, W) -> (B, C, H/2, W/2).
class MaxPool2d : public Layer {
 public:
  std::string name() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& x, bool train, Rng& rng) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
};

/// (B, ...) -> (B, prod(...)).
class Flatten : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Tensor forward(const Tensor& x, bool train, Rng& rng) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace p2pfl::fl
