// Model checkpointing: (de)serialize flattened weights with a shape
// fingerprint, so a training run (or a peer joining mid-experiment) can
// resume from a saved global model. The format is the library's own
// little-endian framing (common/serialize.hpp): magic, version,
// parameter count, raw float32 payload, and a FNV-1a checksum.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace p2pfl::fl {

/// Serialize weights to the checkpoint wire format.
Bytes encode_checkpoint(std::span<const float> weights);

/// Parse a checkpoint; nullopt on malformed input, bad magic/version or
/// checksum mismatch.
std::optional<std::vector<float>> decode_checkpoint(const Bytes& data);

/// File convenience wrappers. Return false / nullopt on I/O failure.
bool save_checkpoint(const std::string& path,
                     std::span<const float> weights);
std::optional<std::vector<float>> load_checkpoint(const std::string& path);

}  // namespace p2pfl::fl
