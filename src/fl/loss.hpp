// Categorical cross-entropy with fused softmax (the paper's loss).
#pragma once

#include <span>

#include "fl/tensor.hpp"

namespace p2pfl::fl {

struct LossResult {
  /// Mean cross-entropy over the batch.
  double loss = 0.0;
  /// dLoss/dLogits, already averaged over the batch.
  Tensor grad;
  /// Top-1 hits in the batch.
  std::size_t correct = 0;
};

/// logits: (B, classes); labels: B entries in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels);

}  // namespace p2pfl::fl
