// Federated Averaging (McMahan et al.), the paper's upper-layer
// aggregation: w <- sum_i (n_i / n) w_i, weighted by sample counts (or,
// in the two-layer system's FedAvg layer, by subgroup peer counts as in
// Alg. 3 line 10).
#pragma once

#include <span>
#include <vector>

namespace p2pfl::fl {

/// Weighted average of equally sized flat parameter vectors.
/// weights need not be normalized; they must be positive and match
/// models in count.
std::vector<float> federated_average(
    std::span<const std::vector<float>> models,
    std::span<const double> weights);

/// Unweighted convenience overload.
std::vector<float> federated_average(
    std::span<const std::vector<float>> models);

}  // namespace p2pfl::fl
