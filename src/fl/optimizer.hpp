// Optimizers operating on flattened parameter vectors.
//
// The paper trains with Adam (lr = 1e-4); plain SGD is included for
// ablations. State (Adam moments) is sized lazily on the first step and
// persists across federated rounds on each peer.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace p2pfl::fl {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// In-place update of `params` from `grads` (equal sizes).
  virtual void step(std::span<float> params,
                    std::span<const float> grads) = 0;

  /// Drop accumulated state (fresh training run).
  virtual void reset() = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) {}
  void step(std::span<float> params, std::span<const float> grads) override;
  void reset() override {}

 private:
  float lr_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(std::span<float> params, std::span<const float> grads) override;
  void reset() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<double> m_, v_;
  std::uint64_t t_ = 0;
};

}  // namespace p2pfl::fl
