#include "fl/data.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace p2pfl::fl {

Tensor Dataset::batch(std::span<const std::size_t> indices) const {
  P2PFL_CHECK(!indices.empty());
  const std::size_t d = sample_floats();
  Tensor out({indices.size(), channels, height, width});
  for (std::size_t b = 0; b < indices.size(); ++b) {
    P2PFL_CHECK(indices[b] < size());
    const float* src = images.data() + indices[b] * d;
    std::copy(src, src + d, out.data() + b * d);
  }
  return out;
}

std::span<const float> Dataset::image(std::size_t i) const {
  P2PFL_CHECK(i < size());
  return {images.data() + i * sample_floats(), sample_floats()};
}

namespace {

Dataset sample_set(const SyntheticSpec& spec,
                   const std::vector<std::vector<float>>& prototypes,
                   std::size_t count, Rng& rng) {
  Dataset ds;
  ds.channels = spec.channels;
  ds.height = spec.height;
  ds.width = spec.width;
  ds.classes = spec.classes;
  const std::size_t d = ds.sample_floats();
  ds.images.resize(count * d);
  ds.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % spec.classes);
    ds.labels[i] = label;
    const auto& proto = prototypes[static_cast<std::size_t>(label)];
    float* img = ds.images.data() + i * d;
    for (std::size_t p = 0; p < d; ++p) {
      img[p] = proto[p] +
               static_cast<float>(rng.normal(0.0, spec.noise_scale));
    }
  }
  // Interleaved labels are deterministic; shuffle sample order so peers
  // slicing contiguous ranges still see mixed classes under IID.
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  rng.shuffle(order);
  Dataset shuffled = ds;
  for (std::size_t i = 0; i < count; ++i) {
    shuffled.labels[i] = ds.labels[order[i]];
    std::copy(ds.images.begin() + static_cast<std::ptrdiff_t>(order[i] * d),
              ds.images.begin() + static_cast<std::ptrdiff_t>((order[i] + 1) * d),
              shuffled.images.begin() + static_cast<std::ptrdiff_t>(i * d));
  }
  return shuffled;
}

}  // namespace

TrainTest make_synthetic(const SyntheticSpec& spec, Rng& rng) {
  P2PFL_CHECK(spec.classes >= 2);
  P2PFL_CHECK(spec.train_samples >= spec.classes);
  const std::size_t d = spec.channels * spec.height * spec.width;
  std::vector<std::vector<float>> prototypes(spec.classes,
                                             std::vector<float>(d));
  for (auto& proto : prototypes) {
    for (float& v : proto) v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  TrainTest tt;
  tt.train = sample_set(spec, prototypes, spec.train_samples, rng);
  tt.test = sample_set(spec, prototypes, spec.test_samples, rng);
  return tt;
}

SyntheticSpec mnist_like() {
  SyntheticSpec s;
  s.channels = 1;
  s.height = 28;
  s.width = 28;
  s.noise_scale = 1.5;
  return s;
}

SyntheticSpec cifar10_like() {
  SyntheticSpec s;
  s.channels = 3;
  s.height = 32;
  s.width = 32;
  s.noise_scale = 3.0;  // harder task, mirroring CIFAR-10 vs MNIST
  return s;
}

PeerIndices partition_iid(const Dataset& data, std::size_t peers, Rng& rng) {
  P2PFL_CHECK(peers >= 1 && data.size() >= peers);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  PeerIndices out(peers);
  for (std::size_t i = 0; i < order.size(); ++i) {
    out[i % peers].push_back(order[i]);
  }
  return out;
}

PeerIndices partition_non_iid(const Dataset& data, std::size_t peers,
                              double off_fraction, Rng& rng,
                              std::size_t main_classes) {
  P2PFL_CHECK(peers >= 1 && data.size() >= peers);
  P2PFL_CHECK(off_fraction >= 0.0 && off_fraction <= 1.0);
  P2PFL_CHECK(main_classes >= 1 && main_classes < data.classes);

  // Index pool per class, individually shuffled; peers draw cyclically so
  // a class demanded by many peers is shared rather than exhausted.
  std::vector<std::vector<std::size_t>> by_class(data.classes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.labels[i])].push_back(i);
  }
  for (auto& pool : by_class) {
    P2PFL_CHECK_MSG(!pool.empty(), "a class has no samples");
    rng.shuffle(pool);
  }
  std::vector<std::size_t> cursor(data.classes, 0);
  auto draw = [&](std::size_t cls) {
    const auto& pool = by_class[cls];
    const std::size_t idx = pool[cursor[cls] % pool.size()];
    ++cursor[cls];
    return idx;
  };

  const std::size_t quota = data.size() / peers;
  PeerIndices out(peers);
  std::vector<std::size_t> all_classes(data.classes);
  for (std::size_t c = 0; c < data.classes; ++c) all_classes[c] = c;

  for (std::size_t p = 0; p < peers; ++p) {
    std::vector<std::size_t> classes = all_classes;
    rng.shuffle(classes);
    classes.resize(main_classes);  // this peer's main classes
    const std::size_t off =
        static_cast<std::size_t>(off_fraction * static_cast<double>(quota));
    const std::size_t main = quota - off;
    for (std::size_t i = 0; i < main; ++i) {
      out[p].push_back(draw(classes[i % main_classes]));
    }
    for (std::size_t i = 0; i < off; ++i) {
      // Uniform over the classes outside the main set.
      std::size_t cls;
      do {
        cls = rng.index(data.classes);
      } while (std::find(classes.begin(), classes.end(), cls) !=
               classes.end());
      out[p].push_back(draw(cls));
    }
    rng.shuffle(out[p]);
  }
  return out;
}

PeerIndices partition_dirichlet(const Dataset& data, std::size_t peers,
                                double alpha, Rng& rng) {
  P2PFL_CHECK(peers >= 1 && data.size() >= peers);
  P2PFL_CHECK(alpha > 0.0);

  std::vector<std::vector<std::size_t>> by_class(data.classes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.labels[i])].push_back(i);
  }
  for (auto& pool : by_class) {
    P2PFL_CHECK_MSG(!pool.empty(), "a class has no samples");
    rng.shuffle(pool);
  }
  std::vector<std::size_t> cursor(data.classes, 0);
  auto draw = [&](std::size_t cls) {
    const auto& pool = by_class[cls];
    const std::size_t idx = pool[cursor[cls] % pool.size()];
    ++cursor[cls];
    return idx;
  };

  std::gamma_distribution<double> gamma(alpha, 1.0);
  const std::size_t quota = data.size() / peers;
  PeerIndices out(peers);
  for (std::size_t p = 0; p < peers; ++p) {
    // Dir(alpha) sample via normalized Gamma draws.
    std::vector<double> mix(data.classes);
    double total = 0.0;
    for (double& v : mix) {
      v = std::max(gamma(rng.engine()), 1e-12);
      total += v;
    }
    // Largest-remainder apportionment of the quota over classes.
    std::vector<std::size_t> counts(data.classes, 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::size_t assigned = 0;
    for (std::size_t c = 0; c < data.classes; ++c) {
      const double exact =
          mix[c] / total * static_cast<double>(quota);
      counts[c] = static_cast<std::size_t>(exact);
      assigned += counts[c];
      remainders.emplace_back(exact - static_cast<double>(counts[c]), c);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t i = 0; assigned < quota; ++i, ++assigned) {
      ++counts[remainders[i % remainders.size()].second];
    }
    for (std::size_t c = 0; c < data.classes; ++c) {
      for (std::size_t i = 0; i < counts[c]; ++i) out[p].push_back(draw(c));
    }
    rng.shuffle(out[p]);
  }
  return out;
}

}  // namespace p2pfl::fl
