#include "robust/attack.hpp"

namespace p2pfl::robust {

const char* attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kSignFlip: return "sign_flip";
    case AttackKind::kScaledUpdate: return "scaled_update";
    case AttackKind::kRandomNoise: return "random_noise";
    case AttackKind::kConstantDrift: return "constant_drift";
    case AttackKind::kInconsistentShares: return "inconsistent_shares";
    case AttackKind::kSubtotalLie: return "subtotal_lie";
    case AttackKind::kEquivocate: return "equivocate";
  }
  return "?";
}

bool attack_from_name(const std::string& name, AttackKind& out) {
  for (AttackKind k :
       {AttackKind::kNone, AttackKind::kSignFlip, AttackKind::kScaledUpdate,
        AttackKind::kRandomNoise, AttackKind::kConstantDrift,
        AttackKind::kInconsistentShares, AttackKind::kSubtotalLie,
        AttackKind::kEquivocate}) {
    if (name == attack_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

void poison(std::vector<float>& w, const AttackSpec& spec, Rng& rng) {
  const float mag = static_cast<float>(spec.magnitude);
  switch (spec.kind) {
    case AttackKind::kNone:
      return;
    case AttackKind::kSignFlip:
      for (float& v : w) v = -mag * v;
      return;
    case AttackKind::kScaledUpdate:
      for (float& v : w) v = mag * v;
      return;
    case AttackKind::kRandomNoise:
      // The update is replaced wholesale by noise — the attacker
      // contributes garbage, not a perturbed gradient.
      for (float& v : w) {
        v = static_cast<float>(rng.normal(0.0, spec.magnitude));
      }
      return;
    case AttackKind::kConstantDrift:
    case AttackKind::kInconsistentShares:
    case AttackKind::kSubtotalLie:
    case AttackKind::kEquivocate:
      // Plausible-but-wrong: shift every coordinate by the lie offset.
      // Values stay in a normal range, so nothing downstream rejects
      // them on syntax — only consistency checks or robust rules can.
      for (float& v : w) v += mag;
      return;
  }
}

}  // namespace p2pfl::robust
