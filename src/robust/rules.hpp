// Robust aggregation rules for the FedAvg layer (and anywhere else a
// set of equally sized vectors must be combined in the presence of
// Byzantine contributors).
//
// The two-layer topology makes the FedAvg layer the natural defense
// point: each subgroup's SAC subtotal is an independent observation of
// the (masked) population mean, so a poisoned subgroup shifts exactly
// one of m inputs and coordinate-wise order statistics over the m
// subtotals recover the honest value as long as fewer than the rule's
// breakdown fraction of subgroups are compromised. Inside a subgroup
// SAC masking makes per-peer updates invisible by design, so there is
// nothing these rules could inspect there — see DESIGN.md's threat
// model for that limit.
//
// Rules:
//  * kMean        — plain weighted FedAvg (no defense; delegates to
//                   fl::federated_average so clean runs stay bit-exact
//                   with every pre-existing golden).
//  * kTrimmedMean — per coordinate, drop the ceil(trim_fraction*m)
//                   largest and smallest values, average the rest
//                   (weighted). Breakdown point = trim_fraction.
//  * kMedian      — per coordinate, the weighted median. Breakdown
//                   point 1/2.
//  * kNormClip    — scale every input whose L2 norm exceeds
//                   clip_multiplier x (median input norm) down to that
//                   bound, then weighted-average. Defangs scaled-update
//                   attacks while keeping honest gradients untouched.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace p2pfl::robust {

enum class RobustRule {
  kMean,
  kTrimmedMean,
  kMedian,
  kNormClip,
};

struct RobustConfig {
  RobustRule rule = RobustRule::kMean;
  /// kTrimmedMean: fraction trimmed from EACH end, in [0, 0.5).
  double trim_fraction = 0.2;
  /// kNormClip: clip bound as a multiple of the median input norm.
  double clip_multiplier = 2.0;
};

/// Human name of a rule ("mean", "trimmed_mean", "median", "norm_clip").
const char* rule_name(RobustRule rule);

/// Inverse of rule_name; returns true and sets `out` on a match.
bool rule_from_name(const std::string& name, RobustRule& out);

/// Combine equally sized vectors under `cfg`. `weights` must be positive
/// and match `models` in count (subgroup sizes at the FedAvg layer);
/// models must be non-empty. kMean is bit-exact with
/// fl::federated_average.
std::vector<float> aggregate(std::span<const std::vector<float>> models,
                             std::span<const double> weights,
                             const RobustConfig& cfg);

}  // namespace p2pfl::robust
