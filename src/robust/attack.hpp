// Byzantine adversary model: what a compromised peer does.
//
// An AttackSpec names one adversarial behaviour and its magnitude; a
// ByzantineRegistry maps peer ids to their currently active spec. The
// chaos engine activates/deactivates registry entries on plan windows
// (chaos::ByzantineSpec), and the protocol actors consult the registry
// at their injection points:
//
//  * model poisoning (kSignFlip / kScaledUpdate / kRandomNoise /
//    kConstantDrift) — applied to the local model a peer feeds into the
//    SAC round (TwoLayerAggregator::begin_round's model_of wrapper);
//  * kInconsistentShares — the SAC share phase sends different,
//    individually plausible share values to different holders, so
//    subtotals no longer sum to the true total (SacPeer);
//  * kSubtotalLie — a subgroup aggregator perturbs the subgroup average
//    it uploads to the FedAvg leader (TwoLayerAggregator);
//  * kEquivocate — retries carry different payloads than the original
//    send (SacPeer share re-sends, aggregator upload retries).
//
// Everything is deterministic: the transforms draw only from the Rng
// the caller forks, so an attacked run is a pure function of
// (seed, plan) exactly like every other chaos scenario.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace p2pfl::robust {

enum class AttackKind {
  kNone,
  kSignFlip,
  kScaledUpdate,
  kRandomNoise,
  kConstantDrift,
  kInconsistentShares,
  kSubtotalLie,
  kEquivocate,
};

struct AttackSpec {
  AttackKind kind = AttackKind::kNone;
  /// Scale factor (kSignFlip/kScaledUpdate), noise stddev
  /// (kRandomNoise), or additive offset (drift/lie/equivocation).
  double magnitude = 10.0;
};

/// Stable machine name ("sign_flip", "scaled_update", ...).
const char* attack_name(AttackKind kind);

/// Inverse of attack_name; returns true and sets `out` on a match.
bool attack_from_name(const std::string& name, AttackKind& out);

/// Which peers are currently adversarial, and how. Shared by the chaos
/// engine (writer) and the protocol actors (readers); iteration order
/// is by peer id, so every sweep over it is deterministic.
class ByzantineRegistry {
 public:
  void activate(PeerId peer, AttackSpec spec) { specs_[peer] = spec; }
  void deactivate(PeerId peer) { specs_.erase(peer); }

  /// Active spec for `peer`, or nullptr when the peer is honest.
  const AttackSpec* spec(PeerId peer) const {
    auto it = specs_.find(peer);
    return it == specs_.end() ? nullptr : &it->second;
  }
  bool active(PeerId peer) const { return specs_.count(peer) != 0; }
  std::size_t active_count() const { return specs_.size(); }
  std::vector<PeerId> active_peers() const {
    std::vector<PeerId> out;
    out.reserve(specs_.size());
    for (const auto& [p, s] : specs_) out.push_back(p);
    return out;
  }

 private:
  std::map<PeerId, AttackSpec> specs_;
};

/// Apply `spec`'s transform to `w` in place. Model-poisoning kinds
/// rewrite the update; protocol-level kinds (shares/subtotal/
/// equivocation) apply the additive lie offset — their *placement* in
/// the message flow is the actors' job. kNone is a no-op.
void poison(std::vector<float>& w, const AttackSpec& spec, Rng& rng);

}  // namespace p2pfl::robust
