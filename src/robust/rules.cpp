#include "robust/rules.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "fl/fedavg.hpp"

namespace p2pfl::robust {

namespace {

/// One coordinate's observations, tagged with the input index so sorts
/// are deterministic even across equal values.
struct Obs {
  float value = 0.0f;
  double weight = 0.0;
  std::size_t origin = 0;
};

void sort_obs(std::vector<Obs>& col) {
  std::sort(col.begin(), col.end(), [](const Obs& a, const Obs& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.origin < b.origin;
  });
}

std::vector<float> trimmed_mean(std::span<const std::vector<float>> models,
                                std::span<const double> weights,
                                double trim_fraction) {
  const std::size_t m = models.size();
  const std::size_t dim = models.front().size();
  std::size_t trim = static_cast<std::size_t>(
      std::ceil(trim_fraction * static_cast<double>(m)));
  // Always keep at least one observation.
  if (2 * trim >= m) trim = (m - 1) / 2;

  std::vector<float> out(dim, 0.0f);
  std::vector<Obs> col(m);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t i = 0; i < m; ++i) {
      col[i] = {models[i][d], weights[i], i};
    }
    sort_obs(col);
    double acc = 0.0, wsum = 0.0;
    for (std::size_t i = trim; i < m - trim; ++i) {
      acc += static_cast<double>(col[i].value) * col[i].weight;
      wsum += col[i].weight;
    }
    out[d] = static_cast<float>(acc / wsum);
  }
  return out;
}

std::vector<float> median(std::span<const std::vector<float>> models,
                          std::span<const double> weights) {
  const std::size_t m = models.size();
  const std::size_t dim = models.front().size();
  double total_w = 0.0;
  for (double w : weights) total_w += w;

  std::vector<float> out(dim, 0.0f);
  std::vector<Obs> col(m);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t i = 0; i < m; ++i) {
      col[i] = {models[i][d], weights[i], i};
    }
    sort_obs(col);
    // Lower weighted median: first element whose cumulative weight
    // reaches half the total.
    double cum = 0.0;
    for (const Obs& o : col) {
      cum += o.weight;
      if (cum * 2.0 >= total_w) {
        out[d] = o.value;
        break;
      }
    }
  }
  return out;
}

std::vector<float> norm_clip(std::span<const std::vector<float>> models,
                             std::span<const double> weights,
                             double clip_multiplier) {
  const std::size_t m = models.size();
  std::vector<double> norms(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (float v : models[i]) s += static_cast<double>(v) * v;
    norms[i] = std::sqrt(s);
  }
  std::vector<double> sorted = norms;
  std::sort(sorted.begin(), sorted.end());
  const double median_norm = sorted[(m - 1) / 2];
  const double bound = clip_multiplier * median_norm;

  std::vector<std::vector<float>> clipped(models.begin(), models.end());
  for (std::size_t i = 0; i < m; ++i) {
    if (norms[i] > bound && norms[i] > 0.0) {
      const double scale = bound / norms[i];
      for (float& v : clipped[i]) {
        v = static_cast<float>(static_cast<double>(v) * scale);
      }
    }
  }
  return fl::federated_average(clipped, weights);
}

}  // namespace

const char* rule_name(RobustRule rule) {
  switch (rule) {
    case RobustRule::kMean: return "mean";
    case RobustRule::kTrimmedMean: return "trimmed_mean";
    case RobustRule::kMedian: return "median";
    case RobustRule::kNormClip: return "norm_clip";
  }
  return "?";
}

bool rule_from_name(const std::string& name, RobustRule& out) {
  if (name == "mean") { out = RobustRule::kMean; return true; }
  if (name == "trimmed_mean" || name == "trimmed") {
    out = RobustRule::kTrimmedMean;
    return true;
  }
  if (name == "median") { out = RobustRule::kMedian; return true; }
  if (name == "norm_clip" || name == "clip") {
    out = RobustRule::kNormClip;
    return true;
  }
  return false;
}

std::vector<float> aggregate(std::span<const std::vector<float>> models,
                             std::span<const double> weights,
                             const RobustConfig& cfg) {
  P2PFL_CHECK_MSG(!models.empty(), "robust::aggregate: no models");
  P2PFL_CHECK_MSG(models.size() == weights.size(),
                  "robust::aggregate: weights/models mismatch");
  switch (cfg.rule) {
    case RobustRule::kMean:
      return fl::federated_average(models, weights);
    case RobustRule::kTrimmedMean:
      return trimmed_mean(models, weights, cfg.trim_fraction);
    case RobustRule::kMedian:
      return median(models, weights);
    case RobustRule::kNormClip:
      return norm_clip(models, weights, cfg.clip_multiplier);
  }
  return fl::federated_average(models, weights);
}

}  // namespace p2pfl::robust
