#include "common/rng.hpp"

#include "common/check.hpp"

namespace p2pfl {

std::uint64_t Rng::mix(std::uint64_t x) {
  // SplitMix64 finalizer: turns correlated seeds into well-spread states.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::uint64_t salt) const {
  // Mixing the engine's seed-derived state with the salt gives streams
  // that are independent for distinct salts yet reproducible.
  return Rng(mix(root_seed_ ^ mix(salt ^ 0xa076'1d64'78bd'642fULL)));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  P2PFL_CHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform(0.0, 1.0) < p;
}

std::size_t Rng::index(std::size_t n) {
  P2PFL_CHECK(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace p2pfl
