#include "common/serialize.hpp"

namespace p2pfl {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f32(float v) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::blob(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::vec_f32(const std::vector<float>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (float x : v) f32(x);
}

bool ByteReader::need(std::size_t n) {
  if (!ok_ || n > buf_.size() - pos_) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!need(1)) return 0;
  return buf_[pos_++];
}

std::uint32_t ByteReader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (!need(n)) return {};
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

Bytes ByteReader::blob() {
  const std::uint32_t n = u32();
  if (!need(n)) return {};
  Bytes b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
          buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

std::vector<float> ByteReader::vec_f32() {
  const std::uint32_t n = u32();
  if (!need(static_cast<std::size_t>(n) * 4)) return {};
  std::vector<float> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(f32());
  return v;
}

}  // namespace p2pfl
