#include "common/serialize.hpp"

#include <stdexcept>

namespace p2pfl {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) {
  if (pos_ + n > buf_.size()) {
    throw std::out_of_range("ByteReader: truncated buffer");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

}  // namespace p2pfl
