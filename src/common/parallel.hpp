// Shared-memory parallel helpers for the numeric kernels.
//
// The discrete-event protocol simulation is single-threaded on purpose
// (determinism), but the FL substrate's tensor kernels (conv2d, matmul)
// are embarrassingly parallel across output elements. parallel_for splits
// an index range over a lazily created pool of std::threads; on a
// single-core host it degrades to a plain loop with zero thread overhead.
#pragma once

#include <cstddef>
#include <functional>

namespace p2pfl {

/// Number of worker threads parallel_for will use (>= 1).
std::size_t parallel_workers();

/// Override the worker count (0 restores the hardware default).
/// Not thread-safe; call before the first parallel_for.
void set_parallel_workers(std::size_t n);

/// Invoke fn(i) for every i in [begin, end), possibly from several
/// threads. fn must be safe to call concurrently for distinct i and must
/// not throw. Blocks until all iterations complete.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Chunked variant: fn(lo, hi) is invoked on contiguous subranges, which
/// amortizes per-index std::function overhead in tight numeric loops.
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace p2pfl
