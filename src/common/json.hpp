// Minimal JSON parser for the tooling layer (bench/regress, tests).
//
// Hand-written recursive descent, no external dependency: the repo's
// own emitters (bench/json_util.hpp, the obs exports) produce the only
// documents this ever reads, so the parser favors clarity over
// generality. Object member order is preserved (our emitters are
// deterministic, so order is meaningful in golden comparisons), numbers
// are doubles with the original literal text retained for exact
// comparisons, and parse errors carry a byte offset.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p2pfl::json {

/// One parsed JSON value; a tree of these is a document.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// kNumber: the literal as written (exact-comparison safe).
  /// kString: the unescaped string contents.
  std::string text;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member by key, or nullptr.
  const Value* get(std::string_view key) const;

  /// Lookup by dotted path ("gate.failed", "cells.3.accuracy" — bare
  /// integers index arrays). Returns nullptr when any step is missing.
  const Value* at_path(std::string_view dotted) const;
};

struct ParseError {
  std::size_t offset = 0;
  std::string message;
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
/// Returns nullopt and fills `error` (when non-null) on failure.
std::optional<Value> parse(std::string_view text,
                           ParseError* error = nullptr);

}  // namespace p2pfl::json
