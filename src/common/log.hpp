// Minimal leveled logger.
//
// Protocol modules log through this so experiment binaries can silence or
// surface trace output uniformly. The logger is process-global and not
// synchronized across threads by design: all protocol code runs on the
// single-threaded discrete-event simulator, and the few multi-threaded
// helpers (tensor kernels) never log from worker threads.
#pragma once

#include <sstream>
#include <string>

namespace p2pfl {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  /// True when messages at `lvl` would be emitted.
  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  static void write(LogLevel lvl, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace p2pfl

#define P2PFL_LOG(lvl)                             \
  if (!::p2pfl::Log::enabled(lvl)) {               \
  } else                                           \
    ::p2pfl::detail::LogLine(lvl)

#define P2PFL_TRACE() P2PFL_LOG(::p2pfl::LogLevel::kTrace)
#define P2PFL_DEBUG() P2PFL_LOG(::p2pfl::LogLevel::kDebug)
#define P2PFL_INFO() P2PFL_LOG(::p2pfl::LogLevel::kInfo)
#define P2PFL_WARN() P2PFL_LOG(::p2pfl::LogLevel::kWarn)
#define P2PFL_ERROR() P2PFL_LOG(::p2pfl::LogLevel::kError)
