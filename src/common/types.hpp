// Core identifier and time types shared by every p2pfl subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace p2pfl {

/// Identifies one virtual peer in the P2P network. Peers are numbered
/// densely from 0; the value doubles as an index into per-peer tables.
using PeerId = std::uint32_t;

/// Identifies one SAC-layer subgroup (0-based).
using SubgroupId = std::uint32_t;

/// Sentinel for "no peer" (e.g. no known leader).
inline constexpr PeerId kNoPeer = std::numeric_limits<PeerId>::max();

/// Simulated time. All protocol timing runs on the discrete-event
/// simulator's clock, expressed in integer microseconds so event ordering
/// is exact and runs are bit-reproducible.
using SimTime = std::int64_t;
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

/// Convert simulated time to fractional milliseconds (for reporting).
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1000.0; }

}  // namespace p2pfl
