#include "common/parallel.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace p2pfl {
namespace {

std::size_t g_workers = 0;  // 0 = use hardware_concurrency

std::size_t effective_workers() {
  if (g_workers != 0) return g_workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

std::size_t parallel_workers() { return effective_workers(); }

void set_parallel_workers(std::size_t n) { g_workers = n; }

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t workers = std::min(effective_workers(), total);
  if (workers <= 1) {
    fn(begin, end);
    return;
  }
  // Even static split: kernels here have uniform per-index cost, so work
  // stealing would add complexity without a measurable win.
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  const std::size_t chunk = (total + workers - 1) / workers;
  for (std::size_t w = 1; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    threads.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  fn(begin, std::min(end, begin + chunk));
  for (auto& t : threads) t.join();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
}

}  // namespace p2pfl
