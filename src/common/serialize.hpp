// Tiny binary serialization used for every protocol wire format.
//
// The writer/reader pair gives a fixed little-endian encoding shared by
// the Raft log commands, the Raft RPC codecs (raft/wire) and the
// SAC / aggregation-layer codecs (secagg/wire, core/wire), so a restarted
// or newly elected peer decodes exactly what was committed and the
// network's byte accounting can be checked against real encodings.
//
// ByteReader is strict and non-throwing: every read is bounds-checked,
// and the first out-of-range read latches a sticky failure (`ok()`
// becomes false, subsequent reads return zero values). Decoders accept a
// buffer only when `ok() && exhausted()` — truncated, oversized or
// length-corrupted input can never read out of bounds or allocate from
// an unvalidated length field.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace p2pfl {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);
  /// Length-prefixed byte string (u32 count + raw bytes).
  void blob(const Bytes& b);
  /// Length-prefixed f32 vector (u32 count + 4 bytes per element).
  void vec_f32(const std::vector<float>& v);

  template <typename T>
  void vec_u32(const std::vector<T>& v) {
    static_assert(sizeof(T) <= sizeof(std::uint32_t),
                  "vec_u32 would silently narrow elements wider than 32 "
                  "bits; add a wider vector encoding instead");
    u32(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) u32(static_cast<std::uint32_t>(x));
  }

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();
  std::string str();
  Bytes blob();
  std::vector<float> vec_f32();

  template <typename T>
  std::vector<T> vec_u32() {
    const std::uint32_t n = u32();
    // Validate the claimed length against the remaining bytes BEFORE
    // reserving: a corrupted count must not trigger a giant allocation.
    if (!need(static_cast<std::size_t>(n) * 4)) return {};
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(static_cast<T>(u32()));
    return v;
  }

  /// All reads so far were in bounds. Latches false on the first
  /// truncated read; later reads return zero values.
  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == buf_.size(); }
  /// The decode contract: every byte consumed, no read out of bounds.
  bool complete() const { return ok_ && exhausted(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  bool need(std::size_t n);

  const Bytes& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace p2pfl
