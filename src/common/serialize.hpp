// Tiny binary serialization used for Raft log commands.
//
// Raft replicates opaque byte strings; the two-layer system stores the
// FedAvg-layer configuration (peer ids + "addresses") in subgroup logs.
// This writer/reader pair gives a fixed little-endian wire format so a
// restarted or newly elected peer decodes exactly what was committed.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace p2pfl {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);

  template <typename T>
  void vec_u32(const std::vector<T>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) u32(static_cast<std::uint32_t>(x));
  }

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  template <typename T>
  std::vector<T> vec_u32() {
    const std::uint32_t n = u32();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(static_cast<T>(u32()));
    return v;
  }

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n);

  const Bytes& buf_;
  std::size_t pos_ = 0;
};

}  // namespace p2pfl
