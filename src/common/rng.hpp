// Deterministic random number generation.
//
// Every stochastic component (election timeouts, secret-share splits,
// synthetic datasets, dropout injection) draws from an Rng that is seeded
// explicitly, so whole experiments replay bit-identically from one seed.
// Child generators are derived with SplitMix64 so independent components
// never share a stream.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace p2pfl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : root_seed_(seed), engine_(mix(seed)) {}

  /// Derive an independent child generator. Deterministic in (seed, salt).
  Rng fork(std::uint64_t salt) const;

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard-normal draw scaled to (mean, stddev).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Uniform draw from [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  std::uint64_t next_u64() { return engine_(); }

  /// The underlying engine, for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t x);

  std::uint64_t root_seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace p2pfl
