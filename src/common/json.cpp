#include "common/json.hpp"

#include <cerrno>
#include <cstdlib>

namespace p2pfl::json {

const Value* Value::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value* Value::at_path(std::string_view dotted) const {
  const Value* cur = this;
  while (!dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view seg = dotted.substr(0, dot);
    dotted = dot == std::string_view::npos ? std::string_view{}
                                           : dotted.substr(dot + 1);
    if (cur->is_array()) {
      std::size_t idx = 0;
      for (char c : seg) {
        if (c < '0' || c > '9') return nullptr;
        idx = idx * 10 + static_cast<std::size_t>(c - '0');
      }
      if (seg.empty() || idx >= cur->array.size()) return nullptr;
      cur = &cur->array[idx];
    } else {
      cur = cur->get(seg);
      if (cur == nullptr) return nullptr;
    }
  }
  return cur;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, ParseError* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr && error_->message.empty()) {
      error_->offset = pos_;
      error_->message = msg;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.text);
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key");
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // BMP-only UTF-8 encoding; our emitters never produce
          // surrogate pairs.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    out.kind = Value::Kind::kNumber;
    out.text.assign(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    out.number = std::strtod(out.text.c_str(), &end);
    if (end != out.text.c_str() + out.text.size() || errno == ERANGE) {
      return fail("malformed number");
    }
    return true;
  }

  std::string_view text_;
  ParseError* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, ParseError* error) {
  return Parser(text, error).run();
}

}  // namespace p2pfl::json
