#include "common/log.hpp"

#include <cstdio>

namespace p2pfl {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return g_level; }

void Log::set_level(LogLevel lvl) { g_level = lvl; }

void Log::write(LogLevel lvl, const std::string& msg) {
  if (!enabled(lvl)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace p2pfl
