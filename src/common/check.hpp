// Lightweight invariant checking. P2PFL_CHECK is always on (protocol
// correctness bugs must not be silently ignored in release builds); the
// cost is negligible next to the simulation work the library does.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace p2pfl::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "P2PFL_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace p2pfl::detail

#define P2PFL_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::p2pfl::detail::check_failed(#expr, __FILE__, __LINE__, {});        \
  } while (false)

#define P2PFL_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr))                                                           \
      ::p2pfl::detail::check_failed(#expr, __FILE__, __LINE__, (msg));     \
  } while (false)
