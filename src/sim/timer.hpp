// Resettable one-shot and periodic timers on top of the simulator.
//
// Raft is all timers: election timeouts that reset on every heartbeat,
// heartbeat broadcast intervals, and the FedAvg-presence poll of §V-B1.
// Timer owns at most one pending simulator event and guarantees the
// callback never fires after cancel()/destruction.
#pragma once

#include <functional>
#include <string>

#include "sim/simulator.hpp"

namespace p2pfl::sim {

class Timer {
 public:
  using Callback = std::function<void()>;

  /// `name` labels this timer's firings in the trace stream (category
  /// "sim"); unnamed timers trace as "timer".
  Timer(Simulator& sim, Callback cb, std::string name = {});
  ~Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arm (or re-arm) as a one-shot firing after `delay`.
  void arm(SimDuration delay);

  /// Arm (or re-arm) as a periodic timer with the given interval; the
  /// first firing happens one interval from now.
  void arm_periodic(SimDuration interval);

  /// Cancel any pending firing. Safe to call when idle.
  void cancel();

  bool armed() const { return event_ != kInvalidEvent; }

 private:
  void fire();

  Simulator& sim_;
  Callback cb_;
  const std::string name_;
  obs::Counter& fire_counter_;
  EventId event_ = kInvalidEvent;
  SimDuration period_ = 0;  // 0 = one-shot
};

}  // namespace p2pfl::sim
