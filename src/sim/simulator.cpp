#include "sim/simulator.hpp"

#include <utility>

#include "common/check.hpp"

namespace p2pfl::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  P2PFL_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_after(SimDuration delay, EventFn fn) {
  P2PFL_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // Lazy deletion: the tombstone is skipped when it reaches the heap top.
  return cancelled_.insert(id).second;
  // Note: cancelling an already-fired id leaves a harmless tombstone that
  // is never matched; callers hold ids only for genuinely pending events.
}

bool Simulator::pop_and_run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    P2PFL_CHECK(ev.t >= now_);
    now_ = ev.t;
    dispatch_counter_.add(1);
    ev.fn();
    return true;
  }
  return false;
}

bool Simulator::step() { return pop_and_run(); }

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && pop_and_run()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  P2PFL_CHECK(t >= now_);
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    // Peek past tombstones to find the next live event.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().t > t) break;
    if (pop_and_run()) ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace p2pfl::sim
