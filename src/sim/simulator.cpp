#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/check.hpp"

namespace p2pfl::sim {

Simulator::Simulator(std::uint64_t seed)
    : buckets_(kWheelBuckets), rng_(seed) {}

std::uint32_t Simulator::alloc_record(SimTime t, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Record& rec = pool_[slot];
  rec.fn = std::move(fn);
  rec.t = t;
  rec.seq = next_seq_++;
  ++live_count_;
  return slot;
}

void Simulator::free_record(std::uint32_t slot) {
  Record& rec = pool_[slot];
  rec.fn = nullptr;  // release captures eagerly; the slot may idle
  if (++rec.gen == 0) rec.gen = 1;  // keep (slot 0, gen 0) != kInvalidEvent
  --live_count_;
  free_slots_.push_back(slot);
}

void Simulator::push_near(const Entry& e) {
  near_.push_back(e);
  std::push_heap(near_.begin(), near_.end(), EntryAfter{});
}

Simulator::Entry Simulator::pop_near() {
  std::pop_heap(near_.begin(), near_.end(), EntryAfter{});
  Entry e = near_.back();
  near_.pop_back();
  return e;
}

void Simulator::insert_entry(const Entry& e) {
  const std::int64_t b = e.t >> kWheelBucketBits;
  if (b <= cursor_) {
    // Current (or, when run_until advanced the clock past the cursor,
    // an earlier) bucket: goes straight into the sorted near heap.
    push_near(e);
    return;
  }
  const std::int64_t ahead = b - cursor_;
  if (ahead < static_cast<std::int64_t>(kWheelBuckets)) {
    const std::size_t s = static_cast<std::size_t>(b) % kWheelBuckets;
    buckets_[s].push_back(e);
    occupied_[s / 64] |= std::uint64_t{1} << (s % 64);
    ++wheel_entry_count_;
    return;
  }
  far_.push_back(e);
  std::push_heap(far_.begin(), far_.end(), EntryAfter{});
}

std::int64_t Simulator::next_occupied_bucket() const {
  for (std::size_t step = 1; step < kWheelBuckets;) {
    const std::size_t s =
        (static_cast<std::size_t>(cursor_) + step) % kWheelBuckets;
    const std::size_t bit = s % 64;
    const std::uint64_t w = occupied_[s / 64] >> bit;
    const std::size_t span = std::min<std::size_t>(64 - bit, kWheelBuckets - step);
    if (w != 0) {
      const std::size_t tz = static_cast<std::size_t>(std::countr_zero(w));
      if (tz < span) return cursor_ + static_cast<std::int64_t>(step + tz);
    }
    step += span;
  }
  return -1;
}

void Simulator::flush_bucket(std::int64_t b) {
  const std::size_t s = static_cast<std::size_t>(b) % kWheelBuckets;
  std::vector<Entry>& vec = buckets_[s];
  wheel_entry_count_ -= vec.size();
  for (const Entry& e : vec) {
    if (!alive(e)) {
      --stale_entries_;
      continue;
    }
    // A live entry left in a passed bucket slot is impossible: the
    // cursor only skips buckets the occupancy scan saw as empty.
    P2PFL_CHECK((e.t >> kWheelBucketBits) == b);
    push_near(e);
  }
  vec.clear();  // keeps capacity: the slot's burst size is recycled
  occupied_[s / 64] &= ~(std::uint64_t{1} << (s % 64));
  cursor_ = b;
}

bool Simulator::advance_to_next() {
  for (;;) {
    while (!near_.empty() && !alive(near_.front())) {
      pop_near();
      --stale_entries_;
    }
    if (!near_.empty()) return true;
    // Re-home every far event the wheel horizon has reached, so a far
    // event can never be overtaken by a later wheel event once the
    // cursor has advanced toward it. Each entry is re-homed at most
    // once, so the amortized cost is O(1) per event. (Far events are
    // never earlier than near ones — near buckets are <= cursor_, far
    // buckets beyond the horizon — so re-homing can wait until the near
    // heap is empty.)
    while (!far_.empty()) {
      if (!alive(far_.front())) {
        std::pop_heap(far_.begin(), far_.end(), EntryAfter{});
        far_.pop_back();
        --stale_entries_;
        continue;
      }
      if ((far_.front().t >> kWheelBucketBits) - cursor_ >=
          static_cast<std::int64_t>(kWheelBuckets)) {
        break;
      }
      std::pop_heap(far_.begin(), far_.end(), EntryAfter{});
      const Entry e = far_.back();
      far_.pop_back();
      insert_entry(e);
    }
    // Re-homing may land entries in the current bucket (straight into
    // the near heap) — notably the event the cursor just jumped to.
    if (!near_.empty()) return true;
    const std::int64_t b = next_occupied_bucket();
    if (b >= 0) {
      flush_bucket(b);
      continue;
    }
    // Near and wheel drained entirely; jump the cursor to the earliest
    // far event (if any) and loop so the re-home pass picks it up.
    if (far_.empty()) return false;
    cursor_ = far_.front().t >> kWheelBucketBits;
  }
}

void Simulator::maybe_compact() {
  if (stale_entries_ <= kCompactSlack || stale_entries_ <= live_count_) {
    return;
  }
  auto prune = [&](std::vector<Entry>& v) {
    v.erase(std::remove_if(v.begin(), v.end(),
                           [&](const Entry& e) { return !alive(e); }),
            v.end());
  };
  prune(near_);
  std::make_heap(near_.begin(), near_.end(), EntryAfter{});
  prune(far_);
  std::make_heap(far_.begin(), far_.end(), EntryAfter{});
  wheel_entry_count_ = 0;
  for (std::size_t s = 0; s < kWheelBuckets; ++s) {
    std::vector<Entry>& vec = buckets_[s];
    if (vec.empty()) continue;
    prune(vec);
    wheel_entry_count_ += vec.size();
    if (vec.empty()) occupied_[s / 64] &= ~(std::uint64_t{1} << (s % 64));
  }
  stale_entries_ = 0;
}

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  P2PFL_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  const std::uint32_t slot = alloc_record(t, std::move(fn));
  const Record& rec = pool_[slot];
  insert_entry(Entry{t, rec.seq, slot, rec.gen});
  return (static_cast<EventId>(slot) << 32) | rec.gen;
}

EventId Simulator::schedule_after(SimDuration delay, EventFn fn) {
  P2PFL_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id);
  if (id == kInvalidEvent || slot >= pool_.size() || pool_[slot].gen != gen) {
    // Invalid, already fired, already cancelled, or a stale id whose
    // slot was recycled — the generation mismatch protects the new
    // occupant in every case.
    return false;
  }
  free_record(slot);
  ++stale_entries_;  // the queue entry is swept lazily
  maybe_compact();
  return true;
}

bool Simulator::pop_and_run() {
  if (!advance_to_next()) return false;
  const Entry e = pop_near();
  P2PFL_CHECK(e.t >= now_);
  now_ = e.t;
  EventFn fn = std::move(pool_[e.slot].fn);
  free_record(e.slot);
  dispatch_counter_.add(1);
  fn();
  return true;
}

bool Simulator::step() { return pop_and_run(); }

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && pop_and_run()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  P2PFL_CHECK(t >= now_);
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    if (!advance_to_next() || near_.front().t > t) break;
    if (pop_and_run()) ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace p2pfl::sim
