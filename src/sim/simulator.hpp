// Deterministic discrete-event simulation kernel.
//
// The paper evaluates its two-layer Raft on one machine with many virtual
// peers talking TCP through a `tc netem` 15 ms delay. We reproduce that
// setup as a discrete-event simulation: every RPC delivery, timeout and
// crash is an event on one priority queue ordered by (time, insertion
// sequence). Identical seeds therefore give identical protocol histories,
// which makes the election-time distributions of Figs. 10-12 and every
// fault-injection test replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"

namespace p2pfl::sim {

/// Handle to a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using EventFn = std::function<void()>;

  explicit Simulator(std::uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (microseconds since simulation start).
  SimTime now() const { return now_; }

  /// Schedule fn to run at absolute simulated time t (>= now).
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedule fn to run after the given delay (>= 0).
  EventId schedule_after(SimDuration delay, EventFn fn);

  /// Cancel a pending event. Returns false if it already fired, was
  /// already cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Run events until the queue drains or stop() is called.
  /// Returns the number of events executed.
  std::size_t run();

  /// Run events with timestamp <= t, then advance the clock to t.
  std::size_t run_until(SimTime t);

  /// Run events for the given additional duration.
  std::size_t run_for(SimDuration d) { return run_until(now_ + d); }

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Make run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events currently pending (including cancelled tombstones).
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Root deterministic random source; components should fork() children.
  Rng& rng() { return rng_; }

  /// Metrics registry + trace stream for this simulation. Owned here so
  /// every sample carries the virtual clock and runs stay seed-exact.
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

 private:
  struct Event {
    SimTime t;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      // Min-heap on (time, id): FIFO among events at the same timestamp.
      return a.t != b.t ? a.t > b.t : a.id > b.id;
    }
  };

  bool pop_and_run();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  Rng rng_;
  obs::Observability obs_{&now_};
  obs::Counter& dispatch_counter_{obs_.metrics.counter("sim.events_dispatched")};
};

}  // namespace p2pfl::sim
