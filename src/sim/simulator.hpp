// Deterministic discrete-event simulation kernel.
//
// The paper evaluates its two-layer Raft on one machine with many virtual
// peers talking TCP through a `tc netem` 15 ms delay. We reproduce that
// setup as a discrete-event simulation: every RPC delivery, timeout and
// crash is an event ordered by (time, insertion sequence). Identical
// seeds therefore give identical protocol histories, which makes the
// election-time distributions of Figs. 10-12 and every fault-injection
// test replayable.
//
// The kernel is built for 100k+ peer runs (bench/scale_sweep):
//  - Event records live in a slab pool with an index free list; an
//    EventId packs (slot, generation), so cancel() is an O(1) slot free
//    with no tombstone set and a stale id from a recycled slot can never
//    touch the new occupant.
//  - Scheduling uses a bucketed timer wheel (kWheelBucketBits-µs
//    buckets, kWheelBuckets of them ≈ a 4 s horizon) for the dominant
//    near-future class (link delays, election timeouts, heartbeats),
//    a small binary heap for the wheel's current bucket, and a fallback
//    heap for far-future events beyond the horizon.
//  - Firing order is exactly (time, insertion sequence) — the same total
//    order the original single priority queue produced — because the
//    wheel partitions events by time and the intra-bucket heap breaks
//    ties by sequence. tests/sim_wheel_oracle_test.cpp checks this
//    against a retained naive binary-heap reference across seeds, and
//    the golden in tests/determinism_test.cpp pins a full two-layer run
//    byte-for-byte to the pre-wheel kernel's output.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"

namespace p2pfl::sim {

/// Handle to a scheduled event; usable to cancel it before it fires.
/// Packs (pool slot << 32 | generation); generations start at 1, so the
/// invalid id 0 is never issued, and a slot reuse bumps the generation,
/// invalidating every previously issued id for that slot.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using EventFn = std::function<void()>;

  explicit Simulator(std::uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (microseconds since simulation start).
  SimTime now() const { return now_; }

  /// Schedule fn to run at absolute simulated time t (>= now).
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedule fn to run after the given delay (>= 0).
  EventId schedule_after(SimDuration delay, EventFn fn);

  /// Cancel a pending event in O(1). Returns false if it already fired,
  /// was already cancelled, or the id is invalid/stale — a stale id can
  /// never cancel a newer event that recycled the same pool slot.
  bool cancel(EventId id);

  /// Run events until the queue drains or stop() is called.
  /// Returns the number of events executed.
  std::size_t run();

  /// Run events with timestamp <= t, then advance the clock to t.
  std::size_t run_until(SimTime t);

  /// Run events for the given additional duration.
  std::size_t run_for(SimDuration d) { return run_until(now_ + d); }

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Make run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of live pending events — fired and cancelled events are
  /// excluded exactly (see tests/sim_test.cpp cancel-then-query cases).
  std::size_t pending() const { return live_count_; }

  /// Root deterministic random source; components should fork() children.
  Rng& rng() { return rng_; }

  /// Metrics registry + trace stream for this simulation. Owned here so
  /// every sample carries the virtual clock and runs stay seed-exact.
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  // --- pool / queue introspection (tests + bench/scale_sweep) ----------
  /// Slab records ever allocated. Plateaus under schedule/cancel churn:
  /// freed slots are recycled through the free list.
  std::size_t pool_slot_count() const { return pool_.size(); }
  /// Entries currently sitting in the wheel, near heap and far heap,
  /// including not-yet-swept stale entries of cancelled events. Bounded
  /// by ~2x live + compaction slack (see kCompactSlack).
  std::size_t queued_entry_count() const {
    return near_.size() + far_.size() + wheel_entry_count_;
  }
  /// Pool slot an EventId refers to (tests assert recycling behavior).
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Timer-wheel geometry, exposed so tests can target each class of
  /// delay (current bucket / wheel / far-future overflow heap).
  static constexpr int kWheelBucketBits = 12;  // 4096 µs ≈ 4 ms buckets
  static constexpr SimDuration kWheelBucketSpan = SimDuration{1}
                                                  << kWheelBucketBits;
  static constexpr std::size_t kWheelBuckets = 1024;  // horizon ≈ 4.2 s

 private:
  /// Pooled event record. `gen` is bumped when the slot is freed (fire
  /// or cancel), so outstanding EventIds referring to the old occupant
  /// stop matching.
  struct Record {
    EventFn fn;
    SimTime t = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
  };
  /// Queue entry: ordering key (t, seq) plus the (slot, gen) reference
  /// used to detect entries whose event was cancelled after insertion.
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Min-heap comparator on (t, seq): seq is unique, so this is a total
  /// order and heap pop order is independent of internal layout.
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  /// Cancelled-entry slack tolerated before a global sweep rebuilds the
  /// queues; keeps memory ~2x live under adversarial churn while making
  /// the amortized sweep cost O(1) per cancel.
  static constexpr std::size_t kCompactSlack = 1024;

  bool alive(const Entry& e) const {
    return e.slot < pool_.size() && pool_[e.slot].gen == e.gen;
  }
  std::uint32_t alloc_record(SimTime t, EventFn fn);
  void free_record(std::uint32_t slot);
  void insert_entry(const Entry& e);
  void push_near(const Entry& e);
  Entry pop_near();
  /// Move the wheel cursor forward until near_.top() is the globally
  /// earliest live event (flushing buckets / re-homing far events as
  /// needed). Returns false when no live event remains.
  bool advance_to_next();
  std::int64_t next_occupied_bucket() const;
  void flush_bucket(std::int64_t b);
  void maybe_compact();
  bool pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  bool stopped_ = false;

  std::vector<Record> pool_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  std::size_t stale_entries_ = 0;

  /// Events in bucket cursor_ or earlier (min-heap by (t, seq)).
  std::vector<Entry> near_;
  /// Wheel: bucket b (absolute index t >> kWheelBucketBits) lives in
  /// buckets_[b % kWheelBuckets] while 0 < b - cursor_ < kWheelBuckets.
  std::vector<std::vector<Entry>> buckets_;
  std::array<std::uint64_t, kWheelBuckets / 64> occupied_{};
  std::size_t wheel_entry_count_ = 0;
  /// Absolute index of the bucket the near heap covers. Only ever moves
  /// forward, and only after the bucket it lands on has been flushed.
  std::int64_t cursor_ = 0;
  /// Events at or beyond the wheel horizon (min-heap by (t, seq)).
  std::vector<Entry> far_;

  Rng rng_;
  obs::Observability obs_{&now_};
  obs::Counter& dispatch_counter_{obs_.metrics.counter("sim.events_dispatched")};
};

}  // namespace p2pfl::sim
