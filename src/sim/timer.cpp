#include "sim/timer.hpp"

#include <utility>

#include "common/check.hpp"

namespace p2pfl::sim {

Timer::Timer(Simulator& sim, Callback cb, std::string name)
    : sim_(sim),
      cb_(std::move(cb)),
      name_(std::move(name)),
      fire_counter_(sim.obs().metrics.counter("sim.timer_fires")) {
  P2PFL_CHECK(cb_ != nullptr);
}

Timer::~Timer() { cancel(); }

void Timer::arm(SimDuration delay) {
  cancel();
  period_ = 0;
  event_ = sim_.schedule_after(delay, [this] { fire(); });
}

void Timer::arm_periodic(SimDuration interval) {
  P2PFL_CHECK(interval > 0);
  cancel();
  period_ = interval;
  event_ = sim_.schedule_after(interval, [this] { fire(); });
}

void Timer::cancel() {
  if (event_ != kInvalidEvent) {
    sim_.cancel(event_);
    event_ = kInvalidEvent;
  }
}

void Timer::fire() {
  event_ = kInvalidEvent;
  fire_counter_.add(1);
  obs::TraceStream& tr = sim_.obs().trace;
  if (tr.category_enabled("sim")) {
    tr.instant("sim", name_.empty() ? "timer" : name_, 0);
  }
  if (period_ > 0) {
    // Re-arm before invoking the callback so the callback may cancel().
    event_ = sim_.schedule_after(period_, [this] { fire(); });
  }
  cb_();
}

}  // namespace p2pfl::sim
