// Naive binary-heap event queue, retained as the determinism oracle for
// the pooled timer-wheel kernel in simulator.hpp.
//
// This is (a header-only copy of) the original Simulator core: one
// std::priority_queue ordered by (time, insertion sequence) with a
// tombstone set for lazy cancellation. It has no pooling, no wheel and
// no observability hooks — just the exact event semantics. The oracle
// test (tests/sim_wheel_oracle_test.cpp) drives identical operation
// sequences through this queue and the real Simulator and asserts
// identical firing orders, timestamps and pending() counts; the
// schedule/cancel/fire microbench in bench/scale_sweep.cpp uses it as
// the "before" baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace p2pfl::sim {

class ReferenceQueue {
 public:
  using EventFn = std::function<void()>;
  using RefEventId = std::uint64_t;
  static constexpr RefEventId kNone = 0;

  SimTime now() const { return now_; }

  RefEventId schedule_at(SimTime t, EventFn fn) {
    P2PFL_CHECK_MSG(t >= now_, "cannot schedule events in the past");
    const RefEventId id = next_id_++;
    queue_.push(Event{t, id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  RefEventId schedule_after(SimDuration delay, EventFn fn) {
    P2PFL_CHECK(delay >= 0);
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Matches Simulator::cancel semantics exactly: true only for a
  /// genuinely pending event (not fired, not already cancelled).
  bool cancel(RefEventId id) {
    if (live_.erase(id) == 0) return false;
    cancelled_.insert(id);  // tombstone, skipped at the heap top
    return true;
  }

  std::size_t run() {
    stopped_ = false;
    std::size_t n = 0;
    while (!stopped_ && pop_and_run()) ++n;
    return n;
  }

  std::size_t run_until(SimTime t) {
    P2PFL_CHECK(t >= now_);
    stopped_ = false;
    std::size_t n = 0;
    while (!stopped_) {
      while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
        cancelled_.erase(queue_.top().id);
        queue_.pop();
      }
      if (queue_.empty() || queue_.top().t > t) break;
      if (pop_and_run()) ++n;
    }
    if (!stopped_ && now_ < t) now_ = t;
    return n;
  }

  std::size_t run_for(SimDuration d) { return run_until(now_ + d); }

  bool step() { return pop_and_run(); }

  void stop() { stopped_ = true; }

  /// Live events only, same semantics as Simulator::pending().
  std::size_t pending() const { return live_.size(); }

 private:
  struct Event {
    SimTime t;
    RefEventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.id > b.id;
    }
  };

  bool pop_and_run() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (cancelled_.erase(ev.id) > 0) continue;
      P2PFL_CHECK(ev.t >= now_);
      now_ = ev.t;
      live_.erase(ev.id);
      ev.fn();
      return true;
    }
    return false;
  }

  SimTime now_ = 0;
  RefEventId next_id_ = 1;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<RefEventId> cancelled_;
  std::unordered_set<RefEventId> live_;
};

}  // namespace p2pfl::sim
