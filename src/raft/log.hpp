// The replicated log, with snapshot-based compaction (Raft §7).
//
// Indices are 1-based as in the Raft paper; index 0 is the empty-log
// sentinel with term 0. After compact_to(i), entries <= i are discarded
// and replaced by a snapshot marker (snapshot_index/term); term_at(i)
// still answers for the snapshot boundary itself, which is all the
// AppendEntries consistency check needs. A leader asked to ship entries
// it has compacted away falls back to InstallSnapshot.
#pragma once

#include <optional>
#include <vector>

#include "raft/types.hpp"

namespace p2pfl::raft {

class RaftLog {
 public:
  Index last_index() const { return snap_index_ + entries_.size(); }

  Term last_term() const {
    return entries_.empty() ? snap_term_ : entries_.back().term;
  }

  Index snapshot_index() const { return snap_index_; }
  Term snapshot_term() const { return snap_term_; }

  /// First index still present as a real entry (last_index()+1 if none).
  Index first_index() const { return snap_index_ + 1; }

  /// Discard entries up to and including `idx` (must be <= last_index()).
  /// Typically called with the commit index once the state machine has
  /// been snapshotted.
  void compact_to(Index idx);

  /// Reset the whole log to a snapshot received from the leader.
  void install_snapshot(Index idx, Term term);

  /// Reset the log wholesale from recovered persistent state (WAL
  /// replay): snapshot boundary plus the surviving entry tail.
  void restore(Index snap_index, Term snap_term, std::vector<LogEntry> entries);

  /// Term of the entry at `idx`; 0 for idx == 0, the snapshot term at the
  /// snapshot boundary. Requires snapshot_index() <= idx <= last_index().
  Term term_at(Index idx) const;

  /// True when the entry's term is still known (not compacted away).
  bool has_term(Index idx) const {
    return idx >= snap_index_ && idx <= last_index();
  }

  /// Entry at `idx`. Requires first_index() <= idx <= last_index().
  const LogEntry& at(Index idx) const;

  /// Append one entry, returning its index.
  Index append(LogEntry entry);

  /// Remove every entry with index >= idx (conflict resolution).
  void truncate_from(Index idx);

  /// Entries in [from, from+max), clamped to the log end.
  std::vector<LogEntry> slice(Index from, std::size_t max) const;

  /// True if a candidate log described by (last_index, last_term) is at
  /// least as up-to-date as this log (Raft §5.4.1 voting restriction).
  bool candidate_up_to_date(Index cand_last_index, Term cand_last_term) const;

  /// Index of the most recent kConfig entry, or nullopt if none.
  std::optional<Index> latest_config_index() const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  Index snap_index_ = 0;
  Term snap_term_ = 0;
  std::vector<LogEntry> entries_;  // entries_[i] holds index snap_index_+i+1
};

}  // namespace p2pfl::raft
