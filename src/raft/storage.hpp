// Crash-durable Raft persistence: a CRC-framed write-ahead log plus an
// atomically-replaced snapshot file.
//
// Raft requires currentTerm, votedFor and the log to survive a crash
// (Figure 2, "Persistent state"). WalStorage appends one framed record
// per mutation to `<prefix>.wal` and keeps the latest snapshot (boundary
// index/term, membership, opaque application state) in `<prefix>.snap`,
// written tmp + fsync + rename so it is either the old or the new
// snapshot, never a torn hybrid. After a snapshot the WAL is rewritten
// from scratch (term/vote + snapshot mark + surviving tail entries), so
// its size is bounded by the compaction threshold.
//
// Recovery scans the WAL sequentially. Every record is length- and
// CRC-checked; the first invalid record ends the scan and the file is
// truncated at the last good offset — a torn tail from a mid-write
// crash heals itself, and anything after a corrupt record is untrusted
// by construction. Same WAL bytes always yield the same recovered
// state (recovery is deterministic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "raft/types.hpp"

namespace p2pfl::raft {

/// IEEE CRC-32 (same polynomial as zlib) over a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Everything Raft must reload after a crash.
struct PersistentState {
  bool has_state = false;  ///< false: storage was empty, start fresh
  Term term = 0;
  PeerId voted_for = kNoPeer;
  Index snap_index = 0;
  Term snap_term = 0;
  std::vector<PeerId> snap_members;
  Bytes snap_app_state;
  /// Entries with indices snap_index+1 .. snap_index+entries.size().
  std::vector<LogEntry> entries;
};

/// What recovery had to do to produce a consistent state.
struct RecoveryInfo {
  bool recovered = false;       ///< durable state was found and loaded
  bool truncated_tail = false;  ///< trailing bytes discarded (torn write)
  bool snapshot_loaded = false;
  std::uint64_t records = 0;          ///< valid WAL records replayed
  std::uint64_t bytes_discarded = 0;  ///< bytes dropped by truncation
  double duration_ms = 0.0;           ///< wall-clock load time
};

/// Persistence seam RaftNode writes through. A null Storage* keeps the
/// node purely in-memory (the pre-PR behavior).
class Storage {
 public:
  virtual ~Storage() = default;

  /// Replay durable state. Called once by the recovering node before
  /// any mutation; implementations may be called again after wipe().
  virtual PersistentState load() = 0;

  virtual void persist_term_vote(Term term, PeerId voted_for) = 0;
  virtual void append_entry(Index index, const LogEntry& entry) = 0;
  virtual void truncate_from(Index index) = 0;
  /// Durably replace everything below the snapshot boundary. `tail`
  /// holds the surviving entries above `index`.
  virtual void save_snapshot(Index index, Term term,
                             const std::vector<PeerId>& members,
                             const Bytes& app_state, Term current_term,
                             PeerId voted_for,
                             const std::vector<LogEntry>& tail) = 0;
  /// Flush appended records to stable storage. The node calls this once
  /// per mutation batch, before acting on the persisted state.
  virtual void sync() = 0;
  /// Destroy all durable state (the amnesia restart: delete the WAL).
  virtual void wipe() = 0;

  virtual const RecoveryInfo& recovery() const = 0;
};

struct WalOptions {
  /// fsync on sync(). Off only for tests that measure logical behavior.
  bool fsync = true;
  /// Records larger than this are treated as corruption during recovery.
  std::uint32_t max_record_bytes = 64u << 20;
};

/// File-backed Storage. `prefix` names the per-node file pair
/// (`<prefix>.wal` / `<prefix>.snap`); parent directories must exist.
class WalStorage final : public Storage {
 public:
  explicit WalStorage(std::string prefix, WalOptions opts = {});
  ~WalStorage() override;

  WalStorage(const WalStorage&) = delete;
  WalStorage& operator=(const WalStorage&) = delete;

  PersistentState load() override;
  void persist_term_vote(Term term, PeerId voted_for) override;
  void append_entry(Index index, const LogEntry& entry) override;
  void truncate_from(Index index) override;
  void save_snapshot(Index index, Term term,
                     const std::vector<PeerId>& members,
                     const Bytes& app_state, Term current_term,
                     PeerId voted_for,
                     const std::vector<LogEntry>& tail) override;
  void sync() override;
  void wipe() override;

  const RecoveryInfo& recovery() const override { return recovery_; }

  std::string wal_path() const { return prefix_ + ".wal"; }
  std::string snap_path() const { return prefix_ + ".snap"; }

  /// True if a WAL file exists on disk for `prefix` (cheap existence
  /// probe used by restart logic to pick durable vs fresh paths).
  static bool exists(const std::string& prefix);

 private:
  void open_wal_for_append();
  void append_record(const Bytes& payload);
  void rewrite_wal(const std::vector<Bytes>& payloads);
  void close_fd();

  std::string prefix_;
  WalOptions opts_;
  int fd_ = -1;
  bool dirty_ = false;
  RecoveryInfo recovery_;
};

}  // namespace p2pfl::raft
