// Raft wire types: log entries, RPC arguments and replies.
//
// Hand-rolled reproduction of the Raft protocol (Ongaro & Ousterhout,
// USENIX ATC'14) that the paper builds its two-layer backend on. The RPC
// structs mirror Figure 2 of the Raft paper; wire_size() feeds the
// network's byte accounting (Raft control traffic is negligible next to
// model transfers, but we account for it anyway).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace p2pfl::raft {

using Term = std::uint64_t;
using Index = std::uint64_t;

enum class EntryKind : std::uint8_t {
  kNoop = 0,     // appended by a fresh leader to commit its term
  kCommand = 1,  // opaque application command
  kConfig = 2,   // cluster membership (sorted member list in data)
};

struct LogEntry {
  Term term = 0;
  EntryKind kind = EntryKind::kCommand;
  Bytes data;

  /// Exact encoded size (term + kind + length + payload; see wire.hpp).
  std::uint64_t wire_size() const { return 13 + data.size(); }

  friend bool operator==(const LogEntry& a, const LogEntry& b) {
    return a.term == b.term && a.kind == b.kind && a.data == b.data;
  }
};

/// Encode / decode a membership list for a kConfig entry.
Bytes encode_members(const std::vector<PeerId>& members);
std::vector<PeerId> decode_members(const Bytes& data);

struct RequestVoteArgs {
  Term term = 0;
  PeerId candidate = kNoPeer;
  Index last_log_index = 0;
  Term last_log_term = 0;
  /// §9.6 PreVote: probe electability without disturbing terms. `term`
  /// then carries the term the candidate *would* start.
  bool pre_vote = false;

  static constexpr std::uint64_t kWireSize = 29;
};

struct RequestVoteReply {
  Term term = 0;
  bool vote_granted = false;
  PeerId voter = kNoPeer;
  bool pre_vote = false;

  static constexpr std::uint64_t kWireSize = 14;
};

/// Leadership transfer (dissertation §3.10): the leader asks a
/// transferee to campaign immediately, skipping its election timeout
/// (and the stickiness check, since the leader itself solicited it).
struct TimeoutNowArgs {
  Term term = 0;
  PeerId leader = kNoPeer;

  static constexpr std::uint64_t kWireSize = 12;
};

struct AppendEntriesArgs {
  Term term = 0;
  PeerId leader = kNoPeer;
  Index prev_log_index = 0;
  Term prev_log_term = 0;
  std::vector<LogEntry> entries;  // empty = heartbeat
  Index leader_commit = 0;

  std::uint64_t wire_size() const {
    std::uint64_t n = 40;  // fixed header + entry count
    for (const LogEntry& e : entries) n += e.wire_size();
    return n;
  }
};

/// §7: shipped when a follower needs entries the leader has compacted.
/// Carries the snapshot boundary, the membership at that point (config
/// is part of every Raft snapshot) and the opaque application state.
struct InstallSnapshotArgs {
  Term term = 0;
  PeerId leader = kNoPeer;
  Index last_included_index = 0;
  Term last_included_term = 0;
  std::vector<PeerId> members;
  Bytes app_state;

  std::uint64_t wire_size() const {
    return 36 + 4 * members.size() + app_state.size();
  }
};

struct InstallSnapshotReply {
  Term term = 0;
  PeerId follower = kNoPeer;
  Index match_index = 0;

  static constexpr std::uint64_t kWireSize = 20;
};

struct AppendEntriesReply {
  Term term = 0;
  bool success = false;
  PeerId follower = kNoPeer;
  /// On success: index of the last entry known replicated on the follower.
  Index match_index = 0;
  /// On failure: hint where the leader should retry (first index of the
  /// conflicting term, or just past the follower's last entry).
  Index conflict_index = 0;

  static constexpr std::uint64_t kWireSize = 29;
};

}  // namespace p2pfl::raft
