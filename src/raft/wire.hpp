// Binary wire codec for the Raft RPCs.
//
// The simulated network carries typed payloads (std::any) for speed, but
// every envelope's accounted wire size must be honest. This codec defines
// the canonical little-endian encoding for each RPC; tests assert that
// the sizes the protocol charges (types.hpp kWireSize / wire_size())
// equal the actual encoded length, byte for byte, and that every message
// round-trips. It is also what a real TCP transport for this library
// would put on the socket.
#pragma once

#include <optional>

#include "raft/types.hpp"

namespace p2pfl::raft::wire {

Bytes encode(const RequestVoteArgs& m);
Bytes encode(const RequestVoteReply& m);
Bytes encode(const AppendEntriesArgs& m);
Bytes encode(const AppendEntriesReply& m);
Bytes encode(const InstallSnapshotArgs& m);
Bytes encode(const InstallSnapshotReply& m);
Bytes encode(const TimeoutNowArgs& m);

std::optional<RequestVoteArgs> decode_request_vote(const Bytes& b);
std::optional<RequestVoteReply> decode_request_vote_reply(const Bytes& b);
std::optional<AppendEntriesArgs> decode_append_entries(const Bytes& b);
std::optional<AppendEntriesReply> decode_append_entries_reply(
    const Bytes& b);
std::optional<InstallSnapshotArgs> decode_install_snapshot(const Bytes& b);
std::optional<InstallSnapshotReply> decode_install_snapshot_reply(
    const Bytes& b);
std::optional<TimeoutNowArgs> decode_timeout_now(const Bytes& b);

/// Register the Raft RPC codecs ("raft:rv" ... "raft:tn") in the global
/// net::CodecRegistry. Idempotent; called by every RaftNode constructor.
void register_codecs();

}  // namespace p2pfl::raft::wire
