#include "raft/node.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "raft/wire.hpp"

namespace p2pfl::raft {

const char* role_name(Role r) {
  switch (r) {
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
    case Role::kLeader: return "leader";
  }
  return "?";
}

RaftNode::RaftNode(PeerId id, std::string channel,
                   std::vector<PeerId> initial_members, RaftOptions opts,
                   net::Network& net, net::PeerHost& host, Storage* storage)
    : id_(id),
      channel_(std::move(channel)),
      initial_members_(std::move(initial_members)),
      opts_(opts),
      net_(net),
      host_(host),
      storage_(storage),
      rng_(net.rng().fork(0x7261'6674ULL ^ id)),
      config_(initial_members_),
      election_timer_(
          net.transport(),
          [this] {
            // Follower: suspects the leader is gone. Candidate: the
            // election reached no outcome. Either way, start (another)
            // election.
            if (running_ && role_ != Role::kLeader) start_election();
          },
          channel_ + ".election_timeout"),
      heartbeat_timer_(
          net.transport(),
          [this] {
            if (running_ && role_ == Role::kLeader) broadcast_append();
          },
          channel_ + ".heartbeat") {
  P2PFL_CHECK(opts_.election_timeout_min > 0);
  P2PFL_CHECK(opts_.election_timeout_max >= opts_.election_timeout_min);
  std::sort(config_.begin(), config_.end());
  snapshot_members_ = config_;
  if (storage_) {
    // Replay the WAL (Figure 2 persistent state) before anything else.
    // Volatile state is rebuilt by restart(); callers that see
    // recovered_from_storage() must resume via restart(), which also
    // re-installs the recovered snapshot into the application.
    PersistentState st = storage_->load();
    const RecoveryInfo& info = storage_->recovery();
    obs::Observability& o = net_.obs();
    if (st.has_state) {
      recovered_from_storage_ = true;
      term_ = st.term;
      voted_for_ = st.voted_for;
      log_.restore(st.snap_index, st.snap_term, std::move(st.entries));
      if (st.snap_index > 0) {
        snapshot_members_ = std::move(st.snap_members);
        snapshot_state_ = std::move(st.snap_app_state);
      }
      commit_ = log_.snapshot_index();
      applied_ = log_.snapshot_index();
      adopt_latest_config();
      o.metrics.counter("raft.recoveries").add(1);
      P2PFL_INFO() << channel_ << " peer " << id_ << " recovered from WAL: term "
                   << term_ << ", log [" << log_.snapshot_index() + 1 << ", "
                   << log_.last_index() << "]"
                   << (info.truncated_tail ? " (torn tail truncated)" : "");
    }
    if (info.truncated_tail) o.metrics.counter("raft.wal_truncations").add(1);
    o.metrics
        .histogram("raft.recovery_ms",
                   obs::Histogram::exponential_bounds(0.01, 2.0, 20))
        .record(info.duration_ms);
  }
  wire::register_codecs();
  // One typed route per RPC kind: the payload arrives as the exact
  // struct the codec registry knows for that kind, no string dispatch.
  route_rpc<RequestVoteArgs>(
      "/rv", [this](const RequestVoteArgs& m) { handle_request_vote(m); });
  route_rpc<RequestVoteReply>("/rvr", [this](const RequestVoteReply& m) {
    handle_request_vote_reply(m);
  });
  route_rpc<AppendEntriesArgs>("/ae", [this](const AppendEntriesArgs& m) {
    handle_append_entries(m);
  });
  route_rpc<AppendEntriesReply>("/aer", [this](const AppendEntriesReply& m) {
    handle_append_entries_reply(m);
  });
  route_rpc<InstallSnapshotArgs>("/is", [this](const InstallSnapshotArgs& m) {
    handle_install_snapshot(m);
  });
  route_rpc<InstallSnapshotReply>(
      "/isr",
      [this](const InstallSnapshotReply& m) { handle_install_snapshot_reply(m); });
  route_rpc<TimeoutNowArgs>(
      "/tn", [this](const TimeoutNowArgs& m) { handle_timeout_now(m); });
}

RaftNode::~RaftNode() {
  for (const char* suffix : {"/rv", "/rvr", "/ae", "/aer", "/is", "/isr", "/tn"}) {
    host_.unroute(channel_ + suffix);
  }
}

bool RaftNode::in_config() const {
  return std::find(config_.begin(), config_.end(), id_) != config_.end();
}

SimTime RaftNode::follower_last_contact(PeerId follower) const {
  if (!is_leader()) return -1;
  auto it = follower_contact_.find(follower);
  return it == follower_contact_.end() ? -1 : it->second;
}

bool RaftNode::quorum_contact_recent() const {
  if (!in_config()) return false;
  std::size_t fresh = 1;  // self
  const SimTime now = net_.now();
  for (const auto& [m, t] : follower_contact_) {
    if (m != id_ && now - t < opts_.election_timeout_min) ++fresh;
  }
  return fresh >= quorum();
}

void RaftNode::start() {
  if (running_) return;
  running_ = true;
  role_ = Role::kFollower;
  leader_hint_ = kNoPeer;
  first_timeout_pending_ = opts_.initial_election_timeout > 0;
  if (in_config()) reset_election_timer();
}

void RaftNode::stop() {
  if (!running_) return;
  running_ = false;
  election_timer_.cancel();
  heartbeat_timer_.cancel();
  if (role_ == Role::kLeader) {
    net_.obs().metrics.gauge("raft.leaders." + channel_).add(-1);
  }
  obs::SpanRecorder& sr = net_.obs().spans;
  for (const auto& [idx, span] : replicate_spans_) sr.close_aborted(span);
  replicate_spans_.clear();
  role_ = Role::kFollower;
  leader_hint_ = kNoPeer;
  last_leader_contact_ = -1;
}

void RaftNode::restart() {
  P2PFL_CHECK_MSG(!running_, "restart() requires a stopped node");
  // Volatile state is rebuilt from the surviving persistent state; the
  // commit index is relearned from the next leader contact (§5.3 note:
  // commitIndex is volatile). The state machine restores from the
  // persisted snapshot and replays the surviving log tail.
  commit_ = log_.snapshot_index();
  applied_ = log_.snapshot_index();
  if (log_.snapshot_index() > 0 && on_snapshot_install) {
    on_snapshot_install(log_.snapshot_index(), snapshot_state_);
  }
  votes_.clear();
  next_index_.clear();
  match_index_.clear();
  pending_config_ = 0;
  adopt_latest_config();
  running_ = true;
  role_ = Role::kFollower;
  leader_hint_ = kNoPeer;
  if (in_config()) reset_election_timer();
}

SimDuration RaftNode::random_election_timeout() {
  return rng_.uniform_int(opts_.election_timeout_min,
                          opts_.election_timeout_max);
}

void RaftNode::reset_election_timer() {
  if (first_timeout_pending_) {
    first_timeout_pending_ = false;
    election_timer_.arm(opts_.initial_election_timeout);
    return;
  }
  election_timer_.arm(random_election_timeout());
}

// --- durability write-through ----------------------------------------------

void RaftNode::persist_term_vote() {
  if (storage_) storage_->persist_term_vote(term_, voted_for_);
}

void RaftNode::persist_append(Index index, const LogEntry& entry) {
  if (storage_) storage_->append_entry(index, entry);
}

void RaftNode::persist_truncate(Index index) {
  if (storage_) storage_->truncate_from(index);
}

void RaftNode::persist_snapshot() {
  if (!storage_) return;
  storage_->save_snapshot(log_.snapshot_index(), log_.snapshot_term(),
                          snapshot_members_, snapshot_state_, term_,
                          voted_for_, log_.slice(log_.first_index(),
                                                 log_.size()));
}

void RaftNode::persist_sync() {
  if (storage_) storage_->sync();
}

// --- role transitions ------------------------------------------------------

void RaftNode::become_follower(Term term, PeerId leader_hint) {
  const bool was_leader = role_ == Role::kLeader;
  if (term > term_) {
    term_ = term;
    voted_for_ = kNoPeer;
    persist_term_vote();
    persist_sync();
    net_.obs().metrics.counter("raft.term_bumps").add(1);
  }
  role_ = Role::kFollower;
  prevote_phase_ = false;
  if (leader_hint != kNoPeer) leader_hint_ = leader_hint;
  votes_.clear();
  heartbeat_timer_.cancel();
  if (in_config()) {
    reset_election_timer();
  } else {
    election_timer_.cancel();
  }
  if (was_leader) {
    P2PFL_DEBUG() << channel_ << " peer " << id_ << " stepped down (term "
                  << term_ << ")";
    obs::Observability& o = net_.obs();
    for (const auto& [idx, span] : replicate_spans_) {
      o.spans.close_aborted(span);
    }
    replicate_spans_.clear();
    follower_contact_.clear();
    o.metrics.counter("raft.stepdowns").add(1);
    o.metrics.gauge("raft.leaders." + channel_).add(-1);
    if (o.trace.category_enabled("raft")) {
      o.trace.instant("raft", "raft.step_down", id_,
                      {{"channel", channel_}, {"term", term_}});
    }
    if (on_step_down) on_step_down();
  }
}

void RaftNode::start_election() {
  if (!in_config()) {
    // Non-members never campaign; they wait to be configured in.
    election_timer_.cancel();
    return;
  }
  if (opts_.pre_vote) {
    // §9.6: probe a quorum before touching the term. The timer re-arms
    // so an unanswered probe round simply retries.
    role_ = Role::kCandidate;
    prevote_phase_ = true;
    votes_.clear();
    votes_.insert(id_);
    reset_election_timer();
    if (votes_.size() >= quorum()) {
      start_real_election();
      return;
    }
    RequestVoteArgs args;
    args.term = term_ + 1;
    args.candidate = id_;
    args.last_log_index = log_.last_index();
    args.last_log_term = log_.last_term();
    args.pre_vote = true;
    for (PeerId p : config_) {
      if (p != id_) send_rpc(p, "/rv", args, RequestVoteArgs::kWireSize);
    }
    return;
  }
  start_real_election();
}

void RaftNode::start_real_election() {
  prevote_phase_ = false;
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = id_;
  persist_term_vote();
  persist_sync();
  votes_.clear();
  votes_.insert(id_);
  leader_hint_ = kNoPeer;
  ++metrics_.elections_started;
  obs::Observability& o = net_.obs();
  o.metrics.counter("raft.elections_started").add(1);
  o.metrics.counter("raft.term_bumps").add(1);
  if (o.trace.category_enabled("raft")) {
    o.trace.instant("raft", "raft.election_start", id_,
                    {{"channel", channel_}, {"term", term_}});
  }
  P2PFL_DEBUG() << channel_ << " peer " << id_ << " starts election, term "
                << term_;
  reset_election_timer();
  if (votes_.size() >= quorum()) {
    become_leader();  // single-member cluster
    return;
  }
  broadcast_request_vote();
}

void RaftNode::become_leader() {
  P2PFL_CHECK(role_ == Role::kCandidate);
  role_ = Role::kLeader;
  leader_hint_ = id_;
  ++metrics_.times_elected;
  obs::Observability& o = net_.obs();
  o.metrics.counter("raft.elections_won").add(1);
  o.metrics.gauge("raft.leaders." + channel_).add(1);
  if (o.trace.category_enabled("raft")) {
    o.trace.instant("raft", "raft.leader_elected", id_,
                    {{"channel", channel_}, {"term", term_}});
  }
  election_timer_.cancel();
  // Inherit any still-uncommitted config entry as the pending change.
  pending_config_ = 0;
  if (auto idx = log_.latest_config_index(); idx && *idx > commit_) {
    pending_config_ = *idx;
  }
  next_index_.clear();
  match_index_.clear();
  follower_contact_.clear();
  for (PeerId p : config_) {
    next_index_[p] = log_.last_index() + 1;
    match_index_[p] = p == id_ ? log_.last_index() : 0;
    if (p != id_) follower_contact_[p] = net_.now();
  }
  // §5.4.2: a fresh leader cannot directly commit entries from previous
  // terms; appending a current-term no-op lets them commit transitively.
  log_.append(LogEntry{term_, EntryKind::kNoop, {}});
  persist_append(log_.last_index(), log_.at(log_.last_index()));
  persist_sync();
  match_index_[id_] = log_.last_index();
  P2PFL_DEBUG() << channel_ << " peer " << id_ << " elected leader, term "
                << term_;
  broadcast_append();
  heartbeat_timer_.arm_periodic(opts_.effective_heartbeat());
  if (on_become_leader) on_become_leader();
}

// --- send side ---------------------------------------------------------------

template <typename T>
void RaftNode::send_rpc(PeerId to, const char* suffix, T args,
                        std::uint64_t wire_bytes) {
  net_.send(id_, to, channel_ + suffix, std::move(args), wire_bytes);
}

void RaftNode::broadcast_request_vote() {
  RequestVoteArgs args;
  args.term = term_;
  args.candidate = id_;
  args.last_log_index = log_.last_index();
  args.last_log_term = log_.last_term();
  for (PeerId p : config_) {
    if (p == id_) continue;
    send_rpc(p, "/rv", args, RequestVoteArgs::kWireSize);
  }
}

void RaftNode::send_append(PeerId to) {
  auto it = next_index_.find(to);
  if (it == next_index_.end()) return;
  const Index next = std::max<Index>(1, it->second);
  if (next <= log_.snapshot_index()) {
    // The entries the follower needs were compacted away (§7).
    send_install_snapshot(to);
    return;
  }
  AppendEntriesArgs args;
  args.term = term_;
  args.leader = id_;
  args.prev_log_index = next - 1;
  args.prev_log_term = log_.term_at(next - 1);
  args.entries = log_.slice(next, opts_.max_entries_per_append);
  args.leader_commit = commit_;
  const std::uint64_t wire = args.wire_size();
  send_rpc(to, "/ae", std::move(args), wire);
}

void RaftNode::broadcast_append() {
  for (PeerId p : config_) {
    if (p != id_) send_append(p);
  }
}

// --- receive side -------------------------------------------------------------

void RaftNode::handle_request_vote(const RequestVoteArgs& args) {
  if (args.pre_vote) {
    // A pre-vote never mutates our state; grant iff we would plausibly
    // vote for this candidate in a real election right now.
    RequestVoteReply reply;
    reply.voter = id_;
    reply.term = term_;
    reply.pre_vote = true;
    const bool heard_leader_recently =
        last_leader_contact_ >= 0 &&
        net_.now() - last_leader_contact_ <
            opts_.election_timeout_min;
    reply.vote_granted =
        role_ != Role::kLeader && !heard_leader_recently &&
        args.term >= term_ &&
        log_.candidate_up_to_date(args.last_log_index, args.last_log_term);
    send_rpc(args.candidate, "/rvr", reply, RequestVoteReply::kWireSize);
    return;
  }
  // §4.2.3 stickiness: while we have heard from a live leader recently,
  // drop vote requests entirely (without even adopting the term), so a
  // server removed from the configuration — or one with a stale config —
  // cannot depose a healthy leader by inflating terms. The leader itself
  // applies the check-quorum form: while a quorum of its followers is in
  // active contact it ignores vote requests too, closing the hole where
  // the removed server's inflated term deposes the leader directly.
  if (opts_.leader_stickiness) {
    const bool follower_sticky =
        role_ == Role::kFollower && last_leader_contact_ >= 0 &&
        net_.now() - last_leader_contact_ <
            opts_.election_timeout_min;
    const bool leader_sticky =
        role_ == Role::kLeader && quorum_contact_recent();
    if (follower_sticky || leader_sticky) return;
  }
  if (args.term > term_) become_follower(args.term, kNoPeer);

  RequestVoteReply reply;
  reply.voter = id_;
  reply.term = term_;
  reply.vote_granted = false;

  if (args.term == term_ && role_ != Role::kLeader &&
      (voted_for_ == kNoPeer || voted_for_ == args.candidate) &&
      log_.candidate_up_to_date(args.last_log_index, args.last_log_term)) {
    voted_for_ = args.candidate;
    persist_term_vote();
    persist_sync();
    reply.vote_granted = true;
    ++metrics_.votes_granted;
    // Granting a vote counts as hearing from a viable leader candidate.
    if (in_config()) reset_election_timer();
  }
  send_rpc(args.candidate, "/rvr", reply, RequestVoteReply::kWireSize);
}

void RaftNode::handle_request_vote_reply(const RequestVoteReply& reply) {
  if (reply.term > term_) {
    become_follower(reply.term, kNoPeer);
    return;
  }
  if (reply.pre_vote) {
    if (role_ != Role::kCandidate || !prevote_phase_ ||
        !reply.vote_granted) {
      return;
    }
    if (std::find(config_.begin(), config_.end(), reply.voter) ==
        config_.end()) {
      return;
    }
    votes_.insert(reply.voter);
    if (votes_.size() >= quorum()) start_real_election();
    return;
  }
  if (role_ != Role::kCandidate || prevote_phase_ || reply.term != term_ ||
      !reply.vote_granted) {
    return;
  }
  // Only votes from current configuration members count toward quorum.
  if (std::find(config_.begin(), config_.end(), reply.voter) ==
      config_.end()) {
    return;
  }
  votes_.insert(reply.voter);
  if (votes_.size() >= quorum()) become_leader();
}

void RaftNode::handle_append_entries(const AppendEntriesArgs& args) {
  AppendEntriesReply reply;
  reply.follower = id_;
  reply.success = false;

  if (args.term < term_) {
    reply.term = term_;
    send_rpc(args.leader, "/aer", reply, AppendEntriesReply::kWireSize);
    return;
  }
  // Equal or higher term: the sender is the legitimate leader for it.
  if (args.term > term_ || role_ != Role::kFollower) {
    become_follower(args.term, args.leader);
  }
  leader_hint_ = args.leader;
  last_leader_contact_ = net_.now();
  reply.term = term_;
  if (in_config()) reset_election_timer();

  // §5.3 consistency check.
  if (args.prev_log_index > log_.last_index()) {
    reply.conflict_index = log_.last_index() + 1;
    send_rpc(args.leader, "/aer", reply, AppendEntriesReply::kWireSize);
    return;
  }
  if (args.prev_log_index < log_.snapshot_index()) {
    // Our snapshot already covers this prefix; ask the leader to resume
    // right after it.
    reply.conflict_index = log_.snapshot_index() + 1;
    send_rpc(args.leader, "/aer", reply, AppendEntriesReply::kWireSize);
    return;
  }
  if (log_.term_at(args.prev_log_index) != args.prev_log_term) {
    // Back off to the first index of the conflicting term.
    const Term bad = log_.term_at(args.prev_log_index);
    Index first = args.prev_log_index;
    while (first > log_.first_index() && log_.term_at(first - 1) == bad) {
      --first;
    }
    reply.conflict_index = first;
    send_rpc(args.leader, "/aer", reply, AppendEntriesReply::kWireSize);
    return;
  }

  // Append new entries, truncating on the first mismatch.
  bool log_changed = false;
  Index idx = args.prev_log_index;
  for (const LogEntry& e : args.entries) {
    ++idx;
    if (idx <= log_.last_index()) {
      if (log_.term_at(idx) == e.term) continue;  // already have it
      P2PFL_CHECK_MSG(idx > commit_, "attempt to truncate committed entry");
      log_.truncate_from(idx);
      persist_truncate(idx);
    }
    log_.append(e);
    persist_append(idx, e);
    log_changed = true;
  }
  if (log_changed) {
    persist_sync();
    adopt_latest_config();
  }

  const Index last_new = args.prev_log_index + args.entries.size();
  if (args.leader_commit > commit_) {
    commit_ = std::min(args.leader_commit, last_new);
    apply_committed();
  }
  reply.success = true;
  reply.match_index = last_new;
  send_rpc(args.leader, "/aer", reply, AppendEntriesReply::kWireSize);
}

void RaftNode::handle_append_entries_reply(const AppendEntriesReply& reply) {
  if (reply.term > term_) {
    become_follower(reply.term, kNoPeer);
    return;
  }
  if (role_ != Role::kLeader || reply.term != term_) return;
  auto nit = next_index_.find(reply.follower);
  if (nit == next_index_.end()) return;  // no longer a member
  follower_contact_[reply.follower] = net_.now();

  if (reply.success) {
    match_index_[reply.follower] =
        std::max(match_index_[reply.follower], reply.match_index);
    nit->second = match_index_[reply.follower] + 1;
    advance_commit();
    // Keep streaming if the follower is still behind.
    if (nit->second <= log_.last_index()) send_append(reply.follower);
  } else {
    const Index hint = reply.conflict_index;
    nit->second = std::max<Index>(
        1, std::min<Index>(hint == 0 ? nit->second - 1 : hint,
                           nit->second - 1));
    send_append(reply.follower);
  }
}

// --- commit machinery ---------------------------------------------------------

void RaftNode::advance_commit() {
  for (Index idx = log_.last_index(); idx > commit_; --idx) {
    // §5.4.2: only entries of the current term commit by counting.
    if (log_.term_at(idx) != term_) break;
    std::size_t replicas = 0;
    for (PeerId p : config_) {
      const Index match = p == id_ ? log_.last_index() : match_index_[p];
      if (match >= idx) ++replicas;
    }
    if (replicas >= quorum()) {
      commit_ = idx;
      apply_committed();
      break;
    }
  }
}

void RaftNode::apply_committed() {
  obs::Counter& applied_counter =
      net_.obs().metrics.counter("raft.entries_applied");
  while (applied_ < commit_) {
    ++applied_;
    const LogEntry& e = log_.at(applied_);
    ++metrics_.entries_applied;
    applied_counter.add(1);
    if (!replicate_spans_.empty()) {
      auto sit = replicate_spans_.find(applied_);
      if (sit != replicate_spans_.end()) {
        // Credit the AppendEntries reply (or quorum-forming link) whose
        // arrival advanced the commit index past this entry.
        obs::SpanRecorder& sr = net_.obs().spans;
        obs::SpanId closer = sr.current();
        if (closer == sit->second) closer = obs::kNoSpan;
        sr.close(sit->second, closer);
        replicate_spans_.erase(sit);
      }
    }
    if (e.kind == EntryKind::kConfig) {
      if (pending_config_ == applied_) pending_config_ = 0;
      // A leader that committed its own removal steps down (§4.2.2).
      if (role_ == Role::kLeader && !in_config()) {
        become_follower(term_, kNoPeer);
      }
    } else if (e.kind == EntryKind::kCommand && on_apply) {
      on_apply(applied_, e);
    }
  }
  maybe_auto_compact();
}

void RaftNode::maybe_auto_compact() {
  if (opts_.compaction_threshold == 0) return;
  if (applied_ - log_.snapshot_index() >= opts_.compaction_threshold) {
    compact();
  }
}

void RaftNode::compact() {
  if (applied_ <= log_.snapshot_index()) return;
  // Membership is part of every snapshot: the latest config entry at or
  // below the compaction point (else the previous snapshot's).
  for (Index i = applied_; i >= log_.first_index(); --i) {
    if (log_.at(i).kind == EntryKind::kConfig) {
      snapshot_members_ = decode_members(log_.at(i).data);
      break;
    }
  }
  snapshot_state_ = on_snapshot_save ? on_snapshot_save() : Bytes{};
  log_.compact_to(applied_);
  persist_snapshot();
}

bool RaftNode::push_snapshot(PeerId to) {
  if (!running_ || role_ != Role::kLeader || to == id_) return false;
  compact();
  if (log_.snapshot_index() == 0) return false;
  // compact() no-ops when nothing new was applied; re-save so the push
  // carries the state machine's current blob, not the last compaction's
  // (the app payload piggy-backed on snapshots can move without log
  // entries — e.g. a new global model landing between config commits).
  if (on_snapshot_save) snapshot_state_ = on_snapshot_save();
  send_install_snapshot(to);
  return true;
}

void RaftNode::send_install_snapshot(PeerId to) {
  InstallSnapshotArgs args;
  args.term = term_;
  args.leader = id_;
  args.last_included_index = log_.snapshot_index();
  args.last_included_term = log_.snapshot_term();
  args.members = snapshot_members_;
  args.app_state = snapshot_state_;
  net::WireSize size;
  size.wire = args.wire_size();
  size.payload = snapshot_payload ? snapshot_payload(snapshot_state_) : 0;
  net_.send(id_, to, channel_ + "/is", std::move(args), size);
}

void RaftNode::handle_install_snapshot(const InstallSnapshotArgs& args) {
  InstallSnapshotReply reply;
  reply.follower = id_;
  if (args.term < term_) {
    reply.term = term_;
    send_rpc(args.leader, "/isr", reply, InstallSnapshotReply::kWireSize);
    return;
  }
  if (args.term > term_ || role_ != Role::kFollower) {
    become_follower(args.term, args.leader);
  }
  leader_hint_ = args.leader;
  last_leader_contact_ = net_.now();
  reply.term = term_;
  if (in_config()) reset_election_timer();

  const Index idx = args.last_included_index;
  if (idx <= log_.snapshot_index()) {
    // Already covered by our own snapshot.
    reply.match_index = log_.snapshot_index();
    send_rpc(args.leader, "/isr", reply, InstallSnapshotReply::kWireSize);
    return;
  }
  if (log_.has_term(idx) && log_.term_at(idx) == args.last_included_term) {
    // §7: the snapshot describes a prefix we already have — just compact
    // (our applied state already covers it once commit catches up).
    if (applied_ >= idx) {
      log_.compact_to(idx);
      snapshot_members_ = args.members;
      snapshot_state_ = args.app_state;
      persist_snapshot();
      // Still hand the blob to the application: the piggy-backed payload
      // (e.g. the newest global model in a catch-up push) may carry
      // state the replicated log alone never did.
      if (on_snapshot_install) on_snapshot_install(idx, snapshot_state_);
    }
  } else {
    // Replace everything with the snapshot.
    log_.install_snapshot(idx, args.last_included_term);
    snapshot_members_ = args.members;
    snapshot_state_ = args.app_state;
    commit_ = idx;
    applied_ = idx;
    persist_snapshot();
    ++metrics_.snapshot_installs;
    obs::Observability& o = net_.obs();
    o.metrics.counter("raft.snapshot_installs").add(1);
    if (o.trace.category_enabled("raft")) {
      o.trace.instant("raft", "raft.snapshot_install", id_,
                      {{"channel", channel_}, {"index", idx}});
    }
    if (on_snapshot_install) on_snapshot_install(idx, snapshot_state_);
    adopt_latest_config();
  }
  reply.match_index = idx;
  send_rpc(args.leader, "/isr", reply, InstallSnapshotReply::kWireSize);
}

void RaftNode::handle_install_snapshot_reply(
    const InstallSnapshotReply& reply) {
  if (reply.term > term_) {
    become_follower(reply.term, kNoPeer);
    return;
  }
  if (role_ != Role::kLeader || reply.term != term_) return;
  auto it = next_index_.find(reply.follower);
  if (it == next_index_.end()) return;
  follower_contact_[reply.follower] = net_.now();
  match_index_[reply.follower] =
      std::max(match_index_[reply.follower], reply.match_index);
  it->second = std::max(it->second, reply.match_index + 1);
  if (it->second <= log_.last_index()) send_append(reply.follower);
}

void RaftNode::adopt_latest_config() {
  // Membership rule: a server uses the latest configuration in its log
  // as soon as the entry is *appended*, not committed.
  std::vector<PeerId> fresh;
  if (auto idx = log_.latest_config_index()) {
    fresh = decode_members(log_.at(*idx).data);
    pending_config_ = *idx > commit_ ? *idx : 0;
  } else {
    // No config entry left in the log: fall back to the snapshot's
    // membership (which starts out as the bootstrap configuration).
    fresh = snapshot_members_;
    std::sort(fresh.begin(), fresh.end());
    pending_config_ = 0;
  }
  if (fresh == config_) return;
  config_ = std::move(fresh);

  if (role_ == Role::kLeader) {
    for (PeerId p : config_) {
      if (next_index_.count(p) == 0) {
        next_index_[p] = log_.last_index() + 1;
        match_index_[p] = 0;
        follower_contact_[p] = net_.now();
      }
    }
    for (auto it = next_index_.begin(); it != next_index_.end();) {
      if (std::find(config_.begin(), config_.end(), it->first) ==
          config_.end()) {
        match_index_.erase(it->first);
        follower_contact_.erase(it->first);
        it = next_index_.erase(it);
      } else {
        ++it;
      }
    }
  } else if (running_) {
    if (in_config()) {
      if (!election_timer_.armed()) reset_election_timer();
    } else {
      election_timer_.cancel();
      if (role_ == Role::kCandidate) role_ = Role::kFollower;
    }
  }
  if (on_config_adopted) on_config_adopted(config_);
}

// --- client operations ----------------------------------------------------------

std::optional<Index> RaftNode::propose(Bytes command) {
  if (!is_leader()) return std::nullopt;
  log_.append(LogEntry{term_, EntryKind::kCommand, std::move(command)});
  const Index idx = log_.last_index();
  persist_append(idx, log_.at(idx));
  persist_sync();
  match_index_[id_] = idx;
  obs::SpanRecorder& sr = net_.obs().spans;
  obs::SpanId rep = obs::kNoSpan;
  if (sr.enabled()) {
    // Propose -> applied-on-this-leader; the AppendEntries fan-out below
    // chains to it through the stack scope.
    rep = sr.open(obs::SpanKind::kRaftReplicate, channel_ + "/replicate",
                  id_, sr.current_ctx().round);
    replicate_spans_[idx] = rep;
  }
  obs::SpanStackScope rep_scope(sr, rep);
  broadcast_append();
  advance_commit();  // single-member clusters commit immediately
  return idx;
}

std::optional<Index> RaftNode::propose_add_server(PeerId server) {
  if (!is_leader() || pending_config_ != 0) return std::nullopt;
  if (std::find(config_.begin(), config_.end(), server) != config_.end()) {
    return std::nullopt;
  }
  std::vector<PeerId> next = config_;
  next.push_back(server);
  log_.append(LogEntry{term_, EntryKind::kConfig, encode_members(next)});
  persist_append(log_.last_index(), log_.at(log_.last_index()));
  persist_sync();
  match_index_[id_] = log_.last_index();
  pending_config_ = log_.last_index();
  adopt_latest_config();
  broadcast_append();
  advance_commit();
  return log_.last_index();
}

std::optional<Index> RaftNode::propose_remove_server(PeerId server) {
  if (!is_leader() || pending_config_ != 0) return std::nullopt;
  if (std::find(config_.begin(), config_.end(), server) == config_.end()) {
    return std::nullopt;
  }
  std::vector<PeerId> next;
  next.reserve(config_.size() - 1);
  for (PeerId p : config_) {
    if (p != server) next.push_back(p);
  }
  log_.append(LogEntry{term_, EntryKind::kConfig, encode_members(next)});
  persist_append(log_.last_index(), log_.at(log_.last_index()));
  persist_sync();
  match_index_[id_] = log_.last_index();
  pending_config_ = log_.last_index();
  adopt_latest_config();
  broadcast_append();
  advance_commit();
  return log_.last_index();
}

bool RaftNode::transfer_leadership(PeerId transferee) {
  if (!is_leader() || transferee == id_) return false;
  if (std::find(config_.begin(), config_.end(), transferee) ==
      config_.end()) {
    return false;
  }
  // Push any missing entries, then ask the transferee to campaign now.
  send_append(transferee);
  TimeoutNowArgs args;
  args.term = term_;
  args.leader = id_;
  send_rpc(transferee, "/tn", args, TimeoutNowArgs::kWireSize);
  return true;
}

void RaftNode::handle_timeout_now(const TimeoutNowArgs& args) {
  if (args.term != term_ || role_ == Role::kLeader || !in_config()) return;
  // The leader solicited this election: skip PreVote and stickiness.
  start_real_election();
}

}  // namespace p2pfl::raft
