// One Raft consensus participant.
//
// Full hand-rolled Raft (Ongaro & Ousterhout): randomized leader election
// with U(T, 2T) timeouts (matching the paper's §VI-B setup), log
// replication with the §5.3 consistency check and conflict back-off,
// the §5.4 safety restrictions (up-to-date voting rule; only current-term
// entries are committed directly, older ones commit transitively via a
// fresh leader's no-op entry), and single-server cluster membership
// changes (Raft dissertation §4) — the mechanism the two-layer system
// uses when a newly elected subgroup leader joins the FedAvg layer.
//
// A peer may host several RaftNode instances on different channels (its
// subgroup cluster and the FedAvg-layer cluster); envelopes are routed by
// channel prefix through net::PeerHost. Nodes are driven entirely by the
// discrete-event simulator: no threads, no wall-clock.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "raft/log.hpp"
#include "raft/storage.hpp"
#include "raft/types.hpp"
#include "net/transport.hpp"

namespace p2pfl::raft {

enum class Role { kFollower, kCandidate, kLeader };

const char* role_name(Role r);

struct RaftOptions {
  /// Election timeout drawn uniformly from [min, max] on every reset.
  /// The paper samples from U(T, 2T); set min = T, max = 2T.
  SimDuration election_timeout_min = 150 * kMillisecond;
  SimDuration election_timeout_max = 300 * kMillisecond;
  /// Leader heartbeat interval; 0 = election_timeout_min / 3.
  SimDuration heartbeat_interval = 0;
  /// Max log entries shipped per AppendEntries RPC.
  std::size_t max_entries_per_append = 128;
  /// First election timeout after start(); 0 = random like every other.
  /// A designated bootstrap leader gets a short value so it reliably
  /// wins the initial election (the paper's evaluation likewise starts
  /// from a steady state with known leaders).
  SimDuration initial_election_timeout = 0;
  /// §4.2.3 leader stickiness: ignore RequestVote while a heartbeat from
  /// a current leader was seen within the minimum election timeout.
  /// Prevents removed or stale servers from disrupting a healthy
  /// cluster — essential once membership changes (§V joins) happen.
  bool leader_stickiness = true;
  /// §7 log compaction: snapshot automatically once this many applied
  /// entries accumulate past the previous snapshot (0 = manual only).
  std::size_t compaction_threshold = 0;
  /// §9.6 PreVote: poll electability before incrementing the term. Off
  /// by default (the paper's hashicorp baseline also defaults off);
  /// composes with leader_stickiness.
  bool pre_vote = false;

  SimDuration effective_heartbeat() const {
    return heartbeat_interval > 0 ? heartbeat_interval
                                  : election_timeout_min / 3;
  }
};

/// Observable protocol counters (used by tests and the Raft benches).
struct RaftMetrics {
  std::uint64_t elections_started = 0;
  std::uint64_t votes_granted = 0;
  std::uint64_t times_elected = 0;
  std::uint64_t entries_applied = 0;
  /// Snapshots received via InstallSnapshot (state transfer). A WAL
  /// recovery that rejoins cleanly keeps this at 0.
  std::uint64_t snapshot_installs = 0;
};

class RaftNode {
 public:
  /// `channel` namespaces this cluster's RPC traffic (e.g. "raft/sg3").
  /// `initial_members` is the bootstrap configuration; it is superseded
  /// by any kConfig entry that later lands in the log.
  ///
  /// `storage` (optional, not owned, must outlive the node) makes the
  /// Figure-2 persistent state crash-durable: the constructor replays it
  /// via Storage::load() and every persistent-state mutation writes
  /// through before the node acts on it. When the replay recovered
  /// state, wire the callbacks and then call restart() instead of
  /// start() so the snapshot installs into the application and the
  /// recovered configuration is adopted.
  RaftNode(PeerId id, std::string channel,
           std::vector<PeerId> initial_members, RaftOptions opts,
           net::Network& net, net::PeerHost& host,
           Storage* storage = nullptr);
  ~RaftNode();

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Begin operating (as a follower). Idempotent.
  void start();

  /// Simulate a crash of this instance: all timers stop, incoming
  /// messages are ignored. Persistent state (term, vote, log) survives,
  /// exactly like a process that lost power.
  void stop();

  /// Rejoin after stop(). Volatile state (commit index, role) resets and
  /// is rebuilt through the protocol; applied entries replay, so attached
  /// state machines must be deterministic.
  void restart();

  bool running() const { return running_; }

  // --- observers --------------------------------------------------------
  PeerId id() const { return id_; }
  const std::string& channel() const { return channel_; }
  Role role() const { return role_; }
  bool is_leader() const { return running_ && role_ == Role::kLeader; }
  Term current_term() const { return term_; }
  /// Last leader this node heard from (kNoPeer if unknown this term).
  PeerId leader_hint() const { return leader_hint_; }
  Index commit_index() const { return commit_; }
  Index last_log_index() const { return log_.last_index(); }
  const RaftLog& log() const { return log_; }
  const std::vector<PeerId>& members() const { return config_; }
  bool in_config() const;
  const RaftMetrics& metrics() const { return metrics_; }
  /// True while a proposed membership change is still uncommitted.
  bool config_change_in_flight() const { return pending_config_ != 0; }
  /// Leader-side failure detector input: simulated time of the last
  /// AppendEntries/InstallSnapshot reply received from `follower` this
  /// term. Members that have never replied report the moment they were
  /// first tracked (election or config adoption), so the suspicion grace
  /// window starts counting from there. Returns -1 when not leader or
  /// the peer is not a tracked member.
  SimTime follower_last_contact(PeerId follower) const;
  /// Follower-side counterpart: simulated time this node last accepted a
  /// message from a current leader (-1 before any contact or after
  /// stop()). A member whose log predates its own removal can use a long
  /// silence here as the only available eviction signal.
  SimTime last_leader_contact() const { return last_leader_contact_; }
  /// Check-quorum (leader side): true while a quorum of the current
  /// configuration has replied within the minimum election timeout.
  bool quorum_contact_recent() const;

  // --- client operations (leader only; nullopt when not leader) ---------
  /// Replicate an opaque command. Returns its log index.
  std::optional<Index> propose(Bytes command);

  /// Single-server membership changes. At most one may be in flight
  /// (uncommitted) at a time; returns nullopt if one already is, if not
  /// leader, or if the change is a no-op.
  std::optional<Index> propose_add_server(PeerId server);
  std::optional<Index> propose_remove_server(PeerId server);

  /// Leadership transfer (§3.10): bring `transferee` fully up to date
  /// happens via normal replication; this sends TimeoutNow so it
  /// campaigns immediately. Returns false when not leader or the target
  /// is not a member. Best effort: if the transferee is behind, it
  /// simply loses the election and this leader carries on.
  bool transfer_leadership(PeerId transferee);

  // --- callbacks ---------------------------------------------------------
  /// Fired (on every node, in log order) when a kCommand entry commits.
  std::function<void(Index, const LogEntry&)> on_apply;
  /// Fired on this node when it wins an election.
  std::function<void()> on_become_leader;
  /// Fired on this node when it loses leadership.
  std::function<void()> on_step_down;
  /// Fired when a new configuration is adopted (at append time, per the
  /// membership-change rule).
  std::function<void(const std::vector<PeerId>&)> on_config_adopted;
  /// Snapshot hooks (§7). save: serialize the application state machine
  /// at the moment of compaction (called with everything up to the
  /// compaction point applied). install: replace the state machine with
  /// a snapshot received from the leader (or restored at restart()).
  std::function<Bytes()> on_snapshot_save;
  std::function<void(Index, const Bytes&)> on_snapshot_install;
  /// Application payload (model-transfer units, Eq. (4)/(5)) carried by
  /// a snapshot state blob; charged on every InstallSnapshot send so
  /// state-transfer catch-up shows up in the payload byte accounting.
  /// Unset = snapshots are pure framing (payload 0).
  std::function<std::uint64_t(const Bytes&)> snapshot_payload;

  /// Compact the log through the last applied entry (§7). No-op unless
  /// something new has been applied since the previous snapshot.
  void compact();

  /// Leader-initiated state transfer: compact, refresh the snapshot's
  /// application blob from on_snapshot_save (the blob may carry state —
  /// e.g. the newest global model — that moved without log entries), and
  /// send InstallSnapshot to `to`. Returns false unless this node is a
  /// running leader with a snapshot to send.
  bool push_snapshot(PeerId to);

  Index snapshot_index() const { return log_.snapshot_index(); }

  /// True when the constructor replayed durable state from storage.
  /// Such a node should be resumed with restart(), not start().
  bool recovered_from_storage() const { return recovered_from_storage_; }

 private:
  // Role transitions.
  void become_follower(Term term, PeerId leader_hint);
  void start_election();
  void start_real_election();
  void become_leader();

  // RPC send side.
  void broadcast_request_vote();
  void send_append(PeerId to);
  void broadcast_append();

  // RPC receive side. Each RPC kind has its own typed route; the
  // handler fires only while running and only for the exact payload type
  // (a mismatched body — impossible through the codecs — is ignored).
  template <typename T, typename Fn>
  void route_rpc(const char* suffix, Fn handler) {
    host_.route(channel_ + suffix,
                [this, handler](const net::Envelope& env) {
                  if (!running_) return;
                  if (const T* m = net::payload<T>(env.body)) handler(*m);
                });
  }
  void handle_request_vote(const RequestVoteArgs& args);
  void handle_request_vote_reply(const RequestVoteReply& reply);
  void handle_append_entries(const AppendEntriesArgs& args);
  void handle_append_entries_reply(const AppendEntriesReply& reply);
  void send_install_snapshot(PeerId to);
  void handle_install_snapshot(const InstallSnapshotArgs& args);
  void handle_install_snapshot_reply(const InstallSnapshotReply& reply);
  void handle_timeout_now(const TimeoutNowArgs& args);
  void maybe_auto_compact();

  // Commit machinery.
  void advance_commit();
  void apply_committed();
  void adopt_latest_config();

  // Durability write-through (all no-ops when storage_ is null).
  void persist_term_vote();
  void persist_append(Index index, const LogEntry& entry);
  void persist_truncate(Index index);
  void persist_snapshot();
  void persist_sync();

  // Helpers.
  std::size_t quorum() const { return config_.size() / 2 + 1; }
  void reset_election_timer();
  SimDuration random_election_timeout();
  template <typename T>
  void send_rpc(PeerId to, const char* suffix, T args,
                std::uint64_t wire_bytes);

  const PeerId id_;
  const std::string channel_;
  const std::vector<PeerId> initial_members_;
  const RaftOptions opts_;
  net::Network& net_;
  net::PeerHost& host_;
  Storage* storage_ = nullptr;  // not owned; null = in-memory only
  bool recovered_from_storage_ = false;
  Rng rng_;

  // Persistent state (survives stop()/restart()).
  Term term_ = 0;
  PeerId voted_for_ = kNoPeer;
  RaftLog log_;
  /// Snapshot payload + membership at the snapshot point (persistent).
  Bytes snapshot_state_;
  std::vector<PeerId> snapshot_members_;

  // Volatile state.
  bool running_ = false;
  Role role_ = Role::kFollower;
  Index commit_ = 0;
  Index applied_ = 0;
  PeerId leader_hint_ = kNoPeer;
  std::vector<PeerId> config_;
  std::set<PeerId> votes_;
  std::map<PeerId, Index> next_index_;
  std::map<PeerId, Index> match_index_;
  Index pending_config_ = 0;  // index of uncommitted config change, 0 = none
  /// Leader-only: last reply time per follower (feeds the membership
  /// supervisor's suspicion clock). Cleared on step-down.
  std::map<PeerId, SimTime> follower_contact_;
  /// Leader-side causal spans: log index proposed -> applied here.
  /// Aborted (and cleared) on step-down.
  std::map<Index, obs::SpanId> replicate_spans_;
  /// Simulated time of the last valid leader contact (-1 = never).
  SimTime last_leader_contact_ = -1;
  bool first_timeout_pending_ = false;
  /// PreVote round in progress (role is still kCandidate but the term
  /// has not been incremented yet).
  bool prevote_phase_ = false;

  net::Timer election_timer_;
  net::Timer heartbeat_timer_;
  RaftMetrics metrics_;
};

}  // namespace p2pfl::raft
