#include "raft/log.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace p2pfl::raft {

Bytes encode_members(const std::vector<PeerId>& members) {
  std::vector<PeerId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  ByteWriter w;
  w.vec_u32(sorted);
  return w.take();
}

std::vector<PeerId> decode_members(const Bytes& data) {
  ByteReader r(data);
  return r.vec_u32<PeerId>();
}

Term RaftLog::term_at(Index idx) const {
  if (idx == 0) return 0;
  if (idx == snap_index_) return snap_term_;
  P2PFL_CHECK_MSG(idx > snap_index_, "index compacted away");
  P2PFL_CHECK(idx <= last_index());
  return entries_[idx - snap_index_ - 1].term;
}

const LogEntry& RaftLog::at(Index idx) const {
  P2PFL_CHECK(idx >= first_index() && idx <= last_index());
  return entries_[idx - snap_index_ - 1];
}

Index RaftLog::append(LogEntry entry) {
  entries_.push_back(std::move(entry));
  return last_index();
}

void RaftLog::truncate_from(Index idx) {
  P2PFL_CHECK_MSG(idx > snap_index_, "cannot truncate into the snapshot");
  if (idx <= last_index()) {
    entries_.resize(idx - snap_index_ - 1);
  }
}

void RaftLog::compact_to(Index idx) {
  P2PFL_CHECK(idx <= last_index());
  if (idx <= snap_index_) return;  // already compacted past there
  const Term boundary_term = term_at(idx);
  entries_.erase(entries_.begin(),
                 entries_.begin() +
                     static_cast<std::ptrdiff_t>(idx - snap_index_));
  snap_index_ = idx;
  snap_term_ = boundary_term;
}

void RaftLog::install_snapshot(Index idx, Term term) {
  entries_.clear();
  snap_index_ = idx;
  snap_term_ = term;
}

void RaftLog::restore(Index snap_index, Term snap_term,
                      std::vector<LogEntry> entries) {
  snap_index_ = snap_index;
  snap_term_ = snap_term;
  entries_ = std::move(entries);
}

std::vector<LogEntry> RaftLog::slice(Index from, std::size_t max) const {
  std::vector<LogEntry> out;
  if (from < first_index() || from > last_index()) return out;
  const std::size_t n =
      std::min<std::size_t>(max, last_index() - from + 1);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(entries_[from - snap_index_ - 1 + i]);
  }
  return out;
}

bool RaftLog::candidate_up_to_date(Index cand_last_index,
                                   Term cand_last_term) const {
  // §5.4.1: compare terms of the last entries; if equal, longer log wins.
  if (cand_last_term != last_term()) return cand_last_term > last_term();
  return cand_last_index >= last_index();
}

std::optional<Index> RaftLog::latest_config_index() const {
  for (Index i = last_index(); i >= first_index(); --i) {
    if (entries_[i - snap_index_ - 1].kind == EntryKind::kConfig) return i;
  }
  return std::nullopt;
}

}  // namespace p2pfl::raft
