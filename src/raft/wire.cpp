#include "raft/wire.hpp"

#include "net/codec.hpp"

namespace p2pfl::raft::wire {

namespace {

void put_entry(ByteWriter& w, const LogEntry& e) {
  w.u64(e.term);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.blob(e.data);
}

LogEntry get_entry(ByteReader& r) {
  LogEntry e;
  e.term = r.u64();
  e.kind = static_cast<EntryKind>(r.u8());
  e.data = r.blob();
  return e;
}

template <typename T, typename Fn>
std::optional<T> guarded(const Bytes& b, Fn fn) {
  ByteReader r(b);
  T out = fn(r);
  // Strict contract: every byte consumed, nothing read out of bounds.
  if (!r.complete()) return std::nullopt;
  return out;
}

}  // namespace

Bytes encode(const RequestVoteArgs& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.candidate);
  w.u64(m.last_log_index);
  w.u64(m.last_log_term);
  w.u8(m.pre_vote ? 1 : 0);
  return w.take();
}

std::optional<RequestVoteArgs> decode_request_vote(const Bytes& b) {
  return guarded<RequestVoteArgs>(b, [](ByteReader& r) {
    RequestVoteArgs m;
    m.term = r.u64();
    m.candidate = r.u32();
    m.last_log_index = r.u64();
    m.last_log_term = r.u64();
    m.pre_vote = r.u8() != 0;
    return m;
  });
}

Bytes encode(const RequestVoteReply& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u8(m.vote_granted ? 1 : 0);
  w.u32(m.voter);
  w.u8(m.pre_vote ? 1 : 0);
  return w.take();
}

std::optional<RequestVoteReply> decode_request_vote_reply(const Bytes& b) {
  return guarded<RequestVoteReply>(b, [](ByteReader& r) {
    RequestVoteReply m;
    m.term = r.u64();
    m.vote_granted = r.u8() != 0;
    m.voter = r.u32();
    m.pre_vote = r.u8() != 0;
    return m;
  });
}

Bytes encode(const AppendEntriesArgs& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.leader);
  w.u64(m.prev_log_index);
  w.u64(m.prev_log_term);
  w.u64(m.leader_commit);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const LogEntry& e : m.entries) put_entry(w, e);
  return w.take();
}

std::optional<AppendEntriesArgs> decode_append_entries(const Bytes& b) {
  return guarded<AppendEntriesArgs>(b, [](ByteReader& r) {
    AppendEntriesArgs m;
    m.term = r.u64();
    m.leader = r.u32();
    m.prev_log_index = r.u64();
    m.prev_log_term = r.u64();
    m.leader_commit = r.u64();
    const std::uint32_t n = r.u32();
    // Gate on ok(): a corrupted count must not drive a huge loop. Each
    // successful entry consumes >= 13 bytes, so iterations are bounded by
    // the buffer; the first failing read stops the loop.
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      m.entries.push_back(get_entry(r));
    }
    return m;
  });
}

Bytes encode(const AppendEntriesReply& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u8(m.success ? 1 : 0);
  w.u32(m.follower);
  w.u64(m.match_index);
  w.u64(m.conflict_index);
  return w.take();
}

std::optional<AppendEntriesReply> decode_append_entries_reply(
    const Bytes& b) {
  return guarded<AppendEntriesReply>(b, [](ByteReader& r) {
    AppendEntriesReply m;
    m.term = r.u64();
    m.success = r.u8() != 0;
    m.follower = r.u32();
    m.match_index = r.u64();
    m.conflict_index = r.u64();
    return m;
  });
}

Bytes encode(const InstallSnapshotArgs& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.leader);
  w.u64(m.last_included_index);
  w.u64(m.last_included_term);
  w.vec_u32(m.members);
  w.blob(m.app_state);
  return w.take();
}

std::optional<InstallSnapshotArgs> decode_install_snapshot(const Bytes& b) {
  return guarded<InstallSnapshotArgs>(b, [](ByteReader& r) {
    InstallSnapshotArgs m;
    m.term = r.u64();
    m.leader = r.u32();
    m.last_included_index = r.u64();
    m.last_included_term = r.u64();
    m.members = r.vec_u32<PeerId>();
    m.app_state = r.blob();
    return m;
  });
}

Bytes encode(const InstallSnapshotReply& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.follower);
  w.u64(m.match_index);
  return w.take();
}

std::optional<InstallSnapshotReply> decode_install_snapshot_reply(
    const Bytes& b) {
  return guarded<InstallSnapshotReply>(b, [](ByteReader& r) {
    InstallSnapshotReply m;
    m.term = r.u64();
    m.follower = r.u32();
    m.match_index = r.u64();
    return m;
  });
}

Bytes encode(const TimeoutNowArgs& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.leader);
  return w.take();
}

std::optional<TimeoutNowArgs> decode_timeout_now(const Bytes& b) {
  return guarded<TimeoutNowArgs>(b, [](ByteReader& r) {
    TimeoutNowArgs m;
    m.term = r.u64();
    m.leader = r.u32();
    return m;
  });
}

namespace {

/// Build a registry Codec for one RPC type from its free encode/decode
/// pair plus a sample generator and field-wise equality.
template <typename T>
net::Codec make_codec(std::string key, std::optional<T> (*decode_fn)(const Bytes&),
                      T (*sample_fn)(Rng&, const net::WireSample&),
                      bool (*eq_fn)(const T&, const T&)) {
  net::Codec c;
  c.key = std::move(key);
  c.encode = [](const std::any& body) -> std::optional<Bytes> {
    const T* m = net::payload<T>(body);
    if (m == nullptr) return std::nullopt;
    return encode(*m);
  };
  c.decode = [decode_fn](const Bytes& b) -> std::optional<std::any> {
    std::optional<T> m = decode_fn(b);
    if (!m.has_value()) return std::nullopt;
    return std::any(std::move(*m));
  };
  c.sample = [sample_fn](Rng& rng, const net::WireSample& s) -> std::any {
    return sample_fn(rng, s);
  };
  c.equals = [eq_fn](const std::any& a, const std::any& b) {
    const T* x = net::payload<T>(a);
    const T* y = net::payload<T>(b);
    return x != nullptr && y != nullptr && eq_fn(*x, *y);
  };
  return c;
}

LogEntry sample_entry(Rng& rng, const net::WireSample& s) {
  LogEntry e;
  e.term = rng.uniform_int(1, 9);
  e.kind = static_cast<EntryKind>(rng.index(3));
  e.data.resize(rng.index(s.n * 4 + 1));
  for (auto& b : e.data) b = static_cast<std::uint8_t>(rng.index(256));
  return e;
}

RequestVoteArgs sample_rv(Rng& rng, const net::WireSample& s) {
  RequestVoteArgs m;
  m.term = rng.uniform_int(1, 9);
  m.candidate = static_cast<PeerId>(rng.index(s.n));
  m.last_log_index = rng.uniform_int(0, 99);
  m.last_log_term = rng.uniform_int(0, 9);
  m.pre_vote = rng.chance(0.5);
  return m;
}

RequestVoteReply sample_rvr(Rng& rng, const net::WireSample& s) {
  RequestVoteReply m;
  m.term = rng.uniform_int(1, 9);
  m.vote_granted = rng.chance(0.5);
  m.voter = static_cast<PeerId>(rng.index(s.n));
  m.pre_vote = rng.chance(0.5);
  return m;
}

AppendEntriesArgs sample_ae(Rng& rng, const net::WireSample& s) {
  AppendEntriesArgs m;
  m.term = rng.uniform_int(1, 9);
  m.leader = static_cast<PeerId>(rng.index(s.n));
  m.prev_log_index = rng.uniform_int(0, 99);
  m.prev_log_term = rng.uniform_int(0, 9);
  m.leader_commit = rng.uniform_int(0, 99);
  const std::size_t count = rng.index(3);
  for (std::size_t i = 0; i < count; ++i) {
    m.entries.push_back(sample_entry(rng, s));
  }
  return m;
}

AppendEntriesReply sample_aer(Rng& rng, const net::WireSample& s) {
  AppendEntriesReply m;
  m.term = rng.uniform_int(1, 9);
  m.success = rng.chance(0.5);
  m.follower = static_cast<PeerId>(rng.index(s.n));
  m.match_index = rng.uniform_int(0, 99);
  m.conflict_index = rng.uniform_int(0, 99);
  return m;
}

InstallSnapshotArgs sample_is(Rng& rng, const net::WireSample& s) {
  InstallSnapshotArgs m;
  m.term = rng.uniform_int(1, 9);
  m.leader = static_cast<PeerId>(rng.index(s.n));
  m.last_included_index = rng.uniform_int(1, 99);
  m.last_included_term = rng.uniform_int(1, 9);
  for (std::size_t i = 0; i < s.n; ++i) m.members.push_back(static_cast<PeerId>(i));
  m.app_state.resize(rng.index(32) + 1);
  for (auto& b : m.app_state) b = static_cast<std::uint8_t>(rng.index(256));
  return m;
}

InstallSnapshotReply sample_isr(Rng& rng, const net::WireSample& s) {
  InstallSnapshotReply m;
  m.term = rng.uniform_int(1, 9);
  m.follower = static_cast<PeerId>(rng.index(s.n));
  m.match_index = rng.uniform_int(0, 99);
  return m;
}

TimeoutNowArgs sample_tn(Rng& rng, const net::WireSample& s) {
  TimeoutNowArgs m;
  m.term = rng.uniform_int(1, 9);
  m.leader = static_cast<PeerId>(rng.index(s.n));
  return m;
}

bool eq_rv(const RequestVoteArgs& a, const RequestVoteArgs& b) {
  return a.term == b.term && a.candidate == b.candidate &&
         a.last_log_index == b.last_log_index &&
         a.last_log_term == b.last_log_term && a.pre_vote == b.pre_vote;
}

bool eq_rvr(const RequestVoteReply& a, const RequestVoteReply& b) {
  return a.term == b.term && a.vote_granted == b.vote_granted &&
         a.voter == b.voter && a.pre_vote == b.pre_vote;
}

bool eq_ae(const AppendEntriesArgs& a, const AppendEntriesArgs& b) {
  return a.term == b.term && a.leader == b.leader &&
         a.prev_log_index == b.prev_log_index &&
         a.prev_log_term == b.prev_log_term && a.entries == b.entries &&
         a.leader_commit == b.leader_commit;
}

bool eq_aer(const AppendEntriesReply& a, const AppendEntriesReply& b) {
  return a.term == b.term && a.success == b.success &&
         a.follower == b.follower && a.match_index == b.match_index &&
         a.conflict_index == b.conflict_index;
}

bool eq_is(const InstallSnapshotArgs& a, const InstallSnapshotArgs& b) {
  return a.term == b.term && a.leader == b.leader &&
         a.last_included_index == b.last_included_index &&
         a.last_included_term == b.last_included_term &&
         a.members == b.members && a.app_state == b.app_state;
}

bool eq_isr(const InstallSnapshotReply& a, const InstallSnapshotReply& b) {
  return a.term == b.term && a.follower == b.follower &&
         a.match_index == b.match_index;
}

bool eq_tn(const TimeoutNowArgs& a, const TimeoutNowArgs& b) {
  return a.term == b.term && a.leader == b.leader;
}

}  // namespace

void register_codecs() {
  static const bool once = [] {
    auto& reg = net::CodecRegistry::global();
    reg.add(make_codec<RequestVoteArgs>("raft:rv", &decode_request_vote,
                                        &sample_rv, &eq_rv));
    reg.add(make_codec<RequestVoteReply>("raft:rvr", &decode_request_vote_reply,
                                         &sample_rvr, &eq_rvr));
    reg.add(make_codec<AppendEntriesArgs>("raft:ae", &decode_append_entries,
                                          &sample_ae, &eq_ae));
    reg.add(make_codec<AppendEntriesReply>(
        "raft:aer", &decode_append_entries_reply, &sample_aer, &eq_aer));
    reg.add(make_codec<InstallSnapshotArgs>(
        "raft:is", &decode_install_snapshot, &sample_is, &eq_is));
    reg.add(make_codec<InstallSnapshotReply>(
        "raft:isr", &decode_install_snapshot_reply, &sample_isr, &eq_isr));
    reg.add(make_codec<TimeoutNowArgs>("raft:tn", &decode_timeout_now,
                                       &sample_tn, &eq_tn));
    return true;
  }();
  (void)once;
}

}  // namespace p2pfl::raft::wire
