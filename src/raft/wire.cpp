#include "raft/wire.hpp"

#include <stdexcept>

namespace p2pfl::raft::wire {

namespace {

void put_entry(ByteWriter& w, const LogEntry& e) {
  w.u64(e.term);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u32(static_cast<std::uint32_t>(e.data.size()));
  for (std::uint8_t b : e.data) w.u8(b);
}

LogEntry get_entry(ByteReader& r) {
  LogEntry e;
  e.term = r.u64();
  e.kind = static_cast<EntryKind>(r.u8());
  const std::uint32_t len = r.u32();
  e.data.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) e.data.push_back(r.u8());
  return e;
}

template <typename T, typename Fn>
std::optional<T> guarded(const Bytes& b, Fn fn) {
  try {
    ByteReader r(b);
    T out = fn(r);
    if (!r.exhausted()) return std::nullopt;  // trailing garbage
    return out;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

}  // namespace

Bytes encode(const RequestVoteArgs& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.candidate);
  w.u64(m.last_log_index);
  w.u64(m.last_log_term);
  w.u8(m.pre_vote ? 1 : 0);
  return w.take();
}

std::optional<RequestVoteArgs> decode_request_vote(const Bytes& b) {
  return guarded<RequestVoteArgs>(b, [](ByteReader& r) {
    RequestVoteArgs m;
    m.term = r.u64();
    m.candidate = r.u32();
    m.last_log_index = r.u64();
    m.last_log_term = r.u64();
    m.pre_vote = r.u8() != 0;
    return m;
  });
}

Bytes encode(const RequestVoteReply& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u8(m.vote_granted ? 1 : 0);
  w.u32(m.voter);
  w.u8(m.pre_vote ? 1 : 0);
  return w.take();
}

std::optional<RequestVoteReply> decode_request_vote_reply(const Bytes& b) {
  return guarded<RequestVoteReply>(b, [](ByteReader& r) {
    RequestVoteReply m;
    m.term = r.u64();
    m.vote_granted = r.u8() != 0;
    m.voter = r.u32();
    m.pre_vote = r.u8() != 0;
    return m;
  });
}

Bytes encode(const AppendEntriesArgs& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.leader);
  w.u64(m.prev_log_index);
  w.u64(m.prev_log_term);
  w.u64(m.leader_commit);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const LogEntry& e : m.entries) put_entry(w, e);
  return w.take();
}

std::optional<AppendEntriesArgs> decode_append_entries(const Bytes& b) {
  return guarded<AppendEntriesArgs>(b, [](ByteReader& r) {
    AppendEntriesArgs m;
    m.term = r.u64();
    m.leader = r.u32();
    m.prev_log_index = r.u64();
    m.prev_log_term = r.u64();
    m.leader_commit = r.u64();
    const std::uint32_t n = r.u32();
    m.entries.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) m.entries.push_back(get_entry(r));
    return m;
  });
}

Bytes encode(const AppendEntriesReply& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u8(m.success ? 1 : 0);
  w.u32(m.follower);
  w.u64(m.match_index);
  w.u64(m.conflict_index);
  return w.take();
}

std::optional<AppendEntriesReply> decode_append_entries_reply(
    const Bytes& b) {
  return guarded<AppendEntriesReply>(b, [](ByteReader& r) {
    AppendEntriesReply m;
    m.term = r.u64();
    m.success = r.u8() != 0;
    m.follower = r.u32();
    m.match_index = r.u64();
    m.conflict_index = r.u64();
    return m;
  });
}

Bytes encode(const InstallSnapshotArgs& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.leader);
  w.u64(m.last_included_index);
  w.u64(m.last_included_term);
  w.vec_u32(m.members);
  w.u32(static_cast<std::uint32_t>(m.app_state.size()));
  for (std::uint8_t b : m.app_state) w.u8(b);
  return w.take();
}

std::optional<InstallSnapshotArgs> decode_install_snapshot(const Bytes& b) {
  return guarded<InstallSnapshotArgs>(b, [](ByteReader& r) {
    InstallSnapshotArgs m;
    m.term = r.u64();
    m.leader = r.u32();
    m.last_included_index = r.u64();
    m.last_included_term = r.u64();
    m.members = r.vec_u32<PeerId>();
    const std::uint32_t len = r.u32();
    m.app_state.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) m.app_state.push_back(r.u8());
    return m;
  });
}

Bytes encode(const InstallSnapshotReply& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.follower);
  w.u64(m.match_index);
  return w.take();
}

std::optional<InstallSnapshotReply> decode_install_snapshot_reply(
    const Bytes& b) {
  return guarded<InstallSnapshotReply>(b, [](ByteReader& r) {
    InstallSnapshotReply m;
    m.term = r.u64();
    m.follower = r.u32();
    m.match_index = r.u64();
    return m;
  });
}

Bytes encode(const TimeoutNowArgs& m) {
  ByteWriter w;
  w.u64(m.term);
  w.u32(m.leader);
  return w.take();
}

std::optional<TimeoutNowArgs> decode_timeout_now(const Bytes& b) {
  return guarded<TimeoutNowArgs>(b, [](ByteReader& r) {
    TimeoutNowArgs m;
    m.term = r.u64();
    m.leader = r.u32();
    return m;
  });
}

}  // namespace p2pfl::raft::wire
