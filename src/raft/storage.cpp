#include "raft/storage.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"

namespace p2pfl::raft {
namespace {

// WAL record types (first payload byte).
constexpr std::uint8_t kTermVote = 1;
constexpr std::uint8_t kEntryRec = 2;
constexpr std::uint8_t kTruncateRec = 3;
constexpr std::uint8_t kSnapshotMark = 4;

Bytes encode_term_vote(Term term, PeerId voted_for) {
  ByteWriter w;
  w.u8(kTermVote);
  w.u64(term);
  w.u32(voted_for);
  return w.take();
}

Bytes encode_entry(Index index, const LogEntry& e) {
  ByteWriter w;
  w.u8(kEntryRec);
  w.u64(index);
  w.u64(e.term);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.blob(e.data);
  return w.take();
}

Bytes encode_truncate(Index from) {
  ByteWriter w;
  w.u8(kTruncateRec);
  w.u64(from);
  return w.take();
}

Bytes encode_mark(Index index, Term term) {
  ByteWriter w;
  w.u8(kSnapshotMark);
  w.u64(index);
  w.u64(term);
  return w.take();
}

/// Frame: [u32 LE len][u32 LE crc32(payload)][payload].
void append_framed(Bytes& out, const Bytes& payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload.data(), payload.size()));
  Bytes hdr = w.take();
  out.insert(out.end(), hdr.begin(), hdr.end());
  out.insert(out.end(), payload.begin(), payload.end());
}

std::uint32_t read_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      P2PFL_CHECK_MSG(false, "raft WAL write failed");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool read_file(const std::string& path, Bytes& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  ::close(fd);
  return true;
}

/// tmp + fsync + rename: the target is either the old file or the new
/// one, never a torn hybrid.
void atomic_write(const std::string& path, const Bytes& data, bool do_fsync) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  P2PFL_CHECK_MSG(fd >= 0, "raft WAL tmp open failed");
  write_all(fd, data.data(), data.size());
  if (do_fsync) ::fsync(fd);
  ::close(fd);
  P2PFL_CHECK_MSG(::rename(tmp.c_str(), path.c_str()) == 0,
                  "raft WAL rename failed");
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

WalStorage::WalStorage(std::string prefix, WalOptions opts)
    : prefix_(std::move(prefix)), opts_(opts) {}

WalStorage::~WalStorage() { close_fd(); }

bool WalStorage::exists(const std::string& prefix) {
  return ::access((prefix + ".wal").c_str(), F_OK) == 0;
}

void WalStorage::close_fd() {
  if (fd_ >= 0) {
    if (dirty_ && opts_.fsync) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
    dirty_ = false;
  }
}

void WalStorage::open_wal_for_append() {
  close_fd();
  fd_ = ::open(wal_path().c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  P2PFL_CHECK_MSG(fd_ >= 0, "raft WAL open failed");
}

PersistentState WalStorage::load() {
  const auto t0 = std::chrono::steady_clock::now();
  close_fd();
  recovery_ = RecoveryInfo{};
  PersistentState st;

  // Latest durable snapshot, if any. A bad CRC means the file is trash
  // (atomic replace should prevent this); ignore it.
  Index file_snap_index = 0;
  Term file_snap_term = 0;
  std::vector<PeerId> file_members;
  Bytes file_app;
  bool have_snap_file = false;
  {
    Bytes raw;
    if (read_file(snap_path(), raw) && raw.size() >= 8) {
      const std::uint32_t len = read_u32_le(raw.data());
      const std::uint32_t crc = read_u32_le(raw.data() + 4);
      if (len <= opts_.max_record_bytes && 8 + len <= raw.size() &&
          crc32(raw.data() + 8, len) == crc) {
        const Bytes payload(raw.begin() + 8, raw.begin() + 8 + len);
        ByteReader r(payload);
        file_snap_index = r.u64();
        file_snap_term = r.u64();
        file_members = r.vec_u32<PeerId>();
        file_app = r.blob();
        have_snap_file = r.complete();
      }
    }
  }

  // Sequential WAL scan. The first invalid record (short header, bogus
  // length, CRC mismatch, or undecodable payload) ends the scan; the
  // file is truncated at the last good offset.
  Bytes wal;
  const bool had_wal = read_file(wal_path(), wal);
  std::size_t off = 0;
  bool bad_tail = false;
  while (off + 8 <= wal.size()) {
    const std::uint32_t len = read_u32_le(wal.data() + off);
    const std::uint32_t crc = read_u32_le(wal.data() + off + 4);
    if (len > opts_.max_record_bytes || off + 8 + len > wal.size() ||
        crc32(wal.data() + off + 8, len) != crc) {
      bad_tail = true;
      break;
    }
    const Bytes rec_payload(wal.begin() + static_cast<long>(off) + 8,
                            wal.begin() + static_cast<long>(off) + 8 + len);
    ByteReader r(rec_payload);
    const std::uint8_t type = r.u8();
    bool ok = true;
    switch (type) {
      case kTermVote: {
        const Term term = r.u64();
        const PeerId vote = r.u32();
        if ((ok = r.complete())) {
          st.term = term;
          st.voted_for = vote;
        }
        break;
      }
      case kEntryRec: {
        const Index idx = r.u64();
        LogEntry e;
        e.term = r.u64();
        e.kind = static_cast<EntryKind>(r.u8());
        e.data = r.blob();
        if ((ok = r.complete())) {
          const Index last = st.snap_index + st.entries.size();
          if (idx <= st.snap_index || idx > last + 1) {
            ok = false;  // stale or gapped index: corruption
          } else {
            if (idx <= last) st.entries.resize(idx - st.snap_index - 1);
            st.entries.push_back(std::move(e));
          }
        }
        break;
      }
      case kTruncateRec: {
        const Index from = r.u64();
        if ((ok = r.complete()) && from > st.snap_index) {
          const Index last = st.snap_index + st.entries.size();
          if (from <= last) st.entries.resize(from - st.snap_index - 1);
        }
        break;
      }
      case kSnapshotMark: {
        const Index idx = r.u64();
        const Term term = r.u64();
        if ((ok = r.complete())) {
          const Index last = st.snap_index + st.entries.size();
          if (idx >= last) {
            st.entries.clear();
          } else if (idx > st.snap_index) {
            st.entries.erase(st.entries.begin(),
                             st.entries.begin() +
                                 static_cast<long>(idx - st.snap_index));
          }
          st.snap_index = idx;
          st.snap_term = term;
        }
        break;
      }
      default:
        ok = false;
        break;
    }
    if (!ok) {
      bad_tail = true;
      break;
    }
    ++recovery_.records;
    off += 8 + len;
  }
  if (off + 8 > wal.size() && off < wal.size()) bad_tail = true;

  if (bad_tail || off < wal.size()) {
    recovery_.truncated_tail = true;
    recovery_.bytes_discarded = wal.size() - off;
    const int fd = ::open(wal_path().c_str(), O_WRONLY);
    if (fd >= 0) {
      P2PFL_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(off)) == 0,
                      "raft WAL truncate failed");
      if (opts_.fsync) ::fsync(fd);
      ::close(fd);
    }
  }

  // Reconcile with the snapshot file. A snapshot newer than the WAL's
  // mark is the crash window between snapshot rename and WAL rewrite:
  // the snapshot is complete, adopt it.
  if (have_snap_file && file_snap_index >= st.snap_index) {
    const Index last = st.snap_index + st.entries.size();
    if (file_snap_index >= last) {
      st.entries.clear();
    } else if (file_snap_index > st.snap_index) {
      st.entries.erase(st.entries.begin(),
                       st.entries.begin() +
                           static_cast<long>(file_snap_index - st.snap_index));
    }
    st.snap_index = file_snap_index;
    st.snap_term = file_snap_term;
    st.snap_members = file_members;
    st.snap_app_state = file_app;
    recovery_.snapshot_loaded = true;
  } else if (st.snap_index > 0) {
    // The WAL references a snapshot we cannot reconstruct (missing or
    // older .snap). State below the boundary is gone — the only safe
    // answer is a fresh start; the membership layer treats it as an
    // amnesia restart and rejoins with state transfer.
    P2PFL_WARN() << "raft WAL " << wal_path() << " references snapshot index "
                 << st.snap_index
                 << " but no matching .snap exists; discarding state";
    st = PersistentState{};
    ::unlink(wal_path().c_str());
    ::unlink(snap_path().c_str());
    recovery_.records = 0;
  }

  st.has_state =
      (had_wal && recovery_.records > 0) || recovery_.snapshot_loaded;
  recovery_.recovered = st.has_state;
  open_wal_for_append();
  recovery_.duration_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return st;
}

void WalStorage::append_record(const Bytes& payload) {
  P2PFL_CHECK_MSG(fd_ >= 0, "WalStorage::load() must run before mutations");
  Bytes framed;
  append_framed(framed, payload);
  write_all(fd_, framed.data(), framed.size());
  dirty_ = true;
}

void WalStorage::persist_term_vote(Term term, PeerId voted_for) {
  append_record(encode_term_vote(term, voted_for));
}

void WalStorage::append_entry(Index index, const LogEntry& entry) {
  append_record(encode_entry(index, entry));
}

void WalStorage::truncate_from(Index index) {
  append_record(encode_truncate(index));
}

void WalStorage::save_snapshot(Index index, Term term,
                               const std::vector<PeerId>& members,
                               const Bytes& app_state, Term current_term,
                               PeerId voted_for,
                               const std::vector<LogEntry>& tail) {
  // 1. Durable snapshot content first: once the .snap rename lands, a
  //    crash before the WAL rewrite still recovers (load() adopts the
  //    newer snapshot over the old WAL).
  {
    ByteWriter w;
    w.u64(index);
    w.u64(term);
    w.vec_u32(members);
    w.blob(app_state);
    Bytes framed;
    const Bytes payload = w.take();
    append_framed(framed, payload);
    atomic_write(snap_path(), framed, opts_.fsync);
  }
  // 2. Rewrite the WAL from scratch: term/vote, the snapshot mark, and
  //    the surviving tail. This is what bounds WAL growth.
  std::vector<Bytes> payloads;
  payloads.reserve(2 + tail.size());
  payloads.push_back(encode_term_vote(current_term, voted_for));
  payloads.push_back(encode_mark(index, term));
  Index idx = index;
  for (const LogEntry& e : tail) payloads.push_back(encode_entry(++idx, e));
  rewrite_wal(payloads);
}

void WalStorage::rewrite_wal(const std::vector<Bytes>& payloads) {
  Bytes framed;
  for (const Bytes& p : payloads) append_framed(framed, p);
  close_fd();
  atomic_write(wal_path(), framed, opts_.fsync);
  open_wal_for_append();
}

void WalStorage::sync() {
  if (dirty_ && opts_.fsync && fd_ >= 0) ::fsync(fd_);
  dirty_ = false;
}

void WalStorage::wipe() {
  close_fd();
  ::unlink(wal_path().c_str());
  ::unlink(snap_path().c_str());
  ::unlink((wal_path() + ".tmp").c_str());
  ::unlink((snap_path() + ".tmp").c_str());
  recovery_ = RecoveryInfo{};
  open_wal_for_append();
}

}  // namespace p2pfl::raft
