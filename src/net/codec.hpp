// Codec registry: one canonical binary codec per protocol message kind.
//
// Every message that crosses net::Network rides as a typed std::any for
// speed, but its accounted wire size must be honest. Each protocol layer
// (raft/wire, secagg/wire, core/wire) registers a Codec here for every
// message it sends; the network consults the registry to
//
//  * encode-verify: at send time, encode the payload and assert the
//    charged wire_bytes equals the encoded length (plus the declared
//    modeled-payload delta, see Envelope::modeled_delta), and
//  * corruption faults: chaos bit-flips/truncations operate on the real
//    encoding, and the receiver-side decode either recovers a typed
//    message or drops the envelope with reason "corrupt".
//
// Kinds are channel-qualified ("sac/sg2/share", "raft/fed/ae"), so the
// registry is keyed by the channel-independent codec key
// "<family>:<op>" — the kind's first path segment plus its last
// ("raft/sg0/rv" -> "raft:rv", "join" -> "join"). The sample/equals
// hooks drive the exhaustive round-trip + truncation-fuzz property test
// and the `p2pflctl wire` catalog.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace p2pfl::net {

struct Envelope;

/// Shape parameters for Codec::sample: a plausible random instance for a
/// deployment with `dim`-parameter models in subgroups of `n` with
/// reconstruction threshold `k`.
struct WireSample {
  std::size_t dim = 8;
  std::size_t n = 4;
  std::size_t k = 3;
  std::uint64_t round = 1;
};

struct Codec {
  /// Channel-independent key, e.g. "raft:ae" or "sac:share".
  std::string key;
  /// Encode the std::any payload; nullopt if the body is not this type.
  std::function<std::optional<Bytes>(const std::any&)> encode;
  /// Strict decode; nullopt on truncated / malformed / trailing input.
  std::function<std::optional<std::any>(const Bytes&)> decode;
  /// Random plausible instance for the given shape (fuzz + catalog).
  std::function<std::any(Rng&, const WireSample&)> sample;
  /// Deep equality of two payloads of this type (round-trip checks).
  std::function<bool(const std::any&, const std::any&)> equals;
};

class CodecRegistry {
 public:
  /// The process-wide registry every protocol layer registers into.
  static CodecRegistry& global();

  /// Register (or replace) a codec under codec.key.
  void add(Codec codec);

  /// Codec key for a channel-qualified kind: first path segment + ":" +
  /// last path segment ("raft/sg1/ae" -> "raft:ae"); a kind without '/'
  /// is its own key ("join" -> "join").
  static std::string key_of_kind(const std::string& kind);

  const Codec* find_key(const std::string& key) const;
  const Codec* find_kind(const std::string& kind) const;

  /// All registered codecs, ordered by key.
  std::vector<const Codec*> all() const;

 private:
  std::map<std::string, Codec> codecs_;
};

/// Typed payload access: nullptr when the body holds a different type
/// (never throws, unlike std::any_cast on a reference).
template <typename T>
const T* payload(const std::any& body) {
  return std::any_cast<T>(&body);
}

}  // namespace p2pfl::net
