// Backend-agnostic transport-fault state, applied at the frame boundary.
//
// The chaos engine's probabilistic faults (drop/dup/corrupt/reorder)
// live in net::Network and draw from the deterministic fault RNG; this
// class holds the *transport-native* faults that make sense on a real
// wire too: half-open stall windows (a direction of a link silently
// stops moving frames) and slow-writer throttling (a peer's egress is
// clamped to a byte rate). Both transports honor the same injector:
//
//  * SimTransport asks frame_delay() per frame and adds the hold to the
//    modeled delivery delay. A per-link release floor keeps delivery
//    FIFO: a frame sent after a stall clears can never overtake frames
//    still being held on the same link.
//  * TcpTransport asks writable_at() before flushing a connection's
//    outbound queue and re-arms its flush timer until the hold clears,
//    so stalled/throttled frames accumulate in the (bounded) queue
//    exactly like a real slow or wedged peer; note_written() charges
//    actual bytes against the throttle.
//
// The injector draws no randomness — it is pure deterministic state —
// so installing one never perturbs the chaos RNG stream, and a null
// injector (the default on every transport) is byte-for-byte the
// pre-fault-seam behavior.
//
// Thread-safety: all methods lock; on TCP the engine mutates from timer
// callbacks on the loop thread while tests may mutate from the driver
// thread.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "common/types.hpp"
#include "obs/obs.hpp"

namespace p2pfl::net {

class FaultInjector {
 public:
  explicit FaultInjector(obs::Observability& obs);

  /// Stall one direction of a link: frames from->to are held until
  /// `until` (transport time). Extending an active window is fine.
  void stall_link(PeerId from, PeerId to, SimTime until);
  /// Stall both directions (a half-open TCP peer or a reset outage).
  void stall_pair(PeerId a, PeerId b, SimTime until);

  /// Clamp `peer`'s egress to `bytes_per_sec` until `until`.
  void throttle_peer(PeerId peer, std::uint64_t bytes_per_sec, SimTime until);

  /// Drop all fault state (heal).
  void clear(SimTime now);

  /// --- sim path: per-frame extra delivery delay ----------------------
  /// Extra hold (>= 0) for a frame of `bytes` sent now on from->to.
  /// Accounts the frame against the sender's throttle and advances the
  /// link's FIFO release floor.
  SimDuration frame_delay(PeerId from, PeerId to, std::uint64_t bytes,
                          SimTime now);

  /// --- tcp path: write gating -----------------------------------------
  /// Earliest transport time the from->to connection may write (now if
  /// unconstrained). The TCP flush loop re-arms a timer at this time.
  SimTime writable_at(PeerId from, PeerId to, SimTime now);
  /// Charge `bytes` actually written by `from` against its throttle.
  void note_written(PeerId from, std::uint64_t bytes, SimTime now);

  /// Any stall or throttle currently installed (cheap liveness probe).
  bool active() const;

 private:
  struct Throttle {
    std::uint64_t bytes_per_sec = 0;
    SimTime until = 0;
    SimTime free_at = 0;  // egress busy until here (serialization model)
  };

  using Link = std::pair<PeerId, PeerId>;

  SimTime stall_until_locked(PeerId from, PeerId to, SimTime now);

  mutable std::mutex mu_;
  std::map<Link, SimTime> stalls_;
  std::map<Link, SimTime> release_floor_;
  std::map<PeerId, Throttle> throttles_;

  obs::Counter& stall_windows_;
  obs::Counter& throttle_windows_;
  obs::Counter& stalled_frames_;
  obs::Counter& throttled_frames_;
};

}  // namespace p2pfl::net
