// The canonical message frame crossing the net::Transport seam.
//
// An Envelope is one protocol message in flight: typed body, exact
// charged wire size (split into Eq. (4)/(5) payload units and framing
// overhead), causal span context, and the delivery-safety metadata the
// fault model needs (destination incarnation, chaos-duplicate marker).
// net::Network builds and accounts envelopes; the Transport behind it
// moves them — as pooled in-memory records on the deterministic
// simulator, or as length-prefixed codec bytes on a real socket.
#pragma once

#include <any>
#include <cstdint>
#include <string>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "obs/span.hpp"

namespace p2pfl::net {

/// One message on the wire. `body` is a typed payload (receivers access
/// it through net::payload<T>); `wire_bytes` is the size accounted for
/// cost analysis. When the network's encode-verify mode is on (the
/// default) and a codec is registered for the kind, the charge is
/// asserted against the real encoding at send time:
///   wire_bytes == encoded-length + modeled_delta.
struct Envelope {
  PeerId from = kNoPeer;
  PeerId to = kNoPeer;
  std::string kind;
  std::any body;
  std::uint64_t wire_bytes = 0;
  /// Model-data portion of wire_bytes, in the |w|-unit accounting of the
  /// paper's Eq. (4)/(5) (0 for pure control messages). The closed-form
  /// cost models count these bytes; wire_bytes additionally carries the
  /// codec's framing overhead.
  std::uint64_t payload_bytes = 0;
  /// Bytes the charge models beyond the real encoding: experiments
  /// simulate e.g. a 1.25M-parameter CNN (5 MB per transfer) while
  /// computing on tiny vectors, so the charged wire size exceeds the
  /// materialized encoding by exactly this declared amount (negative if
  /// the modeled payload is smaller). 0 = the charge is byte-exact.
  std::int64_t modeled_delta = 0;
  /// Causal context (round id + span id). Stamped by the sender's
  /// current span at send time when unset; in flight it names the
  /// delivery's own link span (the parent chain lives in the recorder).
  obs::SpanContext span;
  /// Chaos-duplicated copy: delivered normally but accounted under a
  /// distinct label so per-kind byte counts stay Eq. (4)/(5)-exact.
  bool chaos_duplicate = false;
  /// Incarnation of the destination peer this message was addressed to,
  /// stamped by the network at send time. A crash bumps the target's
  /// incarnation, so messages still in flight toward the dead process
  /// are never delivered to its successor (dropped with reason
  /// "stale_incarnation") — the property amnesia restarts rely on.
  std::uint64_t dest_incarnation = 0;
};

/// Charged sizes of one message: the full on-the-wire size, the
/// |w|-unit model-data portion, and the declared modeled-payload delta
/// (see the Envelope fields of the same names).
struct WireSize {
  std::uint64_t wire = 0;
  std::uint64_t payload = 0;
  std::int64_t modeled = 0;
};

/// A chaos-corrupted payload in flight: the message's real encoding with
/// bits flipped or bytes truncated. The receiving side of the network
/// decodes it through the codec registry — a surviving decode is
/// delivered typed, a failing one is dropped with reason "corrupt".
struct CorruptPayload {
  Bytes wire;
};

}  // namespace p2pfl::net
