// Threaded TCP backend of the net::Transport seam.
//
// One TcpTransport hosts a whole mesh of peers inside one process: every
// hosted peer gets its own loopback listener, directed peer pairs get
// lazy outbound connections, and a single epoll event-loop thread owns
// all sockets, all timers and every protocol callback. That last point
// is the seam contract that keeps the actors lock-free: frame
// deliveries, timer fires and peer up/down notifications are all
// serialized on the loop thread, exactly as the simulator serializes
// them on its caller thread.
//
//  * Frames are the canonical length-prefixed codec encodings
//    (src/net/tcp/frame.hpp); arbitrary kernel chunking is reassembled
//    by FrameAssembler, so partial reads and coalesced frames are
//    routine, not errors.
//  * The clock is CLOCK_MONOTONIC microseconds since construction;
//    timers ride a min-heap with lazy cancellation and fire at-or-after
//    their deadline on the loop thread.
//  * A broken connection is retried with exponential backoff
//    (reconnect_backoff_min doubling up to reconnect_backoff_max);
//    frames queued while disconnected are flushed on reconnect, frames
//    already handed to the kernel are lost with the connection — the
//    protocols above already tolerate message loss.
//  * shutdown() briefly flushes pending writes, then stops and joins
//    the loop thread and closes every socket. Destruction shuts down.
//
// Cross-thread entry points (send_frame off-thread, schedule_after,
// post/call) funnel through an eventfd-woken task queue; everything else
// is loop-thread-only. Accounting reads (Network::stats) are only safe
// on the loop thread (use call()) or after shutdown().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/tcp/frame.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace p2pfl::net::tcp {

struct TcpTransportConfig {
  /// Peers hosted by this transport (each gets a loopback listener).
  std::vector<PeerId> peers;
  /// Seed of the transport's root RNG (actors fork from it, as they fork
  /// from the simulator's).
  std::uint64_t seed = 1;
  /// Reconnect backoff: first retry after min, doubling to max.
  SimDuration reconnect_backoff_min = 20 * kMillisecond;
  SimDuration reconnect_backoff_max = 500 * kMillisecond;
  /// Jitter each reconnect delay uniformly in [backoff/2, backoff] so a
  /// mesh of peers retrying a dead target never synchronizes into a
  /// reconnect storm.
  bool reconnect_jitter = true;
  /// Per-directed-pair outbound queue cap, in frames. When a dead or
  /// stalled peer lets the queue reach the cap, the oldest *undelivered*
  /// frame is dropped (never the partially-written front, which would
  /// tear the stream) and `net.tcp.outq_dropped` counts it. 0 = no cap.
  std::size_t max_outq_frames = 4096;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportConfig cfg);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // --- Transport --------------------------------------------------------
  const char* name() const override { return "tcp"; }
  bool deterministic() const override { return false; }
  SimTime now() const override;
  TimerToken schedule_after(SimDuration delay,
                            std::function<void()> fn) override;
  bool cancel(TimerToken token) override;
  /// Encode + route one frame. from==to short-circuits through the task
  /// queue (still via encode/decode, so self-frames stay canonical);
  /// everything else rides the from->to connection. `model_delay` is
  /// ignored: the wire provides the timing.
  void send_frame(Envelope&& env, SimDuration model_delay) override;
  void set_sink(FrameSink* sink) override { sink_ = sink; }
  obs::Observability& obs() override { return obs_; }
  Rng& rng() override { return rng_; }
  /// Bind + listen every hosted peer, then spawn the loop thread.
  void start() override;
  /// Flush what can be flushed, stop and join the loop, close sockets.
  /// Idempotent.
  void shutdown() override;

  // --- cross-thread helpers ---------------------------------------------
  /// Run `fn` on the loop thread (immediately if already on it).
  void post(std::function<void()> fn);
  /// Run `fn` on the loop thread and wait for it to finish. The only
  /// safe way for an external thread to touch actors or Network stats
  /// while the loop is running.
  void call(const std::function<void()>& fn);

  /// Loopback port a hosted peer listens on (valid after start()).
  std::uint16_t port_of(PeerId peer) const;

  // --- raw wire accounting (independent of Network's modeled charges) ---
  std::uint64_t raw_bytes_sent() const { return raw_bytes_sent_.load(); }
  std::uint64_t raw_bytes_received() const {
    return raw_bytes_received_.load();
  }
  std::uint64_t frames_sent() const { return frames_sent_.load(); }
  std::uint64_t frames_received() const { return frames_received_.load(); }

  /// Test hook: hard-close every established connection (both
  /// directions) on the loop thread; outbound pairs with queued traffic
  /// reconnect through the normal backoff path.
  void debug_close_connections();

  /// Chaos: tear down every established connection between `a` and `b`
  /// in both directions, as if the kernel sent RST. The pairs reconnect
  /// through the normal (jittered) backoff path.
  void inject_connection_reset(PeerId a, PeerId b) override;

 private:
  struct Listener {
    PeerId peer = kNoPeer;
    int fd = -1;
    std::uint16_t port = 0;
  };

  /// One directed from->to outbound connection (lazily created).
  struct OutConn {
    PeerId from = kNoPeer;
    PeerId to = kNoPeer;
    int fd = -1;
    bool connected = false;  // connect() completed
    /// Queued frames, each already length-prefixed, plus the write
    /// offset into the front frame. Queuing whole frames (not one flat
    /// buffer) lets a broken connection drop exactly the torn
    /// partially-written frame and resend the rest after reconnect.
    std::deque<Bytes> outq;
    std::size_t front_pos = 0;
    SimDuration backoff = 0;  // next reconnect delay (0 = fresh)
    TimerToken retry_timer = kNoTimerToken;
    /// Armed while a fault-injector stall/throttle window holds writes;
    /// fires a re-flush when the window is expected to clear.
    TimerToken flush_timer = kNoTimerToken;
  };

  /// One accepted inbound stream (sender anonymous; frames self-route).
  /// Slots are recycled through in_free_: a closed connection's record
  /// (and reset assembler) is reused by the next accept instead of
  /// growing the deque forever.
  struct InConn {
    int fd = -1;
    FrameAssembler assembler;
    std::size_t slot = 0;
    explicit InConn(std::uint32_t max) : assembler(max) {}
  };

  struct TimerEntry {
    SimTime deadline = 0;
    TimerToken token = 0;
    bool operator>(const TimerEntry& o) const {
      return deadline != o.deadline ? deadline > o.deadline
                                    : token > o.token;
    }
  };

  static std::uint64_t pair_key(PeerId from, PeerId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_.get_id();
  }

  void run_loop();
  void wake();
  void drain_tasks();
  /// Fire timers due at `now_us`; returns µs until the next deadline
  /// (or -1 for none).
  SimTime fire_due_timers(SimTime now_us);

  // All loop-thread-only:
  void send_on_loop(Envelope&& env);
  void deliver_local(Bytes&& frame_body);
  OutConn& out_conn(PeerId from, PeerId to);
  void start_connect(OutConn& c);
  void flush_out(OutConn& c);
  void fail_out(OutConn& c, const char* reason);
  void schedule_reconnect(OutConn& c);
  void handle_accept(Listener& l);
  void handle_readable(InConn& c);
  void close_in(InConn& c);
  void epoll_add(int fd, std::uint32_t events);
  void epoll_mod(int fd, std::uint32_t events);
  void epoll_del(int fd);

  /// What an epoll-reported fd is. OutConns are referenced by pair key
  /// (their map can rehash); InConns live in a stable deque.
  struct FdRef {
    enum class Kind { kWake, kListener, kOut, kIn } kind = Kind::kWake;
    PeerId listener_peer = kNoPeer;
    std::uint64_t out_key = 0;
    InConn* in = nullptr;
  };

  TcpTransportConfig cfg_;
  Rng rng_;
  /// Loop-thread-updated µs clock the trace/span streams sample through.
  SimTime clock_us_ = 0;
  obs::Observability obs_;
  FrameSink* sink_ = nullptr;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool shut_down_ = false;
  std::thread loop_thread_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::unordered_map<PeerId, Listener> listeners_;
  std::unordered_map<std::uint64_t, OutConn> out_conns_;
  /// Stable-address inbound records (FdRefs point at them).
  std::deque<InConn> in_conns_;
  /// Recyclable in_conns_ slots (closed connections).
  std::vector<std::size_t> in_free_;
  std::unordered_map<int, FdRef> fd_refs_;

  std::mutex task_mu_;
  std::deque<std::function<void()>> tasks_;

  std::mutex timer_mu_;
  TimerToken next_token_ = 1;
  std::unordered_map<TimerToken, std::function<void()>> timer_fns_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timer_heap_;

  std::atomic<std::uint64_t> raw_bytes_sent_{0};
  std::atomic<std::uint64_t> raw_bytes_received_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
};

}  // namespace p2pfl::net::tcp
