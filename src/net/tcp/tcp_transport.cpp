#include "net/tcp/tcp_transport.hpp"

#include "net/fault_injector.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace p2pfl::net::tcp {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  P2PFL_CHECK(flags >= 0);
  P2PFL_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      obs_(&clock_us_),
      epoch_(std::chrono::steady_clock::now()) {
  P2PFL_CHECK(!cfg_.peers.empty());
  P2PFL_CHECK(cfg_.reconnect_backoff_min > 0);
  P2PFL_CHECK(cfg_.reconnect_backoff_max >= cfg_.reconnect_backoff_min);
}

TcpTransport::~TcpTransport() { shutdown(); }

SimTime TcpTransport::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TimerToken TcpTransport::schedule_after(SimDuration delay,
                                        std::function<void()> fn) {
  P2PFL_CHECK(fn != nullptr);
  if (delay < 0) delay = 0;
  const SimTime deadline = now() + delay;
  TimerToken token;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    token = next_token_++;
    timer_fns_[token] = std::move(fn);
    timer_heap_.push(TimerEntry{deadline, token});
  }
  // A new earliest deadline must cut the loop's epoll timeout short.
  if (!on_loop_thread()) wake();
  return token;
}

bool TcpTransport::cancel(TimerToken token) {
  if (token == kNoTimerToken) return false;
  std::lock_guard<std::mutex> lock(timer_mu_);
  return timer_fns_.erase(token) > 0;  // heap entry expires lazily
}

void TcpTransport::post(std::function<void()> fn) {
  if (running_.load() && on_loop_thread()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.push_back(std::move(fn));
  }
  wake();
}

void TcpTransport::call(const std::function<void()>& fn) {
  if (running_.load() && on_loop_thread()) {
    fn();
    return;
  }
  P2PFL_CHECK_MSG(running_.load(),
                  "TcpTransport::call requires a running loop");
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.push_back([&] {
      fn();
      std::lock_guard<std::mutex> l(mu);
      done = true;
      cv.notify_one();
    });
  }
  wake();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
}

std::uint16_t TcpTransport::port_of(PeerId peer) const {
  auto it = listeners_.find(peer);
  P2PFL_CHECK_MSG(it != listeners_.end(),
                  "peer " + std::to_string(peer) + " is not hosted here");
  return it->second.port;
}

void TcpTransport::start() {
  P2PFL_CHECK_MSG(!started_, "TcpTransport::start called twice");
  started_ = true;

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  P2PFL_CHECK(epoll_fd_ >= 0);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  P2PFL_CHECK(wake_fd_ >= 0);
  fd_refs_[wake_fd_] = FdRef{FdRef::Kind::kWake, kNoPeer, 0, nullptr};
  epoll_add(wake_fd_, EPOLLIN);

  for (PeerId peer : cfg_.peers) {
    Listener l;
    l.peer = peer;
    l.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    P2PFL_CHECK(l.fd >= 0);
    int one = 1;
    ::setsockopt(l.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    P2PFL_CHECK_MSG(
        ::bind(l.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
        std::string("bind(127.0.0.1) failed: ") + std::strerror(errno));
    P2PFL_CHECK(::listen(l.fd, 64) == 0);
    socklen_t len = sizeof(addr);
    P2PFL_CHECK(
        ::getsockname(l.fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
    l.port = ntohs(addr.sin_port);
    set_nonblocking(l.fd);
    fd_refs_[l.fd] = FdRef{FdRef::Kind::kListener, peer, 0, nullptr};
    epoll_add(l.fd, EPOLLIN);
    listeners_[peer] = l;
  }

  running_.store(true);
  loop_thread_ = std::thread([this] { run_loop(); });
}

void TcpTransport::shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  // Best-effort flush: give queued outbound frames a moment to reach the
  // kernel before tearing the loop down.
  const SimTime flush_deadline = now() + 200 * kMillisecond;
  for (;;) {
    bool pending = false;
    call([&] {
      for (auto& [key, c] : out_conns_) {
        (void)key;
        if (c.fd >= 0 && c.connected && !c.outq.empty()) {
          flush_out(c);
          if (!c.outq.empty()) pending = true;
        }
      }
    });
    if (!pending || now() >= flush_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  running_.store(false);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();

  for (auto& [key, c] : out_conns_) {
    (void)key;
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
  }
  for (InConn& c : in_conns_) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
  }
  for (auto& [peer, l] : listeners_) {
    (void)peer;
    if (l.fd >= 0) ::close(l.fd);
    l.fd = -1;
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  wake_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  fd_refs_.clear();
}

void TcpTransport::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void TcpTransport::drain_tasks() {
  for (;;) {
    std::deque<std::function<void()>> batch;
    {
      std::lock_guard<std::mutex> lock(task_mu_);
      if (tasks_.empty()) return;
      batch.swap(tasks_);
    }
    for (auto& fn : batch) {
      clock_us_ = now();
      fn();
    }
  }
}

SimTime TcpTransport::fire_due_timers(SimTime now_us) {
  std::vector<std::function<void()>> due;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    while (!timer_heap_.empty()) {
      const TimerEntry top = timer_heap_.top();
      auto it = timer_fns_.find(top.token);
      if (it == timer_fns_.end()) {  // cancelled: expire lazily
        timer_heap_.pop();
        continue;
      }
      if (top.deadline > now_us) break;
      due.push_back(std::move(it->second));
      timer_fns_.erase(it);
      timer_heap_.pop();
    }
  }
  for (auto& fn : due) {
    clock_us_ = now();
    fn();
  }
  std::lock_guard<std::mutex> lock(timer_mu_);
  while (!timer_heap_.empty() &&
         timer_fns_.count(timer_heap_.top().token) == 0) {
    timer_heap_.pop();
  }
  return timer_heap_.empty() ? -1 : timer_heap_.top().deadline;
}

void TcpTransport::run_loop() {
  epoll_event events[64];
  while (running_.load()) {
    clock_us_ = now();
    drain_tasks();
    const SimTime next_deadline = fire_due_timers(now());
    int timeout_ms = 100;
    if (next_deadline >= 0) {
      const SimTime delta_us = next_deadline - now();
      if (delta_us <= 0) {
        timeout_ms = 0;
      } else {
        const SimTime ms = (delta_us + 999) / 1000;
        timeout_ms = ms > 100 ? 100 : static_cast<int>(ms);
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      P2PFL_CHECK_MSG(errno == EINTR, std::string("epoll_wait failed: ") +
                                          std::strerror(errno));
      continue;
    }
    clock_us_ = now();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      auto rit = fd_refs_.find(fd);
      if (rit == fd_refs_.end()) continue;  // closed earlier in this batch
      const FdRef ref = rit->second;
      const std::uint32_t ev = events[i].events;
      switch (ref.kind) {
        case FdRef::Kind::kWake: {
          std::uint64_t drained;
          while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          break;
        }
        case FdRef::Kind::kListener:
          handle_accept(listeners_[ref.listener_peer]);
          break;
        case FdRef::Kind::kOut: {
          auto oit = out_conns_.find(ref.out_key);
          if (oit == out_conns_.end() || oit->second.fd != fd) break;
          OutConn& c = oit->second;
          if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
            fail_out(c, "connection_error");
            break;
          }
          if ((ev & EPOLLOUT) != 0) {
            if (!c.connected) {
              int err = 0;
              socklen_t len = sizeof(err);
              ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
              if (err != 0) {
                fail_out(c, "connect_failed");
                break;
              }
              c.connected = true;
              c.backoff = 0;
              obs_.metrics.counter("net.tcp.connects").add(1);
              if (sink_ != nullptr) sink_->transport_peer_up(c.to);
            }
            flush_out(c);
          }
          if ((ev & EPOLLIN) != 0 && c.fd >= 0) {
            // Receivers never write to us; readable means EOF or reset.
            char probe;
            const ssize_t r = ::recv(c.fd, &probe, 1, MSG_PEEK);
            if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
              fail_out(c, "peer_closed");
            }
          }
          break;
        }
        case FdRef::Kind::kIn:
          if (ref.in->fd == fd) handle_readable(*ref.in);
          break;
      }
    }
  }
  drain_tasks();  // run stragglers (unblocks any call() in flight)
}

void TcpTransport::send_frame(Envelope&& env, SimDuration model_delay) {
  (void)model_delay;  // the wire provides the timing
  if (running_.load() && on_loop_thread()) {
    send_on_loop(std::move(env));
    return;
  }
  auto boxed = std::make_shared<Envelope>(std::move(env));
  post([this, boxed] { send_on_loop(std::move(*boxed)); });
}

void TcpTransport::send_on_loop(Envelope&& env) {
  P2PFL_CHECK(sink_ != nullptr);
  Bytes body = encode_frame(env);
  if (env.from == env.to) {
    // Self-delivery skips the wire but still round-trips the canonical
    // encoding, and is deferred through the task queue so the sender
    // never sees a reentrant delivery (mirrors the simulator's
    // schedule-at-0 self path).
    auto boxed = std::make_shared<Bytes>(std::move(body));
    {
      std::lock_guard<std::mutex> lock(task_mu_);
      tasks_.push_back([this, boxed] { deliver_local(std::move(*boxed)); });
    }
    wake();
    return;
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  OutConn& c = out_conn(env.from, env.to);
  Bytes framed;
  framed.reserve(body.size() + 4);
  append_length_prefixed(framed, body);
  c.outq.push_back(std::move(framed));
  if (cfg_.max_outq_frames > 0 && c.outq.size() > cfg_.max_outq_frames) {
    // Bounded queue: drop the oldest undelivered frame. The front frame
    // is exempt while partially written — dropping it would tear the
    // byte stream at an unknowable point.
    const std::size_t victim = c.front_pos > 0 ? 1 : 0;
    c.outq.erase(c.outq.begin() + static_cast<std::ptrdiff_t>(victim));
    obs_.metrics.counter("net.tcp.outq_dropped").add(1);
  }
  if (c.fd < 0 && c.retry_timer == kNoTimerToken) start_connect(c);
  if (c.connected) flush_out(c);
}

void TcpTransport::deliver_local(Bytes&& frame_body) {
  std::optional<Envelope> env = decode_frame(frame_body);
  if (!env.has_value()) {
    obs_.metrics.counter("net.tcp.bad_frames").add(1);
    return;
  }
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  if (sink_ != nullptr) sink_->transport_deliver(*env);
}

TcpTransport::OutConn& TcpTransport::out_conn(PeerId from, PeerId to) {
  const std::uint64_t key = pair_key(from, to);
  auto it = out_conns_.find(key);
  if (it == out_conns_.end()) {
    OutConn c;
    c.from = from;
    c.to = to;
    it = out_conns_.emplace(key, std::move(c)).first;
  }
  return it->second;
}

void TcpTransport::start_connect(OutConn& c) {
  P2PFL_CHECK(c.fd < 0);
  c.connected = false;
  c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  P2PFL_CHECK(c.fd >= 0);
  set_nonblocking(c.fd);
  set_nodelay(c.fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_of(c.to));
  const int rc =
      ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    fail_out(c, "connect_failed");
    return;
  }
  fd_refs_[c.fd] = FdRef{FdRef::Kind::kOut, kNoPeer, pair_key(c.from, c.to),
                         nullptr};
  epoll_add(c.fd, EPOLLIN | EPOLLOUT);
}

void TcpTransport::flush_out(OutConn& c) {
  while (!c.outq.empty()) {
    // Fault-injector gate, checked at frame boundaries only (a frame
    // already in flight is always finished, never torn). While a stall
    // or throttle window holds the link, frames accumulate in the
    // bounded outq exactly like behind a real slow peer; a timer
    // re-flushes when the window should clear.
    FaultInjector* fi = fault_injector();
    if (fi != nullptr && c.front_pos == 0) {
      const SimTime now_us = now();
      const SimTime at = fi->writable_at(c.from, c.to, now_us);
      if (at > now_us) {
        if (c.flush_timer == kNoTimerToken) {
          const std::uint64_t key = pair_key(c.from, c.to);
          c.flush_timer = schedule_after(at - now_us, [this, key] {
            auto it = out_conns_.find(key);
            if (it == out_conns_.end()) return;
            it->second.flush_timer = kNoTimerToken;
            if (it->second.connected) flush_out(it->second);
          });
        }
        epoll_mod(c.fd, EPOLLIN);  // don't spin on writability
        return;
      }
    }
    const Bytes& front = c.outq.front();
    const std::size_t remaining = front.size() - c.front_pos;
    const ssize_t n =
        ::send(c.fd, front.data() + c.front_pos, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        epoll_mod(c.fd, EPOLLIN | EPOLLOUT);
        return;
      }
      fail_out(c, "write_failed");
      return;
    }
    raw_bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    c.front_pos += static_cast<std::size_t>(n);
    if (c.front_pos == front.size()) {
      if (fi != nullptr) fi->note_written(c.from, front.size(), now());
      c.outq.pop_front();
      c.front_pos = 0;
    }
  }
  // Fully drained: stop asking for writability.
  epoll_mod(c.fd, EPOLLIN);
}

void TcpTransport::fail_out(OutConn& c, const char* reason) {
  if (c.fd >= 0) {
    epoll_del(c.fd);
    fd_refs_.erase(c.fd);
    ::close(c.fd);
    c.fd = -1;
  }
  const bool was_connected = c.connected;
  c.connected = false;
  if (c.front_pos > 0) {
    // The front frame was partially written: the stream is torn at an
    // unknowable point, so that frame is lost with the connection.
    c.outq.pop_front();
    c.front_pos = 0;
    obs_.metrics.counter("net.tcp.torn_frames").add(1);
  }
  obs_.metrics.counter(std::string("net.tcp.conn_fail.") + reason).add(1);
  if (was_connected && sink_ != nullptr) {
    sink_->transport_peer_down(c.to, reason);
  }
  if (!c.outq.empty()) schedule_reconnect(c);
}

void TcpTransport::schedule_reconnect(OutConn& c) {
  if (c.retry_timer != kNoTimerToken) return;
  c.backoff = c.backoff == 0
                  ? cfg_.reconnect_backoff_min
                  : std::min(c.backoff * 2, cfg_.reconnect_backoff_max);
  // Jitter the delay so the mesh's retries against a dead peer spread
  // out instead of synchronizing into a reconnect storm.
  const SimDuration delay =
      cfg_.reconnect_jitter && c.backoff > 1
          ? rng_.uniform_int(c.backoff / 2, c.backoff)
          : c.backoff;
  const std::uint64_t key = pair_key(c.from, c.to);
  c.retry_timer = schedule_after(delay, [this, key] {
    auto it = out_conns_.find(key);
    if (it == out_conns_.end()) return;
    OutConn& conn = it->second;
    conn.retry_timer = kNoTimerToken;
    if (conn.fd < 0 && !conn.outq.empty()) start_connect(conn);
  });
}

void TcpTransport::handle_accept(Listener& l) {
  for (;;) {
    const int fd = ::accept4(l.fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      obs_.metrics.counter("net.tcp.accept_fail").add(1);
      return;
    }
    set_nodelay(fd);
    InConn* c;
    if (!in_free_.empty()) {
      // Reuse a closed slot: its assembler was reset on close, so a
      // previously poisoned stream never haunts a fresh connection.
      c = &in_conns_[in_free_.back()];
      in_free_.pop_back();
    } else {
      in_conns_.emplace_back(cfg_.max_frame_bytes);
      c = &in_conns_.back();
      c->slot = in_conns_.size() - 1;
    }
    c->fd = fd;
    fd_refs_[fd] = FdRef{FdRef::Kind::kIn, kNoPeer, 0, c};
    epoll_add(fd, EPOLLIN);
    obs_.metrics.counter("net.tcp.accepts").add(1);
  }
}

void TcpTransport::handle_readable(InConn& c) {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_in(c);
      return;
    }
    if (n == 0) {  // clean EOF
      close_in(c);
      return;
    }
    raw_bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
    const bool ok = c.assembler.feed(
        buf, static_cast<std::size_t>(n),
        [this](Bytes&& body) { deliver_local(std::move(body)); });
    if (!ok) {
      // Oversized length prefix: stream desync, the connection is dead.
      obs_.metrics.counter("net.tcp.frame_protocol_error").add(1);
      close_in(c);
      return;
    }
    if (c.fd < 0) return;  // a delivery closed us (shutdown path)
  }
}

void TcpTransport::close_in(InConn& c) {
  if (c.fd < 0) return;
  epoll_del(c.fd);
  fd_refs_.erase(c.fd);
  ::close(c.fd);
  c.fd = -1;
  // Clear any poisoned/partial stream state and recycle the slot; the
  // sender's reconnect (or its next send) re-handshakes onto a fresh
  // accept that may land right back here.
  c.assembler.reset();
  in_free_.push_back(c.slot);
}

void TcpTransport::inject_connection_reset(PeerId a, PeerId b) {
  post([this, a, b] {
    obs_.metrics.counter("chaos.transport.conn_resets").add(1);
    for (auto& [key, c] : out_conns_) {
      (void)key;
      if (((c.from == a && c.to == b) || (c.from == b && c.to == a)) &&
          c.fd >= 0) {
        // Closing the outbound fd RSTs the whole socket, so the
        // accepted inbound half dies with it; fail_out re-queues the
        // reconnect when traffic is pending.
        fail_out(c, "chaos_reset");
      }
    }
  });
}

void TcpTransport::debug_close_connections() {
  call([this] {
    for (auto& [key, c] : out_conns_) {
      (void)key;
      if (c.fd >= 0) fail_out(c, "debug_close");
    }
    for (InConn& c : in_conns_) {
      if (c.fd >= 0) close_in(c);
    }
  });
}

void TcpTransport::epoll_add(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  P2PFL_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
}

void TcpTransport::epoll_mod(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  P2PFL_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0);
}

void TcpTransport::epoll_del(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

}  // namespace p2pfl::net::tcp
