#include "net/tcp/frame.hpp"

#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "net/codec.hpp"

namespace p2pfl::net::tcp {

Bytes encode_frame(const Envelope& env) {
  const Codec* codec = CodecRegistry::global().find_kind(env.kind);
  P2PFL_CHECK_MSG(codec != nullptr,
                  "kind '" + env.kind +
                      "' has no registered codec; only canonical frames "
                      "may cross the TCP transport");
  std::optional<Bytes> payload = codec->encode(env.body);
  P2PFL_CHECK_MSG(payload.has_value(),
                  "payload type does not match the codec for kind '" +
                      env.kind + "'");
  ByteWriter w;
  w.u32(env.from);
  w.u32(env.to);
  w.str(env.kind);
  w.u64(env.wire_bytes);
  w.u64(env.payload_bytes);
  w.u64(static_cast<std::uint64_t>(env.modeled_delta));
  w.u64(env.dest_incarnation);
  w.u64(env.span.round);
  w.u64(env.span.span);
  w.u8(env.chaos_duplicate ? 1 : 0);
  w.blob(*payload);
  return w.take();
}

std::optional<Envelope> decode_frame(const Bytes& body) {
  ByteReader r(body);
  Envelope env;
  env.from = r.u32();
  env.to = r.u32();
  env.kind = r.str();
  env.wire_bytes = r.u64();
  env.payload_bytes = r.u64();
  env.modeled_delta = static_cast<std::int64_t>(r.u64());
  env.dest_incarnation = r.u64();
  env.span.round = r.u64();
  env.span.span = r.u64();
  env.chaos_duplicate = r.u8() != 0;
  const Bytes payload = r.blob();
  if (!r.complete()) return std::nullopt;
  const Codec* codec = CodecRegistry::global().find_kind(env.kind);
  if (codec == nullptr) return std::nullopt;
  std::optional<std::any> decoded = codec->decode(payload);
  if (!decoded.has_value()) return std::nullopt;
  env.body = std::move(*decoded);
  return env;
}

void append_length_prefixed(Bytes& out, const Bytes& body) {
  const std::uint32_t n = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(n & 0xff));
  out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((n >> 24) & 0xff));
  out.insert(out.end(), body.begin(), body.end());
}

bool FrameAssembler::feed(const std::uint8_t* data, std::size_t n,
                          const std::function<void(Bytes&&)>& on_frame) {
  if (poisoned_) return false;
  buf_.insert(buf_.end(), data, data + n);
  for (;;) {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4) break;
    const std::uint8_t* p = buf_.data() + pos_;
    const std::uint32_t len =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > max_frame_bytes_) {
      poisoned_ = true;
      return false;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) break;
    Bytes body(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
    pos_ += 4 + len;
    on_frame(std::move(body));
  }
  // Compact once the consumed prefix dominates, keeping feed amortized
  // O(bytes) without shifting the tail on every frame.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return true;
}

}  // namespace p2pfl::net::tcp
