// Wire framing for the TCP transport.
//
// Every envelope crossing a socket travels as one length-prefixed frame:
//
//   [u32 LE body-length][frame body]
//
// where the frame body is a fixed little-endian header (routing ids,
// kind, the Eq. (4)/(5) byte-accounting fields, span context, delivery
// metadata) followed by the payload's canonical encoding from the
// process-wide CodecRegistry — the same bytes the simulator's
// encode-verify mode asserts against, which is what lets a loopback TCP
// run be checked byte-for-byte against the closed-form cost model.
//
// FrameAssembler reassembles frames from an arbitrary stream chunking
// (partial reads, coalesced frames, length prefixes split across reads)
// and rejects oversized length prefixes before allocating.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/serialize.hpp"
#include "net/envelope.hpp"

namespace p2pfl::net::tcp {

/// Upper bound on one frame body; a larger length prefix is a protocol
/// error (likely stream desync) and kills the connection.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Serialize the envelope into one frame body (header + canonical codec
/// encoding of env.body). CHECK-fails when the kind has no registered
/// codec or the body does not match it: only canonical frames travel.
Bytes encode_frame(const Envelope& env);

/// Strict inverse of encode_frame: decode the header, then the payload
/// bytes through the kind's codec. nullopt on any malformed input —
/// truncated header, unknown codec, codec rejection, trailing bytes.
std::optional<Envelope> decode_frame(const Bytes& body);

/// Append [u32 LE length][body] to `out`.
void append_length_prefixed(Bytes& out, const Bytes& body);

/// Incremental length-prefixed stream reassembler.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Feed one chunk of stream bytes. Invokes `on_frame` once per
  /// completed frame body, in order. Returns false on protocol error
  /// (length prefix exceeding the max) — the connection must be dropped,
  /// the assembler is poisoned for further feeds.
  bool feed(const std::uint8_t* data, std::size_t n,
            const std::function<void(Bytes&&)>& on_frame);

  /// Bytes buffered waiting for the rest of a frame.
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// True after a protocol error: feed() refuses further input.
  bool poisoned() const { return poisoned_; }

  /// Forget all buffered bytes and clear the poisoned flag, making the
  /// assembler reusable for a *new* connection. The transport calls
  /// this when it tears a desynced stream down, so the slot's next
  /// accept starts clean instead of staying poisoned forever.
  void reset() {
    buf_.clear();
    pos_ = 0;
    poisoned_ = false;
  }

 private:
  std::uint32_t max_frame_bytes_;
  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace p2pfl::net::tcp
