// Per-peer message demultiplexer.
//
// In the paper each peer process runs several protocol endpoints at once:
// its subgroup Raft instance, possibly a FedAvg-layer Raft instance, the
// SAC aggregation actor and the FL training loop. PeerHost is the single
// net::Endpoint attached for a peer; it routes incoming envelopes to the
// handler whose registered prefix matches the envelope kind.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/network.hpp"

namespace p2pfl::net {

class PeerHost : public Endpoint {
 public:
  using Handler = std::function<void(const Envelope&)>;

  /// Route messages whose kind starts with `prefix` to `handler`.
  /// The longest matching prefix wins. Re-registering replaces.
  void route(const std::string& prefix, Handler handler) {
    handlers_[prefix] = std::move(handler);
  }

  void unroute(const std::string& prefix) { handlers_.erase(prefix); }

  void deliver(const Envelope& env) override {
    // Longest-prefix match: scan candidates not after env.kind.
    auto it = handlers_.upper_bound(env.kind);
    while (it != handlers_.begin()) {
      --it;
      const std::string& prefix = it->first;
      if (env.kind.compare(0, prefix.size(), prefix) == 0) {
        it->second(env);
        return;
      }
      // Keys before a non-matching prefix can still match if shorter;
      // continue scanning backwards.
    }
  }

 private:
  std::map<std::string, Handler> handlers_;
};

}  // namespace p2pfl::net
