#include "net/codec.hpp"

#include "common/check.hpp"

namespace p2pfl::net {

CodecRegistry& CodecRegistry::global() {
  static CodecRegistry registry;
  return registry;
}

void CodecRegistry::add(Codec codec) {
  P2PFL_CHECK(!codec.key.empty());
  P2PFL_CHECK(codec.encode && codec.decode);
  codecs_[codec.key] = std::move(codec);
}

std::string CodecRegistry::key_of_kind(const std::string& kind) {
  const std::size_t first = kind.find('/');
  if (first == std::string::npos) return kind;
  const std::size_t last = kind.rfind('/');
  return kind.substr(0, first) + ":" + kind.substr(last + 1);
}

const Codec* CodecRegistry::find_key(const std::string& key) const {
  auto it = codecs_.find(key);
  return it == codecs_.end() ? nullptr : &it->second;
}

const Codec* CodecRegistry::find_kind(const std::string& kind) const {
  return find_key(key_of_kind(kind));
}

std::vector<const Codec*> CodecRegistry::all() const {
  std::vector<const Codec*> out;
  out.reserve(codecs_.size());
  for (const auto& [key, codec] : codecs_) out.push_back(&codec);
  return out;
}

}  // namespace p2pfl::net
