#include "net/transport.hpp"

#include <utility>

#include "common/check.hpp"

namespace p2pfl::net {

Timer::Timer(Transport& transport, Callback cb, std::string name)
    : transport_(transport),
      cb_(std::move(cb)),
      name_(std::move(name)),
      fire_counter_(transport.obs().metrics.counter("sim.timer_fires")) {
  P2PFL_CHECK(cb_ != nullptr);
}

Timer::~Timer() { cancel(); }

void Timer::arm(SimDuration delay) {
  cancel();
  period_ = 0;
  token_ = transport_.schedule_after(delay, [this] { fire(); });
}

void Timer::arm_periodic(SimDuration interval) {
  P2PFL_CHECK(interval > 0);
  cancel();
  period_ = interval;
  token_ = transport_.schedule_after(interval, [this] { fire(); });
}

void Timer::cancel() {
  if (token_ != kNoTimerToken) {
    transport_.cancel(token_);
    token_ = kNoTimerToken;
  }
}

void Timer::fire() {
  token_ = kNoTimerToken;
  fire_counter_.add(1);
  obs::TraceStream& tr = transport_.obs().trace;
  if (tr.category_enabled("sim")) {
    tr.instant("sim", name_.empty() ? "timer" : name_, 0);
  }
  if (period_ > 0) {
    // Re-arm before invoking the callback so the callback may cancel().
    token_ = transport_.schedule_after(period_, [this] { fire(); });
  }
  cb_();
}

}  // namespace p2pfl::net
