// Peer-to-peer message network: the protocol actors' façade over the
// transport seam.
//
// Network owns the *policy* of message exchange — typed sends with
// exact byte accounting, encode verification, fault injection (peer
// crashes, blocked links, extra per-link delay, probabilistic
// loss/duplication/reordering/corruption, named partitions) — and
// delegates the *mechanics* (clock, timers, physically moving a frame)
// to a net::Transport:
//
//  * backed by net::SimTransport it is the paper's localhost TCP mesh
//    shaped by `tc netem`, reproduced on the deterministic simulator:
//    every message is delivered after a configurable one-way latency
//    (default 15 ms, matching §VI-B1) and the whole fault model above
//    is available to the chaos engine in src/chaos;
//  * backed by net::tcp::TcpTransport the same sends travel as
//    length-prefixed canonical codec frames over real loopback sockets;
//    the latency model is skipped (the kernel provides the real thing)
//    and the stochastic fault draws that fire before transmission
//    (loss, duplication) still apply, while in-flight modeling
//    (reordering jitter, egress serialization) is meaningless and
//    ignored.
//
// Either way the Network is the *measurement instrument* for the
// communication-cost experiments (Figs. 13-14): every payload carries an
// explicit wire size and the network keeps per-kind byte counters, so a
// run can be checked byte-for-byte against the paper's closed-form cost
// model — including a real-socket run, which is exactly the
// cross-validation the TCP backend exists for.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "net/codec.hpp"
#include "net/envelope.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::net {

class SimTransport;

/// Protocol actors implement Endpoint to receive messages.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void deliver(const Envelope& env) = 0;
};

/// Aggregate traffic counters, split by message kind.
struct TrafficStats {
  struct Counter {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    /// Model-data (|w|-unit) portion of `bytes` — what the paper's
    /// closed-form cost models count (framing overhead excluded).
    std::uint64_t payload = 0;
  };
  Counter sent;       // accepted for transmission
  Counter delivered;  // actually handed to a live endpoint (originals)
  /// Chaos-duplicated copies handed to a live endpoint. Kept out of
  /// `delivered` and filed under "dup:<kind>" in delivered_by_kind, so
  /// per-kind delivered bytes match the paper's Eq. (4)/(5) counts even
  /// with duplication enabled.
  Counter duplicated;
  std::map<std::string, Counter> sent_by_kind;
  std::map<std::string, Counter> delivered_by_kind;
  /// Message counts per drop reason, mirroring the obs
  /// `net.dropped.<reason>` counters (sender_crashed, link_blocked,
  /// partitioned, chaos_loss, receiver_crashed, unattached).
  std::map<std::string, std::uint64_t> dropped_by_reason;

  void record_sent(const std::string& kind, std::uint64_t bytes,
                   std::uint64_t payload);
  void record_delivered(const std::string& kind, std::uint64_t bytes,
                        std::uint64_t payload);
  void record_duplicate_delivered(const std::string& kind,
                                  std::uint64_t bytes,
                                  std::uint64_t payload);
};

/// Stochastic link-imperfection knobs. All draws come from the network's
/// own deterministic RNG fork, so identical seeds produce identical loss
/// patterns. The all-zero default is a perfect link and makes no RNG
/// draws at all (existing byte-exact cost experiments stay untouched).
struct LinkFaults {
  /// Probability a message is lost in flight (after send accounting).
  double drop_prob = 0.0;
  /// Probability a message is delivered twice (independent latencies).
  double duplicate_prob = 0.0;
  /// With probability reorder_prob a message picks up extra uniform
  /// latency in [0, reorder_jitter], letting later sends overtake it.
  /// Simulator-only: a real transport's in-flight order is the wire's.
  double reorder_prob = 0.0;
  SimDuration reorder_jitter = 0;
  /// Probability a message's encoding has one random bit flipped in
  /// flight. Applies only to kinds with a registered codec; the receiver
  /// decodes the damaged bytes and drops the message (reason "corrupt")
  /// unless the decode still yields a well-formed value.
  double corrupt_prob = 0.0;
  /// Probability a message arrives truncated to a random strict prefix
  /// of its encoding (always dropped: the strict decoders reject every
  /// proper prefix).
  double truncate_prob = 0.0;

  bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 ||
           (reorder_prob > 0.0 && reorder_jitter > 0) ||
           corrupt_prob > 0.0 || truncate_prob > 0.0;
  }
};

struct NetworkConfig {
  /// One-way delivery latency applied to every message (paper: 15 ms).
  /// Simulator-only; a real transport's wire provides the latency.
  SimDuration base_latency = 15 * kMillisecond;
  /// Uniform jitter in [0, latency_jitter] added per message.
  SimDuration latency_jitter = 0;
  /// Per-peer egress bandwidth in bytes per simulated second; 0 =
  /// infinite. When set, a sender's messages serialize through its NIC:
  /// each transmission occupies the link for wire_bytes / bandwidth and
  /// later sends queue behind it — which is what makes a one-layer SAC
  /// leader a latency bottleneck (see bench/ablation_round_latency).
  std::uint64_t egress_bytes_per_sec = 0;
  /// Default stochastic imperfection applied to every inter-peer message
  /// (overridable per link and per message-kind prefix).
  LinkFaults faults = {};
  /// Encode every payload whose kind has a registered codec at send time
  /// and assert the charged wire_bytes equals the encoded length (plus
  /// the envelope's declared modeled_delta). On by default so every test
  /// run cross-checks the Eq. (4)/(5) byte accounting against real
  /// encodings; turn off only to send raw un-encodable bodies on
  /// protocol kinds (some fault-injection tests do). On a
  /// non-deterministic transport a codec is additionally *required*:
  /// only canonical frames cross the seam.
  bool encode_verify = true;
};

class Network : public FrameSink {
 public:
  /// Classic simulator-backed network: constructs and owns a
  /// SimTransport over `sim`. Behaviorally identical to the pre-seam
  /// Network — goldens pin this byte-for-byte.
  explicit Network(sim::Simulator& sim, NetworkConfig cfg = {});

  /// Seam constructor: run over any transport (the caller keeps
  /// ownership and must outlive the network).
  explicit Network(Transport& transport, NetworkConfig cfg = {});

  ~Network() override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The transport behind the seam.
  Transport& transport() { return transport_; }
  /// Transport clock (virtual on sim, monotonic µs on TCP).
  SimTime now() const { return transport_.now(); }
  /// Metrics/trace/span bundle of the backing transport.
  obs::Observability& obs() { return transport_.obs(); }
  const obs::Observability& obs() const { return transport_.obs(); }
  /// Root RNG of the backing transport (fork children from it).
  Rng& rng() { return transport_.rng(); }

  /// The simulator behind a sim-backed network. CHECK-fails on a real
  /// transport — simulation-only layers (chaos engine, scale benches)
  /// call this; protocol actors must use now()/obs()/rng() instead.
  sim::Simulator& simulator();

  const NetworkConfig& config() const { return cfg_; }

  /// Register the handler for a peer. A peer must be attached before it
  /// can receive; re-attaching replaces the handler (peer restart).
  void attach(PeerId peer, Endpoint* endpoint);
  void detach(PeerId peer);
  bool attached(PeerId peer) const;

  /// Queue a message. Drops silently (like a dead TCP connection) when
  /// the sender is crashed or the link is blocked; latency and crash of
  /// the destination are evaluated at delivery time, so a message can be
  /// lost to a crash that happens while it is in flight.
  void send(Envelope env);

  /// Typed convenience wrapper building the envelope (pure control
  /// message: no model payload, byte-exact charge). The pre-PR-4
  /// std::any-body overloads are retired: the body must be a concrete
  /// message type, so every frame crossing the transport seam is a
  /// canonical, codec-encodable value (raw-bodied envelopes for
  /// simulator fault-injection tests can still be built by hand).
  template <typename T>
  void send(PeerId from, PeerId to, std::string kind, T body,
            std::uint64_t wire_bytes) {
    static_assert(!std::is_same_v<std::remove_cv_t<T>, std::any>,
                  "untyped std::any bodies are retired; send the concrete "
                  "message type so the frame stays canonical");
    Envelope env;
    env.from = from;
    env.to = to;
    env.kind = std::move(kind);
    env.body = std::move(body);
    env.wire_bytes = wire_bytes;
    send(std::move(env));
  }

  /// Typed convenience wrapper carrying the full charged-size breakdown.
  template <typename T>
  void send(PeerId from, PeerId to, std::string kind, T body,
            const WireSize& size) {
    static_assert(!std::is_same_v<std::remove_cv_t<T>, std::any>,
                  "untyped std::any bodies are retired; send the concrete "
                  "message type so the frame stays canonical");
    Envelope env;
    env.from = from;
    env.to = to;
    env.kind = std::move(kind);
    env.body = std::move(body);
    env.wire_bytes = size.wire;
    env.payload_bytes = size.payload;
    env.modeled_delta = size.modeled;
    send(std::move(env));
  }

  // --- fault injection -------------------------------------------------
  /// Crash a peer: it neither sends nor receives until restore().
  void crash(PeerId peer);
  void restore(PeerId peer);
  bool crashed(PeerId peer) const;
  std::size_t crashed_count() const { return crashed_.size(); }

  /// Current incarnation number of a peer (starts at 0, bumped by every
  /// crash()). Messages are stamped with the destination's incarnation
  /// at send time and dropped at delivery on mismatch.
  std::uint64_t incarnation(PeerId peer) const;

  /// Block / unblock a directed link (both calls are cheap).
  void block_link(PeerId from, PeerId to);
  void unblock_link(PeerId from, PeerId to);

  /// Extra one-way latency for a directed link (simulates slow peers).
  void set_link_delay(PeerId from, PeerId to, SimDuration extra);
  void clear_link_delay(PeerId from, PeerId to);

  // --- stochastic imperfection ------------------------------------------
  /// Replace the default faults applied to every inter-peer message.
  void set_default_faults(LinkFaults faults) { cfg_.faults = faults; }

  /// Per-directed-link faults; take precedence over kind and default.
  void set_link_faults(PeerId from, PeerId to, LinkFaults faults);
  void clear_link_faults(PeerId from, PeerId to);

  /// Faults for every message whose kind starts with `kind_prefix`
  /// (e.g. "raft/" or "agg/upload"); longest matching prefix wins.
  /// Precedence: link > kind > default.
  void set_kind_faults(std::string kind_prefix, LinkFaults faults);
  void clear_kind_faults(const std::string& kind_prefix);

  // --- partitions --------------------------------------------------------
  /// Split the network: peers in different `groups` cannot exchange
  /// messages (checked at send time, like block_link). Peers absent from
  /// every group form one implicit extra group of their own, so
  /// partition({A}) isolates A from the rest. Calling partition() again
  /// replaces the previous split; heal() removes it. Independent of
  /// block_link state (healing does not unblock manual blocks).
  void partition(const std::vector<std::vector<PeerId>>& groups);
  void heal();
  bool partition_active() const { return partition_active_; }
  /// True when an active partition separates the two peers.
  bool partitioned(PeerId from, PeerId to) const;

  // --- accounting -------------------------------------------------------
  const TrafficStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Pooled in-flight envelope records ever allocated by a sim-backed
  /// transport (high-water of simultaneously in-flight messages);
  /// 0 on real transports, which do not pool.
  std::size_t envelope_pool_slots() const;

  // --- FrameSink (upcalls from the transport) ---------------------------
  /// A frame arrived for a local peer: delivered-side accounting, chaos
  /// corruption decode, incarnation/crash checks, endpoint dispatch.
  void transport_deliver(Envelope& env) override;
  void transport_peer_up(PeerId peer) override;
  void transport_peer_down(PeerId peer, const char* reason) override;

 private:
  Network(std::unique_ptr<Transport> owned, Transport* external,
          NetworkConfig cfg);

  using Link = std::uint64_t;
  static Link link_key(PeerId from, PeerId to) {
    return (static_cast<Link>(from) << 32) | to;
  }

  SimDuration latency_for(PeerId from, PeerId to);
  const LinkFaults& faults_for(PeerId from, PeerId to,
                               const std::string& kind) const;
  void schedule_delivery(Envelope env, PeerId from, PeerId to);
  void count_drop(const char* reason);
  /// Encode-verify: charge must equal real encoding + modeled_delta.
  void verify_encoding(const Envelope& env) const;
  /// Damage the message's real encoding in flight (bit flip and/or
  /// truncation); the body becomes a CorruptPayload the receiving side
  /// must decode. No-op for kinds without a registered codec.
  void maybe_corrupt(Envelope& env, bool flip, bool truncate);

  /// Set for the legacy simulator constructor, which owns its transport.
  std::unique_ptr<Transport> owned_transport_;
  Transport& transport_;
  /// Non-null when the transport is the deterministic simulator path
  /// (envelope pool introspection); null on real transports.
  SimTransport* sim_transport_ = nullptr;
  NetworkConfig cfg_;
  Rng rng_;
  /// Separate stream for stochastic faults so enabling chaos never
  /// perturbs the latency-jitter draws of an otherwise identical run.
  Rng fault_rng_;
  obs::Counter& m_sent_msgs_;
  obs::Counter& m_sent_bytes_;
  obs::Counter& m_sent_payload_;
  obs::Counter& m_delivered_msgs_;
  obs::Counter& m_delivered_bytes_;
  obs::Counter& m_delivered_payload_;
  std::unordered_map<PeerId, Endpoint*> endpoints_;
  std::unordered_set<PeerId> crashed_;
  std::unordered_map<PeerId, std::uint64_t> incarnation_;
  std::unordered_set<Link> blocked_;
  std::unordered_map<Link, SimDuration> extra_delay_;
  std::unordered_map<Link, LinkFaults> link_faults_;
  std::map<std::string, LinkFaults> kind_faults_;
  bool partition_active_ = false;
  std::unordered_map<PeerId, int> partition_group_;
  /// Per-sender time at which its egress link becomes idle again.
  std::unordered_map<PeerId, SimTime> egress_free_at_;
  TrafficStats stats_;
};

}  // namespace p2pfl::net
