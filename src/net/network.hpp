// Simulated peer-to-peer message network.
//
// Stands in for the paper's localhost TCP mesh shaped by `tc netem`:
// every message is delivered after a configurable one-way latency
// (default 15 ms, matching §VI-B1) through the discrete-event simulator.
// The network is also the *measurement instrument* for the
// communication-cost experiments (Figs. 13-14): every payload carries an
// explicit wire size and the network keeps per-kind byte counters, so a
// simulated aggregation can be checked byte-for-byte against the paper's
// closed-form cost model. Fault injection (peer crashes, blocked links,
// extra per-link delay, probabilistic loss/duplication/reordering, named
// partitions) drives the recovery experiments of Figs. 10-12 and the
// chaos engine in src/chaos.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "net/codec.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::net {

/// One message on the wire. `body` is a typed payload (receivers access
/// it through net::payload<T>); `wire_bytes` is the size accounted for
/// cost analysis. When the network's encode-verify mode is on (the
/// default) and a codec is registered for the kind, the charge is
/// asserted against the real encoding at send time:
///   wire_bytes == encoded-length + modeled_delta.
struct Envelope {
  PeerId from = kNoPeer;
  PeerId to = kNoPeer;
  std::string kind;
  std::any body;
  std::uint64_t wire_bytes = 0;
  /// Model-data portion of wire_bytes, in the |w|-unit accounting of the
  /// paper's Eq. (4)/(5) (0 for pure control messages). The closed-form
  /// cost models count these bytes; wire_bytes additionally carries the
  /// codec's framing overhead.
  std::uint64_t payload_bytes = 0;
  /// Bytes the charge models beyond the real encoding: experiments
  /// simulate e.g. a 1.25M-parameter CNN (5 MB per transfer) while
  /// computing on tiny vectors, so the charged wire size exceeds the
  /// materialized encoding by exactly this declared amount (negative if
  /// the modeled payload is smaller). 0 = the charge is byte-exact.
  std::int64_t modeled_delta = 0;
  /// Causal context (round id + span id). Stamped by the sender's
  /// current span at send time when unset; in flight it names the
  /// delivery's own link span (the parent chain lives in the recorder).
  obs::SpanContext span;
  /// Chaos-duplicated copy: delivered normally but accounted under a
  /// distinct label so per-kind byte counts stay Eq. (4)/(5)-exact.
  bool chaos_duplicate = false;
  /// Incarnation of the destination peer this message was addressed to,
  /// stamped by the network at send time. A crash bumps the target's
  /// incarnation, so messages still in flight toward the dead process
  /// are never delivered to its successor (dropped with reason
  /// "stale_incarnation") — the property amnesia restarts rely on.
  std::uint64_t dest_incarnation = 0;
};

/// Protocol actors implement Endpoint to receive messages.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void deliver(const Envelope& env) = 0;
};

/// Charged sizes of one message: the full on-the-wire size, the
/// |w|-unit model-data portion, and the declared modeled-payload delta
/// (see the Envelope fields of the same names).
struct WireSize {
  std::uint64_t wire = 0;
  std::uint64_t payload = 0;
  std::int64_t modeled = 0;
};

/// A chaos-corrupted payload in flight: the message's real encoding with
/// bits flipped or bytes truncated. The receiving side of the network
/// decodes it through the codec registry — a surviving decode is
/// delivered typed, a failing one is dropped with reason "corrupt".
struct CorruptPayload {
  Bytes wire;
};

/// Aggregate traffic counters, split by message kind.
struct TrafficStats {
  struct Counter {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    /// Model-data (|w|-unit) portion of `bytes` — what the paper's
    /// closed-form cost models count (framing overhead excluded).
    std::uint64_t payload = 0;
  };
  Counter sent;       // accepted for transmission
  Counter delivered;  // actually handed to a live endpoint (originals)
  /// Chaos-duplicated copies handed to a live endpoint. Kept out of
  /// `delivered` and filed under "dup:<kind>" in delivered_by_kind, so
  /// per-kind delivered bytes match the paper's Eq. (4)/(5) counts even
  /// with duplication enabled.
  Counter duplicated;
  std::map<std::string, Counter> sent_by_kind;
  std::map<std::string, Counter> delivered_by_kind;
  /// Message counts per drop reason, mirroring the obs
  /// `net.dropped.<reason>` counters (sender_crashed, link_blocked,
  /// partitioned, chaos_loss, receiver_crashed, unattached).
  std::map<std::string, std::uint64_t> dropped_by_reason;

  void record_sent(const std::string& kind, std::uint64_t bytes,
                   std::uint64_t payload);
  void record_delivered(const std::string& kind, std::uint64_t bytes,
                        std::uint64_t payload);
  void record_duplicate_delivered(const std::string& kind,
                                  std::uint64_t bytes,
                                  std::uint64_t payload);
};

/// Stochastic link-imperfection knobs. All draws come from the network's
/// own deterministic RNG fork, so identical seeds produce identical loss
/// patterns. The all-zero default is a perfect link and makes no RNG
/// draws at all (existing byte-exact cost experiments stay untouched).
struct LinkFaults {
  /// Probability a message is lost in flight (after send accounting).
  double drop_prob = 0.0;
  /// Probability a message is delivered twice (independent latencies).
  double duplicate_prob = 0.0;
  /// With probability reorder_prob a message picks up extra uniform
  /// latency in [0, reorder_jitter], letting later sends overtake it.
  double reorder_prob = 0.0;
  SimDuration reorder_jitter = 0;
  /// Probability a message's encoding has one random bit flipped in
  /// flight. Applies only to kinds with a registered codec; the receiver
  /// decodes the damaged bytes and drops the message (reason "corrupt")
  /// unless the decode still yields a well-formed value.
  double corrupt_prob = 0.0;
  /// Probability a message arrives truncated to a random strict prefix
  /// of its encoding (always dropped: the strict decoders reject every
  /// proper prefix).
  double truncate_prob = 0.0;

  bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 ||
           (reorder_prob > 0.0 && reorder_jitter > 0) ||
           corrupt_prob > 0.0 || truncate_prob > 0.0;
  }
};

struct NetworkConfig {
  /// One-way delivery latency applied to every message (paper: 15 ms).
  SimDuration base_latency = 15 * kMillisecond;
  /// Uniform jitter in [0, latency_jitter] added per message.
  SimDuration latency_jitter = 0;
  /// Per-peer egress bandwidth in bytes per simulated second; 0 =
  /// infinite. When set, a sender's messages serialize through its NIC:
  /// each transmission occupies the link for wire_bytes / bandwidth and
  /// later sends queue behind it — which is what makes a one-layer SAC
  /// leader a latency bottleneck (see bench/ablation_round_latency).
  std::uint64_t egress_bytes_per_sec = 0;
  /// Default stochastic imperfection applied to every inter-peer message
  /// (overridable per link and per message-kind prefix).
  LinkFaults faults = {};
  /// Encode every payload whose kind has a registered codec at send time
  /// and assert the charged wire_bytes equals the encoded length (plus
  /// the envelope's declared modeled_delta). On by default so every test
  /// run cross-checks the Eq. (4)/(5) byte accounting against real
  /// encodings; turn off only to send raw un-encodable bodies on
  /// protocol kinds (some fault-injection tests do).
  bool encode_verify = true;
};

class Network {
 public:
  Network(sim::Simulator& sim, NetworkConfig cfg = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator& simulator() { return sim_; }
  const NetworkConfig& config() const { return cfg_; }

  /// Register the handler for a peer. A peer must be attached before it
  /// can receive; re-attaching replaces the handler (peer restart).
  void attach(PeerId peer, Endpoint* endpoint);
  void detach(PeerId peer);
  bool attached(PeerId peer) const;

  /// Queue a message. Drops silently (like a dead TCP connection) when
  /// the sender is crashed or the link is blocked; latency and crash of
  /// the destination are evaluated at delivery time, so a message can be
  /// lost to a crash that happens while it is in flight.
  void send(Envelope env);

  /// Convenience wrapper building the envelope (pure control message:
  /// no model payload, byte-exact charge).
  void send(PeerId from, PeerId to, std::string kind, std::any body,
            std::uint64_t wire_bytes);

  /// Convenience wrapper carrying the full charged-size breakdown.
  void send(PeerId from, PeerId to, std::string kind, std::any body,
            const WireSize& size);

  // --- fault injection -------------------------------------------------
  /// Crash a peer: it neither sends nor receives until restore().
  void crash(PeerId peer);
  void restore(PeerId peer);
  bool crashed(PeerId peer) const;
  std::size_t crashed_count() const { return crashed_.size(); }

  /// Current incarnation number of a peer (starts at 0, bumped by every
  /// crash()). Messages are stamped with the destination's incarnation
  /// at send time and dropped at delivery on mismatch.
  std::uint64_t incarnation(PeerId peer) const;

  /// Block / unblock a directed link (both calls are cheap).
  void block_link(PeerId from, PeerId to);
  void unblock_link(PeerId from, PeerId to);

  /// Extra one-way latency for a directed link (simulates slow peers).
  void set_link_delay(PeerId from, PeerId to, SimDuration extra);
  void clear_link_delay(PeerId from, PeerId to);

  // --- stochastic imperfection ------------------------------------------
  /// Replace the default faults applied to every inter-peer message.
  void set_default_faults(LinkFaults faults) { cfg_.faults = faults; }

  /// Per-directed-link faults; take precedence over kind and default.
  void set_link_faults(PeerId from, PeerId to, LinkFaults faults);
  void clear_link_faults(PeerId from, PeerId to);

  /// Faults for every message whose kind starts with `kind_prefix`
  /// (e.g. "raft/" or "agg/upload"); longest matching prefix wins.
  /// Precedence: link > kind > default.
  void set_kind_faults(std::string kind_prefix, LinkFaults faults);
  void clear_kind_faults(const std::string& kind_prefix);

  // --- partitions --------------------------------------------------------
  /// Split the network: peers in different `groups` cannot exchange
  /// messages (checked at send time, like block_link). Peers absent from
  /// every group form one implicit extra group of their own, so
  /// partition({A}) isolates A from the rest. Calling partition() again
  /// replaces the previous split; heal() removes it. Independent of
  /// block_link state (healing does not unblock manual blocks).
  void partition(const std::vector<std::vector<PeerId>>& groups);
  void heal();
  bool partition_active() const { return partition_active_; }
  /// True when an active partition separates the two peers.
  bool partitioned(PeerId from, PeerId to) const;

  // --- accounting -------------------------------------------------------
  const TrafficStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Pooled in-flight envelope records ever allocated (high-water of
  /// simultaneously in-flight messages). Records are recycled through
  /// an intrusive free list, so steady traffic allocates no new ones.
  std::size_t envelope_pool_slots() const { return env_pool_.size(); }

 private:
  using Link = std::uint64_t;
  static Link link_key(PeerId from, PeerId to) {
    return (static_cast<Link>(from) << 32) | to;
  }

  /// In-flight messages ride in a pooled record instead of being copied
  /// into each delivery closure: the scheduled lambda captures only
  /// (this, slot) — small enough for std::function's inline storage —
  /// so a send costs no per-message function-node allocation and no
  /// Envelope copy. `next_free` intrusively links free records.
  struct PooledEnvelope {
    Envelope env;
    std::uint32_t next_free = kNoEnvSlot;
  };
  static constexpr std::uint32_t kNoEnvSlot = 0xffffffffu;

  std::uint32_t acquire_envelope(Envelope&& env);
  void deliver_pooled(std::uint32_t slot);

  SimDuration latency_for(PeerId from, PeerId to);
  const LinkFaults& faults_for(PeerId from, PeerId to,
                               const std::string& kind) const;
  void schedule_delivery(Envelope env, PeerId from, PeerId to);
  void deliver_now(const Envelope& env);
  void count_drop(const char* reason);
  /// Encode-verify: charge must equal real encoding + modeled_delta.
  void verify_encoding(const Envelope& env) const;
  /// Damage the message's real encoding in flight (bit flip and/or
  /// truncation); the body becomes a CorruptPayload the receiving side
  /// must decode. No-op for kinds without a registered codec.
  void maybe_corrupt(Envelope& env, bool flip, bool truncate);

  sim::Simulator& sim_;
  NetworkConfig cfg_;
  Rng rng_;
  /// Separate stream for stochastic faults so enabling chaos never
  /// perturbs the latency-jitter draws of an otherwise identical run.
  Rng fault_rng_;
  obs::Counter& m_sent_msgs_;
  obs::Counter& m_sent_bytes_;
  obs::Counter& m_sent_payload_;
  obs::Counter& m_delivered_msgs_;
  obs::Counter& m_delivered_bytes_;
  obs::Counter& m_delivered_payload_;
  std::unordered_map<PeerId, Endpoint*> endpoints_;
  std::unordered_set<PeerId> crashed_;
  std::unordered_map<PeerId, std::uint64_t> incarnation_;
  std::unordered_set<Link> blocked_;
  std::unordered_map<Link, SimDuration> extra_delay_;
  std::unordered_map<Link, LinkFaults> link_faults_;
  std::map<std::string, LinkFaults> kind_faults_;
  bool partition_active_ = false;
  std::unordered_map<PeerId, int> partition_group_;
  /// Per-sender time at which its egress link becomes idle again.
  std::unordered_map<PeerId, SimTime> egress_free_at_;
  /// Deque so records stay address-stable while a delivery handler
  /// (which may send, acquiring fresh slots) holds a reference.
  std::deque<PooledEnvelope> env_pool_;
  std::uint32_t env_free_head_ = kNoEnvSlot;
  TrafficStats stats_;
};

}  // namespace p2pfl::net
