// The transport seam: clock, timers and frame movement behind
// net::Network.
//
// net::Network is the protocol actors' façade — typed sends, fault
// injection, Eq. (4)/(5) byte accounting. Everything *mechanical* under
// it (what time it is, how a deferred callback fires, how a frame
// physically reaches the destination peer) lives behind this interface,
// with two implementations:
//
//  * net::SimTransport — the deterministic discrete-event path. The
//    clock is sim::Simulator's virtual clock, timers are simulator
//    events, and send_frame schedules an in-memory delivery after the
//    latency the Network modeled. Byte-for-byte identical to the
//    pre-seam Network (goldens in tests/determinism_test.cpp pin this).
//  * net::tcp::TcpTransport — a threaded epoll event loop speaking
//    length-prefixed frames of the canonical codec encodings over real
//    loopback sockets (src/net/tcp). The clock is CLOCK_MONOTONIC
//    microseconds since transport start; the modeled latency is ignored
//    because the kernel provides the real thing.
//
// The seam's contract:
//  * every frame that crosses a non-deterministic transport must have a
//    registered codec (net::CodecRegistry) — only canonical encodings
//    travel; raw std::any bodies are a simulator-only test affordance;
//  * all protocol callbacks (frame delivery, timer fires, peer up/down)
//    are serialized onto one thread — the simulator's caller thread or
//    the TCP transport's event-loop thread — so actors never need locks;
//  * Transport::now() is monotone and every timer fires at-or-after its
//    deadline in that clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/envelope.hpp"
#include "obs/obs.hpp"

namespace p2pfl::sim {
class Simulator;
}

namespace p2pfl::net {

/// Handle to a scheduled transport timer callback; 0 is never issued.
using TimerToken = std::uint64_t;
inline constexpr TimerToken kNoTimerToken = 0;

/// The upcall side of the seam, implemented by net::Network: the
/// transport hands arriving frames (and peer liveness transitions) back
/// through this interface, always on the transport's callback thread.
class FrameSink {
 public:
  virtual ~FrameSink() = default;

  /// A frame reached its destination peer. The sink owns delivered-side
  /// accounting and endpoint dispatch; `env.body` is already typed
  /// (decoded from the canonical encoding on real transports).
  virtual void transport_deliver(Envelope& env) = 0;

  /// A connection to `peer` became usable / was lost. Only real
  /// transports emit these; the simulator models liveness explicitly
  /// through crash()/restore() instead.
  virtual void transport_peer_up(PeerId peer) { (void)peer; }
  virtual void transport_peer_down(PeerId peer, const char* reason) {
    (void)peer;
    (void)reason;
  }
};

class FaultInjector;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Short backend label ("sim", "tcp") for logs and metrics.
  virtual const char* name() const = 0;

  /// True when this transport is the deterministic simulator: time is
  /// virtual, latency/faults are modeled by the Network, and identical
  /// seeds replay identical histories. Real transports return false and
  /// make the Network skip its latency model (the wire provides it).
  virtual bool deterministic() const = 0;

  /// Current transport time in microseconds (virtual or monotonic).
  virtual SimTime now() const = 0;

  /// Run `fn` once after `delay` on the transport's callback thread.
  /// Returns a token usable to cancel before it fires.
  virtual TimerToken schedule_after(SimDuration delay,
                                    std::function<void()> fn) = 0;

  /// Cancel a pending timer. False if it already fired / was cancelled.
  virtual bool cancel(TimerToken token) = 0;

  /// Move one frame toward env.to. `model_delay` is the delivery delay
  /// the Network's link model computed (latency + jitter + egress
  /// serialization); deterministic transports honor it exactly, real
  /// transports ignore it and let the wire impose its own timing.
  virtual void send_frame(Envelope&& env, SimDuration model_delay) = 0;

  /// Register the upcall sink (the Network). One sink at a time.
  virtual void set_sink(FrameSink* sink) = 0;

  /// Metrics/trace/span bundle every component samples through. On the
  /// simulator this is the simulation-owned registry (virtual-time
  /// samples, byte-identical dumps); a real transport owns its own.
  virtual obs::Observability& obs() = 0;

  /// Root deterministic random source; components fork() children.
  virtual Rng& rng() = 0;

  /// The simulator behind a deterministic transport, nullptr otherwise.
  /// Simulation-only layers (chaos engine, benches) use this escape
  /// hatch; protocol actors must not.
  virtual sim::Simulator* simulator() { return nullptr; }

  /// Real transports: bring sockets/threads up, and tear them down
  /// flushing what can be flushed. No-ops on the simulator.
  virtual void start() {}
  virtual void shutdown() {}

  /// Install (or remove, with nullptr) the transport-fault injector.
  /// Both backends consult it at the frame boundary; a null injector is
  /// byte-for-byte the pre-seam behavior. The injector must outlive its
  /// installation. Atomic because the chaos engine installs from outside
  /// the TCP loop thread while the loop is already pumping frames.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return fault_injector_.load(std::memory_order_acquire);
  }

  /// Forcibly reset any established connection between `a` and `b`
  /// (both directions), as if the kernel sent RST. Real transports tear
  /// the sockets down and go through their reconnect path; the
  /// deterministic simulator has no connections, so the chaos engine
  /// models the reset outage as a brief stall window instead.
  virtual void inject_connection_reset(PeerId a, PeerId b) {
    (void)a;
    (void)b;
  }

 protected:
  std::atomic<FaultInjector*> fault_injector_{nullptr};
};

/// Resettable one-shot and periodic timer over the transport seam.
///
/// Transport-agnostic successor of sim::Timer: Raft election timeouts,
/// heartbeat broadcasts, SAC phase timeouts and the round driver all run
/// on this, so the same actor code ticks on virtual time under the
/// simulator and on the monotonic clock under TCP. Owns at most one
/// pending transport timer and guarantees the callback never fires after
/// cancel()/destruction. Keeps sim::Timer's trace/metric identity
/// (counter "sim.timer_fires", trace category "sim") so pre-seam golden
/// dumps stay byte-identical.
class Timer {
 public:
  using Callback = std::function<void()>;

  /// `name` labels this timer's firings in the trace stream (category
  /// "sim"); unnamed timers trace as "timer".
  Timer(Transport& transport, Callback cb, std::string name = {});
  ~Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arm (or re-arm) as a one-shot firing after `delay`.
  void arm(SimDuration delay);

  /// Arm (or re-arm) as a periodic timer with the given interval; the
  /// first firing happens one interval from now.
  void arm_periodic(SimDuration interval);

  /// Cancel any pending firing. Safe to call when idle.
  void cancel();

  bool armed() const { return token_ != kNoTimerToken; }

 private:
  void fire();

  Transport& transport_;
  Callback cb_;
  const std::string name_;
  obs::Counter& fire_counter_;
  TimerToken token_ = kNoTimerToken;
  SimDuration period_ = 0;  // 0 = one-shot
};

}  // namespace p2pfl::net
