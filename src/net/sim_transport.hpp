// Deterministic transport: the discrete-event simulator behind the seam.
//
// This is the pre-seam net::Network delivery machinery, verbatim: frames
// ride in a slab-pooled record (recycled through an intrusive free
// list), the scheduled delivery closure captures only (this, slot) —
// small enough for std::function's inline storage — and the simulator's
// (time, insertion seq) order decides arrival. The Network computes the
// modeled delay (latency, jitter, per-link extras, egress serialization)
// before calling send_frame, so enabling the seam changed no event
// timestamps, no RNG draws and no pool behavior; the pre-refactor golden
// in tests/determinism_test.cpp pins that byte-for-byte.
#pragma once

#include <cstdint>
#include <deque>

#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::net {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Simulator& sim) : sim_(sim) {}

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  const char* name() const override { return "sim"; }
  bool deterministic() const override { return true; }
  SimTime now() const override { return sim_.now(); }

  TimerToken schedule_after(SimDuration delay,
                            std::function<void()> fn) override {
    // sim EventIds are nonzero (generations start at 1), so they are
    // valid TimerTokens as-is and cancel stays O(1).
    return sim_.schedule_after(delay, std::move(fn));
  }

  bool cancel(TimerToken token) override { return sim_.cancel(token); }

  void send_frame(Envelope&& env, SimDuration model_delay) override;

  void set_sink(FrameSink* sink) override { sink_ = sink; }

  obs::Observability& obs() override { return sim_.obs(); }
  Rng& rng() override { return sim_.rng(); }
  sim::Simulator* simulator() override { return &sim_; }

  /// Pooled in-flight envelope records ever allocated (high-water of
  /// simultaneously in-flight messages). Records are recycled through
  /// an intrusive free list, so steady traffic allocates no new ones.
  std::size_t envelope_pool_slots() const { return env_pool_.size(); }

 private:
  /// In-flight messages ride in a pooled record instead of being copied
  /// into each delivery closure. `next_free` intrusively links free
  /// records.
  struct PooledEnvelope {
    Envelope env;
    std::uint32_t next_free = kNoEnvSlot;
  };
  static constexpr std::uint32_t kNoEnvSlot = 0xffffffffu;

  std::uint32_t acquire_envelope(Envelope&& env);
  void deliver_pooled(std::uint32_t slot);

  sim::Simulator& sim_;
  FrameSink* sink_ = nullptr;
  /// Deque so records stay address-stable while a delivery handler
  /// (which may send, acquiring fresh slots) holds a reference.
  std::deque<PooledEnvelope> env_pool_;
  std::uint32_t env_free_head_ = kNoEnvSlot;
};

}  // namespace p2pfl::net
