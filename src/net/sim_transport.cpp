#include "net/sim_transport.hpp"

#include <utility>

#include "common/check.hpp"
#include "net/fault_injector.hpp"

namespace p2pfl::net {

std::uint32_t SimTransport::acquire_envelope(Envelope&& env) {
  std::uint32_t slot;
  if (env_free_head_ != kNoEnvSlot) {
    slot = env_free_head_;
    env_free_head_ = env_pool_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(env_pool_.size());
    env_pool_.emplace_back();
  }
  env_pool_[slot].env = std::move(env);
  return slot;
}

void SimTransport::deliver_pooled(std::uint32_t slot) {
  sink_->transport_deliver(env_pool_[slot].env);
  PooledEnvelope& rec = env_pool_[slot];
  rec.env = Envelope{};  // drop the body/kind allocations eagerly
  rec.next_free = env_free_head_;
  env_free_head_ = slot;
}

void SimTransport::send_frame(Envelope&& env, SimDuration model_delay) {
  P2PFL_CHECK(sink_ != nullptr);
  // Transport-native faults (stall windows, write throttling) extend
  // the modeled delivery delay. Self-frames never touch a link.
  if (FaultInjector* fi = fault_injector(); fi != nullptr && env.from != env.to) {
    model_delay +=
        fi->frame_delay(env.from, env.to, env.wire_bytes, sim_.now());
  }
  const std::uint32_t slot = acquire_envelope(std::move(env));
  sim_.schedule_after(model_delay, [this, slot] { deliver_pooled(slot); });
}

}  // namespace p2pfl::net
