#include "net/network.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/sim_transport.hpp"

namespace p2pfl::net {

void TrafficStats::record_sent(const std::string& kind, std::uint64_t bytes,
                               std::uint64_t payload) {
  sent.messages += 1;
  sent.bytes += bytes;
  sent.payload += payload;
  auto& c = sent_by_kind[kind];
  c.messages += 1;
  c.bytes += bytes;
  c.payload += payload;
}

void TrafficStats::record_delivered(const std::string& kind,
                                    std::uint64_t bytes,
                                    std::uint64_t payload) {
  delivered.messages += 1;
  delivered.bytes += bytes;
  delivered.payload += payload;
  auto& c = delivered_by_kind[kind];
  c.messages += 1;
  c.bytes += bytes;
  c.payload += payload;
}

void TrafficStats::record_duplicate_delivered(const std::string& kind,
                                              std::uint64_t bytes,
                                              std::uint64_t payload) {
  duplicated.messages += 1;
  duplicated.bytes += bytes;
  duplicated.payload += payload;
  auto& c = delivered_by_kind["dup:" + kind];
  c.messages += 1;
  c.bytes += bytes;
  c.payload += payload;
}

Network::Network(sim::Simulator& sim, NetworkConfig cfg)
    : Network(std::make_unique<SimTransport>(sim), nullptr, cfg) {}

Network::Network(Transport& transport, NetworkConfig cfg)
    : Network(nullptr, &transport, cfg) {}

Network::Network(std::unique_ptr<Transport> owned, Transport* external,
                 NetworkConfig cfg)
    : owned_transport_(std::move(owned)),
      transport_(external != nullptr ? *external : *owned_transport_),
      cfg_(cfg),
      rng_(transport_.rng().fork(0x6e65'74ULL /*"net"*/)),
      fault_rng_(transport_.rng().fork(0x6368'616fULL /*"chao"*/)),
      m_sent_msgs_(transport_.obs().metrics.counter("net.sent.messages")),
      m_sent_bytes_(transport_.obs().metrics.counter("net.sent.bytes")),
      m_sent_payload_(transport_.obs().metrics.counter("net.sent.payload")),
      m_delivered_msgs_(
          transport_.obs().metrics.counter("net.delivered.messages")),
      m_delivered_bytes_(
          transport_.obs().metrics.counter("net.delivered.bytes")),
      m_delivered_payload_(
          transport_.obs().metrics.counter("net.delivered.payload")) {
  P2PFL_CHECK(cfg_.base_latency >= 0);
  P2PFL_CHECK(cfg_.latency_jitter >= 0);
  sim_transport_ = dynamic_cast<SimTransport*>(&transport_);
  transport_.set_sink(this);
}

Network::~Network() { transport_.set_sink(nullptr); }

sim::Simulator& Network::simulator() {
  sim::Simulator* sim = transport_.simulator();
  P2PFL_CHECK_MSG(sim != nullptr,
                  "Network::simulator() called on a non-deterministic "
                  "transport; simulation-only layers cannot run here");
  return *sim;
}

std::size_t Network::envelope_pool_slots() const {
  return sim_transport_ != nullptr ? sim_transport_->envelope_pool_slots() : 0;
}

void Network::count_drop(const char* reason) {
  transport_.obs()
      .metrics.counter(std::string("net.dropped.") + reason)
      .add(1);
  stats_.dropped_by_reason[reason] += 1;
}

void Network::attach(PeerId peer, Endpoint* endpoint) {
  P2PFL_CHECK(endpoint != nullptr);
  endpoints_[peer] = endpoint;
}

void Network::detach(PeerId peer) { endpoints_.erase(peer); }

bool Network::attached(PeerId peer) const {
  return endpoints_.count(peer) > 0;
}

SimDuration Network::latency_for(PeerId from, PeerId to) {
  SimDuration d = cfg_.base_latency;
  if (cfg_.latency_jitter > 0) {
    d += rng_.uniform_int(0, cfg_.latency_jitter);
  }
  auto it = extra_delay_.find(link_key(from, to));
  if (it != extra_delay_.end()) d += it->second;
  return d;
}

const LinkFaults& Network::faults_for(PeerId from, PeerId to,
                                      const std::string& kind) const {
  auto lit = link_faults_.find(link_key(from, to));
  if (lit != link_faults_.end()) return lit->second;
  if (!kind_faults_.empty()) {
    // Longest matching prefix wins; scan candidates not after `kind`.
    auto it = kind_faults_.upper_bound(kind);
    while (it != kind_faults_.begin()) {
      --it;
      const std::string& prefix = it->first;
      if (kind.compare(0, prefix.size(), prefix) == 0) return it->second;
    }
  }
  return cfg_.faults;
}

void Network::set_link_faults(PeerId from, PeerId to, LinkFaults faults) {
  link_faults_[link_key(from, to)] = faults;
}

void Network::clear_link_faults(PeerId from, PeerId to) {
  link_faults_.erase(link_key(from, to));
}

void Network::set_kind_faults(std::string kind_prefix, LinkFaults faults) {
  kind_faults_[std::move(kind_prefix)] = faults;
}

void Network::clear_kind_faults(const std::string& kind_prefix) {
  kind_faults_.erase(kind_prefix);
}

void Network::partition(const std::vector<std::vector<PeerId>>& groups) {
  partition_group_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (PeerId p : groups[g]) {
      partition_group_[p] = static_cast<int>(g);
    }
  }
  partition_active_ = true;
}

void Network::heal() {
  partition_active_ = false;
  partition_group_.clear();
}

bool Network::partitioned(PeerId from, PeerId to) const {
  if (!partition_active_) return false;
  // Peers absent from every named group share one implicit group (-1).
  const auto f = partition_group_.find(from);
  const auto t = partition_group_.find(to);
  const int gf = f == partition_group_.end() ? -1 : f->second;
  const int gt = t == partition_group_.end() ? -1 : t->second;
  return gf != gt;
}

void Network::schedule_delivery(Envelope env, PeerId from, PeerId to) {
  SimDuration delay = 0;
  if (transport_.deterministic()) {
    // The simulator has no wire, so the Network models the link: latency
    // with jitter, chaos reordering, egress serialization. On a real
    // transport the kernel and socket provide all of these and the
    // modeled delay stays 0 (ignored by the backend anyway).
    delay = latency_for(from, to);
    const LinkFaults& f = faults_for(from, to, env.kind);
    if (f.reorder_prob > 0.0 && f.reorder_jitter > 0 &&
        fault_rng_.chance(f.reorder_prob)) {
      delay += fault_rng_.uniform_int(0, f.reorder_jitter);
    }
    if (cfg_.egress_bytes_per_sec > 0) {
      // Serialize through the sender's NIC: transmission begins when the
      // link frees up and occupies it for wire_bytes / bandwidth.
      const SimDuration tx = static_cast<SimDuration>(
          static_cast<double>(env.wire_bytes) /
          static_cast<double>(cfg_.egress_bytes_per_sec) * kSecond);
      SimTime& free_at = egress_free_at_[from];
      const SimTime start = std::max(transport_.now(), free_at);
      free_at = start + tx;
      delay += (free_at - transport_.now());
    }
  }
  transport_.send_frame(std::move(env), delay);
}

void Network::send(Envelope env) {
  if (crashed_.count(env.from) > 0) {  // dead peers emit nothing
    count_drop("sender_crashed");
    return;
  }
  if (blocked_.count(link_key(env.from, env.to)) > 0) {
    count_drop("link_blocked");
    return;
  }
  if (partitioned(env.from, env.to)) {
    count_drop("partitioned");
    return;
  }
  if (cfg_.encode_verify) verify_encoding(env);
  env.dest_incarnation = incarnation(env.to);

  obs::SpanRecorder& sr = transport_.obs().spans;
  if (sr.enabled() && env.span.span == obs::kNoSpan) {
    env.span = sr.current_ctx();
  }

  const bool self = env.from == env.to;
  if (self) {
    if (sr.enabled()) {
      env.span.span = sr.open(obs::SpanKind::kLink, env.kind, env.from,
                              env.span.round, env.span.span);
    }
    transport_.send_frame(std::move(env), 0);
    return;
  }

  stats_.record_sent(env.kind, env.wire_bytes, env.payload_bytes);
  m_sent_msgs_.add(1);
  m_sent_bytes_.add(env.wire_bytes);
  m_sent_payload_.add(env.payload_bytes);
  transport_.obs()
      .metrics.counter("net.sent.bytes." + env.kind)
      .add(env.wire_bytes);
  obs::TraceStream& tr = transport_.obs().trace;
  if (tr.category_enabled("net")) {
    tr.instant("net", "net.send " + env.kind, env.from,
               {{"to", env.to}, {"bytes", env.wire_bytes}});
  }

  const LinkFaults& f = faults_for(env.from, env.to, env.kind);
  if (f.drop_prob > 0.0 && fault_rng_.chance(f.drop_prob)) {
    // Lost in flight: the sender paid the bytes, nobody receives them.
    count_drop("chaos_loss");
    if (tr.category_enabled("net")) {
      tr.instant("net", "net.chaos_drop " + env.kind, env.from,
                 {{"to", env.to}});
    }
    return;
  }
  // Corruption damages the real encoding; a later duplicate draw copies
  // the damaged envelope, so both copies carry the same broken bytes.
  const bool flip =
      f.corrupt_prob > 0.0 && fault_rng_.chance(f.corrupt_prob);
  const bool trunc =
      f.truncate_prob > 0.0 && fault_rng_.chance(f.truncate_prob);
  if (flip || trunc) maybe_corrupt(env, flip, trunc);
  const bool duplicate =
      f.duplicate_prob > 0.0 && fault_rng_.chance(f.duplicate_prob);
  if (duplicate) {
    transport_.obs().metrics.counter("net.chaos.duplicates").add(1);
    if (tr.category_enabled("net")) {
      tr.instant("net", "net.chaos_dup " + env.kind, env.from,
                 {{"to", env.to}});
    }
    // Duplicate copy scheduled first to keep the fault-RNG draw order of
    // schedule_delivery (reorder jitter) identical to the pre-span code.
    Envelope dup = env;
    dup.chaos_duplicate = true;
    if (sr.enabled()) {
      dup.span.span = sr.open(obs::SpanKind::kLink, dup.kind, dup.from,
                              dup.span.round, dup.span.span);
    }
    const PeerId dup_from = dup.from;
    const PeerId dup_to = dup.to;
    schedule_delivery(std::move(dup), dup_from, dup_to);
  }
  if (sr.enabled()) {
    // Each in-flight copy gets its own link span: open at send, closed at
    // delivery, parented to whatever span the sender was inside.
    env.span.span = sr.open(obs::SpanKind::kLink, env.kind, env.from,
                            env.span.round, env.span.span);
  }
  const PeerId env_from = env.from;
  const PeerId env_to = env.to;
  schedule_delivery(std::move(env), env_from, env_to);
}

void Network::verify_encoding(const Envelope& env) const {
  const Codec* codec = CodecRegistry::global().find_kind(env.kind);
  if (codec == nullptr) {
    // Raw / test-only kind: nothing to check on the simulator, a hard
    // error on a real transport, where only canonical frames travel.
    P2PFL_CHECK_MSG(transport_.deterministic(),
                    "kind '" + env.kind +
                        "' has no registered codec; only canonical codec "
                        "frames may cross a real transport");
    return;
  }
  std::optional<Bytes> encoded = codec->encode(env.body);
  P2PFL_CHECK_MSG(encoded.has_value(),
                  "payload type does not match the codec for kind '" +
                      env.kind + "'");
  const std::int64_t charged = static_cast<std::int64_t>(env.wire_bytes);
  const std::int64_t actual =
      static_cast<std::int64_t>(encoded->size()) + env.modeled_delta;
  P2PFL_CHECK_MSG(charged == actual,
                  "charged wire_bytes " + std::to_string(env.wire_bytes) +
                      " for kind '" + env.kind + "' != encoded size " +
                      std::to_string(encoded->size()) + " + modeled_delta " +
                      std::to_string(env.modeled_delta));
}

void Network::maybe_corrupt(Envelope& env, bool flip, bool truncate) {
  const Codec* codec = CodecRegistry::global().find_kind(env.kind);
  if (codec == nullptr) return;  // only real encodings can be damaged
  std::optional<Bytes> encoded = codec->encode(env.body);
  if (!encoded.has_value()) return;
  Bytes wire = std::move(*encoded);
  if (truncate && !wire.empty()) {
    // Random strict prefix (possibly empty) — strict decoders reject it.
    wire.resize(fault_rng_.index(wire.size()));
  }
  if (flip && !wire.empty()) {
    const std::size_t bit = fault_rng_.index(wire.size() * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  env.body = CorruptPayload{std::move(wire)};
  transport_.obs().metrics.counter("net.chaos.corrupted").add(1);
  obs::TraceStream& tr = transport_.obs().trace;
  if (tr.category_enabled("net")) {
    tr.instant("net", "net.chaos_corrupt " + env.kind, env.from,
               {{"to", env.to}});
  }
}

void Network::transport_deliver(Envelope& env) {
  obs::SpanRecorder& sr = transport_.obs().spans;
  const obs::SpanId link = sr.enabled() ? env.span.span : obs::kNoSpan;
  if (crashed_.count(env.to) > 0) {  // lost in flight
    count_drop("receiver_crashed");
    if (link != obs::kNoSpan) sr.close_aborted(link);
    return;
  }
  if (env.dest_incarnation != incarnation(env.to)) {
    // Addressed to a process that has since died: even though a
    // same-numbered peer is back (possibly with wiped state), this
    // message belongs to its predecessor's TCP connections.
    count_drop("stale_incarnation");
    if (link != obs::kNoSpan) sr.close_aborted(link);
    return;
  }
  auto it = endpoints_.find(env.to);
  if (it == endpoints_.end()) {  // nobody listening
    count_drop("unattached");
    if (link != obs::kNoSpan) sr.close_aborted(link);
    return;
  }
  // A chaos-corrupted message carries its damaged real encoding; the
  // receiving side of the network decodes it back to a typed payload.
  // Failure means the receiver rejected the frame: dropped before any
  // delivered accounting, under its own drop reason.
  const Envelope* msg = &env;
  Envelope repaired;
  if (const CorruptPayload* cp = payload<CorruptPayload>(env.body)) {
    const Codec* codec = CodecRegistry::global().find_kind(env.kind);
    std::optional<std::any> decoded =
        codec != nullptr ? codec->decode(cp->wire) : std::nullopt;
    if (!decoded.has_value()) {
      count_drop("corrupt");
      obs::TraceStream& tr = transport_.obs().trace;
      if (tr.category_enabled("net")) {
        tr.instant("net", "net.drop_corrupt " + env.kind, env.to,
                   {{"from", env.from}});
      }
      if (link != obs::kNoSpan) sr.close_aborted(link);
      return;
    }
    repaired = env;
    repaired.body = std::move(*decoded);
    msg = &repaired;
  }
  if (env.from != env.to) {
    if (env.chaos_duplicate) {
      // Chaos duplicate: delivered to the actor like any message, but
      // accounted under a distinct label so per-kind delivered bytes
      // stay equal to the Eq. (4)/(5) protocol counts.
      stats_.record_duplicate_delivered(env.kind, env.wire_bytes,
                                        env.payload_bytes);
      transport_.obs().metrics.counter("net.delivered.dup.messages").add(1);
      transport_.obs()
          .metrics.counter("net.delivered.dup.bytes")
          .add(env.wire_bytes);
      obs::TraceStream& tr = transport_.obs().trace;
      if (tr.category_enabled("net")) {
        tr.instant("net", "net.deliver_dup " + env.kind, env.to,
                   {{"from", env.from}, {"bytes", env.wire_bytes}});
      }
    } else {
      stats_.record_delivered(env.kind, env.wire_bytes, env.payload_bytes);
      m_delivered_msgs_.add(1);
      m_delivered_bytes_.add(env.wire_bytes);
      m_delivered_payload_.add(env.payload_bytes);
      transport_.obs()
          .metrics.counter("net.delivered.bytes." + env.kind)
          .add(env.wire_bytes);
      obs::TraceStream& tr = transport_.obs().trace;
      if (tr.category_enabled("net")) {
        tr.instant("net", "net.deliver " + env.kind, env.to,
                   {{"from", env.from}, {"bytes", env.wire_bytes}});
      }
    }
  }
  if (link != obs::kNoSpan) {
    // Close the wire span, then run the handler with it on the context
    // stack: spans the handler opens become children of this delivery,
    // and waits the handler resolves can record it as their closer.
    sr.close(link);
    sr.push(link);
    it->second->deliver(*msg);
    sr.pop();
    return;
  }
  it->second->deliver(*msg);
}

void Network::transport_peer_up(PeerId peer) {
  transport_.obs().metrics.counter("net.transport.peer_up").add(1);
  obs::TraceStream& tr = transport_.obs().trace;
  if (tr.category_enabled("net")) {
    tr.instant("net", "net.peer_up", peer);
  }
}

void Network::transport_peer_down(PeerId peer, const char* reason) {
  transport_.obs().metrics.counter("net.transport.peer_down").add(1);
  obs::TraceStream& tr = transport_.obs().trace;
  if (tr.category_enabled("net")) {
    tr.instant("net", std::string("net.peer_down ") + reason, peer);
  }
}

void Network::crash(PeerId peer) {
  if (crashed_.insert(peer).second) incarnation_[peer] += 1;
}

std::uint64_t Network::incarnation(PeerId peer) const {
  auto it = incarnation_.find(peer);
  return it == incarnation_.end() ? 0 : it->second;
}

void Network::restore(PeerId peer) { crashed_.erase(peer); }

bool Network::crashed(PeerId peer) const { return crashed_.count(peer) > 0; }

void Network::block_link(PeerId from, PeerId to) {
  blocked_.insert(link_key(from, to));
}

void Network::unblock_link(PeerId from, PeerId to) {
  blocked_.erase(link_key(from, to));
}

void Network::set_link_delay(PeerId from, PeerId to, SimDuration extra) {
  P2PFL_CHECK(extra >= 0);
  extra_delay_[link_key(from, to)] = extra;
}

void Network::clear_link_delay(PeerId from, PeerId to) {
  extra_delay_.erase(link_key(from, to));
}

}  // namespace p2pfl::net
