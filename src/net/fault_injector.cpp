#include "net/fault_injector.hpp"

#include <algorithm>

namespace p2pfl::net {

FaultInjector::FaultInjector(obs::Observability& obs)
    : stall_windows_(obs.metrics.counter("chaos.transport.stall_windows")),
      throttle_windows_(
          obs.metrics.counter("chaos.transport.throttle_windows")),
      stalled_frames_(obs.metrics.counter("chaos.transport.stalled_frames")),
      throttled_frames_(
          obs.metrics.counter("chaos.transport.throttled_frames")) {}

void FaultInjector::stall_link(PeerId from, PeerId to, SimTime until) {
  std::lock_guard<std::mutex> lock(mu_);
  SimTime& u = stalls_[{from, to}];
  u = std::max(u, until);
  stall_windows_.add(1);
}

void FaultInjector::stall_pair(PeerId a, PeerId b, SimTime until) {
  stall_link(a, b, until);
  stall_link(b, a, until);
}

void FaultInjector::throttle_peer(PeerId peer, std::uint64_t bytes_per_sec,
                                  SimTime until) {
  std::lock_guard<std::mutex> lock(mu_);
  Throttle& t = throttles_[peer];
  t.bytes_per_sec = bytes_per_sec;
  t.until = std::max(t.until, until);
  throttle_windows_.add(1);
}

void FaultInjector::clear(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  stalls_.clear();
  throttles_.clear();
  // Keep future release floors: already-held frames must stay FIFO.
  for (auto it = release_floor_.begin(); it != release_floor_.end();) {
    it = it->second <= now ? release_floor_.erase(it) : std::next(it);
  }
}

bool FaultInjector::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !stalls_.empty() || !throttles_.empty();
}

SimTime FaultInjector::stall_until_locked(PeerId from, PeerId to,
                                          SimTime now) {
  auto it = stalls_.find({from, to});
  if (it == stalls_.end()) return now;
  if (it->second <= now) {
    stalls_.erase(it);  // window expired; drop the entry
    return now;
  }
  return it->second;
}

SimDuration FaultInjector::frame_delay(PeerId from, PeerId to,
                                       std::uint64_t bytes, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  SimTime release = now;

  const SimTime stall = stall_until_locked(from, to, now);
  if (stall > release) {
    release = stall;
    stalled_frames_.add(1);
  }

  auto th = throttles_.find(from);
  if (th != throttles_.end()) {
    if (th->second.until <= now) {
      throttles_.erase(th);
    } else if (th->second.bytes_per_sec > 0) {
      // Serialization model: the frame starts once the egress is free
      // (and any stall cleared) and takes bytes/rate to drain.
      Throttle& t = th->second;
      const SimTime start = std::max(t.free_at, release);
      const SimDuration xmit = static_cast<SimDuration>(
          (bytes * 1'000'000ULL) / t.bytes_per_sec);
      release = start + xmit;
      t.free_at = release;
      throttled_frames_.add(1);
    }
  }

  // FIFO floor: never let this frame release before an earlier one on
  // the same directed link.
  SimTime& floor = release_floor_[{from, to}];
  release = std::max(release, floor);
  if (release > now) {
    floor = release;
  } else {
    release_floor_.erase({from, to});
  }
  return release - now;
}

SimTime FaultInjector::writable_at(PeerId from, PeerId to, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  SimTime at = stall_until_locked(from, to, now);
  auto th = throttles_.find(from);
  if (th != throttles_.end()) {
    if (th->second.until <= now) {
      throttles_.erase(th);
    } else {
      at = std::max(at, th->second.free_at);
    }
  }
  if (at > now) stalled_frames_.add(1);
  return at;
}

void FaultInjector::note_written(PeerId from, std::uint64_t bytes,
                                 SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto th = throttles_.find(from);
  if (th == throttles_.end() || th->second.until <= now ||
      th->second.bytes_per_sec == 0) {
    return;
  }
  Throttle& t = th->second;
  const SimDuration xmit =
      static_cast<SimDuration>((bytes * 1'000'000ULL) / t.bytes_per_sec);
  t.free_at = std::max(t.free_at, now) + xmit;
  throttled_frames_.add(1);
}

}  // namespace p2pfl::net
