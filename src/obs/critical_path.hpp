// Per-round critical-path extraction over a SpanRecorder's causal DAG,
// plus the serializers built on it: span JSONL dumps, human-readable
// attribution tables, and the abort post-mortem.
//
// The extractor walks backward from the round's commit: starting at the
// closed round span, it repeatedly (a) hops to the span whose completion
// closed the current one when that completion coincides with the
// unattributed frontier, else (b) attributes the interval between the
// current span's start and the frontier to the current span and moves to
// its parent. The produced segments tile [round start, commit] with no
// gaps or overlaps, so the per-phase durations sum *exactly* to the
// measured round latency — an invariant the deterministic simulator
// makes testable (see tests/span_test.cpp). Any causally unexplained
// remainder is attributed to an explicit "(unattributed)" phase rather
// than silently dropped, and `complete` reports whether one was needed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/span.hpp"

namespace p2pfl::obs {

/// One tile of the round's latency, attributed to one span.
struct PathSegment {
  SpanId span = kNoSpan;
  SpanKind kind = SpanKind::kLink;
  std::string phase;  // attribution label (see phase_label)
  PeerId peer = kNoPeer;
  SimTime start = 0;
  SimTime end = 0;
};

struct CriticalPath {
  std::uint64_t round = 0;
  SimTime start = 0;  // round span open (round begin)
  SimTime end = 0;    // round span close (commit)
  /// A closed, non-aborted round span existed for this round.
  bool found = false;
  /// Every microsecond was causally attributed (no "(unattributed)").
  bool complete = false;
  /// Chronological tiles of [start, end].
  std::vector<PathSegment> segments;
  /// Per-phase totals, ordered by phase name; sums exactly to total().
  std::vector<std::pair<std::string, SimDuration>> phase_totals;

  SimDuration total() const { return end - start; }
};

/// Attribution label of one span: the kind name, except links which are
/// labeled "link:<normalized message kind>".
std::string phase_label(const SpanRecord& s);

/// Collapse per-subgroup message kinds for attribution grouping:
/// "sac/sg3/share" -> "sac/sg*/share", "raft/sg0/ae" -> "raft/sg*/ae".
std::string normalize_kind(std::string_view kind);

/// Extract the critical path of `round`. `found == false` (empty path)
/// when the round never committed or its spans were evicted.
CriticalPath extract_critical_path(const SpanRecorder& rec,
                                   std::uint64_t round);

/// Human-readable rendering: the segment walk plus the phase table.
std::string critical_path_table(const CriticalPath& cp);

/// One JSON object per retained span (all rounds, id order).
std::string spans_jsonl(const SpanRecorder& rec);
/// One JSON object per span of one round (id order).
std::string round_spans_jsonl(const SpanRecorder& rec, std::uint64_t round);

/// Abort post-mortem: the structured dump the flight recorder emits when
/// `on_round_aborted` fires. `jsonl` is the round's span dump; `table`
/// is the human-readable summary (open/aborted spans first).
struct Postmortem {
  std::uint64_t round = 0;
  std::string jsonl;
  std::string table;
};
Postmortem make_postmortem(const SpanRecorder& rec, std::uint64_t round);

}  // namespace p2pfl::obs
