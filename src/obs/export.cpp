#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <set>

namespace p2pfl::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_args(std::string& out, const TraceArgs& args) {
  out += "\"args\":{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ',';
    first = false;
    out += json_quote(key);
    out += ':';
    out += value.json;
  }
  out += '}';
}

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string metrics_jsonl(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, c] : registry.counters()) {
    out += "{\"type\":\"counter\",\"name\":" + json_quote(name) +
           ",\"value\":" + std::to_string(c.value()) + "}\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    out += "{\"type\":\"gauge\",\"name\":" + json_quote(name) +
           ",\"value\":" + std::to_string(g.value()) + "}\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    out += "{\"type\":\"histogram\",\"name\":" + json_quote(name) +
           ",\"count\":" + std::to_string(h.count()) +
           ",\"sum\":" + fmt_double(h.sum()) +
           ",\"min\":" + fmt_double(h.min()) +
           ",\"max\":" + fmt_double(h.max()) +
           ",\"p50\":" + fmt_double(h.quantile(0.50)) +
           ",\"p90\":" + fmt_double(h.quantile(0.90)) +
           ",\"p99\":" + fmt_double(h.quantile(0.99)) + ",\"buckets\":[";
    const auto& bounds = h.bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      out += i < bounds.size() ? fmt_double(bounds[i]) : "\"inf\"";
      out += ",\"count\":" + std::to_string(counts[i]) + "}";
    }
    out += "]}\n";
  }
  return out;
}

namespace {

std::uint32_t span_tid(PeerId peer) { return peer == kNoPeer ? 0 : peer; }

/// Shared body of the two chrome_trace_json overloads; `spans` optional.
std::string chrome_trace_json_impl(const TraceStream& trace,
                                   const SpanRecorder* spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Name the process and one track per distinct tid so the viewer shows
  // "peer N" rows instead of bare numbers.
  sep();
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"p2pfl simulation (virtual time)\"}}";
  std::set<std::uint32_t> tids;
  for (const TraceEvent& ev : trace.events()) tids.insert(ev.tid);
  if (spans != nullptr) {
    for (const auto& [id, s] : spans->all()) tids.insert(span_tid(s.peer));
  }
  for (std::uint32_t tid : tids) {
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"peer " +
           std::to_string(tid) + "\"}}";
  }

  for (const TraceEvent& ev : trace.events()) {
    sep();
    out += "{\"name\":" + json_quote(ev.name) +
           ",\"cat\":" + json_quote(ev.cat) + ",\"ph\":\"" + ev.ph +
           "\",\"ts\":" + std::to_string(ev.ts) +
           ",\"pid\":1,\"tid\":" + std::to_string(ev.tid);
    if (ev.ph == 'X') out += ",\"dur\":" + std::to_string(ev.dur);
    if (ev.ph == 'i') out += ",\"s\":\"t\"";
    out += ',';
    append_args(out, ev.args);
    out += '}';
  }

  if (trace.dropped() > 0) {
    // Surface ring evictions in the viewer; absent when under the cap so
    // bounded runs keep byte-identical golden traces.
    sep();
    out += "{\"name\":\"trace.dropped_events\",\"cat\":\"sim\",\"ph\":\"i\","
           "\"ts\":0,\"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{\"count\":" +
           std::to_string(trace.dropped()) + "}}";
  }

  if (spans != nullptr) {
    for (const auto& [id, s] : spans->all()) {
      sep();
      out += "{\"name\":" + json_quote(s.name) +
             ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" +
             std::to_string(s.start) +
             ",\"dur\":" + std::to_string(s.end - s.start) +
             ",\"pid\":1,\"tid\":" + std::to_string(span_tid(s.peer)) +
             ",\"args\":{\"id\":" + std::to_string(s.id) +
             ",\"parent\":" + std::to_string(s.parent) +
             ",\"closed_by\":" + std::to_string(s.closed_by) +
             ",\"round\":" + std::to_string(s.round) + ",\"kind\":" +
             json_quote(span_kind_name(s.kind)) +
             ",\"aborted\":" + (s.aborted ? "true" : "false") + "}}";
    }
    // Flow events: one arrow per parent -> child edge, drawn from the
    // child's start on the parent's track to the child's track.
    for (const auto& [id, s] : spans->all()) {
      const SpanRecord* parent =
          s.parent != kNoSpan ? spans->find(s.parent) : nullptr;
      if (parent == nullptr) continue;
      const std::string flow_id = std::to_string(s.id);
      sep();
      out += "{\"name\":\"causes\",\"cat\":\"span\",\"ph\":\"s\",\"id\":" +
             flow_id + ",\"ts\":" + std::to_string(s.start) +
             ",\"pid\":1,\"tid\":" + std::to_string(span_tid(parent->peer)) +
             ",\"args\":{}}";
      sep();
      out += "{\"name\":\"causes\",\"cat\":\"span\",\"ph\":\"f\",\"bp\":"
             "\"e\",\"id\":" +
             flow_id + ",\"ts\":" + std::to_string(s.start) +
             ",\"pid\":1,\"tid\":" + std::to_string(span_tid(s.peer)) +
             ",\"args\":{}}";
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace

std::string chrome_trace_json(const TraceStream& trace) {
  return chrome_trace_json_impl(trace, nullptr);
}

std::string chrome_trace_json(const TraceStream& trace,
                              const SpanRecorder& spans) {
  return chrome_trace_json_impl(trace, &spans);
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(f);
}

}  // namespace p2pfl::obs
