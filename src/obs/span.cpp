#include "obs/span.hpp"

namespace p2pfl::obs {

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kRound: return "round";
    case SpanKind::kLocalTrain: return "local_train";
    case SpanKind::kSacShare: return "sac_share";
    case SpanKind::kSacSubtotal: return "sac_subtotal";
    case SpanKind::kUpload: return "upload";
    case SpanKind::kFedCollect: return "fed_collect";
    case SpanKind::kFedMerge: return "fed_merge";
    case SpanKind::kRaftReplicate: return "raft_replicate";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kRecovery: return "recovery";
    case SpanKind::kLink: return "link";
    case SpanKind::kRejoin: return "rejoin";
  }
  return "?";
}

void SpanRecorder::evict_if_needed(std::uint64_t incoming_round) {
  // Ring semantics over rounds: opening a span for a round not yet in
  // the ring evicts the oldest retained round. Round 0 — the ambient
  // bucket for Raft traffic and other out-of-round work — is exempt
  // (its growth is bounded by the per-round cap instead).
  if (incoming_round == 0 || rounds_.count(incoming_round) > 0) return;
  const std::size_t nonzero = rounds_.size() - rounds_.count(0);
  if (nonzero < max_rounds_) return;
  auto oldest = rounds_.begin();
  if (oldest->first == 0) ++oldest;
  for (SpanId id : oldest->second) spans_.erase(id);
  rounds_.erase(oldest);
  ++evicted_rounds_;
}

SpanId SpanRecorder::open(SpanKind kind, std::string name, PeerId peer,
                          std::uint64_t round, SpanId parent) {
  if (!enabled()) return kNoSpan;
  std::lock_guard<std::mutex> lock(mu_);
  evict_if_needed(round);
  std::vector<SpanId>& bucket = rounds_[round];
  if (bucket.size() >= max_spans_per_round_) {
    ++dropped_;
    return kNoSpan;
  }
  if (parent == kNoSpan) parent = current_locked();
  const SpanId id = next_id_++;
  SpanRecord rec;
  rec.id = id;
  rec.parent = parent;
  rec.round = round;
  rec.kind = kind;
  rec.name = std::move(name);
  rec.peer = peer;
  rec.start = *clock_;
  rec.end = rec.start;
  spans_.emplace(id, std::move(rec));
  bucket.push_back(id);
  return id;
}

void SpanRecorder::close(SpanId id, SpanId closed_by) {
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(id);
  if (it == spans_.end() || !it->second.open) return;
  it->second.open = false;
  it->second.end = *clock_;
  if (closed_by != kNoSpan && closed_by != id) {
    it->second.closed_by = closed_by;
  }
}

void SpanRecorder::close_aborted(SpanId id) {
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(id);
  if (it == spans_.end() || !it->second.open) return;
  it->second.open = false;
  it->second.end = *clock_;
  it->second.aborted = true;
}

void SpanRecorder::push(SpanId id) {
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(id);
  stack_.emplace_back(id, it != spans_.end() ? it->second.round : 0);
}

void SpanRecorder::pop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!stack_.empty()) stack_.pop_back();
}

SpanId SpanRecorder::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_locked();
}

SpanContext SpanRecorder::current_ctx() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stack_.empty()) return {};
  return {stack_.back().second, stack_.back().first};
}

const SpanRecord* SpanRecorder::find(SpanId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(id);
  return it == spans_.end() ? nullptr : &it->second;
}

const std::vector<SpanId>* SpanRecorder::round_spans(
    std::uint64_t round) const {
  auto it = rounds_.find(round);
  return it == rounds_.end() ? nullptr : &it->second;
}

std::vector<std::uint64_t> SpanRecorder::rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  out.reserve(rounds_.size());
  for (const auto& [r, ids] : rounds_) out.push_back(r);
  return out;
}

void SpanRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  rounds_.clear();
  stack_.clear();
  dropped_ = 0;
  evicted_rounds_ = 0;
  next_id_ = 1;
}

}  // namespace p2pfl::obs
