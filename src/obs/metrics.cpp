#include "obs/metrics.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace p2pfl::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  P2PFL_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  P2PFL_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must be ascending");
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Continuous 0-based rank of the requested order statistic.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(cum + c)) {
      // The order statistic lies in bucket i; interpolate within it.
      const double lo = i == 0 ? min_ : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : max_;
      const double frac = (rank - static_cast<double>(cum)) /
                          static_cast<double>(c);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cum += c;
  }
  return max_;
}

std::vector<double> Histogram::linear_bounds(double lo, double step,
                                             std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lo + static_cast<double>(i) * step);
  }
  return out;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.value() : 0;
}

std::int64_t MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.value() : 0;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

}  // namespace p2pfl::obs
