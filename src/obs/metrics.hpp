// Deterministic metrics registry: named counters, gauges and
// fixed-bucket histograms.
//
// Under the discrete-event Simulator every sample is taken at a point in
// *virtual* time and two runs with the same seed produce byte-identical
// metric dumps. Nothing in this module reads the wall clock or any other
// ambient state. Metric objects are created on first lookup and live as
// long as the registry; references returned by counter()/gauge()/
// histogram() stay valid forever (node-based map), so hot paths can
// cache them and skip the name lookup.
//
// Thread safety (for the TCP transport, whose event-loop thread samples
// while other threads may create/read): Counter and Gauge updates are
// relaxed atomics, and registry creation/lookup is mutex-guarded — both
// invisible to the single-threaded simulator path, whose golden dumps
// stay byte-identical. Histograms stay unsynchronized: they are only
// ever recorded from the owning callback thread (simulator caller or
// TCP loop). The counters()/gauges()/histograms() iteration views are
// safe only while no other thread is *creating* metrics — dump after
// shutdown, or on the loop thread via TcpTransport::call.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace p2pfl::obs {

/// Monotonically increasing event count (messages sent, elections won…).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed level (current leaders, pending events…).
/// A registered-but-never-set gauge reads 0 and appears in metric dumps
/// exactly like a never-incremented counter does (obs_test.cpp pins
/// this parity).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with quantile queries.
///
/// `bounds` are ascending bucket upper limits; samples above the last
/// bound land in an implicit overflow bucket. Quantiles interpolate
/// linearly inside the bucket containing the requested order statistic
/// and are clamped to the observed [min, max], so single-sample and
/// all-equal distributions report exact values and the estimation error
/// is bounded by the width of one bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Estimate the q-quantile (q in [0, 1]); 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket sample counts; size bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// n bounds: lo, lo+step, ..., lo+(n-1)*step.
  static std::vector<double> linear_bounds(double lo, double step,
                                           std::size_t n);
  /// n bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t n);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-keyed collection of metrics. Iteration order is the lexical
/// order of names (std::map), which keeps every export deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates the histogram with `bounds` on first use; later calls with
  /// the same name return the existing histogram (bounds are ignored).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Read-only lookups: the metric's value if it exists, 0 otherwise.
  /// Unlike counter()/gauge() these never create the metric, so pure
  /// observers (the SLO watchdog's per-round deltas, CLI dumps) can poll
  /// names a scenario never produced without growing the registry — and
  /// without perturbing the byte-identical golden metric dumps.
  std::uint64_t counter_value(const std::string& name) const;
  std::int64_t gauge_value(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  /// Guards map creation/lookup only; the returned references are
  /// stable and the metric objects synchronize themselves (atomics).
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace p2pfl::obs
