#include "obs/trace.hpp"

#include <cstdio>

#include "obs/export.hpp"

namespace p2pfl::obs {

ArgValue::ArgValue(const char* s) : json(json_quote(s)) {}
ArgValue::ArgValue(const std::string& s) : json(json_quote(s)) {}
ArgValue::ArgValue(std::string_view s) : json(json_quote(s)) {}

ArgValue::ArgValue(double v) {
  char buf[40];
  // %.17g round-trips any double and formats identically across runs.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  json = buf;
}

bool TraceStream::push(TraceEvent ev) {
  while (events_.size() >= capacity_ && !events_.empty()) {
    events_.pop_front();  // ring: the newest events win
    ++dropped_;
  }
  if (capacity_ == 0) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(ev));
  return true;
}

void TraceStream::instant(std::string_view cat, std::string_view name,
                          std::uint32_t tid, TraceArgs args) {
  if (!category_enabled(cat)) return;
  TraceEvent ev;
  ev.ts = *clock_;
  ev.ph = 'i';
  ev.tid = tid;
  ev.cat = cat;
  ev.name = name;
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceStream::complete(std::string_view cat, std::string_view name,
                           std::uint32_t tid, SimTime start, SimDuration dur,
                           TraceArgs args) {
  if (!category_enabled(cat)) return;
  TraceEvent ev;
  ev.ts = start;
  ev.dur = dur;
  ev.ph = 'X';
  ev.tid = tid;
  ev.cat = cat;
  ev.name = name;
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceStream::counter(std::string_view cat, std::string_view name,
                          std::int64_t value) {
  if (!category_enabled(cat)) return;
  TraceEvent ev;
  ev.ts = *clock_;
  ev.ph = 'C';
  ev.tid = 0;
  ev.cat = cat;
  ev.name = name;
  ev.args.emplace_back("value", value);
  push(std::move(ev));
}

}  // namespace p2pfl::obs
