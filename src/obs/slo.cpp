#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"

namespace p2pfl::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Short fixed-precision rendering for human-readable tables/details.
std::string fmt_short(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// Continuous-rank quantile of an unsorted window (linear interpolation
/// between order statistics, matching Histogram::quantile's convention).
double window_quantile(const std::deque<double>& w, double q) {
  P2PFL_CHECK(!w.empty());
  std::vector<double> sorted(w.begin(), w.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

const char* slo_field_name(SloField f) {
  switch (f) {
    case SloField::kLatencyMs: return "latency_ms";
    case SloField::kWireBytes: return "wire_bytes";
    case SloField::kPayloadBytes: return "payload_bytes";
    case SloField::kRetries: return "retries";
    case SloField::kDrops: return "drops";
    case SloField::kAborts: return "aborts";
    case SloField::kCrashes: return "crashes";
    case SloField::kEvictions: return "evictions";
    case SloField::kStrikes: return "strikes";
    case SloField::kLoss: return "loss";
    case SloField::kAccuracy: return "accuracy";
  }
  return "?";
}

double slo_field(const RoundSample& s, SloField f) {
  switch (f) {
    case SloField::kLatencyMs: return s.latency_ms;
    case SloField::kWireBytes: return static_cast<double>(s.wire_bytes);
    case SloField::kPayloadBytes: return static_cast<double>(s.payload_bytes);
    case SloField::kRetries: return static_cast<double>(s.retries);
    case SloField::kDrops: return static_cast<double>(s.drops);
    case SloField::kAborts: return static_cast<double>(s.aborts);
    case SloField::kCrashes: return static_cast<double>(s.crashes);
    case SloField::kEvictions: return static_cast<double>(s.evictions);
    case SloField::kStrikes: return static_cast<double>(s.strikes);
    case SloField::kLoss: return s.loss;
    case SloField::kAccuracy: return s.accuracy;
  }
  return 0.0;
}

const char* slo_rule_kind_name(SloRuleKind k) {
  switch (k) {
    case SloRuleKind::kThreshold: return "threshold";
    case SloRuleKind::kEwmaDrift: return "ewma_drift";
    case SloRuleKind::kQuantileDrift: return "quantile_drift";
    case SloRuleKind::kConvergenceStall: return "convergence_stall";
    case SloRuleKind::kByteBudget: return "byte_budget";
  }
  return "?";
}

SloEngine::SloEngine(std::vector<SloRule> rules)
    : rules_(std::move(rules)), states_(rules_.size()) {}

bool SloEngine::judge(const SloRule& r, RuleState& st, const RoundSample& s,
                      double& value, double& bound, std::string& detail) {
  value = slo_field(s, r.field);
  const auto above = [&](double v, double b) {
    return r.breach_when_above ? v > b : v < b;
  };
  switch (r.kind) {
    case SloRuleKind::kThreshold: {
      ++st.evaluated;
      bound = r.limit;
      if (!above(value, bound)) return false;
      detail = std::string(slo_field_name(r.field)) + "=" + fmt_short(value) +
               (r.breach_when_above ? " > " : " < ") + fmt_short(bound);
      return true;
    }
    case SloRuleKind::kEwmaDrift: {
      if (!st.baseline_init) {
        st.baseline = value;
        st.baseline_init = true;
        st.seen = 1;
        return false;
      }
      bool breach = false;
      if (st.seen >= r.warmup) {
        ++st.evaluated;
        bound = std::max(r.factor * st.baseline, r.limit);
        breach = above(value, bound);
      }
      ++st.seen;
      if (breach) {
        // A breaching sample is excluded from the baseline so a
        // sustained incident cannot drag the reference up and
        // self-silence the rule.
        detail = std::string(slo_field_name(r.field)) + "=" +
                 fmt_short(value) + " vs " + fmt_short(r.factor) + "×ewma(" +
                 fmt_short(st.baseline) + ")";
        return true;
      }
      st.baseline = r.alpha * value + (1.0 - r.alpha) * st.baseline;
      return false;
    }
    case SloRuleKind::kQuantileDrift: {
      bool breach = false;
      if (st.window.size() >= r.warmup) {
        ++st.evaluated;
        const double q = window_quantile(st.window, r.quantile);
        bound = std::max(r.factor * q, r.limit);
        breach = above(value, bound);
        if (breach) {
          detail = std::string(slo_field_name(r.field)) + "=" +
                   fmt_short(value) + " vs " + fmt_short(r.factor) + "×p" +
                   fmt_short(r.quantile * 100.0) + "(" + fmt_short(q) + ")";
        }
      }
      if (!breach) {
        // Same exclusion as EWMA drift: the rolling reference window
        // only absorbs in-SLO samples.
        st.window.push_back(value);
        while (st.window.size() > r.window) st.window.pop_front();
      }
      return breach;
    }
    case SloRuleKind::kConvergenceStall: {
      if (!st.baseline_init || value < st.baseline - r.min_delta) {
        st.baseline = value;
        st.baseline_init = true;
        st.stalled = 0;
        ++st.evaluated;
        return false;
      }
      ++st.stalled;
      ++st.evaluated;
      bound = st.baseline;
      if (st.stalled < r.window) return false;
      detail = "no improvement > " + fmt_double(r.min_delta) + " on best " +
               std::string(slo_field_name(r.field)) + " " +
               fmt_short(st.baseline) + " for " +
               std::to_string(st.stalled) + " evaluated rounds";
      return true;
    }
    case SloRuleKind::kByteBudget: {
      if (s.expected_payload_bytes <= 0.0) return false;
      ++st.evaluated;
      value = static_cast<double>(s.payload_bytes);
      bound = (1.0 + r.tolerance) * s.expected_payload_bytes;
      if (value <= bound) return false;
      detail = "payload " + std::to_string(s.payload_bytes) + " B > (1+" +
               fmt_short(r.tolerance) + ")×Eq(4)/(5) " +
               fmt_short(s.expected_payload_bytes) + " B";
      return true;
    }
  }
  return false;
}

std::vector<SloBreach> SloEngine::evaluate(const RoundSample& s,
                                           Observability* o) {
  ++samples_;
  std::vector<SloBreach> fired;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& r = rules_[i];
    RuleState& st = states_[i];
    if (r.committed_only && !s.committed) continue;
    // Loss/accuracy sentinel: the round was not evaluated, so rules on
    // those fields have nothing to judge.
    if ((r.field == SloField::kLoss || r.field == SloField::kAccuracy) &&
        slo_field(s, r.field) < 0.0) {
      continue;
    }
    double value = 0.0;
    double bound = 0.0;
    std::string detail;
    const std::uint64_t evaluated_before = st.evaluated;
    const bool breach = judge(r, st, s, value, bound, detail);
    if (o != nullptr && st.evaluated > evaluated_before) {
      o->metrics.counter("slo.evaluations").add(st.evaluated -
                                                evaluated_before);
    }
    if (!breach) continue;
    ++st.breaches;
    if (st.breaches == 1) st.first_breach_round = s.round;
    SloBreach b{r.name, s.round, value, bound, detail};
    if (o != nullptr) {
      o->metrics.counter("slo.breaches").add();
      o->metrics.counter("slo.breach." + r.name).add();
      if (o->trace.category_enabled("slo")) {
        o->trace.instant("slo", "slo.breach", 0,
                         {{"rule", r.name},
                          {"round", s.round},
                          {"value", value},
                          {"bound", bound},
                          {"detail", detail}});
      }
    }
    breaches_.push_back(b);
    fired.push_back(std::move(b));
  }
  return fired;
}

void SloEngine::register_metrics(Observability& o) const {
  o.metrics.counter("slo.evaluations");
  o.metrics.counter("slo.breaches");
  for (const SloRule& r : rules_) o.metrics.counter("slo.breach." + r.name);
}

SloReport SloEngine::report() const {
  SloReport rep;
  rep.samples = samples_;
  rep.breaches = breaches_;
  rep.rules.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    rep.rules.push_back({rules_[i].name, states_[i].evaluated,
                         states_[i].breaches, states_[i].first_breach_round});
  }
  return rep;
}

std::string SloReport::table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "  %-22s %10s %9s %12s\n", "rule",
                "evaluated", "breaches", "first breach");
  out += line;
  for (const RuleStats& r : rules) {
    std::snprintf(line, sizeof line, "  %-22s %10llu %9llu %12s\n",
                  r.rule.c_str(),
                  static_cast<unsigned long long>(r.evaluated),
                  static_cast<unsigned long long>(r.breaches),
                  r.breaches > 0
                      ? ("r" + std::to_string(r.first_breach_round)).c_str()
                      : "-");
    out += line;
  }
  std::snprintf(line, sizeof line, "  %zu samples, %zu breach(es): %s\n",
                static_cast<std::size_t>(samples), breaches.size(),
                healthy() ? "HEALTHY" : "BREACHED");
  out += line;
  return out;
}

std::string SloReport::json() const {
  std::string out = "{\"schema_version\":";
  out += std::to_string(kRoundSampleSchemaVersion);
  out += ",\"samples\":" + std::to_string(samples);
  out += ",\"healthy\":";
  out += healthy() ? "true" : "false";
  out += ",\"rules\":[";
  bool first = true;
  for (const RuleStats& r : rules) {
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":" + json_quote(r.rule) +
           ",\"evaluated\":" + std::to_string(r.evaluated) +
           ",\"breaches\":" + std::to_string(r.breaches);
    if (r.breaches > 0) {
      out += ",\"first_breach_round\":" + std::to_string(r.first_breach_round);
    }
    out += '}';
  }
  out += "],\"breaches\":[";
  first = true;
  for (const SloBreach& b : breaches) {
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":" + json_quote(b.rule) +
           ",\"round\":" + std::to_string(b.round) +
           ",\"value\":" + fmt_double(b.value) +
           ",\"bound\":" + fmt_double(b.bound) +
           ",\"detail\":" + json_quote(b.detail) + '}';
  }
  out += "]}";
  return out;
}

SloAlert make_slo_alert(const SpanRecorder& rec, const SloBreach& breach) {
  SloAlert alert;
  alert.breach = breach;
  alert.critical_path = extract_critical_path(rec, breach.round);
  alert.spans_jsonl = round_spans_jsonl(rec, breach.round);
  // A breaching round that committed gets the exact phase attribution;
  // one that never committed gets the abort flight-recorder dump (open
  // and aborted spans first) — same evidence `p2pflctl explain` shows.
  alert.table = alert.critical_path.found
                    ? critical_path_table(alert.critical_path)
                    : make_postmortem(rec, breach.round).table;
  return alert;
}

std::string slo_alert_text(const SloAlert& alert) {
  std::string out = "SLO ALERT [" + alert.breach.rule + "] round " +
                    std::to_string(alert.breach.round) + ": " +
                    alert.breach.detail + "\n";
  out += alert.table;
  return out;
}

std::vector<SloRule> default_rules(double max_latency_ms) {
  std::vector<SloRule> rules;
  {
    SloRule r;
    r.name = "round_latency";
    r.kind = SloRuleKind::kThreshold;
    r.field = SloField::kLatencyMs;
    r.limit = max_latency_ms;
    rules.push_back(r);
  }
  {
    SloRule r;
    r.name = "latency_drift";
    r.kind = SloRuleKind::kEwmaDrift;
    r.field = SloField::kLatencyMs;
    r.factor = 2.5;
    r.alpha = 0.2;
    r.warmup = 3;
    // Floor: sub-10ms jitter around a tiny baseline is not an incident.
    r.limit = 10.0;
    rules.push_back(r);
  }
  {
    SloRule r;
    r.name = "retry_storm";
    r.kind = SloRuleKind::kQuantileDrift;
    r.field = SloField::kRetries;
    r.quantile = 0.5;
    r.factor = 3.0;
    r.window = 8;
    r.warmup = 3;
    // Floor: a handful of retries over a zero-retry baseline is noise.
    r.limit = 8.0;
    rules.push_back(r);
  }
  {
    SloRule r;
    r.name = "byte_budget";
    r.kind = SloRuleKind::kByteBudget;
    r.field = SloField::kPayloadBytes;
    // Fault-free rounds should track Eq. (4)/(5) closely; retries and
    // Raft-replicated model entries may add on top, so the band is
    // generous and the rule is scoped to committed rounds.
    r.tolerance = 0.25;
    r.committed_only = true;
    rules.push_back(r);
  }
  {
    SloRule r;
    r.name = "convergence_stall";
    r.kind = SloRuleKind::kConvergenceStall;
    r.field = SloField::kLoss;
    r.window = 8;
    r.min_delta = 1e-4;
    rules.push_back(r);
  }
  return rules;
}

}  // namespace p2pfl::obs
