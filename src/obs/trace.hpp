// Structured trace-event stream on virtual time.
//
// A TraceEvent is one timestamped protocol observation ("peer 7 won the
// raft/sg1 election for term 3") modeled on the Chrome trace_event
// format, so a recorded stream can be opened directly in about://tracing
// (or https://ui.perfetto.dev) with one row per peer. Events carry the
// simulator's virtual timestamp — never the wall clock — so identical
// seeds serialize to byte-identical traces (the golden-trace test relies
// on this).
//
// Recording is off by default and costs one branch per call site; when
// enabled, individual categories ("sim", "net", "raft", "agg") can be
// selected to keep hot-path event floods (per-message, per-dispatch) out
// of protocol-level traces.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace p2pfl::obs {

/// One trace argument value, pre-rendered as a JSON literal so the
/// event stream is cheap to store and deterministic to serialize.
struct ArgValue {
  std::string json;

  ArgValue(const char* s);
  ArgValue(const std::string& s);
  ArgValue(std::string_view s);
  ArgValue(bool b) : json(b ? "true" : "false") {}
  ArgValue(double v);
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T> &&
                                                    !std::is_same_v<T, bool>>>
  ArgValue(T v) : json(std::to_string(v)) {}
};

using TraceArgs = std::vector<std::pair<std::string, ArgValue>>;

struct TraceEvent {
  SimTime ts = 0;        // virtual microseconds
  SimDuration dur = 0;   // for phase 'X' (complete) events
  char ph = 'i';         // 'i' instant, 'X' complete, 'C' counter
  std::uint32_t tid = 0; // track: peer id (or 0 for system-wide events)
  std::string cat;
  std::string name;
  TraceArgs args;
};

class TraceStream {
 public:
  /// `clock` points at the owning simulator's virtual time.
  explicit TraceStream(const SimTime* clock) : clock_(clock) {}

  /// Master switch; with no categories selected, everything records.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Restrict recording to the given category (callable repeatedly).
  void enable_category(const std::string& cat) { categories_.insert(cat); }
  bool category_enabled(std::string_view cat) const {
    if (!enabled_) return false;
    if (categories_.empty()) return true;
    return categories_.count(std::string(cat)) > 0;
  }

  /// Instantaneous event at the current virtual time.
  void instant(std::string_view cat, std::string_view name,
               std::uint32_t tid, TraceArgs args = {});

  /// Spanning event: [start, start + dur] on track `tid`.
  void complete(std::string_view cat, std::string_view name,
                std::uint32_t tid, SimTime start, SimDuration dur,
                TraceArgs args = {});

  /// Counter-track sample (renders as a stacked chart in the viewer).
  void counter(std::string_view cat, std::string_view name,
               std::int64_t value);

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  /// Oldest events evicted after the capacity cap was hit (ring
  /// semantics: the newest `capacity` events are always retained).
  std::uint64_t dropped() const { return dropped_; }
  void set_capacity(std::size_t cap) { capacity_ = cap; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  bool push(TraceEvent ev);

  const SimTime* clock_;
  bool enabled_ = false;
  std::set<std::string> categories_;
  /// Ring buffer: at the cap, each push evicts the oldest event. Under
  /// the cap the stream is identical to an unbounded one, so bounded
  /// runs keep their golden traces byte-identical.
  std::deque<TraceEvent> events_;
  /// Memory backstop for long traced runs (~1M events ≈ a few hundred MB
  /// of JSON; deterministic because it depends only on the event count).
  std::size_t capacity_ = 1u << 20;
  std::uint64_t dropped_ = 0;
};

}  // namespace p2pfl::obs
