// Observability bundle owned by the Simulator.
//
// One MetricsRegistry, one TraceStream and one SpanRecorder per
// simulation, all sampled on virtual time through the simulator's
// clock — the single place all instrumented layers (sim, net, raft,
// secagg, core) report to.
#pragma once

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace p2pfl::obs {

struct Observability {
  explicit Observability(const SimTime* clock)
      : trace(clock), spans(clock) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry metrics;
  TraceStream trace;
  SpanRecorder spans;
};

}  // namespace p2pfl::obs
