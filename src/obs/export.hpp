// Serialization of metrics and traces to machine-readable files.
//
//  * metrics_jsonl: one JSON object per line per metric — the format the
//    figure benches drop next to their stdout tables so plots and
//    regression checks can consume exact numbers.
//  * chrome_trace_json: the Chrome trace_event JSON-array format; open
//    the file in chrome://tracing / about://tracing or
//    https://ui.perfetto.dev to see the protocol timeline, one row per
//    peer, in virtual time (microseconds).
//
// All output is fully determined by the registry/stream contents: maps
// iterate in name order, numbers format identically across runs, and no
// wall-clock timestamps are embedded — byte-identical seeds give
// byte-identical files.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace p2pfl::obs {

/// JSON-quote a string (adds the surrounding double quotes).
std::string json_quote(std::string_view s);

/// One line per counter/gauge/histogram, lexically ordered by name.
std::string metrics_jsonl(const MetricsRegistry& registry);

/// Full Chrome trace_event JSON document ({"traceEvents": [...]}).
std::string chrome_trace_json(const TraceStream& trace);

/// Same document with the recorder's spans appended as complete ('X')
/// events plus flow ('s'/'f') events linking each parent span to its
/// children, so Perfetto draws the causal chain across peer tracks.
std::string chrome_trace_json(const TraceStream& trace,
                              const SpanRecorder& spans);

/// Write `content` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace p2pfl::obs
