// Declarative SLO rule engine over the RoundSample time-series.
//
// Rules are data, not code: a SloRule names a sample field and a
// predicate family (static threshold, rolling EWMA drift, rolling
// window-quantile drift, convergence stall, byte-budget-vs-closed-form
// tolerance). The engine evaluates every rule against each sample as
// the watchdog appends it, keeps per-rule rolling state, and reports
// breaches. Evaluation is pure arithmetic over deterministic samples,
// so two same-seed runs produce identical breach streams — SLO output
// is covered by the same golden-determinism argument as metrics and
// traces.
//
// On breach the engine emits typed `slo.*` counters and an instant
// trace event (category "slo"); callers that keep a SpanRecorder can
// additionally capture an alert post-mortem (critical path + recent
// spans) via make_slo_alert().
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/timeseries.hpp"

namespace p2pfl::obs {

class Observability;

/// RoundSample fields a rule can observe.
enum class SloField : std::uint8_t {
  kLatencyMs,
  kWireBytes,
  kPayloadBytes,
  kRetries,
  kDrops,
  kAborts,
  kCrashes,
  kEvictions,
  kStrikes,
  kLoss,
  kAccuracy,
};

const char* slo_field_name(SloField f);

/// Value of `f` in `s` as a double; loss/accuracy return their sentinel
/// (< 0) when the round was not evaluated — rules skip those samples.
double slo_field(const RoundSample& s, SloField f);

enum class SloRuleKind : std::uint8_t {
  /// value vs fixed limit.
  kThreshold,
  /// value vs factor × EWMA of prior samples (drift detector). The
  /// EWMA warms up for `warmup` samples before the rule can fire.
  kEwmaDrift,
  /// value vs factor × rolling-window quantile of prior samples.
  kQuantileDrift,
  /// loss has not improved by at least `min_delta` over the best seen
  /// in the last `window` evaluated samples (convergence stall).
  kConvergenceStall,
  /// payload_bytes vs (1 + tolerance) × expected_payload_bytes — the
  /// Eq. (4)/(5) closed-form byte budget. Skips samples where the
  /// closed form was not computed.
  kByteBudget,
};

const char* slo_rule_kind_name(SloRuleKind k);

struct SloRule {
  std::string name;          ///< stable id; metric suffix `slo.breach.<name>`
  SloRuleKind kind = SloRuleKind::kThreshold;
  SloField field = SloField::kLatencyMs;
  /// true: breach when value > bound; false: breach when value < bound.
  bool breach_when_above = true;
  /// kThreshold: the bound. Drift kinds: a floor on the computed bound
  /// (max(factor × baseline, limit)), so an all-zero baseline (e.g. no
  /// retries yet) cannot make the first nonzero sample a breach.
  double limit = 0.0;
  double factor = 2.0;       ///< kEwmaDrift / kQuantileDrift multiplier
  double alpha = 0.2;        ///< kEwmaDrift smoothing
  double quantile = 0.5;     ///< kQuantileDrift reference quantile
  std::size_t window = 8;    ///< rolling window / stall horizon
  std::size_t warmup = 3;    ///< samples consumed before rule may fire
  double min_delta = 1e-3;   ///< kConvergenceStall required improvement
  double tolerance = 0.10;   ///< kByteBudget slack over the closed form
  /// Evaluate only on committed rounds (e.g. byte budget: an aborted
  /// round legitimately moves fewer bytes than the closed form).
  bool committed_only = false;
};

struct SloBreach {
  std::string rule;
  std::uint64_t round = 0;
  double value = 0.0;  ///< observed field value
  double bound = 0.0;  ///< bound it crossed
  std::string detail;  ///< human-readable one-liner
};

/// Final verdict of a watched run: per-rule evaluation/breach counts
/// plus the breach log.
struct SloReport {
  struct RuleStats {
    std::string rule;
    std::uint64_t evaluated = 0;
    std::uint64_t breaches = 0;
    std::uint64_t first_breach_round = 0;  ///< valid when breaches > 0
  };
  std::vector<RuleStats> rules;
  std::vector<SloBreach> breaches;
  std::uint64_t samples = 0;

  bool healthy() const { return breaches.empty(); }
  std::string table() const;
  std::string json() const;
};

/// Breach with the breaching round's flight-recorder evidence attached.
struct SloAlert {
  SloBreach breach;
  CriticalPath critical_path;  ///< found=false when spans were off/evicted
  std::string spans_jsonl;     ///< the round's spans, JSONL
  std::string table;           ///< rendered post-mortem table
};

/// Build the post-mortem for a breach from the span flight recorder.
SloAlert make_slo_alert(const SpanRecorder& rec, const SloBreach& breach);

/// Render one alert as a human-readable block (breach line + critical
/// path attribution table).
std::string slo_alert_text(const SloAlert& alert);

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloRule> rules);

  /// Evaluate every rule against `s`, in rule order. Returns breaches
  /// from this sample (usually empty). When `o` is non-null, bumps
  /// `slo.evaluations` / `slo.breaches` / `slo.breach.<rule>` counters
  /// and emits an instant trace event per breach (category "slo").
  std::vector<SloBreach> evaluate(const RoundSample& s, Observability* o);

  /// Pre-create the engine's `slo.*` counters in `o`'s registry so
  /// metric dumps are shape-stable whether or not anything breached.
  void register_metrics(Observability& o) const;

  const std::vector<SloRule>& rules() const { return rules_; }
  SloReport report() const;

 private:
  struct RuleState {
    /// kEwmaDrift: rolling mean. kConvergenceStall: best loss seen.
    double baseline = 0.0;
    bool baseline_init = false;
    std::deque<double> window;   // kQuantileDrift rolling values
    std::size_t seen = 0;        // applicable samples consumed (incl. warmup)
    std::uint64_t stalled = 0;   // kConvergenceStall rounds w/o improvement
    std::uint64_t evaluated = 0; // samples actually judged
    std::uint64_t breaches = 0;
    std::uint64_t first_breach_round = 0;
  };

  /// Judge one rule; returns true on breach and fills value/bound/detail.
  bool judge(const SloRule& r, RuleState& st, const RoundSample& s,
             double& value, double& bound, std::string& detail);

  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;
  std::vector<SloBreach> breaches_;
  std::uint64_t samples_ = 0;
};

/// The default rule set used by `p2pflctl watch` and the chaos soak:
/// round-latency threshold, latency EWMA drift, abort threshold,
/// retry-storm quantile drift, byte budget vs Eq. (4)/(5), and a
/// convergence stall guard (only meaningful when loss is evaluated).
std::vector<SloRule> default_rules(double max_latency_ms);

}  // namespace p2pfl::obs
