#include "obs/critical_path.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>

#include "obs/export.hpp"

namespace p2pfl::obs {

namespace {

std::int64_t peer_for_json(PeerId p) {
  return p == kNoPeer ? -1 : static_cast<std::int64_t>(p);
}

void append_span_json(std::string& out, const SpanRecord& s) {
  out += "{\"id\":" + std::to_string(s.id) +
         ",\"parent\":" + std::to_string(s.parent) +
         ",\"closed_by\":" + std::to_string(s.closed_by) +
         ",\"round\":" + std::to_string(s.round) +
         ",\"kind\":" + json_quote(span_kind_name(s.kind)) +
         ",\"name\":" + json_quote(s.name) +
         ",\"peer\":" + std::to_string(peer_for_json(s.peer)) +
         ",\"start\":" + std::to_string(s.start) +
         ",\"end\":" + std::to_string(s.end) +
         ",\"open\":" + (s.open ? "true" : "false") +
         ",\"aborted\":" + (s.aborted ? "true" : "false") + "}\n";
}

}  // namespace

std::string normalize_kind(std::string_view kind) {
  std::string out;
  out.reserve(kind.size());
  for (std::size_t i = 0; i < kind.size();) {
    const bool at_sg =
        kind[i] == 's' && i + 2 < kind.size() && kind[i + 1] == 'g' &&
        std::isdigit(static_cast<unsigned char>(kind[i + 2])) &&
        (i == 0 || kind[i - 1] == '/');
    if (at_sg) {
      out += "sg*";
      i += 2;
      while (i < kind.size() &&
             std::isdigit(static_cast<unsigned char>(kind[i]))) {
        ++i;
      }
    } else {
      out.push_back(kind[i++]);
    }
  }
  return out;
}

std::string phase_label(const SpanRecord& s) {
  if (s.kind == SpanKind::kLink) return "link:" + normalize_kind(s.name);
  return span_kind_name(s.kind);
}

CriticalPath extract_critical_path(const SpanRecorder& rec,
                                   std::uint64_t round) {
  CriticalPath cp;
  cp.round = round;
  const std::vector<SpanId>* ids = rec.round_spans(round);
  if (ids == nullptr) return cp;
  const SpanRecord* root = nullptr;
  for (SpanId id : *ids) {
    const SpanRecord* s = rec.find(id);
    if (s != nullptr && s->kind == SpanKind::kRound && !s->open &&
        !s->aborted) {
      root = s;  // a re-begun round id keeps the latest commit
    }
  }
  if (root == nullptr) return cp;
  cp.found = true;
  cp.start = root->start;
  cp.end = root->end;

  const SimTime t0 = root->start;
  SimTime frontier = root->end;
  const SpanRecord* cur = root;
  std::set<SpanId> hopped;
  std::vector<PathSegment> segs;  // built commit -> start
  // Termination: parent hops strictly decrease span ids, closed_by hops
  // are deduplicated, and the step cap backstops both.
  for (std::size_t steps = 0;
       cur != nullptr && frontier > t0 && steps < 1'000'000; ++steps) {
    // (a) If the event that closed `cur` coincides with the frontier,
    // the closer's causal chain explains the latency better: hop.
    const SpanRecord* closer =
        cur->closed_by != kNoSpan ? rec.find(cur->closed_by) : nullptr;
    if (closer != nullptr && !closer->open && !closer->aborted &&
        closer->end == frontier && hopped.insert(closer->id).second) {
      cur = closer;
      continue;
    }
    // (b) Attribute [start(cur), frontier] to cur and move to its cause.
    const SimTime lo = std::max(cur->start, t0);
    if (lo < frontier) {
      segs.push_back({cur->id, cur->kind, phase_label(*cur), cur->peer, lo,
                      frontier});
      frontier = lo;
    }
    cur = cur->parent != kNoSpan ? rec.find(cur->parent) : nullptr;
  }
  cp.complete = frontier <= t0;
  if (!cp.complete) {
    // Keep the tiling exact even when the chain is broken (evicted
    // spans, an open parent): surface the gap instead of hiding it.
    segs.push_back({kNoSpan, SpanKind::kRound, "(unattributed)", kNoPeer,
                    t0, frontier});
  }
  std::reverse(segs.begin(), segs.end());
  cp.segments = std::move(segs);

  std::map<std::string, SimDuration> totals;
  for (const PathSegment& s : cp.segments) {
    totals[s.phase] += s.end - s.start;
  }
  cp.phase_totals.assign(totals.begin(), totals.end());
  return cp;
}

std::string critical_path_table(const CriticalPath& cp) {
  std::string out;
  char buf[256];
  if (!cp.found) {
    std::snprintf(buf, sizeof buf,
                  "critical path — round %llu: no committed round span "
                  "retained\n",
                  static_cast<unsigned long long>(cp.round));
    return buf;
  }
  std::snprintf(buf, sizeof buf,
                "critical path — round %llu: %.2f ms "
                "(t=%.2f..%.2f ms, %zu segments%s)\n",
                static_cast<unsigned long long>(cp.round),
                to_ms(cp.total()), to_ms(cp.start), to_ms(cp.end),
                cp.segments.size(), cp.complete ? "" : ", INCOMPLETE");
  out += buf;
  std::snprintf(buf, sizeof buf, "  %3s %12s %10s %6s  %-28s %s\n", "#",
                "start ms", "dur ms", "peer", "phase", "span");
  out += buf;
  std::size_t i = 0;
  for (const PathSegment& s : cp.segments) {
    char peer[16];
    if (s.peer == kNoPeer) {
      std::snprintf(peer, sizeof peer, "%6s", "-");
    } else {
      std::snprintf(peer, sizeof peer, "%6u", s.peer);
    }
    std::snprintf(buf, sizeof buf, "  %3zu %12.2f %10.2f %s  %-28s #%llu\n",
                  ++i, to_ms(s.start), to_ms(s.end - s.start), peer,
                  s.phase.c_str(), static_cast<unsigned long long>(s.span));
    out += buf;
  }
  out += "phase attribution (sums exactly to round latency):\n";
  SimDuration sum = 0;
  for (const auto& [phase, dur] : cp.phase_totals) {
    sum += dur;
    const double pct = cp.total() > 0 ? 100.0 * static_cast<double>(dur) /
                                            static_cast<double>(cp.total())
                                      : 0.0;
    std::snprintf(buf, sizeof buf, "  %-32s %10.2f ms %5.1f%%\n",
                  phase.c_str(), to_ms(dur), pct);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "  %-32s %10.2f ms %s\n", "total",
                to_ms(sum),
                sum == cp.total() ? "(= round latency)" : "(MISMATCH)");
  out += buf;
  return out;
}

std::string spans_jsonl(const SpanRecorder& rec) {
  std::string out;
  for (const auto& [id, s] : rec.all()) append_span_json(out, s);
  return out;
}

std::string round_spans_jsonl(const SpanRecorder& rec, std::uint64_t round) {
  std::string out;
  const std::vector<SpanId>* ids = rec.round_spans(round);
  if (ids == nullptr) return out;
  for (SpanId id : *ids) {
    const SpanRecord* s = rec.find(id);
    if (s != nullptr) append_span_json(out, *s);
  }
  return out;
}

Postmortem make_postmortem(const SpanRecorder& rec, std::uint64_t round) {
  Postmortem pm;
  pm.round = round;
  pm.jsonl = round_spans_jsonl(rec, round);
  const std::vector<SpanId>* ids = rec.round_spans(round);
  char buf[256];
  if (ids == nullptr || ids->empty()) {
    std::snprintf(buf, sizeof buf,
                  "post-mortem — round %llu: no spans retained (ring "
                  "evicted or recording disabled)\n",
                  static_cast<unsigned long long>(round));
    pm.table = buf;
    return pm;
  }
  std::size_t open = 0, aborted = 0;
  for (SpanId id : *ids) {
    const SpanRecord* s = rec.find(id);
    if (s == nullptr) continue;
    if (s->open) ++open;
    if (s->aborted) ++aborted;
  }
  std::snprintf(buf, sizeof buf,
                "post-mortem — round %llu aborted: %zu spans retained "
                "(%zu open, %zu aborted)\n",
                static_cast<unsigned long long>(round), ids->size(), open,
                aborted);
  pm.table = buf;

  auto row = [&](const SpanRecord& s) {
    char peer[16];
    if (s.peer == kNoPeer) {
      std::snprintf(peer, sizeof peer, "%5s", "-");
    } else {
      std::snprintf(peer, sizeof peer, "%5u", s.peer);
    }
    std::snprintf(buf, sizeof buf,
                  "  #%-6llu %-14s %-24s %s [%9.2f ..%9.2f ms]%s%s "
                  "parent #%llu\n",
                  static_cast<unsigned long long>(s.id),
                  span_kind_name(s.kind), s.name.c_str(), peer,
                  to_ms(s.start), to_ms(s.end), s.open ? " OPEN" : "",
                  s.aborted ? " ABORTED" : "",
                  static_cast<unsigned long long>(s.parent));
    pm.table += buf;
  };

  if (open + aborted > 0) {
    pm.table += " unfinished work at abort:\n";
    for (SpanId id : *ids) {
      const SpanRecord* s = rec.find(id);
      if (s != nullptr && (s->open || s->aborted)) row(*s);
    }
  }
  constexpr std::size_t kTail = 24;
  const std::size_t from = ids->size() > kTail ? ids->size() - kTail : 0;
  std::snprintf(buf, sizeof buf, " last %zu spans:\n", ids->size() - from);
  pm.table += buf;
  for (std::size_t i = from; i < ids->size(); ++i) {
    const SpanRecord* s = rec.find((*ids)[i]);
    if (s != nullptr) row(*s);
  }
  return pm;
}

}  // namespace p2pfl::obs
