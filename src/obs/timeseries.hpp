// Per-round health time-series: one RoundSample per FedAvg round.
//
// The paper's claims are trajectories — round latency under churn
// (Figs. 10-12), communication cost vs the Eq. (4)/(5) closed form
// (Figs. 13-14), accuracy under faults — so the observability layer
// records them as a first-class stream instead of only point-in-time
// aggregates. Every sample is assembled at the round barrier from
// virtual-time measurements and counter deltas, so two runs with the
// same seed produce byte-identical JSONL exports (the golden-series
// determinism test relies on this).
//
// RoundSeries is a bounded ring (flight-recorder semantics, like the
// SpanRecorder): a long soak retains the newest `capacity` samples and
// counts evictions. The JSONL export stamps every line with
// `schema_version` so downstream consumers (bench/regress, plots) can
// reject streams they do not understand.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace p2pfl::obs {

/// Version of the RoundSample JSONL schema (bump on field changes).
inline constexpr std::uint32_t kRoundSampleSchemaVersion = 1;

/// One FedAvg round's health record. Byte fields are deltas over the
/// round's window [start, end); counter fields likewise. `latency_ms`
/// is commit latency for committed rounds; rounds that never committed
/// are right-censored at the full round slot (they consumed at least
/// that much wall-clock on the virtual timeline), which is what lets a
/// latency SLO see aborted rounds.
struct RoundSample {
  std::uint64_t round = 0;
  SimTime start = 0;
  SimTime end = 0;
  bool committed = false;
  double latency_ms = 0.0;
  std::size_t contributors = 0;
  std::size_t groups_used = 0;

  /// Critical-path phase attribution of a committed round (label ->
  /// virtual microseconds, summing exactly to the commit latency when
  /// spans were recorded); empty when spans are off or the round never
  /// committed.
  std::vector<std::pair<std::string, SimDuration>> phases;

  /// Bytes put on the wire during the round window, full framing
  /// (`wire_bytes`) and the Eq. (4)/(5) model-data portion
  /// (`payload_bytes`).
  std::uint64_t wire_bytes = 0;
  std::uint64_t payload_bytes = 0;
  /// Closed-form Eq. (4)/(5) payload bytes of one fault-free round at
  /// this deployment shape (0 = not computed). The byte-budget SLO rule
  /// compares `payload_bytes` against this.
  double expected_payload_bytes = 0.0;

  // --- counter deltas over the round window ------------------------------
  std::uint64_t retries = 0;     // SAC share retries/resends + upload retries
  std::uint64_t drops = 0;       // messages dropped, all reasons
  std::uint64_t aborts = 0;      // rounds failed or torn down
  std::uint64_t crashes = 0;     // peer crashes (chaos or scripted)
  std::uint64_t restarts = 0;    // peer restarts
  std::uint64_t evictions = 0;   // membership evictions
  std::uint64_t rejoins = 0;     // completed rejoins
  std::uint64_t strikes = 0;     // Byzantine-detection strikes

  /// Training signal, when the harness evaluates it this round.
  /// Negative = not evaluated (losses and accuracies are non-negative),
  /// serialized as JSON null so absent stays distinguishable.
  double loss = -1.0;
  double accuracy = -1.0;
};

/// Bounded ring of RoundSamples with a deterministic JSONL export.
class RoundSeries {
 public:
  explicit RoundSeries(std::size_t capacity = 4096) : capacity_(capacity) {}

  void append(RoundSample s);

  const std::deque<RoundSample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const RoundSample& back() const { return samples_.back(); }
  /// Newest sample for `round`, or nullptr if never recorded/evicted.
  const RoundSample* find(std::uint64_t round) const;

  /// Samples appended over the series' lifetime (evicted ones included).
  std::uint64_t total_appended() const { return appended_; }
  /// Oldest samples evicted by the capacity ring.
  std::uint64_t evicted() const { return appended_ - samples_.size(); }

  /// One JSON object per retained sample, append order. Every line
  /// carries schema_version; doubles use a locale-independent %.17g so
  /// identical runs serialize byte-identically.
  std::string jsonl() const;

  /// One sample as a single JSON object (no trailing newline).
  static std::string sample_json(const RoundSample& s);

 private:
  std::size_t capacity_;
  std::deque<RoundSample> samples_;
  std::uint64_t appended_ = 0;
};

}  // namespace p2pfl::obs
