#include "obs/timeseries.hpp"

#include <cstdio>

#include "obs/export.hpp"

namespace p2pfl::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Loss/accuracy use negative = "not evaluated this round" and serialize
/// as JSON null so downstream tooling can't mistake absence for zero.
std::string fmt_optional(double v) { return v < 0.0 ? "null" : fmt_double(v); }

}  // namespace

void RoundSeries::append(RoundSample s) {
  samples_.push_back(std::move(s));
  ++appended_;
  while (samples_.size() > capacity_) samples_.pop_front();
}

const RoundSample* RoundSeries::find(std::uint64_t round) const {
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->round == round) return &*it;
  }
  return nullptr;
}

std::string RoundSeries::sample_json(const RoundSample& s) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(kRoundSampleSchemaVersion);
  out += ",\"round\":" + std::to_string(s.round);
  out += ",\"start_us\":" + std::to_string(s.start);
  out += ",\"end_us\":" + std::to_string(s.end);
  out += ",\"committed\":";
  out += s.committed ? "true" : "false";
  out += ",\"latency_ms\":" + fmt_double(s.latency_ms);
  out += ",\"contributors\":" + std::to_string(s.contributors);
  out += ",\"groups_used\":" + std::to_string(s.groups_used);
  out += ",\"phases\":{";
  bool first = true;
  for (const auto& [label, us] : s.phases) {
    if (!first) out += ',';
    first = false;
    out += json_quote(label) + ":" + std::to_string(us);
  }
  out += '}';
  out += ",\"wire_bytes\":" + std::to_string(s.wire_bytes);
  out += ",\"payload_bytes\":" + std::to_string(s.payload_bytes);
  out += ",\"expected_payload_bytes\":" + fmt_double(s.expected_payload_bytes);
  out += ",\"retries\":" + std::to_string(s.retries);
  out += ",\"drops\":" + std::to_string(s.drops);
  out += ",\"aborts\":" + std::to_string(s.aborts);
  out += ",\"crashes\":" + std::to_string(s.crashes);
  out += ",\"restarts\":" + std::to_string(s.restarts);
  out += ",\"evictions\":" + std::to_string(s.evictions);
  out += ",\"rejoins\":" + std::to_string(s.rejoins);
  out += ",\"strikes\":" + std::to_string(s.strikes);
  out += ",\"loss\":" + fmt_optional(s.loss);
  out += ",\"accuracy\":" + fmt_optional(s.accuracy);
  out += '}';
  return out;
}

std::string RoundSeries::jsonl() const {
  std::string out;
  for (const RoundSample& s : samples_) {
    out += sample_json(s);
    out += '\n';
  }
  return out;
}

}  // namespace p2pfl::obs
