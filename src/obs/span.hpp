// Causal span recording on virtual time.
//
// A Span is one timed interval of protocol work attributed to a peer —
// a SAC share phase, one message's network flight, a FedAvg collect
// window — linked to the span that *caused* it. Together the spans of
// one aggregation round form a causal DAG rooted at the round span, and
// src/obs/critical_path.hpp walks that DAG backward from the commit to
// attribute the round's end-to-end latency to phases, links and retry
// loops exactly.
//
// Causality is propagated two ways:
//  * a current-span stack: the simulator is single-threaded, so the
//    span whose handler is currently executing is simply the top of a
//    stack (net::Network pushes the delivery's link span around each
//    endpoint dispatch). A span opened with no explicit parent adopts
//    the current span.
//  * an explicit SpanContext carried by net::Envelope: the network
//    stamps outgoing messages with the sender's current span and opens
//    one kLink span per scheduled delivery, so a handler's spans chain
//    through the message that triggered them.
//
// Wait spans (a leader collecting subtotals, the FedAvg collect window)
// additionally record `closed_by`: the span whose completion ended the
// wait. The critical-path walk hops through it to find the true cause
// of each completion instead of attributing the whole wait to the
// waiter.
//
// The recorder doubles as the abort flight recorder: it keeps a bounded
// ring of recent rounds (plus the round-0 ambient bucket used by Raft
// and other non-round work) and a per-round span cap, so a long chaos
// soak records the latest rounds only; when a round aborts, everything
// needed for the post-mortem is still in the ring. Recording is off by
// default and costs one branch per call site; span ids are allocated
// deterministically, so identical seeds produce byte-identical span
// dumps.
//
// Recording is mutex-guarded so the TCP transport's event-loop thread
// can record while another thread toggles enablement or reads sizes.
// The current-span stack still assumes one *recording* thread at a time
// — exactly what the transport seam guarantees by serializing all
// protocol callbacks onto a single thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace p2pfl::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

enum class SpanKind : std::uint8_t {
  kRound,          // one aggregation round, open on the FedAvg leader
  kLocalTrain,     // one peer's local training pass
  kSacShare,       // SAC share phase on one peer
  kSacSubtotal,    // subtotal collection window (SAC leader / broadcast)
  kUpload,         // subgroup leader's upload awaiting the round result
  kFedCollect,     // FedAvg leader's quorum-collect window
  kFedMerge,       // FedAvg merge + result fan-out
  kRaftReplicate,  // log entry proposed -> applied on the leader
  kRetry,          // a retransmission burst (share_req / upload resend)
  kRecovery,       // Alg. 4 subtotal recovery requests
  kLink,           // one message's network flight
  kRejoin,         // evicted peer's rejoin handshake (request -> re-add)
};

const char* span_kind_name(SpanKind k);

/// Causal context carried by every net::Envelope.
struct SpanContext {
  std::uint64_t round = 0;
  SpanId span = kNoSpan;
};

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  /// Wait spans: the span whose completion closed this one.
  SpanId closed_by = kNoSpan;
  std::uint64_t round = 0;
  SpanKind kind = SpanKind::kLink;
  std::string name;
  PeerId peer = kNoPeer;
  SimTime start = 0;
  SimTime end = 0;
  bool open = true;
  /// Closed abnormally: round superseded, receiver crashed, upload
  /// abandoned. Aborted spans never extend a critical path.
  bool aborted = false;
};

class SpanRecorder {
 public:
  explicit SpanRecorder(const SimTime* clock) : clock_(clock) {}

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Flight-recorder bounds: rounds retained (round 0, the ambient
  /// bucket, is never evicted) and spans recorded per round.
  void set_max_rounds(std::size_t n) { max_rounds_ = n; }
  void set_max_spans_per_round(std::size_t n) { max_spans_per_round_ = n; }

  /// Open a span. `parent == kNoSpan` adopts the current span. Returns
  /// kNoSpan when disabled or when the round's span budget is spent.
  SpanId open(SpanKind kind, std::string name, PeerId peer,
              std::uint64_t round, SpanId parent = kNoSpan);

  /// Close at the current virtual time. `closed_by` names the span whose
  /// completion ended this wait (ignored if it names `id` itself).
  void close(SpanId id, SpanId closed_by = kNoSpan);
  /// Close with the aborted flag (crash, supersession, abandonment).
  void close_aborted(SpanId id);

  // --- current-span stack (one callback thread at a time) ---------------
  void push(SpanId id);
  void pop();
  SpanId current() const;
  SpanContext current_ctx() const;

  // --- queries ----------------------------------------------------------
  const SpanRecord* find(SpanId id) const;
  /// Span ids of one round, in id (= open) order.
  const std::vector<SpanId>* round_spans(std::uint64_t round) const;
  /// Rounds currently retained, ascending.
  std::vector<std::uint64_t> rounds() const;
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }
  /// Spans discarded by the per-round cap (ring evictions not counted).
  std::uint64_t dropped_spans() const { return dropped_; }
  /// Rounds evicted from the ring so far.
  std::uint64_t evicted_rounds() const { return evicted_rounds_; }
  const std::map<SpanId, SpanRecord>& all() const { return spans_; }

  void clear();

 private:
  void evict_if_needed(std::uint64_t incoming_round);
  SpanId current_locked() const {
    return stack_.empty() ? kNoSpan : stack_.back().first;
  }

  /// Guards recording state (spans_/rounds_/stack_/ids). The pointer-
  /// returning queries (find, round_spans, all) are still only safe on
  /// the recording thread or after the transport has shut down.
  mutable std::mutex mu_;
  const SimTime* clock_;
  std::atomic<bool> enabled_{false};
  SpanId next_id_ = 1;
  std::map<SpanId, SpanRecord> spans_;
  std::map<std::uint64_t, std::vector<SpanId>> rounds_;
  /// (span id, round) — round cached so current_ctx() survives eviction.
  std::vector<std::pair<SpanId, std::uint64_t>> stack_;
  std::size_t max_rounds_ = 64;
  std::size_t max_spans_per_round_ = 1u << 16;
  std::uint64_t dropped_ = 0;
  std::uint64_t evicted_rounds_ = 0;
};

/// RAII: push an already-open span for the scope (no close on exit).
class SpanStackScope {
 public:
  SpanStackScope(SpanRecorder& rec, SpanId id) : rec_(rec), id_(id) {
    if (id_ != kNoSpan) rec_.push(id_);
  }
  ~SpanStackScope() {
    if (id_ != kNoSpan) rec_.pop();
  }
  SpanStackScope(const SpanStackScope&) = delete;
  SpanStackScope& operator=(const SpanStackScope&) = delete;

 private:
  SpanRecorder& rec_;
  SpanId id_;
};

/// RAII: open a span, keep it current for the scope, close it on exit.
/// Used for bursts (retry fan-outs, merge + result sends) whose child
/// links must re-root onto a specific parent.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder& rec, SpanKind kind, std::string name, PeerId peer,
             std::uint64_t round, SpanId parent = kNoSpan)
      : rec_(rec) {
    if (rec_.enabled()) {
      id_ = rec_.open(kind, std::move(name), peer, round, parent);
      if (id_ != kNoSpan) rec_.push(id_);
    }
  }
  ~ScopedSpan() {
    if (id_ != kNoSpan) {
      rec_.pop();
      rec_.close(id_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }

 private:
  SpanRecorder& rec_;
  SpanId id_ = kNoSpan;
};

}  // namespace p2pfl::obs
