#include "core/topology.hpp"

#include <algorithm>

#include "analysis/cost_model.hpp"
#include "common/check.hpp"

namespace p2pfl::core {

Topology::Topology(std::vector<std::vector<PeerId>> groups)
    : groups_(std::move(groups)) {
  P2PFL_CHECK(!groups_.empty());
  PeerId max_id = 0;
  for (const auto& g : groups_) {
    P2PFL_CHECK_MSG(!g.empty(), "empty subgroup");
    for (PeerId p : g) {
      max_id = std::max(max_id, p);
      ++peer_count_;
    }
  }
  subgroup_of_.assign(max_id + 1, static_cast<SubgroupId>(-1));
  for (SubgroupId g = 0; g < groups_.size(); ++g) {
    for (PeerId p : groups_[g]) {
      P2PFL_CHECK_MSG(subgroup_of_[p] == static_cast<SubgroupId>(-1),
                      "peer assigned to two subgroups");
      subgroup_of_[p] = g;
    }
  }
}

Topology Topology::even(std::size_t total_peers, std::size_t subgroups) {
  const auto sizes = analysis::subgroup_sizes(total_peers, subgroups);
  std::vector<std::vector<PeerId>> groups(sizes.size());
  PeerId next = 0;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    for (std::size_t i = 0; i < sizes[g]; ++i) groups[g].push_back(next++);
  }
  return Topology(std::move(groups));
}

Topology Topology::by_group_size(std::size_t total_peers,
                                 std::size_t group_size) {
  P2PFL_CHECK(group_size >= 1 && group_size <= total_peers);
  return even(total_peers, total_peers / group_size);
}

const std::vector<PeerId>& Topology::group(SubgroupId g) const {
  P2PFL_CHECK(g < groups_.size());
  return groups_[g];
}

SubgroupId Topology::subgroup_of(PeerId peer) const {
  P2PFL_CHECK(peer < subgroup_of_.size());
  const SubgroupId g = subgroup_of_[peer];
  P2PFL_CHECK_MSG(g != static_cast<SubgroupId>(-1), "unknown peer");
  return g;
}

std::vector<PeerId> Topology::all_peers() const {
  std::vector<PeerId> out;
  out.reserve(peer_count_);
  for (const auto& g : groups_) out.insert(out.end(), g.begin(), g.end());
  return out;
}

std::vector<PeerId> Topology::designated_leaders() const {
  std::vector<PeerId> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) out.push_back(g.front());
  return out;
}

std::vector<std::size_t> Topology::sizes() const {
  std::vector<std::size_t> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) out.push_back(g.size());
  return out;
}

}  // namespace p2pfl::core
