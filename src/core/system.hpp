// The complete P2P federated-learning system (Fig. 1, end to end).
//
// Combines every substrate into the system the paper deploys:
//   * two-layer Raft backend — elects subgroup leaders and the FedAvg
//     leader, repairs them after crashes (§V);
//   * two-layer aggregation — SAC per subgroup + FedAvg layer (Alg. 3),
//     with fault-tolerant k-out-of-n SAC (Alg. 4) available;
//   * real local training — each peer owns a PeerTrainer (model +
//     optimizer + its data shard) and trains when a new global model
//     arrives.
//
// Round control is leader-driven, like the paper's flow: whichever peer
// currently holds FedAvg leadership (per its own Raft instance) runs a
// periodic driver that snapshots the current leadership from Raft and
// starts an aggregation round. If the FedAvg leader crashes mid-round,
// the round stalls, Raft elects a successor, and the successor's driver
// starts the next round — training continues without manual repair.
// Local training is instantaneous on the simulated clock except for a
// configurable `train_duration` that models compute time.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/two_layer_agg.hpp"
#include "core/two_layer_raft.hpp"
#include "fl/trainer.hpp"

namespace p2pfl::core {

struct SystemConfig {
  TwoLayerRaftOptions raft;
  AggregationConfig agg;
  fl::TrainOptions train;
  float learning_rate = 1e-3f;
  /// Cadence of the FedAvg leader's round driver.
  SimDuration round_interval = 2 * kSecond;
  /// Simulated compute time of one local training pass.
  SimDuration train_duration = 200 * kMillisecond;
  /// Retry cadence of a restarted peer's model catch-up pull.
  SimDuration catchup_retry = 300 * kMillisecond;
  /// Byzantine-detection attributions a peer survives before it is
  /// denounced into membership eviction (agg.detect_byzantine). Below
  /// the limit each attribution costs the peer one round (forgiven and
  /// re-admitted); a persistent adversary re-offends and is evicted.
  std::size_t suspect_strike_limit = 2;
  std::uint64_t seed = 42;
};

class P2pFlSystem {
 public:
  /// One model instance per peer is built with `model_builder`.
  /// `data`/`test` must outlive the system; `parts[p]` is peer p's shard.
  P2pFlSystem(Topology topology, SystemConfig cfg, net::Network& net,
              const fl::Dataset& data, const fl::Dataset& test,
              const fl::PeerIndices& parts,
              const std::function<fl::Model()>& model_builder);

  /// Start Raft everywhere; rounds begin once a FedAvg leader exists.
  void start();

  // --- fault injection (delegates to the Raft backend) --------------------
  void crash_peer(PeerId peer);
  void restart_peer(PeerId peer);
  /// Restart with persistent Raft state AND model state wiped: the peer
  /// re-enters from w0, rejoins its subgroup (see
  /// TwoLayerRaftSystem::restart_peer_amnesia) and pulls the latest
  /// global model from its leader to catch up.
  void restart_peer_amnesia(PeerId peer);

  // --- observation ----------------------------------------------------------
  TwoLayerRaftSystem& raft() { return raft_; }
  TwoLayerAggregator& aggregator() { return *aggregator_; }
  std::size_t rounds_completed() const { return rounds_completed_; }
  /// Rounds that started but never produced a global model: superseded,
  /// torn down (e.g. partition), or closed with zero subgroup uploads.
  std::size_t rounds_aborted() const { return rounds_aborted_; }

  /// Latest global model this peer received (empty before the first
  /// completed round).
  const std::vector<float>& global_model_at(PeerId peer) const;

  /// Evaluate the freshest global model on the test set.
  fl::EvalResult evaluate_global();

  /// Byzantine-detection strikes per peer (see suspect_strike_limit).
  const std::map<PeerId, std::size_t>& strikes() const { return strikes_; }

  /// Fired on completion of each aggregation round (on the FedAvg
  /// leader), with the number of subgroup models aggregated.
  std::function<void(std::uint64_t round, const secagg::Vector&,
                     std::size_t groups_used)>
      on_round_complete;
  /// Fired when the FedAvg leader's driver starts an aggregation round,
  /// before any round message goes on the wire (so an observer can
  /// snapshot counters at the round boundary).
  std::function<void(std::uint64_t round)> on_round_started;
  /// Fired when a started round closes without a global model: failed
  /// (zero uploads), superseded, or torn down under partition.
  std::function<void(std::uint64_t round)> on_round_aborted;

 private:
  struct PeerRuntime {
    std::unique_ptr<fl::PeerTrainer> trainer;
    std::vector<float> current_weights;   // after local training
    std::vector<float> latest_global;     // last received global model
    std::unique_ptr<net::Timer> driver;   // round driver (acts if leader)
    std::unique_ptr<net::Timer> trainer_done;  // models compute time
    /// Retries the model pull until a push (or a live round) arrives.
    std::unique_ptr<net::Timer> catchup_timer;
    bool training = false;
    /// Round of the newest global model this peer holds (0 = only w0).
    std::uint64_t last_global_round = 0;
    /// Causal span covering the simulated local-training pass.
    obs::SpanId train_span = obs::kNoSpan;
  };

  void drive_round(PeerId self);
  void model_received(std::uint64_t round, PeerId peer,
                      const secagg::Vector& global);
  void begin_local_training(PeerId peer);
  void send_model_pull(PeerId peer);
  void handle_model_pull(PeerId peer, const wire::ModelPullMsg& msg);

  Topology topology_;
  SystemConfig cfg_;
  net::Network& net_;
  const fl::Dataset& test_;
  TwoLayerRaftSystem raft_;
  std::unique_ptr<TwoLayerAggregator> aggregator_;
  std::map<PeerId, PeerRuntime> peers_;
  fl::Model eval_model_;
  Rng eval_rng_;
  std::uint64_t last_round_started_ = 0;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t rounds_aborted_ = 0;
  std::vector<float> freshest_global_;
  /// Shared initial weights, the reset point for amnesia restarts.
  std::vector<float> w0_;
  /// Subgroups currently parked out of rounds (no electable leader).
  std::vector<char> parked_;
  /// Byzantine-detection strikes per peer (escalates to denounce()).
  std::map<PeerId, std::size_t> strikes_;
};

}  // namespace p2pfl::core
