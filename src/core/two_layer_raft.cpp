#include "core/two_layer_raft.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"

namespace p2pfl::core {

namespace {

constexpr std::uint8_t kFedConfigCommand = 1;

std::string subgroup_channel(SubgroupId g) {
  return "raft/sg" + std::to_string(g);
}

const char* kFedChannel = "raft/fed";
const char* kJoinChannel = "join";

Bytes encode_fed_config(const std::vector<PeerId>& members) {
  ByteWriter w;
  w.u8(kFedConfigCommand);
  w.vec_u32(members);
  return w.take();
}

std::optional<std::vector<PeerId>> decode_fed_config(const Bytes& data) {
  ByteReader r(data);
  if (r.u8() != kFedConfigCommand) return std::nullopt;
  auto members = r.vec_u32<PeerId>();
  if (!r.complete()) return std::nullopt;
  return members;
}

}  // namespace

TwoLayerRaftSystem::TwoLayerRaftSystem(Topology topology,
                                       TwoLayerRaftOptions opts,
                                       net::Network& net)
    : topology_(std::move(topology)), opts_(opts), net_(net) {
  wire::register_codecs();
  const auto designated = topology_.designated_leaders();
  for (PeerId id : topology_.all_peers()) {
    auto peer = std::make_unique<Peer>();
    peer->id = id;
    peer->subgroup = topology_.subgroup_of(id);
    peer->known_fed_cfg = designated;
    peer->cfg_commit_timer = std::make_unique<sim::Timer>(
        net_.simulator(), [this, p = peer.get()] { commit_fed_config(*p); },
        "fed.cfg_commit");
    peer->join_timer = std::make_unique<sim::Timer>(
        net_.simulator(), [this, p = peer.get()] { send_join_request(*p); },
        "fed.join_retry");
    peer->host.route(kJoinChannel, [this, p = peer.get()](
                                       const net::Envelope& env) {
      const auto* req = net::payload<JoinRequest>(env.body);
      if (req != nullptr) handle_join_request(*p, *req);
    });
    net_.attach(id, &peer->host);
    peers_.emplace(id, std::move(peer));
  }
  for (auto& [id, peer] : peers_) {
    const bool is_designated =
        std::find(designated.begin(), designated.end(), id) !=
        designated.end();
    raft::RaftOptions sg_opts = opts_.raft;
    sg_opts.compaction_threshold = opts_.log_compaction_threshold;
    if (is_designated) {
      // Bootstrap determinism: the designated representative campaigns
      // first, so the initial subgroup leaders coincide with the initial
      // FedAvg-layer configuration (the steady state the paper's
      // experiments start from). Later elections are fully randomized.
      sg_opts.initial_election_timeout = opts_.raft.election_timeout_min / 2;
    }
    peer->sg_node = std::make_unique<raft::RaftNode>(
        id, subgroup_channel(peer->subgroup),
        topology_.group(peer->subgroup), sg_opts, net_, peer->host);
    wire_subgroup_node(*peer);
    // Designated bootstrap representatives are FedAvg members from t=0.
    if (is_designated) {
      ensure_fed_node(*peer);
    }
  }
}

TwoLayerRaftSystem::~TwoLayerRaftSystem() {
  for (auto& [id, peer] : peers_) net_.detach(id);
}

TwoLayerRaftSystem::Peer& TwoLayerRaftSystem::peer_ref(PeerId id) {
  auto it = peers_.find(id);
  P2PFL_CHECK_MSG(it != peers_.end(), "unknown peer");
  return *it->second;
}

const TwoLayerRaftSystem::Peer& TwoLayerRaftSystem::peer_ref(
    PeerId id) const {
  auto it = peers_.find(id);
  P2PFL_CHECK_MSG(it != peers_.end(), "unknown peer");
  return *it->second;
}

void TwoLayerRaftSystem::wire_subgroup_node(Peer& p) {
  raft::RaftNode& node = *p.sg_node;
  node.on_become_leader = [this, &p] { handle_subgroup_leadership(p); };
  node.on_step_down = [this, &p] { handle_subgroup_stepdown(p); };
  node.on_apply = [this, &p](raft::Index, const raft::LogEntry& e) {
    if (auto cfg = decode_fed_config(e.data)) {
      p.known_fed_cfg = std::move(*cfg);
    }
  };
  // The subgroup state machine is just the FedAvg-layer configuration,
  // so snapshots are one encoded member list.
  node.on_snapshot_save = [&p] { return encode_fed_config(p.known_fed_cfg); };
  node.on_snapshot_install = [&p](raft::Index, const Bytes& state) {
    if (state.empty()) return;
    if (auto cfg = decode_fed_config(state)) {
      p.known_fed_cfg = std::move(*cfg);
    }
  };
}

void TwoLayerRaftSystem::ensure_fed_node(Peer& p) {
  if (!p.fed_node) {
    raft::RaftOptions fed_opts = opts_.raft;
    fed_opts.compaction_threshold = opts_.log_compaction_threshold;
    p.fed_node = std::make_unique<raft::RaftNode>(
        p.id, kFedChannel, p.known_fed_cfg, fed_opts, net_, p.host);
    p.fed_node->on_become_leader = [this, &p] {
      P2PFL_DEBUG() << "peer " << p.id << " became FedAvg-layer leader";
      if (on_fedavg_leader) on_fedavg_leader(p.id);
    };
    p.fed_node->on_config_adopted = [this,
                                     &p](const std::vector<PeerId>& cfg) {
      // Track the layer's membership for subgroup-log commits.
      p.known_fed_cfg = cfg;
      check_join_complete(p);
    };
    p.fed_node->start();
  } else if (!p.fed_node->running()) {
    p.fed_node->restart();
  }
}

void TwoLayerRaftSystem::handle_subgroup_leadership(Peer& p) {
  P2PFL_DEBUG() << "peer " << p.id << " became leader of subgroup "
                << p.subgroup;
  if (on_subgroup_leader) on_subgroup_leader(p.subgroup, p.id);
  // §V-A1 post-leader-election callback: join the FedAvg layer using the
  // configuration learned through the subgroup's replicated log.
  ensure_fed_node(p);
  p.cfg_commit_timer->arm_periodic(opts_.config_commit_interval);
  if (!p.fed_node->in_config()) {
    p.announced_join = false;
    send_join_request(p);  // arms the retry timer
  } else {
    check_join_complete(p);
  }
}

void TwoLayerRaftSystem::handle_subgroup_stepdown(Peer& p) {
  p.cfg_commit_timer->cancel();
  p.join_timer->cancel();
}

void TwoLayerRaftSystem::commit_fed_config(Peer& p) {
  if (!p.sg_node->is_leader()) return;
  const std::vector<PeerId>& members =
      p.fed_node && p.fed_node->running() && p.fed_node->in_config()
          ? p.fed_node->members()
          : p.known_fed_cfg;
  if (members.empty()) return;
  p.sg_node->propose(encode_fed_config(members));
}

void TwoLayerRaftSystem::send_join_request(Peer& p) {
  if (!p.sg_node->is_leader() || !p.fed_node) return;
  if (p.fed_node->in_config()) {
    check_join_complete(p);
    return;
  }
  JoinRequest req;
  req.candidate = p.id;
  // The stale representative of this subgroup (predecessor leader).
  for (PeerId m : p.fed_node->members()) {
    if (m != p.id && topology_.subgroup_of(m) == p.subgroup) {
      req.stale_representative = m;
      break;
    }
  }
  // Prefer the known FedAvg leader; otherwise try members round-robin.
  PeerId target = p.fed_node->leader_hint();
  const auto& members = p.fed_node->members();
  if ((target == kNoPeer || target == p.id) && !members.empty()) {
    target = members[static_cast<std::size_t>(
                         net_.simulator().now() /
                         std::max<SimDuration>(1, opts_.fedavg_presence_poll)) %
                     members.size()];
  }
  if (target != kNoPeer && target != p.id) {
    net_.simulator().obs().metrics.counter("fed.join_requests").add(1);
    net_.send(p.id, target, kJoinChannel, req, wire::kJoinWire);
  }
  // §V-B1: keep polling for a FedAvg leader until the join completes.
  p.join_timer->arm(opts_.fedavg_presence_poll);
}

void TwoLayerRaftSystem::handle_join_request(Peer& p,
                                             const JoinRequest& req) {
  if (!p.fed_node || !p.fed_node->running()) return;
  raft::RaftNode& fed = *p.fed_node;
  if (!fed.is_leader()) {
    // Redirect toward the leader we know of; the joiner also retries.
    const PeerId hint = fed.leader_hint();
    if (hint != kNoPeer && hint != p.id && hint != req.candidate) {
      net_.send(p.id, hint, kJoinChannel, req, wire::kJoinWire);
    }
    return;
  }
  const auto& cfg = fed.members();
  const bool candidate_in =
      std::find(cfg.begin(), cfg.end(), req.candidate) != cfg.end();
  const bool stale_in =
      req.stale_representative != kNoPeer &&
      std::find(cfg.begin(), cfg.end(), req.stale_representative) !=
          cfg.end();
  // One single-server change at a time; the joiner's retries sequence the
  // removal of the stale representative and the addition of the new one.
  if (stale_in && req.stale_representative != req.candidate) {
    fed.propose_remove_server(req.stale_representative);
  } else if (!candidate_in) {
    fed.propose_add_server(req.candidate);
  }
}

void TwoLayerRaftSystem::check_join_complete(Peer& p) {
  if (!p.fed_node || !p.fed_node->in_config()) return;
  if (!p.sg_node->is_leader()) return;
  p.join_timer->cancel();
  if (!p.announced_join) {
    p.announced_join = true;
    P2PFL_DEBUG() << "peer " << p.id << " joined the FedAvg layer";
    obs::Observability& o = net_.simulator().obs();
    o.metrics.counter("fed.joins_completed").add(1);
    if (o.trace.category_enabled("raft")) {
      o.trace.instant("raft", "fed.joined", p.id,
                      {{"subgroup", p.subgroup}});
    }
    if (on_fedavg_joined) on_fedavg_joined(p.id);
  }
}

void TwoLayerRaftSystem::start_all() {
  for (auto& [id, peer] : peers_) peer->sg_node->start();
}

void TwoLayerRaftSystem::crash_peer(PeerId peer) {
  Peer& p = peer_ref(peer);
  net_.crash(peer);
  p.sg_node->stop();
  if (p.fed_node) p.fed_node->stop();
  p.cfg_commit_timer->cancel();
  p.join_timer->cancel();
}

void TwoLayerRaftSystem::restart_peer(PeerId peer) {
  Peer& p = peer_ref(peer);
  net_.restore(peer);
  p.sg_node->restart();
  // A previous FedAvg instance comes back passively; if the layer has
  // already replaced this peer it simply never campaigns again.
  if (p.fed_node) p.fed_node->restart();
}

bool TwoLayerRaftSystem::peer_crashed(PeerId peer) const {
  return net_.crashed(peer);
}

PeerId TwoLayerRaftSystem::subgroup_leader(SubgroupId g) const {
  PeerId best = kNoPeer;
  raft::Term best_term = 0;
  for (PeerId id : topology_.group(g)) {
    const Peer& p = peer_ref(id);
    if (net_.crashed(id) || !p.sg_node->is_leader()) continue;
    if (best == kNoPeer || p.sg_node->current_term() > best_term) {
      best = id;
      best_term = p.sg_node->current_term();
    }
  }
  return best;
}

PeerId TwoLayerRaftSystem::fedavg_leader() const {
  PeerId best = kNoPeer;
  raft::Term best_term = 0;
  for (const auto& [id, p] : peers_) {
    if (net_.crashed(id) || !p->fed_node || !p->fed_node->is_leader()) {
      continue;
    }
    if (best == kNoPeer || p->fed_node->current_term() > best_term) {
      best = id;
      best_term = p->fed_node->current_term();
    }
  }
  return best;
}

std::vector<PeerId> TwoLayerRaftSystem::fedavg_members() const {
  const PeerId leader = fedavg_leader();
  if (leader == kNoPeer) return {};
  return peer_ref(leader).fed_node->members();
}

bool TwoLayerRaftSystem::stabilized() const {
  std::vector<PeerId> leaders;
  for (SubgroupId g = 0; g < topology_.subgroup_count(); ++g) {
    const PeerId l = subgroup_leader(g);
    if (l == kNoPeer) return false;
    leaders.push_back(l);
  }
  const PeerId fed = fedavg_leader();
  if (fed == kNoPeer) return false;
  std::vector<PeerId> members = fedavg_members();
  std::sort(members.begin(), members.end());
  std::sort(leaders.begin(), leaders.end());
  if (members != leaders) return false;
  for (PeerId l : leaders) {
    const Peer& p = peer_ref(l);
    if (!p.fed_node || !p.fed_node->running() || !p.fed_node->in_config()) {
      return false;
    }
  }
  return true;
}

raft::RaftNode& TwoLayerRaftSystem::subgroup_node(PeerId peer) {
  return *peer_ref(peer).sg_node;
}

raft::RaftNode* TwoLayerRaftSystem::fedavg_node(PeerId peer) {
  return peer_ref(peer).fed_node.get();
}

net::PeerHost& TwoLayerRaftSystem::host(PeerId peer) {
  return peer_ref(peer).host;
}

const std::vector<PeerId>& TwoLayerRaftSystem::known_fedavg_config(
    PeerId peer) const {
  return peer_ref(peer).known_fed_cfg;
}

}  // namespace p2pfl::core
