#include "core/two_layer_raft.hpp"

#include <sys/stat.h>

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"

namespace p2pfl::core {

namespace {

constexpr std::uint8_t kFedConfigCommand = 1;

std::string subgroup_channel(SubgroupId g) {
  return "raft/sg" + std::to_string(g);
}

const char* kFedChannel = "raft/fed";
const char* kJoinChannel = "join";
const char* kRejoinChannel = "member/rejoin";

Bytes encode_fed_config(const std::vector<PeerId>& members) {
  ByteWriter w;
  w.u8(kFedConfigCommand);
  w.vec_u32(members);
  return w.take();
}

std::optional<std::vector<PeerId>> decode_fed_config(const Bytes& data) {
  ByteReader r(data);
  if (r.u8() != kFedConfigCommand) return std::nullopt;
  auto members = r.vec_u32<PeerId>();
  if (!r.complete()) return std::nullopt;
  return members;
}

// Composite subgroup snapshot: the replicated state machine (FedAvg
// configuration) plus an opaque application blob piggy-backed for
// state-transfer catch-up (the newest global model, see
// app_snapshot_save). Tagged so a fed-config-only blob from an older
// snapshot still decodes.
constexpr std::uint8_t kCompositeSnapshot = 2;

struct SnapshotState {
  std::vector<PeerId> fed_cfg;
  Bytes app;
};

Bytes encode_snapshot_state(const std::vector<PeerId>& members,
                            const Bytes& app) {
  ByteWriter w;
  w.u8(kCompositeSnapshot);
  w.vec_u32(members);
  w.blob(app);
  return w.take();
}

std::optional<SnapshotState> decode_snapshot_state(const Bytes& data) {
  ByteReader r(data);
  if (r.u8() != kCompositeSnapshot) return std::nullopt;
  SnapshotState s;
  s.fed_cfg = r.vec_u32<PeerId>();
  s.app = r.blob();
  if (!r.complete()) return std::nullopt;
  return s;
}

}  // namespace

TwoLayerRaftSystem::TwoLayerRaftSystem(Topology topology,
                                       TwoLayerRaftOptions opts,
                                       net::Network& net)
    : topology_(std::move(topology)), opts_(opts), net_(net) {
  wire::register_codecs();
  if (!opts_.storage_dir.empty()) {
    ::mkdir(opts_.storage_dir.c_str(), 0755);  // EEXIST is fine
  }
  const auto designated = topology_.designated_leaders();
  for (PeerId id : topology_.all_peers()) {
    auto peer = std::make_unique<Peer>();
    peer->id = id;
    peer->subgroup = topology_.subgroup_of(id);
    peer->known_fed_cfg = designated;
    peer->cfg_commit_timer = std::make_unique<net::Timer>(
        net_.transport(), [this, p = peer.get()] { commit_fed_config(*p); },
        "fed.cfg_commit");
    peer->join_timer = std::make_unique<net::Timer>(
        net_.transport(), [this, p = peer.get()] { send_join_request(*p); },
        "fed.join_retry");
    peer->supervise_timer = std::make_unique<net::Timer>(
        net_.transport(), [this, p = peer.get()] { supervise(*p); },
        "member.supervise");
    peer->rejoin_timer = std::make_unique<net::Timer>(
        net_.transport(), [this, p = peer.get()] { send_rejoin_request(*p); },
        "member.rejoin_retry");
    peer->host.route(kJoinChannel, [this, p = peer.get()](
                                       const net::Envelope& env) {
      const auto* req = net::payload<JoinRequest>(env.body);
      if (req != nullptr) handle_join_request(*p, *req);
    });
    peer->host.route(kRejoinChannel, [this, p = peer.get()](
                                         const net::Envelope& env) {
      const auto* req = net::payload<wire::RejoinRequestMsg>(env.body);
      if (req != nullptr) handle_rejoin_request(*p, *req);
    });
    net_.attach(id, &peer->host);
    peers_.emplace(id, std::move(peer));
  }
  for (auto& [id, peer] : peers_) {
    const bool is_designated =
        std::find(designated.begin(), designated.end(), id) !=
        designated.end();
    raft::RaftOptions sg_opts = opts_.raft;
    sg_opts.compaction_threshold = opts_.log_compaction_threshold;
    if (is_designated) {
      // Bootstrap determinism: the designated representative campaigns
      // first, so the initial subgroup leaders coincide with the initial
      // FedAvg-layer configuration (the steady state the paper's
      // experiments start from). Later elections are fully randomized.
      sg_opts.initial_election_timeout = opts_.raft.election_timeout_min / 2;
    }
    make_sg_node(*peer, topology_.group(peer->subgroup), sg_opts);
    // Designated bootstrap representatives are FedAvg members from t=0.
    if (is_designated) {
      ensure_fed_node(*peer);
    }
  }
}

std::string TwoLayerRaftSystem::sg_storage_prefix(const Peer& p) const {
  return opts_.storage_dir + "/peer" + std::to_string(p.id) + "_sg" +
         std::to_string(p.subgroup);
}

std::string TwoLayerRaftSystem::fed_storage_prefix(const Peer& p) const {
  return opts_.storage_dir + "/peer" + std::to_string(p.id) + "_fed";
}

void TwoLayerRaftSystem::make_sg_node(Peer& p, std::vector<PeerId> config,
                                      raft::RaftOptions sg_opts) {
  if (!opts_.storage_dir.empty() && !p.sg_storage) {
    p.sg_storage = std::make_unique<raft::WalStorage>(sg_storage_prefix(p));
  }
  // Destroy any predecessor instance first: its destructor unroutes the
  // subgroup channels the replacement is about to register.
  p.sg_node.reset();
  p.sg_node = std::make_unique<raft::RaftNode>(
      p.id, subgroup_channel(p.subgroup), std::move(config), sg_opts, net_,
      p.host, p.sg_storage.get());
  wire_subgroup_node(p);
}

TwoLayerRaftSystem::~TwoLayerRaftSystem() {
  for (auto& [id, peer] : peers_) net_.detach(id);
}

TwoLayerRaftSystem::Peer& TwoLayerRaftSystem::peer_ref(PeerId id) {
  auto it = peers_.find(id);
  P2PFL_CHECK_MSG(it != peers_.end(), "unknown peer");
  return *it->second;
}

const TwoLayerRaftSystem::Peer& TwoLayerRaftSystem::peer_ref(
    PeerId id) const {
  auto it = peers_.find(id);
  P2PFL_CHECK_MSG(it != peers_.end(), "unknown peer");
  return *it->second;
}

void TwoLayerRaftSystem::wire_subgroup_node(Peer& p) {
  raft::RaftNode& node = *p.sg_node;
  node.on_become_leader = [this, &p] { handle_subgroup_leadership(p); };
  node.on_step_down = [this, &p] { handle_subgroup_stepdown(p); };
  node.on_config_adopted = [this, &p](const std::vector<PeerId>& cfg) {
    handle_subgroup_config(p, cfg);
  };
  node.on_apply = [this, &p](raft::Index, const raft::LogEntry& e) {
    if (auto cfg = decode_fed_config(e.data)) {
      p.known_fed_cfg = std::move(*cfg);
    }
  };
  // The subgroup state machine is the FedAvg-layer configuration; the
  // snapshot additionally carries the application's catch-up blob so a
  // far-behind (or amnesiac) member recovers config AND model state in
  // one InstallSnapshot instead of a separate model push.
  node.on_snapshot_save = [this, &p] {
    const Bytes app = app_snapshot_save ? app_snapshot_save(p.id) : Bytes{};
    return encode_snapshot_state(p.known_fed_cfg, app);
  };
  node.on_snapshot_install = [this, &p](raft::Index, const Bytes& state) {
    if (state.empty()) return;
    if (auto s = decode_snapshot_state(state)) {
      p.known_fed_cfg = std::move(s->fed_cfg);
      if (!s->app.empty() && app_snapshot_install) {
        app_snapshot_install(p.id, s->app);
      }
    } else if (auto cfg = decode_fed_config(state)) {
      // Pre-composite snapshot blob (restored at restart()).
      p.known_fed_cfg = std::move(*cfg);
    }
  };
  node.snapshot_payload = [this](const Bytes& state) -> std::uint64_t {
    if (!app_snapshot_payload) return 0;
    auto s = decode_snapshot_state(state);
    if (!s || s->app.empty()) return 0;
    return app_snapshot_payload(s->app);
  };
}

void TwoLayerRaftSystem::make_fed_node(Peer& p) {
  raft::RaftOptions fed_opts = opts_.raft;
  fed_opts.compaction_threshold = opts_.log_compaction_threshold;
  if (!opts_.storage_dir.empty() && !p.fed_storage) {
    p.fed_storage = std::make_unique<raft::WalStorage>(fed_storage_prefix(p));
  }
  p.fed_node.reset();  // unroute any predecessor first
  p.fed_node = std::make_unique<raft::RaftNode>(
      p.id, kFedChannel, p.known_fed_cfg, fed_opts, net_, p.host,
      p.fed_storage.get());
  p.fed_node->on_become_leader = [this, &p] {
    P2PFL_DEBUG() << "peer " << p.id << " became FedAvg-layer leader";
    if (on_fedavg_leader) on_fedavg_leader(p.id);
  };
  p.fed_node->on_config_adopted = [this, &p](const std::vector<PeerId>& cfg) {
    // Track the layer's membership for subgroup-log commits.
    p.known_fed_cfg = cfg;
    const bool member = std::find(cfg.begin(), cfg.end(), p.id) != cfg.end();
    if (member) {
      check_join_complete(p);
    } else if (p.sg_node->is_leader() && !net_.crashed(p.id)) {
      // The layer evicted this representative while it was out (e.g.
      // the fed supervisor saw it silent during a crash window it has
      // since recovered from): run the §V-B1 join handshake again.
      p.announced_join = false;
      send_join_request(p);
    }
  };
}

void TwoLayerRaftSystem::ensure_fed_node(Peer& p) {
  if (!p.fed_node) {
    make_fed_node(p);
    if (p.fed_node->recovered_from_storage()) {
      p.fed_node->restart();
    } else {
      p.fed_node->start();
    }
  } else if (!p.fed_node->running()) {
    p.fed_node->restart();
  }
}

void TwoLayerRaftSystem::handle_subgroup_leadership(Peer& p) {
  P2PFL_DEBUG() << "peer " << p.id << " became leader of subgroup "
                << p.subgroup;
  if (on_subgroup_leader) on_subgroup_leader(p.subgroup, p.id);
  // §V-A1 post-leader-election callback: join the FedAvg layer using the
  // configuration learned through the subgroup's replicated log.
  ensure_fed_node(p);
  p.cfg_commit_timer->arm_periodic(opts_.config_commit_interval);
  if (!p.fed_node->in_config()) {
    p.announced_join = false;
    send_join_request(p);  // arms the retry timer
  } else {
    check_join_complete(p);
  }
}

void TwoLayerRaftSystem::handle_subgroup_stepdown(Peer& p) {
  p.cfg_commit_timer->cancel();
  p.join_timer->cancel();
}

void TwoLayerRaftSystem::commit_fed_config(Peer& p) {
  if (!p.sg_node->is_leader()) return;
  const std::vector<PeerId>& members =
      p.fed_node && p.fed_node->running() && p.fed_node->in_config()
          ? p.fed_node->members()
          : p.known_fed_cfg;
  if (members.empty()) return;
  p.sg_node->propose(encode_fed_config(members));
}

void TwoLayerRaftSystem::send_join_request(Peer& p) {
  if (!p.sg_node->is_leader() || !p.fed_node) return;
  if (p.fed_node->in_config()) {
    check_join_complete(p);
    return;
  }
  JoinRequest req;
  req.candidate = p.id;
  // The stale representative of this subgroup (predecessor leader).
  for (PeerId m : p.fed_node->members()) {
    if (m != p.id && topology_.subgroup_of(m) == p.subgroup) {
      req.stale_representative = m;
      break;
    }
  }
  // Prefer the known FedAvg leader; otherwise try members round-robin.
  PeerId target = p.fed_node->leader_hint();
  const auto& members = p.fed_node->members();
  if ((target == kNoPeer || target == p.id) && !members.empty()) {
    target = members[static_cast<std::size_t>(
                         net_.now() /
                         std::max<SimDuration>(1, opts_.fedavg_presence_poll)) %
                     members.size()];
  }
  if (target != kNoPeer && target != p.id) {
    net_.obs().metrics.counter("fed.join_requests").add(1);
    net_.send(p.id, target, kJoinChannel, req, wire::kJoinWire);
  }
  // §V-B1: keep polling for a FedAvg leader until the join completes.
  p.join_timer->arm(opts_.fedavg_presence_poll);
}

void TwoLayerRaftSystem::handle_join_request(Peer& p,
                                             const JoinRequest& req) {
  if (!p.fed_node || !p.fed_node->running()) return;
  raft::RaftNode& fed = *p.fed_node;
  if (!fed.is_leader()) {
    // Redirect toward the leader we know of; the joiner also retries.
    const PeerId hint = fed.leader_hint();
    if (hint != kNoPeer && hint != p.id && hint != req.candidate) {
      net_.send(p.id, hint, kJoinChannel, req, wire::kJoinWire);
    }
    return;
  }
  // Denounced peers are refused outright: liveness proof does not lift
  // a Byzantine attribution.
  if (banned_.count(req.candidate) > 0) {
    net_.obs().metrics.counter("membership.join_refused").add(1);
    return;
  }
  // A join request proves the candidate is alive; drop any suspicion the
  // fed-layer failure detector holds against it.
  p.fed_suspected.erase(req.candidate);
  const auto& cfg = fed.members();
  const bool candidate_in =
      std::find(cfg.begin(), cfg.end(), req.candidate) != cfg.end();
  const bool stale_in =
      req.stale_representative != kNoPeer &&
      std::find(cfg.begin(), cfg.end(), req.stale_representative) !=
          cfg.end();
  // One single-server change at a time; the joiner's retries sequence the
  // removal of the stale representative and the addition of the new one.
  if (stale_in && req.stale_representative != req.candidate) {
    fed.propose_remove_server(req.stale_representative);
  } else if (!candidate_in) {
    fed.propose_add_server(req.candidate);
  }
}

void TwoLayerRaftSystem::check_join_complete(Peer& p) {
  if (!p.fed_node || !p.fed_node->in_config()) return;
  if (!p.sg_node->is_leader()) return;
  p.join_timer->cancel();
  if (!p.announced_join) {
    p.announced_join = true;
    P2PFL_DEBUG() << "peer " << p.id << " joined the FedAvg layer";
    obs::Observability& o = net_.obs();
    o.metrics.counter("fed.joins_completed").add(1);
    if (o.trace.category_enabled("raft")) {
      o.trace.instant("raft", "fed.joined", p.id,
                      {{"subgroup", p.subgroup}});
    }
    if (on_fedavg_joined) on_fedavg_joined(p.id);
  }
}

// --- self-healing membership -------------------------------------------

void TwoLayerRaftSystem::supervise(Peer& p) {
  if (!opts_.self_healing || net_.crashed(p.id)) return;
  const SimTime now = net_.now();
  if (p.sg_node->running() && p.sg_node->is_leader()) {
    supervise_layer(p, *p.sg_node, p.sg_suspected, /*fed_layer=*/false);
  } else {
    // Lost leadership: the successor's detector re-establishes its own
    // suspicion clocks.
    p.sg_suspected.clear();
  }
  // Follower-side stale-config watch (subgroup layer): a member whose
  // own log still names it cannot see its removal — the leader simply
  // stops talking to it. A full grace window of leader silence is the
  // signal; the probe it triggers is idempotent if we are still in.
  if (p.sg_node->running() && !p.sg_node->is_leader() &&
      p.sg_node->in_config() && (!p.rejoining || p.stale_probe)) {
    p.sg_contact_mark =
        std::max(p.sg_contact_mark, p.sg_node->last_leader_contact());
    if (p.sg_contact_mark >= 0 &&
        now - p.sg_contact_mark > opts_.suspicion_grace) {
      probe_stale_membership(p);
    } else if (p.stale_probe) {
      // Leader contact resumed without a config change reaching us:
      // either the silence was a false alarm or the re-add left the
      // configuration order untouched. Both mean we are a member in
      // contact again — the handshake achieved its goal.
      finish_rejoin(p);
    }
  } else {
    p.sg_contact_mark = now;
    if (p.stale_probe && p.sg_node->is_leader()) finish_rejoin(p);
  }
  if (p.fed_node && p.fed_node->running() && p.fed_node->is_leader()) {
    supervise_layer(p, *p.fed_node, p.fed_suspected, /*fed_layer=*/true);
  } else {
    p.fed_suspected.clear();
  }
  // Same watch for the FedAvg layer; only a current subgroup leader has
  // any business being a member there.
  if (p.fed_node && p.fed_node->running() && !p.fed_node->is_leader() &&
      p.fed_node->in_config() && p.sg_node->is_leader()) {
    p.fed_contact_mark =
        std::max(p.fed_contact_mark, p.fed_node->last_leader_contact());
    if (p.fed_contact_mark >= 0 &&
        now - p.fed_contact_mark > opts_.suspicion_grace) {
      JoinRequest req;
      req.candidate = p.id;
      req.stale_representative = kNoPeer;
      const std::vector<PeerId>& members = p.fed_node->members();
      PeerId target = p.fed_node->leader_hint();
      if (target == kNoPeer || target == p.id) {
        std::vector<PeerId> others;
        for (PeerId m : members) {
          if (m != p.id) others.push_back(m);
        }
        if (!others.empty()) {
          target = others[p.probe_attempts % others.size()];
        }
      }
      ++p.probe_attempts;
      if (target != kNoPeer && target != p.id) {
        net_.obs().metrics.counter("fed.stale_probes").add(1);
        p.announced_join = false;
        net_.send(p.id, target, kJoinChannel, req, wire::kJoinWire);
      }
    }
  } else {
    p.fed_contact_mark = now;
  }
}

void TwoLayerRaftSystem::probe_stale_membership(Peer& p) {
  obs::Observability& o = net_.obs();
  if (!p.rejoining) {
    // A probe is a full rejoin handshake whose happy ending may simply
    // be "the leader talks to us again" — open it as one so the
    // eviction/rejoin bookkeeping pairs up even when the evicted node
    // never observes its own removal.
    p.rejoining = true;
    p.stale_probe = true;
    p.rejoin_attempts = 0;
    o.metrics.counter("membership.rejoin_started").add(1);
    if (o.trace.category_enabled("raft")) {
      o.trace.instant("raft", "membership.rejoin_start", p.id,
                      {{"subgroup", p.subgroup}, {"stale_probe", true}});
    }
    if (o.spans.enabled() && p.rejoin_span == obs::kNoSpan) {
      p.rejoin_span =
          o.spans.open(obs::SpanKind::kRejoin, "member/rejoin", p.id, 0);
    }
  }
  wire::RejoinRequestMsg req;
  req.peer = p.id;
  req.subgroup = p.subgroup;
  req.incarnation = net_.incarnation(p.id);
  const PeerId target = rejoin_target(p, p.probe_attempts);
  ++p.probe_attempts;
  if (target != kNoPeer && target != p.id) {
    o.metrics.counter("membership.stale_probes").add(1);
    obs::SpanStackScope scope(o.spans, p.rejoin_span);
    net_.send(p.id, target, kRejoinChannel, req, wire::kRejoinWire);
  }
}

PeerId TwoLayerRaftSystem::rejoin_target(const Peer& p,
                                         std::size_t attempt) const {
  // Prefer the leader we last heard from; otherwise walk the static
  // topology round-robin (leadership may have moved while we were out).
  PeerId target = p.sg_node->leader_hint();
  if (target == kNoPeer || target == p.id) {
    std::vector<PeerId> others;
    for (PeerId m : topology_.group(p.subgroup)) {
      if (m != p.id) others.push_back(m);
    }
    if (!others.empty()) target = others[attempt % others.size()];
  }
  return target;
}

void TwoLayerRaftSystem::supervise_layer(
    Peer& p, raft::RaftNode& node, std::map<PeerId, SimTime>& suspected,
    bool fed_layer) {
  const SimTime now = net_.now();
  obs::Observability& o = net_.obs();
  const char* layer = fed_layer ? "fed" : "sg";
  // Confirmed evictions first: a suspect missing from the adopted
  // configuration has been removed (adopt-at-append on this leader).
  // Copy, not reference: on_peer_evicted below may start an eviction
  // whose config append makes the node adopt a new membership vector,
  // which would leave a reference dangling mid-iteration.
  const std::vector<PeerId> cfg = node.members();
  for (auto it = suspected.begin(); it != suspected.end();) {
    if (std::find(cfg.begin(), cfg.end(), it->first) == cfg.end()) {
      o.metrics.counter("membership.evicted").add(1);
      o.metrics
          .histogram("membership.eviction_latency_ms",
                     obs::Histogram::exponential_bounds(1.0, 2.0, 16))
          .record(static_cast<double>(now - it->second) /
                  static_cast<double>(kMillisecond));
      if (o.trace.category_enabled("raft")) {
        o.trace.instant("raft", "membership.evicted", p.id,
                        {{"peer", it->first}, {"layer", layer}});
      }
      if (on_peer_evicted) on_peer_evicted(it->first, fed_layer);
      it = suspected.erase(it);
    } else {
      ++it;
    }
  }
  for (PeerId m : cfg) {
    if (m == p.id) continue;
    if (banned_.count(m) > 0) {
      // Standing eviction pressure on denounced members: liveness is
      // irrelevant, the suspicion never clears, and the removal retries
      // every tick until the configuration change lands.
      if (suspected.emplace(m, now).second) {
        o.metrics.counter("membership.suspected").add(1);
        if (o.trace.category_enabled("raft")) {
          o.trace.instant("raft", "membership.suspect", p.id,
                          {{"peer", m}, {"layer", layer}, {"banned", true}});
        }
      }
      node.propose_remove_server(m);
      continue;
    }
    const SimTime last = node.follower_last_contact(m);
    if (last < 0) continue;
    if (now - last <= opts_.suspicion_grace) {
      if (suspected.erase(m) > 0) {
        o.metrics.counter("membership.suspicion_cleared").add(1);
      }
      continue;
    }
    if (suspected.emplace(m, now).second) {
      o.metrics.counter("membership.suspected").add(1);
      // Detector delay: silence beyond the grace window until this tick
      // noticed it.
      o.metrics
          .histogram("membership.suspicion_latency_ms",
                     obs::Histogram::exponential_bounds(1.0, 2.0, 16))
          .record(static_cast<double>(now - last) /
                  static_cast<double>(kMillisecond));
      if (o.trace.category_enabled("raft")) {
        o.trace.instant("raft", "membership.suspect", p.id,
                        {{"peer", m}, {"layer", layer}});
      }
    }
    // One single-server change at a time: a busy pending change makes
    // this a no-op and the next tick retries.
    node.propose_remove_server(m);
  }
}

void TwoLayerRaftSystem::handle_subgroup_config(
    Peer& p, const std::vector<PeerId>& cfg) {
  if (!opts_.self_healing) return;
  const bool member = std::find(cfg.begin(), cfg.end(), p.id) != cfg.end();
  if (member) {
    if (p.rejoining) finish_rejoin(p);
  } else if (p.sg_node->running() && !net_.crashed(p.id)) {
    if (p.stale_probe) {
      // The stale belief is gone — our own removal finally reached us.
      // Degrade the probe into the regular retrying handshake.
      p.stale_probe = false;
      send_rejoin_request(p);
    } else {
      // Evicted while alive (wrongly suspected under a partition, or the
      // eviction landed before this restart was noticed): ask back in.
      start_rejoin(p);
    }
  }
}

void TwoLayerRaftSystem::start_rejoin(Peer& p) {
  if (!opts_.self_healing || p.rejoining) return;
  if (p.sg_node->in_config()) return;
  p.rejoining = true;
  p.rejoin_attempts = 0;
  obs::Observability& o = net_.obs();
  o.metrics.counter("membership.rejoin_started").add(1);
  if (o.trace.category_enabled("raft")) {
    o.trace.instant("raft", "membership.rejoin_start", p.id,
                    {{"subgroup", p.subgroup}});
  }
  if (o.spans.enabled()) {
    p.rejoin_span =
        o.spans.open(obs::SpanKind::kRejoin, "member/rejoin", p.id, 0);
  }
  send_rejoin_request(p);
}

void TwoLayerRaftSystem::send_rejoin_request(Peer& p) {
  if (net_.crashed(p.id) || !p.sg_node->running()) return;
  if (p.sg_node->in_config()) {
    finish_rejoin(p);
    return;
  }
  wire::RejoinRequestMsg req;
  req.peer = p.id;
  req.subgroup = p.subgroup;
  req.incarnation = net_.incarnation(p.id);
  const PeerId target = rejoin_target(p, p.rejoin_attempts);
  ++p.rejoin_attempts;
  if (target != kNoPeer && target != p.id) {
    obs::Observability& o = net_.obs();
    o.metrics.counter("membership.rejoin_requests").add(1);
    obs::SpanStackScope scope(o.spans, p.rejoin_span);
    net_.send(p.id, target, kRejoinChannel, req, wire::kRejoinWire);
  }
  p.rejoin_timer->arm(opts_.rejoin_retry);
}

void TwoLayerRaftSystem::handle_rejoin_request(
    Peer& p, const wire::RejoinRequestMsg& req) {
  if (!opts_.self_healing) return;
  if (net_.crashed(p.id) || !p.sg_node->running()) return;
  if (req.subgroup != p.subgroup || req.peer == p.id) return;
  raft::RaftNode& sg = *p.sg_node;
  if (!sg.is_leader()) {
    // Redirect toward the leader we know of; the joiner also retries.
    const PeerId hint = sg.leader_hint();
    if (hint != kNoPeer && hint != p.id && hint != req.peer) {
      net_.send(p.id, hint, kRejoinChannel, req, wire::kRejoinWire);
    }
    return;
  }
  // Denounced peers stay out: the rejoin handshake heals crashes, not
  // Byzantine attributions (lifted only by an explicit forgive()).
  if (banned_.count(req.peer) > 0) {
    obs::Observability& o = net_.obs();
    o.metrics.counter("membership.rejoin_refused").add(1);
    if (o.trace.category_enabled("raft")) {
      o.trace.instant("raft", "membership.rejoin_refused", p.id,
                      {{"peer", req.peer}});
    }
    return;
  }
  // The requester is demonstrably alive: lift any standing suspicion and
  // configure it back in. The add is rejected if it is still a member
  // (replication resumes by itself) or while another change is in
  // flight — the joiner's retries sequence those cases.
  p.sg_suspected.erase(req.peer);
  sg.propose_add_server(req.peer);
}

void TwoLayerRaftSystem::finish_rejoin(Peer& p) {
  if (!p.rejoining) return;
  p.rejoining = false;
  p.stale_probe = false;
  p.rejoin_timer->cancel();
  obs::Observability& o = net_.obs();
  o.metrics.counter("membership.rejoined").add(1);
  if (o.trace.category_enabled("raft")) {
    o.trace.instant("raft", "membership.rejoined", p.id,
                    {{"subgroup", p.subgroup}});
  }
  if (o.spans.enabled() && p.rejoin_span != obs::kNoSpan) {
    // Closed by whatever delivery carried the configuration in.
    obs::SpanId closer = o.spans.current();
    if (closer == p.rejoin_span) closer = obs::kNoSpan;
    o.spans.close(p.rejoin_span, closer);
  }
  p.rejoin_span = obs::kNoSpan;
  if (on_peer_rejoined) on_peer_rejoined(p.id);
}

// --- Byzantine denunciation ------------------------------------------------

void TwoLayerRaftSystem::denounce(PeerId peer) {
  if (!banned_.insert(peer).second) return;
  Peer& target = peer_ref(peer);
  const SimTime now = net_.now();
  obs::Observability& o = net_.obs();
  o.metrics.counter("membership.denounced").add(1);
  if (o.trace.category_enabled("raft")) {
    o.trace.instant("raft", "membership.denounced", peer,
                    {{"subgroup", target.subgroup}});
  }
  // FedAvg layer first: a live FedAvg leader can remove the peer at once.
  const PeerId fl = fedavg_leader();
  if (fl != kNoPeer && fl != peer) {
    Peer& f = peer_ref(fl);
    f.fed_suspected.emplace(peer, now);
    f.fed_node->propose_remove_server(peer);
  }
  // Subgroup layer. A denounced peer that currently LEADS its subgroup
  // cannot be removed by anyone else (only the leader changes the
  // configuration); honest followers refusing its authority would force
  // an election — modelled here as a leadership transfer to an honest
  // live member, after which the successor's supervisor evicts it.
  PeerId sgl = subgroup_leader(target.subgroup);
  if (sgl == peer) {
    for (PeerId m : target.sg_node->members()) {
      if (m != peer && !net_.crashed(m) && banned_.count(m) == 0) {
        target.sg_node->transfer_leadership(m);
        break;
      }
    }
    sgl = kNoPeer;  // eviction proceeds once the successor supervises
  }
  if (sgl != kNoPeer) {
    Peer& l = peer_ref(sgl);
    l.sg_suspected.emplace(peer, now);
    l.sg_node->propose_remove_server(peer);
  }
}

void TwoLayerRaftSystem::forgive(PeerId peer) { banned_.erase(peer); }

bool TwoLayerRaftSystem::push_state_snapshot(PeerId leader, PeerId to) {
  if (net_.crashed(leader) || leader == to) return false;
  Peer& p = peer_ref(leader);
  if (topology_.subgroup_of(to) != p.subgroup) return false;
  const bool sent = p.sg_node->push_snapshot(to);
  if (sent) {
    obs::Observability& o = net_.obs();
    o.metrics.counter("membership.state_snapshots_pushed").add(1);
    if (o.trace.category_enabled("raft")) {
      o.trace.instant("raft", "membership.state_snapshot_push", leader,
                      {{"to", to}, {"subgroup", p.subgroup}});
    }
  }
  return sent;
}

void TwoLayerRaftSystem::abort_rejoin(Peer& p) {
  if (!p.rejoining) return;
  p.rejoining = false;
  p.stale_probe = false;
  p.rejoin_timer->cancel();
  net_.obs().spans.close_aborted(p.rejoin_span);
  p.rejoin_span = obs::kNoSpan;
}

HealthReport TwoLayerRaftSystem::health(
    std::size_t sac_dropout_tolerance) const {
  HealthReport report;
  report.fedavg_leader = fedavg_leader();
  report.fedavg_members = fedavg_members();
  for (SubgroupId g = 0; g < topology_.subgroup_count(); ++g) {
    SubgroupHealth h;
    h.subgroup = g;
    h.leader = subgroup_leader(g);
    const std::vector<PeerId>& group = topology_.group(g);
    // Configuration view: the leader's if one exists, else any live
    // running member's, else any member's surviving persistent state.
    const Peer* view =
        h.leader != kNoPeer ? &peer_ref(h.leader) : nullptr;
    if (view == nullptr) {
      for (PeerId id : group) {
        const Peer& cand = peer_ref(id);
        if (!net_.crashed(id) && cand.sg_node->running()) {
          view = &cand;
          break;
        }
      }
    }
    if (view == nullptr && !group.empty()) view = &peer_ref(group.front());
    if (view != nullptr) h.config = view->sg_node->members();
    for (PeerId id : group) {
      if (!net_.crashed(id)) h.live.push_back(id);
      if (std::find(h.config.begin(), h.config.end(), id) ==
          h.config.end()) {
        h.evicted.push_back(id);
      }
      if (banned_.count(id) > 0) h.banned.push_back(id);
    }
    if (h.leader != kNoPeer) {
      for (const auto& [m, t] : peer_ref(h.leader).sg_suspected) {
        h.suspected.push_back(m);
      }
    }
    h.nominal_k = group.size() > sac_dropout_tolerance
                      ? group.size() - sac_dropout_tolerance
                      : 1;
    h.effective_k =
        std::max<std::size_t>(1, std::min(h.nominal_k, h.live.size()));
    h.degraded = h.live.size() < h.nominal_k;
    // Parked: leaderless and structurally unable to elect — the live
    // members cannot form a quorum of the current configuration.
    std::size_t live_in_cfg = 0;
    for (PeerId id : h.config) {
      if (!net_.crashed(id)) ++live_in_cfg;
    }
    const std::size_t q = h.config.size() / 2 + 1;
    h.parked =
        h.leader == kNoPeer && (h.config.empty() || live_in_cfg < q);
    report.subgroups.push_back(std::move(h));
  }
  return report;
}

void TwoLayerRaftSystem::start_all() {
  for (auto& [id, peer] : peers_) {
    if (peer->sg_node->recovered_from_storage()) {
      // The WAL carried state from a previous process: resume from it
      // (restart fires the snapshot-install/config hooks) instead of
      // booting a fresh term-0 follower.
      peer->sg_node->restart();
    } else {
      peer->sg_node->start();
    }
    if (opts_.self_healing) {
      peer->sg_contact_mark = net_.now();
      peer->fed_contact_mark = net_.now();
      peer->supervise_timer->arm_periodic(opts_.membership_poll);
    }
  }
}

void TwoLayerRaftSystem::crash_peer(PeerId peer) {
  Peer& p = peer_ref(peer);
  net_.crash(peer);
  p.sg_node->stop();
  if (p.fed_node) p.fed_node->stop();
  p.cfg_commit_timer->cancel();
  p.join_timer->cancel();
  p.supervise_timer->cancel();
  p.sg_suspected.clear();
  p.fed_suspected.clear();
  abort_rejoin(p);
}

void TwoLayerRaftSystem::rebuild_from_storage(Peer& p) {
  raft::RaftOptions sg_opts = opts_.raft;
  sg_opts.compaction_threshold = opts_.log_compaction_threshold;
  make_sg_node(p, topology_.group(p.subgroup), sg_opts);
  if (p.sg_node->recovered_from_storage()) {
    p.sg_node->restart();
  } else {
    // WAL was empty or unusable: amnesia fallback — a blank follower
    // that waits to be configured back in.
    p.sg_node->start();
  }
  // The FedAvg instance comes back only if it left durable state; a
  // representative without one is recreated on its next leadership.
  p.fed_node.reset();
  if (p.fed_storage) {
    make_fed_node(p);
    if (p.fed_node->recovered_from_storage()) {
      p.fed_node->restart();
    } else {
      p.fed_node.reset();
    }
  }
}

void TwoLayerRaftSystem::restart_peer(PeerId peer) {
  Peer& p = peer_ref(peer);
  net_.restore(peer);
  if (p.sg_storage) {
    // Durable mode models a full process restart: the in-memory
    // instances are gone, everything comes back from the WAL.
    rebuild_from_storage(p);
  } else {
    p.sg_node->restart();
    // A previous FedAvg instance comes back passively; if the layer has
    // already replaced this peer it simply never campaigns again.
    if (p.fed_node) p.fed_node->restart();
  }
  if (opts_.self_healing) {
    p.sg_contact_mark = net_.now();
    p.fed_contact_mark = net_.now();
    p.supervise_timer->arm_periodic(opts_.membership_poll);
    // Evicted while down: the surviving log no longer names this peer.
    if (!p.sg_node->in_config()) start_rejoin(p);
  }
}

void TwoLayerRaftSystem::restart_peer_amnesia(PeerId peer) {
  Peer& p = peer_ref(peer);
  P2PFL_CHECK_MSG(net_.crashed(peer),
                  "amnesia restart requires a crashed peer");
  net_.restore(peer);
  // Wipe persistent Raft state — in durable mode literally: the WALs
  // are deleted, so there is nothing to recover. The successor instance
  // boots with an empty configuration: it can neither campaign nor vote
  // (no split-brain from the forgotten term/vote), and waits for its
  // leader to configure it back in and replicate (or snapshot-install)
  // history.
  p.fed_node.reset();
  if (p.sg_storage) p.sg_storage->wipe();
  if (p.fed_storage) p.fed_storage->wipe();
  p.announced_join = false;
  p.known_fed_cfg = topology_.designated_leaders();
  raft::RaftOptions sg_opts = opts_.raft;
  sg_opts.compaction_threshold = opts_.log_compaction_threshold;
  make_sg_node(p, {}, sg_opts);
  p.sg_node->start();
  obs::Observability& o = net_.obs();
  o.metrics.counter("membership.amnesia_restarts").add(1);
  if (o.trace.category_enabled("raft")) {
    o.trace.instant("raft", "membership.amnesia_restart", peer,
                    {{"subgroup", p.subgroup}});
  }
  if (opts_.self_healing) {
    p.sg_contact_mark = net_.now();
    p.fed_contact_mark = net_.now();
    p.supervise_timer->arm_periodic(opts_.membership_poll);
    start_rejoin(p);
  }
}

bool TwoLayerRaftSystem::peer_crashed(PeerId peer) const {
  return net_.crashed(peer);
}

PeerId TwoLayerRaftSystem::subgroup_leader(SubgroupId g) const {
  PeerId best = kNoPeer;
  raft::Term best_term = 0;
  for (PeerId id : topology_.group(g)) {
    const Peer& p = peer_ref(id);
    if (net_.crashed(id) || !p.sg_node->is_leader()) continue;
    if (best == kNoPeer || p.sg_node->current_term() > best_term) {
      best = id;
      best_term = p.sg_node->current_term();
    }
  }
  return best;
}

PeerId TwoLayerRaftSystem::fedavg_leader() const {
  PeerId best = kNoPeer;
  raft::Term best_term = 0;
  for (const auto& [id, p] : peers_) {
    if (net_.crashed(id) || !p->fed_node || !p->fed_node->is_leader()) {
      continue;
    }
    if (best == kNoPeer || p->fed_node->current_term() > best_term) {
      best = id;
      best_term = p->fed_node->current_term();
    }
  }
  return best;
}

std::vector<PeerId> TwoLayerRaftSystem::fedavg_members() const {
  const PeerId leader = fedavg_leader();
  if (leader == kNoPeer) return {};
  return peer_ref(leader).fed_node->members();
}

bool TwoLayerRaftSystem::stabilized() const {
  std::vector<PeerId> leaders;
  for (SubgroupId g = 0; g < topology_.subgroup_count(); ++g) {
    const PeerId l = subgroup_leader(g);
    if (l == kNoPeer) return false;
    leaders.push_back(l);
  }
  const PeerId fed = fedavg_leader();
  if (fed == kNoPeer) return false;
  std::vector<PeerId> members = fedavg_members();
  std::sort(members.begin(), members.end());
  std::sort(leaders.begin(), leaders.end());
  if (members != leaders) return false;
  for (PeerId l : leaders) {
    const Peer& p = peer_ref(l);
    if (!p.fed_node || !p.fed_node->running() || !p.fed_node->in_config()) {
      return false;
    }
  }
  return true;
}

raft::RaftNode& TwoLayerRaftSystem::subgroup_node(PeerId peer) {
  return *peer_ref(peer).sg_node;
}

raft::RaftNode* TwoLayerRaftSystem::fedavg_node(PeerId peer) {
  return peer_ref(peer).fed_node.get();
}

net::PeerHost& TwoLayerRaftSystem::host(PeerId peer) {
  return peer_ref(peer).host;
}

const std::vector<PeerId>& TwoLayerRaftSystem::known_fedavg_config(
    PeerId peer) const {
  return peer_ref(peer).known_fed_cfg;
}

}  // namespace p2pfl::core
