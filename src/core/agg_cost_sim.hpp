// Measure the real aggregation protocol's communication cost.
//
// Builds a fresh simulated network, runs one fault-free two-layer
// aggregation round with the message-driven actors, and returns the
// bytes the network counted, normalized to |w| units. Cross-checks the
// closed-form model of analysis/cost_model.hpp (tests assert exact
// equality; Figs. 13-14 print both columns).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace p2pfl::sim {
class Simulator;
}  // namespace p2pfl::sim

namespace p2pfl::core {

struct AggCostBreakdown {
  double total_units = 0.0;      // everything, in |w| units
  double sac_units = 0.0;        // subgroup share + subtotal traffic
  double fedavg_units = 0.0;     // leader uploads + result returns
  double broadcast_units = 0.0;  // in-subgroup fan-out of the result
  bool completed = false;        // the round produced a global model
};

/// Synthetic |w| used by simulate_aggregation_cost for every model
/// transfer (exported so metric cross-checks can convert |w| units back
/// to the byte counts the network's metrics registry reports).
inline constexpr std::uint64_t kCostSimModelWire = 1u << 20;

/// Observation hooks for cost simulations that own their Simulator
/// internally: `on_start` runs before the round is kicked off (e.g. to
/// enable tracing), `on_finish` after the sim drains (e.g. to export
/// metrics/traces before the Simulator is destroyed).
struct AggSimHooks {
  std::function<void(sim::Simulator&)> on_start;
  std::function<void(sim::Simulator&)> on_finish;
};

/// One aggregation round over `groups` subgroup sizes with a per-subgroup
/// dropout tolerance (a "k-n setting" is tolerance = n - k; 0 =
/// n-out-of-n). Peers contribute tiny real vectors; the wire size of a
/// model transfer is fixed at one synthetic |w| (kCostSimModelWire).
AggCostBreakdown simulate_aggregation_cost(std::span<const std::size_t> groups,
                                           std::size_t dropout_tolerance,
                                           const AggSimHooks& hooks = {});

/// Convenience: just the total in |w| units.
double simulate_aggregation_cost_units(std::span<const std::size_t> groups,
                                       std::size_t dropout_tolerance);

struct AggLatency {
  /// Simulated time until the FedAvg leader holds the global model.
  double aggregate_ms = -1.0;
  /// Simulated time until every peer received it.
  double all_received_ms = -1.0;
  bool completed = false;
};

/// One two-layer aggregation round with per-peer egress bandwidth
/// `egress_bytes_per_sec` (0 = infinite) and model transfers of
/// `model_wire_bytes`; returns wall-clock (simulated) latencies. This is
/// the latency counterpart of the byte-count analysis: with a finite
/// NIC, the one-layer SAC leader serializes O(N) model transfers while
/// the two-layer system fans them out across subgroup leaders.
/// `hooks` observe the internally owned Simulator, e.g. to enable span
/// recording before the round and extract the critical path after it.
AggLatency simulate_two_layer_latency(std::span<const std::size_t> groups,
                                      std::size_t dropout_tolerance,
                                      std::uint64_t model_wire_bytes,
                                      std::uint64_t egress_bytes_per_sec,
                                      const AggSimHooks& hooks = {});

/// One one-layer SAC round (Alg. 2, broadcast subtotals) over N peers
/// under the same link model; returns time until all peers hold the
/// average.
AggLatency simulate_one_layer_latency(std::size_t peers,
                                      std::uint64_t model_wire_bytes,
                                      std::uint64_t egress_bytes_per_sec);

}  // namespace p2pfl::core
