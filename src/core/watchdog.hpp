// RoundWatchdog: per-round health sampling + SLO evaluation.
//
// The watchdog brackets every FedAvg round: `round_started` snapshots
// the network byte counters and the protocol counters it attributes per
// round (retries, drops, churn, strikes...), and `round_finished` turns
// the deltas into one obs::RoundSample — commit latency (censored to
// the observation window for rounds that never committed), critical-path
// phase attribution when spans are recorded, wire/payload bytes against
// the Eq. (4)/(5) closed-form budget — appends it to the RoundSeries and
// runs the SLO engine over it. On breach it captures an alert
// post-mortem from the span flight recorder, the same evidence
// `p2pflctl explain` renders.
//
// Two drive modes share the sampling path:
//   * manual — a round loop (the chaos soak) calls
//     round_started / round_committed / round_finished itself;
//   * attached — attach(P2pFlSystem&) chains onto the system's
//     round-lifecycle hooks, closing each sample at commit/abort time.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/topology.hpp"
#include "net/network.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::core {

class P2pFlSystem;

struct WatchdogConfig {
  /// SLO rules evaluated per sample (empty = record-only watchdog).
  std::vector<obs::SloRule> rules;
  std::size_t series_capacity = 4096;
  /// |w| bytes of one model transfer (4 × dim for materialized vectors,
  /// or the modeled CNN size) — the unit of the Eq. (4)/(5) closed form.
  /// 0 = skip the expected-payload computation (byte-budget rules never
  /// fire).
  std::uint64_t model_payload_bytes = 0;
  /// SAC dropout tolerance f (per-subgroup k = n − f) for the Eq. (5)
  /// fault-tolerant form; 0 reduces to Eq. (4).
  std::size_t dropout_tolerance = 0;
  /// Capture an alert post-mortem per breach via the span recorder.
  bool capture_alerts = true;
  /// Bound on retained alerts (a sustained incident breaches every
  /// round; the first few carry all the signal).
  std::size_t max_alerts = 16;
};

class RoundWatchdog {
 public:
  RoundWatchdog(sim::Simulator& sim, net::Network& net,
                const Topology& topology, WatchdogConfig cfg);

  // --- manual drive ------------------------------------------------------
  /// Open the observation window of `round`. An already-open window is
  /// closed first (as uncommitted) so a superseded round still samples.
  void round_started(std::uint64_t round);
  /// Mark the open round committed at the current virtual time.
  void round_committed(std::uint64_t round, std::size_t contributors,
                       std::size_t groups_used);
  /// Close the window: build the sample, append, evaluate SLOs.
  /// Negative loss/accuracy mean "not evaluated this round".
  void round_finished(std::uint64_t round, double loss = -1.0,
                      double accuracy = -1.0);

  // --- attached drive ----------------------------------------------------
  /// Chain onto the system's on_round_started / on_round_complete /
  /// on_round_aborted hooks (previously installed hooks keep firing).
  void attach(P2pFlSystem& sys);

  // --- results -----------------------------------------------------------
  const obs::RoundSeries& series() const { return series_; }
  obs::SloReport report() const { return engine_.report(); }
  const std::vector<obs::SloAlert>& alerts() const { return alerts_; }
  bool healthy() const { return breaches_total_ == 0; }

  /// Eq. (4)/(5) payload bytes of one fault-free round at this topology
  /// (0 when model_payload_bytes is unset).
  double expected_payload_bytes() const { return expected_payload_bytes_; }

  /// Fired after each sample is appended and judged (live table
  /// rendering in `p2pflctl watch`).
  std::function<void(const obs::RoundSample&,
                     const std::vector<obs::SloBreach>&)>
      on_sample;

 private:
  /// Counters attributed per round, snapshotted at round start.
  struct Baseline {
    std::uint64_t wire_bytes = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t retries = 0;
    std::uint64_t drops = 0;
    std::uint64_t aborts = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t strikes = 0;
  };
  Baseline snapshot() const;

  sim::Simulator& sim_;
  net::Network& net_;
  WatchdogConfig cfg_;
  obs::RoundSeries series_;
  obs::SloEngine engine_;
  std::vector<obs::SloAlert> alerts_;
  std::uint64_t breaches_total_ = 0;
  double expected_payload_bytes_ = 0.0;

  // --- open observation window -------------------------------------------
  bool open_ = false;
  std::uint64_t open_round_ = 0;
  SimTime start_ = 0;
  Baseline base_;
  bool committed_ = false;
  SimTime commit_time_ = 0;
  std::size_t contributors_ = 0;
  std::size_t groups_used_ = 0;
};

}  // namespace p2pfl::core
