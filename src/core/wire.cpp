#include "core/wire.hpp"

namespace p2pfl::core::wire {

namespace {

template <typename T, typename Fn>
std::optional<T> guarded(const Bytes& b, Fn fn) {
  ByteReader r(b);
  T out = fn(r);
  if (!r.complete()) return std::nullopt;
  return out;
}

}  // namespace

Bytes encode(const AggUploadMsg& m) {
  ByteWriter w;
  w.u64(m.round);
  w.u32(m.group);
  w.u32(m.weight);
  w.vec_f32(m.model);
  return w.take();
}

std::optional<AggUploadMsg> decode_upload(const Bytes& b) {
  return guarded<AggUploadMsg>(b, [](ByteReader& r) {
    AggUploadMsg m;
    m.round = r.u64();
    m.group = r.u32();
    m.weight = r.u32();
    m.model = r.vec_f32();
    return m;
  });
}

Bytes encode(const AggResultMsg& m) {
  ByteWriter w;
  w.u64(m.round);
  w.vec_f32(m.model);
  return w.take();
}

std::optional<AggResultMsg> decode_result(const Bytes& b) {
  return guarded<AggResultMsg>(b, [](ByteReader& r) {
    AggResultMsg m;
    m.round = r.u64();
    m.model = r.vec_f32();
    return m;
  });
}

Bytes encode(const JoinRequestMsg& m) {
  ByteWriter w;
  w.u32(m.candidate);
  w.u32(m.stale_representative);
  return w.take();
}

std::optional<JoinRequestMsg> decode_join(const Bytes& b) {
  return guarded<JoinRequestMsg>(b, [](ByteReader& r) {
    JoinRequestMsg m;
    m.candidate = r.u32();
    m.stale_representative = r.u32();
    return m;
  });
}

Bytes encode(const RejoinRequestMsg& m) {
  ByteWriter w;
  w.u32(m.peer);
  w.u32(m.subgroup);
  w.u64(m.incarnation);
  return w.take();
}

std::optional<RejoinRequestMsg> decode_rejoin(const Bytes& b) {
  return guarded<RejoinRequestMsg>(b, [](ByteReader& r) {
    RejoinRequestMsg m;
    m.peer = r.u32();
    m.subgroup = r.u32();
    m.incarnation = r.u64();
    return m;
  });
}

Bytes encode(const ModelPullMsg& m) {
  ByteWriter w;
  w.u32(m.peer);
  w.u64(m.last_round);
  return w.take();
}

std::optional<ModelPullMsg> decode_pull(const Bytes& b) {
  return guarded<ModelPullMsg>(b, [](ByteReader& r) {
    ModelPullMsg m;
    m.peer = r.u32();
    m.last_round = r.u64();
    return m;
  });
}

net::WireSize upload_wire(std::uint64_t payload, std::size_t dim) {
  net::WireSize s;
  s.payload = payload;
  s.wire = kUploadHeader + payload;
  s.modeled = static_cast<std::int64_t>(payload) -
              static_cast<std::int64_t>(4 * dim);
  return s;
}

net::WireSize result_wire(std::uint64_t payload, std::size_t dim) {
  net::WireSize s;
  s.payload = payload;
  s.wire = kResultHeader + payload;
  s.modeled = static_cast<std::int64_t>(payload) -
              static_cast<std::int64_t>(4 * dim);
  return s;
}

namespace {

secagg::Vector sample_vector(Rng& rng, std::size_t dim) {
  secagg::Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

AggUploadMsg sample_upload(Rng& rng, const net::WireSample& s) {
  AggUploadMsg m;
  m.round = s.round;
  m.group = static_cast<SubgroupId>(rng.index(s.n));
  m.weight = static_cast<std::uint32_t>(rng.index(s.n) + 1);
  m.model = sample_vector(rng, s.dim);
  return m;
}

AggResultMsg sample_result(Rng& rng, const net::WireSample& s) {
  AggResultMsg m;
  m.round = s.round;
  m.model = sample_vector(rng, s.dim);
  return m;
}

JoinRequestMsg sample_join(Rng& rng, const net::WireSample& s) {
  JoinRequestMsg m;
  m.candidate = static_cast<PeerId>(rng.index(s.n));
  m.stale_representative =
      rng.chance(0.5) ? static_cast<PeerId>(rng.index(s.n)) : kNoPeer;
  return m;
}

bool eq_upload(const AggUploadMsg& a, const AggUploadMsg& b) {
  return a.round == b.round && a.group == b.group && a.weight == b.weight &&
         a.model == b.model;
}

bool eq_result(const AggResultMsg& a, const AggResultMsg& b) {
  return a.round == b.round && a.model == b.model;
}

bool eq_join(const JoinRequestMsg& a, const JoinRequestMsg& b) {
  return a.candidate == b.candidate &&
         a.stale_representative == b.stale_representative;
}

RejoinRequestMsg sample_rejoin(Rng& rng, const net::WireSample& s) {
  RejoinRequestMsg m;
  m.peer = static_cast<PeerId>(rng.index(s.n));
  m.subgroup = static_cast<SubgroupId>(rng.index(s.k > 0 ? s.k : 1));
  m.incarnation = rng.index(8);
  return m;
}

ModelPullMsg sample_pull(Rng& rng, const net::WireSample& s) {
  ModelPullMsg m;
  m.peer = static_cast<PeerId>(rng.index(s.n));
  m.last_round = s.round > 0 ? rng.index(s.round) : 0;
  return m;
}

bool eq_rejoin(const RejoinRequestMsg& a, const RejoinRequestMsg& b) {
  return a.peer == b.peer && a.subgroup == b.subgroup &&
         a.incarnation == b.incarnation;
}

bool eq_pull(const ModelPullMsg& a, const ModelPullMsg& b) {
  return a.peer == b.peer && a.last_round == b.last_round;
}

template <typename T>
net::Codec make_codec(std::string key,
                      std::optional<T> (*decode_fn)(const Bytes&),
                      T (*sample_fn)(Rng&, const net::WireSample&),
                      bool (*eq_fn)(const T&, const T&)) {
  net::Codec c;
  c.key = std::move(key);
  c.encode = [](const std::any& body) -> std::optional<Bytes> {
    const T* m = net::payload<T>(body);
    if (m == nullptr) return std::nullopt;
    return encode(*m);
  };
  c.decode = [decode_fn](const Bytes& b) -> std::optional<std::any> {
    std::optional<T> m = decode_fn(b);
    if (!m.has_value()) return std::nullopt;
    return std::any(std::move(*m));
  };
  c.sample = [sample_fn](Rng& rng, const net::WireSample& s) -> std::any {
    return sample_fn(rng, s);
  };
  c.equals = [eq_fn](const std::any& a, const std::any& b) {
    const T* x = net::payload<T>(a);
    const T* y = net::payload<T>(b);
    return x != nullptr && y != nullptr && eq_fn(*x, *y);
  };
  return c;
}

}  // namespace

void register_codecs() {
  static const bool once = [] {
    auto& reg = net::CodecRegistry::global();
    reg.add(make_codec<AggUploadMsg>("agg:upload", &decode_upload,
                                     &sample_upload, &eq_upload));
    reg.add(make_codec<AggResultMsg>("agg:result", &decode_result,
                                     &sample_result, &eq_result));
    reg.add(make_codec<AggResultMsg>("ml:result", &decode_result,
                                     &sample_result, &eq_result));
    reg.add(make_codec<JoinRequestMsg>("join", &decode_join, &sample_join,
                                       &eq_join));
    reg.add(make_codec<RejoinRequestMsg>("member:rejoin", &decode_rejoin,
                                         &sample_rejoin, &eq_rejoin));
    reg.add(make_codec<ModelPullMsg>("member:pull", &decode_pull,
                                     &sample_pull, &eq_pull));
    return true;
  }();
  (void)once;
}

}  // namespace p2pfl::core::wire
