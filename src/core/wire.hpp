// Binary wire codec for the core aggregation-layer messages.
//
// The typed structs that ride net::Envelope between the core actors —
// the subgroup-leader upload, the global-model result (two-layer "agg/*"
// and multilayer "ml/result" flavors), and the FedAvg-layer join request
// — with their canonical little-endian encodings. The charged WireSize
// helpers split each charge into the real framing plus the |w|-unit
// model payload the paper's cost analysis counts (and the declared
// modeled-CNN delta when model_wire_bytes overrides the real vector
// size).
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "net/codec.hpp"
#include "net/network.hpp"
#include "secagg/sac.hpp"

namespace p2pfl::core::wire {

/// Subgroup leader -> FedAvg leader: the subgroup's SAC average,
/// weighted by how many peers it aggregates ("agg/upload").
struct AggUploadMsg {
  std::uint64_t round = 0;
  SubgroupId group = 0;
  std::uint32_t weight = 0;  // peers aggregated in the subgroup
  secagg::Vector model;
};

/// Global model fanned back down ("agg/result" / "ml/result").
struct AggResultMsg {
  std::uint64_t round = 0;
  secagg::Vector model;
};

/// New subgroup representative asking the FedAvg leader to swap it in
/// for its subgroup's stale predecessor (kind "join").
struct JoinRequestMsg {
  PeerId candidate = kNoPeer;
  PeerId stale_representative = kNoPeer;
};

/// Evicted (or freshly wiped) peer asking its subgroup leader to be
/// configured back in (kind "member/rejoin"). `incarnation` is the
/// sender's current process incarnation, so a leader can log which life
/// of the peer is asking; the add itself is idempotent.
struct RejoinRequestMsg {
  PeerId peer = kNoPeer;
  SubgroupId subgroup = 0;
  std::uint64_t incarnation = 0;
};

/// Catch-up state transfer, peer -> subgroup leader: "send me the
/// latest global model you have" (kind "member/pull"). `last_round` is
/// the newest round the requester already holds (0 = nothing).
struct ModelPullMsg {
  PeerId peer = kNoPeer;
  std::uint64_t last_round = 0;
};

Bytes encode(const AggUploadMsg& m);
Bytes encode(const AggResultMsg& m);
Bytes encode(const JoinRequestMsg& m);
Bytes encode(const RejoinRequestMsg& m);
Bytes encode(const ModelPullMsg& m);

std::optional<AggUploadMsg> decode_upload(const Bytes& b);
std::optional<AggResultMsg> decode_result(const Bytes& b);
std::optional<JoinRequestMsg> decode_join(const Bytes& b);
std::optional<RejoinRequestMsg> decode_rejoin(const Bytes& b);
std::optional<ModelPullMsg> decode_pull(const Bytes& b);

/// Framing: upload = round + group + weight + element count; result =
/// round + element count; join = candidate + stale representative.
/// There is no push reply: a leader answers a member/pull by installing
/// its subgroup snapshot on the puller (Raft InstallSnapshot carrying
/// the model as the snapshot's application blob).
inline constexpr std::uint64_t kUploadHeader = 20;
inline constexpr std::uint64_t kResultHeader = 12;
inline constexpr std::uint64_t kJoinWire = 8;
inline constexpr std::uint64_t kRejoinWire = 16;
inline constexpr std::uint64_t kPullWire = 12;

/// Charged size of one model upload / result accounted as `payload`
/// model bytes while actually carrying `dim` floats.
net::WireSize upload_wire(std::uint64_t payload, std::size_t dim);
net::WireSize result_wire(std::uint64_t payload, std::size_t dim);

/// Register the core codecs ("agg:upload", "agg:result", "ml:result",
/// "join", "member:rejoin", "member:pull"). Idempotent; called by the
/// core actor constructors.
void register_codecs();

}  // namespace p2pfl::core::wire
