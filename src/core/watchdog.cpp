#include "core/watchdog.hpp"

#include <algorithm>

#include "analysis/cost_model.hpp"
#include "core/system.hpp"

namespace p2pfl::core {

RoundWatchdog::RoundWatchdog(sim::Simulator& sim, net::Network& net,
                             const Topology& topology, WatchdogConfig cfg)
    : sim_(sim),
      net_(net),
      cfg_(std::move(cfg)),
      series_(cfg_.series_capacity),
      engine_(cfg_.rules) {
  // Pre-create the slo.* counters so metric dumps have the same shape
  // whether or not any rule ever breached.
  engine_.register_metrics(sim_.obs());
  if (cfg_.model_payload_bytes > 0) {
    const std::vector<std::size_t> sizes = topology.sizes();
    const std::size_t n =
        *std::max_element(sizes.begin(), sizes.end());
    const std::size_t k =
        cfg_.dropout_tolerance < n ? n - cfg_.dropout_tolerance : 1;
    expected_payload_bytes_ =
        analysis::two_layer_ft_cost(sizes, n, k) *
        static_cast<double>(cfg_.model_payload_bytes);
  }
}

RoundWatchdog::Baseline RoundWatchdog::snapshot() const {
  const obs::MetricsRegistry& m = sim_.obs().metrics;
  Baseline b;
  b.wire_bytes = net_.stats().sent.bytes;
  b.payload_bytes = net_.stats().sent.payload;
  b.retries = m.counter_value("sac.share_retries") +
              m.counter_value("sac.share_resends") +
              m.counter_value("agg.upload_retries");
  for (const auto& [reason, n] : net_.stats().dropped_by_reason) {
    b.drops += n;
  }
  b.aborts = m.counter_value("agg.rounds_aborted") +
             m.counter_value("agg.rounds_failed");
  b.crashes = m.counter_value("chaos.crash");
  b.restarts = m.counter_value("chaos.restart") +
               m.counter_value("chaos.amnesia_restart");
  b.evictions = m.counter_value("membership.evicted");
  b.rejoins = m.counter_value("membership.rejoined");
  b.strikes = m.counter_value("byzantine.strikes");
  return b;
}

void RoundWatchdog::round_started(std::uint64_t round) {
  if (open_) round_finished(open_round_);  // superseded, close uncommitted
  open_ = true;
  open_round_ = round;
  start_ = sim_.now();
  base_ = snapshot();
  committed_ = false;
  commit_time_ = 0;
  contributors_ = 0;
  groups_used_ = 0;
}

void RoundWatchdog::round_committed(std::uint64_t round,
                                    std::size_t contributors,
                                    std::size_t groups_used) {
  if (!open_ || open_round_ != round) return;
  committed_ = true;
  commit_time_ = sim_.now();
  contributors_ = contributors;
  groups_used_ = groups_used;
}

void RoundWatchdog::round_finished(std::uint64_t round, double loss,
                                   double accuracy) {
  if (!open_ || open_round_ != round) return;
  open_ = false;

  obs::RoundSample s;
  s.round = round;
  s.start = start_;
  s.committed = committed_;
  // Committed rounds measure commit latency; rounds that never produced
  // a global model are right-censored at the close of the observation
  // window (abort time, or the full round slot under manual drive) — a
  // crash window shows up as latency, not as a gap in the series.
  s.end = committed_ ? commit_time_ : sim_.now();
  s.latency_ms = to_ms(s.end - s.start);
  s.contributors = contributors_;
  s.groups_used = groups_used_;

  const obs::SpanRecorder& spans = sim_.obs().spans;
  if (committed_ && spans.enabled()) {
    obs::CriticalPath cp = obs::extract_critical_path(spans, round);
    if (cp.found) s.phases = std::move(cp.phase_totals);
  }

  const Baseline now = snapshot();
  s.wire_bytes = now.wire_bytes - base_.wire_bytes;
  s.payload_bytes = now.payload_bytes - base_.payload_bytes;
  s.expected_payload_bytes = expected_payload_bytes_;
  s.retries = now.retries - base_.retries;
  s.drops = now.drops - base_.drops;
  s.aborts = now.aborts - base_.aborts;
  s.crashes = now.crashes - base_.crashes;
  s.restarts = now.restarts - base_.restarts;
  s.evictions = now.evictions - base_.evictions;
  s.rejoins = now.rejoins - base_.rejoins;
  s.strikes = now.strikes - base_.strikes;
  s.loss = loss;
  s.accuracy = accuracy;

  const std::vector<obs::SloBreach> fired =
      engine_.evaluate(s, &sim_.obs());
  breaches_total_ += fired.size();
  if (cfg_.capture_alerts) {
    for (const obs::SloBreach& b : fired) {
      if (alerts_.size() >= cfg_.max_alerts) break;
      alerts_.push_back(obs::make_slo_alert(spans, b));
    }
  }
  series_.append(std::move(s));
  if (on_sample) on_sample(series_.back(), fired);
}

void RoundWatchdog::attach(P2pFlSystem& sys) {
  auto prev_started = sys.on_round_started;
  sys.on_round_started = [this, prev_started](std::uint64_t r) {
    if (prev_started) prev_started(r);
    round_started(r);
  };
  auto prev_complete = sys.on_round_complete;
  P2pFlSystem* sysp = &sys;
  sys.on_round_complete = [this, prev_complete, sysp](
                              std::uint64_t r, const secagg::Vector& g,
                              std::size_t groups_used) {
    if (prev_complete) prev_complete(r, g, groups_used);
    round_committed(r, sysp->aggregator().last_contributors().size(),
                    groups_used);
    round_finished(r);
  };
  auto prev_aborted = sys.on_round_aborted;
  sys.on_round_aborted = [this, prev_aborted](std::uint64_t r) {
    if (prev_aborted) prev_aborted(r);
    round_finished(r);
  };
}

}  // namespace p2pfl::core
