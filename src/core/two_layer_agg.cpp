#include "core/two_layer_agg.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/log.hpp"
#include "fl/fedavg.hpp"
#include "secagg/wire.hpp"

namespace p2pfl::core {

namespace {
std::string sac_channel(SubgroupId g) { return "sac/sg" + std::to_string(g); }
}  // namespace

TwoLayerAggregator::TwoLayerAggregator(
    const Topology& topology, AggregationConfig cfg, net::Network& net,
    std::function<net::PeerHost&(PeerId)> host_of)
    : topology_(topology),
      cfg_(cfg),
      net_(net),
      byz_rng_(net.rng().fork(0x62797a'6c696521ULL /*"byzlie!"*/)),
      collect_timer_(
          net.transport(),
          [this] {
            if (fed_ && !fed_->done) {
              auto it = peers_.find(leadership_.fedavg_leader);
              if (it != peers_.end()) fed_maybe_aggregate(it->second, true);
            }
          },
          "agg.collect_timeout") {
  P2PFL_CHECK(cfg_.fraction_p > 0.0 && cfg_.fraction_p <= 1.0);
  wire::register_codecs();
  secagg::SacActorOptions sac_opts;
  sac_opts.k = 0;  // per-round thresholds are passed to begin_round
  sac_opts.split = cfg_.split;
  sac_opts.broadcast_subtotals = false;
  sac_opts.wire_bytes_per_share = cfg_.model_wire_bytes;
  sac_opts.share_timeout = cfg_.sac_share_timeout;
  sac_opts.subtotal_timeout = cfg_.sac_subtotal_timeout;
  sac_opts.share_retry_limit = cfg_.sac_share_retry_limit;
  sac_opts.detect_inconsistent_shares = cfg_.detect_byzantine;
  sac_opts.byzantine = cfg_.byzantine;

  for (PeerId id : topology_.all_peers()) {
    net::PeerHost& host = host_of(id);
    PeerState st;
    st.id = id;
    st.group = topology_.subgroup_of(id);
    st.sac = std::make_unique<secagg::SacPeer>(
        id, sac_channel(st.group), sac_opts, net_, host);
    host.route("agg/upload", [this, id](const net::Envelope& env) {
      const auto* msg = net::payload<UploadMsg>(env.body);
      auto it = peers_.find(id);
      if (msg != nullptr && it != peers_.end()) {
        handle_upload(it->second, *msg);
      }
    });
    host.route("agg/result", [this, id](const net::Envelope& env) {
      const auto* msg = net::payload<ResultMsg>(env.body);
      auto it = peers_.find(id);
      if (msg != nullptr && it != peers_.end()) {
        handle_result(it->second, *msg);
      }
    });
    auto [it, inserted] = peers_.emplace(id, std::move(st));
    P2PFL_CHECK(inserted);
    PeerState* ps = &it->second;
    ps->upload_timer = std::make_unique<net::Timer>(
        net_.transport(), [this, ps] { retry_upload(*ps); },
        "agg.upload_retry");
    ps->sac->on_complete = [this, ps](RoundId round,
                                      const secagg::Vector& avg) {
      const std::size_t g = ps->group;
      const std::size_t size =
          g < round_groups_.size() ? round_groups_[g].size() : 0;
      sac_complete(*ps, round, avg, size);
    };
    ps->sac->on_byzantine = [this, ps](RoundId round,
                                       const std::vector<std::size_t>& pos) {
      // Positions are into the round's SAC group for this subgroup.
      const std::size_t g = ps->group;
      if (g >= round_groups_.size()) return;
      const std::vector<PeerId>& group = round_groups_[g];
      for (std::size_t s : pos) {
        if (s < group.size()) mark_suspect(round, group[s], "shares");
      }
    };
  }
}

TwoLayerAggregator::~TwoLayerAggregator() = default;

std::uint64_t TwoLayerAggregator::model_wire(std::size_t dim) const {
  return cfg_.model_wire_bytes > 0
             ? cfg_.model_wire_bytes
             : 4 * static_cast<std::uint64_t>(dim);
}

const robust::AttackSpec* TwoLayerAggregator::attack_of(PeerId id) const {
  return cfg_.byzantine == nullptr ? nullptr : cfg_.byzantine->spec(id);
}

void TwoLayerAggregator::mark_suspect(RoundId round, PeerId peer,
                                      const char* how) {
  if (!suspects_.insert(peer).second) return;
  obs::Observability& o = net_.obs();
  o.metrics.counter("byzantine.suspects_marked").add(1);
  if (o.trace.category_enabled("chaos")) {
    o.trace.instant("chaos", "byzantine.suspect_marked", peer,
                    {{"round", round}, {"how", how}});
  }
  if (on_suspect) on_suspect(round, peer);
}

void TwoLayerAggregator::begin_round(RoundId round,
                                     const RoundLeadership& leadership,
                                     const ModelProvider& model_of) {
  P2PFL_CHECK(leadership.subgroup_leaders.size() ==
              topology_.subgroup_count());
  P2PFL_CHECK(leadership.fedavg_leader != kNoPeer);
  abort_round();
  round_ = round;
  leadership_ = leadership;

  // Determine each subgroup's live SAC group for this round.
  round_groups_.assign(topology_.subgroup_count(), {});
  std::size_t live_groups = 0;
  for (SubgroupId g = 0; g < topology_.subgroup_count(); ++g) {
    for (PeerId id : topology_.group(g)) {
      // Detection suspects sit out exactly like crashed peers: their
      // shares are no longer accepted into any subtotal, and the SAC
      // threshold clamps to the smaller group below — "excluded from
      // the reconstruction threshold".
      if (!net_.crashed(id) && suspects_.count(id) == 0) {
        round_groups_[g].push_back(id);
      }
    }
    // A parked subgroup (no electable leader, kNoPeer) contributes
    // nothing this round and must not count toward the FedAvg quorum.
    const PeerId lead = leadership.subgroup_leaders[g];
    if (!round_groups_[g].empty() && lead != kNoPeer &&
        !net_.crashed(lead) && suspects_.count(lead) == 0) {
      ++live_groups;
    }
  }

  for (auto& [id, p] : peers_) {
    p.is_subgroup_leader =
        leadership.subgroup_leaders[p.group] == id && !net_.crashed(id);
    p.is_fed_leader = leadership.fedavg_leader == id && !net_.crashed(id);
  }

  // FedAvg-leader collection state (§VI-A3: wait for ceil(p * m)).
  auto fed_it = peers_.find(leadership.fedavg_leader);
  P2PFL_CHECK(fed_it != peers_.end());
  fed_ = FedState{};
  fed_->round = round;
  fed_->expected_groups = live_groups;
  fed_->quorum = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(
             cfg_.fraction_p * static_cast<double>(live_groups))));
  collect_timer_.arm(cfg_.collect_timeout);

  obs::Observability& o = net_.obs();
  o.metrics.counter("agg.rounds_started").add(1);
  round_start_ = net_.now();
  if (o.trace.category_enabled("agg")) {
    o.trace.instant("agg", "agg.round_begin", leadership.fedavg_leader,
                    {{"round", round},
                     {"live_groups", live_groups},
                     {"quorum", fed_->quorum}});
  }
  if (o.spans.enabled()) {
    // Root of the round's causal DAG, plus the FedAvg-leader collect
    // window that the round's commit (or abort) eventually closes.
    fed_->round_span = o.spans.open(obs::SpanKind::kRound, "agg/round",
                                    leadership.fedavg_leader, round);
    fed_->collect_span =
        o.spans.open(obs::SpanKind::kFedCollect, "agg/collect",
                     leadership.fedavg_leader, round, fed_->round_span);
  }
  // SAC kickoff runs under the round span so share phases chain to it.
  obs::SpanStackScope round_scope(o.spans, fed_->round_span);

  // Kick off SAC in every live subgroup.
  for (SubgroupId g = 0; g < topology_.subgroup_count(); ++g) {
    const auto& group = round_groups_[g];
    if (group.empty()) continue;
    const PeerId leader = leadership.subgroup_leaders[g];
    if (leader == kNoPeer) continue;  // parked: skipped until repaired
    const auto pos = std::find(group.begin(), group.end(), leader);
    if (pos == group.end()) continue;  // leader crashed: Raft's problem
    const std::size_t leader_pos =
        static_cast<std::size_t>(pos - group.begin());
    // The SAC threshold is fixed by the full-strength topology (k = n -
    // tolerance); a subgroup that cannot field that many live members
    // runs degraded, clamped to its live size, rather than sitting the
    // round out.
    const std::size_t full = topology_.group(g).size();
    const std::size_t nominal_k = full > cfg_.sac_dropout_tolerance
                                      ? full - cfg_.sac_dropout_tolerance
                                      : 1;
    std::size_t k = nominal_k;
    if (group.size() < nominal_k) {
      k = std::max<std::size_t>(1, group.size());
      o.metrics.counter("subgroup.degraded").add(1);
      if (o.trace.category_enabled("agg")) {
        o.trace.instant("agg", "subgroup.degraded", leader,
                        {{"round", round},
                         {"group", g},
                         {"live", group.size()},
                         {"nominal_k", nominal_k},
                         {"effective_k", k}});
      }
    }
    for (PeerId id : group) {
      secagg::Vector model = model_of(id);
      const robust::AttackSpec* atk = attack_of(id);
      if (atk != nullptr) {
        // Model poisoning happens at the source: the poisoned update
        // enters SAC like any honest one and is invisible under the
        // masking — only the FedAvg-layer robust rule can blunt it.
        switch (atk->kind) {
          case robust::AttackKind::kSignFlip:
          case robust::AttackKind::kScaledUpdate:
          case robust::AttackKind::kRandomNoise:
          case robust::AttackKind::kConstantDrift:
            robust::poison(model, *atk, byz_rng_);
            o.metrics.counter("byzantine.models_poisoned").add(1);
            break;
          default:
            break;  // protocol-level attacks inject elsewhere
        }
      }
      peers_.at(id).sac->begin_round(round, std::move(model), group,
                                     leader_pos, k);
    }
  }
}

void TwoLayerAggregator::abort_round() {
  obs::SpanRecorder& sr = net_.obs().spans;
  for (auto& [id, p] : peers_) {
    p.sac->halt();
    p.pending_upload.reset();
    if (p.upload_timer) p.upload_timer->cancel();
    sr.close_aborted(p.upload_span);
    p.upload_span = obs::kNoSpan;
  }
  if (fed_ && !fed_->done) {
    sr.close_aborted(fed_->collect_span);
    sr.close_aborted(fed_->round_span);
    // The round was still undecided: superseded by a newer one or torn
    // down by the system (e.g. the FedAvg layer lost its leader under a
    // partition).
    obs::Observability& o = net_.obs();
    o.metrics.counter("agg.rounds_aborted").add(1);
    if (o.trace.category_enabled("agg")) {
      o.trace.instant("agg", "agg.round_abort", leadership_.fedavg_leader,
                      {{"round", fed_->round},
                       {"uploads", fed_->uploads.size()}});
    }
    if (on_round_aborted) on_round_aborted(fed_->round);
  }
  fed_.reset();
  collect_timer_.cancel();
}

void TwoLayerAggregator::sac_complete(PeerState& p, RoundId round,
                                      const secagg::Vector& avg,
                                      std::size_t group_size) {
  if (round != round_ || !p.is_subgroup_leader) return;
  UploadMsg msg;
  msg.round = round;
  msg.group = p.group;
  msg.weight = static_cast<std::uint32_t>(group_size);
  msg.model = avg;
  const robust::AttackSpec* atk = attack_of(p.id);
  if (atk != nullptr && atk->kind == robust::AttackKind::kSubtotalLie) {
    // A lying subgroup aggregator: the SAC round below it was honest,
    // but the subtotal it reports upward is not. Nothing inside the
    // subgroup can notice; only cross-subtotal redundancy at the FedAvg
    // layer (robust rule) defends.
    robust::poison(msg.model, *atk, byz_rng_);
    net_.obs().metrics.counter("byzantine.subtotal_lies").add(1);
  }
  if (p.is_fed_leader) {
    handle_upload(p, msg);  // local, no wire transfer
    return;
  }
  obs::SpanRecorder& sr = net_.obs().spans;
  if (sr.enabled()) {
    // Open at upload, closed when this round's result (or a supersession)
    // settles it; the upload link chains to it below.
    p.upload_span = sr.open(obs::SpanKind::kUpload, "agg/upload_wait", p.id,
                            round);
  }
  obs::SpanStackScope upload_scope(sr, p.upload_span);
  const net::WireSize size =
      wire::upload_wire(model_wire(avg.size()), avg.size());
  p.pending_upload = msg;
  p.upload_attempts = 0;
  net_.send(p.id, leadership_.fedavg_leader, "agg/upload", std::move(msg),
            size);
  p.upload_timer->arm(cfg_.upload_retry);
}

void TwoLayerAggregator::retry_upload(PeerState& p) {
  if (!p.pending_upload || p.pending_upload->round != round_) return;
  if (net_.crashed(p.id)) return;
  if (p.upload_attempts >= cfg_.upload_retry_limit) {
    obs::Observability& ob = net_.obs();
    ob.metrics.counter("agg.uploads_abandoned").add(1);
    ob.spans.close_aborted(p.upload_span);
    p.upload_span = obs::kNoSpan;
    p.pending_upload.reset();
    return;
  }
  ++p.upload_attempts;
  obs::Observability& o = net_.obs();
  o.metrics.counter("agg.upload_retries").add(1);
  if (o.trace.category_enabled("agg")) {
    o.trace.instant("agg", "agg.upload_retry", p.id,
                    {{"round", p.pending_upload->round},
                     {"attempt", p.upload_attempts}});
  }
  // Retry fires from a timer (empty span stack): parent the resend burst
  // explicitly onto the pending upload wait.
  obs::ScopedSpan retry_span(o.spans, obs::SpanKind::kRetry,
                             "agg/upload_retry", p.id,
                             p.pending_upload->round, p.upload_span);
  UploadMsg copy = *p.pending_upload;
  const robust::AttackSpec* atk = attack_of(p.id);
  if (atk != nullptr && atk->kind == robust::AttackKind::kEquivocate) {
    // Equivocation across retries: every resend tells a different story
    // than the original upload. The FedAvg leader's digest check
    // (handle_upload) catches the disagreement.
    robust::AttackSpec shifted = *atk;
    shifted.magnitude *= static_cast<double>(p.upload_attempts);
    robust::poison(copy.model, shifted, byz_rng_);
    o.metrics.counter("byzantine.equivocations_sent").add(1);
  }
  const net::WireSize size =
      wire::upload_wire(model_wire(copy.model.size()), copy.model.size());
  net_.send(p.id, leadership_.fedavg_leader, "agg/upload", std::move(copy),
            size);
  SimDuration delay = cfg_.upload_retry;
  for (std::size_t i = 0; i < p.upload_attempts && delay < 8 * cfg_.upload_retry;
       ++i) {
    delay *= 2;
  }
  p.upload_timer->arm(delay);
}

void TwoLayerAggregator::settle_upload(PeerState& p, RoundId round) {
  if (p.pending_upload && p.pending_upload->round == round) {
    p.pending_upload.reset();
    p.upload_timer->cancel();
  }
  if (p.upload_span != obs::kNoSpan) {
    // Closed by the link that delivered the round's result.
    obs::SpanRecorder& sr = net_.obs().spans;
    sr.close(p.upload_span, sr.current());
    p.upload_span = obs::kNoSpan;
  }
}

void TwoLayerAggregator::handle_upload(PeerState& p, const UploadMsg& msg) {
  if (!p.is_fed_leader || !fed_ || fed_->done || msg.round != fed_->round) {
    return;
  }
  obs::Observability& o = net_.obs();
  o.metrics.counter("agg.uploads_received").add(1);
  if (o.trace.category_enabled("agg")) {
    o.trace.instant("agg", "agg.upload", p.id,
                    {{"round", msg.round}, {"group", msg.group}});
  }
  if (cfg_.detect_byzantine) {
    // Upload-equivocation check: all sends of one round's subgroup
    // subtotal must agree bit-for-bit (honest retries are copies).
    const std::uint64_t digest = secagg::wire::share_digest(msg.model);
    auto [it, first] = fed_->upload_digest.emplace(msg.group, digest);
    if (!first && it->second != digest) {
      o.metrics.counter("byzantine.upload_equivocations").add(1);
      const PeerId uploader =
          msg.group < leadership_.subgroup_leaders.size()
              ? leadership_.subgroup_leaders[msg.group]
              : kNoPeer;
      if (uploader != kNoPeer) {
        mark_suspect(msg.round, uploader, "upload_equivocation");
      }
      return;  // keep the first story, discard the conflicting one
    }
  }
  fed_->uploads.emplace(msg.group, msg);
  fed_maybe_aggregate(p, /*timed_out=*/false);
}

void TwoLayerAggregator::fed_maybe_aggregate(PeerState& p, bool timed_out) {
  if (!fed_ || fed_->done) return;
  if (net_.crashed(p.id)) return;  // a dead leader aggregates nothing
  if (!timed_out && fed_->uploads.size() < fed_->quorum) return;
  obs::Observability& o = net_.obs();
  if (fed_->uploads.empty()) {
    fed_->done = true;
    collect_timer_.cancel();
    P2PFL_WARN() << "aggregation round " << fed_->round
                 << " produced no subgroup models";
    o.metrics.counter("agg.rounds_failed").add(1);
    o.spans.close_aborted(fed_->collect_span);
    o.spans.close_aborted(fed_->round_span);
    if (o.trace.category_enabled("agg")) {
      o.trace.instant("agg", "agg.round_failed", p.id,
                      {{"round", fed_->round}});
    }
    if (on_round_failed) on_round_failed(fed_->round);
    return;
  }
  fed_->done = true;
  collect_timer_.cancel();
  // Close the collect window, crediting the link whose delivery reached
  // quorum (timeout commits have no closer and attribute the wait to the
  // collect window itself); the merge span it causes closes the round.
  obs::SpanId merge_span = obs::kNoSpan;
  if (o.spans.enabled()) {
    obs::SpanId closer = o.spans.current();
    if (closer == fed_->collect_span) closer = obs::kNoSpan;
    o.spans.close(fed_->collect_span, closer);
    merge_span = o.spans.open(
        obs::SpanKind::kFedMerge, "agg/merge", p.id, fed_->round,
        closer != obs::kNoSpan ? closer : fed_->collect_span);
  }
  obs::SpanStackScope merge_scope(o.spans, merge_span);
  o.metrics.counter("agg.rounds_completed").add(1);
  const double latency_ms =
      static_cast<double>(net_.now() - round_start_) /
      static_cast<double>(kMillisecond);
  o.metrics
      .histogram("agg.round_latency_ms",
                 obs::Histogram::exponential_bounds(1.0, 2.0, 16))
      .record(latency_ms);
  if (o.trace.category_enabled("agg")) {
    o.trace.instant("agg", "agg.merge", p.id,
                    {{"round", fed_->round},
                     {"groups_used", fed_->uploads.size()},
                     {"rule", robust::rule_name(cfg_.robust.rule)},
                     {"latency_ms", latency_ms}});
  }

  // Alg. 3 line 10: FedAvg weighted by subgroup peer counts.
  std::vector<std::vector<float>> models;
  std::vector<double> weights;
  last_contributors_.clear();
  for (const auto& [g, up] : fed_->uploads) {
    models.push_back(up.model);
    weights.push_back(static_cast<double>(up.weight));
    last_contributors_.insert(last_contributors_.end(),
                              round_groups_[g].begin(),
                              round_groups_[g].end());
  }
  // robust::aggregate(kMean) delegates to fl::federated_average, so the
  // default configuration is bit-exact with the pre-robust behaviour.
  const secagg::Vector global =
      robust::aggregate(models, weights, cfg_.robust);
  if (on_global_model) {
    on_global_model(fed_->round, global, fed_->uploads.size());
  }

  // Return the global model to the other subgroup leaders.
  const net::WireSize size =
      wire::result_wire(model_wire(global.size()), global.size());
  for (SubgroupId g = 0; g < topology_.subgroup_count(); ++g) {
    const PeerId leader = leadership_.subgroup_leaders[g];
    if (leader == kNoPeer || leader == p.id || net_.crashed(leader)) continue;
    if (round_groups_[g].empty()) continue;
    ResultMsg msg{fed_->round, global};
    net_.send(p.id, leader, "agg/result", std::move(msg), size);
  }
  p.result_round = fed_->round;
  distribute(p, fed_->round, global);
  if (o.spans.enabled()) {
    o.spans.close(merge_span);
    o.spans.close(fed_->round_span, merge_span);
  }
}

void TwoLayerAggregator::handle_result(PeerState& p, const ResultMsg& msg) {
  if (msg.round != round_) return;
  if (p.result_round == msg.round) return;  // duplicate delivery
  p.result_round = msg.round;
  // The round is decided: any still-pending upload can stop retrying
  // (the FedAvg leader either used it or closed the round without it).
  settle_upload(p, msg.round);
  if (p.is_subgroup_leader) {
    // From the FedAvg leader: relay into the subgroup.
    distribute(p, msg.round, msg.model);
  } else if (on_model_received) {
    // From the subgroup leader: final hop.
    on_model_received(msg.round, p.id, msg.model);
  }
}

void TwoLayerAggregator::distribute(PeerState& leader, RoundId round,
                                    const secagg::Vector& global) {
  // Fan the global model out inside the subgroup, then deliver locally.
  const net::WireSize size =
      wire::result_wire(model_wire(global.size()), global.size());
  for (PeerId id : round_groups_[leader.group]) {
    if (id == leader.id) continue;
    ResultMsg msg{round, global};
    net_.send(leader.id, id, "agg/result", std::move(msg), size);
  }
  if (on_model_received) on_model_received(round, leader.id, global);
}

}  // namespace p2pfl::core
