// Two-layer Raft backend (§V of the paper).
//
// Every peer runs a Raft instance for its SAC-layer subgroup. The
// subgroup leaders additionally run a Raft instance on the shared
// FedAvg-layer channel. The glue implemented here is exactly the paper's
// recovery machinery:
//
//  * Post-leader-election callback (§V-A1): when a peer wins its
//    subgroup election it looks up the FedAvg-layer configuration — which
//    the previous leader had periodically committed into the subgroup
//    log — spins up a passive FedAvg-layer Raft instance, and sends join
//    requests (every `fedavg_presence_poll`, §V-B1) until the FedAvg
//    leader has removed the subgroup's stale representative and added it
//    via Raft single-server membership changes (§VII-D).
//  * FedAvg-layer configuration commits: the subgroup leader commits the
//    current FedAvg member list to its subgroup's replicated state
//    machine on a timer, so any future leader knows whom to contact.
//  * The four failure cases of §V (SAC leader/follower, FedAvg
//    leader/follower) need no special-casing beyond the above: a FedAvg
//    follower is a subgroup leader, and a FedAvg leader additionally
//    triggers a FedAvg-layer election.
//
// The system exposes crash/restart injection per peer and observation
// hooks timestamped by the simulator — these drive Figs. 10-12.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/topology.hpp"
#include "core/wire.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "obs/span.hpp"
#include "raft/node.hpp"
#include "raft/storage.hpp"
#include "net/transport.hpp"

namespace p2pfl::core {

struct TwoLayerRaftOptions {
  raft::RaftOptions raft;  // used for both layers
  /// §V-B1: interval of the joiner's FedAvg-presence poll / join retry.
  SimDuration fedavg_presence_poll = 100 * kMillisecond;
  /// Interval at which a subgroup leader commits the FedAvg-layer
  /// configuration into its subgroup log.
  SimDuration config_commit_interval = 200 * kMillisecond;
  /// Snapshot the config logs after this many applied entries (they grow
  /// forever otherwise — one config commit every interval). 0 disables.
  std::size_t log_compaction_threshold = 64;

  // --- self-healing membership -------------------------------------------
  /// Master switch for the membership supervisor: leaders suspect and
  /// evict silent members; evicted (or wiped) peers run the rejoin
  /// handshake to be configured back in.
  bool self_healing = true;
  /// A member whose AppendEntries/InstallSnapshot replies have been
  /// silent for longer than this is suspected and proposed for removal.
  /// Must be well above the election timeout, or a transient hiccup
  /// triggers eviction instead of a retry.
  SimDuration suspicion_grace = 1 * kSecond;
  /// Cadence of the leader-side failure-detector tick.
  SimDuration membership_poll = 250 * kMillisecond;
  /// Retry interval of an evicted peer's rejoin handshake.
  SimDuration rejoin_retry = 200 * kMillisecond;

  // --- crash durability ---------------------------------------------------
  /// Directory for per-peer write-ahead logs (created if missing). When
  /// set, every Raft instance persists term/vote/log/snapshot through a
  /// raft::WalStorage, restart_peer() models a full process restart —
  /// the in-memory instances are destroyed and rebuilt from disk — and
  /// an amnesia restart is exactly "delete the WAL". Empty = in-memory
  /// only (the pre-durability behavior).
  std::string storage_dir;
};

/// Point-in-time membership health of one subgroup (see health()).
struct SubgroupHealth {
  SubgroupId subgroup = 0;
  PeerId leader = kNoPeer;        // live leader, kNoPeer if none
  std::vector<PeerId> config;     // current Raft configuration
  std::vector<PeerId> live;       // topology members currently up
  std::vector<PeerId> suspected;  // leader's standing suspicions
  std::vector<PeerId> evicted;    // topology members outside config
  std::vector<PeerId> banned;     // denounced (Byzantine) members
  std::size_t nominal_k = 0;      // full-strength SAC threshold
  std::size_t effective_k = 0;    // threshold after live clamping
  bool degraded = false;          // live members < nominal_k
  bool parked = false;  // leaderless and live members below config quorum
};

struct HealthReport {
  std::vector<SubgroupHealth> subgroups;
  PeerId fedavg_leader = kNoPeer;
  std::vector<PeerId> fedavg_members;
};

class TwoLayerRaftSystem {
 public:
  TwoLayerRaftSystem(Topology topology, TwoLayerRaftOptions opts,
                     net::Network& net);
  ~TwoLayerRaftSystem();

  TwoLayerRaftSystem(const TwoLayerRaftSystem&) = delete;
  TwoLayerRaftSystem& operator=(const TwoLayerRaftSystem&) = delete;

  /// Start every peer (all followers; elections begin on timeouts).
  void start_all();

  // --- fault injection ---------------------------------------------------
  void crash_peer(PeerId peer);
  void restart_peer(PeerId peer);
  /// Restart with persistent Raft state wiped (term, vote, log, FedAvg
  /// instance). The blank node comes back with an empty configuration —
  /// it can neither campaign nor vote, so no split-brain is possible —
  /// and runs the rejoin handshake until its subgroup leader configures
  /// it back in and replication (or a snapshot install) catches it up.
  void restart_peer_amnesia(PeerId peer);
  bool peer_crashed(PeerId peer) const;

  // --- Byzantine denunciation --------------------------------------------
  /// Ban a peer attributed as Byzantine by detection: its layers evict it
  /// through the regular single-server membership path, every leader
  /// refuses its join/rejoin handshakes from now on, and — if it
  /// currently leads its subgroup — leadership is transferred to an
  /// honest member first (modelling honest followers refusing a
  /// denounced leader's authority). Idempotent.
  void denounce(PeerId peer);
  /// Lift a ban (the peer may rejoin through the normal handshake).
  void forgive(PeerId peer);
  bool is_banned(PeerId peer) const { return banned_.count(peer) > 0; }
  const std::set<PeerId>& banned() const { return banned_; }

  // --- state-transfer catch-up hooks (set before start_all) ---------------
  /// Application state folded into every subgroup snapshot next to the
  /// FedAvg-layer configuration: save serializes the peer's blob at
  /// compaction time, install applies a received blob (apply-if-newer is
  /// the application's business). Empty blob = nothing to carry.
  std::function<Bytes(PeerId)> app_snapshot_save;
  std::function<void(PeerId, const Bytes&)> app_snapshot_install;
  /// Eq. (4)/(5) payload units carried by one app blob (e.g. one model
  /// transfer). Unset = snapshot installs are pure framing.
  std::function<std::uint64_t(const Bytes&)> app_snapshot_payload;

  /// Leader-initiated state transfer riding the Raft InstallSnapshot
  /// path: `leader` compacts its subgroup log (folding the current app
  /// blob into the snapshot) and installs it on `to`. Returns false
  /// unless `leader` currently leads `to`'s subgroup.
  bool push_state_snapshot(PeerId leader, PeerId to);

  // --- observation --------------------------------------------------------
  const Topology& topology() const { return topology_; }

  /// Current live leader of a subgroup (kNoPeer if none).
  PeerId subgroup_leader(SubgroupId g) const;

  /// Current live FedAvg-layer leader (kNoPeer if none).
  PeerId fedavg_leader() const;

  /// FedAvg-layer membership as seen by its current leader (empty if no
  /// leader).
  std::vector<PeerId> fedavg_members() const;

  /// Steady state: one live leader per subgroup, a FedAvg leader exists,
  /// and the FedAvg membership is exactly the set of subgroup leaders.
  bool stabilized() const;

  /// Access to a peer's Raft instances (tests / integration).
  raft::RaftNode& subgroup_node(PeerId peer);
  raft::RaftNode* fedavg_node(PeerId peer);
  net::PeerHost& host(PeerId peer);

  /// FedAvg configuration a peer learned through its subgroup log (the
  /// designated bootstrap list until something newer commits).
  const std::vector<PeerId>& known_fedavg_config(PeerId peer) const;

  /// Membership health snapshot per subgroup plus the FedAvg layer.
  /// `sac_dropout_tolerance` reproduces the aggregation layer's
  /// k = n - tolerance policy so the report carries the SAC threshold
  /// each subgroup would run with.
  HealthReport health(std::size_t sac_dropout_tolerance = 0) const;

  // --- hooks (timestamp with net.now()) -----------------------
  std::function<void(SubgroupId, PeerId)> on_subgroup_leader;
  std::function<void(PeerId)> on_fedavg_leader;
  /// New subgroup leader completed its FedAvg-layer join (it appears in
  /// the configuration adopted by its own FedAvg instance).
  std::function<void(PeerId)> on_fedavg_joined;
  /// A leader's failure detector saw its suspicion confirmed: the peer
  /// is out of the adopted configuration. `fed_layer` distinguishes the
  /// FedAvg layer from the peer's subgroup cluster.
  std::function<void(PeerId, bool fed_layer)> on_peer_evicted;
  /// An evicted peer's rejoin handshake completed (it is back in its
  /// subgroup's configuration).
  std::function<void(PeerId)> on_peer_rejoined;

 private:
  using JoinRequest = wire::JoinRequestMsg;

  struct Peer {
    PeerId id = kNoPeer;
    SubgroupId subgroup = 0;
    net::PeerHost host;
    /// Declared before the nodes: a node writes through its storage until
    /// destruction, so the WAL must be torn down after it.
    std::unique_ptr<raft::WalStorage> sg_storage;
    std::unique_ptr<raft::WalStorage> fed_storage;
    std::unique_ptr<raft::RaftNode> sg_node;
    std::unique_ptr<raft::RaftNode> fed_node;
    std::vector<PeerId> known_fed_cfg;
    std::unique_ptr<net::Timer> cfg_commit_timer;
    std::unique_ptr<net::Timer> join_timer;
    bool announced_join = false;
    // Self-healing state.
    std::unique_ptr<net::Timer> supervise_timer;
    std::unique_ptr<net::Timer> rejoin_timer;
    /// While this peer leads a layer: member -> time suspicion began.
    std::map<PeerId, SimTime> sg_suspected;
    std::map<PeerId, SimTime> fed_suspected;
    bool rejoining = false;
    /// The active rejoin is a stale-config probe: our log still names us,
    /// so the handshake finishes on resumed leader contact rather than on
    /// a configuration change.
    bool stale_probe = false;
    std::size_t rejoin_attempts = 0;
    obs::SpanId rejoin_span = obs::kNoSpan;
    /// Stale-config probe clocks: latest proof the layer's leader still
    /// talks to us (or that no leader is owed, e.g. we are the leader).
    SimTime sg_contact_mark = -1;
    SimTime fed_contact_mark = -1;
    std::size_t probe_attempts = 0;
  };

  Peer& peer_ref(PeerId id);
  const Peer& peer_ref(PeerId id) const;
  void wire_subgroup_node(Peer& p);
  void ensure_fed_node(Peer& p);
  std::string sg_storage_prefix(const Peer& p) const;
  std::string fed_storage_prefix(const Peer& p) const;
  /// Create (or reuse) the peer's sg WAL and build + wire the subgroup
  /// node over it, with `config` as the bootstrap configuration; any
  /// durable state recovered from disk supersedes it.
  void make_sg_node(Peer& p, std::vector<PeerId> config,
                    raft::RaftOptions sg_opts);
  /// Build + wire the FedAvg-layer node (over its WAL when durable).
  void make_fed_node(Peer& p);
  /// Process-restart model: destroy both in-memory instances and rebuild
  /// them from their write-ahead logs.
  void rebuild_from_storage(Peer& p);
  void handle_subgroup_leadership(Peer& p);
  void handle_subgroup_stepdown(Peer& p);
  void commit_fed_config(Peer& p);
  void send_join_request(Peer& p);
  void handle_join_request(Peer& p, const JoinRequest& req);
  void check_join_complete(Peer& p);
  // Self-healing membership.
  void supervise(Peer& p);
  void supervise_layer(Peer& p, raft::RaftNode& node,
                       std::map<PeerId, SimTime>& suspected, bool fed_layer);
  void handle_subgroup_config(Peer& p, const std::vector<PeerId>& cfg);
  void probe_stale_membership(Peer& p);
  PeerId rejoin_target(const Peer& p, std::size_t attempt) const;
  void start_rejoin(Peer& p);
  void send_rejoin_request(Peer& p);
  void handle_rejoin_request(Peer& p, const wire::RejoinRequestMsg& req);
  void finish_rejoin(Peer& p);
  void abort_rejoin(Peer& p);

  Topology topology_;
  TwoLayerRaftOptions opts_;
  net::Network& net_;
  std::map<PeerId, std::unique_ptr<Peer>> peers_;
  /// Denounced peers: refused at every join/rejoin handshake and kept
  /// under standing eviction pressure by the layer supervisors.
  std::set<PeerId> banned_;
};

}  // namespace p2pfl::core
