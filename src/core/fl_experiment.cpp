#include "core/fl_experiment.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "fl/fedavg.hpp"
#include "fl/model.hpp"
#include "fl/optimizer.hpp"
#include "secagg/sac.hpp"

namespace p2pfl::core {

const char* distribution_name(DataDistribution d) {
  switch (d) {
    case DataDistribution::kIid: return "IID";
    case DataDistribution::kNonIid5: return "Non-IID(5%)";
    case DataDistribution::kNonIid0: return "Non-IID(0%)";
  }
  return "?";
}

namespace {

fl::Model build_model(const FlExperimentConfig& cfg) {
  const std::size_t inputs =
      cfg.data.channels * cfg.data.height * cfg.data.width;
  switch (cfg.model) {
    case ModelKind::kMlp:
      return fl::Model::mlp(inputs, cfg.mlp_hidden, cfg.data.classes);
    case ModelKind::kPaperCnn:
      P2PFL_CHECK_MSG(cfg.data.height == cfg.data.width,
                      "paper CNN expects square input");
      return fl::Model::paper_cnn(cfg.data.channels, cfg.data.height);
  }
  P2PFL_CHECK(false);
  return fl::Model{};
}

fl::PeerIndices partition(const FlExperimentConfig& cfg,
                          const fl::Dataset& train, Rng& rng) {
  switch (cfg.distribution) {
    case DataDistribution::kIid:
      return fl::partition_iid(train, cfg.peers, rng);
    case DataDistribution::kNonIid5:
      return fl::partition_non_iid(train, cfg.peers, 0.05, rng);
    case DataDistribution::kNonIid0:
      return fl::partition_non_iid(train, cfg.peers, 0.0, rng);
  }
  P2PFL_CHECK(false);
  return {};
}

Topology make_topology(const FlExperimentConfig& cfg) {
  if (cfg.aggregation != AggregationKind::kTwoLayerSac) {
    return Topology::even(cfg.peers, 1);
  }
  if (cfg.subgroups > 0) return Topology::even(cfg.peers, cfg.subgroups);
  if (cfg.group_size > 0) {
    return Topology::by_group_size(cfg.peers, cfg.group_size);
  }
  return Topology::even(cfg.peers, 1);
}

}  // namespace

FlExperimentResult run_fl_experiment(const FlExperimentConfig& cfg,
                                     const RoundObserver& observer) {
  P2PFL_CHECK(cfg.peers >= 1 && cfg.rounds >= 1);
  P2PFL_CHECK(cfg.fraction_p > 0.0 && cfg.fraction_p <= 1.0);

  Rng root(cfg.seed);
  Rng data_rng = root.fork(1);
  Rng part_rng = root.fork(2);
  Rng init_rng = root.fork(3);
  Rng sac_rng = root.fork(4);
  Rng sched_rng = root.fork(5);
  Rng eval_rng = root.fork(6);
  Rng byz_rng = root.fork(7);

  const fl::TrainTest data = fl::make_synthetic(cfg.data, data_rng);
  const fl::PeerIndices parts = partition(cfg, data.train, part_rng);
  const Topology topo = make_topology(cfg);
  P2PFL_CHECK(topo.peer_count() == cfg.peers);

  // One shared initialization, as when all peers download w_0.
  fl::Model global_model = build_model(cfg);
  global_model.init(init_rng);
  std::vector<float> global = global_model.get_params();

  FlExperimentResult result;
  result.model_params = global.size();

  // Byzantine assignment: capture WHOLE subgroups first (peers in
  // topology order). SAC masks individual updates, so a poisoner spread
  // across honest subgroups is diluted into honest-majority subtotals;
  // the adversary worth defending against at the FedAvg layer owns its
  // subtotals outright.
  std::vector<char> byzantine(cfg.peers, 0);
  if (cfg.byzantine_fraction > 0.0 &&
      cfg.attack.kind != robust::AttackKind::kNone) {
    const auto want = static_cast<std::size_t>(
        cfg.byzantine_fraction * static_cast<double>(cfg.peers) + 0.5);
    std::size_t marked = 0;
    for (std::size_t g = 0; g < topo.subgroup_count() && marked < want;
         ++g) {
      for (PeerId id : topo.group(g)) {
        if (marked == want) break;
        byzantine[id] = 1;
        ++marked;
      }
    }
    result.byzantine_peers = marked;
  }
  // Model-poisoning kinds perturb the peer's update before SAC; every
  // other kind resolves to a lying aggregator here (the math path has
  // no share/retry wire to equivocate on — those are actor-path
  // attacks, exercised by the chaos engine + detection tests).
  const bool model_poisoning =
      cfg.attack.kind == robust::AttackKind::kSignFlip ||
      cfg.attack.kind == robust::AttackKind::kScaledUpdate ||
      cfg.attack.kind == robust::AttackKind::kRandomNoise ||
      cfg.attack.kind == robust::AttackKind::kConstantDrift;

  std::vector<std::unique_ptr<fl::PeerTrainer>> peers;
  peers.reserve(cfg.peers);
  for (std::size_t p = 0; p < cfg.peers; ++p) {
    fl::Model m = build_model(cfg);
    m.init(init_rng);  // immediately overwritten by set_weights
    peers.push_back(std::make_unique<fl::PeerTrainer>(
        std::move(m), std::make_unique<fl::Adam>(cfg.learning_rate),
        data.train, parts[p], root.fork(100 + p)));
  }

  const std::size_t m_groups = topo.subgroup_count();
  const std::size_t take =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cfg.fraction_p *
                                   static_cast<double>(m_groups)));

  for (std::size_t round = 1; round <= cfg.rounds; ++round) {
    // Local update on every peer.
    double train_loss = 0.0;
    for (std::size_t p = 0; p < cfg.peers; ++p) {
      peers[p]->set_weights(global);
      train_loss += peers[p]->train_round(cfg.train);
    }
    train_loss /= static_cast<double>(cfg.peers);

    // Slow-subgroup selection (Figs. 8-9): the FedAvg leader only waits
    // for `take` subgroups; which ones are slow rotates randomly.
    std::vector<std::size_t> group_order(m_groups);
    for (std::size_t g = 0; g < m_groups; ++g) group_order[g] = g;
    if (take < m_groups) sched_rng.shuffle(group_order);
    group_order.resize(take);

    // Subgroup SAC, then FedAvg across subgroup averages (Alg. 3).
    std::vector<std::vector<float>> group_avgs;
    std::vector<double> group_weights;
    if (cfg.aggregation == AggregationKind::kPlainFedAvg ||
        cfg.aggregation == AggregationKind::kGossipCenter) {
      // No SAC anywhere: weight directly by per-peer sample counts. For
      // the gossip baseline the averaging peer rotates each round
      // (BrainTorrent's dynamic center) — numerically identical, but the
      // center sees every raw model, which is the privacy gap the paper
      // closes.
      std::vector<std::vector<float>> models;
      std::vector<double> weights;
      for (std::size_t p = 0; p < cfg.peers; ++p) {
        models.push_back(peers[p]->weights());
        if (byzantine[p] && model_poisoning) {
          robust::poison(models.back(), cfg.attack, byz_rng);
        }
        weights.push_back(static_cast<double>(peers[p]->sample_count()));
      }
      global = robust::aggregate(models, weights, cfg.robust);
      group_order.clear();
    }
    for (std::size_t g : group_order) {
      const auto& members = topo.group(g);
      std::vector<secagg::Vector> models;
      models.reserve(members.size());
      const std::size_t n = members.size();
      double group_samples = 0.0;
      for (PeerId id : members) {
        group_samples += static_cast<double>(peers[id]->sample_count());
      }
      for (PeerId id : members) {
        secagg::Vector w = peers[id]->weights();
        if (byzantine[id] && model_poisoning) {
          robust::poison(w, cfg.attack, byz_rng);
        }
        if (cfg.weight_by_samples) {
          // Pre-scale by the (public) sample fraction; SAC's mean of the
          // scaled models times n is then the sample-weighted average.
          const double frac =
              static_cast<double>(peers[id]->sample_count()) /
              group_samples;
          for (float& x : w) {
            x = static_cast<float>(static_cast<double>(x) * frac);
          }
        }
        models.push_back(std::move(w));
      }
      auto finish_group = [&](secagg::Vector avg) {
        // A Byzantine subgroup aggregator (the first member runs SAC
        // collection here) lies about the subtotal it forwards. SAC's
        // masking means no subgroup member can audit the value — only
        // the FedAvg-layer robust rule can reject it.
        if (!model_poisoning && byzantine[members.front()] &&
            cfg.attack.kind != robust::AttackKind::kNone) {
          robust::poison(avg, cfg.attack, byz_rng);
        }
        if (cfg.weight_by_samples) {
          for (float& x : avg) {
            x = static_cast<float>(static_cast<double>(x) *
                                   static_cast<double>(n));
          }
          group_weights.push_back(group_samples);
        } else {
          group_weights.push_back(static_cast<double>(n));
        }
        group_avgs.push_back(std::move(avg));
      };

      const std::size_t k = cfg.sac_k == 0 ? n : std::min(cfg.sac_k, n);
      if (cfg.dropout_after_share_prob > 0.0 && n > 1) {
        std::vector<bool> crashed(n, false);
        for (std::size_t i = 0; i < n; ++i) {
          crashed[i] = sac_rng.chance(cfg.dropout_after_share_prob);
        }
        auto ft = secagg::fault_tolerant_sac_average(
            models, k, crashed, sac_rng, cfg.split);
        if (!ft.ok) {
          ++result.subgroup_quorum_failures;
          continue;  // below quorum: subgroup misses this round
        }
        finish_group(std::move(ft.average));
      } else {
        finish_group(secagg::sac_average(models, sac_rng, cfg.split));
      }
    }

    if (!group_avgs.empty()) {
      // kMean delegates to fl::federated_average, so the default config
      // is bit-exact with the pre-robust behaviour.
      global = robust::aggregate(group_avgs, group_weights, cfg.robust);
    }

    RoundRecord rec;
    rec.round = round;
    rec.train_loss = train_loss;
    if (round % cfg.eval_every == 0 || round == cfg.rounds) {
      global_model.set_params(global);
      const fl::EvalResult ev = fl::evaluate_model(
          global_model, data.test, eval_rng, cfg.eval_samples);
      rec.test_accuracy = ev.accuracy;
      rec.test_loss = ev.loss;
      result.final_accuracy = ev.accuracy;
      result.final_test_loss = ev.loss;
    }
    if (observer) observer(rec);
    result.records.push_back(std::move(rec));
  }
  result.final_weights = std::move(global);
  return result;
}

std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t window) {
  P2PFL_CHECK(window >= 1);
  std::vector<double> out(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    if (i >= window) acc -= xs[i - window];
    out[i] = acc / static_cast<double>(std::min(i + 1, window));
  }
  return out;
}

}  // namespace p2pfl::core
