// X-layer hierarchical aggregation (§VII-C, made executable).
//
// The paper analyzes generalizing the two-layer system to X layers with
// SAC at every level: the total peer count follows Eq. (6),
// N = sum_{k=1..X} n(n-1)^{k-1}, and the aggregation cost collapses to
// Eq. (10), C_total = (N-1)(n+2)|w|. This module builds that hierarchy
// and runs it as a real protocol over the simulated network, so Eq. (10)
// can be checked against counted bytes (see tests and
// bench/multilayer_cost).
//
// Topology (following the paper's §VII-C rules): the top group has n
// root peers; every member of a layer-x group (x < X) leads one
// layer-(x+1) group consisting of itself plus n-1 fresh peers; a peer
// never leads two layers below its own ("the follower in an x-th layer
// subgroup becomes a leader in the x+1-th layer, but cannot become a
// leader in the x+2-th layer, except that the leader of the topmost
// layer serves as the one of the second layer as well").
//
// Aggregation runs leaves-up: every group SACs the *subtree sums* of its
// members (a leaf peer's subtree sum is its own model; a leader's is
// n * the SAC average of the group it leads). The top leader divides the
// global sum by N — giving exactly the global mean even though subtree
// sizes differ by depth — and the result fans back down the tree with
// one transfer per non-root peer (the (N-1)|w| term of Eq. 7).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/wire.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "secagg/sac_actor.hpp"

namespace p2pfl::core {

struct MultilayerTopology {
  struct Group {
    std::size_t layer = 1;  // 1 = top
    PeerId leader = kNoPeer;
    std::vector<PeerId> members;  // leader first
    /// Index of the group the leader belongs to one layer up
    /// (-1 for the top group).
    int home_group_of_leader = -1;
  };

  std::size_t group_size = 0;  // n
  std::size_t layers = 0;      // X
  std::size_t peer_count = 0;  // N per Eq. (6)
  std::vector<Group> groups;
  /// Group a peer leads (index into groups), -1 if none.
  std::vector<int> leads;
  /// Group in which a peer is a non-leader member ("home"), -1 for none
  /// (fresh peers' home is the group they were introduced in).
  std::vector<int> home;

  /// Build the §VII-C hierarchy. n >= 2, layers >= 1.
  static MultilayerTopology build(std::size_t n, std::size_t layers);
};

struct MultilayerOptions {
  secagg::SplitOptions split;
  /// Wire size of one model/subtree-sum transfer; 0 = 4 bytes * dim.
  std::uint64_t model_wire_bytes = 0;
};

class MultilayerAggregator {
 public:
  using RoundId = secagg::RoundId;
  using ModelProvider = std::function<secagg::Vector(PeerId)>;

  MultilayerAggregator(const MultilayerTopology& topo,
                       MultilayerOptions opts, net::Network& net,
                       std::function<net::PeerHost&(PeerId)> host_of);

  /// Start one full hierarchical aggregation.
  void begin_round(RoundId round, const ModelProvider& model_of);

  /// Fired on the top leader with the global average.
  std::function<void(RoundId, const secagg::Vector&)> on_complete;
  /// Fired on every peer when the global average reaches it.
  std::function<void(RoundId, PeerId, const secagg::Vector&)>
      on_model_received;

 private:
  using ResultMsg = wire::AggResultMsg;

  struct GroupRuntime {
    /// One SAC actor per member, keyed by peer.
    std::map<PeerId, std::unique_ptr<secagg::SacPeer>> actors;
  };

  void value_ready(std::size_t group_idx, PeerId peer,
                   secagg::Vector value);
  void group_complete(std::size_t group_idx, const secagg::Vector& avg);
  void distribute(std::size_t group_idx, const secagg::Vector& global);
  void handle_result(PeerId self, const ResultMsg& msg);
  std::uint64_t wire(std::size_t dim) const;

  const MultilayerTopology& topo_;
  MultilayerOptions opts_;
  net::Network& net_;
  std::vector<GroupRuntime> runtimes_;
  RoundId round_ = 0;
};

}  // namespace p2pfl::core
