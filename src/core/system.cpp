#include "core/system.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "fl/optimizer.hpp"

namespace p2pfl::core {

P2pFlSystem::P2pFlSystem(Topology topology, SystemConfig cfg,
                         net::Network& net, const fl::Dataset& data,
                         const fl::Dataset& test,
                         const fl::PeerIndices& parts,
                         const std::function<fl::Model()>& model_builder)
    : topology_(std::move(topology)),
      cfg_(cfg),
      net_(net),
      test_(test),
      raft_(topology_, cfg_.raft, net),
      eval_model_(model_builder()),
      eval_rng_(Rng(cfg.seed).fork(0xe7a1)) {
  P2PFL_CHECK(parts.size() >= topology_.peer_count());

  Rng root(cfg_.seed);
  // Shared initialization: every peer starts from the same w_0.
  fl::Model init_model = model_builder();
  Rng init_rng = root.fork(1);
  init_model.init(init_rng);
  const std::vector<float> w0 = init_model.get_params();

  for (PeerId id : topology_.all_peers()) {
    PeerRuntime rt;
    fl::Model m = model_builder();
    m.set_params(w0);
    rt.trainer = std::make_unique<fl::PeerTrainer>(
        std::move(m), std::make_unique<fl::Adam>(cfg_.learning_rate), data,
        parts[id], root.fork(1000 + id));
    rt.current_weights = w0;
    rt.latest_global = w0;
    rt.driver = std::make_unique<sim::Timer>(
        net_.simulator(), [this, id] { drive_round(id); }, "fl.round_driver");
    rt.trainer_done = std::make_unique<sim::Timer>(
        net_.simulator(), [this, id] { begin_local_training(id); },
        "fl.trainer_done");
    peers_.emplace(id, std::move(rt));
  }

  aggregator_ = std::make_unique<TwoLayerAggregator>(
      topology_, cfg_.agg, net_,
      [this](PeerId id) -> net::PeerHost& { return raft_.host(id); });
  aggregator_->on_global_model = [this](std::uint64_t round,
                                        const secagg::Vector& global,
                                        std::size_t groups_used) {
    ++rounds_completed_;
    freshest_global_ = global;
    if (on_round_complete) on_round_complete(round, global, groups_used);
  };
  aggregator_->on_model_received =
      [this](std::uint64_t round, PeerId peer, const secagg::Vector& g) {
        model_received(round, peer, g);
      };
  aggregator_->on_round_failed = [this](std::uint64_t) {
    ++rounds_aborted_;
  };
  aggregator_->on_round_aborted = [this](std::uint64_t) {
    ++rounds_aborted_;
  };
}

void P2pFlSystem::start() {
  raft_.start_all();
  for (auto& [id, rt] : peers_) {
    rt.driver->arm_periodic(cfg_.round_interval);
  }
}

void P2pFlSystem::crash_peer(PeerId peer) {
  raft_.crash_peer(peer);
  PeerRuntime& rt = peers_.at(peer);
  rt.trainer_done->cancel();
  rt.training = false;
  net_.simulator().obs().spans.close_aborted(rt.train_span);
  rt.train_span = obs::kNoSpan;
  // The driver timer keeps ticking but drive_round() checks leadership
  // and crash state before acting.
}

void P2pFlSystem::restart_peer(PeerId peer) { raft_.restart_peer(peer); }

const std::vector<float>& P2pFlSystem::global_model_at(PeerId peer) const {
  return peers_.at(peer).latest_global;
}

fl::EvalResult P2pFlSystem::evaluate_global() {
  const std::vector<float>& w =
      freshest_global_.empty() ? peers_.begin()->second.latest_global
                               : freshest_global_;
  eval_model_.set_params(w);
  return fl::evaluate_model(eval_model_, test_, eval_rng_);
}

void P2pFlSystem::drive_round(PeerId self) {
  if (net_.crashed(self)) return;
  if (raft_.fedavg_leader() != self) return;

  // Snapshot current leadership from the Raft backend; skip the tick if
  // any live subgroup is still electing (Raft repairs, we retry next
  // interval — the paper's timeout-and-continue behaviour).
  RoundLeadership lead;
  lead.fedavg_leader = self;
  lead.subgroup_leaders.resize(topology_.subgroup_count(), kNoPeer);
  for (SubgroupId g = 0; g < topology_.subgroup_count(); ++g) {
    const PeerId l = raft_.subgroup_leader(g);
    bool any_alive = false;
    for (PeerId p : topology_.group(g)) {
      if (!net_.crashed(p)) any_alive = true;
    }
    if (any_alive && l == kNoPeer) {
      P2PFL_DEBUG() << "round driver: subgroup " << g
                    << " has no leader yet, postponing round";
      return;
    }
    lead.subgroup_leaders[g] = l == kNoPeer ? topology_.group(g).front() : l;
  }

  const std::uint64_t round =
      static_cast<std::uint64_t>(net_.simulator().now()) + 1;
  if (round <= last_round_started_) return;
  last_round_started_ = round;
  aggregator_->begin_round(round, lead, [this](PeerId id) {
    return peers_.at(id).current_weights;
  });
}

void P2pFlSystem::model_received(std::uint64_t round, PeerId peer,
                                 const secagg::Vector& global) {
  if (net_.crashed(peer)) return;
  PeerRuntime& rt = peers_.at(peer);
  rt.latest_global = global;
  rt.trainer->set_weights(global);
  if (!rt.training) {
    rt.training = true;
    obs::SpanRecorder& sr = net_.simulator().obs().spans;
    if (sr.enabled() && rt.train_span == obs::kNoSpan) {
      // Training is caused by the arrival of the round's global model
      // (current() is the delivering link span); it completes next round.
      rt.train_span =
          sr.open(obs::SpanKind::kLocalTrain, "fl/local_train", peer, round);
    }
    rt.trainer_done->arm(cfg_.train_duration);  // models compute time
  }
}

void P2pFlSystem::begin_local_training(PeerId peer) {
  PeerRuntime& rt = peers_.at(peer);
  rt.training = false;
  obs::SpanRecorder& sr0 = net_.simulator().obs().spans;
  if (net_.crashed(peer)) {
    sr0.close_aborted(rt.train_span);
    rt.train_span = obs::kNoSpan;
    return;
  }
  rt.trainer->train_round(cfg_.train);
  rt.current_weights = rt.trainer->weights();
  sr0.close(rt.train_span);
  rt.train_span = obs::kNoSpan;
}

}  // namespace p2pfl::core
