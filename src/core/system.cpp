#include "core/system.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"
#include "fl/checkpoint.hpp"
#include "fl/optimizer.hpp"

namespace p2pfl::core {

P2pFlSystem::P2pFlSystem(Topology topology, SystemConfig cfg,
                         net::Network& net, const fl::Dataset& data,
                         const fl::Dataset& test,
                         const fl::PeerIndices& parts,
                         const std::function<fl::Model()>& model_builder)
    : topology_(std::move(topology)),
      cfg_(cfg),
      net_(net),
      test_(test),
      raft_(topology_, cfg_.raft, net),
      eval_model_(model_builder()),
      eval_rng_(Rng(cfg.seed).fork(0xe7a1)) {
  P2PFL_CHECK(parts.size() >= topology_.peer_count());

  Rng root(cfg_.seed);
  // Shared initialization: every peer starts from the same w_0.
  fl::Model init_model = model_builder();
  Rng init_rng = root.fork(1);
  init_model.init(init_rng);
  w0_ = init_model.get_params();
  parked_.assign(topology_.subgroup_count(), 0);

  for (PeerId id : topology_.all_peers()) {
    PeerRuntime rt;
    fl::Model m = model_builder();
    m.set_params(w0_);
    rt.trainer = std::make_unique<fl::PeerTrainer>(
        std::move(m), std::make_unique<fl::Adam>(cfg_.learning_rate), data,
        parts[id], root.fork(1000 + id));
    rt.current_weights = w0_;
    rt.latest_global = w0_;
    rt.driver = std::make_unique<net::Timer>(
        net_.transport(), [this, id] { drive_round(id); }, "fl.round_driver");
    rt.trainer_done = std::make_unique<net::Timer>(
        net_.transport(), [this, id] { begin_local_training(id); },
        "fl.trainer_done");
    rt.catchup_timer = std::make_unique<net::Timer>(
        net_.transport(), [this, id] { send_model_pull(id); },
        "fl.catchup_retry");
    // State-transfer catch-up: a rejoined or fresh peer pulls the latest
    // global model from its subgroup leader instead of waiting a full
    // round out of date.
    net::PeerHost& host = raft_.host(id);
    host.route("member/pull", [this, id](const net::Envelope& env) {
      const auto* msg = net::payload<wire::ModelPullMsg>(env.body);
      if (msg != nullptr) handle_model_pull(id, *msg);
    });
    peers_.emplace(id, std::move(rt));
  }

  // Catch-up state transfer rides the Raft InstallSnapshot path: every
  // subgroup snapshot carries (round, checkpoint) of the saver's newest
  // global model next to the replicated FedAvg configuration, and a
  // member/pull answers with a snapshot push instead of a bespoke model
  // message. One mechanism serves amnesia recovery, slow-follower
  // compaction catch-up, and explicit pulls.
  raft_.app_snapshot_save = [this](PeerId id) -> Bytes {
    const PeerRuntime& rt = peers_.at(id);
    if (rt.last_global_round == 0) return {};
    ByteWriter w;
    w.u64(rt.last_global_round);
    w.blob(fl::encode_checkpoint(rt.latest_global));
    return w.take();
  };
  raft_.app_snapshot_install = [this](PeerId id, const Bytes& app) {
    if (net_.crashed(id)) return;
    ByteReader r(app);
    const std::uint64_t round = r.u64();
    const Bytes ckpt = r.blob();
    if (!r.complete()) return;
    PeerRuntime& rt = peers_.at(id);
    if (round <= rt.last_global_round) return;  // apply-if-newer
    auto weights = fl::decode_checkpoint(ckpt);
    if (!weights.has_value() || weights->size() != w0_.size()) return;
    rt.catchup_timer->cancel();
    rt.last_global_round = round;
    rt.latest_global = *weights;
    rt.current_weights = *weights;
    rt.trainer->set_weights(*weights);
    obs::Observability& o = net_.obs();
    o.metrics.counter("fl.catchup_applied").add(1);
    if (o.trace.category_enabled("agg")) {
      o.trace.instant("agg", "fl.catchup_applied", id, {{"round", round}});
    }
    // Train on the recovered model so this peer contributes to the next
    // round instead of uploading w0-grade weights.
    if (!rt.training) {
      rt.training = true;
      rt.trainer_done->arm(cfg_.train_duration);
    }
  };
  raft_.app_snapshot_payload = [this](const Bytes&) -> std::uint64_t {
    // One model transfer in the Eq. (4)/(5) accounting.
    return cfg_.agg.model_wire_bytes > 0
               ? cfg_.agg.model_wire_bytes
               : 4 * static_cast<std::uint64_t>(w0_.size());
  };

  aggregator_ = std::make_unique<TwoLayerAggregator>(
      topology_, cfg_.agg, net_,
      [this](PeerId id) -> net::PeerHost& { return raft_.host(id); });
  aggregator_->on_global_model = [this](std::uint64_t round,
                                        const secagg::Vector& global,
                                        std::size_t groups_used) {
    ++rounds_completed_;
    freshest_global_ = global;
    if (on_round_complete) on_round_complete(round, global, groups_used);
  };
  aggregator_->on_model_received =
      [this](std::uint64_t round, PeerId peer, const secagg::Vector& g) {
        model_received(round, peer, g);
      };
  aggregator_->on_round_failed = [this](std::uint64_t round) {
    ++rounds_aborted_;
    if (on_round_aborted) on_round_aborted(round);
  };
  aggregator_->on_round_aborted = [this](std::uint64_t round) {
    ++rounds_aborted_;
    if (on_round_aborted) on_round_aborted(round);
  };
  // Detection -> eviction escalation: each attribution is one strike.
  // Below the limit the suspect is forgiven (re-admitted next round — a
  // persistent adversary immediately re-offends and earns the next
  // strike); at the limit it is denounced into the self-healing
  // membership path, which evicts it and refuses its rejoin handshakes.
  aggregator_->on_suspect = [this](std::uint64_t round, PeerId peer) {
    const std::size_t strikes = ++strikes_[peer];
    obs::Observability& o = net_.obs();
    o.metrics.counter("byzantine.strikes").add(1);
    if (o.trace.category_enabled("agg")) {
      o.trace.instant("agg", "byzantine.strike", peer,
                      {{"round", round}, {"strikes", strikes}});
    }
    if (strikes >= cfg_.suspect_strike_limit) {
      raft_.denounce(peer);
    } else {
      aggregator_->clear_suspect(peer);
    }
  };
}

void P2pFlSystem::start() {
  raft_.start_all();
  for (auto& [id, rt] : peers_) {
    rt.driver->arm_periodic(cfg_.round_interval);
  }
}

void P2pFlSystem::crash_peer(PeerId peer) {
  raft_.crash_peer(peer);
  PeerRuntime& rt = peers_.at(peer);
  rt.trainer_done->cancel();
  rt.catchup_timer->cancel();
  rt.training = false;
  net_.obs().spans.close_aborted(rt.train_span);
  rt.train_span = obs::kNoSpan;
  // The driver timer keeps ticking but drive_round() checks leadership
  // and crash state before acting.
}

void P2pFlSystem::restart_peer(PeerId peer) {
  raft_.restart_peer(peer);
  // Rounds moved on while this peer was down; pull the newest global
  // model rather than rejoining a full round stale.
  peers_.at(peer).catchup_timer->arm(cfg_.catchup_retry);
}

void P2pFlSystem::restart_peer_amnesia(PeerId peer) {
  PeerRuntime& rt = peers_.at(peer);
  // Model state is wiped along with the Raft state: back to w0.
  rt.trainer->set_weights(w0_);
  rt.current_weights = w0_;
  rt.latest_global = w0_;
  rt.last_global_round = 0;
  rt.training = false;
  rt.trainer_done->cancel();
  raft_.restart_peer_amnesia(peer);
  rt.catchup_timer->arm(cfg_.catchup_retry);
}

const std::vector<float>& P2pFlSystem::global_model_at(PeerId peer) const {
  return peers_.at(peer).latest_global;
}

fl::EvalResult P2pFlSystem::evaluate_global() {
  const std::vector<float>& w =
      freshest_global_.empty() ? peers_.begin()->second.latest_global
                               : freshest_global_;
  eval_model_.set_params(w);
  return fl::evaluate_model(eval_model_, test_, eval_rng_);
}

void P2pFlSystem::drive_round(PeerId self) {
  if (net_.crashed(self)) return;
  if (raft_.fedavg_leader() != self) return;

  // Snapshot current leadership from the Raft backend; skip the tick if
  // any live subgroup is still electing (Raft repairs, we retry next
  // interval — the paper's timeout-and-continue behaviour). A subgroup
  // that structurally CANNOT elect (its live members are below the
  // quorum of its configuration) is parked out of the round instead, so
  // the FedAvg layer keeps making progress with the remaining groups;
  // it is un-parked automatically once repair gives it a leader again.
  obs::Observability& o = net_.obs();
  std::optional<HealthReport> health;
  RoundLeadership lead;
  lead.fedavg_leader = self;
  lead.subgroup_leaders.resize(topology_.subgroup_count(), kNoPeer);
  for (SubgroupId g = 0; g < topology_.subgroup_count(); ++g) {
    const PeerId l = raft_.subgroup_leader(g);
    if (l != kNoPeer && parked_[g]) {
      parked_[g] = 0;
      o.metrics.counter("subgroup.unparked").add(1);
      if (o.trace.category_enabled("agg")) {
        o.trace.instant("agg", "subgroup.unparked", self, {{"group", g}});
      }
    }
    bool any_alive = false;
    for (PeerId p : topology_.group(g)) {
      if (!net_.crashed(p)) any_alive = true;
    }
    if (any_alive && l == kNoPeer) {
      if (!health.has_value()) {
        health = raft_.health(cfg_.agg.sac_dropout_tolerance);
      }
      if (!health->subgroups[g].parked) {
        P2PFL_DEBUG() << "round driver: subgroup " << g
                      << " has no leader yet, postponing round";
        return;
      }
      if (!parked_[g]) {
        parked_[g] = 1;
        o.metrics.counter("subgroup.parked").add(1);
        if (o.trace.category_enabled("agg")) {
          o.trace.instant("agg", "subgroup.parked", self, {{"group", g}});
        }
      }
    }
    lead.subgroup_leaders[g] = l;
  }

  const std::uint64_t round =
      static_cast<std::uint64_t>(net_.now()) + 1;
  if (round <= last_round_started_) return;
  last_round_started_ = round;
  if (on_round_started) on_round_started(round);
  aggregator_->begin_round(round, lead, [this](PeerId id) {
    return peers_.at(id).current_weights;
  });
}

void P2pFlSystem::model_received(std::uint64_t round, PeerId peer,
                                 const secagg::Vector& global) {
  if (net_.crashed(peer)) return;
  PeerRuntime& rt = peers_.at(peer);
  rt.latest_global = global;
  if (round > rt.last_global_round) rt.last_global_round = round;
  // A live round reached this peer: any catch-up pull is now redundant.
  rt.catchup_timer->cancel();
  rt.trainer->set_weights(global);
  if (!rt.training) {
    rt.training = true;
    obs::SpanRecorder& sr = net_.obs().spans;
    if (sr.enabled() && rt.train_span == obs::kNoSpan) {
      // Training is caused by the arrival of the round's global model
      // (current() is the delivering link span); it completes next round.
      rt.train_span =
          sr.open(obs::SpanKind::kLocalTrain, "fl/local_train", peer, round);
    }
    rt.trainer_done->arm(cfg_.train_duration);  // models compute time
  }
}

void P2pFlSystem::begin_local_training(PeerId peer) {
  PeerRuntime& rt = peers_.at(peer);
  rt.training = false;
  obs::SpanRecorder& sr0 = net_.obs().spans;
  if (net_.crashed(peer)) {
    sr0.close_aborted(rt.train_span);
    rt.train_span = obs::kNoSpan;
    return;
  }
  rt.trainer->train_round(cfg_.train);
  rt.current_weights = rt.trainer->weights();
  sr0.close(rt.train_span);
  rt.train_span = obs::kNoSpan;
}

// --- state-transfer catch-up -----------------------------------------------

void P2pFlSystem::send_model_pull(PeerId peer) {
  if (net_.crashed(peer)) return;
  PeerRuntime& rt = peers_.at(peer);
  const PeerId leader =
      raft_.subgroup_leader(topology_.subgroup_of(peer));
  if (leader != kNoPeer && leader != peer) {
    wire::ModelPullMsg msg;
    msg.peer = peer;
    msg.last_round = rt.last_global_round;
    net_.obs().metrics.counter("fl.catchup_pulls").add(1);
    net_.send(peer, leader, "member/pull", msg, wire::kPullWire);
  }
  // No leader yet (or we are it): retry until a push or a live round
  // result cancels the timer.
  rt.catchup_timer->arm(cfg_.catchup_retry);
}

void P2pFlSystem::handle_model_pull(PeerId peer,
                                    const wire::ModelPullMsg& msg) {
  if (net_.crashed(peer) || msg.peer == peer) return;
  const PeerRuntime& rt = peers_.at(peer);
  // Nothing newer here: stay silent, the puller keeps polling until a
  // live round (or a snapshot from a better-informed leader) reaches it.
  if (rt.last_global_round <= msg.last_round) return;
  // Answer by installing our subgroup snapshot on the puller — the
  // composite blob carries the newest global model (app_snapshot_save).
  if (raft_.push_state_snapshot(peer, msg.peer)) {
    obs::Observability& o = net_.obs();
    o.metrics.counter("fl.catchup_snapshots").add(1);
    if (o.trace.category_enabled("agg")) {
      o.trace.instant("agg", "fl.catchup_snapshot", peer,
                      {{"to", msg.peer}, {"round", rt.last_global_round}});
    }
  }
}

}  // namespace p2pfl::core
