// Subgroup topology (Fig. 1): N peers divided into m SAC-layer
// subgroups, remainder peers spread as evenly as possible (Fig. 13).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace p2pfl::core {

class Topology {
 public:
  /// Build from explicit groups (each non-empty, ids globally unique).
  explicit Topology(std::vector<std::vector<PeerId>> groups);

  /// Peers 0..N-1 dealt into m subgroups of near-equal size.
  static Topology even(std::size_t total_peers, std::size_t subgroups);

  /// Grouping by target subgroup size n: m = floor(N/n) groups (§VII-B).
  static Topology by_group_size(std::size_t total_peers,
                                std::size_t group_size);

  std::size_t subgroup_count() const { return groups_.size(); }
  std::size_t peer_count() const { return peer_count_; }
  const std::vector<std::vector<PeerId>>& groups() const { return groups_; }
  const std::vector<PeerId>& group(SubgroupId g) const;
  SubgroupId subgroup_of(PeerId peer) const;
  std::vector<PeerId> all_peers() const;

  /// Designated bootstrap representative of each subgroup (its first
  /// member) — the initial FedAvg-layer configuration.
  std::vector<PeerId> designated_leaders() const;

  /// Subgroup sizes, for the cost model.
  std::vector<std::size_t> sizes() const;

 private:
  std::vector<std::vector<PeerId>> groups_;
  std::vector<SubgroupId> subgroup_of_;  // indexed by PeerId
  std::size_t peer_count_ = 0;
};

}  // namespace p2pfl::core
