#include "core/agg_cost_sim.hpp"

#include <map>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "core/two_layer_agg.hpp"
#include "core/topology.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::core {

AggCostBreakdown simulate_aggregation_cost(
    std::span<const std::size_t> groups, std::size_t dropout_tolerance,
    const AggSimHooks& hooks) {
  // |w| chosen large so control traffic (none in a fault-free round)
  // could never be confused with a model transfer.
  constexpr std::uint64_t kModelWire = kCostSimModelWire;
  constexpr std::size_t kDim = 4;

  sim::Simulator sim(1234);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});

  std::vector<std::vector<PeerId>> assignment(groups.size());
  PeerId next = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i = 0; i < groups[g]; ++i) {
      assignment[g].push_back(next++);
    }
  }
  Topology topo(std::move(assignment));

  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  for (PeerId id : topo.all_peers()) {
    auto host = std::make_unique<net::PeerHost>();
    net.attach(id, host.get());
    hosts.emplace(id, std::move(host));
  }

  AggregationConfig cfg;
  cfg.sac_dropout_tolerance = dropout_tolerance;
  cfg.model_wire_bytes = kModelWire;
  TwoLayerAggregator agg(topo, cfg, net, [&](PeerId id) -> net::PeerHost& {
    return *hosts.at(id);
  });

  AggCostBreakdown out;
  agg.on_global_model = [&](TwoLayerAggregator::RoundId,
                            const secagg::Vector&, std::size_t) {
    out.completed = true;
  };

  RoundLeadership lead;
  lead.subgroup_leaders = topo.designated_leaders();
  lead.fedavg_leader = lead.subgroup_leaders.front();
  Rng model_rng(99);
  if (hooks.on_start) hooks.on_start(sim);
  agg.begin_round(1, lead, [&](PeerId) {
    secagg::Vector v(kDim);
    for (float& x : v) x = static_cast<float>(model_rng.uniform(-1.0, 1.0));
    return v;
  });
  sim.run();
  if (hooks.on_finish) hooks.on_finish(sim);

  // Count the |w|-unit model payload of each transfer (the quantity the
  // paper's Eqs. (4)/(5) model); real framing bytes ride in counter.bytes.
  const auto& by_kind = net.stats().sent_by_kind;
  auto units_of = [&](const char* prefix) {
    double bytes = 0.0;
    for (const auto& [kind, counter] : by_kind) {
      if (kind.rfind(prefix, 0) == 0) {
        bytes += static_cast<double>(counter.payload);
      }
    }
    return bytes / static_cast<double>(kModelWire);
  };
  out.sac_units = units_of("sac/");
  out.fedavg_units = units_of("agg/upload");
  out.broadcast_units = units_of("agg/result");
  // agg/result covers both the FedAvg return hop and the in-subgroup
  // fan-out; split them: the return hop is (live leaders - 1) transfers.
  const double return_hop = static_cast<double>(groups.size()) - 1.0;
  out.fedavg_units += return_hop;
  out.broadcast_units -= return_hop;
  out.total_units = units_of("");
  return out;
}

AggLatency simulate_two_layer_latency(std::span<const std::size_t> groups,
                                      std::size_t dropout_tolerance,
                                      std::uint64_t model_wire_bytes,
                                      std::uint64_t egress_bytes_per_sec,
                                      const AggSimHooks& hooks) {
  constexpr std::size_t kDim = 4;
  sim::Simulator sim(77);
  net::NetworkConfig ncfg;
  ncfg.base_latency = 15 * kMillisecond;
  ncfg.egress_bytes_per_sec = egress_bytes_per_sec;
  net::Network net(sim, ncfg);

  std::vector<std::vector<PeerId>> assignment(groups.size());
  PeerId next = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i = 0; i < groups[g]; ++i) assignment[g].push_back(next++);
  }
  Topology topo(std::move(assignment));
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  for (PeerId id : topo.all_peers()) {
    auto host = std::make_unique<net::PeerHost>();
    net.attach(id, host.get());
    hosts.emplace(id, std::move(host));
  }
  AggregationConfig cfg;
  cfg.sac_dropout_tolerance = dropout_tolerance;
  cfg.model_wire_bytes = model_wire_bytes;
  cfg.collect_timeout = 3600 * kSecond;      // latency study: never give up
  cfg.sac_share_timeout = 3600 * kSecond;
  cfg.sac_subtotal_timeout = 3600 * kSecond;
  cfg.upload_retry = 3600 * kSecond;  // big models serialize slowly; a
                                      // retry would distort the byte study
  TwoLayerAggregator agg(topo, cfg, net, [&](PeerId id) -> net::PeerHost& {
    return *hosts.at(id);
  });

  AggLatency out;
  std::size_t received = 0;
  agg.on_global_model = [&](TwoLayerAggregator::RoundId,
                            const secagg::Vector&, std::size_t) {
    out.completed = true;
    out.aggregate_ms = to_ms(sim.now());
  };
  agg.on_model_received = [&](TwoLayerAggregator::RoundId, PeerId,
                              const secagg::Vector&) {
    if (++received == topo.peer_count()) {
      out.all_received_ms = to_ms(sim.now());
      sim.stop();
    }
  };

  RoundLeadership lead;
  lead.subgroup_leaders = topo.designated_leaders();
  lead.fedavg_leader = lead.subgroup_leaders.front();
  if (hooks.on_start) hooks.on_start(sim);
  agg.begin_round(1, lead, [&](PeerId) { return secagg::Vector(kDim, 1.0f); });
  sim.run();
  if (hooks.on_finish) hooks.on_finish(sim);
  return out;
}

AggLatency simulate_one_layer_latency(std::size_t peers,
                                      std::uint64_t model_wire_bytes,
                                      std::uint64_t egress_bytes_per_sec) {
  constexpr std::size_t kDim = 4;
  sim::Simulator sim(78);
  net::NetworkConfig ncfg;
  ncfg.base_latency = 15 * kMillisecond;
  ncfg.egress_bytes_per_sec = egress_bytes_per_sec;
  net::Network net(sim, ncfg);

  std::vector<PeerId> group;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::vector<std::unique_ptr<secagg::SacPeer>> actors;
  secagg::SacActorOptions opts;
  opts.broadcast_subtotals = true;  // Alg. 2
  opts.wire_bytes_per_share = model_wire_bytes;
  opts.share_timeout = 3600 * kSecond;
  opts.subtotal_timeout = 3600 * kSecond;
  for (PeerId id = 0; id < peers; ++id) {
    group.push_back(id);
    hosts.push_back(std::make_unique<net::PeerHost>());
    net.attach(id, hosts.back().get());
    actors.push_back(std::make_unique<secagg::SacPeer>(
        id, "sac/1l", opts, net, *hosts.back()));
  }
  AggLatency out;
  std::size_t done = 0;
  for (auto& a : actors) {
    a->on_complete = [&](secagg::RoundId, const secagg::Vector&) {
      if (++done == peers) {
        out.completed = true;
        out.aggregate_ms = to_ms(sim.now());
        out.all_received_ms = out.aggregate_ms;
        sim.stop();
      }
    };
  }
  for (PeerId id = 0; id < peers; ++id) {
    actors[id]->begin_round(1, secagg::Vector(kDim, 1.0f), group, 0);
  }
  sim.run();
  return out;
}

double simulate_aggregation_cost_units(std::span<const std::size_t> groups,
                                       std::size_t dropout_tolerance) {
  return simulate_aggregation_cost(groups, dropout_tolerance).total_units;
}

}  // namespace p2pfl::core
