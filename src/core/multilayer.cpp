#include "core/multilayer.hpp"

#include <string>

#include "common/check.hpp"

namespace p2pfl::core {

MultilayerTopology MultilayerTopology::build(std::size_t n,
                                             std::size_t layers) {
  P2PFL_CHECK(n >= 2 && layers >= 1);
  MultilayerTopology t;
  t.group_size = n;
  t.layers = layers;

  PeerId next = 0;
  auto fresh_peer = [&] {
    const PeerId id = next++;
    t.leads.push_back(-1);
    t.home.push_back(-1);
    return id;
  };

  // Top group: n fresh roots, first one is the (topmost) leader.
  Group top;
  top.layer = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const PeerId p = fresh_peer();
    top.members.push_back(p);
    t.home[p] = 0;
  }
  top.leader = top.members.front();
  t.groups.push_back(std::move(top));

  // Expand: every *fresh* member of a layer-x group leads a layer-(x+1)
  // group; in the top group that is every member (the topmost leader
  // also leads a second-layer group, per the paper's exception).
  for (std::size_t g = 0; g < t.groups.size(); ++g) {
    const std::size_t layer = t.groups[g].layer;
    if (layer >= layers) continue;
    // Fresh members of g = all members except g's leader, except for the
    // top group where the leader is fresh too.
    std::vector<PeerId> parents;
    for (PeerId m : t.groups[g].members) {
      if (g == 0 || m != t.groups[g].leader) parents.push_back(m);
    }
    for (PeerId parent : parents) {
      Group child;
      child.layer = layer + 1;
      child.leader = parent;
      child.home_group_of_leader = static_cast<int>(g);
      child.members.push_back(parent);
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const PeerId p = fresh_peer();
        child.members.push_back(p);
        t.home[p] = static_cast<int>(t.groups.size());
      }
      t.leads[parent] = static_cast<int>(t.groups.size());
      t.groups.push_back(std::move(child));
    }
  }
  t.peer_count = next;
  return t;
}

namespace {
std::string group_channel(std::size_t g) {
  return "ml/g" + std::to_string(g) + "/";
}
}  // namespace

MultilayerAggregator::MultilayerAggregator(
    const MultilayerTopology& topo, MultilayerOptions opts,
    net::Network& net, std::function<net::PeerHost&(PeerId)> host_of)
    : topo_(topo), opts_(opts), net_(net) {
  core::wire::register_codecs();
  runtimes_.resize(topo_.groups.size());
  secagg::SacActorOptions sac_opts;
  sac_opts.split = opts_.split;
  sac_opts.wire_bytes_per_share = opts_.model_wire_bytes;

  for (std::size_t g = 0; g < topo_.groups.size(); ++g) {
    const auto& group = topo_.groups[g];
    for (PeerId m : group.members) {
      auto actor = std::make_unique<secagg::SacPeer>(
          m, group_channel(g), sac_opts, net_, host_of(m));
      if (m == group.leader) {
        actor->on_complete = [this, g](RoundId round,
                                       const secagg::Vector& avg) {
          if (round == round_) group_complete(g, avg);
        };
      }
      runtimes_[g].actors.emplace(m, std::move(actor));
    }
  }
  for (PeerId p = 0; p < topo_.peer_count; ++p) {
    host_of(p).route("ml/result", [this, p](const net::Envelope& env) {
      const auto* msg = net::payload<ResultMsg>(env.body);
      if (msg != nullptr) handle_result(p, *msg);
    });
  }
}

std::uint64_t MultilayerAggregator::wire(std::size_t dim) const {
  return opts_.model_wire_bytes > 0
             ? opts_.model_wire_bytes
             : 4 * static_cast<std::uint64_t>(dim);
}

void MultilayerAggregator::begin_round(RoundId round,
                                       const ModelProvider& model_of) {
  round_ = round;
  // Every peer whose upward value is already known starts its SAC
  // participation; leaders of internal groups and leaf peers qualify.
  for (std::size_t g = 0; g < topo_.groups.size(); ++g) {
    const auto& group = topo_.groups[g];
    for (PeerId m : group.members) {
      const bool is_downward_leader = g != 0 && m == group.leader;
      if (is_downward_leader) {
        // The leader's contribution to the group it leads is its own
        // model.
        value_ready(g, m, model_of(m));
      } else if (topo_.leads[m] == -1) {
        // A pure leaf contributes its own model to its home group.
        value_ready(g, m, model_of(m));
      }
      // Fresh members leading a child group wait for that child.
    }
  }
}

void MultilayerAggregator::value_ready(std::size_t group_idx, PeerId peer,
                                       secagg::Vector value) {
  const auto& group = topo_.groups[group_idx];
  const std::size_t leader_pos = 0;  // leader is members.front()
  P2PFL_CHECK(group.members.front() == group.leader);
  runtimes_[group_idx].actors.at(peer)->begin_round(
      round_, std::move(value), group.members, leader_pos);
}

void MultilayerAggregator::group_complete(std::size_t group_idx,
                                          const secagg::Vector& avg) {
  const auto& group = topo_.groups[group_idx];
  const double n = static_cast<double>(group.members.size());
  // SAC averaged the members' subtree sums; scale back to the sum.
  secagg::Vector subtree_sum(avg.size());
  for (std::size_t i = 0; i < avg.size(); ++i) {
    subtree_sum[i] = static_cast<float>(static_cast<double>(avg[i]) * n);
  }

  if (group_idx == 0) {
    // Top of the hierarchy: the global sum over all N peers.
    secagg::Vector global(subtree_sum.size());
    const double N = static_cast<double>(topo_.peer_count);
    for (std::size_t i = 0; i < global.size(); ++i) {
      global[i] =
          static_cast<float>(static_cast<double>(subtree_sum[i]) / N);
    }
    if (on_complete) on_complete(round_, global);
    if (on_model_received) {
      on_model_received(round_, group.leader, global);
    }
    distribute(0, global);
    if (topo_.leads[group.leader] != -1) {
      distribute(static_cast<std::size_t>(topo_.leads[group.leader]),
                 global);
    }
    return;
  }
  // Pass the subtree sum up: it is the leader's contribution to its home
  // group (local state, no transfer — the leader is the same process).
  P2PFL_CHECK(group.home_group_of_leader >= 0);
  value_ready(static_cast<std::size_t>(group.home_group_of_leader),
              group.leader, std::move(subtree_sum));
}

void MultilayerAggregator::distribute(std::size_t group_idx,
                                      const secagg::Vector& global) {
  const auto& group = topo_.groups[group_idx];
  const net::WireSize size =
      core::wire::result_wire(wire(global.size()), global.size());
  for (PeerId m : group.members) {
    if (m == group.leader) continue;
    ResultMsg msg{round_, global};
    net_.send(group.leader, m, "ml/result", std::move(msg), size);
  }
}

void MultilayerAggregator::handle_result(PeerId self,
                                         const ResultMsg& msg) {
  if (msg.round != round_) return;
  if (on_model_received) on_model_received(round_, self, msg.model);
  if (topo_.leads[self] != -1) {
    distribute(static_cast<std::size_t>(topo_.leads[self]), msg.model);
  }
}

}  // namespace p2pfl::core
