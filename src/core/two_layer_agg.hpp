// Message-driven two-layer aggregation (Alg. 3 as a protocol).
//
// One aggregation round over the simulated network:
//   1. every subgroup runs SAC (leader-collect mode) on channel
//      "sac/sg<g>" — the SacPeer actors implement Alg. 2 / Alg. 4;
//   2. each subgroup leader uploads its SAC average (weight = subgroup
//      size) to the FedAvg leader ("agg/upload", one |w| transfer);
//   3. the FedAvg leader waits for ceil(p*m) subgroup models (its own
//      included) or a timeout (§VI-A3 "slow subgroups"), computes the
//      peer-count-weighted FedAvg, and returns the result to the other
//      subgroup leaders ("agg/result");
//   4. subgroup leaders fan the global model out to their followers
//      ("agg/model").
//
// In a fault-free round the bytes this puts on the wire are exactly the
// paper's Eq. (4) (k = n) or Eq. (5) (k < n) — verified by tests and by
// the Fig. 13/14 benches, which print the model and the simulated
// numbers side by side.
//
// Leadership is an input to each round (supplied by the two-layer Raft
// backend in the full system, or fixed in cost simulations); leader
// crash recovery between rounds is the backend's job.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/topology.hpp"
#include "core/wire.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "robust/rules.hpp"
#include "secagg/sac_actor.hpp"
#include "net/transport.hpp"

namespace p2pfl::core {

struct AggregationConfig {
  /// Dropouts each subgroup survives after its share phase: a subgroup
  /// of n_i runs k_i-out-of-n_i SAC with k_i = n_i - sac_dropout_tolerance
  /// (floored at 1). 0 = plain n-out-of-n SAC. A "k-n setting" of the
  /// paper maps to sac_dropout_tolerance = n - k.
  std::size_t sac_dropout_tolerance = 0;
  secagg::SplitOptions split;
  /// Wire size of one model transfer; 0 = 4 bytes * model dimension.
  std::uint64_t model_wire_bytes = 0;
  /// Fraction p of subgroup models the FedAvg leader waits for.
  double fraction_p = 1.0;
  /// FedAvg-leader patience before aggregating whatever arrived.
  SimDuration collect_timeout = 2 * kSecond;
  /// Passed through to the SAC actors.
  SimDuration sac_share_timeout = 500 * kMillisecond;
  SimDuration sac_subtotal_timeout = 500 * kMillisecond;
  /// Share-phase retransmission requests before the SAC leader reports
  /// the silent peers (see SacActorOptions::share_retry_limit).
  std::size_t sac_share_retry_limit = 2;
  /// Subgroup-leader "agg/upload" retry: first resend after upload_retry,
  /// doubling up to 8x, at most upload_retry_limit resends; stops as soon
  /// as the round's result (or a new round) arrives. In a fault-free
  /// round the result arrives long before the first resend, so the wire
  /// cost is unchanged.
  SimDuration upload_retry = 1 * kSecond;
  std::size_t upload_retry_limit = 5;
  /// FedAvg-layer aggregation rule over the subgroup subtotals. The
  /// default (kMean) is the paper's plain weighted FedAvg, bit-exact
  /// with every pre-Byzantine golden; trimmed mean / median / norm-clip
  /// tolerate a bounded fraction of lying subgroups.
  robust::RobustConfig robust;
  /// Byzantine detection: share-consistency commitments inside every
  /// subgroup's SAC round plus upload-equivocation hashing at the
  /// FedAvg leader. Detected peers land in suspects() and are excluded
  /// from later rounds' SAC groups (and the reconstruction threshold
  /// clamps to the smaller group, like a degraded subgroup). Off by
  /// default: it adds commitment/echo framing bytes to the share phase.
  bool detect_byzantine = false;
  /// Adversary registry consulted at every injection point (model
  /// poisoning, subtotal lies, equivocating uploads, and — inside the
  /// SAC actors — inconsistent shares). nullptr = everyone honest.
  const robust::ByzantineRegistry* byzantine = nullptr;
};

/// Assigns per-round leadership (from Raft, or fixed for simulations).
struct RoundLeadership {
  std::vector<PeerId> subgroup_leaders;  // indexed by SubgroupId
  PeerId fedavg_leader = kNoPeer;        // must be one of the above
};

class TwoLayerAggregator {
 public:
  using RoundId = secagg::RoundId;
  using ModelProvider = std::function<secagg::Vector(PeerId)>;

  /// `host_of` must yield the PeerHost attached for each topology peer;
  /// the aggregator registers its "sac/sg<g>" and "agg/" routes there.
  TwoLayerAggregator(const Topology& topology, AggregationConfig cfg,
                     net::Network& net,
                     std::function<net::PeerHost&(PeerId)> host_of);
  ~TwoLayerAggregator();

  TwoLayerAggregator(const TwoLayerAggregator&) = delete;
  TwoLayerAggregator& operator=(const TwoLayerAggregator&) = delete;

  /// Start one aggregation round. `model_of` supplies each live peer's
  /// current local model. Crashed peers (net.crashed) are excluded from
  /// their subgroup's SAC group up front (they could not have answered
  /// the leader's aggregation request).
  void begin_round(RoundId round, const RoundLeadership& leadership,
                   const ModelProvider& model_of);

  /// Cancel the current round on every peer (e.g. before a retry). An
  /// undecided round counts as aborted (metric `agg.rounds_aborted`).
  void abort_round();

  /// Peers whose models went into the most recent global model: the
  /// members of every subgroup whose upload made the FedAvg cut. Valid
  /// after on_global_model fires, until the next round begins.
  const std::vector<PeerId>& last_contributors() const {
    return last_contributors_;
  }

  /// Peers attributed as Byzantine by detection (detect_byzantine).
  /// They stay out of every subsequent round's SAC groups until cleared
  /// — the round controller decides whether to escalate to membership
  /// eviction or to forgive (e.g. after an eviction completed).
  const std::set<PeerId>& suspects() const { return suspects_; }
  void clear_suspect(PeerId id) { suspects_.erase(id); }

  /// Fired on the FedAvg leader when the global model is computed.
  /// `groups_used` counts subgroup models that made the cut.
  std::function<void(RoundId, const secagg::Vector&, std::size_t)>
      on_global_model;
  /// Fired on every peer when the global model reaches it.
  std::function<void(RoundId, PeerId, const secagg::Vector&)>
      on_model_received;
  /// Fired on the FedAvg leader if a whole round yields no models.
  std::function<void(RoundId)> on_round_failed;
  /// Fired when an undecided round is torn down (superseded or aborted
  /// under partition) before the FedAvg leader could aggregate.
  std::function<void(RoundId)> on_round_aborted;
  /// Fired (on the attributing leader's aggregator) when detection
  /// marks a peer as Byzantine: share inconsistency attributed by a SAC
  /// leader, or an equivocating upload caught by the FedAvg leader.
  /// Fires once per peer per detection site while the suspicion stands.
  std::function<void(RoundId, PeerId)> on_suspect;

 private:
  using UploadMsg = wire::AggUploadMsg;
  using ResultMsg = wire::AggResultMsg;

  struct PeerState {
    PeerId id = kNoPeer;
    SubgroupId group = 0;
    std::unique_ptr<secagg::SacPeer> sac;
    bool is_subgroup_leader = false;
    bool is_fed_leader = false;
    /// Upload awaiting its round's result; resent on upload_timer.
    std::optional<UploadMsg> pending_upload;
    std::size_t upload_attempts = 0;
    std::unique_ptr<net::Timer> upload_timer;
    /// Last round whose result this peer acted on. Results can arrive
    /// more than once (chaos duplication, upload-retry crossings); the
    /// relay/deliver must run exactly once per round.
    RoundId result_round = 0;
    /// Wait span covering upload sent -> round result received.
    obs::SpanId upload_span = obs::kNoSpan;
  };

  struct FedState {
    RoundId round = 0;
    std::size_t expected_groups = 0;
    std::size_t quorum = 0;
    std::map<SubgroupId, UploadMsg> uploads;
    /// Detection: digest of the first upload accepted per subgroup; a
    /// later upload for the same round whose digest differs is an
    /// equivocating subgroup leader.
    std::map<SubgroupId, std::uint64_t> upload_digest;
    bool done = false;
    /// Causal root of the round and the FedAvg leader's collect window.
    obs::SpanId round_span = obs::kNoSpan;
    obs::SpanId collect_span = obs::kNoSpan;
  };

  std::uint64_t model_wire(std::size_t dim) const;
  void handle_upload(PeerState& p, const UploadMsg& msg);
  void handle_result(PeerState& p, const ResultMsg& msg);
  void sac_complete(PeerState& p, RoundId round, const secagg::Vector& avg,
                    std::size_t group_size);
  void fed_maybe_aggregate(PeerState& p, bool timed_out);
  void distribute(PeerState& leader, RoundId round,
                  const secagg::Vector& global);
  void retry_upload(PeerState& p);
  void settle_upload(PeerState& p, RoundId round);
  /// Active attack spec for `id`, or nullptr when honest/no registry.
  const robust::AttackSpec* attack_of(PeerId id) const;
  void mark_suspect(RoundId round, PeerId peer, const char* how);

  const Topology& topology_;
  AggregationConfig cfg_;
  net::Network& net_;
  /// Byzantine transforms only (poisoned models, lie offsets); honest
  /// rounds never draw from it, so enabling the machinery does not
  /// shift any pre-existing RNG stream.
  Rng byz_rng_;
  std::map<PeerId, PeerState> peers_;
  RoundLeadership leadership_;
  std::optional<FedState> fed_;
  net::Timer collect_timer_;
  /// Live SAC group per subgroup for the current round.
  std::vector<std::vector<PeerId>> round_groups_;
  /// Peers behind the most recent global model (see last_contributors()).
  std::vector<PeerId> last_contributors_;
  /// Detection-attributed Byzantine peers (see suspects()).
  std::set<PeerId> suspects_;
  RoundId round_ = 0;
  /// Virtual time at which the current round started (latency metric).
  SimTime round_start_ = 0;
};

}  // namespace p2pfl::core
