// End-to-end federated-training harness (Figs. 6-9).
//
// Runs the paper's §VI-A experiments: N peers train local models, models
// are aggregated per round by one of
//   * one-layer SAC (the Wink & Nochta baseline, Alg. 2),
//   * the proposed two-layer SAC (Alg. 3, optionally the k-out-of-n
//     fault-tolerant variant of Alg. 4 with injected dropouts),
//   * plain FedAvg (no secure aggregation; the m = N corner of Fig. 13),
// and the global model is evaluated on the test set. Aggregation here
// uses the math form of SAC (secagg/sac.hpp) — identical numerics to the
// message-driven actor without paying for simulated transport in a
// 1000-round loop; the actor path is exercised by core/two_layer_agg and
// the integration tests.
//
// Scale knobs (model kind, rounds, samples) default to CI-friendly
// values; the bench binaries expose flags to run the paper's full
// configuration (Fig. 5 CNN, 1000 rounds).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/topology.hpp"
#include "fl/data.hpp"
#include "fl/trainer.hpp"
#include "robust/attack.hpp"
#include "robust/rules.hpp"
#include "secagg/shares.hpp"

namespace p2pfl::core {

enum class DataDistribution {
  kIid,      // identically distributed across peers
  kNonIid5,  // 95% from two main classes, 5% from the rest
  kNonIid0,  // 100% from two main classes
};

const char* distribution_name(DataDistribution d);

enum class AggregationKind {
  kOneLayerSac,    // Alg. 2 over all N peers (baseline)
  kTwoLayerSac,    // Alg. 3 (SAC per subgroup + FedAvg layer)
  kPlainFedAvg,    // no SAC anywhere (m = N corner case)
  kGossipCenter,   // BrainTorrent-style ([3]): a rotating center peer
                   // averages everyone's raw models (no privacy)
};

enum class ModelKind { kMlp, kPaperCnn };

struct FlExperimentConfig {
  std::size_t peers = 10;
  /// Subgroup count m (two-layer only). 0 = derive from group_size.
  std::size_t subgroups = 0;
  /// Target subgroup size n; used when subgroups == 0. 0 = one group.
  std::size_t group_size = 0;
  AggregationKind aggregation = AggregationKind::kTwoLayerSac;
  DataDistribution distribution = DataDistribution::kIid;

  std::size_t rounds = 100;
  /// Fraction p of subgroups whose models the FedAvg leader waits for
  /// (Figs. 8-9). The per-round subset is drawn randomly (slow subgroups
  /// rotate); peers of excluded subgroups still train and still receive
  /// the global model.
  double fraction_p = 1.0;
  /// k for fault-tolerant SAC; 0 = n-out-of-n.
  std::size_t sac_k = 0;
  /// Weight subgroup members by their sample counts inside SAC (peers
  /// pre-scale their models by public weights n_k / sum n_k before
  /// sharing), making the global model the exact McMahan FedAvg even
  /// under unequal shard sizes. Off = the paper's unweighted Alg. 2/4.
  bool weight_by_samples = false;
  /// Per-peer probability of crashing *after* the share phase each round
  /// (exercises Alg. 4 recovery; a subgroup below quorum k drops out of
  /// the round).
  double dropout_after_share_prob = 0.0;
  secagg::SplitOptions split;

  ModelKind model = ModelKind::kMlp;
  std::vector<std::size_t> mlp_hidden = {64};
  fl::SyntheticSpec data;  // default: mnist_like-ish 28x28
  fl::TrainOptions train;  // 1 epoch, batch 50 (paper defaults)
  float learning_rate = 1e-4f;  // Adam, as in §VI-A1

  std::size_t eval_every = 5;
  std::size_t eval_samples = 0;  // 0 = full test set
  std::uint64_t seed = 42;

  // --- Byzantine robustness (bench/attack_sweep) -------------------------
  /// Fraction of peers turned adversarial, assigned to WHOLE subgroups
  /// first (peers 0,1,... in topology order). Concentration matters:
  /// SAC masks individual updates inside a subgroup, so a poisoner
  /// spread thin is diluted into honest subtotals, while a captured
  /// subgroup controls its subtotal outright — the threat the FedAvg-
  /// layer robust rules defend against (see DESIGN.md).
  double byzantine_fraction = 0.0;
  /// What the Byzantine peers do. Model-poisoning kinds perturb the
  /// peer's update before SAC; the subtotal/protocol kinds perturb the
  /// subgroup's SAC average on its way up (a lying aggregator), applied
  /// when the subgroup's first member — its aggregator here — is
  /// Byzantine.
  robust::AttackSpec attack;
  /// FedAvg-layer aggregation rule over the subgroup subtotals.
  robust::RobustConfig robust;
};

struct RoundRecord {
  std::size_t round = 0;
  double train_loss = 0.0;
  /// Present on evaluation rounds only.
  std::optional<double> test_accuracy;
  std::optional<double> test_loss;
};

struct FlExperimentResult {
  std::vector<RoundRecord> records;
  double final_accuracy = 0.0;
  double final_test_loss = 0.0;
  /// Rounds where a subgroup fell below quorum k and was skipped.
  std::size_t subgroup_quorum_failures = 0;
  /// Peers that acted adversarially (byzantine_fraction of the peers).
  std::size_t byzantine_peers = 0;
  std::size_t model_params = 0;
  /// The final global model (checkpointable via fl/checkpoint.hpp).
  std::vector<float> final_weights;
};

/// Optional per-round observer (progress reporting in benches).
using RoundObserver = std::function<void(const RoundRecord&)>;

FlExperimentResult run_fl_experiment(const FlExperimentConfig& cfg,
                                     const RoundObserver& observer = {});

/// Simple trailing moving average used when printing figure series.
std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t window);

}  // namespace p2pfl::core
