// Closed-form communication-cost and fault-tolerance models (§VII).
//
// All costs are returned in units of |w| (one model transfer); callers
// scale by a ModelSize to get bytes or gigabits. The general
// (uneven-group) forms reproduce every headline number in the paper —
// e.g. 10.36x for (n,k,N)=(3,2,30), 8.84x for (3,3,20), 23.80x for
// (3,3,50) — because the paper distributes remainder peers across
// subgroups "as evenly as possible" (Fig. 13 caption). Eq. (4)/(5) are
// the even-group specializations. Tests cross-check these formulas
// against bytes counted by the network simulator running the real
// protocol actors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace p2pfl::analysis {

/// Model footprint used to scale |w|-unit costs. The paper's CNN
/// (Fig. 5) has 1.25M parameters = 5 MB = 40 Mb per transfer.
struct ModelSize {
  std::uint64_t params = 1'250'000;

  std::uint64_t bytes() const { return 4 * params; }
  double megabits() const { return static_cast<double>(bytes()) * 8 / 1e6; }
  double gigabits_for(double units) const {
    return units * static_cast<double>(bytes()) * 8 / 1e9;
  }
};

/// Split N peers into m subgroups, remainder spread one-per-group
/// (Fig. 13: "N mod m peers ... distributed to the subgroups as evenly
/// as possible"). Returns m sizes, descending. Requires 1 <= m <= N.
std::vector<std::size_t> subgroup_sizes(std::size_t N, std::size_t m);

/// Grouping used in §VII-B / Fig. 14: target subgroup size n gives
/// m = floor(N/n) groups with the remainder spread evenly.
/// Requires 1 <= n <= N.
std::vector<std::size_t> subgroups_by_target_size(std::size_t N,
                                                  std::size_t n);

/// Original one-layer SAC (Alg. 2): 2N(N-1) units per aggregation.
double one_layer_sac_cost(std::size_t N);

/// Two-layer aggregation with n-out-of-n SAC in each subgroup:
///   sum_i (n_i^2 - 1)  +  2(m - 1)  +  (N - m)   [§VII-A]
double two_layer_cost(std::span<const std::size_t> groups);

/// Eq. (4): even-group specialization (mn^2 + mn - 2).
double two_layer_cost_eq4(std::size_t m, std::size_t n);

/// Two-layer aggregation with k-out-of-n SAC:
///   sum_i { n_i(n_i-1)(n_i-k_i+1) + (k_i-1) } + 2(m-1) + (N-m).  [§VII-B]
/// A "k-n" setting tolerates f = n - k dropouts per subgroup; uneven
/// remainder groups of size n_i use k_i = n_i - f (so k = n keeps every
/// group at full threshold, matching the paper's 3-3 numbers at N = 20
/// and 50).
double two_layer_ft_cost(std::span<const std::size_t> groups, std::size_t n,
                         std::size_t k);

/// Eq. (5): even-group specialization {(n^2 - kn + k)N + km - 2}.
double two_layer_ft_cost_eq5(std::size_t N, std::size_t m, std::size_t n,
                             std::size_t k);

/// Eq. (6): total peers of an X-layer system with groups of size n.
std::uint64_t multilayer_peers(std::size_t n, std::size_t layers);

/// Eq. (10): X-layer all-SAC aggregation cost (N - 1)(n + 2) units,
/// where N = multilayer_peers(n, layers).
double multilayer_cost(std::size_t n, std::size_t layers);

// --- related-work cost models (§II, for comparison benches) ---------------

/// BrainTorrent ([3]): a rotating center pulls every other peer's latest
/// model and updates its own — N-1 uploads plus making the result
/// available to the N-1 others per effective round.
double braintorrent_cost(std::size_t N);

/// Bonawitz et al. (CCS'17, [8]): server-based masking — each user
/// uploads one masked model and downloads the aggregate; the O(N^2)
/// pairwise-key traffic is scalars, negligible in |w| units.
double ccs17_server_cost(std::size_t N);

/// Turbo-Aggregate ([9]): users in N/log2(N) groups of L = ceil(log2 N);
/// each user forwards its masked model and the running aggregate to the
/// L members of the next group — ~2 N log2(N) transfers per round.
/// Approximation from the paper's O(N log N) characterization.
double turbo_aggregate_cost(std::size_t N);

// --- §VII-D fault-tolerance thresholds -----------------------------------

/// Crashes a single Raft cluster of `size` members survives.
std::size_t raft_tolerance(std::size_t size);

/// Optimistic bound for the two-layer system: every subgroup may lose a
/// minority even including its leader being replaced, m(⌊(n-1)/2⌋ + 1)
/// total faulty peers, as long as FedAvg-layer quorum holds.
std::size_t two_layer_optimistic_tolerance(std::size_t m, std::size_t n);

/// Simultaneous subgroup-leader crashes that wedge the FedAvg layer
/// (more than its Raft tolerance).
std::size_t fedavg_fatal_leader_crashes(std::size_t m);

}  // namespace p2pfl::analysis
