#include "analysis/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace p2pfl::analysis {

std::vector<std::size_t> subgroup_sizes(std::size_t N, std::size_t m) {
  P2PFL_CHECK(m >= 1 && m <= N);
  const std::size_t base = N / m;
  const std::size_t extra = N % m;
  std::vector<std::size_t> sizes(m, base);
  for (std::size_t i = 0; i < extra; ++i) ++sizes[i];
  return sizes;
}

std::vector<std::size_t> subgroups_by_target_size(std::size_t N,
                                                  std::size_t n) {
  P2PFL_CHECK(n >= 1 && n <= N);
  return subgroup_sizes(N, N / n);
}

double one_layer_sac_cost(std::size_t N) {
  // Shares: N(N-1)|w|; broadcast subtotals: N(N-1)|w| (§III-B).
  return 2.0 * static_cast<double>(N) * static_cast<double>(N - 1);
}

double two_layer_cost(std::span<const std::size_t> groups) {
  P2PFL_CHECK(!groups.empty());
  const double m = static_cast<double>(groups.size());
  double total = 2.0 * (m - 1.0);  // FedAvg upload + result to leaders
  for (std::size_t n : groups) {
    const double nd = static_cast<double>(n);
    total += nd * nd - 1.0;  // subgroup SAC, leader-collect mode
    total += nd - 1.0;       // broadcast of the global model in-group
  }
  return total;
}

double two_layer_cost_eq4(std::size_t m, std::size_t n) {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  return md * nd * nd + md * nd - 2.0;
}

double two_layer_ft_cost(std::span<const std::size_t> groups, std::size_t n,
                         std::size_t k) {
  P2PFL_CHECK(!groups.empty());
  P2PFL_CHECK(k >= 1 && k <= n);
  const std::size_t tolerance = n - k;  // dropouts survived per subgroup
  const double m = static_cast<double>(groups.size());
  double total = 2.0 * (m - 1.0);
  for (std::size_t ni : groups) {
    const double nd = static_cast<double>(ni);
    const double kd = static_cast<double>(
        ni > tolerance ? ni - tolerance : std::size_t{1});
    total += nd * (nd - 1.0) * (nd - kd + 1.0) + (kd - 1.0);  // k-of-n SAC
    total += nd - 1.0;  // global-model broadcast in-group
  }
  return total;
}

double two_layer_ft_cost_eq5(std::size_t N, std::size_t m, std::size_t n,
                             std::size_t k) {
  const double Nd = static_cast<double>(N);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  const double md = static_cast<double>(m);
  return (nd * nd - kd * nd + kd) * Nd + kd * md - 2.0;
}

std::uint64_t multilayer_peers(std::size_t n, std::size_t layers) {
  P2PFL_CHECK(n >= 2 && layers >= 1);
  std::uint64_t total = 0;
  std::uint64_t level = n;  // n(n-1)^{x-1}
  for (std::size_t x = 1; x <= layers; ++x) {
    total += level;
    level *= (n - 1);
  }
  return total;
}

double multilayer_cost(std::size_t n, std::size_t layers) {
  const double N = static_cast<double>(multilayer_peers(n, layers));
  return (N - 1.0) * (static_cast<double>(n) + 2.0);
}

double braintorrent_cost(std::size_t N) {
  P2PFL_CHECK(N >= 1);
  return 2.0 * static_cast<double>(N - 1);
}

double ccs17_server_cost(std::size_t N) {
  return 2.0 * static_cast<double>(N);
}

double turbo_aggregate_cost(std::size_t N) {
  P2PFL_CHECK(N >= 2);
  const double L = std::ceil(std::log2(static_cast<double>(N)));
  return 2.0 * static_cast<double>(N) * L;
}

std::size_t raft_tolerance(std::size_t size) {
  P2PFL_CHECK(size >= 1);
  return (size - 1) / 2;
}

std::size_t two_layer_optimistic_tolerance(std::size_t m, std::size_t n) {
  return m * (raft_tolerance(n) + 1);
}

std::size_t fedavg_fatal_leader_crashes(std::size_t m) {
  return raft_tolerance(m) + 1;
}

}  // namespace p2pfl::analysis
