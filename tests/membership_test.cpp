// Self-healing membership: leader-side failure detection with eviction
// through Raft single-server removal, the rejoin handshake (including
// from a wiped node), stale-config probes, and the health report the
// round driver uses to park quorum-dead subgroups.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/two_layer_raft.hpp"

namespace p2pfl::core {
namespace {

TwoLayerRaftOptions fast_options() {
  TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = 50 * kMillisecond;
  opts.raft.election_timeout_max = 100 * kMillisecond;
  opts.fedavg_presence_poll = 100 * kMillisecond;
  opts.config_commit_interval = 200 * kMillisecond;
  opts.suspicion_grace = 500 * kMillisecond;
  opts.membership_poll = 100 * kMillisecond;
  opts.rejoin_retry = 100 * kMillisecond;
  return opts;
}

SimDuration opts_poll_grace() { return fast_options().membership_poll; }

struct System {
  explicit System(std::size_t peers, std::size_t groups,
                  std::uint64_t seed = 42,
                  TwoLayerRaftOptions opts = fast_options())
      : sim(seed),
        net(sim, {.base_latency = 15 * kMillisecond}),
        sys(Topology::even(peers, groups), opts, net) {
    sys.on_peer_evicted = [this](PeerId p, bool fed_layer) {
      (fed_layer ? fed_evicted : sg_evicted).insert(p);
    };
    sys.on_peer_rejoined = [this](PeerId p) { rejoined.insert(p); };
  }

  bool run_until_stable(SimDuration budget = 10 * kSecond) {
    const SimTime deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      if (sys.stabilized()) return true;
      sim.run_for(20 * kMillisecond);
    }
    return sys.stabilized();
  }

  /// Run until the victim's subgroup configuration no longer names it.
  bool run_until_evicted(PeerId victim, SimDuration budget = 10 * kSecond) {
    const SubgroupId g = sys.topology().subgroup_of(victim);
    const SimTime deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      const auto ev = sys.health().subgroups[g].evicted;
      if (std::find(ev.begin(), ev.end(), victim) != ev.end()) return true;
      sim.run_for(50 * kMillisecond);
    }
    return false;
  }

  /// Run until every subgroup config is back to full topology strength
  /// with a live leader and no suspicions.
  bool run_until_healed(SimDuration budget = 20 * kSecond) {
    const SimTime deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      if (sys.stabilized() && healed()) return true;
      sim.run_for(50 * kMillisecond);
    }
    return sys.stabilized() && healed();
  }

  bool healed() const {
    const HealthReport hr = sys.health();
    if (hr.fedavg_leader == kNoPeer) return false;
    for (const SubgroupHealth& h : hr.subgroups) {
      if (h.leader == kNoPeer || h.parked) return false;
      if (!h.evicted.empty() || !h.suspected.empty()) return false;
    }
    return true;
  }

  /// A follower of some subgroup that leads nothing (neither layer).
  PeerId pure_follower() const {
    for (PeerId p : sys.topology().all_peers()) {
      bool leads = p == sys.fedavg_leader();
      for (SubgroupId g = 0; g < sys.topology().subgroup_count(); ++g) {
        if (sys.subgroup_leader(g) == p) leads = true;
      }
      if (!leads) return p;
    }
    return kNoPeer;
  }

  std::uint64_t counter(const std::string& name) {
    const auto& counters = sim.obs().metrics.counters();
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
  }

  sim::Simulator sim;
  net::Network net;
  TwoLayerRaftSystem sys;
  std::set<PeerId> sg_evicted, fed_evicted, rejoined;
};

TEST(Membership, CrashedFollowerIsSuspectedAndEvicted) {
  System s(9, 3);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  const PeerId victim = s.pure_follower();
  ASSERT_NE(victim, kNoPeer);
  s.sys.crash_peer(victim);
  ASSERT_TRUE(s.run_until_evicted(victim));
  // The leader confirms the eviction (counter + hook) on its next
  // supervisor tick after adopting the shrunken configuration.
  s.sim.run_for(3 * opts_poll_grace());
  EXPECT_TRUE(s.sg_evicted.count(victim));
  EXPECT_GE(s.counter("membership.suspected"), 1u);
  EXPECT_GE(s.counter("membership.evicted"), 1u);
  // The other eight peers are untouched.
  const HealthReport hr = s.sys.health();
  for (const SubgroupHealth& h : hr.subgroups) {
    for (PeerId p : h.evicted) EXPECT_EQ(p, victim);
  }
}

TEST(Membership, TransientSilenceClearsSuspicionWithoutEviction) {
  // Block the links to one follower for less than the grace window: it
  // must be suspected at most, never evicted.
  TwoLayerRaftOptions opts = fast_options();
  opts.suspicion_grace = 2 * kSecond;
  System s(9, 3, 42, opts);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  const PeerId victim = s.pure_follower();
  ASSERT_NE(victim, kNoPeer);
  for (PeerId p : s.sys.topology().all_peers()) {
    if (p == victim) continue;
    s.net.block_link(p, victim);
    s.net.block_link(victim, p);
  }
  s.sim.run_for(1 * kSecond);  // silent, but inside the grace window
  for (PeerId p : s.sys.topology().all_peers()) {
    if (p == victim) continue;
    s.net.unblock_link(p, victim);
    s.net.unblock_link(victim, p);
  }
  s.sim.run_for(3 * kSecond);
  EXPECT_EQ(s.counter("membership.evicted"), 0u);
  EXPECT_TRUE(s.sg_evicted.empty());
  const SubgroupHealth h =
      s.sys.health().subgroups[s.sys.topology().subgroup_of(victim)];
  EXPECT_TRUE(h.suspected.empty());
  EXPECT_TRUE(h.evicted.empty());
}

TEST(Membership, EvictedPeerRejoinsAfterRestart) {
  System s(9, 3);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  const PeerId victim = s.pure_follower();
  ASSERT_NE(victim, kNoPeer);
  s.sys.crash_peer(victim);
  ASSERT_TRUE(s.run_until_evicted(victim));
  // The restarted node still holds a log that predates its own removal —
  // the stale-config case: it believes it is a member, so the rejoin is
  // driven by the silence probe, not by observing its own eviction.
  s.sys.restart_peer(victim);
  ASSERT_TRUE(s.run_until_healed());
  // health() reflects the leader's adopted config; give the re-add one
  // more hop to reach the victim, whose own adoption completes the
  // handshake bookkeeping.
  s.sim.run_for(5 * opts_poll_grace());
  EXPECT_TRUE(s.rejoined.count(victim));
  EXPECT_GE(s.counter("membership.rejoined"), 1u);
  const SubgroupHealth h =
      s.sys.health().subgroups[s.sys.topology().subgroup_of(victim)];
  EXPECT_NE(std::find(h.config.begin(), h.config.end(), victim),
            h.config.end());
}

TEST(Membership, AmnesiaRestartRejoinsFromABlankNode) {
  System s(9, 3, 7);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  const PeerId victim = s.pure_follower();
  ASSERT_NE(victim, kNoPeer);
  s.sys.crash_peer(victim);
  ASSERT_TRUE(s.run_until_evicted(victim));
  // Wiped: empty log, empty configuration, term 0. The node can neither
  // campaign nor vote; only the rejoin handshake can bring it back.
  s.sys.restart_peer_amnesia(victim);
  ASSERT_TRUE(s.run_until_healed());
  s.sim.run_for(5 * opts_poll_grace());
  EXPECT_TRUE(s.rejoined.count(victim));
  EXPECT_EQ(s.counter("membership.amnesia_restarts"), 1u);
  const SubgroupHealth h =
      s.sys.health().subgroups[s.sys.topology().subgroup_of(victim)];
  EXPECT_NE(std::find(h.config.begin(), h.config.end(), victim),
            h.config.end());
}

TEST(Membership, QuorumDeadSubgroupIsParkedAndRecovers) {
  // Group of 3, quorum 2: crash the group's leader plus one follower
  // before eviction can shrink the config. The survivor cannot elect
  // itself, so the subgroup is structurally leaderless: parked.
  System s(9, 3, 11);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  SubgroupId g = 0;
  if (s.sys.topology().subgroup_of(s.sys.fedavg_leader()) == g) g = 1;
  const auto& group = s.sys.topology().group(g);
  const PeerId sg_leader = s.sys.subgroup_leader(g);
  PeerId follower = kNoPeer, survivor = kNoPeer;
  for (PeerId p : group) {
    if (p == sg_leader) continue;
    if (follower == kNoPeer) {
      follower = p;
    } else {
      survivor = p;
    }
  }
  s.sys.crash_peer(sg_leader);
  s.sys.crash_peer(follower);
  s.sim.run_for(4 * kSecond);
  const SubgroupHealth before = s.sys.health().subgroups[g];
  EXPECT_EQ(before.leader, kNoPeer);
  EXPECT_TRUE(before.parked);
  EXPECT_EQ(before.live, std::vector<PeerId>{survivor});
  // One restart restores quorum: a leader emerges, the subgroup unparks,
  // evictions and rejoins heal the remaining damage.
  s.sys.restart_peer(follower);
  ASSERT_TRUE(s.run_until_stable(20 * kSecond));
  EXPECT_NE(s.sys.subgroup_leader(g), kNoPeer);
  s.sys.restart_peer(sg_leader);
  ASSERT_TRUE(s.run_until_healed());
  EXPECT_FALSE(s.sys.health().subgroups[g].parked);
}

TEST(Membership, HealthReportsDegradedThresholdWhileBelowNominal) {
  // Group of 4 with tolerance 1: nominal k = 3. Two members down leaves
  // 2 live, so the effective threshold clamps to 2 and the report says
  // degraded — exactly what the aggregation layer will run with.
  System s(8, 2, 13);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  SubgroupId g = 0;
  if (s.sys.topology().subgroup_of(s.sys.fedavg_leader()) == g) g = 1;
  const PeerId sg_leader = s.sys.subgroup_leader(g);
  std::vector<PeerId> down;
  for (PeerId p : s.sys.topology().group(g)) {
    if (p != sg_leader && down.size() < 2) down.push_back(p);
  }
  for (PeerId p : down) s.sys.crash_peer(p);
  s.sim.run_for(4 * kSecond);
  const SubgroupHealth h = s.sys.health(/*sac_dropout_tolerance=*/1)
                               .subgroups[g];
  EXPECT_EQ(h.nominal_k, 3u);
  EXPECT_EQ(h.effective_k, 2u);
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.live.size(), 2u);
  // Both crashed members restart; the subgroup heals to full strength.
  for (PeerId p : down) s.sys.restart_peer(p);
  ASSERT_TRUE(s.run_until_healed());
  const SubgroupHealth healed = s.sys.health(1).subgroups[g];
  EXPECT_EQ(healed.effective_k, 3u);
  EXPECT_FALSE(healed.degraded);
}

TEST(Membership, SelfHealingOffLeavesEvictionToNobody) {
  TwoLayerRaftOptions opts = fast_options();
  opts.self_healing = false;
  System s(9, 3, 17, opts);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  const PeerId victim = s.pure_follower();
  ASSERT_NE(victim, kNoPeer);
  s.sys.crash_peer(victim);
  s.sim.run_for(5 * kSecond);
  // Without the supervisor nobody proposes the removal: the dead peer
  // stays in its subgroup's configuration (pre-PR behaviour).
  EXPECT_EQ(s.counter("membership.evicted"), 0u);
  const SubgroupHealth h =
      s.sys.health().subgroups[s.sys.topology().subgroup_of(victim)];
  EXPECT_TRUE(h.evicted.empty());
  EXPECT_NE(std::find(h.config.begin(), h.config.end(), victim),
            h.config.end());
}

}  // namespace
}  // namespace p2pfl::core
