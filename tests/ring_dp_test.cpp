#include <gtest/gtest.h>

#include <cmath>

#include "fl/dp.hpp"
#include "secagg/ring.hpp"

namespace p2pfl {
namespace {

using secagg::RingCodec;
using secagg::RingVector;
using secagg::Vector;

Vector random_vec(std::size_t dim, Rng& rng, double range = 2.0) {
  Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng.uniform(-range, range));
  return v;
}

// --- ring sharing -------------------------------------------------------------

TEST(RingCodec, EncodeDecodeRoundTrip) {
  Rng rng(1);
  RingCodec codec;
  const Vector v = random_vec(64, rng);
  const RingVector enc = codec.encode(v);
  const Vector dec = codec.decode_mean(enc, 1);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(dec[i], v[i], 1e-6f);
  }
}

TEST(RingCodec, NegativeValuesSurviveTwoComplement) {
  RingCodec codec;
  const Vector v{-1.5f, -0.001f, 0.0f, 3.25f};
  const Vector dec = codec.decode_mean(codec.encode(v), 1);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(dec[i], v[i], 1e-6f);
  }
}

TEST(RingDivide, SharesSumExactlyModRing) {
  Rng rng(2);
  RingCodec codec;
  const Vector v = random_vec(32, rng);
  const RingVector secret = codec.encode(v);
  for (std::size_t n : {1u, 2u, 5u, 9u}) {
    const auto shares = secagg::ring_divide(secret, n, rng);
    const RingVector sum = secagg::ring_sum(shares);
    EXPECT_EQ(sum, secret) << "n=" << n;  // exact, no FP error at all
  }
}

TEST(RingDivide, SharesLookUniform) {
  // Unlike Alg. 1's proportional split, a ring share carries no trace of
  // the secret's sign or magnitude: its bits are uniform. Sanity-check
  // by splitting a zero vector — shares must still be non-trivial.
  Rng rng(3);
  const RingVector zero(128, 0);
  const auto shares = secagg::ring_divide(zero, 3, rng);
  std::size_t nonzero = 0;
  for (std::uint64_t x : shares[0]) {
    if (x != 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, zero.size());
}

TEST(RingSacAverage, MatchesPlainAverageExactly) {
  Rng rng(4);
  for (std::size_t n : {2u, 3u, 10u, 30u}) {
    std::vector<Vector> models;
    for (std::size_t i = 0; i < n; ++i) models.push_back(random_vec(16, rng));
    const Vector avg = secagg::ring_sac_average(models, rng);
    for (std::size_t e = 0; e < 16; ++e) {
      double expected = 0.0;
      for (const auto& m : models) expected += m[e];
      expected /= static_cast<double>(n);
      // Fixed-point at 2^-24 resolution: error bounded by quantization.
      EXPECT_NEAR(avg[e], expected, 1e-5) << "n=" << n;
    }
  }
}

// --- differential privacy -------------------------------------------------------

TEST(Dp, SigmaFollowsAnalyticFormula) {
  fl::DpConfig cfg;
  cfg.epsilon = 2.0;
  cfg.delta = 1e-5;
  cfg.clip_norm = 3.0;
  const double expected =
      3.0 * std::sqrt(2.0 * std::log(1.25 / 1e-5)) / 2.0;
  EXPECT_DOUBLE_EQ(fl::gaussian_sigma(cfg), expected);
}

TEST(Dp, ClipLeavesSmallVectorsUntouched) {
  std::vector<float> v{0.3f, 0.4f};  // norm 0.5
  fl::clip_to_norm(v, 1.0);
  EXPECT_FLOAT_EQ(v[0], 0.3f);
  EXPECT_FLOAT_EQ(v[1], 0.4f);
}

TEST(Dp, ClipScalesLargeVectorsToBound) {
  std::vector<float> v{3.0f, 4.0f};  // norm 5
  fl::clip_to_norm(v, 1.0);
  EXPECT_NEAR(fl::l2_norm(v), 1.0, 1e-6);
  EXPECT_NEAR(v[0] / v[1], 0.75, 1e-6);  // direction preserved
}

TEST(Dp, MechanismAddsNoiseOfExpectedScale) {
  Rng rng(5);
  fl::DpConfig cfg;
  cfg.epsilon = 1.0;
  cfg.delta = 1e-5;
  cfg.clip_norm = 1.0;
  const double sigma = fl::gaussian_sigma(cfg);
  const std::size_t dim = 20000;
  std::vector<float> update(dim, 0.0f);
  fl::apply_gaussian_mechanism(update, cfg, rng);
  double var = 0.0;
  for (float x : update) var += static_cast<double>(x) * x;
  var /= static_cast<double>(dim);
  EXPECT_NEAR(std::sqrt(var), sigma, sigma * 0.05);
}

TEST(Dp, NoiseAveragesOutAcrossManyPeers) {
  // DP noise added per peer attenuates by 1/sqrt(N) in the FedAvg mean —
  // the reason the §IV-D extension composes with aggregation.
  Rng rng(6);
  fl::DpConfig cfg;
  cfg.epsilon = 1.0;
  cfg.clip_norm = 1.0;
  const std::size_t peers = 400, dim = 50;
  std::vector<double> mean(dim, 0.0);
  for (std::size_t p = 0; p < peers; ++p) {
    std::vector<float> u(dim, 0.01f);
    fl::apply_gaussian_mechanism(u, cfg, rng);
    for (std::size_t e = 0; e < dim; ++e) mean[e] += u[e];
  }
  const double sigma = fl::gaussian_sigma(cfg);
  double rms = 0.0;
  for (std::size_t e = 0; e < dim; ++e) {
    mean[e] /= peers;
    rms += (mean[e] - 0.01) * (mean[e] - 0.01);
  }
  rms = std::sqrt(rms / dim);
  EXPECT_LT(rms, 3.0 * sigma / std::sqrt(static_cast<double>(peers)));
}

}  // namespace
}  // namespace p2pfl
