// Tests for the observability layer: metrics registry semantics,
// histogram quantiles against a sorted-sample oracle, and deterministic
// serialization of metric dumps and trace streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2pfl::obs {
namespace {

TEST(MetricsRegistry, CountersAreNamedAndStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  c.add();
  c.add(4);
  EXPECT_EQ(reg.counter("a.count").value(), 5u);
  // The reference returned earlier must survive later insertions.
  for (int i = 0; i < 100; ++i) reg.counter("fill." + std::to_string(i));
  c.add(1);
  EXPECT_EQ(reg.counter("a.count").value(), 6u);
  c.reset();
  EXPECT_EQ(reg.counter("a.count").value(), 0u);
}

TEST(MetricsRegistry, GaugesGoUpAndDown) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("leaders");
  g.add(2);
  g.add(-3);
  EXPECT_EQ(g.value(), -1);
  g.set(7);
  EXPECT_EQ(reg.gauge("leaders").value(), 7);
}

TEST(MetricsRegistry, NeverSetGaugeAppearsInDumpLikeCounters) {
  MetricsRegistry reg;
  reg.counter("registered.counter");
  reg.gauge("registered.gauge");  // registered but never set
  const std::string dump = metrics_jsonl(reg);
  // Registration alone must surface both metric kinds at value 0 —
  // a gauge nobody set yet is "0", not "absent" (dump shape stays
  // stable whether or not the code path that sets it ever ran).
  EXPECT_NE(dump.find("\"registered.counter\""), std::string::npos);
  EXPECT_NE(dump.find("\"registered.gauge\""), std::string::npos);
  EXPECT_NE(dump.find("\"value\":0"), std::string::npos);
}

TEST(MetricsRegistry, ReadOnlyLookupsNeverRegister) {
  MetricsRegistry reg;
  reg.counter("real.counter").add(3);
  reg.gauge("real.gauge").set(-2);
  const std::string before = metrics_jsonl(reg);
  // Observers (watchdog snapshots, CLI report loops) read through the
  // const lookups; absent names answer 0 without materializing.
  EXPECT_EQ(reg.counter_value("real.counter"), 3u);
  EXPECT_EQ(reg.gauge_value("real.gauge"), -2);
  EXPECT_EQ(reg.counter_value("phantom.counter"), 0u);
  EXPECT_EQ(reg.gauge_value("phantom.gauge"), 0);
  EXPECT_EQ(metrics_jsonl(reg), before);
}

TEST(MetricsRegistry, GaugeResetReturnsToZero) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("resettable");
  g.set(41);
  g.add(1);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistry, HistogramBoundsFixedOnFirstUse) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", Histogram::linear_bounds(0, 10, 5));
  EXPECT_EQ(h.bounds().size(), 5u);
  // Later lookups with different bounds return the original histogram.
  Histogram& h2 = reg.histogram("lat", Histogram::linear_bounds(0, 1, 2));
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds().size(), 5u);
}

TEST(Histogram, BasicAccounting) {
  Histogram h(Histogram::linear_bounds(10, 10, 3));  // 10, 20, 30
  h.record(5);
  h.record(15);
  h.record(25);
  h.record(99);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 144.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  EXPECT_DOUBLE_EQ(h.mean(), 36.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(Histogram::linear_bounds(0, 1, 4));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleSampleQuantilesAreExact) {
  Histogram h(Histogram::linear_bounds(0, 10, 4));
  h.record(17.5);
  for (double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 17.5) << "q=" << q;
  }
}

TEST(Histogram, AllEqualSamplesQuantilesAreExact) {
  Histogram h(Histogram::exponential_bounds(1, 2, 10));
  for (int i = 0; i < 1000; ++i) h.record(42.0);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 42.0) << "q=" << q;
  }
}

TEST(Histogram, ExtremesMatchObservedMinMax) {
  Histogram h(Histogram::linear_bounds(0, 5, 10));
  Rng rng(11);
  for (int i = 0; i < 500; ++i) h.record(rng.uniform(0.0, 45.0));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

// Property test: with uniform bucket width w and samples inside the
// bounded range, every quantile estimate is within one bucket width of
// the nearest-rank order statistic of the sorted samples (the clamp and
// the in-bucket interpolation can each only move the estimate inside
// the bucket containing that order statistic).
TEST(Histogram, QuantileTracksSortedSampleOracle) {
  const double kWidth = 10.0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Histogram h(Histogram::linear_bounds(kWidth, kWidth, 20));  // 10..200
    Rng rng(seed);
    std::vector<double> samples;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 400));
    for (int i = 0; i < n; ++i) {
      const double v = rng.uniform(0.0, 200.0);
      samples.push_back(v);
      h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      const auto rank = static_cast<std::size_t>(
          q * static_cast<double>(samples.size() - 1));
      const double oracle = samples[std::min(rank, samples.size() - 1)];
      EXPECT_NEAR(h.quantile(q), oracle, kWidth)
          << "seed=" << seed << " n=" << n << " q=" << q;
    }
  }
}

TEST(TraceStream, RespectsEnableAndCategories) {
  SimTime clock = 0;
  TraceStream tr(&clock);
  tr.instant("net", "off", 1);  // disabled: dropped silently
  EXPECT_EQ(tr.size(), 0u);
  tr.set_enabled(true);
  EXPECT_TRUE(tr.category_enabled("net"));
  tr.enable_category("raft");
  EXPECT_FALSE(tr.category_enabled("net"));
  clock = 123;
  tr.instant("net", "filtered", 1);
  tr.instant("raft", "kept", 2, {{"term", 7}});
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr.events()[0].name, "kept");
  EXPECT_EQ(tr.events()[0].ts, 123);
  EXPECT_EQ(tr.events()[0].tid, 2u);
  ASSERT_EQ(tr.events()[0].args.size(), 1u);
  EXPECT_EQ(tr.events()[0].args[0].second.json, "7");
}

TEST(TraceStream, CapacityCapCountsDrops) {
  SimTime clock = 0;
  TraceStream tr(&clock);
  tr.set_enabled(true);
  tr.set_capacity(3);
  for (int i = 0; i < 10; ++i) {
    clock = i;
    tr.instant("sim", "e" + std::to_string(i), 0);
  }
  // Ring semantics: the cap evicts the *oldest* events, so the stream
  // always holds the newest `capacity` in arrival order.
  ASSERT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.dropped(), 7u);
  EXPECT_EQ(tr.events()[0].name, "e7");
  EXPECT_EQ(tr.events()[1].name, "e8");
  EXPECT_EQ(tr.events()[2].name, "e9");
  EXPECT_EQ(tr.events()[0].ts, 7);
  // The exporter surfaces the loss: a trace.dropped_events instant is
  // present exactly when events were evicted.
  EXPECT_NE(chrome_trace_json(tr).find("trace.dropped_events"),
            std::string::npos);
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
  tr.instant("sim", "fresh", 0);
  EXPECT_EQ(chrome_trace_json(tr).find("trace.dropped_events"),
            std::string::npos);
}

TEST(Export, JsonQuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
}

TEST(Export, MetricsJsonlListsEveryMetricOnce) {
  MetricsRegistry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.gauge("mid").set(-4);
  reg.histogram("h", Histogram::linear_bounds(1, 1, 2)).record(1.5);
  const std::string out = metrics_jsonl(reg);
  // Lexical name order within each metric family.
  const auto a = out.find("\"a.first\"");
  const auto z = out.find("\"z.last\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
  EXPECT_NE(out.find("\"type\":\"gauge\",\"name\":\"mid\",\"value\":-4"),
            std::string::npos);
  EXPECT_NE(out.find("\"type\":\"histogram\",\"name\":\"h\""),
            std::string::npos);
  EXPECT_NE(out.find("\"le\":\"inf\""), std::string::npos);
  // One line per metric, each a complete object.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Export, SerializationIsDeterministic) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("c").add(2);
    reg.gauge("g").set(5);
    reg.histogram("h", Histogram::exponential_bounds(1, 10, 3)).record(25);
    SimTime clock = 42;
    TraceStream tr(&clock);
    tr.set_enabled(true);
    tr.instant("raft", "elected", 3, {{"term", 2}, {"frac", 0.25}});
    tr.complete("agg", "round", 1, 10, 32);
    tr.counter("sim", "queue", 9);
    return std::make_pair(metrics_jsonl(reg), chrome_trace_json(tr));
  };
  const auto first = build();
  const auto second = build();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  // The trace document is structurally what about://tracing expects.
  EXPECT_EQ(first.second.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            0u);
  EXPECT_NE(first.second.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(first.second.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(first.second.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(first.second.find("\"ts\":42"), std::string::npos);
}

}  // namespace
}  // namespace p2pfl::obs
