// Slow self-healing soak: the full FL system under sustained
// crash/restart churn (including amnesia restarts) with the membership
// supervisor on. Every peer the supervisor evicts and that later
// restarts must be configured back into its subgroup, catch up to the
// latest global model, and the system must return to stabilized() — and
// the whole timeline must be a pure function of the seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "core/system.hpp"

namespace p2pfl::core {
namespace {

struct SoakOutcome {
  std::map<std::uint64_t, std::vector<float>> globals;  // round -> model
  std::set<PeerId> evicted, rejoined;
  std::size_t rounds_completed = 0;
  std::size_t crashes = 0, restarts = 0, amnesia_restarts = 0;
  bool healed = false;
  std::vector<std::vector<float>> final_models;  // per peer
};

struct ChurnSoak {
  explicit ChurnSoak(std::uint64_t seed)
      : sim(seed), net(sim, {.base_latency = 15 * kMillisecond}) {
    fl::SyntheticSpec spec;
    spec.height = 8;
    spec.width = 8;
    spec.train_samples = 200;
    spec.test_samples = 60;
    spec.noise_scale = 0.6;
    Rng data_rng(seed);
    data = std::make_unique<fl::TrainTest>(fl::make_synthetic(spec, data_rng));
    parts = fl::partition_iid(data->train, kPeers, data_rng);

    SystemConfig cfg;
    cfg.raft.raft.election_timeout_min = 50 * kMillisecond;
    cfg.raft.raft.election_timeout_max = 100 * kMillisecond;
    cfg.raft.fedavg_presence_poll = 100 * kMillisecond;
    cfg.raft.config_commit_interval = 200 * kMillisecond;
    cfg.raft.suspicion_grace = 500 * kMillisecond;
    cfg.raft.membership_poll = 100 * kMillisecond;
    cfg.raft.rejoin_retry = 100 * kMillisecond;
    cfg.agg.sac_dropout_tolerance = 1;
    cfg.round_interval = 1 * kSecond;
    cfg.train_duration = 100 * kMillisecond;
    cfg.seed = seed;
    sys = std::make_unique<P2pFlSystem>(
        Topology::even(kPeers, kGroups), cfg, net, data->train, data->test,
        parts, [] { return fl::Model::mlp(64, {8}); });
    sys->raft().on_peer_evicted = [this](PeerId p, bool fed_layer) {
      if (!fed_layer) outcome.evicted.insert(p);
    };
    sys->raft().on_peer_rejoined = [this](PeerId p) {
      outcome.rejoined.insert(p);
    };
    sys->on_round_complete = [this](std::uint64_t round,
                                    const secagg::Vector& global,
                                    std::size_t) {
      outcome.globals[round] = global;
    };
  }

  /// Sustained churn with amnesia, then a heal window; snapshots the
  /// outcome for cross-run comparison.
  SoakOutcome run() {
    chaos::ChurnSpec churn;
    churn.start = 2 * kSecond;
    churn.end = 10 * kSecond;
    churn.mttf = 2 * kSecond;
    churn.mttr = 800 * kMillisecond;
    for (PeerId p = 0; p < kPeers; ++p) churn.peers.push_back(p);
    churn.max_concurrent_down = 2;
    churn.amnesia_prob = 0.4;
    chaos::ChaosPlan plan;
    plan.churn(churn);
    chaos::ChaosEngineHooks hooks;
    hooks.crash = [this](PeerId p) { sys->crash_peer(p); };
    hooks.restart = [this](PeerId p) { sys->restart_peer(p); };
    hooks.restart_amnesia = [this](PeerId p) {
      sys->restart_peer_amnesia(p);
    };
    chaos::ChaosEngine engine(net, plan, hooks);

    sys->start();
    engine.start();
    sim.run_for(12 * kSecond);  // churn window plus trailing restarts
    // Heal window: no further faults; the supervisor must repair every
    // subgroup back to full strength.
    const SimTime deadline = sim.now() + 30 * kSecond;
    while (sim.now() < deadline) {
      if (engine.peers_down() == 0 && healed()) break;
      sim.run_for(100 * kMillisecond);
    }
    outcome.healed = engine.peers_down() == 0 && healed();
    // Two more full rounds so every rejoined peer receives a fresh
    // global broadcast (quiesce point: just after a round completes).
    const std::size_t settled = sys->rounds_completed();
    while (sys->rounds_completed() < settled + 2 &&
           sim.now() < deadline + 10 * kSecond) {
      sim.run_for(100 * kMillisecond);
    }
    outcome.rounds_completed = sys->rounds_completed();
    outcome.crashes = engine.crashes();
    outcome.restarts = engine.restarts();
    outcome.amnesia_restarts = engine.amnesia_restarts();
    for (PeerId p = 0; p < kPeers; ++p) {
      outcome.final_models.push_back(sys->global_model_at(p));
    }
    return outcome;
  }

  bool healed() const {
    if (!sys->raft().stabilized()) return false;
    const HealthReport hr = sys->raft().health();
    for (const SubgroupHealth& h : hr.subgroups) {
      if (h.leader == kNoPeer || h.parked) return false;
      if (!h.evicted.empty() || !h.suspected.empty()) return false;
    }
    return true;
  }

  static constexpr std::size_t kPeers = 9;
  static constexpr std::size_t kGroups = 3;
  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<fl::TrainTest> data;
  fl::PeerIndices parts;
  std::unique_ptr<P2pFlSystem> sys;
  SoakOutcome outcome;
};

TEST(MembershipSoakSlow, EveryEvictedPeerRejoinsAndCatchesUp) {
  ChurnSoak soak(33);
  const SoakOutcome out = soak.run();

  // The churn actually exercised the path under test.
  ASSERT_GT(out.crashes, 0u);
  ASSERT_GT(out.amnesia_restarts, 0u);
  ASSERT_FALSE(out.evicted.empty());

  // Core promise: the system healed completely — every subgroup back at
  // full configuration with a live leader, both layers stabilized.
  EXPECT_TRUE(out.healed);
  // Every eviction was followed by a completed rejoin handshake.
  for (PeerId p : out.evicted) {
    EXPECT_TRUE(out.rejoined.count(p)) << "peer " << p << " never rejoined";
  }
  // Rounds kept completing through and after the churn.
  EXPECT_GE(out.rounds_completed, 5u);

  // Catch-up: every peer (including wiped ones) holds a global model
  // that some recent committed round actually produced, bit for bit.
  ASSERT_FALSE(out.globals.empty());
  std::vector<const std::vector<float>*> recent;
  for (auto it = out.globals.rbegin();
       it != out.globals.rend() && recent.size() < 3; ++it) {
    recent.push_back(&it->second);
  }
  for (PeerId p = 0; p < ChurnSoak::kPeers; ++p) {
    const std::vector<float>& got = out.final_models[p];
    const bool match =
        std::any_of(recent.begin(), recent.end(),
                    [&](const std::vector<float>* g) { return *g == got; });
    EXPECT_TRUE(match) << "peer " << p
                       << " holds a model no recent round produced";
  }
}

TEST(MembershipSoakSlow, ChurnTimelineIsBitIdenticalAcrossRuns) {
  // Same seed, same plan: the eviction/rejoin timeline and every
  // committed global model must be bit-equal — the supervisor introduces
  // no nondeterminism.
  const SoakOutcome a = ChurnSoak(33).run();
  const SoakOutcome b = ChurnSoak(33).run();
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.amnesia_restarts, b.amnesia_restarts);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_EQ(a.rejoined, b.rejoined);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  ASSERT_EQ(a.globals.size(), b.globals.size());
  for (const auto& [round, model] : a.globals) {
    auto it = b.globals.find(round);
    ASSERT_NE(it, b.globals.end()) << "round " << round;
    EXPECT_EQ(model, it->second) << "round " << round;
  }
  EXPECT_EQ(a.final_models, b.final_models);
}

TEST(MembershipSoakSlow, QuorumDeadSubgroupParksWithoutAbortingFedAvg) {
  // Kill a whole subgroup's quorum: the round driver parks it and keeps
  // aggregating the remaining groups; restarts un-park it.
  ChurnSoak soak(55);
  std::vector<std::size_t> groups_used;
  soak.sys->on_round_complete = [&](std::uint64_t round,
                                    const secagg::Vector& global,
                                    std::size_t groups) {
    soak.outcome.globals[round] = global;
    groups_used.push_back(groups);
  };
  soak.sys->start();
  soak.sim.run_for(5 * kSecond);
  ASSERT_GE(soak.sys->rounds_completed(), 2u);

  const PeerId fed = soak.sys->raft().fedavg_leader();
  SubgroupId g = 0;
  if (soak.sys->raft().topology().subgroup_of(fed) == g) g = 1;
  const auto group = soak.sys->raft().topology().group(g);
  // Crash the subgroup leader and one follower: 1 of 3 live, config
  // quorum 2 unreachable until someone returns.
  const PeerId sg_leader = soak.sys->raft().subgroup_leader(g);
  PeerId follower = kNoPeer;
  for (PeerId p : group) {
    if (p != sg_leader) {
      follower = p;
      break;
    }
  }
  soak.sys->crash_peer(sg_leader);
  soak.sys->crash_peer(follower);
  const std::size_t before = soak.sys->rounds_completed();
  soak.sim.run_for(10 * kSecond);
  // FedAvg did not abort: rounds completed with the group parked.
  EXPECT_GE(soak.sys->rounds_completed(), before + 3);
  ASSERT_FALSE(groups_used.empty());
  EXPECT_EQ(groups_used.back(), ChurnSoak::kGroups - 1);

  soak.sys->restart_peer(follower);
  soak.sys->restart_peer_amnesia(sg_leader);
  const SimTime deadline = soak.sim.now() + 30 * kSecond;
  while (soak.sim.now() < deadline && !soak.healed()) {
    soak.sim.run_for(100 * kMillisecond);
  }
  EXPECT_TRUE(soak.healed());
  const std::size_t mid = soak.sys->rounds_completed();
  while (soak.sys->rounds_completed() < mid + 2 &&
         soak.sim.now() < deadline + 10 * kSecond) {
    soak.sim.run_for(100 * kMillisecond);
  }
  // The repaired subgroup contributes again.
  EXPECT_EQ(groups_used.back(), ChurnSoak::kGroups);
}

}  // namespace
}  // namespace p2pfl::core
