// Randomized oracle for the pooled timer-wheel kernel: identical
// schedule/cancel/run_until/step sequences run through the new kernel
// (sim::Simulator) and the retained naive binary-heap reference
// (sim::ReferenceQueue) must produce identical firing orders, firing
// timestamps, cancel results, clocks and pending() counts.
//
// The operation stream is generated up front from one seeded RNG so both
// kernels see byte-identical operations; callbacks derive everything
// they do from their event token, never from the RNG, so in-callback
// scheduling and cancelling stay symmetric too. Delays are drawn from
// every wheel class: same-bucket (< 4 ms), in-wheel (< 4.2 s horizon)
// and far-future overflow, plus exact ties to stress the insertion-
// sequence tiebreak.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "sim/reference_queue.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::sim {
namespace {

struct Op {
  enum Kind { kSchedule, kCancel, kRunUntil, kStep, kRun } kind;
  SimDuration delay = 0;    // kSchedule
  int chain = 0;            // kSchedule: follow-ups scheduled in-callback
  std::uint64_t pick = 0;   // kCancel: outstanding-index selector
  SimDuration advance = 0;  // kRunUntil
};

/// Delay a chained (in-callback) schedule uses, derived from the token
/// so both kernels compute the same value. Mixes all wheel classes.
SimDuration chained_delay(std::uint64_t token) {
  const std::uint64_t h = token * 2654435761ull + 0x9e3779b9ull;
  switch (h % 4) {
    case 0:
      return static_cast<SimDuration>(h % 512);  // same-bucket
    case 1:
      return static_cast<SimDuration>(h % (100 * kMillisecond));
    case 2:
      return static_cast<SimDuration>(h % (3 * kSecond));  // in-wheel
    default:  // beyond the ~4.2 s horizon: far-future overflow heap
      return 5 * kSecond + static_cast<SimDuration>(h % (600 * kSecond));
  }
}

template <class Kernel>
struct Driver {
  explicit Driver(Kernel& kernel) : k(kernel) {}

  Kernel& k;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> outstanding;  // token, id
  std::vector<std::pair<std::uint64_t, SimTime>> fired;  // token, fire time
  std::vector<bool> cancel_results;
  std::uint64_t next_token = 0;

  void remove_token(std::uint64_t token) {
    for (auto it = outstanding.begin(); it != outstanding.end(); ++it) {
      if (it->first == token) {
        outstanding.erase(it);
        return;
      }
    }
  }

  void schedule(SimDuration delay, int chain) {
    const std::uint64_t token = next_token++;
    const std::uint64_t id = k.schedule_after(delay, [this, token, chain] {
      fired.emplace_back(token, k.now());
      remove_token(token);
      if (chain > 0) schedule(chained_delay(token), chain - 1);
      // Some callbacks also cancel a pending event (timer-reset idiom).
      if (token % 7 == 3 && !outstanding.empty()) {
        cancel_pick(token);
      }
    });
    outstanding.emplace_back(token, id);
  }

  void cancel_pick(std::uint64_t pick) {
    if (outstanding.empty()) {
      cancel_results.push_back(false);
      return;
    }
    const std::size_t at = static_cast<std::size_t>(pick % outstanding.size());
    const std::uint64_t id = outstanding[at].second;
    outstanding.erase(outstanding.begin() + at);
    cancel_results.push_back(k.cancel(id));
  }

  void apply(const Op& op) {
    switch (op.kind) {
      case Op::kSchedule:
        schedule(op.delay, op.chain);
        break;
      case Op::kCancel:
        cancel_pick(op.pick);
        break;
      case Op::kRunUntil:
        k.run_until(k.now() + op.advance);
        break;
      case Op::kStep:
        k.step();
        break;
      case Op::kRun:
        k.run();
        break;
    }
  }
};

std::vector<Op> make_ops(std::uint64_t seed, std::size_t count) {
  std::mt19937_64 rng(seed);
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Op op;
    const std::uint64_t r = rng() % 100;
    if (r < 45) {
      op.kind = Op::kSchedule;
      switch (rng() % 5) {
        case 0:
          op.delay = 0;  // immediate: FIFO tiebreak at the current time
          break;
        case 1:
          op.delay = static_cast<SimDuration>(rng() % 4096);  // same bucket
          break;
        case 2:
          op.delay = static_cast<SimDuration>(rng() % (200 * kMillisecond));
          break;
        case 3:
          op.delay = static_cast<SimDuration>(rng() % (4 * kSecond));
          break;
        default:  // far beyond the wheel horizon
          op.delay =
              5 * kSecond + static_cast<SimDuration>(rng() % (3600 * kSecond));
          break;
      }
      op.chain = (rng() % 4 == 0) ? static_cast<int>(rng() % 3) : 0;
    } else if (r < 65) {
      op.kind = Op::kCancel;
      op.pick = rng();
    } else if (r < 85) {
      op.kind = Op::kRunUntil;
      op.advance = (rng() % 10 == 0)
                       ? static_cast<SimDuration>(rng() % (20 * kSecond))
                       : static_cast<SimDuration>(rng() % (700 * kMillisecond));
    } else if (r < 97) {
      op.kind = Op::kStep;
    } else {
      op.kind = Op::kRun;
    }
    ops.push_back(op);
  }
  return ops;
}

TEST(SimWheelOracle, MatchesNaiveHeapAcrossSeeds) {
  constexpr std::uint64_t kSeeds = 36;  // >= 32 per the kernel battery spec
  constexpr std::size_t kOpsPerSeed = 1500;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Simulator wheel(seed);
    ReferenceQueue naive;
    Driver<Simulator> dw(wheel);
    Driver<ReferenceQueue> dn(naive);
    const std::vector<Op> ops = make_ops(seed, kOpsPerSeed);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      dw.apply(ops[i]);
      dn.apply(ops[i]);
      ASSERT_EQ(wheel.now(), naive.now()) << "seed " << seed << " op " << i;
      ASSERT_EQ(wheel.pending(), naive.pending())
          << "seed " << seed << " op " << i;
      ASSERT_EQ(dw.fired.size(), dn.fired.size())
          << "seed " << seed << " op " << i;
    }
    // Drain both and compare the complete histories.
    wheel.run();
    naive.run();
    EXPECT_EQ(wheel.now(), naive.now()) << "seed " << seed;
    EXPECT_EQ(wheel.pending(), naive.pending()) << "seed " << seed;
    EXPECT_EQ(dw.fired, dn.fired) << "seed " << seed;
    EXPECT_EQ(dw.cancel_results, dn.cancel_results) << "seed " << seed;
    EXPECT_EQ(wheel.pending(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace p2pfl::sim
