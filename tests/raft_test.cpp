#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "net/mux.hpp"
#include "net/network.hpp"
#include "raft/node.hpp"

namespace p2pfl::raft {
namespace {

// A simulated Raft cluster with per-node applied-command recording.
struct Cluster {
  explicit Cluster(std::size_t n, std::uint64_t seed = 42,
                   RaftOptions opts = {})
      : sim(seed), net(sim, {.base_latency = 15 * kMillisecond}) {
    std::vector<PeerId> members;
    for (std::size_t i = 0; i < n; ++i) members.push_back(static_cast<PeerId>(i));
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<net::PeerHost>());
      net.attach(static_cast<PeerId>(i), hosts.back().get());
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<RaftNode>(
          static_cast<PeerId>(i), "raft/test", members, opts, net,
          *hosts[i]));
      RaftNode* node = nodes.back().get();
      node->on_apply = [this, i](Index idx, const LogEntry& e) {
        applied[i].emplace_back(idx, e.data);
      };
      node->on_become_leader = [this, node] {
        leaders_by_term[node->current_term()].insert(node->id());
      };
    }
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }

  void run_for(SimDuration d) { sim.run_for(d); }

  /// The unique live leader, or nullptr.
  RaftNode* leader() {
    RaftNode* best = nullptr;
    for (auto& n : nodes) {
      if (!n->is_leader() || net.crashed(n->id())) continue;
      if (best == nullptr || n->current_term() > best->current_term()) {
        best = n.get();
      }
    }
    return best;
  }

  void crash(PeerId id) {
    net.crash(id);
    nodes[id]->stop();
  }

  void restart(PeerId id) {
    net.restore(id);
    nodes[id]->restart();
  }

  /// Election Safety: at most one leader was ever elected per term.
  void expect_election_safety() const {
    for (const auto& [term, ids] : leaders_by_term) {
      EXPECT_LE(ids.size(), 1u) << "two leaders in term " << term;
    }
  }

  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::vector<std::unique_ptr<RaftNode>> nodes;
  std::map<std::size_t, std::vector<std::pair<Index, Bytes>>> applied;
  std::map<Term, std::set<PeerId>> leaders_by_term;
};

Bytes cmd(std::uint8_t x) { return Bytes{x}; }

TEST(Raft, ElectsExactlyOneLeader) {
  Cluster c(5);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  int leaders = 0;
  for (auto& n : c.nodes) {
    if (n->is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  c.expect_election_safety();
}

TEST(Raft, ElectionHappensWithinExpectedWindow) {
  // First election: some follower times out in U(T,2T) and wins within a
  // couple of RTTs. With T = 150 ms the leader must exist well before 1 s.
  Cluster c(5);
  c.start_all();
  c.run_for(1 * kSecond);
  EXPECT_NE(c.leader(), nullptr);
}

TEST(Raft, SingleNodeClusterElectsItself) {
  Cluster c(1);
  c.start_all();
  c.run_for(1 * kSecond);
  ASSERT_NE(c.leader(), nullptr);
  EXPECT_EQ(c.leader()->id(), 0u);
  // And commits immediately without peers.
  auto idx = c.leader()->propose(cmd(9));
  ASSERT_TRUE(idx.has_value());
  c.run_for(100 * kMillisecond);
  ASSERT_EQ(c.applied[0].size(), 1u);
}

TEST(Raft, LeaderCrashTriggersReelection) {
  Cluster c(5);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* first = c.leader();
  ASSERT_NE(first, nullptr);
  const PeerId old_id = first->id();
  const Term old_term = first->current_term();
  c.crash(old_id);
  c.run_for(2 * kSecond);
  RaftNode* second = c.leader();
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second->id(), old_id);
  EXPECT_GT(second->current_term(), old_term);
  c.expect_election_safety();
}

TEST(Raft, OldLeaderRejoinsAsFollower) {
  Cluster c(5);
  c.start_all();
  c.run_for(2 * kSecond);
  const PeerId old_id = c.leader()->id();
  c.crash(old_id);
  c.run_for(2 * kSecond);
  ASSERT_NE(c.leader(), nullptr);
  c.restart(old_id);
  c.run_for(1 * kSecond);
  EXPECT_FALSE(c.nodes[old_id]->is_leader());
  EXPECT_EQ(c.nodes[old_id]->role(), Role::kFollower);
  EXPECT_EQ(c.nodes[old_id]->current_term(), c.leader()->current_term());
  c.expect_election_safety();
}

TEST(Raft, ReplicatesAndAppliesInOrderEverywhere) {
  Cluster c(5);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(leader->propose(cmd(i)).has_value());
    c.run_for(40 * kMillisecond);
  }
  c.run_for(1 * kSecond);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(c.applied[i].size(), 10u) << "node " << i;
    for (std::uint8_t j = 0; j < 10; ++j) {
      EXPECT_EQ(c.applied[i][j].second, cmd(j));
    }
  }
}

TEST(Raft, ProposeOnFollowerIsRejected) {
  Cluster c(3);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  for (auto& n : c.nodes) {
    if (n.get() != leader) {
      EXPECT_FALSE(n->propose(cmd(1)).has_value());
    }
  }
}

TEST(Raft, MinorityCrashDoesNotBlockCommit) {
  Cluster c(5);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  // Crash two followers (minority).
  int crashed = 0;
  for (auto& n : c.nodes) {
    if (n.get() != leader && crashed < 2) {
      c.crash(n->id());
      ++crashed;
    }
  }
  ASSERT_TRUE(leader->propose(cmd(42)).has_value());
  c.run_for(1 * kSecond);
  EXPECT_GE(leader->commit_index(), 1u);
  EXPECT_EQ(c.applied[leader->id()].back().second, cmd(42));
}

TEST(Raft, MajorityCrashBlocksCommit) {
  Cluster c(5);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  int crashed = 0;
  for (auto& n : c.nodes) {
    if (n.get() != leader && crashed < 3) {
      c.crash(n->id());
      ++crashed;
    }
  }
  const Index before = leader->commit_index();
  leader->propose(cmd(7));
  c.run_for(2 * kSecond);
  EXPECT_EQ(leader->commit_index(), before);
}

TEST(Raft, ConflictingUncommittedEntriesAreOverwritten) {
  Cluster c(5);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* old_leader = c.leader();
  ASSERT_NE(old_leader, nullptr);
  const PeerId old_id = old_leader->id();

  // Isolate the leader, let it append entries nobody receives.
  for (auto& n : c.nodes) {
    if (n->id() != old_id) {
      c.net.block_link(old_id, n->id());
      c.net.block_link(n->id(), old_id);
    }
  }
  old_leader->propose(cmd(100));
  old_leader->propose(cmd(101));
  c.run_for(2 * kSecond);

  // A new leader emerges and commits different entries.
  RaftNode* new_leader = nullptr;
  for (auto& n : c.nodes) {
    if (n->id() != old_id && n->is_leader()) new_leader = n.get();
  }
  ASSERT_NE(new_leader, nullptr);
  ASSERT_TRUE(new_leader->propose(cmd(200)).has_value());
  c.run_for(1 * kSecond);

  // Heal the partition: the old leader's uncommitted tail is replaced.
  for (auto& n : c.nodes) {
    if (n->id() != old_id) {
      c.net.unblock_link(old_id, n->id());
      c.net.unblock_link(n->id(), old_id);
    }
  }
  c.run_for(2 * kSecond);
  EXPECT_FALSE(c.nodes[old_id]->is_leader());
  ASSERT_FALSE(c.applied[old_id].empty());
  EXPECT_EQ(c.applied[old_id].back().second, cmd(200));
  // State-Machine Safety: all nodes applied the same sequence.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(c.applied[i], c.applied[0]) << "node " << i;
  }
  c.expect_election_safety();
}

TEST(Raft, RestartedNodeCatchesUpAndReplays) {
  Cluster c(3);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  PeerId follower = kNoPeer;
  for (auto& n : c.nodes) {
    if (n.get() != leader) follower = n->id();
  }
  c.crash(follower);
  for (std::uint8_t i = 0; i < 5; ++i) {
    leader->propose(cmd(i));
    c.run_for(40 * kMillisecond);
  }
  c.run_for(500 * kMillisecond);
  c.applied[follower].clear();  // observe the replay after restart
  c.restart(follower);
  c.run_for(2 * kSecond);
  ASSERT_EQ(c.applied[follower].size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(c.applied[follower][i].second, cmd(i));
  }
}

TEST(Raft, AddServerExtendsClusterAndReplicates) {
  Cluster c(3);
  // Attach a fourth node that is not in the initial configuration.
  c.hosts.push_back(std::make_unique<net::PeerHost>());
  c.net.attach(3, c.hosts.back().get());
  std::vector<PeerId> members{0, 1, 2};
  RaftOptions opts;
  c.nodes.push_back(std::make_unique<RaftNode>(
      3, "raft/test", members, opts, c.net, *c.hosts[3]));
  c.nodes[3]->on_apply = [&c](Index idx, const LogEntry& e) {
    c.applied[3].emplace_back(idx, e.data);
  };
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  leader->propose(cmd(1));
  c.run_for(200 * kMillisecond);
  EXPECT_FALSE(c.nodes[3]->in_config());
  ASSERT_TRUE(leader->propose_add_server(3).has_value());
  c.run_for(1 * kSecond);
  EXPECT_TRUE(c.nodes[3]->in_config());
  EXPECT_EQ(leader->members().size(), 4u);
  // The new member received the full log.
  ASSERT_EQ(c.applied[3].size(), 1u);
  EXPECT_EQ(c.applied[3][0].second, cmd(1));
  // And participates in commitment.
  leader->propose(cmd(2));
  c.run_for(500 * kMillisecond);
  EXPECT_EQ(c.applied[3].back().second, cmd(2));
}

TEST(Raft, RemoveCrashedServerRestoresProgressWithSmallerQuorum) {
  Cluster c(4);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  // Crash two followers: 2 of 4 alive, no quorum.
  std::vector<PeerId> dead;
  for (auto& n : c.nodes) {
    if (n.get() != leader && dead.size() < 2) {
      dead.push_back(n->id());
      c.crash(n->id());
    }
  }
  leader->propose(cmd(1));
  c.run_for(1 * kSecond);
  const Index stuck = leader->commit_index();
  // Remove one dead server: quorum becomes 2 of 3, which is met.
  ASSERT_TRUE(leader->propose_remove_server(dead[0]).has_value());
  c.run_for(1 * kSecond);
  EXPECT_GT(leader->commit_index(), stuck);
  EXPECT_EQ(leader->members().size(), 3u);
}

TEST(Raft, OnlyOneConfigChangeInFlight) {
  Cluster c(3);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  // Block one follower so the change cannot commit instantly... quorum of
  // 3 is 2, so block both followers to hold the config change open.
  for (auto& n : c.nodes) {
    if (n.get() != leader) {
      c.net.block_link(leader->id(), n->id());
      c.net.block_link(n->id(), leader->id());
    }
  }
  ASSERT_TRUE(leader->propose_add_server(7).has_value());
  EXPECT_FALSE(leader->propose_add_server(8).has_value());
  EXPECT_FALSE(leader->propose_remove_server(7).has_value());
}

TEST(Raft, AddOfPresentMemberAndRemoveOfStrangerAreRejected) {
  Cluster c(3);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  // Both proposals are vacuous; accepting them would burn the one
  // change-in-flight slot on a config entry that changes nothing.
  EXPECT_FALSE(leader->propose_add_server(leader->id()).has_value());
  EXPECT_FALSE(leader->propose_add_server(1).has_value());
  EXPECT_FALSE(leader->propose_remove_server(42).has_value());
  EXPECT_EQ(leader->members().size(), 3u);
  // The slot stays free for a real change.
  EXPECT_TRUE(leader->propose_remove_server(
                        leader->id() == 2 ? 1 : 2).has_value());
}

TEST(Raft, RemovingCurrentLeaderMakesItStepDownAfterCommit) {
  Cluster c(3);
  c.start_all();
  c.run_for(2 * kSecond);
  RaftNode* old_leader = c.leader();
  ASSERT_NE(old_leader, nullptr);
  const PeerId removed = old_leader->id();
  // §4.2.2: the leader may commit a configuration that excludes itself;
  // it keeps leading until the entry commits, then steps down.
  ASSERT_TRUE(old_leader->propose_remove_server(removed).has_value());
  c.run_for(2 * kSecond);
  EXPECT_FALSE(old_leader->is_leader());
  EXPECT_FALSE(old_leader->in_config());
  // The surviving pair elects a successor and still commits.
  RaftNode* next = c.leader();
  ASSERT_NE(next, nullptr);
  EXPECT_NE(next->id(), removed);
  EXPECT_EQ(next->members().size(), 2u);
  ASSERT_TRUE(next->propose(cmd(5)).has_value());
  c.run_for(500 * kMillisecond);
  EXPECT_EQ(c.applied[next->id()].back().second, cmd(5));
  // The removed server never applies past its own removal entry.
  c.expect_election_safety();
}

TEST(Raft, NonMemberNeverCampaigns) {
  // A node whose configuration does not include itself stays follower.
  sim::Simulator sim(1);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  net::PeerHost host;
  net.attach(9, &host);
  RaftNode node(9, "raft/x", {0, 1, 2}, {}, net, host);
  node.start();
  sim.run_for(5 * kSecond);
  EXPECT_EQ(node.role(), Role::kFollower);
  EXPECT_EQ(node.current_term(), 0u);
}

TEST(Raft, MetricsCountElections) {
  Cluster c(3);
  c.start_all();
  c.run_for(2 * kSecond);
  std::uint64_t started = 0, elected = 0;
  for (auto& n : c.nodes) {
    started += n->metrics().elections_started;
    elected += n->metrics().times_elected;
  }
  EXPECT_GE(started, 1u);
  EXPECT_EQ(elected, 1u);
}

TEST(Raft, LeaderCompletenessAfterSequentialCrashes) {
  // Commit, crash the leader, let a new one emerge, repeat: committed
  // entries must survive every transition (Leader Completeness). A
  // 7-node cluster keeps quorum (4) through three crashes.
  Cluster c(7, 7);
  c.start_all();
  c.run_for(2 * kSecond);
  std::vector<Bytes> committed;
  for (std::uint8_t wave = 0; wave < 3; ++wave) {
    RaftNode* leader = c.leader();
    ASSERT_NE(leader, nullptr) << "wave " << int(wave);
    ASSERT_TRUE(leader->propose(cmd(wave)).has_value());
    committed.push_back(cmd(wave));
    c.run_for(1 * kSecond);  // commit settles
    c.crash(leader->id());
    c.run_for(3 * kSecond);  // next leader emerges
  }
  RaftNode* final_leader = c.leader();
  ASSERT_NE(final_leader, nullptr);
  const auto& seq = c.applied[final_leader->id()];
  ASSERT_GE(seq.size(), committed.size());
  std::size_t found = 0;
  for (const auto& [idx, data] : seq) {
    if (found < committed.size() && data == committed[found]) ++found;
  }
  EXPECT_EQ(found, committed.size());
  c.expect_election_safety();
}

}  // namespace
}  // namespace p2pfl::raft
