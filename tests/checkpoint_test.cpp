#include <gtest/gtest.h>

#include <cstdio>

#include "fl/checkpoint.hpp"
#include "fl/model.hpp"

namespace p2pfl::fl {
namespace {

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  std::vector<float> w{1.5f, -2.25f, 0.0f, 3.14159f};
  const auto decoded = decode_checkpoint(encode_checkpoint(w));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, w);
}

TEST(Checkpoint, EmptyWeightsRoundTrip) {
  const auto decoded = decode_checkpoint(encode_checkpoint({}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Checkpoint, CorruptedPayloadRejected) {
  std::vector<float> w{1.0f, 2.0f, 3.0f};
  Bytes data = encode_checkpoint(w);
  data.back() ^= 0xFF;  // flip payload bits
  EXPECT_FALSE(decode_checkpoint(data).has_value());
}

TEST(Checkpoint, TruncatedRejected) {
  std::vector<float> w{1.0f, 2.0f};
  Bytes data = encode_checkpoint(w);
  data.pop_back();
  EXPECT_FALSE(decode_checkpoint(data).has_value());
  EXPECT_FALSE(decode_checkpoint(Bytes{1, 2, 3}).has_value());
}

TEST(Checkpoint, WrongMagicRejected) {
  Bytes data = encode_checkpoint(std::vector<float>{1.0f});
  data[0] ^= 0x01;
  EXPECT_FALSE(decode_checkpoint(data).has_value());
}

TEST(Checkpoint, FileRoundTripRestoresModel) {
  Rng rng(5);
  Model m = Model::mlp(8, {4}, 3);
  m.init(rng);
  const auto original = m.get_params();
  const std::string path = ::testing::TempDir() + "/p2pfl_ckpt.bin";
  ASSERT_TRUE(save_checkpoint(path, original));

  Model fresh = Model::mlp(8, {4}, 3);
  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  fresh.set_params(*loaded);
  EXPECT_EQ(fresh.get_params(), original);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsNullopt) {
  EXPECT_FALSE(load_checkpoint("/nonexistent/p2pfl.ckpt").has_value());
}

}  // namespace
}  // namespace p2pfl::fl
