#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "analysis/cost_model.hpp"
#include "core/multilayer.hpp"

namespace p2pfl::core {
namespace {

struct Harness {
  Harness(std::size_t n, std::size_t layers, std::uint64_t seed = 3)
      : topo(MultilayerTopology::build(n, layers)),
        sim(seed),
        net(sim, {.base_latency = 15 * kMillisecond}) {
    for (PeerId p = 0; p < topo.peer_count; ++p) {
      hosts.push_back(std::make_unique<net::PeerHost>());
      net.attach(p, hosts.back().get());
    }
    MultilayerOptions opts;
    opts.model_wire_bytes = kWire;
    agg = std::make_unique<MultilayerAggregator>(
        topo, opts, net, [this](PeerId p) -> net::PeerHost& {
          return *hosts[p];
        });
    agg->on_complete = [this](secagg::RoundId, const secagg::Vector& g) {
      global = g;
    };
    agg->on_model_received = [this](secagg::RoundId, PeerId p,
                                    const secagg::Vector& g) {
      received[p] = g;
    };
  }

  void run_round(std::size_t dim = 4) {
    Rng rng(11);
    models.clear();
    for (PeerId p = 0; p < topo.peer_count; ++p) {
      secagg::Vector v(dim);
      for (float& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
      models.push_back(v);
    }
    agg->begin_round(1, [this](PeerId p) { return models[p]; });
    sim.run();
  }

  secagg::Vector expected_mean() const {
    secagg::Vector avg(models.front().size(), 0.0f);
    for (const auto& m : models) {
      for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += m[i];
    }
    for (float& v : avg) v /= static_cast<float>(models.size());
    return avg;
  }

  static constexpr std::uint64_t kWire = 1u << 16;

  MultilayerTopology topo;
  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::unique_ptr<MultilayerAggregator> agg;
  std::vector<secagg::Vector> models;
  secagg::Vector global;
  std::map<PeerId, secagg::Vector> received;
};

struct Dims {
  std::size_t n;
  std::size_t layers;
};

class MultilayerShape : public ::testing::TestWithParam<Dims> {};

TEST_P(MultilayerShape, PeerCountMatchesEq6) {
  const auto [n, layers] = GetParam();
  const auto topo = MultilayerTopology::build(n, layers);
  EXPECT_EQ(topo.peer_count, analysis::multilayer_peers(n, layers));
  // Group count: 1 + sum_{k=1..X-1} n(n-1)^{k-1}.
  std::size_t expected_groups = 1;
  if (layers > 1) {
    expected_groups += static_cast<std::size_t>(
        analysis::multilayer_peers(n, layers - 1));
  }
  EXPECT_EQ(topo.groups.size(), expected_groups);
  // Every group has exactly n members, leader first.
  for (const auto& g : topo.groups) {
    EXPECT_EQ(g.members.size(), n);
    EXPECT_EQ(g.members.front(), g.leader);
  }
}

TEST_P(MultilayerShape, EveryPeerHasExactlyOneHome) {
  const auto [n, layers] = GetParam();
  const auto topo = MultilayerTopology::build(n, layers);
  std::vector<std::size_t> memberships(topo.peer_count, 0);
  for (const auto& g : topo.groups) {
    for (PeerId m : g.members) ++memberships[m];
  }
  for (PeerId p = 0; p < topo.peer_count; ++p) {
    // Members of one group, plus one more if they lead a child group.
    const std::size_t expected = topo.leads[p] == -1 ? 1 : 2;
    EXPECT_EQ(memberships[p], expected) << "peer " << p;
    EXPECT_GE(topo.home[p], 0);
  }
}

TEST_P(MultilayerShape, AggregatesToExactGlobalMean) {
  const auto [n, layers] = GetParam();
  Harness h(n, layers);
  h.run_round();
  ASSERT_FALSE(h.global.empty());
  const auto expected = h.expected_mean();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(h.global[i], expected[i], 1e-3f) << "element " << i;
  }
}

TEST_P(MultilayerShape, EveryPeerReceivesTheGlobalModel) {
  const auto [n, layers] = GetParam();
  Harness h(n, layers);
  h.run_round();
  EXPECT_EQ(h.received.size(), h.topo.peer_count);
  for (const auto& [p, model] : h.received) {
    EXPECT_EQ(model, h.global) << "peer " << p;
  }
}

TEST_P(MultilayerShape, WireBytesMatchEq10Exactly) {
  const auto [n, layers] = GetParam();
  Harness h(n, layers);
  h.run_round();
  const double expected_units = analysis::multilayer_cost(n, layers);
  const double measured_units =
      static_cast<double>(h.net.stats().sent.payload) /
      static_cast<double>(Harness::kWire);
  EXPECT_DOUBLE_EQ(measured_units, expected_units)
      << "n=" << n << " X=" << layers;
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultilayerShape,
                         ::testing::Values(Dims{3, 1}, Dims{3, 2},
                                           Dims{3, 3}, Dims{4, 2},
                                           Dims{5, 2}, Dims{2, 3}));

TEST(Multilayer, TwoLayerCaseMatchesTwoLayerFormulaWithSacTop) {
  // An X=2 hierarchy with SAC at the top is the paper's "SAC could be
  // employed in the higher layer" variant; Eq. 10 at X=2 equals
  // (N-1)(n+2).
  const auto topo = MultilayerTopology::build(4, 2);
  const double eq10 = analysis::multilayer_cost(4, 2);
  EXPECT_DOUBLE_EQ(
      eq10, static_cast<double>((topo.peer_count - 1) * (4 + 2)));
}

}  // namespace
}  // namespace p2pfl::core
