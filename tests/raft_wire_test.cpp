// The Raft wire codec: round-trips, malformed-input rejection, and —
// crucially — agreement between the byte counts the protocol charges to
// the network (kWireSize / wire_size()) and the actual encoded length.
#include <gtest/gtest.h>

#include "raft/wire.hpp"

namespace p2pfl::raft {
namespace {

LogEntry entry(Term t, EntryKind k, Bytes data) {
  LogEntry e;
  e.term = t;
  e.kind = k;
  e.data = std::move(data);
  return e;
}

TEST(RaftWire, RequestVoteRoundTripAndSize) {
  RequestVoteArgs m;
  m.term = 42;
  m.candidate = 7;
  m.last_log_index = 1000;
  m.last_log_term = 41;
  m.pre_vote = true;
  const Bytes b = wire::encode(m);
  EXPECT_EQ(b.size(), RequestVoteArgs::kWireSize);
  const auto d = wire::decode_request_vote(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->term, 42u);
  EXPECT_EQ(d->candidate, 7u);
  EXPECT_EQ(d->last_log_index, 1000u);
  EXPECT_EQ(d->last_log_term, 41u);
  EXPECT_TRUE(d->pre_vote);
}

TEST(RaftWire, RequestVoteReplyRoundTripAndSize) {
  RequestVoteReply m;
  m.term = 3;
  m.vote_granted = true;
  m.voter = 12;
  m.pre_vote = false;
  const Bytes b = wire::encode(m);
  EXPECT_EQ(b.size(), RequestVoteReply::kWireSize);
  const auto d = wire::decode_request_vote_reply(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->term, 3u);
  EXPECT_TRUE(d->vote_granted);
  EXPECT_EQ(d->voter, 12u);
}

TEST(RaftWire, AppendEntriesRoundTripAndSize) {
  AppendEntriesArgs m;
  m.term = 9;
  m.leader = 2;
  m.prev_log_index = 55;
  m.prev_log_term = 8;
  m.leader_commit = 54;
  m.entries.push_back(entry(9, EntryKind::kNoop, {}));
  m.entries.push_back(entry(9, EntryKind::kCommand, {1, 2, 3}));
  m.entries.push_back(entry(9, EntryKind::kConfig, {0xFF}));
  const Bytes b = wire::encode(m);
  EXPECT_EQ(b.size(), m.wire_size());
  const auto d = wire::decode_append_entries(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->term, 9u);
  EXPECT_EQ(d->leader, 2u);
  EXPECT_EQ(d->prev_log_index, 55u);
  EXPECT_EQ(d->leader_commit, 54u);
  ASSERT_EQ(d->entries.size(), 3u);
  EXPECT_TRUE(d->entries[0] == m.entries[0]);
  EXPECT_TRUE(d->entries[1] == m.entries[1]);
  EXPECT_TRUE(d->entries[2] == m.entries[2]);
}

TEST(RaftWire, EmptyHeartbeatSize) {
  AppendEntriesArgs m;
  EXPECT_EQ(wire::encode(m).size(), m.wire_size());
  EXPECT_EQ(m.wire_size(), 40u);
}

TEST(RaftWire, AppendEntriesReplyRoundTripAndSize) {
  AppendEntriesReply m;
  m.term = 4;
  m.success = false;
  m.follower = 9;
  m.match_index = 17;
  m.conflict_index = 11;
  const Bytes b = wire::encode(m);
  EXPECT_EQ(b.size(), AppendEntriesReply::kWireSize);
  const auto d = wire::decode_append_entries_reply(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->success);
  EXPECT_EQ(d->conflict_index, 11u);
}

TEST(RaftWire, InstallSnapshotRoundTripAndSize) {
  InstallSnapshotArgs m;
  m.term = 6;
  m.leader = 1;
  m.last_included_index = 500;
  m.last_included_term = 5;
  m.members = {1, 4, 9};
  m.app_state = {9, 8, 7, 6};
  const Bytes b = wire::encode(m);
  EXPECT_EQ(b.size(), m.wire_size());
  const auto d = wire::decode_install_snapshot(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->members, m.members);
  EXPECT_EQ(d->app_state, m.app_state);
  EXPECT_EQ(d->last_included_index, 500u);
}

TEST(RaftWire, InstallSnapshotReplyAndTimeoutNowSizes) {
  InstallSnapshotReply r;
  r.term = 1;
  r.follower = 2;
  r.match_index = 3;
  EXPECT_EQ(wire::encode(r).size(), InstallSnapshotReply::kWireSize);
  ASSERT_TRUE(wire::decode_install_snapshot_reply(wire::encode(r)));

  TimeoutNowArgs t;
  t.term = 10;
  t.leader = 0;
  EXPECT_EQ(wire::encode(t).size(), TimeoutNowArgs::kWireSize);
  const auto d = wire::decode_timeout_now(wire::encode(t));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->term, 10u);
}

TEST(RaftWire, TruncatedInputRejected) {
  AppendEntriesArgs m;
  m.term = 1;
  m.entries.push_back(entry(1, EntryKind::kCommand, {1, 2, 3, 4}));
  Bytes b = wire::encode(m);
  for (std::size_t cut = 1; cut < b.size(); cut += 7) {
    Bytes t(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(wire::decode_append_entries(t).has_value())
        << "cut at " << cut;
  }
}

TEST(RaftWire, TrailingGarbageRejected) {
  RequestVoteArgs m;
  Bytes b = wire::encode(m);
  b.push_back(0);
  EXPECT_FALSE(wire::decode_request_vote(b).has_value());
}

}  // namespace
}  // namespace p2pfl::raft
