// Cross-backend equivalence: the same protocol code run over the
// deterministic simulator and over real loopback TCP must charge the
// exact same per-kind byte accounting — and both must equal the paper's
// closed forms (Eq. (4)/(5)). This is the cross-validation the TCP
// backend exists for: the simulator's cost experiments are trustworthy
// because a real-socket run reproduces their counters bit-for-bit.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cost_model.hpp"
#include "core/system.hpp"
#include "core/topology.hpp"
#include "core/two_layer_agg.hpp"
#include "core/wire.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "net/tcp/tcp_transport.hpp"
#include "secagg/wire.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::core {
namespace {

using namespace std::chrono_literals;

/// Closed-form per-round message count of a fault-free two-layer round.
std::uint64_t expected_round_messages(std::size_t m, std::size_t n,
                                      std::size_t k) {
  return m * n * (n - 1)        // pairwise shares within each subgroup
         + m * (k - 1)          // subtotals to each subgroup leader
         + (m - 1)              // uploads to the FedAvg leader
         + (m - 1) + m * (n - 1);  // result return hop + in-group fan-out
}

/// One aggregation round over the simulator (the pre-seam golden path).
struct SimRound {
  sim::Simulator sim;
  net::Network net;
  Topology topo;
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  std::optional<TwoLayerAggregator> agg;
  bool completed = false;

  SimRound(std::size_t m, std::size_t n, std::size_t tolerance,
           std::size_t dim)
      : sim(31),
        net(sim, net::NetworkConfig{.base_latency = 15 * kMillisecond}),
        topo(Topology::even(m * n, m)) {
    for (PeerId id : topo.all_peers()) {
      auto host = std::make_unique<net::PeerHost>();
      net.attach(id, host.get());
      hosts.emplace(id, std::move(host));
    }
    AggregationConfig cfg;
    cfg.sac_dropout_tolerance = tolerance;
    agg.emplace(topo, cfg, net, [this](PeerId id) -> net::PeerHost& {
      return *hosts.at(id);
    });
    agg->on_global_model = [this](std::uint64_t, const secagg::Vector&,
                                  std::size_t) { completed = true; };
    RoundLeadership lead;
    lead.subgroup_leaders = topo.designated_leaders();
    lead.fedavg_leader = lead.subgroup_leaders.front();
    agg->begin_round(1, lead, [dim](PeerId id) {
      return secagg::Vector(dim, static_cast<float>(id + 1));
    });
    sim.run();
  }
};

/// The identical round over real loopback sockets.
struct TcpRound {
  net::tcp::TcpTransport transport;
  net::Network net;
  Topology topo;
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  std::optional<TwoLayerAggregator> agg;
  bool completed = false;  // loop-thread-only until shutdown

  TcpRound(std::size_t m, std::size_t n, std::size_t tolerance,
           std::size_t dim)
      : transport({.peers = Topology::even(m * n, m).all_peers(),
                   .seed = 31}),
        net(transport, {}),
        topo(Topology::even(m * n, m)) {
    for (PeerId id : topo.all_peers()) {
      auto host = std::make_unique<net::PeerHost>();
      net.attach(id, host.get());
      hosts.emplace(id, std::move(host));
    }
    AggregationConfig cfg;
    cfg.sac_dropout_tolerance = tolerance;
    agg.emplace(topo, cfg, net, [this](PeerId id) -> net::PeerHost& {
      return *hosts.at(id);
    });
    agg->on_global_model = [this](std::uint64_t, const secagg::Vector&,
                                  std::size_t) { completed = true; };
    transport.start();

    RoundLeadership lead;
    lead.subgroup_leaders = topo.designated_leaders();
    lead.fedavg_leader = lead.subgroup_leaders.front();
    transport.call([&] {
      agg->begin_round(1, lead, [dim](PeerId id) {
        return secagg::Vector(dim, static_cast<float>(id + 1));
      });
    });

    // A clean loopback round sends exactly the closed-form message
    // count; wait for every last one to also be delivered so the
    // delivered-side counters are final before we stop the loop.
    const std::size_t k = n > tolerance ? n - tolerance : 1;
    const std::uint64_t want = expected_round_messages(m, n, k);
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    bool done = false;
    while (!done && std::chrono::steady_clock::now() < deadline) {
      transport.call([&] {
        done = completed && net.stats().sent.messages >= want &&
               net.stats().delivered.messages >= want;
      });
      if (!done) std::this_thread::sleep_for(2ms);
    }
    transport.shutdown();
  }
};

/// Pin one backend's per-kind counters to the framing closed forms and
/// the |w|-unit total to Eq. (4) (tolerance 0) or Eq. (5).
void check_closed_forms(const net::TrafficStats& stats, std::size_t m,
                        std::size_t n, std::size_t tolerance,
                        std::size_t dim) {
  const std::size_t k = n > tolerance ? n - tolerance : 1;
  const std::uint64_t w = 4 * static_cast<std::uint64_t>(dim);
  const std::uint64_t parts = n - k + 1;
  const std::uint64_t share_wire =
      secagg::wire::kShareHeader +
      parts * (secagg::wire::kPerPartHeader + w);
  const std::uint64_t subtotal_wire = secagg::wire::kSubtotalHeader + w;
  const std::uint64_t upload_wire = core::wire::kUploadHeader + w;
  const std::uint64_t result_wire = core::wire::kResultHeader + w;

  std::uint64_t total_payload = 0;
  for (const auto& [kind, c] : stats.sent_by_kind) {
    SCOPED_TRACE(kind);
    total_payload += c.payload;
    if (kind.size() > 6 && kind.compare(kind.size() - 6, 6, "/share") == 0) {
      EXPECT_EQ(c.messages, n * (n - 1));
      EXPECT_EQ(c.bytes, c.messages * share_wire);
      EXPECT_EQ(c.payload, c.messages * parts * w);
    } else if (kind.size() > 9 &&
               kind.compare(kind.size() - 9, 9, "/subtotal") == 0) {
      EXPECT_EQ(c.messages, k - 1);
      EXPECT_EQ(c.bytes, c.messages * subtotal_wire);
      EXPECT_EQ(c.payload, c.messages * w);
    } else if (kind == "agg/upload") {
      EXPECT_EQ(c.messages, m - 1);
      EXPECT_EQ(c.bytes, c.messages * upload_wire);
      EXPECT_EQ(c.payload, c.messages * w);
    } else if (kind == "agg/result") {
      EXPECT_EQ(c.messages, (m - 1) + m * (n - 1));
      EXPECT_EQ(c.bytes, c.messages * result_wire);
      EXPECT_EQ(c.payload, c.messages * w);
    } else {
      ADD_FAILURE() << "unexpected kind in a fault-free round: " << kind;
    }
  }
  EXPECT_EQ(stats.delivered.messages, stats.sent.messages);
  EXPECT_EQ(stats.delivered.bytes, stats.sent.bytes);
  EXPECT_EQ(stats.delivered.payload, stats.sent.payload);

  const double units =
      static_cast<double>(total_payload) / static_cast<double>(w);
  if (tolerance == 0) {
    EXPECT_DOUBLE_EQ(units, analysis::two_layer_cost_eq4(m, n));
  } else {
    EXPECT_DOUBLE_EQ(units, analysis::two_layer_ft_cost_eq5(m * n, m, n, k));
  }
}

void check_backends_agree(std::size_t m, std::size_t n, std::size_t tolerance,
                          std::size_t dim) {
  SCOPED_TRACE("m=" + std::to_string(m) + " n=" + std::to_string(n) +
               " tol=" + std::to_string(tolerance));
  SimRound sim_run(m, n, tolerance, dim);
  ASSERT_TRUE(sim_run.completed);
  TcpRound tcp_run(m, n, tolerance, dim);
  ASSERT_TRUE(tcp_run.completed);

  {
    SCOPED_TRACE("sim backend");
    check_closed_forms(sim_run.net.stats(), m, n, tolerance, dim);
  }
  {
    SCOPED_TRACE("tcp backend");
    check_closed_forms(tcp_run.net.stats(), m, n, tolerance, dim);
  }

  // The two backends' per-kind sent counters are *identical* — message
  // counts, wire bytes and |w|-unit payload, kind by kind.
  const auto& a = sim_run.net.stats().sent_by_kind;
  const auto& b = tcp_run.net.stats().sent_by_kind;
  ASSERT_EQ(a.size(), b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    SCOPED_TRACE(ia->first);
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.messages, ib->second.messages);
    EXPECT_EQ(ia->second.bytes, ib->second.bytes);
    EXPECT_EQ(ia->second.payload, ib->second.payload);
  }
}

TEST(TransportEquivalence, FaultFreeRoundIdenticalAcrossBackends) {
  check_backends_agree(5, 4, 0, 6);
}

TEST(TransportEquivalence, FaultTolerantRoundIdenticalAcrossBackends) {
  check_backends_agree(3, 4, 1, 5);
}

// --- full-system FedAvg training over real sockets ----------------------

struct SystemSetup {
  fl::TrainTest data;
  fl::PeerIndices parts;
  SystemConfig cfg;

  SystemSetup(std::size_t peers, std::uint64_t seed) {
    fl::SyntheticSpec spec;
    spec.height = 8;
    spec.width = 8;
    spec.train_samples = 400;
    spec.test_samples = 120;
    spec.noise_scale = 0.6;
    Rng data_rng(seed);
    data = fl::make_synthetic(spec, data_rng);
    parts = fl::partition_iid(data.train, peers, data_rng);

    // Generous protocol timeouts: on clean loopback nothing is ever
    // lost, so with enough headroom no retry timer fires even when the
    // whole process runs 10-20x slower under ThreadSanitizer — keeping
    // the per-round traffic exactly the closed form.
    cfg.agg.collect_timeout = 60 * kSecond;
    cfg.agg.sac_share_timeout = 20 * kSecond;
    cfg.agg.sac_subtotal_timeout = 20 * kSecond;
    cfg.agg.upload_retry = 60 * kSecond;
    // Real-clock Raft timing: local training runs synchronously on the
    // transport's loop thread and can stall it for hundreds of
    // milliseconds under ThreadSanitizer, so sim-style 50-100 ms
    // election timeouts would churn leaders continuously. Size the
    // timeouts well above the longest stall.
    cfg.raft.raft.election_timeout_min = 1 * kSecond;
    cfg.raft.raft.election_timeout_max = 2 * kSecond;
    cfg.raft.fedavg_presence_poll = 200 * kMillisecond;
    // Long enough that a round always completes before the next driver
    // tick (even TSan-slowed): overlapping rounds supersede each other
    // mid-flight and the superseded partial traffic would break the
    // exact closed-form window below.
    cfg.round_interval = 1 * kSecond;
    cfg.train_duration = 50 * kMillisecond;
    cfg.learning_rate = 3e-3f;
    cfg.seed = seed;
  }
};

TEST(TransportEquivalence, FullSystemOverTcpMatchesEq4AndLearns) {
  constexpr std::size_t kPeers = 20;
  constexpr std::size_t kGroups = 5;       // m=5 subgroups of n=4
  constexpr std::size_t kRounds = 5;       // enclosed rounds we account
  constexpr std::size_t kTrainRounds = 12; // rounds to run before evaluating
  constexpr std::uint64_t kSeed = 3;

  const Topology topo = Topology::even(kPeers, kGroups);
  net::tcp::TcpTransport transport({.peers = topo.all_peers(),
                                    .seed = kSeed});
  net::Network net(transport, {});
  SystemSetup setup(kPeers, kSeed);
  P2pFlSystem sys(topo, setup.cfg, net, setup.data.train, setup.data.test,
                  setup.parts, [] { return fl::Model::mlp(64, {16}); });

  // Snapshot the per-kind sent counters at every round completion (the
  // callback runs on the loop thread, where stats() is safe to read).
  std::mutex mu;
  std::vector<std::map<std::string, net::TrafficStats::Counter>> snaps;
  sys.on_round_complete = [&](std::uint64_t, const secagg::Vector&,
                              std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    snaps.push_back(net.stats().sent_by_kind);
  };

  transport.start();
  transport.call([&] { sys.start(); });
  const auto deadline = std::chrono::steady_clock::now() + 180s;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (snaps.size() >= kTrainRounds) break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "TCP system failed to complete " << kTrainRounds << " rounds";
    std::this_thread::sleep_for(10ms);
  }
  transport.shutdown();

  // A clean run: every started round completed (an aborted round would
  // leave partial traffic inside the accounting window).
  EXPECT_EQ(sys.rounds_aborted(), 0u);

  // Between two round-completion snapshots exactly `kRounds` whole
  // aggregation rounds of traffic occurred — wherever the callback sits
  // inside a round's send sequence, it sits there every round, so the
  // window is exact.
  const std::size_t dim = sys.global_model_at(0).size();
  ASSERT_GT(dim, 0u);
  const std::uint64_t w = 4 * static_cast<std::uint64_t>(dim);
  const auto& first = snaps.front();
  const auto& last = snaps[kRounds];
  std::uint64_t share = 0, subtotal = 0, upload = 0, result = 0, other = 0;
  for (const auto& [kind, c] : last) {
    const auto it = first.find(kind);
    const std::uint64_t delta =
        c.payload - (it != first.end() ? it->second.payload : 0);
    if (kind.size() > 6 && kind.compare(kind.size() - 6, 6, "/share") == 0) {
      share += delta;
    } else if (kind.size() > 9 &&
               kind.compare(kind.size() - 9, 9, "/subtotal") == 0) {
      subtotal += delta;
    } else if (kind == "agg/upload") {
      upload += delta;
    } else if (kind == "agg/result") {
      result += delta;
    } else {
      other += delta;  // raft / control traffic: must carry no payload
    }
  }
  constexpr std::uint64_t m = kGroups;
  constexpr std::uint64_t n = kPeers / kGroups;
  EXPECT_EQ(share, kRounds * m * n * (n - 1) * w);
  EXPECT_EQ(subtotal, kRounds * m * (n - 1) * w);
  EXPECT_EQ(upload, kRounds * (m - 1) * w);
  EXPECT_EQ(result, kRounds * ((m - 1) + m * (n - 1)) * w);
  EXPECT_EQ(other, 0u);
  const std::uint64_t total = share + subtotal + upload + result;
  // The headline cross-validation: real-socket payload per round is the
  // paper's Eq. (4) closed form, exactly.
  EXPECT_DOUBLE_EQ(
      static_cast<double>(total) / static_cast<double>(w * kRounds),
      analysis::two_layer_cost_eq4(m, n));

  // And the model actually learns over TCP, to within tolerance of the
  // identically-configured simulator run.
  const double tcp_acc = sys.evaluate_global().accuracy;

  sim::Simulator sim(kSeed);
  net::Network sim_net(sim, {.base_latency = 15 * kMillisecond});
  SystemSetup sim_setup(kPeers, kSeed);
  P2pFlSystem sim_sys(topo, sim_setup.cfg, sim_net, sim_setup.data.train,
                      sim_setup.data.test, sim_setup.parts,
                      [] { return fl::Model::mlp(64, {16}); });
  sim_sys.start();
  const std::size_t tcp_rounds = sys.rounds_completed();
  for (int i = 0; i < 120 && sim_sys.rounds_completed() < tcp_rounds; ++i) {
    sim.run_for(1 * kSecond);
  }
  ASSERT_GE(sim_sys.rounds_completed(), tcp_rounds);
  const double sim_acc = sim_sys.evaluate_global().accuracy;
  EXPECT_NEAR(tcp_acc, sim_acc, 0.2);
  EXPECT_GT(tcp_acc, 0.4);
}

}  // namespace
}  // namespace p2pfl::core
