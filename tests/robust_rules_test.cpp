// Unit tests for the FedAvg-layer robust aggregation rules: breakdown
// points (each rule survives fewer Byzantine inputs than its bound and
// breaks at it), the bit-exactness of kMean with fl::federated_average,
// and the attack transforms' determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "fl/fedavg.hpp"
#include "robust/attack.hpp"
#include "robust/rules.hpp"

namespace p2pfl::robust {
namespace {

std::vector<std::vector<float>> constant_models(
    std::size_t m, std::size_t dim, float honest, float bad,
    std::size_t bad_count) {
  std::vector<std::vector<float>> models(m, std::vector<float>(dim, honest));
  for (std::size_t i = 0; i < bad_count; ++i) {
    models[i].assign(dim, bad);
  }
  return models;
}

TEST(RobustRules, MeanIsBitExactWithFederatedAverage) {
  Rng rng(404);
  std::vector<std::vector<float>> models;
  std::vector<double> weights;
  for (std::size_t i = 0; i < 7; ++i) {
    std::vector<float> v(13);
    for (float& x : v) x = static_cast<float>(rng.uniform(-3.0, 3.0));
    models.push_back(std::move(v));
    weights.push_back(static_cast<double>(rng.index(9) + 1));
  }
  RobustConfig cfg;  // kMean
  const std::vector<float> ours = aggregate(models, weights, cfg);
  const std::vector<float> ref = fl::federated_average(models, weights);
  ASSERT_EQ(ours.size(), ref.size());
  for (std::size_t d = 0; d < ref.size(); ++d) {
    EXPECT_EQ(ours[d], ref[d]) << d;  // bit-exact, not just near
  }
}

TEST(RobustRules, TrimmedMeanSurvivesBelowBreakdownPoint) {
  // 5 inputs, trim_fraction 0.2 -> ceil(1) trimmed per end. One extreme
  // input (20% Byzantine) lands in the trimmed tail; the survivors are
  // all the honest constant, so the result is exact.
  RobustConfig cfg;
  cfg.rule = RobustRule::kTrimmedMean;
  cfg.trim_fraction = 0.2;
  const std::vector<double> w(5, 1.0);
  for (float bad : {1e6f, -1e6f}) {
    const auto models = constant_models(5, 4, 2.5f, bad, 1);
    const std::vector<float> out = aggregate(models, w, cfg);
    for (float x : out) EXPECT_FLOAT_EQ(x, 2.5f);
  }
}

TEST(RobustRules, TrimmedMeanBreaksAboveBreakdownPoint) {
  // Two colluding extremes against trim 1-per-end: one survives the
  // trim and drags the average.
  RobustConfig cfg;
  cfg.rule = RobustRule::kTrimmedMean;
  cfg.trim_fraction = 0.2;
  const std::vector<double> w(5, 1.0);
  const auto models = constant_models(5, 4, 2.5f, 1e6f, 2);
  const std::vector<float> out = aggregate(models, w, cfg);
  EXPECT_GT(out[0], 1000.0f);
}

TEST(RobustRules, MedianSurvivesAnyMinority) {
  // Weighted median has breakdown point 1/2: 2-of-5 extremes, split
  // across both tails, leave the honest value in the middle.
  RobustConfig cfg;
  cfg.rule = RobustRule::kMedian;
  const std::vector<double> w(5, 1.0);
  auto models = constant_models(5, 4, -1.25f, 1e6f, 2);
  models[1].assign(4, -1e6f);  // one extreme per direction
  const std::vector<float> out = aggregate(models, w, cfg);
  for (float x : out) EXPECT_FLOAT_EQ(x, -1.25f);
}

TEST(RobustRules, MedianBreaksAtMajority) {
  RobustConfig cfg;
  cfg.rule = RobustRule::kMedian;
  const std::vector<double> w(5, 1.0);
  const auto models = constant_models(5, 4, 2.5f, 1e6f, 3);
  const std::vector<float> out = aggregate(models, w, cfg);
  EXPECT_FLOAT_EQ(out[0], 1e6f);
}

TEST(RobustRules, MedianRespectsWeights) {
  // Two inputs at 10 with weight 3 each outweigh three inputs at 1 with
  // weight 1: the lower weighted median is 10.
  RobustConfig cfg;
  cfg.rule = RobustRule::kMedian;
  const std::vector<std::vector<float>> models = {
      {1.0f}, {1.0f}, {1.0f}, {10.0f}, {10.0f}};
  const std::vector<double> w = {1.0, 1.0, 1.0, 3.0, 3.0};
  EXPECT_FLOAT_EQ(aggregate(models, w, cfg)[0], 10.0f);
}

TEST(RobustRules, NormClipDefangsScaledUpdate) {
  // One input scaled 1000x: clipping to 2x the median norm bounds its
  // pull; the result stays within the clip bound of the honest value.
  RobustConfig cfg;
  cfg.rule = RobustRule::kNormClip;
  cfg.clip_multiplier = 2.0;
  const std::vector<double> w(5, 1.0);
  const auto models = constant_models(5, 4, 1.0f, 1000.0f, 1);
  const std::vector<float> out = aggregate(models, w, cfg);
  // Unclipped mean would be ~200.8; clipped stays near honest.
  EXPECT_LT(out[0], 2.0f);
  EXPECT_GT(out[0], 0.9f);
}

TEST(RobustRules, TrimNeverEatsEveryObservation) {
  // Absurd trim fractions are clamped so at least one observation
  // survives per coordinate.
  RobustConfig cfg;
  cfg.rule = RobustRule::kTrimmedMean;
  cfg.trim_fraction = 0.49;
  const std::vector<double> w(2, 1.0);
  const auto models = constant_models(2, 3, 4.0f, 8.0f, 1);
  const std::vector<float> out = aggregate(models, w, cfg);
  EXPECT_TRUE(std::isfinite(out[0]));
}

TEST(RobustRules, RuleAndAttackNamesRoundTrip) {
  for (RobustRule r : {RobustRule::kMean, RobustRule::kTrimmedMean,
                       RobustRule::kMedian, RobustRule::kNormClip}) {
    RobustRule back;
    ASSERT_TRUE(rule_from_name(rule_name(r), back)) << rule_name(r);
    EXPECT_EQ(back, r);
  }
  for (AttackKind a :
       {AttackKind::kSignFlip, AttackKind::kScaledUpdate,
        AttackKind::kRandomNoise, AttackKind::kConstantDrift,
        AttackKind::kInconsistentShares, AttackKind::kSubtotalLie,
        AttackKind::kEquivocate}) {
    AttackKind back;
    ASSERT_TRUE(attack_from_name(attack_name(a), back)) << attack_name(a);
    EXPECT_EQ(back, a);
  }
  RobustRule r;
  EXPECT_FALSE(rule_from_name("krum", r));
  AttackKind a;
  EXPECT_FALSE(attack_from_name("backdoor", a));
}

TEST(RobustAttack, PoisonTransformsAreDeterministic) {
  const std::vector<float> base = {1.0f, -2.0f, 0.5f};
  for (AttackKind k : {AttackKind::kSignFlip, AttackKind::kScaledUpdate,
                       AttackKind::kRandomNoise,
                       AttackKind::kConstantDrift}) {
    Rng a(77), b(77);
    std::vector<float> x = base, y = base;
    poison(x, {k, 10.0}, a);
    poison(y, {k, 10.0}, b);
    EXPECT_EQ(x, y) << attack_name(k);
    EXPECT_NE(x, base) << attack_name(k);
  }
  Rng rng(77);
  std::vector<float> x = base;
  poison(x, {AttackKind::kNone, 10.0}, rng);
  EXPECT_EQ(x, base);
}

TEST(RobustAttack, SignFlipAndScaleAreExactTransforms) {
  Rng rng(1);
  std::vector<float> x = {1.0f, -2.0f};
  poison(x, {AttackKind::kSignFlip, 10.0}, rng);
  EXPECT_FLOAT_EQ(x[0], -10.0f);
  EXPECT_FLOAT_EQ(x[1], 20.0f);
  std::vector<float> y = {1.0f, -2.0f};
  poison(y, {AttackKind::kScaledUpdate, 10.0}, rng);
  EXPECT_FLOAT_EQ(y[0], 10.0f);
  EXPECT_FLOAT_EQ(y[1], -20.0f);
}

}  // namespace
}  // namespace p2pfl::robust
