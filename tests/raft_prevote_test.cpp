// PreVote (§9.6) and leadership transfer (§3.10).
#include <gtest/gtest.h>

#include <memory>

#include "net/mux.hpp"
#include "net/network.hpp"
#include "raft/node.hpp"

namespace p2pfl::raft {
namespace {

struct Cluster {
  explicit Cluster(std::size_t n, RaftOptions opts, std::uint64_t seed = 42)
      : sim(seed), net(sim, {.base_latency = 15 * kMillisecond}) {
    std::vector<PeerId> members;
    for (std::size_t i = 0; i < n; ++i) members.push_back(static_cast<PeerId>(i));
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<net::PeerHost>());
      net.attach(static_cast<PeerId>(i), hosts.back().get());
      nodes.push_back(std::make_unique<RaftNode>(
          static_cast<PeerId>(i), "raft/pv", members, opts, net,
          *hosts[i]));
      nodes.back()->start();
    }
  }

  RaftNode* leader() {
    for (auto& n : nodes) {
      if (n->is_leader() && !net.crashed(n->id())) return n.get();
    }
    return nullptr;
  }

  void isolate(PeerId id) {
    for (auto& n : nodes) {
      if (n->id() != id) {
        net.block_link(id, n->id());
        net.block_link(n->id(), id);
      }
    }
  }

  void heal(PeerId id) {
    for (auto& n : nodes) {
      if (n->id() != id) {
        net.unblock_link(id, n->id());
        net.unblock_link(n->id(), id);
      }
    }
  }

  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::vector<std::unique_ptr<RaftNode>> nodes;
};

RaftOptions prevote_opts() {
  RaftOptions opts;
  opts.pre_vote = true;
  return opts;
}

TEST(PreVote, ClusterStillElectsALeader) {
  Cluster c(5, prevote_opts());
  c.sim.run_for(3 * kSecond);
  ASSERT_NE(c.leader(), nullptr);
  // With PreVote and no disruption the first real election usually
  // happens at term 1 — terms don't inflate.
  EXPECT_LE(c.leader()->current_term(), 3u);
}

TEST(PreVote, IsolatedNodeDoesNotInflateItsTerm) {
  // The classic PreVote scenario: a partitioned node keeps timing out.
  // Without PreVote its term grows unboundedly and it deposes the leader
  // on rejoin; with PreVote it never wins a pre-quorum, so its term
  // stays put and the healed cluster is undisturbed.
  Cluster c(5, prevote_opts());
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  const Term term_before = leader->current_term();

  PeerId victim = kNoPeer;
  for (auto& n : c.nodes) {
    if (n.get() != leader) victim = n->id();
  }
  c.isolate(victim);
  c.sim.run_for(10 * kSecond);  // dozens of failed prevote rounds
  EXPECT_EQ(c.nodes[victim]->current_term(), term_before)
      << "prevote must not bump the term";

  c.heal(victim);
  c.sim.run_for(2 * kSecond);
  ASSERT_NE(c.leader(), nullptr);
  EXPECT_EQ(c.leader()->id(), leader->id()) << "leadership was disturbed";
  EXPECT_EQ(c.leader()->current_term(), term_before);
}

TEST(PreVote, WithoutPreVoteIsolatedNodeInflatesTerm) {
  // Control experiment documenting the behaviour PreVote fixes. (Leader
  // stickiness still protects the healthy side on heal.)
  RaftOptions opts;  // pre_vote = false
  Cluster c(5, opts);
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  PeerId victim = kNoPeer;
  for (auto& n : c.nodes) {
    if (n.get() != leader) victim = n->id();
  }
  const Term before = c.nodes[victim]->current_term();
  c.isolate(victim);
  c.sim.run_for(10 * kSecond);
  EXPECT_GT(c.nodes[victim]->current_term(), before + 10);
}

TEST(PreVote, CrashRecoveryStillWorks) {
  Cluster c(5, prevote_opts(), 9);
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  const PeerId old_id = leader->id();
  c.net.crash(old_id);
  leader->stop();
  c.sim.run_for(3 * kSecond);
  RaftNode* successor = c.leader();
  ASSERT_NE(successor, nullptr);
  EXPECT_NE(successor->id(), old_id);
}

TEST(LeadershipTransfer, TransfereeBecomesLeaderPromptly) {
  Cluster c(5, {});
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  PeerId target = kNoPeer;
  for (auto& n : c.nodes) {
    if (n.get() != leader) target = n->id();
  }
  // Commit something so logs are non-trivial.
  leader->propose(Bytes{1});
  c.sim.run_for(200 * kMillisecond);

  const SimTime asked = c.sim.now();
  ASSERT_TRUE(leader->transfer_leadership(target));
  c.sim.run_for(2 * kSecond);
  RaftNode* new_leader = c.leader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_EQ(new_leader->id(), target);
  // Transfer is fast: one RTT for TimeoutNow + one election round, far
  // below an election timeout.
  EXPECT_LT(c.nodes[target]->current_term(), leader->current_term() + 3);
  (void)asked;
}

TEST(LeadershipTransfer, RejectedWhenNotLeaderOrNotMember) {
  Cluster c(3, {});
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  for (auto& n : c.nodes) {
    if (n.get() != leader) {
      EXPECT_FALSE(n->transfer_leadership(leader->id()));
    }
  }
  EXPECT_FALSE(leader->transfer_leadership(99));        // not a member
  EXPECT_FALSE(leader->transfer_leadership(leader->id()));  // self
}

TEST(LeadershipTransfer, WorksUnderPreVote) {
  Cluster c(5, prevote_opts(), 17);
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  PeerId target = kNoPeer;
  for (auto& n : c.nodes) {
    if (n.get() != leader) target = n->id();
  }
  ASSERT_TRUE(leader->transfer_leadership(target));
  c.sim.run_for(2 * kSecond);
  ASSERT_NE(c.leader(), nullptr);
  EXPECT_EQ(c.leader()->id(), target);
}

}  // namespace
}  // namespace p2pfl::raft
