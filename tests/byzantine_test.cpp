// Byzantine detection on the actor path: inconsistent SAC shares are
// caught by the commit/echo cross-check and attributed to the sender,
// upload equivocation is caught by the FedAvg leader's digest pinning,
// suspects are excluded from the next round, honest peers never trip
// detection, and the detection framing obeys its closed-form wire
// sizes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/two_layer_agg.hpp"
#include "robust/attack.hpp"
#include "secagg/wire.hpp"

namespace p2pfl::core {
namespace {

struct ByzHarness {
  ByzHarness(std::size_t peers, std::size_t groups, AggregationConfig cfg,
             const robust::ByzantineRegistry* registry,
             std::uint64_t seed = 9, bool detect = true)
      : topo(Topology::even(peers, groups)),
        sim(seed),
        net(sim, {.base_latency = 15 * kMillisecond}) {
    cfg.detect_byzantine = detect;
    cfg.byzantine = registry;
    for (PeerId p : topo.all_peers()) {
      hosts.emplace(p, std::make_unique<net::PeerHost>());
      net.attach(p, hosts.at(p).get());
    }
    agg = std::make_unique<TwoLayerAggregator>(
        topo, cfg, net, [this](PeerId p) -> net::PeerHost& {
          return *hosts.at(p);
        });
    agg->on_global_model = [this](std::uint64_t, const secagg::Vector& g,
                                  std::size_t used) {
      global = g;
      groups_used = used;
    };
    agg->on_suspect = [this](std::uint64_t round, PeerId p) {
      suspected.emplace_back(round, p);
    };
  }

  void begin(std::uint64_t round) {
    RoundLeadership lead;
    lead.subgroup_leaders = topo.designated_leaders();
    lead.fedavg_leader = lead.subgroup_leaders.front();
    agg->begin_round(round, lead, [](PeerId p) {
      return secagg::Vector(4, static_cast<float>(p + 1));
    });
  }

  std::uint64_t counter(const char* key) {
    return sim.obs().metrics.counter(key).value();
  }

  Topology topo;
  sim::Simulator sim;
  net::Network net;
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  std::unique_ptr<TwoLayerAggregator> agg;
  std::optional<secagg::Vector> global;
  std::size_t groups_used = 0;
  std::vector<std::pair<std::uint64_t, PeerId>> suspected;
};

TEST(ByzantineDetection, InconsistentSharesAttributedToSender) {
  // Groups of 4: the attacker perturbs the bundles for a strict subset
  // of holders, so holders see diverging commitments.
  robust::ByzantineRegistry registry;
  ByzHarness h(12, 3, {}, &registry);
  const PeerId victim = h.topo.group(0)[1];  // a follower
  registry.activate(victim,
                    {robust::AttackKind::kInconsistentShares, 10.0});
  h.begin(1);
  h.sim.run();
  ASSERT_TRUE(h.global.has_value());
  ASSERT_FALSE(h.suspected.empty());
  for (const auto& [round, p] : h.suspected) EXPECT_EQ(p, victim);
  EXPECT_EQ(h.agg->suspects().count(victim), 1u);
  EXPECT_GE(h.counter("byzantine.suspected"), 1u);
  EXPECT_GE(h.counter("byzantine.inconsistent_bundles_sent"), 1u);
}

TEST(ByzantineDetection, SuspectExcludedFromNextRound) {
  robust::ByzantineRegistry registry;
  ByzHarness h(12, 3, {}, &registry);
  const PeerId victim = h.topo.group(0)[1];  // contributes 2.0
  registry.activate(victim,
                    {robust::AttackKind::kInconsistentShares, 10.0});
  h.begin(1);
  h.sim.run();
  ASSERT_EQ(h.agg->suspects().count(victim), 1u);
  // Round 2 runs without the suspect: the global is the exact mean of
  // the 11 honest contributions (sum 1..12 minus the victim's 2).
  h.global.reset();
  h.begin(2);
  h.sim.run();
  ASSERT_TRUE(h.global.has_value());
  EXPECT_EQ(h.groups_used, 3u);
  EXPECT_NEAR((*h.global)[0], (78.0f - 2.0f) / 11.0f, 1e-4f);
}

TEST(ByzantineDetection, UploadEquivocationCaughtAndFirstStoryKept) {
  robust::ByzantineRegistry registry;
  AggregationConfig cfg;
  cfg.collect_timeout = 10 * kSecond;
  cfg.upload_retry = 500 * kMillisecond;
  ByzHarness h(9, 3, cfg, &registry);
  // Group 1's leader equivocates across upload retries. Stall the round
  // (slow group-2 upload link) so retries actually happen.
  const PeerId liar = h.topo.group(1).front();
  registry.activate(liar, {robust::AttackKind::kEquivocate, 10.0});
  h.net.set_link_delay(h.topo.group(2).front(), h.topo.group(0).front(),
                       2 * kSecond);
  h.begin(1);
  h.sim.run_for(15 * kSecond);
  ASSERT_TRUE(h.global.has_value());
  EXPECT_GE(h.counter("byzantine.upload_equivocations"), 1u);
  EXPECT_EQ(h.agg->suspects().count(liar), 1u);
  // The FedAvg leader pinned the first (honest) upload, so the global
  // is still the clean mean of all 9 contributions.
  EXPECT_NEAR((*h.global)[0], 5.0f, 1e-4f);
}

TEST(ByzantineDetection, HonestRunsHaveZeroFalsePositives) {
  // Detection on, nobody adversarial: across several rounds no suspect
  // is ever produced and the global matches the detection-off run
  // bit-exactly (commitments are framing, not data).
  robust::ByzantineRegistry registry;
  ByzHarness detect_on(9, 3, {}, &registry);
  ByzHarness reference(9, 3, {}, nullptr, 9, /*detect=*/false);
  for (std::uint64_t r = 1; r <= 3; ++r) {
    detect_on.begin(r);
    detect_on.sim.run();
    reference.begin(r);
    reference.sim.run();
    ASSERT_TRUE(detect_on.global.has_value());
    ASSERT_TRUE(reference.global.has_value());
    EXPECT_EQ(*detect_on.global, *reference.global) << "round " << r;
  }
  EXPECT_TRUE(detect_on.suspected.empty());
  EXPECT_TRUE(detect_on.agg->suspects().empty());
  EXPECT_EQ(detect_on.counter("byzantine.share_check_failed"), 0u);
  EXPECT_EQ(detect_on.counter("byzantine.suspected"), 0u);
}

TEST(ByzantineDetection, DetectionFramingMatchesClosedForms) {
  secagg::SacShareMsg share;
  share.round = 5;
  share.from_pos = 1;
  share.parts = {{0, secagg::Vector(6, 1.0f)},
                 {2, secagg::Vector(6, 2.0f)}};
  share.commit = {secagg::wire::share_digest(share.parts[0].second),
                  secagg::wire::share_digest(share.parts[1].second),
                  7u};
  const std::size_t encoded = secagg::wire::encode(share).size();
  EXPECT_EQ(encoded, secagg::wire::kShareHeader +
                         2 * (secagg::wire::kPerPartHeader + 4 * 6) +
                         secagg::wire::kCommitPrefix +
                         3 * secagg::wire::kCommitPerShare);
  EXPECT_EQ(encoded,
            secagg::wire::share_wire(2, 4 * 6, 6, share.commit.size()).wire);

  secagg::SacCommitEchoMsg echo;
  echo.round = 5;
  echo.from_pos = 2;
  echo.digests = {1u, 2u, 3u, 4u};
  echo.bad = {0, 1, 0, 0};
  const std::size_t echo_encoded = secagg::wire::encode(echo).size();
  EXPECT_EQ(echo_encoded,
            secagg::wire::kEchoHeader + 4 * secagg::wire::kEchoPerPos);
  EXPECT_EQ(echo_encoded, secagg::wire::echo_wire(4).wire);
  // Detection traffic is pure overhead in the Eq. (4)/(5) sense.
  EXPECT_EQ(secagg::wire::echo_wire(4).payload, 0u);
}

}  // namespace
}  // namespace p2pfl::core
