// Edge cases for the support layers: parallel helpers, logging levels,
// timer mode switches, mux prefix subtleties.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "net/mux.hpp"
#include "sim/timer.hpp"

namespace p2pfl {
namespace {

net::Envelope make_env(PeerId from, PeerId to, std::string kind,
                       std::any body, std::uint64_t wire_bytes) {
  net::Envelope env;
  env.from = from;
  env.to = to;
  env.kind = std::move(kind);
  env.body = std::move(body);
  env.wire_bytes = wire_bytes;
  return env;
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, ChunkedPartitionIsDisjointAndComplete) {
  std::vector<std::atomic<int>> hits(503);  // prime, uneven chunks
  parallel_for_chunked(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, WorkerOverrideRoundTrips) {
  const std::size_t before = parallel_workers();
  set_parallel_workers(3);
  EXPECT_EQ(parallel_workers(), 3u);
  std::atomic<long> sum{0};
  parallel_for(0, 100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 4950);
  set_parallel_workers(0);  // restore hardware default
  EXPECT_EQ(parallel_workers(), before == 0 ? parallel_workers() : before);
}

TEST(Log, LevelGatingAndRestore) {
  const LogLevel old_level = Log::level();
  Log::set_level(LogLevel::kError);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
  // Streaming through a disabled level must not crash or emit.
  P2PFL_ERROR() << "suppressed " << 42;
  Log::set_level(old_level);
}

TEST(Timer, PeriodicThenOneShotSwitch) {
  sim::Simulator sim(1);
  int fires = 0;
  sim::Timer t(sim, [&] { ++fires; });
  t.arm_periodic(10);
  sim.run_until(25);  // fires at 10, 20
  EXPECT_EQ(fires, 2);
  t.arm(100);  // switch to one-shot, cancels the periodic chain
  sim.run_until(500);
  EXPECT_EQ(fires, 3);
}

TEST(Timer, CancelInsideOwnCallbackIsSafe) {
  sim::Simulator sim(1);
  int fires = 0;
  sim::Timer t(sim, [&] {
    ++fires;
    t.cancel();  // no pending event: must be a no-op
  });
  t.arm(5);
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(PeerHost, PrefixBoundaryMatching) {
  net::PeerHost host;
  std::vector<std::string> hits;
  host.route("agg", [&](const net::Envelope& e) { hits.push_back("agg:" + e.kind); });
  host.route("agg/upload", [&](const net::Envelope& e) {
    hits.push_back("up:" + e.kind);
  });
  host.deliver(make_env(0, 1, "agg/upload", {}, 0));   // longest wins
  host.deliver(make_env(0, 1, "agg/result", {}, 0));   // falls to "agg"
  host.deliver(make_env(0, 1, "aggregate", {}, 0));    // prefix "agg"
  host.deliver(make_env(0, 1, "ag", {}, 0));           // no match
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], "up:agg/upload");
  EXPECT_EQ(hits[1], "agg:agg/result");
  EXPECT_EQ(hits[2], "agg:aggregate");
}

TEST(PeerHost, ReRouteReplacesHandler) {
  net::PeerHost host;
  int a = 0, b = 0;
  host.route("x/", [&](const net::Envelope&) { ++a; });
  host.route("x/", [&](const net::Envelope&) { ++b; });
  host.deliver(make_env(0, 1, "x/y", {}, 0));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

}  // namespace
}  // namespace p2pfl
