// Slab-pool / generation-tag stress for the simulator kernel: churns
// over a million schedule/cancel cycles (the Raft timer-reset pattern at
// scale) and asserts that
//  - a stale EventId whose pool slot was recycled can never cancel or
//    double-fire the slot's new occupant (generation tags),
//  - every non-cancelled event fires exactly once,
//  - pool and queue memory plateau instead of growing with churn
//    (free-list recycling + lazy stale-entry compaction).
// Runs in the fast tier-1 suite, so CI also executes it under ASan/UBSan
// where a use-after-free in the recycling path would be caught directly.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/simulator.hpp"

namespace p2pfl::sim {
namespace {

TEST(SimPoolStress, StaleIdsNeverTouchRecycledSlots) {
  Simulator sim(7);
  constexpr std::uint64_t kCycles = 1'200'000;
  std::uint64_t fires = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t slot_reuses = 0;

  for (std::uint64_t i = 0; i < kCycles; ++i) {
    const SimDuration delay = static_cast<SimDuration>((i * 97) % 4096);
    const EventId id = sim.schedule_after(delay, [&] { ++fires; });
    ++scheduled;
    if (i % 2 == 0) {
      // Cancel immediately (timer re-arm): the slot is freed and must be
      // recyclable without the stale id reaching the next occupant.
      ASSERT_TRUE(sim.cancel(id));
      ASSERT_FALSE(sim.cancel(id));  // double-cancel is reported
      ++cancelled;
      const EventId fresh = sim.schedule_after(delay, [&] { ++fires; });
      ++scheduled;
      if (Simulator::slot_of(fresh) == Simulator::slot_of(id)) ++slot_reuses;
      // The stale id aliases the recycled slot but carries the old
      // generation: it must neither cancel nor otherwise disturb the
      // new occupant.
      ASSERT_FALSE(sim.cancel(id));
    }
    if (i % 64 == 63) {
      // Rotate the wheel so slots churn across buckets, not just one.
      sim.run_for(2 * 4096);
    }
  }
  sim.run();

  // Exactly-once firing: any stale-id cancellation leaking through, or
  // any double fire from a recycled slot, breaks this equality.
  EXPECT_EQ(fires, scheduled - cancelled);
  EXPECT_EQ(sim.pending(), 0u);
  // The free list was genuinely exercised (LIFO reuse makes the freshly
  // freed slot the next allocation in the common case).
  EXPECT_GT(slot_reuses, kCycles / 4);
  // Memory plateaus: ~10^6 churn cycles must not grow the slab past the
  // live high-water (~100 events between drains) plus free-list slack,
  // nor leave more queue entries than live + compaction slack.
  EXPECT_LE(sim.pool_slot_count(), 1024u);
  EXPECT_LE(sim.queued_entry_count(), 4096u);
}

TEST(SimPoolStress, FiredIdsAreNotCancellableAndDoNotAliasSuccessors) {
  Simulator sim(11);
  // Fire an event, let its slot be recycled, and verify the fired id is
  // dead forever while the successor behaves normally.
  bool first = false;
  const EventId a = sim.schedule_after(10, [&] { first = true; });
  sim.run();
  ASSERT_TRUE(first);
  EXPECT_FALSE(sim.cancel(a));  // already fired

  bool second = false;
  const EventId b = sim.schedule_after(10, [&] { second = true; });
  // LIFO free list: the successor reuses the fired event's slot with a
  // bumped generation.
  EXPECT_EQ(Simulator::slot_of(a), Simulator::slot_of(b));
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.cancel(a));  // stale id, recycled slot: still inert
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(second);
}

}  // namespace
}  // namespace p2pfl::sim
