#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/two_layer_raft.hpp"

namespace p2pfl::core {
namespace {

TwoLayerRaftOptions fast_options() {
  TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = 50 * kMillisecond;   // T
  opts.raft.election_timeout_max = 100 * kMillisecond;  // 2T
  opts.fedavg_presence_poll = 100 * kMillisecond;
  opts.config_commit_interval = 200 * kMillisecond;
  return opts;
}

struct System {
  explicit System(std::size_t peers, std::size_t groups,
                  std::uint64_t seed = 42)
      : sim(seed),
        net(sim, {.base_latency = 15 * kMillisecond}),
        sys(Topology::even(peers, groups), fast_options(), net) {}

  /// Run until stabilized() or the deadline; returns success.
  bool run_until_stable(SimDuration budget = 10 * kSecond) {
    const SimTime deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      if (sys.stabilized()) return true;
      sim.run_for(20 * kMillisecond);
    }
    return sys.stabilized();
  }

  sim::Simulator sim;
  net::Network net;
  TwoLayerRaftSystem sys;
};

TEST(TwoLayerRaft, StabilizesFromColdStart) {
  System s(9, 3);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  // One leader per subgroup; the FedAvg membership is exactly them.
  std::vector<PeerId> leaders;
  for (SubgroupId g = 0; g < 3; ++g) {
    const PeerId l = s.sys.subgroup_leader(g);
    ASSERT_NE(l, kNoPeer);
    leaders.push_back(l);
  }
  auto members = s.sys.fedavg_members();
  std::sort(members.begin(), members.end());
  std::sort(leaders.begin(), leaders.end());
  EXPECT_EQ(members, leaders);
  // The FedAvg leader is one of the subgroup leaders.
  EXPECT_NE(std::find(leaders.begin(), leaders.end(), s.sys.fedavg_leader()),
            leaders.end());
}

TEST(TwoLayerRaft, PaperScaleTwentyFivePeersStabilizes) {
  // §VI-B: five subgroups of five peers.
  System s(25, 5, 7);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable(20 * kSecond));
  EXPECT_EQ(s.sys.fedavg_members().size(), 5u);
}

TEST(TwoLayerRaft, SubgroupLeaderCrashIsRepairedAndReplacedInFedAvg) {
  System s(9, 3);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  // Pick a subgroup leader that is NOT the FedAvg leader (§V-A1 case).
  const PeerId fed = s.sys.fedavg_leader();
  PeerId victim = kNoPeer;
  SubgroupId victim_group = 0;
  for (SubgroupId g = 0; g < 3; ++g) {
    if (s.sys.subgroup_leader(g) != fed) {
      victim = s.sys.subgroup_leader(g);
      victim_group = g;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  s.sys.crash_peer(victim);
  ASSERT_TRUE(s.run_until_stable());
  const PeerId successor = s.sys.subgroup_leader(victim_group);
  EXPECT_NE(successor, kNoPeer);
  EXPECT_NE(successor, victim);
  const auto members = s.sys.fedavg_members();
  EXPECT_NE(std::find(members.begin(), members.end(), successor),
            members.end());
  EXPECT_EQ(std::find(members.begin(), members.end(), victim),
            members.end());
}

TEST(TwoLayerRaft, FedAvgLeaderCrashTriggersDoubleRecovery) {
  // §V-B1: the FedAvg leader is also a subgroup leader; both layers must
  // re-elect and the new subgroup leader must join.
  System s(9, 3, 11);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  const PeerId old_fed = s.sys.fedavg_leader();
  const SubgroupId group = s.sys.topology().subgroup_of(old_fed);
  s.sys.crash_peer(old_fed);
  ASSERT_TRUE(s.run_until_stable());
  const PeerId new_fed = s.sys.fedavg_leader();
  EXPECT_NE(new_fed, kNoPeer);
  EXPECT_NE(new_fed, old_fed);
  const PeerId new_sub = s.sys.subgroup_leader(group);
  EXPECT_NE(new_sub, kNoPeer);
  EXPECT_NE(new_sub, old_fed);
  const auto members = s.sys.fedavg_members();
  EXPECT_NE(std::find(members.begin(), members.end(), new_sub),
            members.end());
  EXPECT_EQ(std::find(members.begin(), members.end(), old_fed),
            members.end());
}

TEST(TwoLayerRaft, SubgroupFollowerCrashIsHarmless) {
  System s(9, 3, 13);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  // Crash a pure follower (neither subgroup leader nor FedAvg member).
  PeerId victim = kNoPeer;
  for (PeerId p : s.sys.topology().all_peers()) {
    bool is_leader = false;
    for (SubgroupId g = 0; g < 3; ++g) {
      if (s.sys.subgroup_leader(g) == p) is_leader = true;
    }
    if (!is_leader) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  const PeerId fed_before = s.sys.fedavg_leader();
  s.sys.crash_peer(victim);
  s.sim.run_for(2 * kSecond);
  EXPECT_TRUE(s.sys.stabilized());
  EXPECT_EQ(s.sys.fedavg_leader(), fed_before);
}

TEST(TwoLayerRaft, CrashedLeaderRestartsAsFollower) {
  System s(9, 3, 17);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  const PeerId fed = s.sys.fedavg_leader();
  PeerId victim = kNoPeer;
  for (SubgroupId g = 0; g < 3; ++g) {
    if (s.sys.subgroup_leader(g) != fed) victim = s.sys.subgroup_leader(g);
  }
  s.sys.crash_peer(victim);
  ASSERT_TRUE(s.run_until_stable());
  s.sys.restart_peer(victim);
  s.sim.run_for(3 * kSecond);
  EXPECT_TRUE(s.sys.stabilized());
  EXPECT_FALSE(s.sys.subgroup_node(victim).is_leader());
  // The restarted peer was replaced in the FedAvg layer and stays out.
  const auto members = s.sys.fedavg_members();
  EXPECT_EQ(std::find(members.begin(), members.end(), victim),
            members.end());
}

TEST(TwoLayerRaft, FedAvgConfigPropagatesToSubgroupFollowers) {
  System s(9, 3, 19);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  s.sim.run_for(2 * kSecond);  // a few config-commit intervals
  auto expected = s.sys.fedavg_members();
  std::sort(expected.begin(), expected.end());
  for (PeerId p : s.sys.topology().all_peers()) {
    auto known = s.sys.known_fedavg_config(p);
    std::sort(known.begin(), known.end());
    EXPECT_EQ(known, expected) << "peer " << p;
  }
}

TEST(TwoLayerRaft, ToleratesFollowerMinorityInEverySubgroup) {
  // §VII-D optimistic case: every subgroup can lose a follower minority.
  System s(15, 3, 23);  // subgroups of five
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  std::size_t crashed = 0;
  for (SubgroupId g = 0; g < 3; ++g) {
    std::size_t in_group = 0;
    for (PeerId p : s.sys.topology().group(g)) {
      if (p != s.sys.subgroup_leader(g) && in_group < 2) {
        s.sys.crash_peer(p);
        ++in_group;
        ++crashed;
      }
    }
  }
  EXPECT_EQ(crashed, 6u);
  s.sim.run_for(3 * kSecond);
  EXPECT_TRUE(s.sys.stabilized());
}

TEST(TwoLayerRaft, SequentialLeaderCrashesKeepRecovering) {
  System s(9, 3, 29);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  // Crash the current FedAvg leader twice in a row (each subgroup of 3
  // tolerates one crash).
  for (int wave = 0; wave < 2; ++wave) {
    const PeerId fed = s.sys.fedavg_leader();
    ASSERT_NE(fed, kNoPeer) << "wave " << wave;
    s.sys.crash_peer(fed);
    ASSERT_TRUE(s.run_until_stable(20 * kSecond)) << "wave " << wave;
  }
}

TEST(TwoLayerRaft, HooksFireWithTimestamps) {
  System s(9, 3, 31);
  std::vector<SimTime> sub_elections, fed_elections, joins;
  s.sys.on_subgroup_leader = [&](SubgroupId, PeerId) {
    sub_elections.push_back(s.sim.now());
  };
  s.sys.on_fedavg_leader = [&](PeerId) {
    fed_elections.push_back(s.sim.now());
  };
  s.sys.on_fedavg_joined = [&](PeerId) { joins.push_back(s.sim.now()); };
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());
  EXPECT_GE(sub_elections.size(), 3u);
  EXPECT_GE(fed_elections.size(), 1u);
  // Cold start: designated bootstrap members may already be in config,
  // so joins only happen for non-designated first leaders.
  const PeerId fed = s.sys.fedavg_leader();
  PeerId victim = kNoPeer;
  SubgroupId vg = 0;
  for (SubgroupId g = 0; g < 3; ++g) {
    if (s.sys.subgroup_leader(g) != fed) {
      victim = s.sys.subgroup_leader(g);
      vg = g;
    }
  }
  joins.clear();
  const SimTime crash_time = s.sim.now();
  s.sys.crash_peer(victim);
  ASSERT_TRUE(s.run_until_stable());
  ASSERT_GE(joins.size(), 1u);
  EXPECT_GT(joins.back(), crash_time);
  EXPECT_NE(s.sys.subgroup_leader(vg), victim);
}

TEST(TwoLayerRaft, LongRunCompactsConfigLogsAndLateJoinerRecovers) {
  // The subgroup leader commits the FedAvg config every 200 ms; over a
  // long run the logs must stay bounded via snapshots, and a peer that
  // slept through most of it must recover the config from a snapshot.
  System s(9, 3, 41);
  s.sys.start_all();
  ASSERT_TRUE(s.run_until_stable());

  // Crash a pure follower early.
  PeerId victim = kNoPeer;
  for (PeerId p : s.sys.topology().all_peers()) {
    bool leader = false;
    for (SubgroupId g = 0; g < 3; ++g) {
      if (s.sys.subgroup_leader(g) == p) leader = true;
    }
    if (!leader) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  s.sys.crash_peer(victim);

  s.sim.run_for(60 * kSecond);  // ~300 config commits
  const SubgroupId vg = s.sys.topology().subgroup_of(victim);
  const PeerId leader = s.sys.subgroup_leader(vg);
  ASSERT_NE(leader, kNoPeer);
  raft::RaftNode& leader_node = s.sys.subgroup_node(leader);
  EXPECT_GT(leader_node.snapshot_index(), 0u) << "log never compacted";
  EXPECT_LE(leader_node.last_log_index() - leader_node.snapshot_index(),
            2 * 64u)
      << "log grew unboundedly";

  s.sys.restart_peer(victim);
  s.sim.run_for(5 * kSecond);
  EXPECT_TRUE(s.sys.stabilized());
  auto expected = s.sys.fedavg_members();
  auto known = s.sys.known_fedavg_config(victim);
  std::sort(expected.begin(), expected.end());
  std::sort(known.begin(), known.end());
  EXPECT_EQ(known, expected);
}

// --- crash durability ----------------------------------------------------

/// Like System, but every Raft instance persists through a WAL under a
/// fresh per-test directory, and the TwoLayerRaftSystem can be torn
/// down and rebuilt over the same directory (a full process restart).
struct DurableSystem {
  explicit DurableSystem(std::size_t peers, std::size_t groups,
                         std::uint64_t seed = 42)
      : dir(fresh_dir()),
        peers(peers),
        groups(groups),
        sim(seed),
        net(sim, {.base_latency = 15 * kMillisecond}) {
    build();
  }

  static std::string fresh_dir() {
    static int counter = 0;
    return testing::TempDir() + "tlr_durable_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter++);
  }

  void build() {
    TwoLayerRaftOptions opts = fast_options();
    opts.storage_dir = dir;
    sys = std::make_unique<TwoLayerRaftSystem>(
        Topology::even(peers, groups), opts, net);
  }

  /// Process restart: destroy every in-memory instance, rebuild the
  /// whole system from the write-ahead logs.
  void reboot() {
    sys.reset();
    build();
    sys->start_all();
  }

  bool run_until_stable(SimDuration budget = 10 * kSecond) {
    const SimTime deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      if (sys->stabilized()) return true;
      sim.run_for(20 * kMillisecond);
    }
    return sys->stabilized();
  }

  std::string dir;
  std::size_t peers;
  std::size_t groups;
  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<TwoLayerRaftSystem> sys;
};

TEST(TwoLayerRaftDurable, RestartReplaysWalWithoutStateTransfer) {
  DurableSystem s(9, 3);
  s.sys->start_all();
  ASSERT_TRUE(s.run_until_stable());
  s.sim.run_for(2 * kSecond);  // accumulate config commits in every log

  // Crash a follower briefly (shorter than the suspicion grace, so it is
  // not evicted while down).
  const SubgroupId g = 0;
  PeerId victim = kNoPeer;
  for (PeerId p : s.sys->topology().group(g)) {
    if (p != s.sys->subgroup_leader(g)) victim = p;
  }
  ASSERT_NE(victim, kNoPeer);
  const raft::Term term_before =
      s.sys->subgroup_node(victim).current_term();
  const raft::Index log_before =
      s.sys->subgroup_node(victim).last_log_index();
  ASSERT_GT(log_before, 0u);

  s.sys->crash_peer(victim);
  s.sim.run_for(300 * kMillisecond);
  s.sys->restart_peer(victim);

  // Durable mode rebuilt the node object from its WAL: the persisted
  // term and log survived the "process" death.
  raft::RaftNode& revived = s.sys->subgroup_node(victim);
  EXPECT_TRUE(revived.recovered_from_storage());
  EXPECT_GE(revived.current_term(), term_before);
  EXPECT_GE(revived.last_log_index(), log_before);

  ASSERT_TRUE(s.run_until_stable());
  s.sim.run_for(2 * kSecond);
  // The intact log caught up by plain replication — no snapshot install
  // (state transfer) was needed.
  EXPECT_EQ(s.sys->subgroup_node(victim).metrics().snapshot_installs, 0u);
  const PeerId leader = s.sys->subgroup_leader(g);
  ASSERT_NE(leader, kNoPeer);
  EXPECT_GE(s.sys->subgroup_node(victim).commit_index(),
            s.sys->subgroup_node(leader).snapshot_index());
}

TEST(TwoLayerRaftDurable, AmnesiaRestartDeletesTheWal) {
  DurableSystem s(9, 3);
  s.sys->start_all();
  ASSERT_TRUE(s.run_until_stable());
  s.sim.run_for(kSecond);

  const SubgroupId g = 1;
  PeerId victim = kNoPeer;
  for (PeerId p : s.sys->topology().group(g)) {
    if (p != s.sys->subgroup_leader(g)) victim = p;
  }
  ASSERT_NE(victim, kNoPeer);
  s.sys->crash_peer(victim);
  s.sim.run_for(300 * kMillisecond);
  s.sys->restart_peer_amnesia(victim);

  // Amnesia is literal: the WAL is gone, nothing was recovered, and the
  // blank node waits for the rejoin handshake.
  raft::RaftNode& blank = s.sys->subgroup_node(victim);
  EXPECT_FALSE(blank.recovered_from_storage());
  EXPECT_EQ(blank.current_term(), 0u);
  ASSERT_TRUE(s.run_until_stable(20 * kSecond));
  // After rejoining, the re-learned state persists again: a plain
  // durable restart now recovers it.
  s.sim.run_for(2 * kSecond);
  s.sys->crash_peer(victim);
  s.sim.run_for(300 * kMillisecond);
  s.sys->restart_peer(victim);
  EXPECT_TRUE(s.sys->subgroup_node(victim).recovered_from_storage());
  ASSERT_TRUE(s.run_until_stable(20 * kSecond));
}

TEST(TwoLayerRaftDurable, WholeClusterRebootsFromWals) {
  DurableSystem s(9, 3);
  s.sys->start_all();
  ASSERT_TRUE(s.run_until_stable());
  s.sim.run_for(3 * kSecond);
  std::vector<raft::Index> log_before;
  std::vector<raft::Term> term_before;
  for (PeerId p = 0; p < 9; ++p) {
    log_before.push_back(s.sys->subgroup_node(p).last_log_index());
    term_before.push_back(s.sys->subgroup_node(p).current_term());
  }

  // Kill the whole process and bring it back over the same directory.
  s.reboot();

  for (PeerId p = 0; p < 9; ++p) {
    raft::RaftNode& node = s.sys->subgroup_node(p);
    EXPECT_TRUE(node.recovered_from_storage()) << "peer " << p;
    EXPECT_GE(node.last_log_index(), log_before[p]) << "peer " << p;
    // Recovered terms forbid time travel: no revived node may grant a
    // vote it already cast or accept a stale leader.
    EXPECT_GE(node.current_term(), term_before[p]) << "peer " << p;
  }
  // Leadership re-randomizes after a full reboot (every node comes back
  // a follower), so assert structure, not identity: stabilized() checks
  // one leader per subgroup with the FedAvg membership exactly them.
  ASSERT_TRUE(s.run_until_stable(20 * kSecond));
  EXPECT_EQ(s.sys->fedavg_members().size(), 3u);
}

}  // namespace
}  // namespace p2pfl::core
