// Frame-layer edge cases for the TCP transport: header round-trips,
// strict rejection of damaged frames, and stream reassembly under
// adversarial chunking (partial reads, coalesced frames, length
// prefixes split across reads, oversized-length poisoning).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/wire.hpp"
#include "net/tcp/frame.hpp"

namespace p2pfl::net::tcp {
namespace {

Envelope sample_envelope() {
  core::wire::register_codecs();
  core::wire::AggResultMsg msg;
  msg.round = 7;
  msg.model = {1.5f, -2.0f, 0.25f};
  Envelope env;
  env.from = 3;
  env.to = 9;
  env.kind = "agg/result";
  env.body = msg;
  env.wire_bytes = core::wire::kResultHeader + 4 * msg.model.size();
  env.payload_bytes = 4 * msg.model.size();
  env.modeled_delta = 0;
  env.span.round = 7;
  env.span.span = 41;
  env.dest_incarnation = 2;
  env.chaos_duplicate = false;
  return env;
}

TEST(TcpFrame, HeaderAndPayloadRoundTrip) {
  const Envelope env = sample_envelope();
  const Bytes body = encode_frame(env);
  const std::optional<Envelope> back = decode_frame(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from, env.from);
  EXPECT_EQ(back->to, env.to);
  EXPECT_EQ(back->kind, env.kind);
  EXPECT_EQ(back->wire_bytes, env.wire_bytes);
  EXPECT_EQ(back->payload_bytes, env.payload_bytes);
  EXPECT_EQ(back->modeled_delta, env.modeled_delta);
  EXPECT_EQ(back->dest_incarnation, env.dest_incarnation);
  EXPECT_EQ(back->span.round, env.span.round);
  EXPECT_EQ(back->span.span, env.span.span);
  EXPECT_EQ(back->chaos_duplicate, env.chaos_duplicate);
  const auto* msg = payload<core::wire::AggResultMsg>(back->body);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->round, 7u);
  EXPECT_EQ(msg->model, (secagg::Vector{1.5f, -2.0f, 0.25f}));
}

TEST(TcpFrame, NegativeModeledDeltaSurvives) {
  Envelope env = sample_envelope();
  env.modeled_delta = -12345;
  const std::optional<Envelope> back = decode_frame(encode_frame(env));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->modeled_delta, -12345);
}

TEST(TcpFrame, EveryStrictPrefixIsRejected) {
  const Bytes body = encode_frame(sample_envelope());
  for (std::size_t n = 0; n < body.size(); ++n) {
    const Bytes prefix(body.begin(),
                       body.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_FALSE(decode_frame(prefix).has_value()) << "prefix length " << n;
  }
}

TEST(TcpFrame, TrailingBytesAreRejected) {
  Bytes body = encode_frame(sample_envelope());
  body.push_back(0);
  EXPECT_FALSE(decode_frame(body).has_value());
}

TEST(TcpFrame, UnknownKindIsRejected) {
  Envelope env = sample_envelope();
  // Re-encode by hand with a kind that has no codec: decode must refuse.
  Bytes body = encode_frame(env);
  // Patch the kind in place: kind sits after from+to (8 bytes) as a
  // u32-length-prefixed string. Change "agg/result" -> "agg/resulx"
  // (same length, same family but unknown op).
  const std::string kind = "agg/result";
  bool patched = false;
  for (std::size_t i = 12; i + kind.size() <= body.size() && !patched; ++i) {
    if (std::equal(kind.begin(), kind.end(), body.begin() + i)) {
      body[i + kind.size() - 1] = 'x';
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  EXPECT_FALSE(decode_frame(body).has_value());
}

TEST(TcpFrame, AssemblerHandlesByteAtATimeDelivery) {
  const Bytes body = encode_frame(sample_envelope());
  Bytes stream;
  for (int i = 0; i < 3; ++i) append_length_prefixed(stream, body);
  FrameAssembler asem;
  std::vector<Bytes> frames;
  for (const std::uint8_t b : stream) {
    ASSERT_TRUE(asem.feed(&b, 1, [&](Bytes&& f) { frames.push_back(f); }));
  }
  ASSERT_EQ(frames.size(), 3u);
  for (const Bytes& f : frames) EXPECT_EQ(f, body);
  EXPECT_EQ(asem.buffered(), 0u);
}

TEST(TcpFrame, AssemblerHandlesCoalescedFramesInOneRead) {
  const Bytes a = encode_frame(sample_envelope());
  Envelope env2 = sample_envelope();
  env2.from = 1;
  const Bytes b = encode_frame(env2);
  Bytes stream;
  append_length_prefixed(stream, a);
  append_length_prefixed(stream, b);
  FrameAssembler asem;
  std::vector<Bytes> frames;
  ASSERT_TRUE(asem.feed(stream.data(), stream.size(),
                        [&](Bytes&& f) { frames.push_back(f); }));
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], a);
  EXPECT_EQ(frames[1], b);
}

TEST(TcpFrame, AssemblerHandlesPrefixSplitAcrossReads) {
  const Bytes body = encode_frame(sample_envelope());
  Bytes stream;
  append_length_prefixed(stream, body);
  FrameAssembler asem;
  std::vector<Bytes> frames;
  // Split inside the 4-byte length prefix, then inside the body.
  ASSERT_TRUE(asem.feed(stream.data(), 2,
                        [&](Bytes&& f) { frames.push_back(f); }));
  EXPECT_TRUE(frames.empty());
  ASSERT_TRUE(asem.feed(stream.data() + 2, 5,
                        [&](Bytes&& f) { frames.push_back(f); }));
  EXPECT_TRUE(frames.empty());
  ASSERT_TRUE(asem.feed(stream.data() + 7, stream.size() - 7,
                        [&](Bytes&& f) { frames.push_back(f); }));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], body);
}

TEST(TcpFrame, OversizedLengthPrefixPoisonsTheStream) {
  FrameAssembler asem(/*max_frame_bytes=*/1024);
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
  EXPECT_FALSE(asem.feed(huge, 4, [](Bytes&&) { FAIL(); }));
  // Poisoned: even valid bytes are refused afterwards.
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_FALSE(asem.feed(zero, 4, [](Bytes&&) { FAIL(); }));
}

TEST(TcpFrame, TruncationMidFrameKeepsBytesBuffered) {
  const Bytes body = encode_frame(sample_envelope());
  Bytes stream;
  append_length_prefixed(stream, body);
  FrameAssembler asem;
  // Feed all but the last byte: nothing delivered, everything buffered —
  // the connection dying here simply drops the half-frame.
  ASSERT_TRUE(
      asem.feed(stream.data(), stream.size() - 1, [](Bytes&&) { FAIL(); }));
  EXPECT_EQ(asem.buffered(), stream.size() - 1);
}

}  // namespace
}  // namespace p2pfl::net::tcp
