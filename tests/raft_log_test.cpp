// RaftLog unit tests (indexing, truncation, slicing, the §5.4.1
// up-to-date comparison, config tracking). Compaction-specific behaviour
// lives in raft_snapshot_test.cpp.
#include <gtest/gtest.h>

#include "raft/log.hpp"

namespace p2pfl::raft {
namespace {

LogEntry mk(Term t, EntryKind k = EntryKind::kCommand, Bytes data = {}) {
  LogEntry e;
  e.term = t;
  e.kind = k;
  e.data = std::move(data);
  return e;
}

TEST(RaftLog, EmptyLogSentinels) {
  RaftLog log;
  EXPECT_EQ(log.last_index(), 0u);
  EXPECT_EQ(log.last_term(), 0u);
  EXPECT_EQ(log.term_at(0), 0u);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.first_index(), 1u);
  EXPECT_FALSE(log.latest_config_index().has_value());
}

TEST(RaftLog, AppendAssignsOneBasedIndices) {
  RaftLog log;
  EXPECT_EQ(log.append(mk(1)), 1u);
  EXPECT_EQ(log.append(mk(1)), 2u);
  EXPECT_EQ(log.append(mk(2)), 3u);
  EXPECT_EQ(log.last_index(), 3u);
  EXPECT_EQ(log.last_term(), 2u);
  EXPECT_EQ(log.term_at(2), 1u);
}

TEST(RaftLog, TruncateFromRemovesSuffix) {
  RaftLog log;
  for (Term t = 1; t <= 5; ++t) log.append(mk(t));
  log.truncate_from(3);
  EXPECT_EQ(log.last_index(), 2u);
  EXPECT_EQ(log.last_term(), 2u);
  log.truncate_from(10);  // past-the-end is a no-op
  EXPECT_EQ(log.last_index(), 2u);
  log.truncate_from(1);  // everything
  EXPECT_TRUE(log.empty());
}

TEST(RaftLog, SliceClampsAndCopies) {
  RaftLog log;
  for (Term t = 1; t <= 5; ++t) {
    log.append(mk(t, EntryKind::kCommand, {static_cast<std::uint8_t>(t)}));
  }
  const auto s = log.slice(2, 2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].data[0], 2);
  EXPECT_EQ(s[1].data[0], 3);
  EXPECT_EQ(log.slice(5, 10).size(), 1u);
  EXPECT_TRUE(log.slice(6, 10).empty());
  EXPECT_TRUE(log.slice(0, 10).empty());
}

TEST(RaftLog, UpToDateComparison) {
  RaftLog log;
  log.append(mk(1));
  log.append(mk(3));
  // Higher last term wins regardless of length.
  EXPECT_TRUE(log.candidate_up_to_date(1, 4));
  EXPECT_FALSE(log.candidate_up_to_date(100, 2));
  // Equal last term: length decides.
  EXPECT_TRUE(log.candidate_up_to_date(2, 3));
  EXPECT_TRUE(log.candidate_up_to_date(3, 3));
  EXPECT_FALSE(log.candidate_up_to_date(1, 3));
}

TEST(RaftLog, LatestConfigIndexTracksAppendsAndTruncations) {
  RaftLog log;
  log.append(mk(1));
  log.append(mk(1, EntryKind::kConfig, encode_members({0, 1, 2})));
  log.append(mk(1));
  log.append(mk(2, EntryKind::kConfig, encode_members({0, 1, 2, 3})));
  ASSERT_TRUE(log.latest_config_index().has_value());
  EXPECT_EQ(*log.latest_config_index(), 4u);
  log.truncate_from(4);
  ASSERT_TRUE(log.latest_config_index().has_value());
  EXPECT_EQ(*log.latest_config_index(), 2u);
  EXPECT_EQ(decode_members(log.at(2).data),
            (std::vector<PeerId>{0, 1, 2}));
}

TEST(RaftLog, EncodeMembersSortsAndRoundTrips) {
  const Bytes b = encode_members({5, 1, 3});
  EXPECT_EQ(decode_members(b), (std::vector<PeerId>{1, 3, 5}));
  EXPECT_TRUE(decode_members(encode_members({})).empty());
}

TEST(RaftLog, OutOfRangeAccessThrows) {
  RaftLog log;
  log.append(mk(1));
  EXPECT_THROW(log.at(0), std::logic_error);
  EXPECT_THROW(log.at(2), std::logic_error);
  EXPECT_THROW(log.term_at(2), std::logic_error);
  EXPECT_THROW(log.truncate_from(0), std::logic_error);
}

}  // namespace
}  // namespace p2pfl::raft
