#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "analysis/cost_model.hpp"
#include "core/agg_cost_sim.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::analysis {
namespace {

TEST(SubgroupSizes, EvenSplit) {
  EXPECT_EQ(subgroup_sizes(30, 6),
            (std::vector<std::size_t>{5, 5, 5, 5, 5, 5}));
}

TEST(SubgroupSizes, RemainderSpreadEvenly) {
  // Fig. 13 caption example: N=30, m=4 -> two groups of 8, two of 7.
  EXPECT_EQ(subgroup_sizes(30, 4), (std::vector<std::size_t>{8, 8, 7, 7}));
}

TEST(SubgroupSizes, ByTargetSize) {
  // §VII-B: n=3, N=20 -> m=6 groups sized (4,4,3,3,3,3).
  EXPECT_EQ(subgroups_by_target_size(20, 3),
            (std::vector<std::size_t>{4, 4, 3, 3, 3, 3}));
}

TEST(CostModel, OneLayerSacQuadratic) {
  EXPECT_DOUBLE_EQ(one_layer_sac_cost(30), 2.0 * 30 * 29);
  EXPECT_DOUBLE_EQ(one_layer_sac_cost(10), 180.0);
}

TEST(CostModel, Eq4MatchesGeneralFormOnEvenGroups) {
  for (std::size_t m : {1u, 2u, 5u, 6u, 10u}) {
    for (std::size_t n : {2u, 3u, 5u, 8u}) {
      const std::vector<std::size_t> groups(m, n);
      EXPECT_DOUBLE_EQ(two_layer_cost(groups), two_layer_cost_eq4(m, n))
          << "m=" << m << " n=" << n;
    }
  }
}

TEST(CostModel, Eq5MatchesGeneralFormOnEvenGroups) {
  for (std::size_t m : {2u, 5u, 10u}) {
    for (std::size_t n : {3u, 5u}) {
      for (std::size_t k = 1; k <= n; ++k) {
        const std::vector<std::size_t> groups(m, n);
        EXPECT_DOUBLE_EQ(two_layer_ft_cost(groups, n, k),
                         two_layer_ft_cost_eq5(m * n, m, n, k))
            << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(CostModel, FtWithKEqualsNReducesToPlainTwoLayer) {
  for (std::size_t m : {1u, 3u, 6u}) {
    for (std::size_t n : {2u, 3u, 5u}) {
      const std::vector<std::size_t> groups(m, n);
      EXPECT_DOUBLE_EQ(two_layer_ft_cost(groups, n, n), two_layer_cost(groups));
    }
  }
}

// --- the paper's headline numbers --------------------------------------------

TEST(PaperNumbers, Fig13CostAtM6Is7_12Gb) {
  // §VII-A: N=30, m=6 -> 7.12 Gb with the 1.25M-parameter CNN.
  const ModelSize w;  // 1.25M params
  const auto groups = subgroup_sizes(30, 6);
  const double gb = w.gigabits_for(two_layer_cost(groups));
  EXPECT_NEAR(gb, 7.12, 0.005);
}

TEST(PaperNumbers, AboutTenfoldReductionAtM6) {
  const auto groups = subgroup_sizes(30, 6);
  const double ratio = one_layer_sac_cost(30) / two_layer_cost(groups);
  EXPECT_NEAR(ratio, 10.0, 0.3);  // "about one-tenth of the one-layer SAC"
}

TEST(PaperNumbers, Ratio884xForN3K3Peers20) {
  const auto groups = subgroups_by_target_size(20, 3);
  const double ratio = one_layer_sac_cost(20) / two_layer_ft_cost(groups, 3, 3);
  EXPECT_NEAR(ratio, 8.84, 0.01);
}

TEST(PaperNumbers, Ratio1475xForN3K3Peers30) {
  const auto groups = subgroups_by_target_size(30, 3);
  const double ratio = one_layer_sac_cost(30) / two_layer_ft_cost(groups, 3, 3);
  EXPECT_NEAR(ratio, 14.75, 0.01);
}

TEST(PaperNumbers, Ratio1036xForN3K2Peers30) {
  // The abstract's headline: 10.36x with fault tolerance at 30 peers.
  const auto groups = subgroups_by_target_size(30, 3);
  const double ratio = one_layer_sac_cost(30) / two_layer_ft_cost(groups, 3, 2);
  EXPECT_NEAR(ratio, 10.36, 0.01);
}

TEST(PaperNumbers, Ratio429xForN5K3Peers30) {
  const auto groups = subgroups_by_target_size(30, 5);
  const double ratio = one_layer_sac_cost(30) / two_layer_ft_cost(groups, 5, 3);
  EXPECT_NEAR(ratio, 4.29, 0.01);
}

TEST(PaperNumbers, Ratio2380xAnd8_24GbForN3K3Peers50) {
  const ModelSize w;
  const auto groups = subgroups_by_target_size(50, 3);
  const double units = two_layer_ft_cost(groups, 3, 3);
  EXPECT_NEAR(one_layer_sac_cost(50) / units, 23.80, 0.02);
  EXPECT_NEAR(w.gigabits_for(units), 8.24, 0.005);
  // The paper reports 196.13 Gb; with |w| = exactly 40 Mb the formula
  // gives 196.00 (their CNN has ~1,250,8xx params, rounded to 1.25M).
  EXPECT_NEAR(w.gigabits_for(one_layer_sac_cost(50)), 196.13, 0.2);
}

// --- multilayer (§VII-C) -------------------------------------------------------

TEST(Multilayer, PeerCountEq6) {
  EXPECT_EQ(multilayer_peers(3, 1), 3u);
  EXPECT_EQ(multilayer_peers(3, 2), 3u + 3u * 2u);
  EXPECT_EQ(multilayer_peers(3, 3), 3u + 6u + 12u);
  EXPECT_EQ(multilayer_peers(5, 2), 5u + 20u);
}

TEST(Multilayer, CostEq10) {
  for (std::size_t n : {3u, 4u, 5u}) {
    for (std::size_t layers : {1u, 2u, 3u}) {
      const double N = static_cast<double>(multilayer_peers(n, layers));
      EXPECT_DOUBLE_EQ(multilayer_cost(n, layers),
                       (N - 1.0) * (static_cast<double>(n) + 2.0));
    }
  }
}

TEST(Multilayer, SingleLayerConsistentWithTwoLayerFormula) {
  // X=1 is one SAC group of n peers plus the (n-1) result broadcast.
  // Eq. 10 gives (n-1)(n+2) = n^2+n-2 = two_layer_cost_eq4(1, n).
  for (std::size_t n : {3u, 5u, 7u}) {
    EXPECT_DOUBLE_EQ(multilayer_cost(n, 1), two_layer_cost_eq4(1, n));
  }
}

// --- fault tolerance (§VII-D) ---------------------------------------------------

TEST(FaultTolerance, RaftMajorities) {
  EXPECT_EQ(raft_tolerance(1), 0u);
  EXPECT_EQ(raft_tolerance(3), 1u);
  EXPECT_EQ(raft_tolerance(4), 1u);
  EXPECT_EQ(raft_tolerance(5), 2u);
}

TEST(FaultTolerance, OptimisticBound) {
  // m subgroups of n: each may lose a minority plus the leader slot is
  // refillable -> m(⌊(n-1)/2⌋ + 1).
  EXPECT_EQ(two_layer_optimistic_tolerance(5, 5), 5u * 3u);
  EXPECT_EQ(two_layer_optimistic_tolerance(6, 5), 18u);
}

TEST(FaultTolerance, FatalFedAvgLeaderCrashes) {
  EXPECT_EQ(fedavg_fatal_leader_crashes(5), 3u);
  EXPECT_EQ(fedavg_fatal_leader_crashes(3), 2u);
}

TEST(ModelSizeUnits, PaperCnnIs40MbPerTransfer) {
  const ModelSize w;
  EXPECT_EQ(w.bytes(), 5'000'000u);
  EXPECT_DOUBLE_EQ(w.megabits(), 40.0);
}

// --- closed form vs the metrics registry -----------------------------------

TEST(CostModelVsMetrics, Eq4MatchesNetSentPayloadCounter) {
  // Third, independent measurement of the Fig. 13 byte counts: the
  // network's metrics-registry payload counter (not TrafficStats) must
  // equal Eq. (4)'s closed form times the synthetic |w| in a fault-free
  // round. The total wire counter additionally carries the per-message
  // framing, so it strictly exceeds the model payload.
  for (const auto& [m, n] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 3}, {5, 5}, {6, 4}}) {
    const std::vector<std::size_t> groups(m, n);
    std::uint64_t metered_payload = 0;
    std::uint64_t metered_wire = 0;
    core::AggSimHooks hooks;
    hooks.on_finish = [&](sim::Simulator& s) {
      metered_payload = s.obs().metrics.counter("net.sent.payload").value();
      metered_wire = s.obs().metrics.counter("net.sent.bytes").value();
    };
    const auto breakdown = core::simulate_aggregation_cost(groups, 0, hooks);
    ASSERT_TRUE(breakdown.completed) << "m=" << m << " n=" << n;
    const double expected_units = two_layer_cost_eq4(m, n);
    EXPECT_EQ(metered_payload,
              static_cast<std::uint64_t>(expected_units) *
                  core::kCostSimModelWire)
        << "m=" << m << " n=" << n;
    EXPECT_GT(metered_wire, metered_payload) << "m=" << m << " n=" << n;
    // And the registry agrees with the per-kind TrafficStats total.
    EXPECT_DOUBLE_EQ(breakdown.total_units,
                     static_cast<double>(metered_payload) /
                         static_cast<double>(core::kCostSimModelWire));
  }
}

}  // namespace
}  // namespace p2pfl::analysis
