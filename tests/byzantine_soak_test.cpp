// Byzantine-under-churn soak on the full system: a persistent
// share-inconsistency adversary is detected, struck, denounced and
// evicted through the self-healing membership path while honest crash
// churn runs in the same window — across seeds, with zero honest peers
// suspected or banned, and with a fully deterministic timeline.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/system.hpp"
#include "robust/attack.hpp"

namespace p2pfl::core {
namespace {

struct SoakRun {
  std::size_t rounds_completed = 0;
  std::map<PeerId, std::size_t> strikes;
  std::uint64_t suspected = 0;
  std::uint64_t denounced = 0;
  std::uint64_t join_or_rejoin_refused = 0;
  PeerId adversary = kNoPeer;
  PeerId churn_victim = kNoPeer;
  bool adversary_banned = false;
  bool adversary_in_config = true;
  bool churn_victim_banned = true;
  bool churn_victim_in_config = false;
  bool any_honest_banned = false;
};

SoakRun run_soak(std::uint64_t seed) {
  constexpr std::size_t kPeers = 12, kGroups = 3;
  sim::Simulator sim(seed);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});

  fl::SyntheticSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 400;
  spec.test_samples = 120;
  spec.noise_scale = 0.6;
  Rng data_rng(seed);
  const fl::TrainTest data = fl::make_synthetic(spec, data_rng);
  const fl::PeerIndices parts =
      fl::partition_iid(data.train, kPeers, data_rng);

  robust::ByzantineRegistry registry;
  SystemConfig cfg;
  cfg.raft.raft.election_timeout_min = 50 * kMillisecond;
  cfg.raft.raft.election_timeout_max = 100 * kMillisecond;
  cfg.raft.fedavg_presence_poll = 100 * kMillisecond;
  cfg.round_interval = 1 * kSecond;
  cfg.train_duration = 100 * kMillisecond;
  cfg.learning_rate = 3e-3f;
  cfg.seed = seed;
  cfg.suspect_strike_limit = 2;
  cfg.agg.detect_byzantine = true;
  cfg.agg.byzantine = &registry;
  cfg.agg.robust.rule = robust::RobustRule::kTrimmedMean;
  P2pFlSystem sys(Topology::even(kPeers, kGroups), cfg, net, data.train,
                  data.test, parts, [] { return fl::Model::mlp(64, {16}); });
  sys.start();
  while (sys.rounds_completed() < 2 && sim.now() < 30 * kSecond) {
    sim.run_for(100 * kMillisecond);
  }

  SoakRun out;
  // Adversary: a pure follower; churn victim: an honest follower from a
  // different subgroup, crashed mid-soak and restarted later.
  for (PeerId p : sys.raft().topology().all_peers()) {
    bool leads = p == sys.raft().fedavg_leader();
    for (SubgroupId g = 0; g < kGroups; ++g) {
      if (sys.raft().subgroup_leader(g) == p) leads = true;
    }
    if (leads) continue;
    if (out.adversary == kNoPeer) {
      out.adversary = p;
    } else if (out.churn_victim == kNoPeer &&
               sys.raft().topology().subgroup_of(p) !=
                   sys.raft().topology().subgroup_of(out.adversary)) {
      out.churn_victim = p;
    }
  }
  registry.activate(out.adversary,
                    {robust::AttackKind::kInconsistentShares, 10.0});

  sim.run_for(4 * kSecond);
  sys.crash_peer(out.churn_victim);
  sim.run_for(8 * kSecond);
  sys.restart_peer(out.churn_victim);
  sim.run_for(20 * kSecond);

  out.rounds_completed = sys.rounds_completed();
  out.strikes = sys.strikes();
  auto& metrics = sim.obs().metrics;
  out.suspected = metrics.counter("byzantine.suspected").value();
  out.denounced = metrics.counter("membership.denounced").value();
  out.join_or_rejoin_refused =
      metrics.counter("membership.rejoin_refused").value() +
      metrics.counter("membership.join_refused").value();
  out.adversary_banned = sys.raft().is_banned(out.adversary);
  out.churn_victim_banned = sys.raft().is_banned(out.churn_victim);
  for (PeerId p : sys.raft().banned()) {
    if (p != out.adversary) out.any_honest_banned = true;
  }
  const HealthReport hr = sys.raft().health(1);
  auto in_config = [&](PeerId p) {
    const SubgroupId g = sys.raft().topology().subgroup_of(p);
    const auto& c = hr.subgroups[g].config;
    return std::find(c.begin(), c.end(), p) != c.end();
  };
  out.adversary_in_config = in_config(out.adversary);
  out.churn_victim_in_config = in_config(out.churn_victim);
  return out;
}

TEST(ByzantineSoak, PersistentAdversaryContainedUnderChurnAcrossSeeds) {
  for (std::uint64_t seed : {3ull, 11ull}) {
    const SoakRun r = run_soak(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Detection completeness: the adversary was caught repeatedly,
    // struck to the limit and denounced into eviction.
    EXPECT_GE(r.suspected, 2u) << "adversary " << r.adversary;
    EXPECT_GE(r.denounced, 1u);
    EXPECT_TRUE(r.adversary_banned);
    EXPECT_FALSE(r.adversary_in_config);
    // Zero false positives: only the adversary ever collects a strike,
    // and honest churn never escalates to a ban.
    for (const auto& [p, s] : r.strikes) EXPECT_EQ(p, r.adversary);
    EXPECT_FALSE(r.any_honest_banned);
    // The honest crashed peer heals back in (crash-eviction + rejoin is
    // PR-5 behavior, unharmed by the Byzantine layer).
    EXPECT_FALSE(r.churn_victim_banned);
    EXPECT_TRUE(r.churn_victim_in_config);
    // Aggregation kept making progress throughout.
    EXPECT_GE(r.rounds_completed, 15u);
  }
}

TEST(ByzantineSoak, TimelineIsDeterministic) {
  const SoakRun a = run_soak(7);
  const SoakRun b = run_soak(7);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  EXPECT_EQ(a.strikes, b.strikes);
  EXPECT_EQ(a.suspected, b.suspected);
  EXPECT_EQ(a.denounced, b.denounced);
  EXPECT_EQ(a.join_or_rejoin_refused, b.join_or_rejoin_refused);
  EXPECT_EQ(a.adversary, b.adversary);
  EXPECT_EQ(a.adversary_banned, b.adversary_banned);
  EXPECT_EQ(a.churn_victim_in_config, b.churn_victim_in_config);
}

}  // namespace
}  // namespace p2pfl::core
