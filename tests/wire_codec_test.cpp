// Exhaustive codec property tests: every registered protocol message
// kind round-trips through its canonical encoding, every strict prefix
// of a valid encoding is rejected, and random single-bit damage never
// crashes the strict decoders (the sanitizer CI job turns any
// out-of-bounds read this provokes into a failure).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/wire.hpp"
#include "net/codec.hpp"
#include "raft/wire.hpp"
#include "secagg/wire.hpp"

namespace p2pfl::net {
namespace {

void register_everything() {
  raft::wire::register_codecs();
  secagg::wire::register_codecs("sac");
  secagg::wire::register_codecs("ml");
  core::wire::register_codecs();
}

/// The complete codec catalog this build is expected to ship. A protocol
/// message without a codec cannot be encode-verified or chaos-corrupted,
/// so additions to any wire.hpp must show up here.
const std::set<std::string> kExpectedKeys = {
    // Raft RPCs (both layers share one family).
    "raft:rv", "raft:rvr", "raft:ae", "raft:aer", "raft:is", "raft:isr",
    "raft:tn",
    // SAC on the two-layer subgroup channels and the multilayer tree
    // (incl. the Byzantine-detection commit echo).
    "sac:share", "sac:subtotal", "sac:request", "sac:share_req", "sac:echo",
    "ml:share", "ml:subtotal", "ml:request", "ml:share_req", "ml:echo",
    // Core aggregation layer.
    "agg:upload", "agg:result", "ml:result", "join",
    // Self-healing membership: rejoin handshake + model catch-up pull
    // (the reply rides raft:is, the InstallSnapshot path).
    "member:rejoin", "member:pull"};

TEST(CodecRegistry, KeyOfKindUsesFirstAndLastSegment) {
  EXPECT_EQ(CodecRegistry::key_of_kind("raft/sg0/rv"), "raft:rv");
  EXPECT_EQ(CodecRegistry::key_of_kind("raft/fed/ae"), "raft:ae");
  EXPECT_EQ(CodecRegistry::key_of_kind("sac/sg12/share"), "sac:share");
  EXPECT_EQ(CodecRegistry::key_of_kind("ml/g3//subtotal"), "ml:subtotal");
  EXPECT_EQ(CodecRegistry::key_of_kind("agg/upload"), "agg:upload");
  EXPECT_EQ(CodecRegistry::key_of_kind("join"), "join");
}

TEST(CodecRegistry, EveryProtocolKindHasACodec) {
  register_everything();
  std::set<std::string> have;
  for (const Codec* c : CodecRegistry::global().all()) have.insert(c->key);
  for (const std::string& key : kExpectedKeys) {
    EXPECT_TRUE(have.count(key)) << "missing codec for " << key;
  }
  for (const std::string& key : have) {
    EXPECT_TRUE(kExpectedKeys.count(key))
        << "codec " << key << " not in the expected catalog";
  }
  // The kinds the actors actually put on the wire resolve to codecs.
  for (const char* kind :
       {"raft/sg0/rv", "raft/fed/aer", "sac/sg2/share", "sac/chaos/subtotal",
        "ml/g0//share", "ml/result", "agg/upload", "agg/result", "join"}) {
    EXPECT_NE(CodecRegistry::global().find_kind(kind), nullptr) << kind;
  }
}

std::vector<WireSample> shapes() {
  return {{.dim = 1, .n = 2, .k = 1, .round = 1},
          {.dim = 8, .n = 4, .k = 3, .round = 7},
          {.dim = 17, .n = 6, .k = 6, .round = 1000}};
}

TEST(CodecRoundTrip, EncodeDecodeIsIdentityForEverySample) {
  register_everything();
  Rng rng(2024);
  for (const Codec* c : CodecRegistry::global().all()) {
    for (const WireSample& shape : shapes()) {
      for (int rep = 0; rep < 8; ++rep) {
        const std::any msg = c->sample(rng, shape);
        const std::optional<Bytes> encoded = c->encode(msg);
        ASSERT_TRUE(encoded.has_value()) << c->key;
        const std::optional<std::any> decoded = c->decode(*encoded);
        ASSERT_TRUE(decoded.has_value()) << c->key;
        EXPECT_TRUE(c->equals(msg, *decoded)) << c->key;
        // The canonical encoding is stable: re-encoding the decoded
        // value yields identical bytes.
        const std::optional<Bytes> again = c->encode(*decoded);
        ASSERT_TRUE(again.has_value()) << c->key;
        EXPECT_EQ(*encoded, *again) << c->key;
      }
    }
  }
}

TEST(CodecRoundTrip, EncodeRejectsForeignPayloadTypes) {
  register_everything();
  for (const Codec* c : CodecRegistry::global().all()) {
    EXPECT_FALSE(c->encode(std::any(42)).has_value()) << c->key;
    EXPECT_FALSE(c->encode(std::any(std::string("x"))).has_value())
        << c->key;
  }
}

TEST(CodecHardening, EveryStrictPrefixIsRejected) {
  register_everything();
  Rng rng(99);
  const WireSample shape{.dim = 6, .n = 4, .k = 3, .round = 3};
  for (const Codec* c : CodecRegistry::global().all()) {
    const std::any msg = c->sample(rng, shape);
    const std::optional<Bytes> encoded = c->encode(msg);
    ASSERT_TRUE(encoded.has_value()) << c->key;
    for (std::size_t len = 0; len < encoded->size(); ++len) {
      const Bytes prefix(encoded->begin(),
                         encoded->begin() + static_cast<long>(len));
      EXPECT_FALSE(c->decode(prefix).has_value())
          << c->key << " accepted a " << len << "-byte prefix of "
          << encoded->size();
    }
  }
}

TEST(CodecHardening, RandomBitFlipsNeverCrashAndSurvivorsReencode) {
  // Fuzz: a single flipped bit either still decodes to a well-formed
  // message (data bits) or is rejected — never UB, never a throw. Runs
  // under ASan/UBSan in CI, which promotes any wild read to a failure.
  register_everything();
  Rng rng(7);
  const WireSample shape{.dim = 8, .n = 5, .k = 4, .round = 12};
  for (const Codec* c : CodecRegistry::global().all()) {
    const std::any msg = c->sample(rng, shape);
    const std::optional<Bytes> encoded = c->encode(msg);
    ASSERT_TRUE(encoded.has_value()) << c->key;
    std::size_t rejected = 0;
    for (int rep = 0; rep < 200; ++rep) {
      Bytes damaged = *encoded;
      const std::size_t bit = rng.index(damaged.size() * 8);
      damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      const std::optional<std::any> decoded = c->decode(damaged);
      if (!decoded.has_value()) {
        ++rejected;
        continue;
      }
      // A survivor must be a well-formed value of the right type.
      EXPECT_TRUE(c->encode(*decoded).has_value()) << c->key;
    }
    // Fixed-size messages have no structure to violate, so every flip
    // survives there; but flips into a length/count field must be
    // caught, so the variable-size encodings reject some.
    if (encoded->size() !=
        c->encode(c->sample(rng, {.dim = 1, .n = 2, .k = 1}))->size()) {
      EXPECT_GT(rejected, 0u) << c->key;
    }
  }
}

TEST(CodecHardening, RandomGarbageNeverCrashes) {
  register_everything();
  Rng rng(13);
  for (const Codec* c : CodecRegistry::global().all()) {
    for (int rep = 0; rep < 100; ++rep) {
      Bytes junk(rng.index(64));
      for (auto& b : junk) {
        b = static_cast<std::uint8_t>(rng.index(256));
      }
      const std::optional<std::any> decoded = c->decode(junk);
      if (decoded.has_value()) {
        EXPECT_TRUE(c->encode(*decoded).has_value()) << c->key;
      }
    }
  }
}

TEST(CodecSizes, ClosedFormFramingMatchesRealEncodings) {
  // The WireSize helpers promise these exact encoded sizes; the
  // encode-verify mode enforces them on every live send.
  using secagg::SacShareMsg;
  using secagg::SacSubtotalMsg;
  using secagg::SacSubtotalReq;
  using secagg::SacShareReq;

  SacShareMsg share;
  share.round = 3;
  share.from_pos = 1;
  share.parts = {{0, secagg::Vector(5, 1.0f)}, {2, secagg::Vector(5, 2.0f)}};
  EXPECT_EQ(secagg::wire::encode(share).size(),
            secagg::wire::kShareHeader +
                2 * (secagg::wire::kPerPartHeader + 4 * 5));

  SacSubtotalMsg sub;
  sub.round = 3;
  sub.idx = 4;
  sub.value = secagg::Vector(7, 0.5f);
  EXPECT_EQ(secagg::wire::encode(sub).size(),
            secagg::wire::kSubtotalHeader + 4 * 7);

  EXPECT_EQ(secagg::wire::encode(SacSubtotalReq{}).size(),
            secagg::wire::kSubtotalReqWire);
  EXPECT_EQ(secagg::wire::encode(SacShareReq{}).size(),
            secagg::wire::kShareReqWire);

  core::wire::AggUploadMsg up;
  up.model = secagg::Vector(9, 1.0f);
  EXPECT_EQ(core::wire::encode(up).size(),
            core::wire::kUploadHeader + 4 * 9);
  core::wire::AggResultMsg res;
  res.model = secagg::Vector(9, 1.0f);
  EXPECT_EQ(core::wire::encode(res).size(),
            core::wire::kResultHeader + 4 * 9);
  EXPECT_EQ(core::wire::encode(core::wire::JoinRequestMsg{}).size(),
            core::wire::kJoinWire);
}

}  // namespace
}  // namespace p2pfl::net
