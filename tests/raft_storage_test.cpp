// Crash-durability tests for raft::WalStorage and the RaftNode recovery
// path: WAL round-trips, torn-tail truncation, mid-log corruption,
// snapshot+partial-log recovery, recovery determinism, and a full
// kill-the-node/replay-the-WAL cycle on a simulated cluster.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/mux.hpp"
#include "net/network.hpp"
#include "raft/node.hpp"
#include "raft/storage.hpp"

namespace p2pfl::raft {
namespace {

std::string temp_prefix(const char* tag) {
  static int counter = 0;
  return testing::TempDir() + "p2pfl_wal_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

LogEntry entry(Term term, const std::string& data,
               EntryKind kind = EntryKind::kCommand) {
  return LogEntry{term, kind, Bytes(data.begin(), data.end())};
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

TEST(WalStorage, EmptyStorageLoadsFresh) {
  WalStorage s(temp_prefix("empty"));
  PersistentState st = s.load();
  EXPECT_FALSE(st.has_state);
  EXPECT_FALSE(s.recovery().recovered);
  EXPECT_EQ(st.term, 0u);
  EXPECT_EQ(st.voted_for, kNoPeer);
}

TEST(WalStorage, RoundTripTermVoteAndEntries) {
  const std::string prefix = temp_prefix("roundtrip");
  {
    WalStorage s(prefix);
    s.load();
    s.persist_term_vote(7, 3);
    s.append_entry(1, entry(5, "a"));
    s.append_entry(2, entry(6, "bb"));
    s.append_entry(3, entry(7, "ccc", EntryKind::kConfig));
    s.sync();
  }
  WalStorage s(prefix);
  PersistentState st = s.load();
  ASSERT_TRUE(st.has_state);
  EXPECT_EQ(st.term, 7u);
  EXPECT_EQ(st.voted_for, 3u);
  EXPECT_EQ(st.snap_index, 0u);
  ASSERT_EQ(st.entries.size(), 3u);
  EXPECT_EQ(st.entries[0], entry(5, "a"));
  EXPECT_EQ(st.entries[1], entry(6, "bb"));
  EXPECT_EQ(st.entries[2], entry(7, "ccc", EntryKind::kConfig));
  EXPECT_EQ(s.recovery().records, 4u);
  EXPECT_FALSE(s.recovery().truncated_tail);
}

TEST(WalStorage, TruncateRecordDropsSuffix) {
  const std::string prefix = temp_prefix("trunc");
  {
    WalStorage s(prefix);
    s.load();
    s.persist_term_vote(2, kNoPeer);
    s.append_entry(1, entry(1, "a"));
    s.append_entry(2, entry(1, "b"));
    s.append_entry(3, entry(1, "c"));
    s.truncate_from(2);
    s.append_entry(2, entry(2, "b2"));
    s.sync();
  }
  WalStorage s(prefix);
  PersistentState st = s.load();
  ASSERT_EQ(st.entries.size(), 2u);
  EXPECT_EQ(st.entries[0], entry(1, "a"));
  EXPECT_EQ(st.entries[1], entry(2, "b2"));
}

TEST(WalStorage, TornTailIsTruncatedOnRecovery) {
  const std::string prefix = temp_prefix("torn");
  {
    WalStorage s(prefix);
    s.load();
    s.persist_term_vote(3, 1);
    s.append_entry(1, entry(3, "good"));
    s.sync();
  }
  // Simulate a crash mid-append: a partial frame at the tail.
  {
    std::ofstream out(prefix + ".wal", std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x12, 0x34};
    out.write(torn, sizeof(torn));
  }
  const auto size_before = read_file(prefix + ".wal").size();
  WalStorage s(prefix);
  PersistentState st = s.load();
  ASSERT_TRUE(st.has_state);
  EXPECT_EQ(st.term, 3u);
  ASSERT_EQ(st.entries.size(), 1u);
  EXPECT_EQ(st.entries[0], entry(3, "good"));
  EXPECT_TRUE(s.recovery().truncated_tail);
  EXPECT_EQ(s.recovery().bytes_discarded, 6u);
  // The file itself healed: the torn bytes are gone.
  EXPECT_EQ(read_file(prefix + ".wal").size(), size_before - 6);
}

TEST(WalStorage, CrcMismatchMidLogDiscardsEverythingAfter) {
  const std::string prefix = temp_prefix("crc");
  std::size_t first_two_size = 0;
  {
    WalStorage s(prefix);
    s.load();
    s.persist_term_vote(4, 0);
    s.append_entry(1, entry(4, "keep"));
    s.sync();
    first_two_size = read_file(prefix + ".wal").size();
    s.append_entry(2, entry(4, "corrupt-me"));
    s.append_entry(3, entry(4, "after"));
    s.sync();
  }
  // Flip one payload byte inside the third record. Everything from that
  // record on is untrusted, including the (intact) fourth record.
  Bytes wal = read_file(prefix + ".wal");
  wal[first_two_size + 8 + 12] ^= 0xFF;
  write_file(prefix + ".wal", wal);

  WalStorage s(prefix);
  PersistentState st = s.load();
  ASSERT_TRUE(st.has_state);
  ASSERT_EQ(st.entries.size(), 1u);
  EXPECT_EQ(st.entries[0], entry(4, "keep"));
  EXPECT_TRUE(s.recovery().truncated_tail);
  EXPECT_EQ(read_file(prefix + ".wal").size(), first_two_size);
}

TEST(WalStorage, SnapshotPlusPartialLogRecovery) {
  const std::string prefix = temp_prefix("snap");
  {
    WalStorage s(prefix);
    s.load();
    s.persist_term_vote(9, 2);
    // Snapshot through index 10, then a live tail of two entries.
    s.save_snapshot(10, 8, {0, 1, 2}, Bytes{0xAA, 0xBB}, 9, 2,
                    {entry(9, "t1"), entry(9, "t2")});
    s.append_entry(13, entry(9, "t3"));
    s.sync();
  }
  WalStorage s(prefix);
  PersistentState st = s.load();
  ASSERT_TRUE(st.has_state);
  EXPECT_EQ(st.term, 9u);
  EXPECT_EQ(st.voted_for, 2u);
  EXPECT_EQ(st.snap_index, 10u);
  EXPECT_EQ(st.snap_term, 8u);
  EXPECT_EQ(st.snap_members, (std::vector<PeerId>{0, 1, 2}));
  EXPECT_EQ(st.snap_app_state, (Bytes{0xAA, 0xBB}));
  ASSERT_EQ(st.entries.size(), 3u);
  EXPECT_EQ(st.entries[2], entry(9, "t3"));
  EXPECT_TRUE(s.recovery().snapshot_loaded);
}

TEST(WalStorage, NewerSnapshotFileThanWalIsAdopted) {
  // Crash window: the .snap rename landed but the WAL rewrite did not.
  const std::string prefix = temp_prefix("snapnewer");
  Bytes pre_snapshot_wal;
  {
    WalStorage s(prefix);
    s.load();
    s.persist_term_vote(5, 1);
    for (Index i = 1; i <= 6; ++i) s.append_entry(i, entry(5, "e"));
    s.sync();
    pre_snapshot_wal = read_file(prefix + ".wal");
    s.save_snapshot(4, 5, {0, 1}, Bytes{0x01}, 5, 1,
                    {entry(5, "e"), entry(5, "e")});
  }
  // Roll the WAL back to its pre-snapshot content; keep the new .snap.
  write_file(prefix + ".wal", pre_snapshot_wal);

  WalStorage s(prefix);
  PersistentState st = s.load();
  ASSERT_TRUE(st.has_state);
  EXPECT_EQ(st.snap_index, 4u);
  EXPECT_EQ(st.snap_members, (std::vector<PeerId>{0, 1}));
  ASSERT_EQ(st.entries.size(), 2u);  // indices 5, 6 survive above the boundary
}

TEST(WalStorage, MissingSnapshotFileDiscardsState) {
  // A WAL that references a snapshot we cannot reconstruct is unusable
  // below the boundary; recovery must fall back to a fresh start (the
  // membership layer then treats it as an amnesia restart).
  const std::string prefix = temp_prefix("snapmissing");
  {
    WalStorage s(prefix);
    s.load();
    s.save_snapshot(10, 3, {0, 1}, Bytes{0x02}, 3, 0, {});
  }
  std::remove((prefix + ".snap").c_str());
  WalStorage s(prefix);
  PersistentState st = s.load();
  EXPECT_FALSE(st.has_state);
  EXPECT_FALSE(s.recovery().recovered);
}

TEST(WalStorage, RecoveryIsDeterministic) {
  const std::string prefix = temp_prefix("det");
  {
    WalStorage s(prefix);
    s.load();
    s.persist_term_vote(6, 4);
    s.save_snapshot(3, 2, {0, 1, 2, 3}, Bytes{0x10, 0x20}, 6, 4,
                    {entry(5, "x")});
    s.append_entry(5, entry(6, "y"));
    s.sync();
  }
  // Corrupt the tail so recovery has real work to do.
  {
    std::ofstream out(prefix + ".wal", std::ios::binary | std::ios::app);
    out.write("\x03\x00\x00\x00garbage", 11);
  }
  auto load_state = [&] {
    WalStorage s(prefix);
    return s.load();
  };
  const PersistentState a = load_state();
  const PersistentState b = load_state();  // after self-heal truncation
  EXPECT_EQ(a.term, b.term);
  EXPECT_EQ(a.voted_for, b.voted_for);
  EXPECT_EQ(a.snap_index, b.snap_index);
  EXPECT_EQ(a.snap_term, b.snap_term);
  EXPECT_EQ(a.snap_members, b.snap_members);
  EXPECT_EQ(a.snap_app_state, b.snap_app_state);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i], b.entries[i]);
  }
  ASSERT_EQ(a.entries.size(), 2u);
  EXPECT_EQ(a.entries[1], entry(6, "y"));
}

TEST(WalStorage, WipeDestroysState) {
  const std::string prefix = temp_prefix("wipe");
  WalStorage s(prefix);
  s.load();
  s.persist_term_vote(3, 0);
  s.append_entry(1, entry(3, "z"));
  s.sync();
  s.wipe();
  PersistentState st = s.load();
  EXPECT_FALSE(st.has_state);
}

// --- end-to-end: a node killed and rebuilt from its WAL -------------------

struct DurableCluster {
  explicit DurableCluster(std::size_t n, const std::string& dir)
      : sim(7), net(sim, {.base_latency = 15 * kMillisecond}) {
    for (std::size_t i = 0; i < n; ++i) members.push_back(static_cast<PeerId>(i));
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<net::PeerHost>());
      net.attach(static_cast<PeerId>(i), hosts.back().get());
      storages.push_back(std::make_unique<WalStorage>(
          dir + "/node" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n; ++i) make_node(i);
  }

  void make_node(std::size_t i) {
    nodes.resize(std::max(nodes.size(), i + 1));
    // Destroy the old node BEFORE constructing the new one: the
    // destructor unroutes the channel and would otherwise tear down the
    // replacement's freshly-registered routes.
    nodes[i].reset();
    nodes[i] = std::make_unique<RaftNode>(static_cast<PeerId>(i), "raft/dur",
                                          members, RaftOptions{}, net,
                                          *hosts[i], storages[i].get());
    nodes[i]->on_apply = [this, i](Index idx, const LogEntry& e) {
      applied[i].emplace_back(idx, e.data);
    };
  }

  RaftNode* leader() {
    for (auto& nd : nodes) {
      if (nd->is_leader() && !net.crashed(nd->id())) return nd.get();
    }
    return nullptr;
  }

  sim::Simulator sim;
  net::Network net;
  std::vector<PeerId> members;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::vector<std::unique_ptr<WalStorage>> storages;
  std::vector<std::unique_ptr<RaftNode>> nodes;
  std::map<std::size_t, std::vector<std::pair<Index, Bytes>>> applied;
};

TEST(WalStorage, NodeRebuiltFromWalRejoinsWithoutStateTransfer) {
  const std::string dir = temp_prefix("cluster");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  DurableCluster c(3, dir);
  for (auto& nd : c.nodes) nd->start();
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 0; i < 5; ++i) {
    leader->propose(Bytes{static_cast<std::uint8_t>(i)});
    c.sim.run_for(200 * kMillisecond);
  }
  // Kill follower 2 the hard way: drop the node object entirely. Only
  // the WAL survives, exactly like a process that lost power.
  const PeerId victim =
      c.nodes[0]->is_leader() ? 2 : (c.nodes[2]->is_leader() ? 1 : 2);
  const Term term_at_crash = c.nodes[victim]->current_term();
  const Index log_at_crash = c.nodes[victim]->last_log_index();
  c.net.crash(victim);
  c.nodes[victim]->stop();
  c.make_node(victim);  // fresh object; constructor replays the WAL
  EXPECT_TRUE(c.nodes[victim]->recovered_from_storage());
  EXPECT_EQ(c.nodes[victim]->current_term(), term_at_crash);
  EXPECT_EQ(c.nodes[victim]->last_log_index(), log_at_crash);
  c.net.restore(victim);
  c.nodes[victim]->restart();
  // More commits; the recovered node must catch up via AppendEntries
  // only (its log is intact, so no InstallSnapshot is needed).
  leader = c.leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 5; i < 8; ++i) {
    leader->propose(Bytes{static_cast<std::uint8_t>(i)});
    c.sim.run_for(200 * kMillisecond);
  }
  c.sim.run_for(1 * kSecond);
  EXPECT_EQ(c.nodes[victim]->metrics().snapshot_installs, 0u);
  EXPECT_EQ(c.nodes[victim]->commit_index(), leader->commit_index());
  // Applied streams agree on the shared prefix.
  const auto& va = c.applied[victim];
  ASSERT_GE(va.size(), 8u);
}

}  // namespace
}  // namespace p2pfl::raft
