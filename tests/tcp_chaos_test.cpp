// TCP chaos heal-soak: the same ChaosPlan — a connection reset, a
// slow-writer throttle window, and a crash that outlives the suspicion
// grace — executed against the full FL system on real loopback sockets
// and on the deterministic simulator. Both backends must converge to
// the same final membership (everyone configured back in), the crashed
// peer must recover from its write-ahead log without any InstallSnapshot
// state transfer, and the trained accuracy must agree within tolerance.
//
// This is the cross-validation the transport-fault seam exists for: a
// chaos experiment designed in the simulator means something because
// the identical plan, driven through the identical engine, produces the
// same healed end state over real sockets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "core/system.hpp"
#include "core/topology.hpp"
#include "net/network.hpp"
#include "net/tcp/tcp_transport.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::core {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kPeers = 12;
constexpr std::size_t kGroups = 3;
constexpr PeerId kVictim = 3;  // follower in subgroup 0, never designated
constexpr std::uint64_t kSeed = 11;

/// One shared timeline for both backends (absolute times from start).
chaos::ChaosPlan make_plan() {
  chaos::ChaosPlan plan;
  // A hard connection reset inside subgroup 0: on TCP the sockets RST
  // and reconnect, on the simulator the outage is a modeled stall pair.
  plan.conn_reset_at(3 * kSecond, 1, 2, /*sim_outage=*/100 * kMillisecond);
  // A slow writer: peer 5's egress squeezed to 4 MB/s for two seconds.
  plan.throttle_window(4 * kSecond, 6 * kSecond, 5,
                       /*bytes_per_sec=*/4'000'000);
  // The victim dies long past the suspicion grace (eviction), then
  // comes back and must rejoin through self-healing — from its WAL.
  plan.crash_at(8 * kSecond, kVictim);
  plan.restart_at(18 * kSecond, kVictim);
  return plan;
}

/// Identical timing profile on both backends. Real-clock scale: local
/// training runs synchronously on the transport loop thread and can
/// stall it for hundreds of milliseconds under ThreadSanitizer, so every
/// protocol timeout is sized well above the longest stall (the same
/// reasoning as transport_equivalence_test.cpp).
SystemConfig make_config(const std::string& wal_dir) {
  SystemConfig cfg;
  cfg.agg.collect_timeout = 60 * kSecond;
  cfg.agg.sac_share_timeout = 20 * kSecond;
  cfg.agg.sac_subtotal_timeout = 20 * kSecond;
  cfg.agg.upload_retry = 60 * kSecond;
  // One peer may be dead for ten seconds of rounds; tolerance keeps the
  // share phase completing without it.
  cfg.agg.sac_dropout_tolerance = 1;
  cfg.raft.raft.election_timeout_min = 1 * kSecond;
  cfg.raft.raft.election_timeout_max = 2 * kSecond;
  cfg.raft.fedavg_presence_poll = 200 * kMillisecond;
  cfg.raft.config_commit_interval = 500 * kMillisecond;
  cfg.raft.suspicion_grace = 4 * kSecond;
  cfg.raft.membership_poll = 500 * kMillisecond;
  cfg.raft.rejoin_retry = 500 * kMillisecond;
  cfg.raft.storage_dir = wal_dir;
  // Rounds tick every second, so a restarted peer refreshes its model
  // from the next live round result long before a catch-up pull would
  // fire. That keeps the scenario's InstallSnapshot count a pure signal
  // for Raft-log recovery failures: the model-catch-up path answers
  // pulls with a deliberate snapshot push, which would muddy the
  // no-state-transfer assertion below.
  cfg.catchup_retry = 60 * kSecond;
  cfg.round_interval = 1 * kSecond;
  cfg.train_duration = 50 * kMillisecond;
  cfg.learning_rate = 3e-3f;
  cfg.seed = kSeed;
  return cfg;
}

struct Dataset {
  fl::TrainTest data;
  fl::PeerIndices parts;
  explicit Dataset(std::uint64_t seed) {
    fl::SyntheticSpec spec;
    spec.height = 8;
    spec.width = 8;
    spec.train_samples = 400;
    spec.test_samples = 120;
    spec.noise_scale = 0.6;
    Rng data_rng(seed);
    data = fl::make_synthetic(spec, data_rng);
    parts = fl::partition_iid(data.train, kPeers, data_rng);
  }
};

std::string fresh_wal_dir(const char* tag) {
  static int counter = 0;
  return testing::TempDir() + "tcp_chaos_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

/// Membership callbacks fire on the driving thread (the TCP loop thread
/// or the simulator); collect them under a lock for the test thread.
struct MembershipLog {
  std::mutex mu;
  std::set<PeerId> evicted, rejoined;
  void attach(TwoLayerRaftSystem& raft) {
    raft.on_peer_evicted = [this](PeerId p, bool fed_layer) {
      if (fed_layer) return;
      std::lock_guard<std::mutex> lock(mu);
      evicted.insert(p);
    };
    raft.on_peer_rejoined = [this](PeerId p) {
      std::lock_guard<std::mutex> lock(mu);
      rejoined.insert(p);
    };
  }
  bool victim_rejoined() {
    std::lock_guard<std::mutex> lock(mu);
    return rejoined.count(kVictim) > 0;
  }
};

/// Fully healed: stable leadership, every topology member configured
/// back into its subgroup, no standing suspicions.
bool healed(P2pFlSystem& sys) {
  if (!sys.raft().stabilized()) return false;
  const HealthReport hr = sys.raft().health();
  for (const SubgroupHealth& h : hr.subgroups) {
    if (h.leader == kNoPeer || h.parked) return false;
    if (!h.evicted.empty() || !h.suspected.empty()) return false;
  }
  return true;
}

/// End state captured from one backend after its run.
struct SoakEndState {
  std::size_t rounds = 0;
  std::set<PeerId> in_config;
  std::size_t fedavg_members = 0;
  bool victim_recovered = false;
  std::uint64_t victim_snapshot_installs = 0;
  double accuracy = 0.0;
};

void capture_end_state(P2pFlSystem& sys, SoakEndState& out) {
  out.rounds = sys.rounds_completed();
  for (PeerId p = 0; p < kPeers; ++p) {
    if (sys.raft().subgroup_node(p).in_config()) out.in_config.insert(p);
  }
  out.fedavg_members = sys.raft().fedavg_members().size();
  raft::RaftNode& victim = sys.raft().subgroup_node(kVictim);
  out.victim_recovered = victim.recovered_from_storage();
  out.victim_snapshot_installs = victim.metrics().snapshot_installs;
}

TEST(TcpChaosSoak, HealsLikeTheSimulatorAndRecoversFromWal) {
  const Topology topo = Topology::even(kPeers, kGroups);

  // --- the real-socket run ------------------------------------------------
  SoakEndState tcp_state;
  std::uint64_t tcp_conn_resets = 0;
  std::uint64_t tcp_throttle_windows = 0;
  {
    net::tcp::TcpTransport transport({.peers = topo.all_peers(),
                                      .seed = kSeed});
    net::Network net(transport, {});
    Dataset ds(kSeed);
    P2pFlSystem sys(topo, make_config(fresh_wal_dir("tcp")), net,
                    ds.data.train, ds.data.test, ds.parts,
                    [] { return fl::Model::mlp(64, {16}); });
    MembershipLog log;
    log.attach(sys.raft());

    chaos::ChaosEngineHooks hooks;
    hooks.crash = [&sys](PeerId p) { sys.crash_peer(p); };
    hooks.restart = [&sys](PeerId p) { sys.restart_peer(p); };
    chaos::ChaosEngine engine(net, make_plan(), hooks);

    transport.start();
    transport.call([&] {
      sys.start();
      engine.start();
    });

    // The plan's last event lands at 18 s; wait (generously, for TSan)
    // for the victim's rejoin and full re-heal, plus a couple of rounds
    // of post-heal progress.
    const auto deadline = std::chrono::steady_clock::now() + 300s;
    bool done = false;
    while (!done && std::chrono::steady_clock::now() < deadline) {
      transport.call([&] {
        done = log.victim_rejoined() && healed(sys) &&
               sys.rounds_completed() >= 12;
      });
      if (!done) std::this_thread::sleep_for(20ms);
    }
    ASSERT_TRUE(done) << "TCP soak never healed: rounds="
                      << sys.rounds_completed();
    transport.call([&] { capture_end_state(sys, tcp_state); });
    {
      std::lock_guard<std::mutex> lock(log.mu);
      EXPECT_EQ(log.evicted.count(kVictim), 1u)
          << "the long crash must trip the failure detector";
    }
    tcp_conn_resets =
        transport.obs().metrics.counter_value("chaos.transport.conn_resets");
    tcp_throttle_windows = transport.obs().metrics.counter_value(
        "chaos.transport.throttle_windows");
    EXPECT_EQ(engine.faults_injected(), 4u);  // reset+throttle+crash+restart
    transport.shutdown();
    tcp_state.accuracy = sys.evaluate_global().accuracy;
  }

  // The reset really tore sockets, and the throttle really gated the
  // writer — the TCP-native execution of the plan, not the sim model.
  EXPECT_GE(tcp_conn_resets, 1u);
  EXPECT_GE(tcp_throttle_windows, 1u);

  // The victim restarted from its WAL and caught up by log append: a
  // snapshot install would mean the durable state was thrown away and
  // re-transferred, which is exactly what the WAL exists to avoid.
  EXPECT_TRUE(tcp_state.victim_recovered);
  EXPECT_EQ(tcp_state.victim_snapshot_installs, 0u);

  // --- the deterministic twin --------------------------------------------
  SoakEndState sim_state;
  {
    sim::Simulator sim(kSeed);
    net::Network net(sim, {.base_latency = 15 * kMillisecond});
    Dataset ds(kSeed);
    P2pFlSystem sys(topo, make_config(fresh_wal_dir("sim")), net,
                    ds.data.train, ds.data.test, ds.parts,
                    [] { return fl::Model::mlp(64, {16}); });
    MembershipLog log;
    log.attach(sys.raft());
    chaos::ChaosEngineHooks hooks;
    hooks.crash = [&sys](PeerId p) { sys.crash_peer(p); };
    hooks.restart = [&sys](PeerId p) { sys.restart_peer(p); };
    chaos::ChaosEngine engine(net, make_plan(), hooks);
    sys.start();
    engine.start();

    // Drive the sim to the same committed-round count as the real run,
    // healed, so the two end states are comparable.
    for (int i = 0; i < 300; ++i) {
      sim.run_for(1 * kSecond);
      if (log.victim_rejoined() && healed(sys) &&
          sys.rounds_completed() >= tcp_state.rounds) {
        break;
      }
    }
    ASSERT_TRUE(log.victim_rejoined());
    ASSERT_TRUE(healed(sys));
    ASSERT_GE(sys.rounds_completed(), tcp_state.rounds);
    EXPECT_EQ(log.evicted.count(kVictim), 1u);
    EXPECT_EQ(engine.faults_injected(), 4u);
    capture_end_state(sys, sim_state);
    sim_state.accuracy = sys.evaluate_global().accuracy;
    // On the sim path the reset is modeled as one stall per direction.
    EXPECT_GE(sim.obs().metrics.counter_value("chaos.transport.stall_windows"),
              2u);
  }
  EXPECT_TRUE(sim_state.victim_recovered);
  EXPECT_EQ(sim_state.victim_snapshot_installs, 0u);

  // --- the headline cross-validation -------------------------------------
  // Identical final membership on both backends: every peer configured
  // back into its subgroup, one FedAvg representative per subgroup.
  EXPECT_EQ(tcp_state.in_config, sim_state.in_config);
  EXPECT_EQ(tcp_state.in_config.size(), kPeers);
  EXPECT_EQ(tcp_state.fedavg_members, kGroups);
  EXPECT_EQ(sim_state.fedavg_members, kGroups);
  // And the model the healed cluster trained agrees across backends.
  EXPECT_NEAR(tcp_state.accuracy, sim_state.accuracy, 0.2);
  EXPECT_GT(tcp_state.accuracy, 0.4);
}

}  // namespace
}  // namespace p2pfl::core
