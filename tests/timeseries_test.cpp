// Tests for the round time-series store and the SLO rule engine: ring
// semantics and schema of RoundSeries, golden-JSONL determinism of a
// watched chaos soak, and one firing + one quiet scenario per SLO rule
// kind.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/soak.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

namespace p2pfl::obs {
namespace {

RoundSample sample(std::uint64_t round, double latency_ms,
                   bool committed = true) {
  RoundSample s;
  s.round = round;
  s.committed = committed;
  s.start = static_cast<SimTime>(round - 1) * kSecond;
  s.end = s.start + static_cast<SimDuration>(latency_ms * 1000.0);
  s.latency_ms = latency_ms;
  return s;
}

TEST(RoundSeries, RingEvictsOldestAndCountsAppends) {
  RoundSeries series(3);
  for (std::uint64_t r = 1; r <= 5; ++r) series.append(sample(r, 50.0));
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.total_appended(), 5u);
  EXPECT_EQ(series.evicted(), 2u);
  EXPECT_EQ(series.samples().front().round, 3u);
  EXPECT_EQ(series.back().round, 5u);
  EXPECT_EQ(series.find(1), nullptr);  // evicted
  ASSERT_NE(series.find(4), nullptr);
  EXPECT_EQ(series.find(4)->round, 4u);
}

TEST(RoundSeries, SampleJsonCarriesSchemaAndNullSentinels) {
  RoundSample s = sample(7, 123.5);
  s.phases.emplace_back("fed_collect", 100 * kMillisecond);
  s.loss = 0.25;  // accuracy stays unevaluated
  const std::string line = RoundSeries::sample_json(s);
  EXPECT_NE(line.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(line.find("\"round\":7"), std::string::npos);
  EXPECT_NE(line.find("\"fed_collect\":100000"), std::string::npos);
  EXPECT_NE(line.find("\"loss\":0.25"), std::string::npos);
  EXPECT_NE(line.find("\"accuracy\":null"), std::string::npos);
}

TEST(RoundSeries, JsonlHasOneLinePerRetainedSample) {
  RoundSeries series(8);
  for (std::uint64_t r = 1; r <= 4; ++r) series.append(sample(r, 10.0));
  const std::string jsonl = series.jsonl();
  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 4u);
}

// Two identical seeded soak runs must serialize the identical stream —
// the golden-determinism contract every downstream consumer (regress,
// CI artifacts, plots) relies on.
TEST(RoundTimeseries, GoldenJsonlIsDeterministicAcrossRuns) {
  const auto run = [] {
    chaos::ChaosSoakConfig cfg;
    cfg.peers = 12;
    cfg.groups = 3;
    cfg.rounds = 5;
    cfg.seed = 11;
    cfg.round_interval = 500 * kMillisecond;
    cfg.net.faults.drop_prob = 0.05;
    cfg.capture_spans = true;
    cfg.capture_timeseries = true;
    cfg.slo_rules = default_rules(/*max_latency_ms=*/400.0);
    return chaos::run_chaos_soak(cfg);
  };
  const chaos::ChaosSoakResult a = run();
  const chaos::ChaosSoakResult b = run();
  ASSERT_FALSE(a.timeseries_jsonl.empty());
  EXPECT_EQ(a.timeseries_jsonl, b.timeseries_jsonl);
  EXPECT_EQ(a.slo_report.json(), b.slo_report.json());
  // A fault-free-enough run keeps the Eq. (4)/(5) correspondence: the
  // closed form is stamped into every sample.
  EXPECT_NE(a.timeseries_jsonl.find("\"expected_payload_bytes\":"),
            std::string::npos);
}

// --- one firing + one quiet series per rule kind -------------------------

std::vector<SloBreach> feed(SloEngine& engine,
                            const std::vector<RoundSample>& series) {
  std::vector<SloBreach> all;
  for (const RoundSample& s : series) {
    for (SloBreach& b : engine.evaluate(s, nullptr)) {
      all.push_back(std::move(b));
    }
  }
  return all;
}

TEST(SloEngine, ThresholdFiresAboveLimitOnly) {
  SloRule r;
  r.name = "lat";
  r.kind = SloRuleKind::kThreshold;
  r.field = SloField::kLatencyMs;
  r.limit = 100.0;
  SloEngine quiet({r});
  EXPECT_TRUE(feed(quiet, {sample(1, 50), sample(2, 99)}).empty());
  SloEngine loud({r});
  const auto breaches = feed(loud, {sample(1, 50), sample(2, 250)});
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].rule, "lat");
  EXPECT_EQ(breaches[0].round, 2u);
  EXPECT_DOUBLE_EQ(breaches[0].value, 250.0);
}

TEST(SloEngine, EwmaDriftFiresOnSpikeNotOnStableSeries) {
  SloRule r;
  r.name = "drift";
  r.kind = SloRuleKind::kEwmaDrift;
  r.field = SloField::kLatencyMs;
  r.factor = 2.0;
  r.warmup = 2;
  r.limit = 1.0;
  SloEngine quiet({r});
  EXPECT_TRUE(
      feed(quiet, {sample(1, 50), sample(2, 52), sample(3, 48),
                   sample(4, 51)})
          .empty());
  SloEngine loud({r});
  const auto breaches =
      feed(loud, {sample(1, 50), sample(2, 52), sample(3, 300)});
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].round, 3u);
}

TEST(SloEngine, EwmaBaselineExcludesBreachingSamples) {
  SloRule r;
  r.name = "drift";
  r.kind = SloRuleKind::kEwmaDrift;
  r.field = SloField::kLatencyMs;
  r.factor = 2.0;
  r.warmup = 1;
  r.limit = 1.0;
  SloEngine engine({r});
  // A sustained incident must keep breaching: the spike must never be
  // absorbed into its own baseline and silence itself.
  std::vector<RoundSample> series = {sample(1, 50)};
  for (std::uint64_t rnd = 2; rnd <= 6; ++rnd) {
    series.push_back(sample(rnd, 500));
  }
  EXPECT_EQ(feed(engine, series).size(), 5u);
}

TEST(SloEngine, QuantileDriftFiresOnStormNotOnNoise) {
  SloRule r;
  r.name = "retry_storm";
  r.kind = SloRuleKind::kQuantileDrift;
  r.field = SloField::kRetries;
  r.factor = 3.0;
  r.window = 4;
  r.warmup = 3;
  r.limit = 4.0;  // floor: a couple of retries over a zero base is fine
  auto with_retries = [](std::uint64_t round, std::uint64_t n) {
    RoundSample s = sample(round, 50);
    s.retries = n;
    return s;
  };
  SloEngine quiet({r});
  EXPECT_TRUE(feed(quiet, {with_retries(1, 0), with_retries(2, 1),
                           with_retries(3, 0), with_retries(4, 2),
                           with_retries(5, 1)})
                  .empty());
  SloEngine loud({r});
  const auto breaches =
      feed(loud, {with_retries(1, 1), with_retries(2, 2),
                  with_retries(3, 1), with_retries(4, 30)});
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].round, 4u);
}

TEST(SloEngine, ConvergenceStallFiresOnPlateauNotWhileImproving) {
  SloRule r;
  r.name = "stall";
  r.kind = SloRuleKind::kConvergenceStall;
  r.field = SloField::kLoss;
  r.window = 3;
  r.min_delta = 1e-3;
  auto with_loss = [](std::uint64_t round, double loss) {
    RoundSample s = sample(round, 50);
    s.loss = loss;
    return s;
  };
  SloEngine quiet({r});
  EXPECT_TRUE(feed(quiet, {with_loss(1, 1.0), with_loss(2, 0.8),
                           with_loss(3, 0.6), with_loss(4, 0.4),
                           with_loss(5, 0.2)})
                  .empty());
  // Unevaluated samples (sentinel loss) are skipped, not stalled.
  SloEngine skipped({r});
  EXPECT_TRUE(
      feed(skipped, {sample(1, 50), sample(2, 50), sample(3, 50),
                     sample(4, 50), sample(5, 50)})
          .empty());
  SloEngine loud({r});
  const auto breaches =
      feed(loud, {with_loss(1, 1.0), with_loss(2, 1.0), with_loss(3, 1.0),
                  with_loss(4, 1.0)});
  ASSERT_GE(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].round, 4u);
}

TEST(SloEngine, ByteBudgetFiresOverClosedFormOnly) {
  SloRule r;
  r.name = "bytes";
  r.kind = SloRuleKind::kByteBudget;
  r.tolerance = 0.25;
  r.committed_only = true;
  auto with_bytes = [](std::uint64_t round, std::uint64_t payload,
                       double expected, bool committed = true) {
    RoundSample s = sample(round, 50, committed);
    s.payload_bytes = payload;
    s.expected_payload_bytes = expected;
    return s;
  };
  SloEngine quiet({r});
  EXPECT_TRUE(feed(quiet, {with_bytes(1, 1000, 1000.0),
                           with_bytes(2, 1200, 1000.0),
                           // no closed form -> skipped
                           with_bytes(3, 99999, 0.0),
                           // aborted -> skipped (committed_only)
                           with_bytes(4, 99999, 1000.0, false)})
                  .empty());
  SloEngine loud({r});
  const auto breaches = feed(loud, {with_bytes(1, 1400, 1000.0)});
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_DOUBLE_EQ(breaches[0].bound, 1250.0);
}

TEST(SloEngine, BreachBumpsTypedMetricsAndReport) {
  SimTime clock = 0;
  Observability o(&clock);
  SloRule r;
  r.name = "lat";
  r.kind = SloRuleKind::kThreshold;
  r.field = SloField::kLatencyMs;
  r.limit = 100.0;
  SloEngine engine({r});
  engine.register_metrics(o);
  // Registration pre-creates the counters at zero.
  EXPECT_EQ(o.metrics.counter_value("slo.breaches"), 0u);
  EXPECT_EQ(o.metrics.counter_value("slo.breach.lat"), 0u);
  engine.evaluate(sample(1, 50), &o);
  engine.evaluate(sample(2, 200), &o);
  EXPECT_EQ(o.metrics.counter_value("slo.evaluations"), 2u);
  EXPECT_EQ(o.metrics.counter_value("slo.breaches"), 1u);
  EXPECT_EQ(o.metrics.counter_value("slo.breach.lat"), 1u);
  const SloReport report = engine.report();
  EXPECT_FALSE(report.healthy());
  ASSERT_EQ(report.rules.size(), 1u);
  EXPECT_EQ(report.rules[0].breaches, 1u);
  EXPECT_EQ(report.rules[0].first_breach_round, 2u);
  EXPECT_NE(report.json().find("\"lat\""), std::string::npos);
}

TEST(SloEngine, DefaultRulesStayQuietOnHealthySeries) {
  SloEngine engine(default_rules(/*max_latency_ms=*/400.0));
  std::vector<RoundSample> series;
  for (std::uint64_t rnd = 1; rnd <= 12; ++rnd) {
    RoundSample s = sample(rnd, 45.0);
    s.payload_bytes = 3968;
    s.expected_payload_bytes = 3968.0;
    series.push_back(s);
  }
  EXPECT_TRUE(feed(engine, series).empty());
  EXPECT_TRUE(engine.report().healthy());
}

}  // namespace
}  // namespace p2pfl::obs
