// TcpTransport behavior over real loopback sockets: timers on the
// monotonic clock, typed frame delivery with exact Network accounting,
// large frames crossing partial writes, reconnect-with-backoff after a
// hard connection loss, and thread-safety of the obs registry under
// concurrent hammering (the configuration the TSan CI job compiles).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/wire.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "net/tcp/tcp_transport.hpp"
#include "obs/metrics.hpp"

namespace p2pfl::net::tcp {
namespace {

using namespace std::chrono_literals;

/// Spin (politely) until `cond` holds on the loop thread or the
/// deadline passes. Conditions touching Network/actor state must be
/// evaluated on the loop thread; call() serializes us onto it.
bool wait_on_loop(TcpTransport& t, const std::function<bool()>& cond,
                  std::chrono::milliseconds deadline = 20000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    bool ok = false;
    t.call([&] { ok = cond(); });
    if (ok) return true;
    if (std::chrono::steady_clock::now() >= until) return false;
    std::this_thread::sleep_for(2ms);
  }
}

struct CollectingEndpoint : Endpoint {
  std::mutex mu;
  std::vector<Envelope> got;
  void deliver(const Envelope& env) override {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(env);
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return got.size();
  }
};

Envelope result_envelope(PeerId from, PeerId to, std::size_t dim,
                         std::uint64_t round = 1) {
  core::wire::register_codecs();
  core::wire::AggResultMsg msg;
  msg.round = round;
  msg.model.assign(dim, 0.5f);
  Envelope env;
  env.from = from;
  env.to = to;
  env.kind = "agg/result";
  env.body = std::move(msg);
  env.wire_bytes = core::wire::kResultHeader + 4 * dim;
  env.payload_bytes = 4 * dim;
  return env;
}

TEST(TcpTransport, StartsAndShutsDownCleanly) {
  TcpTransport t({.peers = {0, 1}, .seed = 7});
  EXPECT_FALSE(t.deterministic());
  EXPECT_EQ(std::string(t.name()), "tcp");
  t.start();
  EXPECT_GT(t.port_of(0), 0);
  EXPECT_GT(t.port_of(1), 0);
  EXPECT_NE(t.port_of(0), t.port_of(1));
  t.shutdown();
  t.shutdown();  // idempotent
}

TEST(TcpTransport, TimerFiresAtOrAfterDeadlineOnLoopThread) {
  TcpTransport t({.peers = {0}, .seed = 7});
  t.start();
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  SimTime fire_time = 0;
  const SimTime scheduled_at = t.now();
  t.schedule_after(20 * kMillisecond, [&] {
    std::lock_guard<std::mutex> lock(mu);
    fired = true;
    fire_time = t.now();
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 10s, [&] { return fired; }));
  EXPECT_GE(fire_time, scheduled_at + 20 * kMillisecond);
  lock.unlock();
  t.shutdown();
}

TEST(TcpTransport, CancelledTimerNeverFires) {
  TcpTransport t({.peers = {0}, .seed = 7});
  t.start();
  std::atomic<bool> fired{false};
  const TimerToken tok =
      t.schedule_after(30 * kMillisecond, [&] { fired.store(true); });
  EXPECT_TRUE(t.cancel(tok));
  EXPECT_FALSE(t.cancel(tok));  // second cancel is a no-op
  std::this_thread::sleep_for(80ms);
  EXPECT_FALSE(fired.load());
  t.shutdown();
}

TEST(TcpTransport, NetTimerPeriodicTicksOnRealClock) {
  TcpTransport t({.peers = {0}, .seed = 7});
  t.start();
  std::atomic<int> fires{0};
  net::Timer timer(
      t, [&] { fires.fetch_add(1); }, "test.periodic");
  t.call([&] { timer.arm_periodic(10 * kMillisecond); });
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (fires.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GE(fires.load(), 3);
  t.call([&] { timer.cancel(); });
  // net::Timer keeps sim::Timer's metric identity on the real clock too.
  EXPECT_GE(t.obs().metrics.counter_value("sim.timer_fires"), 3u);
  t.shutdown();
}

TEST(TcpTransport, DeliversTypedFramesWithExactAccounting) {
  TcpTransport t({.peers = {0, 1}, .seed = 7});
  Network net(t, {});
  CollectingEndpoint e0, e1;
  net.attach(0, &e0);
  net.attach(1, &e1);
  t.start();
  constexpr std::size_t kDim = 5;
  constexpr int kMsgs = 10;
  t.call([&] {
    for (int i = 0; i < kMsgs; ++i) {
      net.send(result_envelope(0, 1, kDim, 1 + i));
    }
  });
  ASSERT_TRUE(wait_on_loop(
      t, [&] { return net.stats().delivered.messages == kMsgs; }));
  t.shutdown();

  ASSERT_EQ(e1.count(), static_cast<std::size_t>(kMsgs));
  const std::uint64_t wire = core::wire::kResultHeader + 4 * kDim;
  const auto& st = net.stats();
  EXPECT_EQ(st.sent.messages, static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(st.sent.bytes, kMsgs * wire);
  EXPECT_EQ(st.sent.payload, kMsgs * 4 * kDim);
  EXPECT_EQ(st.delivered.bytes, st.sent.bytes);
  EXPECT_EQ(st.delivered.payload, st.sent.payload);
  // In-order delivery on one connection.
  for (int i = 0; i < kMsgs; ++i) {
    const auto* msg = payload<core::wire::AggResultMsg>(e1.got[i].body);
    ASSERT_NE(msg, nullptr);
    EXPECT_EQ(msg->round, static_cast<std::uint64_t>(1 + i));
  }
  // The raw wire moved at least the framed bytes of every message.
  EXPECT_EQ(t.frames_sent(), static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(t.frames_received(), static_cast<std::uint64_t>(kMsgs));
  EXPECT_GE(t.raw_bytes_sent(), kMsgs * (wire + 4));
  EXPECT_EQ(t.raw_bytes_received(), t.raw_bytes_sent());
}

TEST(TcpTransport, SelfSendDeliversWithoutWireAccounting) {
  TcpTransport t({.peers = {0}, .seed = 7});
  Network net(t, {});
  CollectingEndpoint e0;
  net.attach(0, &e0);
  t.start();
  t.call([&] { net.send(result_envelope(0, 0, 3)); });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e0.count() == 1; }));
  t.shutdown();
  // Self-sends bypass both the modeled accounting and the raw wire,
  // exactly like the simulator path.
  EXPECT_EQ(net.stats().sent.messages, 0u);
  EXPECT_EQ(net.stats().delivered.messages, 0u);
  EXPECT_EQ(t.raw_bytes_sent(), 0u);
}

TEST(TcpTransport, LargeFrameSurvivesPartialWrites) {
  TcpTransport t({.peers = {0, 1}, .seed = 7});
  Network net(t, {});
  CollectingEndpoint e1;
  net.attach(0, new CollectingEndpoint);  // leaked: trivial test scope
  net.attach(1, &e1);
  t.start();
  // ~4 MB of floats: far beyond any socket buffer, so the loop must
  // finish the frame across many EPOLLOUT rounds.
  constexpr std::size_t kDim = 1u << 20;
  t.call([&] { net.send(result_envelope(0, 1, kDim)); });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 1; }, 60000ms));
  t.shutdown();
  const auto* msg = payload<core::wire::AggResultMsg>(e1.got[0].body);
  ASSERT_NE(msg, nullptr);
  ASSERT_EQ(msg->model.size(), kDim);
  EXPECT_EQ(msg->model.front(), 0.5f);
  EXPECT_EQ(msg->model.back(), 0.5f);
  EXPECT_GE(t.raw_bytes_received(), 4 * kDim);
}

TEST(TcpTransport, ReconnectsAndFlushesAfterConnectionLoss) {
  TcpTransport t({.peers = {0, 1}, .seed = 7});
  Network net(t, {});
  CollectingEndpoint e1;
  net.attach(0, new CollectingEndpoint);  // leaked: trivial test scope
  net.attach(1, &e1);
  t.start();
  t.call([&] { net.send(result_envelope(0, 1, 4, 1)); });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 1; }));

  // Hard-drop every socket, then keep sending: the from->to pair must
  // reconnect (with backoff) and flush the queued frames.
  t.debug_close_connections();
  t.call([&] {
    for (int i = 0; i < 5; ++i) net.send(result_envelope(0, 1, 4, 10 + i));
  });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 6; }));
  t.shutdown();
  EXPECT_GE(t.obs().metrics.counter_value("net.tcp.connects"), 2u);
  // Nothing was lost: the frames sent after the close all arrived.
  const auto* last = payload<core::wire::AggResultMsg>(e1.got.back().body);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->round, 14u);
}

TEST(TcpTransport, InjectedConnectionResetHealsWithoutLoss) {
  TcpTransport t({.peers = {0, 1}, .seed = 7});
  Network net(t, {});
  CollectingEndpoint e1;
  net.attach(0, new CollectingEndpoint);  // leaked: trivial test scope
  net.attach(1, &e1);
  t.start();
  t.call([&] { net.send(result_envelope(0, 1, 4, 1)); });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 1; }));

  // The chaos entry point: RST both directed connections of the pair,
  // then keep sending — reconnect must flush everything queued.
  t.inject_connection_reset(0, 1);
  t.call([&] {
    for (int i = 0; i < 5; ++i) net.send(result_envelope(0, 1, 4, 10 + i));
  });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 6; }));
  t.shutdown();
  EXPECT_GE(t.obs().metrics.counter_value("chaos.transport.conn_resets"), 1u);
  EXPECT_GE(t.obs().metrics.counter_value("net.tcp.connects"), 2u);
  const auto* last = payload<core::wire::AggResultMsg>(e1.got.back().body);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->round, 14u);
}

TEST(TcpTransport, BoundedOutqDropsOldestUnderStall) {
  TcpTransportConfig cfg{.peers = {0, 1}, .seed = 7};
  cfg.max_outq_frames = 4;
  TcpTransport t(cfg);
  Network net(t, {});
  CollectingEndpoint e1;
  net.attach(0, new CollectingEndpoint);  // leaked: trivial test scope
  net.attach(1, &e1);
  t.start();

  // Gate the 0->1 link far into the future so nothing leaves the queue,
  // then overfill it: the cap must shed from the front (oldest first).
  FaultInjector fi(t.obs());
  t.set_fault_injector(&fi);
  t.call([&] {
    fi.stall_link(0, 1, t.now() + 3600 * kSecond);
    for (int i = 0; i < 10; ++i) net.send(result_envelope(0, 1, 4, 10 + i));
  });
  ASSERT_TRUE(wait_on_loop(t, [&] {
    return t.obs().metrics.counter_value("net.tcp.outq_dropped") >= 6;
  }));
  EXPECT_EQ(e1.count(), 0u);  // everything still held

  // Lift the stall; the next send both re-triggers the flush and (queue
  // still full) evicts one more victim. Survivors arrive in order.
  t.call([&] {
    fi.clear(t.now());
    net.send(result_envelope(0, 1, 4, 99));
  });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 4; }));
  t.shutdown();
  EXPECT_EQ(t.obs().metrics.counter_value("net.tcp.outq_dropped"), 7u);
  const std::uint64_t want[] = {17, 18, 19, 99};
  for (int i = 0; i < 4; ++i) {
    const auto* msg = payload<core::wire::AggResultMsg>(e1.got[i].body);
    ASSERT_NE(msg, nullptr);
    EXPECT_EQ(msg->round, want[i]);
  }
}

TEST(TcpTransport, OversizeFramePoisonsOnlyThatConnection) {
  TcpTransport t({.peers = {0, 1}, .seed = 7});
  Network net(t, {});
  CollectingEndpoint e1;
  net.attach(0, new CollectingEndpoint);  // leaked: trivial test scope
  net.attach(1, &e1);
  t.start();
  t.call([&] { net.send(result_envelope(0, 1, 4, 1)); });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 1; }));

  // A rogue stream: connect straight to peer 1's listener and write an
  // oversized length prefix (stream desync). The transport must kill
  // that inbound connection — and only that one.
  const int rogue = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(rogue, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(t.port_of(1));
  ASSERT_EQ(::connect(rogue, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::uint8_t poison[4] = {0xff, 0xff, 0xff, 0xff};  // 4 GB "frame"
  ASSERT_EQ(::send(rogue, poison, sizeof(poison), 0), 4);
  ASSERT_TRUE(wait_on_loop(t, [&] {
    return t.obs().metrics.counter_value("net.tcp.frame_protocol_error") == 1;
  }));

  // The legitimate 0->1 stream is untouched...
  t.call([&] { net.send(result_envelope(0, 1, 4, 2)); });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 2; }));

  // ...and the freed inbound slot is reusable: force a reconnect so the
  // fresh accept may land on the recycled (reset, un-poisoned) slot.
  t.debug_close_connections();
  t.call([&] { net.send(result_envelope(0, 1, 4, 3)); });
  ASSERT_TRUE(wait_on_loop(t, [&] { return e1.count() == 3; }));
  ::close(rogue);
  t.shutdown();
  const auto* last = payload<core::wire::AggResultMsg>(e1.got.back().body);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->round, 3u);
}

TEST(ObsThreadSafety, RegistryAndCountersSurviveConcurrentHammering) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&reg, th] {
      // Mix shared-counter hammering with concurrent creation of fresh
      // names — the exact pattern a transport thread and a polling
      // thread produce.
      obs::Counter& shared = reg.counter("hammer.shared");
      obs::Gauge& gauge = reg.gauge("hammer.gauge");
      obs::Counter& own =
          reg.counter("hammer.thread." + std::to_string(th));
      for (int i = 0; i < kIters; ++i) {
        shared.add(1);
        own.add(2);
        gauge.add(1);
        gauge.add(-1);
        if (i % 1024 == 0) {
          reg.counter("hammer.lazy." + std::to_string(th) + "." +
                      std::to_string(i / 1024));
        }
        (void)reg.counter_value("hammer.shared");
      }
    });
  }
  for (auto& t : threads) t.join();
  // Exact totals: no update was lost or torn.
  EXPECT_EQ(reg.counter_value("hammer.shared"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.gauge_value("hammer.gauge"), 0);
  for (int th = 0; th < kThreads; ++th) {
    EXPECT_EQ(reg.counter_value("hammer.thread." + std::to_string(th)),
              static_cast<std::uint64_t>(2) * kIters);
  }
}

TEST(ObsThreadSafety, ConcurrentDumpEqualsSingleThreadedDump) {
  // The same deterministic update sequence applied (a) single-threaded
  // and (b) split across threads must yield identical dumps — the
  // regression the metric goldens rely on once a second thread exists.
  obs::MetricsRegistry single;
  for (int i = 0; i < 4000; ++i) {
    single.counter("dump.c" + std::to_string(i % 4)).add(1);
  }
  obs::MetricsRegistry multi;
  std::vector<std::thread> threads;
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&multi, th] {
      for (int i = 0; i < 1000; ++i) {
        multi.counter("dump.c" + std::to_string(th)).add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(single.counters().size(), multi.counters().size());
  auto a = single.counters().begin();
  auto b = multi.counters().begin();
  for (; a != single.counters().end(); ++a, ++b) {
    EXPECT_EQ(a->first, b->first);
    EXPECT_EQ(a->second.value(), b->second.value());
  }
}

}  // namespace
}  // namespace p2pfl::net::tcp
