#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "core/two_layer_agg.hpp"

namespace p2pfl::core {
namespace {

struct AggHarness {
  AggHarness(std::size_t peers, std::size_t groups, AggregationConfig cfg,
             std::uint64_t seed = 9)
      : topo(Topology::even(peers, groups)),
        sim(seed),
        net(sim, {.base_latency = 15 * kMillisecond}) {
    for (PeerId p : topo.all_peers()) {
      hosts.emplace(p, std::make_unique<net::PeerHost>());
      net.attach(p, hosts.at(p).get());
    }
    agg = std::make_unique<TwoLayerAggregator>(
        topo, cfg, net, [this](PeerId p) -> net::PeerHost& {
          return *hosts.at(p);
        });
    agg->on_global_model = [this](std::uint64_t, const secagg::Vector& g,
                                  std::size_t used) {
      global = g;
      groups_used = used;
    };
    agg->on_model_received = [this](std::uint64_t, PeerId p,
                                    const secagg::Vector& g) {
      received[p] = g;
    };
    agg->on_round_failed = [this](std::uint64_t) { failed = true; };
  }

  void begin(std::uint64_t round = 1) {
    RoundLeadership lead;
    lead.subgroup_leaders = topo.designated_leaders();
    lead.fedavg_leader = lead.subgroup_leaders.front();
    // Peer p contributes the constant vector (p+1).
    agg->begin_round(round, lead, [](PeerId p) {
      return secagg::Vector(4, static_cast<float>(p + 1));
    });
  }

  Topology topo;
  sim::Simulator sim;
  net::Network net;
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  std::unique_ptr<TwoLayerAggregator> agg;
  std::optional<secagg::Vector> global;
  std::size_t groups_used = 0;
  std::map<PeerId, secagg::Vector> received;
  bool failed = false;
};

TEST(TwoLayerAgg, GlobalModelIsPeerCountWeightedMean) {
  AggregationConfig cfg;
  AggHarness h(9, 3, cfg);
  h.begin();
  h.sim.run();
  ASSERT_TRUE(h.global.has_value());
  EXPECT_EQ(h.groups_used, 3u);
  // Equal groups and the weighting by n make this the global mean: 5.0.
  EXPECT_NEAR((*h.global)[0], 5.0f, 1e-4f);
}

TEST(TwoLayerAgg, EveryPeerGetsResult) {
  AggregationConfig cfg;
  AggHarness h(10, 3, cfg);  // uneven groups 4/3/3
  h.begin();
  h.sim.run();
  ASSERT_TRUE(h.global.has_value());
  EXPECT_EQ(h.received.size(), 10u);
  for (const auto& [p, g] : h.received) EXPECT_EQ(g, *h.global);
  // Uneven weighting: mean of group means weighted by size = global mean
  // = 5.5.
  EXPECT_NEAR((*h.global)[0], 5.5f, 1e-4f);
}

TEST(TwoLayerAgg, FractionHalfAggregatesSubsetOfGroups) {
  AggregationConfig cfg;
  cfg.fraction_p = 0.5;
  AggHarness h(12, 4, cfg);
  h.begin();
  h.sim.run();
  ASSERT_TRUE(h.global.has_value());
  EXPECT_EQ(h.groups_used, 2u);  // ceil(0.5 * 4)
  // All peers still receive the result.
  EXPECT_EQ(h.received.size(), 12u);
}

TEST(TwoLayerAgg, SlowSubgroupExcludedByTimeout) {
  AggregationConfig cfg;
  cfg.collect_timeout = 500 * kMillisecond;
  AggHarness h(9, 3, cfg);
  // Make subgroup 2's leader-to-fed link crawl: its upload misses the
  // timeout.
  h.net.set_link_delay(h.topo.group(2).front(),
                       h.topo.group(0).front(), 5 * kSecond);
  h.begin();
  h.sim.run_for(20 * kSecond);
  ASSERT_TRUE(h.global.has_value());
  EXPECT_EQ(h.groups_used, 2u);
  // Mean over groups 0 and 1 only: peers 1..6 -> 3.5.
  EXPECT_NEAR((*h.global)[0], 3.5f, 1e-4f);
}

TEST(TwoLayerAgg, DropoutAfterShareWithToleranceStillIncludesModel) {
  AggregationConfig cfg;
  cfg.sac_dropout_tolerance = 1;
  cfg.sac_subtotal_timeout = 100 * kMillisecond;
  AggHarness h(9, 3, cfg);
  h.begin();
  // Crash a follower of subgroup 1 after shares are in flight.
  h.sim.run_for(1 * kMillisecond);
  const PeerId victim = h.topo.group(1)[1];
  h.net.crash(victim);
  h.sim.run_for(30 * kSecond);
  ASSERT_TRUE(h.global.has_value());
  EXPECT_EQ(h.groups_used, 3u);
  // The victim's model still contributes: global mean stays 5.0.
  EXPECT_NEAR((*h.global)[0], 5.0f, 1e-4f);
}

TEST(TwoLayerAgg, CrashedPeersExcludedFromRoundStart) {
  AggregationConfig cfg;
  AggHarness h(9, 3, cfg);
  // A follower of group 0 is already dead when the round begins.
  h.net.crash(h.topo.group(0)[2]);
  h.begin();
  h.sim.run_for(20 * kSecond);
  ASSERT_TRUE(h.global.has_value());
  // Group 0 aggregated peers 0, 1 (values 1, 2), weighted by 2.
  // Groups: (1+2)/2 * 2, (4+5+6)/3 * 3, (7+8+9)/3 * 3 over weight 8.
  const double expected = (1.5 * 2 + 5.0 * 3 + 8.0 * 3) / 8.0;
  EXPECT_NEAR((*h.global)[0], expected, 1e-4);
  EXPECT_EQ(h.received.size(), 8u);  // dead peer gets nothing
}

TEST(TwoLayerAgg, RoundFailsWhenNoUploadArrives) {
  AggregationConfig cfg;
  cfg.collect_timeout = 300 * kMillisecond;
  cfg.sac_share_timeout = 10 * kSecond;  // keep SAC from finishing
  AggHarness h(6, 2, cfg);
  // Sever every link toward the FedAvg leader's host except self.
  for (PeerId p : h.topo.all_peers()) {
    if (p != 0) h.net.block_link(p, 0);
  }
  // ...including intra-group shares so even its own SAC stalls.
  h.begin();
  h.sim.run_for(5 * kSecond);
  EXPECT_FALSE(h.global.has_value());
  EXPECT_TRUE(h.failed);
}

TEST(TwoLayerAgg, NewRoundSupersedesOldOne) {
  AggregationConfig cfg;
  AggHarness h(6, 2, cfg);
  h.begin(1);
  h.sim.run_for(1 * kMillisecond);
  h.begin(2);  // abort + restart
  h.sim.run();
  ASSERT_TRUE(h.global.has_value());
  EXPECT_EQ(h.received.size(), 6u);
}

}  // namespace
}  // namespace p2pfl::core
