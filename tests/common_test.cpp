#include <gtest/gtest.h>

#include <set>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace p2pfl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng root(7);
  Rng c1 = root.fork(1);
  Rng c2 = root.fork(2);
  Rng c1_again = Rng(7).fork(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformIntBounds) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 1000 draws
}

TEST(Rng, UniformRealBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-1.5, 2.5);
    EXPECT_GE(v, -1.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Serialize, RoundTripPrimitives) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-3.25);
  w.str("hello");
  const Bytes buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64(), -3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, RoundTripU32Vector) {
  ByteWriter w;
  std::vector<std::uint32_t> v{5, 0, 4294967295u, 17};
  w.vec_u32(v);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.vec_u32<std::uint32_t>(), v);
}

TEST(Serialize, TruncatedBufferFailsSoftly) {
  // A short read must not throw or touch out-of-range memory: it yields
  // a zero value and latches the reader into the failed state.
  ByteWriter w;
  w.u32(42);
  Bytes buf = w.take();
  buf.pop_back();
  ByteReader r(buf);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.complete());
  // Every further read keeps failing, including on a fresh field.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.vec_f32().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, HostileLengthPrefixRejected) {
  // A corrupted element count far beyond the buffer must fail cleanly
  // instead of attempting a huge allocation.
  ByteWriter w;
  w.u32(0xFFFFFFFFu);  // claims 4G elements, no data follows
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.vec_f32().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
}

TEST(Json, ParsesDocumentAndDottedPaths) {
  const auto v = json::parse(
      "{\"bench\":\"x\",\"n\":3,\"ok\":true,\"none\":null,"
      "\"cells\":[{\"acc\":0.25},{\"acc\":-1e2}],\"s\":\"a\\nb\"}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get("bench")->text, "x");
  EXPECT_DOUBLE_EQ(v->at_path("cells.1.acc")->number, -100.0);
  EXPECT_EQ(v->at_path("cells.0.acc")->text, "0.25");  // literal kept
  EXPECT_TRUE(v->at_path("none")->is_null());
  EXPECT_TRUE(v->get("ok")->boolean);
  EXPECT_EQ(v->get("s")->text, "a\nb");
  EXPECT_EQ(v->at_path("cells.2.acc"), nullptr);
  EXPECT_EQ(v->at_path("missing.path"), nullptr);
}

TEST(Json, RejectsMalformedInputWithOffset) {
  json::ParseError err;
  EXPECT_FALSE(json::parse("{\"a\":", &err).has_value());
  EXPECT_FALSE(err.message.empty());
  EXPECT_FALSE(json::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(json::parse("[1 2]").has_value());
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
}

}  // namespace
}  // namespace p2pfl
