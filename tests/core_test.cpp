#include <gtest/gtest.h>

#include <set>

#include "analysis/cost_model.hpp"
#include "core/agg_cost_sim.hpp"
#include "core/fl_experiment.hpp"
#include "core/topology.hpp"

namespace p2pfl::core {
namespace {

// --- topology -------------------------------------------------------------------

TEST(Topology, EvenSplitAssignsEveryPeerOnce) {
  const Topology t = Topology::even(10, 3);
  EXPECT_EQ(t.subgroup_count(), 3u);
  EXPECT_EQ(t.peer_count(), 10u);
  EXPECT_EQ(t.sizes(), (std::vector<std::size_t>{4, 3, 3}));
  std::set<PeerId> seen;
  for (PeerId p : t.all_peers()) EXPECT_TRUE(seen.insert(p).second);
  EXPECT_EQ(seen.size(), 10u);
  for (PeerId p : t.all_peers()) {
    const SubgroupId g = t.subgroup_of(p);
    const auto& group = t.group(g);
    EXPECT_NE(std::find(group.begin(), group.end(), p), group.end());
  }
}

TEST(Topology, ByGroupSizeMatchesPaperGrouping) {
  const Topology t = Topology::by_group_size(20, 3);
  EXPECT_EQ(t.subgroup_count(), 6u);
  EXPECT_EQ(t.sizes(), analysis::subgroups_by_target_size(20, 3));
}

TEST(Topology, DesignatedLeadersAreFirstMembers) {
  const Topology t = Topology::even(9, 3);
  const auto leaders = t.designated_leaders();
  ASSERT_EQ(leaders.size(), 3u);
  for (SubgroupId g = 0; g < 3; ++g) {
    EXPECT_EQ(leaders[g], t.group(g).front());
  }
}

TEST(Topology, DuplicatePeerRejected) {
  EXPECT_THROW(Topology({{0, 1}, {1, 2}}), std::logic_error);
}

TEST(Topology, EmptyGroupRejected) {
  EXPECT_THROW(Topology({{0, 1}, {}}), std::logic_error);
}

TEST(Topology, SingleGroupIsOneLayer) {
  const Topology t = Topology::even(5, 1);
  EXPECT_EQ(t.subgroup_count(), 1u);
  EXPECT_EQ(t.group(0).size(), 5u);
}

// --- protocol cost vs closed-form model (the Fig. 13/14 cross-check) ------------

TEST(AggCostSim, MatchesEq4ExactlyOnEvenGroups) {
  for (std::size_t m : {2u, 3u, 5u}) {
    for (std::size_t n : {2u, 3u, 5u}) {
      const std::vector<std::size_t> groups(m, n);
      const auto r = simulate_aggregation_cost(groups, 0);
      EXPECT_TRUE(r.completed);
      EXPECT_DOUBLE_EQ(r.total_units, analysis::two_layer_cost_eq4(m, n))
          << "m=" << m << " n=" << n;
    }
  }
}

TEST(AggCostSim, MatchesGeneralModelOnUnevenGroups) {
  const std::vector<std::size_t> groups{4, 4, 3, 3, 3, 3};  // N=20, n=3
  const auto r = simulate_aggregation_cost(groups, 0);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.total_units, analysis::two_layer_cost(groups));
}

TEST(AggCostSim, MatchesFtModelOnUnevenGroups) {
  // The 3-2 setting (tolerance 1) over N=20's uneven grouping.
  const std::vector<std::size_t> groups{4, 4, 3, 3, 3, 3};
  const auto r = simulate_aggregation_cost(groups, 1);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.total_units, analysis::two_layer_ft_cost(groups, 3, 2));
}

TEST(AggCostSim, MatchesEq5ForFaultTolerantSac) {
  for (std::size_t n : {3u, 5u}) {
    for (std::size_t k = 2; k <= n; ++k) {
      const std::vector<std::size_t> groups(4, n);
      const auto r = simulate_aggregation_cost(groups, n - k);
      EXPECT_TRUE(r.completed);
      EXPECT_DOUBLE_EQ(r.total_units,
                       analysis::two_layer_ft_cost_eq5(4 * n, 4, n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(AggCostSim, BreakdownComponentsMatchModelTerms) {
  const std::size_t m = 3, n = 4;
  const std::vector<std::size_t> groups(m, n);
  const auto r = simulate_aggregation_cost(groups, 0);
  EXPECT_DOUBLE_EQ(r.sac_units, static_cast<double>(m * (n * n - 1)));
  EXPECT_DOUBLE_EQ(r.fedavg_units, 2.0 * (m - 1));
  EXPECT_DOUBLE_EQ(r.broadcast_units, static_cast<double>(m * (n - 1)));
}

TEST(AggCostSim, PlainFedAvgCornerCase) {
  // m = N: subgroups of one peer; the system degenerates to FedAvg with
  // 2(N-1) transfers.
  const std::vector<std::size_t> groups(6, 1);
  const auto r = simulate_aggregation_cost(groups, 0);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.total_units, 10.0);
  EXPECT_DOUBLE_EQ(r.sac_units, 0.0);
}

// --- fl experiment harness -------------------------------------------------------

FlExperimentConfig tiny_config() {
  FlExperimentConfig cfg;
  cfg.peers = 6;
  cfg.group_size = 3;
  cfg.rounds = 6;
  cfg.eval_every = 3;
  cfg.data.train_samples = 600;
  cfg.data.test_samples = 100;
  cfg.data.height = 8;
  cfg.data.width = 8;
  cfg.data.noise_scale = 0.6;
  cfg.mlp_hidden = {16};
  cfg.learning_rate = 3e-3f;
  cfg.seed = 21;
  return cfg;
}

TEST(FlExperiment, RunsAndLearns) {
  FlExperimentConfig cfg = tiny_config();
  cfg.rounds = 20;
  const auto r = run_fl_experiment(cfg);
  EXPECT_EQ(r.records.size(), 20u);
  EXPECT_GT(r.final_accuracy, 0.3);
  EXPECT_GT(r.model_params, 0u);
}

TEST(FlExperiment, DeterministicForSeed) {
  const FlExperimentConfig cfg = tiny_config();
  const auto a = run_fl_experiment(cfg);
  const auto b = run_fl_experiment(cfg);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].train_loss, b.records[i].train_loss);
  }
}

TEST(FlExperiment, AggregationKindsAllProgress) {
  for (auto kind : {AggregationKind::kOneLayerSac,
                    AggregationKind::kTwoLayerSac,
                    AggregationKind::kPlainFedAvg}) {
    FlExperimentConfig cfg = tiny_config();
    cfg.aggregation = kind;
    cfg.rounds = 10;
    const auto r = run_fl_experiment(cfg);
    EXPECT_GT(r.final_accuracy, 0.15)
        << "kind " << static_cast<int>(kind);
  }
}

TEST(FlExperiment, TwoLayerTracksOneLayerAccuracy) {
  // Fig. 6's claim: the subgroup decomposition does not change accuracy
  // materially. At this tiny scale allow a loose band.
  FlExperimentConfig base = tiny_config();
  base.rounds = 15;
  base.aggregation = AggregationKind::kOneLayerSac;
  const auto one = run_fl_experiment(base);
  base.aggregation = AggregationKind::kTwoLayerSac;
  const auto two = run_fl_experiment(base);
  EXPECT_NEAR(two.final_accuracy, one.final_accuracy, 0.15);
}

TEST(FlExperiment, FractionHalfStillLearns) {
  FlExperimentConfig cfg = tiny_config();
  cfg.peers = 8;
  cfg.subgroups = 4;
  cfg.group_size = 0;
  cfg.fraction_p = 0.5;
  cfg.rounds = 15;
  const auto r = run_fl_experiment(cfg);
  EXPECT_GT(r.final_accuracy, 0.25);
}

TEST(FlExperiment, DropoutsWithFaultToleranceStillLearn) {
  FlExperimentConfig cfg = tiny_config();
  cfg.sac_k = 2;
  cfg.dropout_after_share_prob = 0.15;
  cfg.rounds = 15;
  const auto r = run_fl_experiment(cfg);
  EXPECT_GT(r.final_accuracy, 0.25);
}

TEST(FlExperiment, NonIidHurtsAccuracy) {
  // The paper's consistent ordering: IID >= Non-IID(5%) >= Non-IID(0%).
  FlExperimentConfig cfg = tiny_config();
  cfg.rounds = 15;
  cfg.distribution = DataDistribution::kIid;
  const auto iid = run_fl_experiment(cfg);
  cfg.distribution = DataDistribution::kNonIid0;
  const auto non0 = run_fl_experiment(cfg);
  EXPECT_GE(iid.final_accuracy + 0.05, non0.final_accuracy);
}

TEST(FlExperiment, GossipBaselineMatchesPlainFedAvg) {
  // BrainTorrent-style gossip averaging is numerically the same global
  // model as plain FedAvg — the difference is privacy, not accuracy.
  FlExperimentConfig cfg = tiny_config();
  cfg.rounds = 8;
  cfg.aggregation = AggregationKind::kPlainFedAvg;
  const auto plain = run_fl_experiment(cfg);
  cfg.aggregation = AggregationKind::kGossipCenter;
  const auto gossip = run_fl_experiment(cfg);
  EXPECT_EQ(plain.final_accuracy, gossip.final_accuracy);
}

TEST(FlExperiment, SampleWeightedSacMatchesPlainFedAvg) {
  // With weight_by_samples, a single-subgroup secure aggregation equals
  // the exact McMahan sample-weighted average.
  FlExperimentConfig cfg = tiny_config();
  cfg.peers = 5;
  cfg.group_size = 5;  // one group: weighted SAC = weighted FedAvg
  cfg.rounds = 5;
  cfg.weight_by_samples = true;
  cfg.aggregation = AggregationKind::kTwoLayerSac;
  const auto weighted = run_fl_experiment(cfg);
  cfg.weight_by_samples = false;
  cfg.aggregation = AggregationKind::kPlainFedAvg;
  const auto plain = run_fl_experiment(cfg);
  EXPECT_NEAR(weighted.final_accuracy, plain.final_accuracy, 0.03);
}

TEST(FlExperiment, ObserverSeesEveryRound) {
  FlExperimentConfig cfg = tiny_config();
  std::size_t calls = 0;
  run_fl_experiment(cfg, [&](const RoundRecord& rec) {
    ++calls;
    EXPECT_EQ(rec.round, calls);
  });
  EXPECT_EQ(calls, cfg.rounds);
}

TEST(MovingAverage, WindowedMean) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto ma = moving_average(xs, 3);
  EXPECT_DOUBLE_EQ(ma[0], 1.0);
  EXPECT_DOUBLE_EQ(ma[1], 1.5);
  EXPECT_DOUBLE_EQ(ma[2], 2.0);
  EXPECT_DOUBLE_EQ(ma[3], 3.0);
  EXPECT_DOUBLE_EQ(ma[4], 4.0);
}

}  // namespace
}  // namespace p2pfl::core
