// Tier-1 tests for the chaos layer: stochastic network imperfection
// (loss / duplication / reordering / partitions), the ChaosEngine's
// deterministic fault plans, and the protocol hardening that lets SAC
// and the two-layer aggregator survive them.
//
// The central property throughout: faults may delay or kill a round, but
// any round that *does* commit carries the exact average of its
// contributing peers — duplicates never double-count, retransmissions
// never inject stale data.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/cost_model.hpp"
#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "chaos/soak.hpp"
#include "core/topology.hpp"
#include "core/two_layer_agg.hpp"
#include "core/wire.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "secagg/sac_actor.hpp"

namespace p2pfl::chaos {
namespace {

struct Recorder : net::Endpoint {
  std::vector<net::Envelope> got;
  void deliver(const net::Envelope& env) override { got.push_back(env); }
};

std::uint64_t counter_value(sim::Simulator& sim, const std::string& name) {
  const auto& counters = sim.obs().metrics.counters();
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value();
}

TEST(ChaosNet, DropEverythingDeliversNothingAndCountsDrops) {
  sim::Simulator sim(7);
  net::NetworkConfig cfg{.base_latency = 10 * kMillisecond};
  cfg.faults.drop_prob = 1.0;
  net::Network net(sim, cfg);
  Recorder r0, r1;
  net.attach(0, &r0);
  net.attach(1, &r1);
  for (int i = 0; i < 10; ++i) net.send(0, 1, "msg", i, 100);
  sim.run();
  EXPECT_TRUE(r1.got.empty());
  // The sender paid for the bytes (they left its NIC)...
  EXPECT_EQ(net.stats().sent.messages, 10u);
  // ...and every loss is accounted, in the stats table and the registry.
  EXPECT_EQ(net.stats().dropped_by_reason.at("chaos_loss"), 10u);
  EXPECT_EQ(counter_value(sim, "net.dropped.chaos_loss"), 10u);
  EXPECT_EQ(net.stats().delivered.messages, 0u);
}

TEST(ChaosNet, DuplicationDeliversEveryMessageTwice) {
  sim::Simulator sim(7);
  net::NetworkConfig cfg{.base_latency = 10 * kMillisecond};
  cfg.faults.duplicate_prob = 1.0;
  net::Network net(sim, cfg);
  Recorder r1;
  net.attach(0, &r1);  // sender must be attachable too
  net.attach(1, &r1);
  for (int i = 0; i < 5; ++i) net.send(0, 1, "msg", i, 100);
  sim.run();
  EXPECT_EQ(r1.got.size(), 10u);
  EXPECT_EQ(counter_value(sim, "net.chaos.duplicates"), 5u);
  // Send-side accounting counts the message once; the duplicate is a
  // network artifact, not a second transmission.
  EXPECT_EQ(net.stats().sent.messages, 5u);
}

TEST(ChaosNet, ReorderJitterShufflesArrivalOrder) {
  sim::Simulator sim(11);
  net::NetworkConfig cfg{.base_latency = 10 * kMillisecond};
  cfg.faults.reorder_prob = 1.0;
  cfg.faults.reorder_jitter = 500 * kMillisecond;
  net::Network net(sim, cfg);
  Recorder r1;
  net.attach(0, &r1);
  net.attach(1, &r1);
  std::vector<int> sent_order;
  for (int i = 0; i < 20; ++i) {
    sent_order.push_back(i);
    net.send(0, 1, "msg", i, 100);
  }
  sim.run();
  ASSERT_EQ(r1.got.size(), 20u);
  std::vector<int> arrival;
  for (const auto& env : r1.got) {
    arrival.push_back(std::any_cast<int>(env.body));
  }
  EXPECT_NE(arrival, sent_order);  // at least one pair overtook another
  std::sort(arrival.begin(), arrival.end());
  EXPECT_EQ(arrival, sent_order);  // ...but nothing was lost or duplicated
}

TEST(ChaosNet, PerLinkFaultsOverrideDefaults) {
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  Recorder r1, r2;
  net.attach(0, &r1);
  net.attach(1, &r1);
  net.attach(2, &r2);
  net.set_link_faults(0, 1, {.drop_prob = 1.0});
  for (int i = 0; i < 5; ++i) {
    net.send(0, 1, "msg", i, 100);
    net.send(0, 2, "msg", i, 100);
  }
  sim.run();
  EXPECT_TRUE(r1.got.empty());
  EXPECT_EQ(r2.got.size(), 5u);
  net.clear_link_faults(0, 1);
  net.send(0, 1, "msg", 99, 100);
  sim.run();
  EXPECT_EQ(r1.got.size(), 1u);
}

TEST(ChaosNet, KindPrefixFaultsLongestPrefixWins) {
  sim::Simulator sim(7);
  // Raw int bodies on protocol kinds: disable encode verification, which
  // would otherwise reject bodies the registered codecs cannot encode.
  net::NetworkConfig ncfg{.base_latency = 10 * kMillisecond};
  ncfg.encode_verify = false;
  net::Network net(sim, ncfg);
  Recorder r1;
  net.attach(0, &r1);
  net.attach(1, &r1);
  // "agg/" is lossless but the more specific "agg/upload" loses all.
  net.set_kind_faults("agg/", {});
  net.set_kind_faults("agg/upload", {.drop_prob = 1.0});
  net.send(0, 1, "agg/upload", 1, 100);
  net.send(0, 1, "agg/result", 2, 100);
  net.send(0, 1, "raft/vote", 3, 100);
  sim.run();
  ASSERT_EQ(r1.got.size(), 2u);
  EXPECT_EQ(r1.got[0].kind, "agg/result");
  EXPECT_EQ(r1.got[1].kind, "raft/vote");
  net.clear_kind_faults("agg/upload");
  net.send(0, 1, "agg/upload", 4, 100);
  sim.run();
  EXPECT_EQ(r1.got.size(), 3u);
}

TEST(ChaosNet, PartitionBlocksCrossGroupTrafficUntilHealed) {
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  Recorder r;
  for (PeerId p = 0; p < 4; ++p) net.attach(p, &r);
  net.partition({{0, 1}, {2, 3}});
  EXPECT_TRUE(net.partition_active());
  EXPECT_FALSE(net.partitioned(0, 1));
  EXPECT_TRUE(net.partitioned(0, 2));
  net.send(0, 1, "a", 0, 10);  // same side: flows
  net.send(0, 2, "b", 0, 10);  // across: dropped at send time
  sim.run();
  EXPECT_EQ(r.got.size(), 1u);
  EXPECT_EQ(r.got[0].kind, "a");
  EXPECT_EQ(net.stats().dropped_by_reason.at("partitioned"), 1u);
  net.heal();
  EXPECT_FALSE(net.partition_active());
  net.send(0, 2, "b", 0, 10);
  sim.run();
  EXPECT_EQ(r.got.size(), 2u);
}

TEST(ChaosNet, UnlistedPeersShareTheImplicitPartitionGroup) {
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  Recorder r;
  for (PeerId p = 0; p < 3; ++p) net.attach(p, &r);
  net.partition({{0}});  // isolate peer 0; 1 and 2 stay connected
  EXPECT_TRUE(net.partitioned(0, 1));
  EXPECT_TRUE(net.partitioned(2, 0));
  EXPECT_FALSE(net.partitioned(1, 2));
}

TEST(ChaosNet, DropTableMirrorsObsCountersAcrossReasons) {
  sim::Simulator sim(7);
  net::NetworkConfig cfg{.base_latency = 10 * kMillisecond};
  cfg.faults.drop_prob = 1.0;
  net::Network net(sim, cfg);
  Recorder r;
  net.attach(0, &r);
  net.attach(1, &r);
  net.crash(2);
  net.send(2, 1, "x", 0, 10);  // sender_crashed
  net.send(0, 1, "x", 0, 10);  // chaos_loss
  sim.run();
  for (const auto& [reason, count] : net.stats().dropped_by_reason) {
    EXPECT_EQ(counter_value(sim, "net.dropped." + reason), count) << reason;
  }
  EXPECT_EQ(net.stats().dropped_by_reason.size(), 2u);
}

TEST(ChaosEngineTest, ExecutesPlannedCrashAndRestart) {
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  ChaosPlan plan;
  plan.crash_for(100 * kMillisecond, 3, 400 * kMillisecond);
  ChaosEngine engine(net, plan);
  engine.start();
  sim.run_for(200 * kMillisecond);
  EXPECT_TRUE(net.crashed(3));
  EXPECT_TRUE(engine.peer_down(3));
  EXPECT_EQ(engine.crashes(), 1u);
  sim.run_for(400 * kMillisecond);  // restart at t=500ms
  EXPECT_FALSE(net.crashed(3));
  EXPECT_EQ(engine.restarts(), 1u);
  EXPECT_EQ(engine.peers_down(), 0u);
  EXPECT_EQ(counter_value(sim, "chaos.crash"), 1u);
  EXPECT_EQ(counter_value(sim, "chaos.restart"), 1u);
}

TEST(ChaosEngineTest, FaultWindowSetsAndRestoresNetworkDefaults) {
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  ChaosPlan plan;
  plan.fault_window(100 * kMillisecond, 500 * kMillisecond,
                    {.drop_prob = 0.5, .duplicate_prob = 0.25});
  ChaosEngine engine(net, plan);
  engine.start();
  EXPECT_EQ(net.config().faults.drop_prob, 0.0);
  sim.run_for(200 * kMillisecond);
  EXPECT_EQ(net.config().faults.drop_prob, 0.5);
  EXPECT_EQ(net.config().faults.duplicate_prob, 0.25);
  sim.run_for(400 * kMillisecond);
  EXPECT_EQ(net.config().faults.drop_prob, 0.0);
  EXPECT_EQ(net.config().faults.duplicate_prob, 0.0);
}

TEST(ChaosEngineTest, PartitionWindowAppliesAndHeals) {
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  ChaosPlan plan;
  plan.partition_window(100 * kMillisecond, 300 * kMillisecond,
                        {{0}, {1, 2}});
  ChaosEngine engine(net, plan);
  engine.start();
  EXPECT_FALSE(net.partition_active());
  sim.run_for(150 * kMillisecond);
  EXPECT_TRUE(net.partition_active());
  EXPECT_TRUE(net.partitioned(0, 1));
  sim.run_for(250 * kMillisecond);
  EXPECT_FALSE(net.partition_active());
}

using ChurnLog = std::vector<std::tuple<SimTime, PeerId, bool>>;

ChurnLog run_churn(std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  ChurnLog log;
  ChaosEngineHooks hooks;
  hooks.crash = [&](PeerId p) {
    log.emplace_back(sim.now(), p, false);
    net.crash(p);
  };
  hooks.restart = [&](PeerId p) {
    log.emplace_back(sim.now(), p, true);
    net.restore(p);
  };
  ChurnSpec churn;
  churn.start = 0;
  churn.end = 5 * kSecond;
  churn.mttf = 300 * kMillisecond;
  churn.mttr = 100 * kMillisecond;
  churn.peers = {0, 1, 2, 3, 4, 5};
  churn.max_concurrent_down = 2;
  ChaosPlan plan;
  plan.churn(churn);
  ChaosEngine engine(net, plan, hooks);
  engine.start();
  sim.run_for(6 * kSecond);
  return log;
}

TEST(ChaosEngineTest, ChurnIsSeedDeterministic) {
  const ChurnLog a = run_churn(2024);
  const ChurnLog b = run_churn(2024);
  const ChurnLog c = run_churn(2025);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // identical seed: identical fault timeline
  EXPECT_NE(a, c);  // different seed: different draws
}

TEST(ChaosEngineTest, ChurnRespectsConcurrencyGuard) {
  sim::Simulator sim(99);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  ChurnSpec churn;
  churn.start = 0;
  churn.end = 5 * kSecond;
  churn.mttf = 100 * kMillisecond;  // aggressive: far more failure
  churn.mttr = 400 * kMillisecond;  // draws than the guard admits
  churn.peers = {0, 1, 2, 3, 4, 5, 6, 7};
  churn.max_concurrent_down = 3;
  ChaosPlan plan;
  plan.churn(churn);
  ChaosEngine engine(net, plan);
  engine.start();
  std::size_t max_down = 0;
  for (int i = 0; i < 60; ++i) {
    sim.run_for(100 * kMillisecond);
    max_down = std::max(max_down, engine.peers_down());
  }
  EXPECT_GT(engine.crashes(), 0u);
  EXPECT_LE(max_down, 3u);
}

TEST(ChaosEngineTest, RedundantCrashAndRestartNoOpInsteadOfRefiring) {
  // Overlapping plan entries must not re-run the crash/restart hooks:
  // double-crashing a system peer would cancel its timers twice and
  // double-restarting would re-arm them, so the engine records the
  // redundancy and does nothing.
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  std::size_t crash_calls = 0, restart_calls = 0;
  ChaosEngineHooks hooks;
  hooks.crash = [&](PeerId p) {
    ++crash_calls;
    net.crash(p);
  };
  hooks.restart = [&](PeerId p) {
    ++restart_calls;
    net.restore(p);
  };
  ChaosPlan plan;
  plan.crash_at(100 * kMillisecond, 3)
      .crash_at(150 * kMillisecond, 3)   // redundant: already down
      .restart_at(300 * kMillisecond, 3)
      .restart_at(350 * kMillisecond, 3)  // redundant: already up
      .restart_at(400 * kMillisecond, 5);  // redundant: never crashed
  ChaosEngine engine(net, plan, hooks);
  engine.start();
  sim.run_for(1 * kSecond);
  EXPECT_EQ(crash_calls, 1u);
  EXPECT_EQ(restart_calls, 1u);
  EXPECT_EQ(engine.crashes(), 1u);
  EXPECT_EQ(engine.restarts(), 1u);
  EXPECT_EQ(engine.redundant_faults(), 3u);
  EXPECT_EQ(counter_value(sim, "chaos.redundant"), 3u);
  // Redundant requests are not injected faults.
  EXPECT_EQ(engine.faults_injected(), 2u);
}

TEST(ChaosEngineTest, AmnesiaRestartDispatchesToTheAmnesiaHook) {
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  std::vector<std::pair<PeerId, bool>> restarts;  // (peer, amnesia)
  ChaosEngineHooks hooks;
  hooks.restart = [&](PeerId p) {
    restarts.emplace_back(p, false);
    net.restore(p);
  };
  hooks.restart_amnesia = [&](PeerId p) {
    restarts.emplace_back(p, true);
    net.restore(p);
  };
  ChaosPlan plan;
  plan.crash_for(100 * kMillisecond, 1, 200 * kMillisecond);
  plan.crash_for(100 * kMillisecond, 2, 200 * kMillisecond,
                 /*amnesia=*/true);
  ChaosEngine engine(net, plan, hooks);
  engine.start();
  sim.run_for(1 * kSecond);
  ASSERT_EQ(restarts.size(), 2u);
  EXPECT_EQ(engine.restarts(), 2u);
  EXPECT_EQ(engine.amnesia_restarts(), 1u);
  for (const auto& [peer, amnesia] : restarts) {
    EXPECT_EQ(amnesia, peer == 2) << "peer " << peer;
  }
  EXPECT_EQ(counter_value(sim, "chaos.restart"), 1u);
  EXPECT_EQ(counter_value(sim, "chaos.amnesia_restart"), 1u);
}

TEST(ChaosEngineTest, AmnesiaFallsBackToPlainRestartWithoutAHook) {
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 10 * kMillisecond});
  ChaosPlan plan;
  plan.crash_for(100 * kMillisecond, 4, 200 * kMillisecond,
                 /*amnesia=*/true);
  ChaosEngine engine(net, plan);  // default hooks: net.crash/net.restore
  engine.start();
  sim.run_for(1 * kSecond);
  EXPECT_FALSE(net.crashed(4));
  EXPECT_EQ(engine.amnesia_restarts(), 1u);
}

TEST(ChaosEngineTest, ChurnAmnesiaProbabilityControlsRestartKind) {
  auto churn_with = [](double amnesia_prob) {
    sim::Simulator sim(5);
    net::Network net(sim, {.base_latency = 10 * kMillisecond});
    ChurnSpec churn;
    churn.start = 0;
    churn.end = 5 * kSecond;
    churn.mttf = 300 * kMillisecond;
    churn.mttr = 100 * kMillisecond;
    churn.peers = {0, 1, 2, 3};
    churn.amnesia_prob = amnesia_prob;
    ChaosPlan plan;
    plan.churn(churn);
    ChaosEngine engine(net, plan);
    engine.start();
    sim.run_for(6 * kSecond);
    return std::make_pair(engine.restarts(), engine.amnesia_restarts());
  };
  const auto [plain_total, plain_amnesia] = churn_with(0.0);
  EXPECT_GT(plain_total, 0u);
  EXPECT_EQ(plain_amnesia, 0u);
  const auto [always_total, always_amnesia] = churn_with(1.0);
  EXPECT_GT(always_total, 0u);
  EXPECT_EQ(always_amnesia, always_total);
}

// --- protocol hardening ----------------------------------------------------

// A subgroup of SacPeers over a faulty network; peer i contributes
// (i+1)*ones, so the exact average is (n+1)/2.
struct LossySac {
  LossySac(std::size_t n, secagg::SacActorOptions opts,
           net::LinkFaults faults, std::uint64_t seed)
      : sim(seed),
        net(sim,
            net::NetworkConfig{.base_latency = 15 * kMillisecond,
                               .faults = faults}) {
    for (PeerId id = 0; id < n; ++id) {
      group.push_back(id);
      hosts.push_back(std::make_unique<net::PeerHost>());
      net.attach(id, hosts.back().get());
      peers.push_back(std::make_unique<secagg::SacPeer>(
          id, "sac/chaos", opts, net, *hosts.back()));
      peers.back()->on_complete = [this, id](secagg::RoundId r,
                                             const secagg::Vector& avg) {
        results[id] = std::make_pair(r, avg);
      };
    }
  }
  void begin(secagg::RoundId round, std::size_t leader_pos) {
    for (PeerId id = 0; id < peers.size(); ++id) {
      secagg::Vector v(8, static_cast<float>(id + 1));
      peers[id]->begin_round(round, std::move(v), group, leader_pos);
    }
  }
  sim::Simulator sim;
  net::Network net;
  std::vector<PeerId> group;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::vector<std::unique_ptr<secagg::SacPeer>> peers;
  std::map<PeerId, std::pair<secagg::RoundId, secagg::Vector>> results;
};

TEST(ChaosSac, CompletedRoundIsExactUnderLossAndDuplication) {
  // The chaos property from the issue: loss and duplication may slow a
  // round down (retransmissions), but a round that completes yields the
  // exact true average — never a double-counted or partial one.
  for (std::uint64_t seed : {3u, 11u, 42u}) {
    secagg::SacActorOptions opts;
    opts.k = 4;
    opts.share_timeout = 100 * kMillisecond;
    opts.subtotal_timeout = 100 * kMillisecond;
    opts.share_retry_limit = 10;
    net::LinkFaults faults;
    faults.drop_prob = 0.15;
    faults.duplicate_prob = 0.15;
    LossySac s(6, opts, faults, seed);
    s.begin(1, 2);
    s.sim.run_for(60 * kSecond);
    ASSERT_TRUE(s.results.count(2)) << "round never completed, seed "
                                    << seed;
    for (float v : s.results[2].second) {
      EXPECT_NEAR(v, 3.5f, 1e-3f) << "seed " << seed;
    }
    EXPECT_GT(counter_value(s.sim, "net.dropped.chaos_loss"), 0u);
  }
}

TEST(ChaosSac, TotalDuplicationNeverDoubleCounts) {
  // Every single message delivered twice: idempotent handlers must keep
  // the average exact (a double-counted share would shift it).
  secagg::SacActorOptions opts;
  opts.k = 3;
  net::LinkFaults faults;
  faults.duplicate_prob = 1.0;
  LossySac s(5, opts, faults, 7);
  s.begin(1, 0);
  s.sim.run();
  ASSERT_TRUE(s.results.count(0));
  for (float v : s.results[0].second) {
    EXPECT_NEAR(v, 3.0f, 1e-4f);
  }
  EXPECT_EQ(counter_value(s.sim, "net.chaos.duplicates"),
            counter_value(s.sim, "net.sent.messages"));
}

// --- corruption faults ------------------------------------------------------

TEST(ChaosCorrupt, TruncationAlwaysDropsWithCorruptReason) {
  // Strict decoders reject every proper prefix, so a truncated frame
  // can never reach the actor: it is dropped under its own reason,
  // before any delivered accounting.
  core::wire::register_codecs();  // "join" codec
  sim::Simulator sim(7);
  net::NetworkConfig cfg{.base_latency = 10 * kMillisecond};
  cfg.faults.truncate_prob = 1.0;
  net::Network net(sim, cfg);
  Recorder r0, r1;
  net.attach(0, &r0);
  net.attach(1, &r1);
  for (int i = 0; i < 10; ++i) {
    net.send(0, 1, "join", core::wire::JoinRequestMsg{0, kNoPeer},
             core::wire::kJoinWire);
  }
  sim.run();
  EXPECT_TRUE(r1.got.empty());
  EXPECT_EQ(net.stats().sent.messages, 10u);
  EXPECT_EQ(net.stats().delivered.messages, 0u);
  EXPECT_EQ(net.stats().dropped_by_reason.at("corrupt"), 10u);
  EXPECT_EQ(counter_value(sim, "net.chaos.corrupted"), 10u);
  EXPECT_EQ(counter_value(sim, "net.dropped.corrupt"), 10u);
}

TEST(ChaosCorrupt, BitFlipDeliversTypedPayloadOrDrops) {
  // A single flipped bit either survives strict decoding — in which
  // case the actor receives a well-formed *typed* payload, never raw
  // bytes — or the frame is dropped as corrupt. Nothing else.
  core::wire::register_codecs();
  sim::Simulator sim(8);
  net::NetworkConfig cfg{.base_latency = 10 * kMillisecond};
  cfg.faults.corrupt_prob = 1.0;
  net::Network net(sim, cfg);
  Recorder r0, r1;
  net.attach(0, &r0);
  net.attach(1, &r1);
  const int kSends = 200;
  for (int i = 0; i < kSends; ++i) {
    net.send(0, 1, "join", core::wire::JoinRequestMsg{5, 9},
             core::wire::kJoinWire);
  }
  sim.run();
  EXPECT_EQ(counter_value(sim, "net.chaos.corrupted"),
            static_cast<std::uint64_t>(kSends));
  const auto& dropped = net.stats().dropped_by_reason;
  const std::uint64_t corrupt_drops =
      dropped.count("corrupt") ? dropped.at("corrupt") : 0;
  EXPECT_EQ(r1.got.size() + corrupt_drops,
            static_cast<std::size_t>(kSends));
  // An 8-byte join frame has no length fields, so every flip decodes —
  // into a value that differs from the original in exactly one bit.
  for (const auto& env : r1.got) {
    const auto* req = net::payload<core::wire::JoinRequestMsg>(env.body);
    ASSERT_NE(req, nullptr);
    EXPECT_TRUE(req->candidate != 5 || req->stale_representative != 9);
  }
}

TEST(ChaosCorrupt, KindsWithoutCodecsPassThroughUndamaged) {
  // Corruption operates on real encodings; a raw test kind has none, so
  // the fault leaves it untouched rather than guessing at its bytes.
  sim::Simulator sim(9);
  net::NetworkConfig cfg{.base_latency = 10 * kMillisecond};
  cfg.faults.corrupt_prob = 1.0;
  cfg.faults.truncate_prob = 1.0;
  net::Network net(sim, cfg);
  Recorder r0, r1;
  net.attach(0, &r0);
  net.attach(1, &r1);
  for (int i = 0; i < 5; ++i) net.send(0, 1, "msg", i, 100);
  sim.run();
  ASSERT_EQ(r1.got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(std::any_cast<int>(r1.got[static_cast<std::size_t>(i)].body),
              i);
  }
  EXPECT_EQ(counter_value(sim, "net.chaos.corrupted"), 0u);
}

TEST(ChaosCorrupt, SacRoundsCompleteAndStayExactUnderTruncation) {
  // Truncated frames are always rejected by the strict decoders, so the
  // retry machinery sees them as ordinary losses: rounds still converge
  // to the exact average.
  for (std::uint64_t seed : {5u, 23u}) {
    secagg::SacActorOptions opts;
    opts.k = 4;
    opts.share_timeout = 100 * kMillisecond;
    opts.subtotal_timeout = 100 * kMillisecond;
    opts.share_retry_limit = 10;
    net::LinkFaults faults;
    faults.truncate_prob = 0.15;
    LossySac s(6, opts, faults, seed);
    s.begin(1, 2);
    s.sim.run_for(60 * kSecond);
    ASSERT_TRUE(s.results.count(2)) << "round never completed, seed "
                                    << seed;
    for (float v : s.results[2].second) {
      EXPECT_NEAR(v, 3.5f, 1e-3f) << "seed " << seed;
    }
    EXPECT_GT(counter_value(s.sim, "net.chaos.corrupted"), 0u)
        << "seed " << seed;
    EXPECT_GT(counter_value(s.sim, "net.dropped.corrupt"), 0u)
        << "seed " << seed;
  }
}

TEST(ChaosCorrupt, SacRoundsCompleteUnderLowRateBitFlips) {
  // Bit flips are nastier than truncation: a flip in a float payload
  // decodes fine and delivers a damaged value (there is no checksum —
  // exactness is out of reach, like UDP without one), while a flip in a
  // framing field is rejected and retried. Either way liveness holds:
  // the round terminates with a well-formed result vector.
  for (std::uint64_t seed : {5u, 23u}) {
    secagg::SacActorOptions opts;
    opts.k = 4;
    opts.share_timeout = 100 * kMillisecond;
    opts.subtotal_timeout = 100 * kMillisecond;
    opts.share_retry_limit = 10;
    net::LinkFaults faults;
    faults.corrupt_prob = 0.10;
    LossySac s(6, opts, faults, seed);
    s.begin(1, 2);
    s.sim.run_for(60 * kSecond);
    ASSERT_TRUE(s.results.count(2)) << "round never completed, seed "
                                    << seed;
    EXPECT_EQ(s.results[2].second.size(), 8u) << "seed " << seed;
    EXPECT_GT(counter_value(s.sim, "net.chaos.corrupted"), 0u)
        << "seed " << seed;
  }
}

TEST(ChaosAgg, DuplicationKeepsDeliveredBytesAtPaperCounts) {
  // Eq. (4) regression: with every message duplicated in flight
  // (duplicate_prob = 1, no loss) the *delivered* per-kind accounting
  // must still equal the paper's protocol byte counts exactly. The
  // duplicated copies are real deliveries — the actors see them — but
  // they ride under distinct "dup:<kind>" labels and the `duplicated`
  // counter, never under `delivered`.
  constexpr std::uint64_t kWire = 1u << 20;
  sim::Simulator sim(21);
  net::NetworkConfig ncfg{.base_latency = 15 * kMillisecond};
  ncfg.faults.duplicate_prob = 1.0;
  net::Network net(sim, ncfg);
  const core::Topology topo = core::Topology::even(9, 3);
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  for (PeerId id : topo.all_peers()) {
    auto host = std::make_unique<net::PeerHost>();
    net.attach(id, host.get());
    hosts.emplace(id, std::move(host));
  }
  core::AggregationConfig cfg;
  cfg.model_wire_bytes = kWire;
  core::TwoLayerAggregator agg(
      topo, cfg, net, [&](PeerId id) -> net::PeerHost& {
        return *hosts.at(id);
      });
  std::optional<secagg::Vector> global;
  agg.on_global_model = [&](std::uint64_t, const secagg::Vector& g,
                            std::size_t) { global = g; };
  core::RoundLeadership lead;
  lead.subgroup_leaders = {0, 3, 6};
  lead.fedavg_leader = 0;
  agg.begin_round(1, lead, [](PeerId id) {
    return secagg::Vector(4, static_cast<float>(id + 1));
  });
  sim.run();
  ASSERT_TRUE(global.has_value());
  for (float v : *global) EXPECT_NEAR(v, 5.0f, 1e-4f);  // mean of 1..9

  const net::TrafficStats& st = net.stats();
  // No loss: every original arrives, so delivered == sent, per kind and
  // byte-exactly, despite the duplicate deliveries.
  EXPECT_EQ(st.delivered.messages, st.sent.messages);
  EXPECT_EQ(st.delivered.bytes, st.sent.bytes);
  for (const auto& [kind, sent] : st.sent_by_kind) {
    ASSERT_TRUE(st.delivered_by_kind.count(kind)) << kind;
    EXPECT_EQ(st.delivered_by_kind.at(kind).messages, sent.messages)
        << kind;
    EXPECT_EQ(st.delivered_by_kind.at(kind).bytes, sent.bytes) << kind;
  }
  // Each non-self message was duplicated exactly once; the copies are
  // all accounted under "dup:" labels.
  EXPECT_EQ(st.duplicated.messages, st.sent.messages);
  EXPECT_EQ(st.duplicated.bytes, st.sent.bytes);
  std::uint64_t dup_msgs = 0;
  for (const auto& [kind, c] : st.delivered_by_kind) {
    if (kind.rfind("dup:", 0) == 0) dup_msgs += c.messages;
  }
  EXPECT_EQ(dup_msgs, st.duplicated.messages);
  EXPECT_EQ(counter_value(sim, "net.delivered.dup.messages"),
            st.duplicated.messages);
  EXPECT_EQ(counter_value(sim, "net.delivered.dup.bytes"),
            st.duplicated.bytes);
  // The headline number: the delivered model payload still sums to the
  // paper's Eq. (4) cost, mn^2 + mn - 2 model transfers for m = n = 3.
  double units = 0.0;
  for (const auto& [kind, c] : st.delivered_by_kind) {
    if (kind.rfind("dup:", 0) != 0) units += static_cast<double>(c.payload);
  }
  units /= static_cast<double>(kWire);
  EXPECT_DOUBLE_EQ(units, analysis::two_layer_cost_eq4(3, 3));
}

TEST(ChaosAgg, UploadRetryRecoversFromUploadLossWindow) {
  // All "agg/upload" transfers are lost for the first 1.2 s; the
  // subgroup leaders' capped-backoff retries deliver them afterwards and
  // the round commits with every subgroup included.
  sim::Simulator sim(5);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  const core::Topology topo = core::Topology::even(9, 3);
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  for (PeerId id : topo.all_peers()) {
    auto host = std::make_unique<net::PeerHost>();
    net.attach(id, host.get());
    hosts.emplace(id, std::move(host));
  }
  core::AggregationConfig cfg;
  cfg.collect_timeout = 30 * kSecond;
  cfg.upload_retry = 400 * kMillisecond;
  core::TwoLayerAggregator agg(
      topo, cfg, net, [&](PeerId id) -> net::PeerHost& {
        return *hosts.at(id);
      });
  std::optional<secagg::Vector> global;
  std::size_t groups_used = 0;
  agg.on_global_model = [&](std::uint64_t, const secagg::Vector& g,
                            std::size_t used) {
    global = g;
    groups_used = used;
  };
  net.set_kind_faults("agg/upload", {.drop_prob = 1.0});
  sim.schedule_at(1200 * kMillisecond,
                  [&] { net.clear_kind_faults("agg/upload"); });
  core::RoundLeadership lead;
  lead.subgroup_leaders = {0, 3, 6};
  lead.fedavg_leader = 0;
  agg.begin_round(1, lead, [](PeerId id) {
    return secagg::Vector(4, static_cast<float>(id + 1));
  });
  sim.run_for(30 * kSecond);
  ASSERT_TRUE(global.has_value());
  EXPECT_EQ(groups_used, 3u);
  EXPECT_EQ(agg.last_contributors().size(), 9u);
  for (float v : *global) EXPECT_NEAR(v, 5.0f, 1e-4f);  // mean of 1..9
  EXPECT_GE(counter_value(sim, "agg.upload_retries"), 2u);
  EXPECT_GT(counter_value(sim, "net.dropped.chaos_loss"), 0u);
}

// --- chaos soak (fast configuration; the long one lives in the slow
// suite, see chaos_soak_test.cpp) -------------------------------------------

ChaosSoakConfig fast_soak_config(std::uint64_t seed) {
  ChaosSoakConfig cfg;
  cfg.peers = 12;
  cfg.groups = 3;
  cfg.rounds = 8;
  cfg.dim = 4;
  cfg.seed = seed;
  cfg.round_interval = 1 * kSecond;
  cfg.net.faults.drop_prob = 0.05;
  cfg.net.faults.duplicate_prob = 0.05;
  cfg.churn_mttf = 5 * kSecond;
  cfg.churn_mttr = 700 * kMillisecond;
  return cfg;
}

TEST(ChaosSoak, FastSoakStaysLiveAndExact) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const ChaosSoakResult res = run_chaos_soak(fast_soak_config(seed));
    EXPECT_TRUE(res.liveness_ok) << "seed " << seed;
    EXPECT_TRUE(res.all_commits_exact)
        << "seed " << seed << " max error " << res.max_abs_error;
    EXPECT_GE(res.rounds_committed, 3u) << "seed " << seed;
    EXPECT_EQ(res.rounds_started,
              res.rounds_committed + res.rounds_aborted);
  }
}

TEST(ChaosSoak, SoakStaysLiveAndExactUnderTruncation) {
  // Loss + duplication + churn + truncation all at once: truncated
  // frames never survive the strict decoders, so committed rounds stay
  // exact and the rejects land in the drop table.
  for (std::uint64_t seed : {1u, 6u}) {
    ChaosSoakConfig cfg = fast_soak_config(seed);
    cfg.net.faults.truncate_prob = 0.03;
    const ChaosSoakResult res = run_chaos_soak(cfg);
    EXPECT_TRUE(res.liveness_ok) << "seed " << seed;
    EXPECT_TRUE(res.all_commits_exact)
        << "seed " << seed << " max error " << res.max_abs_error;
    EXPECT_GE(res.rounds_committed, 3u) << "seed " << seed;
  }
}

TEST(ChaosSoak, SoakStaysLiveUnderBitFlips) {
  // Bit flips can silently damage float payloads (no checksum), so
  // exactness is not promised — but every round still terminates and
  // the system keeps committing.
  for (std::uint64_t seed : {1u, 6u}) {
    ChaosSoakConfig cfg = fast_soak_config(seed);
    cfg.net.faults.corrupt_prob = 0.03;
    const ChaosSoakResult res = run_chaos_soak(cfg);
    EXPECT_TRUE(res.liveness_ok) << "seed " << seed;
    EXPECT_GE(res.rounds_committed, 3u) << "seed " << seed;
  }
}

TEST(ChaosSoak, CorruptionSoakIsByteIdenticalForSameSeed) {
  ChaosSoakConfig cfg = fast_soak_config(14);
  cfg.rounds = 5;
  cfg.net.faults.corrupt_prob = 0.05;
  cfg.net.faults.truncate_prob = 0.03;
  cfg.capture_trace = true;
  const ChaosSoakResult a = run_chaos_soak(cfg);
  const ChaosSoakResult b = run_chaos_soak(cfg);
  EXPECT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ChaosSoak, PartitionDegradesThenHeals) {
  ChaosSoakConfig cfg;
  cfg.peers = 12;
  cfg.groups = 3;
  cfg.rounds = 8;
  cfg.seed = 4;
  cfg.round_interval = 1 * kSecond;
  cfg.partition_at = 2 * kSecond + 100 * kMillisecond;
  cfg.heal_at = 4 * kSecond + 100 * kMillisecond;
  const ChaosSoakResult res = run_chaos_soak(cfg);
  EXPECT_TRUE(res.liveness_ok);
  EXPECT_TRUE(res.all_commits_exact);
  // During the window the FedAvg leader only reaches its own island, so
  // committed rounds shrink to its subgroup; after healing, full
  // participation returns.
  bool shrunk = false;
  for (const RoundOutcome& o : res.outcomes) {
    if (o.committed && o.contributors < cfg.peers) shrunk = true;
  }
  EXPECT_TRUE(shrunk);
  ASSERT_FALSE(res.outcomes.empty());
  const RoundOutcome& last = res.outcomes.back();
  EXPECT_TRUE(last.committed);
  EXPECT_EQ(last.contributors, cfg.peers);
}

TEST(ChaosSoak, TraceStreamIsByteIdenticalForSameSeedAndPlan) {
  ChaosSoakConfig cfg = fast_soak_config(9);
  cfg.rounds = 5;
  cfg.partition_at = 1 * kSecond + 500 * kMillisecond;
  cfg.heal_at = 2 * kSecond + 500 * kMillisecond;
  cfg.capture_trace = true;
  const ChaosSoakResult a = run_chaos_soak(cfg);
  const ChaosSoakResult b = run_chaos_soak(cfg);
  EXPECT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  ChaosSoakConfig other = cfg;
  other.seed = 10;
  const ChaosSoakResult c = run_chaos_soak(other);
  EXPECT_NE(a.trace_json, c.trace_json);
}

}  // namespace
}  // namespace p2pfl::chaos
