#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace p2pfl::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_after(30, [&] { order.push_back(3); });
  sim.schedule_after(10, [&] { order.push_back(1); });
  sim.schedule_after(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoAmongSimultaneousEvents) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_after(5, [&] { order.push_back(1); });
  sim.schedule_after(5, [&] { order.push_back(2); });
  sim.schedule_after(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim(1);
  bool fired = false;
  const EventId id = sim.schedule_after(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel is reported
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim(1);
  int count = 0;
  sim.schedule_after(1, [&] {
    ++count;
    sim.schedule_after(1, [&] { ++count; });
  });
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 2);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim(1);
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 50; t += 10) {
    sim.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  sim.run_until(30);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(sim.now(), 30);
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.now(), 100);  // clock advances even past the last event
}

TEST(Simulator, StopBreaksRun) {
  Simulator sim(1);
  int count = 0;
  sim.schedule_after(1, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_after(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim(1);
  sim.schedule_after(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim(1);
  const EventId a = sim.schedule_after(1, [] {});
  sim.schedule_after(2, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PendingIsExactAcrossCancelAndFire) {
  // pending() counts live events only — cancel-then-query and
  // fire-then-query regression for the pooled kernel (the pre-refactor
  // doc claimed tombstones were included; the count is now exact by
  // construction).
  Simulator sim(1);
  const EventId a = sim.schedule_after(1, [] {});
  const EventId b = sim.schedule_after(2, [] {});
  sim.schedule_after(3, [] {});
  EXPECT_EQ(sim.pending(), 3u);
  EXPECT_TRUE(sim.cancel(b));
  EXPECT_EQ(sim.pending(), 2u);  // cancel-then-query: gone immediately
  EXPECT_FALSE(sim.cancel(b));
  EXPECT_EQ(sim.pending(), 2u);
  ASSERT_TRUE(sim.step());  // fires a
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.cancel(a));  // fired events are no longer cancellable
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, FiringOrderSpansAllWheelClasses) {
  // Events land in the near heap (current bucket), the wheel and the
  // far-future overflow heap; firing must still be globally ordered by
  // (time, insertion sequence).
  Simulator sim(1);
  std::vector<int> order;
  const SimDuration far = 8 * kSecond;  // beyond the ~4.2 s wheel horizon
  sim.schedule_after(far, [&] { order.push_back(6); });
  sim.schedule_after(3 * kSecond, [&] { order.push_back(5); });  // wheel
  sim.schedule_after(100, [&] { order.push_back(1); });  // current bucket
  sim.schedule_after(far + 1, [&] { order.push_back(7); });
  sim.schedule_after(15 * kMillisecond, [&] { order.push_back(2); });
  sim.schedule_after(50 * kMillisecond, [&] { order.push_back(3); });
  // Exact tie with a wheel event: insertion order breaks it.
  sim.schedule_after(3 * kSecond, [&] { order.push_back(8); });
  sim.run_until(3 * kSecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 5, 8}));
  // A late far-future event scheduled after time has advanced still
  // sorts against the older far events.
  sim.schedule_after(far, [&] { order.push_back(9); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 5, 8, 6, 7, 9}));
  EXPECT_EQ(sim.now(), 3 * kSecond + far);
}

TEST(Simulator, CursorJumpThenCancelStillReachesFarEvents) {
  // Regression (found by the wheel oracle): run_until makes the cursor
  // jump to the earliest far-future event's bucket and re-home it into
  // the near heap. If that event is then cancelled, stepping must still
  // re-home and fire the next far event — an early advance_to_next
  // returned "idle" when re-homing emptied the far heap.
  Simulator sim(1);
  bool a = false, b = false;
  const EventId id = sim.schedule_after(1'282'680'013, [&] { a = true; });
  sim.schedule_after(3'493'166'413, [&] { b = true; });
  sim.run_until(29 * kSecond);
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(sim.now(), 3'493'166'413);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Timer, OneShotFiresOnce) {
  Simulator sim(1);
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(10);
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmResetsDeadline) {
  Simulator sim(1);
  std::vector<SimTime> fire_times;
  Timer t(sim, [&] { fire_times.push_back(sim.now()); });
  t.arm(10);
  sim.run_until(5);
  t.arm(10);  // reset: should now fire at 15, not 10
  sim.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], 15);
}

TEST(Timer, PeriodicFiresRepeatedlyUntilCancelled) {
  Simulator sim(1);
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm_periodic(10);
  sim.run_until(35);
  EXPECT_EQ(fires, 3);
  t.cancel();
  sim.run_until(100);
  EXPECT_EQ(fires, 3);
}

TEST(Timer, CallbackMayCancelPeriodic) {
  Simulator sim(1);
  int fires = 0;
  Timer t(sim, [&] {
    ++fires;
    if (fires == 2) t.cancel();
  });
  t.arm_periodic(10);
  sim.run_until(200);
  EXPECT_EQ(fires, 2);
}

TEST(Timer, DestructionCancelsPendingEvent) {
  Simulator sim(1);
  int fires = 0;
  {
    Timer t(sim, [&] { ++fires; });
    t.arm(10);
  }
  sim.run();
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace p2pfl::sim
