#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace p2pfl::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_after(30, [&] { order.push_back(3); });
  sim.schedule_after(10, [&] { order.push_back(1); });
  sim.schedule_after(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoAmongSimultaneousEvents) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_after(5, [&] { order.push_back(1); });
  sim.schedule_after(5, [&] { order.push_back(2); });
  sim.schedule_after(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim(1);
  bool fired = false;
  const EventId id = sim.schedule_after(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel is reported
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim(1);
  int count = 0;
  sim.schedule_after(1, [&] {
    ++count;
    sim.schedule_after(1, [&] { ++count; });
  });
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 2);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim(1);
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 50; t += 10) {
    sim.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  sim.run_until(30);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(sim.now(), 30);
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.now(), 100);  // clock advances even past the last event
}

TEST(Simulator, StopBreaksRun) {
  Simulator sim(1);
  int count = 0;
  sim.schedule_after(1, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_after(2, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim(1);
  sim.schedule_after(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim(1);
  const EventId a = sim.schedule_after(1, [] {});
  sim.schedule_after(2, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Timer, OneShotFiresOnce) {
  Simulator sim(1);
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(10);
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmResetsDeadline) {
  Simulator sim(1);
  std::vector<SimTime> fire_times;
  Timer t(sim, [&] { fire_times.push_back(sim.now()); });
  t.arm(10);
  sim.run_until(5);
  t.arm(10);  // reset: should now fire at 15, not 10
  sim.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], 15);
}

TEST(Timer, PeriodicFiresRepeatedlyUntilCancelled) {
  Simulator sim(1);
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm_periodic(10);
  sim.run_until(35);
  EXPECT_EQ(fires, 3);
  t.cancel();
  sim.run_until(100);
  EXPECT_EQ(fires, 3);
}

TEST(Timer, CallbackMayCancelPeriodic) {
  Simulator sim(1);
  int fires = 0;
  Timer t(sim, [&] {
    ++fires;
    if (fires == 2) t.cancel();
  });
  t.arm_periodic(10);
  sim.run_until(200);
  EXPECT_EQ(fires, 2);
}

TEST(Timer, DestructionCancelsPendingEvent) {
  Simulator sim(1);
  int fires = 0;
  {
    Timer t(sim, [&] { ++fires; });
    t.arm(10);
  }
  sim.run();
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace p2pfl::sim
