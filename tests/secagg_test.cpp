#include <gtest/gtest.h>

#include <cmath>

#include "secagg/sac.hpp"
#include "secagg/shares.hpp"

namespace p2pfl::secagg {
namespace {

Vector random_vector(std::size_t dim, Rng& rng) {
  Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

void expect_near(const Vector& a, const Vector& b, float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at element " << i;
  }
}

Vector plain_average(std::span<const Vector> models) {
  Vector avg(models.front().size(), 0.0f);
  for (const auto& m : models) {
    for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += m[i];
  }
  for (float& v : avg) v /= static_cast<float>(models.size());
  return avg;
}

// --- shares ------------------------------------------------------------------

class DivideSchemes : public ::testing::TestWithParam<SplitScheme> {};

TEST_P(DivideSchemes, SharesSumToSecret) {
  Rng rng(11);
  SplitOptions opts;
  opts.scheme = GetParam();
  for (std::size_t n : {1u, 2u, 3u, 5u, 10u, 31u}) {
    const Vector secret = random_vector(64, rng);
    const auto shares = divide(secret, n, rng, opts);
    ASSERT_EQ(shares.size(), n);
    const Vector sum = sum_shares(shares);
    expect_near(sum, secret, 1e-4f);
  }
}

TEST_P(DivideSchemes, SharesDifferFromSecret) {
  Rng rng(12);
  SplitOptions opts;
  opts.scheme = GetParam();
  const Vector secret = random_vector(128, rng);
  const auto shares = divide(secret, 4, rng, opts);
  for (const auto& s : shares) {
    double diff = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      diff += std::abs(static_cast<double>(s[i] - secret[i]));
    }
    EXPECT_GT(diff, 1.0) << "a share equals the secret";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DivideSchemes,
                         ::testing::Values(SplitScheme::kProportional,
                                           SplitScheme::kUniformMask));

TEST(Divide, SingleShareIsSecret) {
  Rng rng(13);
  const Vector secret = random_vector(16, rng);
  const auto shares = divide(secret, 1, rng);
  ASSERT_EQ(shares.size(), 1u);
  expect_near(shares[0], secret, 1e-6f);
}

TEST(Divide, EmptySecretYieldsEmptyShares) {
  Rng rng(14);
  const Vector secret;
  const auto shares = divide(secret, 3, rng);
  ASSERT_EQ(shares.size(), 3u);
  for (const auto& s : shares) EXPECT_TRUE(s.empty());
}

TEST(Divide, DeterministicGivenRngState) {
  const Vector secret{1.0f, -2.0f, 3.5f};
  Rng a(5), b(5);
  const auto sa = divide(secret, 3, a);
  const auto sb = divide(secret, 3, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(sa[i], sb[i]);
}

// --- placement ----------------------------------------------------------------

TEST(Placement, NOutOfNIsSingleIndex) {
  for (std::size_t n : {1u, 3u, 7u}) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto idx = replica_share_indices(j, n, n);
      ASSERT_EQ(idx.size(), 1u);
      EXPECT_EQ(idx[0], j);
    }
  }
}

TEST(Placement, ConsecutiveModularIndices) {
  const auto idx = replica_share_indices(3, 5, 3);  // n=5, k=3: 3 shares
  EXPECT_EQ(idx, (std::vector<std::size_t>{3, 4, 0}));
}

TEST(Placement, HoldersInvertIndices) {
  // Peer j holds share s  <=>  j is a holder of subtotal s.
  for (std::size_t n : {3u, 5u, 8u}) {
    for (std::size_t k = 1; k <= n; ++k) {
      std::vector<std::vector<bool>> holds(n, std::vector<bool>(n, false));
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t s : replica_share_indices(j, n, k)) {
          holds[j][s] = true;
        }
      }
      for (std::size_t s = 0; s < n; ++s) {
        const auto holders = subtotal_holders(s, n, k);
        EXPECT_EQ(holders.size(), n - k + 1);
        for (std::size_t j = 0; j < n; ++j) {
          const bool is_holder =
              std::find(holders.begin(), holders.end(), j) != holders.end();
          EXPECT_EQ(is_holder, holds[j][s])
              << "n=" << n << " k=" << k << " s=" << s << " j=" << j;
        }
      }
    }
  }
}

// --- SAC math -----------------------------------------------------------------

struct SacCase {
  std::size_t n;
  std::size_t dim;
};

class SacMath : public ::testing::TestWithParam<SacCase> {};

TEST_P(SacMath, MatchesPlainAverage) {
  Rng rng(21);
  const auto [n, dim] = GetParam();
  std::vector<Vector> models;
  for (std::size_t i = 0; i < n; ++i) models.push_back(random_vector(dim, rng));
  const Vector avg = sac_average(models, rng);
  expect_near(avg, plain_average(models), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SacMath,
    ::testing::Values(SacCase{1, 8}, SacCase{2, 8}, SacCase{3, 64},
                      SacCase{5, 64}, SacCase{10, 256}, SacCase{30, 16}));

TEST(FtSac, NoCrashesMatchesPlainAverage) {
  Rng rng(31);
  std::vector<Vector> models;
  for (int i = 0; i < 5; ++i) models.push_back(random_vector(32, rng));
  const auto r = fault_tolerant_sac_average(models, 3,
                                            std::vector<bool>(5, false), rng);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.alive, 5u);
  expect_near(r.average, plain_average(models), 1e-4f);
}

TEST(FtSac, CrashedPeersModelsStillIncluded) {
  // Fig. 3: Alice drops after sharing; her model still reaches the
  // average because her shares were already distributed.
  Rng rng(32);
  std::vector<Vector> models;
  for (int i = 0; i < 3; ++i) models.push_back(random_vector(32, rng));
  std::vector<bool> crashed{true, false, false};
  const auto r = fault_tolerant_sac_average(models, 2, crashed, rng);
  ASSERT_TRUE(r.ok);
  expect_near(r.average, plain_average(models), 1e-4f);
}

TEST(FtSac, PropertyAnyUpToNMinusKCrashesRecoverable) {
  Rng rng(33);
  for (std::size_t n : {3u, 5u, 7u}) {
    for (std::size_t k = 2; k <= n; ++k) {
      std::vector<Vector> models;
      for (std::size_t i = 0; i < n; ++i) {
        models.push_back(random_vector(8, rng));
      }
      // 50 random crash patterns with exactly n-k crashes.
      for (int trial = 0; trial < 50; ++trial) {
        std::vector<bool> crashed(n, false);
        std::vector<std::size_t> order(n);
        for (std::size_t i = 0; i < n; ++i) order[i] = i;
        rng.shuffle(order);
        for (std::size_t i = 0; i < n - k; ++i) crashed[order[i]] = true;
        const auto r = fault_tolerant_sac_average(models, k, crashed, rng);
        ASSERT_TRUE(r.ok) << "n=" << n << " k=" << k;
        expect_near(r.average, plain_average(models), 1e-4f);
      }
    }
  }
}

TEST(FtSac, ConsecutiveCrashBlockBelowQuorumFails) {
  // n-k+1 consecutive peers crashing wipes out every replica of the
  // subtotal they exclusively held.
  Rng rng(34);
  const std::size_t n = 5, k = 3;
  std::vector<Vector> models;
  for (std::size_t i = 0; i < n; ++i) models.push_back(random_vector(8, rng));
  std::vector<bool> crashed(n, false);
  // Holders of subtotal 2 are peers {2, 1, 0} (n-k+1 = 3 of them).
  crashed[0] = crashed[1] = crashed[2] = true;
  const auto r = fault_tolerant_sac_average(models, k, crashed, rng);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.alive, 2u);
}

TEST(FtSac, AllCrashedNotRecoverable) {
  Rng rng(35);
  std::vector<Vector> models{random_vector(4, rng), random_vector(4, rng)};
  const auto r = fault_tolerant_sac_average(models, 1,
                                            std::vector<bool>{true, true},
                                            rng);
  EXPECT_FALSE(r.ok);
}

TEST(FtSac, KEqualsOneSurvivesAllButOne) {
  Rng rng(36);
  const std::size_t n = 4;
  std::vector<Vector> models;
  for (std::size_t i = 0; i < n; ++i) models.push_back(random_vector(8, rng));
  for (std::size_t survivor = 0; survivor < n; ++survivor) {
    std::vector<bool> crashed(n, true);
    crashed[survivor] = false;
    const auto r = fault_tolerant_sac_average(models, 1, crashed, rng);
    ASSERT_TRUE(r.ok) << "survivor " << survivor;
    expect_near(r.average, plain_average(models), 1e-4f);
  }
}

}  // namespace
}  // namespace p2pfl::secagg
