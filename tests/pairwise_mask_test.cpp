#include <gtest/gtest.h>

#include "secagg/pairwise_mask.hpp"

namespace p2pfl::secagg {
namespace {

std::vector<Vector> random_models(std::size_t n, std::size_t dim,
                                  Rng& rng) {
  std::vector<Vector> out(n, Vector(dim));
  for (auto& m : out) {
    for (float& v : m) v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return out;
}

Vector plain_sum(std::span<const Vector> models,
                 std::span<const std::size_t> ids) {
  Vector sum(models.front().size(), 0.0f);
  for (std::size_t id : ids) {
    for (std::size_t e = 0; e < sum.size(); ++e) sum[e] += models[id][e];
  }
  return sum;
}

TEST(PairwiseMask, SeedsAreSymmetric) {
  PairwiseMasker pm(6, 42);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) continue;
      EXPECT_EQ(pm.pair_seed(i, j), pm.pair_seed(j, i));
    }
  }
  EXPECT_NE(pm.pair_seed(0, 1), pm.pair_seed(0, 2));
  EXPECT_NE(pm.pair_seed(0, 1), PairwiseMasker(6, 43).pair_seed(0, 1));
}

TEST(PairwiseMask, MasksCancelInFullAggregate) {
  Rng rng(1);
  const std::size_t n = 5, dim = 32;
  PairwiseMasker pm(n, 7);
  const auto models = random_models(n, dim, rng);
  std::vector<Vector> masked;
  std::vector<std::size_t> all;
  for (std::size_t u = 0; u < n; ++u) {
    masked.push_back(pm.mask(u, models[u]));
    all.push_back(u);
  }
  const Vector sum = pm.unmask_sum(masked, all, {});
  const Vector expected = plain_sum(models, all);
  for (std::size_t e = 0; e < dim; ++e) {
    EXPECT_NEAR(sum[e], expected[e], 1e-3f);
  }
}

TEST(PairwiseMask, MaskedVectorHidesTheModel) {
  Rng rng(2);
  PairwiseMasker pm(4, 9);
  const auto models = random_models(4, 64, rng);
  const Vector y = pm.mask(0, models[0]);
  double dist = 0.0;
  for (std::size_t e = 0; e < y.size(); ++e) {
    dist += std::abs(static_cast<double>(y[e] - models[0][e]));
  }
  EXPECT_GT(dist, 5.0);  // masks actually moved the values
}

TEST(PairwiseMask, DropoutRecoveryYieldsSurvivorSum) {
  Rng rng(3);
  const std::size_t n = 6, dim = 16;
  PairwiseMasker pm(n, 11);
  const auto models = random_models(n, dim, rng);
  // Peers 2 and 5 drop out before uploading.
  const std::vector<std::size_t> survivors{0, 1, 3, 4};
  const std::vector<std::size_t> dropouts{2, 5};
  std::vector<Vector> masked;
  for (std::size_t u : survivors) masked.push_back(pm.mask(u, models[u]));
  const Vector sum = pm.unmask_sum(masked, survivors, dropouts);
  const Vector expected = plain_sum(models, survivors);
  for (std::size_t e = 0; e < dim; ++e) {
    EXPECT_NEAR(sum[e], expected[e], 1e-3f);
  }
}

TEST(PairwiseMask, SingleSurvivorStillRecovers) {
  Rng rng(4);
  const std::size_t n = 4, dim = 8;
  PairwiseMasker pm(n, 13);
  const auto models = random_models(n, dim, rng);
  const std::vector<std::size_t> survivors{1};
  const std::vector<std::size_t> dropouts{0, 2, 3};
  std::vector<Vector> masked{pm.mask(1, models[1])};
  const Vector sum = pm.unmask_sum(masked, survivors, dropouts);
  for (std::size_t e = 0; e < dim; ++e) {
    EXPECT_NEAR(sum[e], models[1][e], 1e-3f);
  }
}

TEST(PairwiseMask, MissingDropoutSeedsLeaveGarbage) {
  // Negative control: forgetting to cancel the dropouts' masks must NOT
  // give the survivor sum (otherwise the masks were not doing anything).
  Rng rng(5);
  const std::size_t n = 4, dim = 8;
  PairwiseMasker pm(n, 17);
  const auto models = random_models(n, dim, rng);
  const std::vector<std::size_t> survivors{0, 1, 2};
  std::vector<Vector> masked;
  for (std::size_t u : survivors) masked.push_back(pm.mask(u, models[u]));
  const Vector wrong = pm.unmask_sum(masked, survivors, {});  // forgot 3
  const Vector expected = plain_sum(models, survivors);
  double dist = 0.0;
  for (std::size_t e = 0; e < dim; ++e) {
    dist += std::abs(static_cast<double>(wrong[e] - expected[e]));
  }
  EXPECT_GT(dist, 0.5);
}

TEST(PairwiseMask, ServerCostIsLinearButCentralized) {
  EXPECT_DOUBLE_EQ(PairwiseMasker::server_round_cost_units(30), 60.0);
}

}  // namespace
}  // namespace p2pfl::secagg
