#include <gtest/gtest.h>

#include "net/mux.hpp"
#include "net/network.hpp"

namespace p2pfl::net {
namespace {

Envelope make_env(PeerId from, PeerId to, std::string kind, std::any body,
                  std::uint64_t wire_bytes) {
  Envelope env;
  env.from = from;
  env.to = to;
  env.kind = std::move(kind);
  env.body = std::move(body);
  env.wire_bytes = wire_bytes;
  return env;
}

struct Recorder : Endpoint {
  std::vector<Envelope> received;
  std::vector<SimTime> times;
  sim::Simulator* sim = nullptr;
  void deliver(const Envelope& env) override {
    received.push_back(env);
    if (sim != nullptr) times.push_back(sim->now());
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(42), net_(sim_, {.base_latency = 15 * kMillisecond}) {
    a_.sim = &sim_;
    b_.sim = &sim_;
    net_.attach(0, &a_);
    net_.attach(1, &b_);
  }

  sim::Simulator sim_;
  Network net_;
  Recorder a_, b_;
};

TEST_F(NetworkTest, DeliversWithConfiguredLatency) {
  net_.send(0, 1, "test/msg", std::string("payload"), 100);
  sim_.run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.times[0], 15 * kMillisecond);
  EXPECT_EQ(b_.received[0].kind, "test/msg");
  EXPECT_EQ(std::any_cast<std::string>(b_.received[0].body), "payload");
}

TEST_F(NetworkTest, CountsSentAndDeliveredBytes) {
  net_.send(0, 1, "k1", 1, 100);
  net_.send(1, 0, "k2", 2, 50);
  sim_.run();
  EXPECT_EQ(net_.stats().sent.messages, 2u);
  EXPECT_EQ(net_.stats().sent.bytes, 150u);
  EXPECT_EQ(net_.stats().delivered.bytes, 150u);
  EXPECT_EQ(net_.stats().sent_by_kind.at("k1").bytes, 100u);
  EXPECT_EQ(net_.stats().sent_by_kind.at("k2").messages, 1u);
}

TEST_F(NetworkTest, CrashedSenderEmitsNothing) {
  net_.crash(0);
  net_.send(0, 1, "k", 1, 10);
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(net_.stats().sent.messages, 0u);
}

TEST_F(NetworkTest, CrashedReceiverLosesInFlightMessage) {
  net_.send(0, 1, "k", 1, 10);
  sim_.run_until(5 * kMillisecond);
  net_.crash(1);  // message is mid-flight
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(net_.stats().sent.messages, 1u);  // it was put on the wire
  EXPECT_EQ(net_.stats().delivered.messages, 0u);
}

TEST_F(NetworkTest, RestoreReenablesDelivery) {
  net_.crash(1);
  net_.send(0, 1, "k", 1, 10);
  sim_.run();
  net_.restore(1);
  net_.send(0, 1, "k", 2, 10);
  sim_.run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(std::any_cast<int>(b_.received[0].body), 2);
}

TEST_F(NetworkTest, BlockedLinkDropsDirectionally) {
  net_.block_link(0, 1);
  net_.send(0, 1, "k", 1, 10);
  net_.send(1, 0, "k", 2, 10);
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
  ASSERT_EQ(a_.received.size(), 1u);
  net_.unblock_link(0, 1);
  net_.send(0, 1, "k", 3, 10);
  sim_.run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetworkTest, ExtraLinkDelayApplies) {
  net_.set_link_delay(0, 1, 100 * kMillisecond);
  net_.send(0, 1, "k", 1, 10);
  sim_.run();
  ASSERT_EQ(b_.times.size(), 1u);
  EXPECT_EQ(b_.times[0], 115 * kMillisecond);
  net_.clear_link_delay(0, 1);
  net_.send(0, 1, "k", 2, 10);
  sim_.run();
  EXPECT_EQ(b_.times[1] - b_.times[0], 15 * kMillisecond);
}

TEST_F(NetworkTest, SelfSendIsImmediateAndUncounted) {
  net_.send(0, 0, "k", 7, 10);
  sim_.run();
  ASSERT_EQ(a_.received.size(), 1u);
  EXPECT_EQ(a_.times[0], 0);
  EXPECT_EQ(net_.stats().sent.messages, 0u);
}

TEST_F(NetworkTest, UnattachedDestinationDropsSilently) {
  net_.send(0, 99, "k", 1, 10);
  EXPECT_NO_THROW(sim_.run());
  EXPECT_EQ(net_.stats().delivered.messages, 0u);
}

TEST_F(NetworkTest, ResetStatsClearsCounters) {
  net_.send(0, 1, "k", 1, 10);
  sim_.run();
  net_.reset_stats();
  EXPECT_EQ(net_.stats().sent.messages, 0u);
  EXPECT_EQ(net_.stats().delivered.bytes, 0u);
}

TEST_F(NetworkTest, SplitsDeliveredByKind) {
  net_.send(0, 1, "k1", 1, 100);
  net_.send(0, 1, "k2", 2, 40);
  net_.send(1, 0, "k2", 3, 60);
  sim_.run();
  const auto& by_kind = net_.stats().delivered_by_kind;
  ASSERT_EQ(by_kind.count("k1"), 1u);
  ASSERT_EQ(by_kind.count("k2"), 1u);
  EXPECT_EQ(by_kind.at("k1").messages, 1u);
  EXPECT_EQ(by_kind.at("k1").bytes, 100u);
  EXPECT_EQ(by_kind.at("k2").messages, 2u);
  EXPECT_EQ(by_kind.at("k2").bytes, 100u);
}

TEST_F(NetworkTest, PerKindDeliveredNeverExceedsSentUnderFaults) {
  // Mixed-kind traffic under a blocked link, an in-flight receiver
  // crash, and a crashed sender: per kind, whatever reaches a live
  // endpoint must be a subset of what was put on the wire.
  net_.block_link(0, 1);
  net_.send(0, 1, "blocked/k", 1, 10);  // dropped before send accounting
  net_.unblock_link(0, 1);
  net_.send(0, 1, "ok/k", 3, 30);
  sim_.run();  // delivered
  net_.send(0, 1, "lost/k", 2, 20);  // receiver crashes mid-flight
  sim_.run_for(5 * kMillisecond);
  net_.crash(1);
  sim_.run();
  net_.restore(1);
  net_.send(1, 0, "ok/k", 4, 30);
  sim_.run();  // delivered
  net_.crash(1);
  net_.send(1, 0, "dead/k", 5, 40);  // crashed sender emits nothing
  sim_.run();

  const auto& st = net_.stats();
  for (const auto& [kind, delivered] : st.delivered_by_kind) {
    const auto it = st.sent_by_kind.find(kind);
    ASSERT_NE(it, st.sent_by_kind.end()) << "delivered unknown kind " << kind;
    EXPECT_LE(delivered.messages, it->second.messages) << kind;
    EXPECT_LE(delivered.bytes, it->second.bytes) << kind;
  }
  // The faults actually bit: "lost/k" was sent but never delivered, the
  // blocked and crashed-sender kinds never even hit the send counters.
  EXPECT_EQ(st.sent_by_kind.at("lost/k").messages, 1u);
  EXPECT_EQ(st.delivered_by_kind.count("lost/k"), 0u);
  EXPECT_EQ(st.sent_by_kind.count("blocked/k"), 0u);
  EXPECT_EQ(st.sent_by_kind.count("dead/k"), 0u);
  EXPECT_EQ(st.delivered_by_kind.at("ok/k").messages, 2u);

  // Drop reasons are attributed in the metrics registry.
  const auto& counters = sim_.obs().metrics.counters();
  EXPECT_EQ(counters.at("net.dropped.link_blocked").value(), 1u);
  EXPECT_EQ(counters.at("net.dropped.sender_crashed").value(), 1u);
  EXPECT_GE(counters.at("net.dropped.receiver_crashed").value(), 1u);
}

TEST(PeerHost, RoutesByLongestPrefix) {
  PeerHost host;
  std::vector<std::string> hits;
  host.route("raft/", [&](const Envelope& e) { hits.push_back("raft:" + e.kind); });
  host.route("raft/sg1/", [&](const Envelope& e) { hits.push_back("sg1:" + e.kind); });
  host.route("sac/", [&](const Envelope& e) { hits.push_back("sac:" + e.kind); });

  host.deliver(make_env(0, 1, "raft/sg1/ae", {}, 0));
  host.deliver(make_env(0, 1, "raft/fed/rv", {}, 0));
  host.deliver(make_env(0, 1, "sac/share", {}, 0));
  host.deliver(make_env(0, 1, "unknown/x", {}, 0));

  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], "sg1:raft/sg1/ae");
  EXPECT_EQ(hits[1], "raft:raft/fed/rv");
  EXPECT_EQ(hits[2], "sac:sac/share");
}

TEST(PeerHost, UnrouteStopsDelivery) {
  PeerHost host;
  int hits = 0;
  host.route("a/", [&](const Envelope&) { ++hits; });
  host.deliver(make_env(0, 1, "a/x", {}, 0));
  host.unroute("a/");
  host.deliver(make_env(0, 1, "a/x", {}, 0));
  EXPECT_EQ(hits, 1);
}

TEST(NetworkJitter, JitterStaysWithinBound) {
  sim::Simulator sim(7);
  Network net(sim, {.base_latency = 10 * kMillisecond,
                    .latency_jitter = 5 * kMillisecond});
  Recorder r;
  r.sim = &sim;
  net.attach(1, &r);
  net.attach(0, &r);
  for (int i = 0; i < 50; ++i) net.send(0, 1, "k", i, 1);
  sim.run();
  ASSERT_EQ(r.times.size(), 50u);
  for (SimTime t : r.times) {
    EXPECT_GE(t, 10 * kMillisecond);
    EXPECT_LE(t, 15 * kMillisecond);
  }
}


TEST(NetworkBandwidth, TransmissionDelayAddsToLatency) {
  sim::Simulator sim(3);
  NetworkConfig cfg;
  cfg.base_latency = 10 * kMillisecond;
  cfg.egress_bytes_per_sec = 1'000'000;  // 1 MB/s
  Network net(sim, cfg);
  Recorder r;
  r.sim = &sim;
  net.attach(0, &r);
  net.attach(1, &r);
  net.send(0, 1, "k", 1, 500'000);  // 0.5 s transmission
  sim.run();
  ASSERT_EQ(r.times.size(), 1u);
  EXPECT_EQ(r.times[0], 500 * kMillisecond + 10 * kMillisecond);
}

TEST(NetworkBandwidth, SenderEgressSerializes) {
  // Two messages from one sender queue behind each other; two messages
  // from different senders do not.
  sim::Simulator sim(4);
  NetworkConfig cfg;
  cfg.base_latency = 0;
  cfg.egress_bytes_per_sec = 1'000'000;
  Network net(sim, cfg);
  Recorder r;
  r.sim = &sim;
  net.attach(0, &r);
  net.attach(1, &r);
  net.attach(2, &r);
  net.send(0, 2, "k", 1, 100'000);  // done at 100 ms
  net.send(0, 2, "k", 2, 100'000);  // queued: done at 200 ms
  net.send(1, 2, "k", 3, 100'000);  // own NIC: done at 100 ms
  sim.run();
  ASSERT_EQ(r.times.size(), 3u);
  EXPECT_EQ(r.times[0], 100 * kMillisecond);
  EXPECT_EQ(r.times[1], 100 * kMillisecond);
  EXPECT_EQ(r.times[2], 200 * kMillisecond);
}

TEST(NetworkBandwidth, ZeroMeansInfinite) {
  sim::Simulator sim(5);
  NetworkConfig cfg;
  cfg.base_latency = 5 * kMillisecond;
  cfg.egress_bytes_per_sec = 0;
  Network net(sim, cfg);
  Recorder r;
  r.sim = &sim;
  net.attach(0, &r);
  net.attach(1, &r);
  net.send(0, 1, "k", 1, 1'000'000'000);
  sim.run();
  ASSERT_EQ(r.times.size(), 1u);
  EXPECT_EQ(r.times[0], 5 * kMillisecond);
}

}  // namespace
}  // namespace p2pfl::net
